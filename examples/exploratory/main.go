// Exploratory analysis: the §2 narrative — "a user can perform rapid
// exploratory analysis ... wherein she can progressively tweak the query
// bounds until the desired accuracy is achieved." The example runs the
// same aggregation repeatedly, tightening the error bound each round, and
// prints how the sample size, latency and interval evolve; then does the
// reverse sweep over time bounds.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blinkdb"
)

func main() {
	eng := blinkdb.Open(blinkdb.Config{Scale: 2e5, Seed: 31, CacheTables: true})

	load := eng.CreateTable("clicks",
		blinkdb.Col("site", blinkdb.String),
		blinkdb.Col("region", blinkdb.String),
		blinkdb.Col("latencyms", blinkdb.Float),
	)
	rng := rand.New(rand.NewSource(9))
	zipfSite := rand.NewZipf(rng, 1.6, 1, 499)
	regions := []string{"us-east", "us-west", "eu", "apac"}
	const rows = 300000
	for i := 0; i < rows; i++ {
		if err := load.Append(
			fmt.Sprintf("site%03d", zipfSite.Uint64()+1),
			regions[rng.Intn(len(regions))],
			rng.ExpFloat64()*120,
		); err != nil {
			log.Fatal(err)
		}
	}
	if err := load.Close(); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.CreateSamples("clicks", blinkdb.SampleOptions{
		BudgetFraction: 0.5,
		Templates: []blinkdb.Template{
			{Columns: []string{"site"}, Weight: 0.6},
			{Columns: []string{"region"}, Weight: 0.4},
		},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d click records, samples ready\n\n", rows)

	fmt.Println("progressively tightening the ERROR bound on AVG(latencyms) for site007:")
	fmt.Printf("%-10s %-12s %-14s %-12s %s\n", "bound", "estimate", "interval", "latency(s)", "sample")
	for _, bound := range []int{32, 16, 8, 4, 2, 1} {
		sql := fmt.Sprintf(`SELECT AVG(latencyms) FROM clicks WHERE site = 'site007'
			ERROR WITHIN %d%% AT CONFIDENCE 95%%`, bound)
		res, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		c := res.Rows[0].Cells[0]
		interval := fmt.Sprintf("±%.2f", c.Bound)
		if c.Exact {
			interval = "exact"
		}
		fmt.Printf("%-10s %-12.3f %-14s %-12.2f %s\n",
			fmt.Sprintf("%d%%", bound), c.Value, interval,
			res.SimLatencySeconds, res.SampleDescription)
	}

	fmt.Println("\nsweeping the TIME bound on a per-region GROUP BY:")
	fmt.Printf("%-10s %-12s %-12s %s\n", "budget", "worst rel%", "latency(s)", "sample")
	for _, budget := range []int{1, 2, 4, 8} {
		sql := fmt.Sprintf(`SELECT AVG(latencyms) FROM clicks GROUP BY region
			WITHIN %d SECONDS`, budget)
		res, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12.2f %-12.2f %s\n",
			fmt.Sprintf("%ds", budget), res.MaxRelErr()*100,
			res.SimLatencySeconds, res.SampleDescription)
	}

	fmt.Println("\nfinally, the exact answer for reference:")
	res, err := eng.Query(`SELECT AVG(latencyms) FROM clicks WHERE site = 'site007'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact AVG = %.3f (full scan: %.1f simulated seconds)\n",
		res.Rows[0].Cells[0].Value, res.SimLatencySeconds)
}
