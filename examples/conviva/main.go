// Conviva scenario: the paper's motivating use case (§1) — a video
// service provider diagnosing an outage. "Determining the subset of users
// who are affected by an outage or are experiencing poor quality of
// service based on the service provider or region" needs answers in
// seconds, not the minutes a full scan takes.
//
// This example loads a Conviva-like session log with Zipf-skewed
// dimensions, builds samples from the historical template workload, and
// walks through an incident-response session: spotting elevated failure
// rates, drilling into the affected country, and comparing quality
// metrics — every query bounded to seconds.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blinkdb"
)

func main() {
	eng := blinkdb.Open(blinkdb.Config{Scale: 2e5, Seed: 11, CacheTables: true})

	load := eng.CreateTable("sessions",
		blinkdb.Col("dt", blinkdb.Int),
		blinkdb.Col("country", blinkdb.String),
		blinkdb.Col("city", blinkdb.String),
		blinkdb.Col("asn", blinkdb.Int),
		blinkdb.Col("os", blinkdb.String),
		blinkdb.Col("sessiontimems", blinkdb.Float),
		blinkdb.Col("bufferingms", blinkdb.Float),
		blinkdb.Col("failed", blinkdb.Int),
	)

	// Synthetic trace: country05 has an elevated failure rate today
	// (simulating a CDN outage in that region).
	rng := rand.New(rand.NewSource(5))
	const rows = 250000
	zipfCountry := rand.NewZipf(rng, 1.3, 1, 49)
	zipfCity := rand.NewZipf(rng, 1.5, 1, 299)
	oses := []string{"Win7", "OSX", "Linux", "iOS", "Android"}
	for i := 0; i < rows; i++ {
		day := int64(20120310 + rng.Intn(5))
		country := fmt.Sprintf("country%02d", zipfCountry.Uint64()+1)
		failRate := 0.05
		buffering := rng.ExpFloat64() * 2000
		if country == "country05" && day == 20120314 {
			failRate = 0.35 // the outage
			buffering *= 4
		}
		failed := int64(0)
		if rng.Float64() < failRate {
			failed = 1
		}
		if err := load.Append(
			day, country,
			fmt.Sprintf("city%03d", zipfCity.Uint64()+1),
			int64(7000+rng.Intn(200)),
			oses[rng.Intn(len(oses))],
			rng.ExpFloat64()*600000,
			buffering,
			failed,
		); err != nil {
			log.Fatal(err)
		}
	}
	if err := load.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d session records\n", rows)

	// Samples chosen from the ops team's historical query templates.
	if _, err := eng.CreateSamples("sessions", blinkdb.SampleOptions{
		BudgetFraction: 0.5,
		Templates: []blinkdb.Template{
			{Columns: []string{"country", "failed"}, Weight: 0.35},
			{Columns: []string{"dt", "country"}, Weight: 0.30},
			{Columns: []string{"city"}, Weight: 0.20},
			{Columns: []string{"asn"}, Weight: 0.15},
		},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sample families built; starting incident diagnosis")

	ask := func(label, sql string) *blinkdb.Result {
		res, err := eng.Query(sql)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%s  [%.2fs simulated, %s]\n", label, res.SimLatencySeconds, res.SampleDescription)
		for _, row := range res.Rows {
			fmt.Printf("    %-16s", row.Group)
			for _, c := range row.Cells {
				if c.Exact {
					fmt.Printf("  %s=%.4g(exact)", c.Name, c.Value)
				} else {
					fmt.Printf("  %s=%.4g±%.2g", c.Name, c.Value, c.Bound)
				}
			}
			fmt.Println()
		}
		fmt.Println()
		return res
	}

	// Step 1: is anything failing right now? Quick country-level sweep.
	ask("1. failure counts by country (today, 2s bound):", `
		SELECT COUNT(*) FROM sessions
		WHERE dt = 20120314 AND failed = 1
		GROUP BY country
		WITHIN 2 SECONDS LIMIT 8`)

	// Step 2: country05 looks hot — what is its failure count today vs
	// an error-bounded estimate of the norm?
	ask("2. country05 failures today (10% error bound):", `
		SELECT COUNT(*) FROM sessions
		WHERE country = 'country05' AND failed = 1 AND dt = 20120314
		ERROR WITHIN 10% AT CONFIDENCE 95%`)
	ask("3. country05 failures on a normal day:", `
		SELECT COUNT(*) FROM sessions
		WHERE country = 'country05' AND failed = 1 AND dt = 20120312
		ERROR WITHIN 10% AT CONFIDENCE 95%`)

	// Step 4: is quality degraded for everyone there, or just failures?
	ask("4. buffering in country05 by day (5s bound):", `
		SELECT AVG(bufferingms) FROM sessions
		WHERE country = 'country05'
		GROUP BY dt
		WITHIN 5 SECONDS`)

	// Step 5: confirm with an exact query (the expensive way).
	res := ask("5. exact failure count (full scan for confirmation):", `
		SELECT COUNT(*) FROM sessions
		WHERE country = 'country05' AND failed = 1 AND dt = 20120314`)
	fmt.Printf("the exact confirmation cost %.0fx the bounded estimate\n",
		res.SimLatencySeconds/0.5)
}
