// Quickstart: load a small media-sessions table, build samples, and run
// the two example queries from §2 of the paper — one with an error bound,
// one with a time bound.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blinkdb"
)

func main() {
	eng := blinkdb.Open(blinkdb.Config{
		Scale:       1e5, // pretend the table is ~100,000x bigger
		Seed:        7,
		CacheTables: true,
	})

	// The Sessions table of §2: Session, Genre, OS, City, URL (+ a
	// session-time measure so AVG/SUM have something to chew on).
	load := eng.CreateTable("sessions",
		blinkdb.Col("session", blinkdb.Int),
		blinkdb.Col("genre", blinkdb.String),
		blinkdb.Col("os", blinkdb.String),
		blinkdb.Col("city", blinkdb.String),
		blinkdb.Col("url", blinkdb.String),
		blinkdb.Col("sessiontime", blinkdb.Float),
	)
	rng := rand.New(rand.NewSource(1))
	genres := []string{"western", "drama", "comedy", "news"}
	oses := []string{"Win7", "OSX", "Linux", "iOS"}
	cities := []string{"NY", "NY", "NY", "NY", "SF", "SF", "LA", "Berkeley"} // skewed
	urls := []string{"cnn.com", "yahoo.com", "google.com", "bing.com"}
	const rows = 200000
	for i := 0; i < rows; i++ {
		if err := load.Append(
			int64(i),
			genres[rng.Intn(len(genres))],
			oses[rng.Intn(len(oses))],
			cities[rng.Intn(len(cities))],
			urls[rng.Intn(len(urls))],
			rng.ExpFloat64()*300,
		); err != nil {
			log.Fatal(err)
		}
	}
	if err := load.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows\n", rows)

	// Declare the query-template workload and let the optimization
	// framework (§3.2) decide which stratified samples to build.
	rep, err := eng.CreateSamples("sessions", blinkdb.SampleOptions{
		BudgetFraction: 0.5,
		Templates: []blinkdb.Template{
			{Columns: []string{"genre", "os"}, Weight: 0.5},
			{Columns: []string{"city"}, Weight: 0.3},
			{Columns: []string{"os", "url"}, Weight: 0.2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range rep.Families {
		kind := fmt.Sprintf("stratified on %v", f.Columns)
		if len(f.Columns) == 0 {
			kind = "uniform"
		}
		fmt.Printf("built %-28s %8d rows, %d resolutions\n", kind, f.Rows, f.Resolutions)
	}

	// §2's first example: an error-bounded COUNT.
	res, err := eng.Query(`
		SELECT COUNT(*)
		FROM sessions
		WHERE genre = 'western'
		GROUP BY os
		ERROR WITHIN 10% AT CONFIDENCE 95%`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwestern sessions per OS (error-bounded):")
	for _, row := range res.Rows {
		c := row.Cells[0]
		fmt.Printf("  %-8s %10.0f ± %-8.0f (%.1f%% rel err)\n",
			row.Group, c.Value, c.Bound, c.RelErr*100)
	}
	fmt.Printf("  answered from %s in %.2f simulated seconds\n",
		res.SampleDescription, res.SimLatencySeconds)

	// §2's second example: a time-bounded COUNT with reported error.
	res, err = eng.Query(`
		SELECT COUNT(*), RELATIVE ERROR AT 95% CONFIDENCE
		FROM sessions
		WHERE genre = 'western'
		GROUP BY os
		WITHIN 5 SECONDS`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwestern sessions per OS (time-bounded, 5s):")
	for _, row := range res.Rows {
		c := row.Cells[0]
		fmt.Printf("  %-8s %10.0f ± %-8.0f\n", row.Group, c.Value, c.Bound)
	}
	fmt.Printf("  answered from %s in %.2f simulated seconds\n",
		res.SampleDescription, res.SimLatencySeconds)

	// Ground truth for comparison (no bounds = exact scan).
	res, err = eng.Query(`SELECT COUNT(*) FROM sessions WHERE genre = 'western' GROUP BY os`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexact answer (full scan):")
	for _, row := range res.Rows {
		fmt.Printf("  %-8s %10.0f\n", row.Group, row.Cells[0].Value)
	}
	fmt.Printf("  exact scan took %.2f simulated seconds\n", res.SimLatencySeconds)
}
