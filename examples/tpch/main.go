// TPC-H scenario: BlinkDB on the standard decision-support benchmark
// (§6.1 maps the 22 TPC-H queries onto 6 templates over lineitem). The
// example builds a lineitem-shaped table, declares the template workload,
// and runs bounded versions of the classic pricing-summary and
// forecasting-revenue queries (Q1/Q6 style).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blinkdb"
)

func main() {
	eng := blinkdb.Open(blinkdb.Config{Scale: 1e5, Seed: 22, CacheTables: true})

	load := eng.CreateTable("lineitem",
		blinkdb.Col("orderkey", blinkdb.Int),
		blinkdb.Col("suppkey", blinkdb.Int),
		blinkdb.Col("quantity", blinkdb.Float),
		blinkdb.Col("extendedprice", blinkdb.Float),
		blinkdb.Col("discount", blinkdb.Float),
		blinkdb.Col("returnflag", blinkdb.String),
		blinkdb.Col("linestatus", blinkdb.String),
		blinkdb.Col("shipdt", blinkdb.Int),
		blinkdb.Col("shipmode", blinkdb.String),
	)
	rng := rand.New(rand.NewSource(3))
	zipfSupp := rand.NewZipf(rng, 1.3, 1, 999)
	modes := []string{"TRUCK", "MAIL", "SHIP", "RAIL", "AIR"}
	flags := []string{"N", "N", "N", "A", "R"}
	const rows = 200000
	orderkey, lines := int64(0), 0
	for i := 0; i < rows; i++ {
		if lines == 0 {
			orderkey++
			lines = 1 + rng.Intn(7)
		}
		lines--
		qty := float64(1 + rng.Intn(50))
		if err := load.Append(
			orderkey,
			int64(zipfSupp.Uint64()+1),
			qty,
			qty*(900+rng.Float64()*10000),
			float64(rng.Intn(11))/100,
			flags[rng.Intn(len(flags))],
			[]string{"O", "F"}[rng.Intn(2)],
			int64(19940101+rng.Intn(2000)),
			modes[rng.Intn(len(modes))],
		); err != nil {
			log.Fatal(err)
		}
	}
	if err := load.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d lineitem rows\n", rows)

	if _, err := eng.CreateSamples("lineitem", blinkdb.SampleOptions{
		BudgetFraction: 0.5,
		Templates: []blinkdb.Template{
			{Columns: []string{"returnflag", "linestatus"}, Weight: 0.25},
			{Columns: []string{"suppkey"}, Weight: 0.25},
			{Columns: []string{"discount", "quantity"}, Weight: 0.30},
			{Columns: []string{"shipmode"}, Weight: 0.20},
		},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("samples built")

	show := func(label string, res *blinkdb.Result) {
		fmt.Printf("\n%s  [%.2fs simulated, %s]\n", label, res.SimLatencySeconds, res.SampleDescription)
		for _, row := range res.Rows {
			fmt.Printf("  %-8s", row.Group)
			for _, c := range row.Cells {
				fmt.Printf("  %s=%.5g±%.2g", c.Name, c.Value, c.Bound)
			}
			fmt.Println()
		}
	}

	// Q1-style pricing summary, bounded to 5 seconds.
	res, err := eng.Query(`
		SELECT SUM(quantity) AS sum_qty, AVG(extendedprice) AS avg_price, COUNT(*) AS cnt
		FROM lineitem
		WHERE returnflag = 'R'
		GROUP BY linestatus
		WITHIN 5 SECONDS`)
	if err != nil {
		log.Fatal(err)
	}
	show("Q1-style pricing summary (returned items):", res)

	// Q6-style revenue-change estimate with an error bound.
	res, err = eng.Query(`
		SELECT SUM(extendedprice) AS revenue
		FROM lineitem
		WHERE discount >= 0.05 AND quantity < 24
		ERROR WITHIN 5% AT CONFIDENCE 95%`)
	if err != nil {
		log.Fatal(err)
	}
	show("Q6-style discounted revenue (5% error bound):", res)

	// Supplier drill-down on a skewed dimension: stratification keeps
	// rare suppliers answerable.
	res, err = eng.Query(`
		SELECT AVG(extendedprice) AS avg_price, COUNT(*) AS cnt
		FROM lineitem
		WHERE suppkey = 700
		ERROR WITHIN 10% AT CONFIDENCE 95%`)
	if err != nil {
		log.Fatal(err)
	}
	show("rare-supplier drill-down (suppkey 700):", res)

	// Exact comparison for the Q6-style query.
	exact, err := eng.Query(`
		SELECT SUM(extendedprice) AS revenue
		FROM lineitem
		WHERE discount >= 0.05 AND quantity < 24`)
	if err != nil {
		log.Fatal(err)
	}
	show("Q6 exact (full scan):", exact)
}
