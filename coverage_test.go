package blinkdb

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestConfidenceIntervalCoverage is the statistical half of the
// equivalence harness: the paper promises ANSWERS WITH BOUNDED ERRORS —
// a 95% confidence interval should contain the true value about 95% of
// the time. That promise has been assumed by every PR so far; this test
// finally measures it.
//
// A generated table with known per-group ground truth is queried ≥500
// times at 95% confidence (one distinct filter constant per query, so
// every answer is an independent estimate from the same sample), and the
// empirical coverage — the fraction of non-exact estimates whose CI
// contains the truth — must land in [0.90, 0.99] for every aggregate.
// The band is ~5 binomial standard deviations wide around 0.95 at n=500,
// and everything (data, sampling, query order) is seeded, so the test is
// deterministic: it fails only if the estimator machinery changes.
func TestConfidenceIntervalCoverage(t *testing.T) {
	const (
		groups       = 500 // distinct filter constants = queries per aggregate
		rowsPerGroup = 120
		rows         = groups * rowsPerGroup
	)
	eng := Open(Config{Scale: 1e4, Seed: 7, CacheTables: true})
	load := eng.CreateTable("obs",
		Col("gid", Int),
		Col("pad", String), // stratification decoy: never filtered on
		Col("x", Float),
	)
	rng := rand.New(rand.NewSource(41))
	pads := []string{"a", "b", "c", "d"}
	trueSum := make([]float64, groups)
	for i := 0; i < rows; i++ {
		gid := i % groups // round-robin: every gid has exactly rowsPerGroup rows
		x := 100 + rng.NormFloat64()*15
		trueSum[gid] += x
		if err := load.Append(gid, pads[rng.Intn(len(pads))], x); err != nil {
			t.Fatal(err)
		}
	}
	if err := load.Close(); err != nil {
		t.Fatal(err)
	}
	// Samples are stratified on pad (not gid), so a WHERE gid = k query
	// has no covering family and answers from a probed sample whose rows
	// all carry rates < 1 — genuinely approximate estimates.
	if _, err := eng.CreateSamples("obs", SampleOptions{
		BudgetFraction:  0.6,
		K:               4000,
		UniformFraction: 0.25,
		Templates:       []Template{{Columns: []string{"pad"}, Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}

	// One query per gid: AVG and COUNT estimates at 95% confidence, with
	// a time bound (not an error bound) so the chosen resolution never
	// adapts to the observed error — coverage trials stay independent of
	// the quantity under test.
	kinds := []string{"AVG", "COUNT"}
	covered := make([]int, len(kinds))
	trials := make([]int, len(kinds))
	exact := 0
	for gid := 0; gid < groups; gid++ {
		res, err := eng.Query(fmt.Sprintf(
			`SELECT AVG(x), COUNT(*) FROM obs WHERE gid = %d WITHIN 2 SECONDS`, gid))
		if err != nil {
			t.Fatal(err)
		}
		if res.Confidence != 0.95 {
			t.Fatalf("gid %d: confidence = %v, want 0.95", gid, res.Confidence)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("gid %d: %d result rows, want 1", gid, len(res.Rows))
		}
		truth := []float64{trueSum[gid] / rowsPerGroup, rowsPerGroup}
		for k, cell := range res.Rows[0].Cells {
			if cell.Exact {
				exact++ // an exact answer trivially covers; don't count it
				continue
			}
			trials[k]++
			if truth[k] >= cell.Value-cell.Bound && truth[k] <= cell.Value+cell.Bound {
				covered[k]++
			}
		}
	}
	if exact > groups/10 {
		t.Fatalf("%d exact cells — the workload is supposed to be approximate", exact)
	}
	for k, kind := range kinds {
		if trials[k] < 450 {
			t.Fatalf("%s: only %d approximate trials, want ≥450", kind, trials[k])
		}
		cov := float64(covered[k]) / float64(trials[k])
		t.Logf("%s: empirical 95%%-CI coverage %.3f over %d trials", kind, cov, trials[k])
		if cov < 0.90 || cov > 0.99 {
			t.Errorf("%s: empirical coverage %.3f outside [0.90, 0.99] (%d/%d)",
				kind, cov, covered[k], trials[k])
		}
	}
}
