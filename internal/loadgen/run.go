package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// RunOptions configures a trace replay against a live server.
type RunOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client overrides the HTTP client (default &http.Client{}; per-
	// request deadlines come from Request.GiveUpSeconds, so the default
	// client carries no global timeout).
	Client *http.Client
	// Speedup divides every arrival offset: 2 replays the trace twice as
	// fast as recorded. 0 or 1 replays in real time.
	Speedup float64
	// OnVerdict, when set, is called once per completed request (any
	// outcome) from the issuing goroutine. Tests use it to observe
	// progress; it must be safe for concurrent calls.
	OnVerdict func(r *Request, v Verdict)
}

// Verdict classifies one request's outcome.
type Verdict int

const (
	// Served: 200 with a well-formed final frame.
	Served Verdict = iota
	// Shed: 429 from admission control.
	Shed
	// Unavailable: 503 (server warming or restarting).
	Unavailable
	// ClientCancelled: the client gave up (GiveUpSeconds) before the
	// final answer — whether still queued or already streaming.
	ClientCancelled
	// Errored: transport failure or any other HTTP status.
	Errored
)

func (v Verdict) String() string {
	switch v {
	case Served:
		return "served"
	case Shed:
		return "shed"
	case Unavailable:
		return "unavailable"
	case ClientCancelled:
		return "cancelled"
	default:
		return "errored"
	}
}

// ClassReport aggregates one SLO class's outcomes.
type ClassReport struct {
	Class       string `json:"class"`
	Arrivals    int    `json:"arrivals"`
	Served      int    `json:"served"`
	Shed        int    `json:"shed"`
	Unavailable int    `json:"unavailable"`
	Cancelled   int    `json:"cancelled"`
	Errored     int    `json:"errored"`
	// TTFP50Ms / TTFP99Ms summarize wall milliseconds from dispatch to
	// the final answer across served requests; TTFAP50Ms is the first-
	// frame latency (== TTF for non-streaming requests).
	TTFP50Ms  float64 `json:"ttf_p50_ms"`
	TTFP99Ms  float64 `json:"ttf_p99_ms"`
	TTFAP50Ms float64 `json:"ttfa_p50_ms"`
	// BoundComplianceRate is the fraction of served bound-carrying
	// requests whose final answer honored its bound: every inexact cell
	// within the requested relative error, and the simulated latency
	// within the requested time bound. 1 when no request carried bounds.
	BoundComplianceRate float64 `json:"bound_compliance_rate"`
	BoundChecked        int     `json:"bound_checked"`
	// SLOComplianceRate is the fraction of served requests that beat the
	// class's wall-clock SLOTargetSeconds (1 when the class has none).
	SLOComplianceRate float64 `json:"slo_compliance_rate"`
	// ShedRate is Shed/Arrivals.
	ShedRate float64 `json:"shed_rate"`

	ttf, ttfa          []float64
	boundMet           int
	sloChecked, sloMet int
}

// Report is a full replay's outcome.
type Report struct {
	Arrivals    int     `json:"arrivals"`
	Served      int     `json:"served"`
	Shed        int     `json:"shed"`
	Unavailable int     `json:"unavailable"`
	Cancelled   int     `json:"cancelled"`
	Errored     int     `json:"errored"`
	WallSeconds float64 `json:"wall_seconds"`
	// OfferedQPS is arrivals over the trace duration (at the replay
	// speed); ServedQPS is completed sessions over measured wall time.
	OfferedQPS float64 `json:"offered_qps"`
	ServedQPS  float64 `json:"served_qps"`
	// Classes is sorted by class name.
	Classes []*ClassReport `json:"classes"`
}

// Class returns the report for one SLO class (nil when absent).
func (r *Report) Class(name string) *ClassReport {
	for _, c := range r.Classes {
		if c.Class == name {
			return c
		}
	}
	return nil
}

// wireFrame is the subset of the server's frame the runner grades.
type wireFrame struct {
	Final  bool   `json:"final"`
	Error  string `json:"error"`
	Result *struct {
		SimLatencySeconds float64 `json:"sim_latency_seconds"`
		Rows              []struct {
			Cells []struct {
				RelErr float64 `json:"rel_err"`
				Exact  bool    `json:"exact"`
			} `json:"cells"`
		} `json:"rows"`
	} `json:"result"`
}

// Run replays the trace against opt.BaseURL over real HTTP: requests
// are dispatched open-loop at their recorded arrival offsets (divided
// by Speedup), each in its own goroutine, and graded into per-SLO-class
// metrics. Run returns after every dispatched request has completed.
//
// Note the server may still be finishing the tail of abandoned
// (client-cancelled) handlers when Run returns; callers asserting
// server-side conservation should poll the server's counters briefly
// (see the server package's loadgen tests).
func Run(trace *Trace, opt RunOptions) (*Report, error) {
	if opt.BaseURL == "" {
		return nil, errors.New("loadgen: RunOptions.BaseURL required")
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	speed := opt.Speedup
	if speed <= 0 {
		speed = 1
	}

	agg := aggregator{classes: map[string]*ClassReport{}}
	start := time.Now()
	var wg sync.WaitGroup
	for i := range trace.Requests {
		r := &trace.Requests[i]
		due := start.Add(time.Duration(float64(r.AtMicros)/speed) * time.Microsecond)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(r *Request) {
			defer wg.Done()
			v, o := issue(client, opt.BaseURL, r)
			agg.record(r, v, o)
			if opt.OnVerdict != nil {
				opt.OnVerdict(r, v)
			}
		}(r)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	rep := agg.report(len(trace.Requests), wall)
	if d := trace.Duration.Seconds() / speed; d > 0 {
		rep.OfferedQPS = float64(rep.Arrivals) / d
	}
	return rep, nil
}

// observation carries the gradeable facts of one served request.
type observation struct {
	ttfa, ttf  float64
	boundKnown bool // the request carried a bound AND the frame parsed
	boundMet   bool
}

// issue sends one request and classifies the outcome.
func issue(client *http.Client, baseURL string, r *Request) (Verdict, observation) {
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if r.GiveUpSeconds > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(r.GiveUpSeconds*float64(time.Second)))
	}
	defer cancel()

	body, err := json.Marshal(map[string]any{"sql": r.SQL, "stream": r.Stream})
	if err != nil {
		return Errored, observation{}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/query", bytes.NewReader(body))
	if err != nil {
		return Errored, observation{}
	}
	req.Header.Set("Content-Type", "application/json")

	begin := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ClientCancelled, observation{}
		}
		return Errored, observation{}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// fall through to frame grading
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return Shed, observation{}
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return Unavailable, observation{}
	default:
		io.Copy(io.Discard, resp.Body)
		return Errored, observation{}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last []byte
	first := 0.0
	for sc.Scan() {
		if first == 0 {
			first = time.Since(begin).Seconds()
		}
		last = append(last[:0], sc.Bytes()...)
	}
	ttf := time.Since(begin).Seconds()
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ClientCancelled, observation{}
		}
		return Errored, observation{}
	}
	if len(last) == 0 {
		return Errored, observation{}
	}
	var f wireFrame
	if err := json.Unmarshal(last, &f); err != nil || !f.Final || f.Error != "" || f.Result == nil {
		return Errored, observation{}
	}
	o := observation{ttfa: first, ttf: ttf}
	if r.ErrorPct > 0 || r.TimeBoundSeconds > 0 {
		o.boundKnown = true
		o.boundMet = gradeBound(r, &f)
	}
	return Served, o
}

// gradeBound checks the final frame against the bound the request
// asked for: every inexact cell's relative error within ErrorPct (cells
// with undefined relative error, encoded -1 on the wire, are skipped),
// and the simulated latency within TimeBoundSeconds. A hair of float
// slack keeps boundary answers from flapping.
func gradeBound(r *Request, f *wireFrame) bool {
	const eps = 1e-9
	if r.ErrorPct > 0 {
		for _, row := range f.Result.Rows {
			for _, c := range row.Cells {
				if c.Exact || c.RelErr < 0 {
					continue
				}
				if c.RelErr*100 > r.ErrorPct+eps {
					return false
				}
			}
		}
	}
	if r.TimeBoundSeconds > 0 && f.Result.SimLatencySeconds > r.TimeBoundSeconds+eps {
		return false
	}
	return true
}

// aggregator folds verdicts into per-class accumulators.
type aggregator struct {
	mu      sync.Mutex
	classes map[string]*ClassReport
}

func (a *aggregator) record(r *Request, v Verdict, o observation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.classes[r.SLOClass]
	if c == nil {
		c = &ClassReport{Class: r.SLOClass}
		a.classes[r.SLOClass] = c
	}
	c.Arrivals++
	switch v {
	case Served:
		c.Served++
		c.ttfa = append(c.ttfa, o.ttfa)
		c.ttf = append(c.ttf, o.ttf)
		if o.boundKnown {
			c.BoundChecked++
			if o.boundMet {
				c.boundMet++
			}
		}
		if r.SLOTargetSeconds > 0 {
			c.sloChecked++
			if o.ttf <= r.SLOTargetSeconds {
				c.sloMet++
			}
		}
	case Shed:
		c.Shed++
	case Unavailable:
		c.Unavailable++
	case ClientCancelled:
		c.Cancelled++
	default:
		c.Errored++
	}
}

func (a *aggregator) report(arrivals int, wall float64) *Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := &Report{Arrivals: arrivals, WallSeconds: wall}
	names := make([]string, 0, len(a.classes))
	for name := range a.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := a.classes[name]
		c.TTFP50Ms = quantile(c.ttf, 0.5) * 1e3
		c.TTFP99Ms = quantile(c.ttf, 0.99) * 1e3
		c.TTFAP50Ms = quantile(c.ttfa, 0.5) * 1e3
		c.BoundComplianceRate = rate(c.boundMet, c.BoundChecked)
		c.SLOComplianceRate = rate(c.sloMet, c.sloChecked)
		if c.Arrivals > 0 {
			c.ShedRate = float64(c.Shed) / float64(c.Arrivals)
		}
		rep.Served += c.Served
		rep.Shed += c.Shed
		rep.Unavailable += c.Unavailable
		rep.Cancelled += c.Cancelled
		rep.Errored += c.Errored
		rep.Classes = append(rep.Classes, c)
	}
	if wall > 0 {
		rep.ServedQPS = float64(rep.Served) / wall
	}
	return rep
}

// rate returns met/checked, or 1 when nothing was checked (an absent
// constraint is vacuously honored, not violated).
func rate(met, checked int) float64 {
	if checked == 0 {
		return 1
	}
	return float64(met) / float64(checked)
}

// quantile returns the q-th quantile of xs by the nearest-rank method
// (0 when empty).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Summary renders a compact human-readable report (selfcheck output).
func (r *Report) Summary() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "arrivals=%d served=%d shed=%d unavailable=%d cancelled=%d errored=%d (%.1f offered qps, %.1f served qps)\n",
		r.Arrivals, r.Served, r.Shed, r.Unavailable, r.Cancelled, r.Errored, r.OfferedQPS, r.ServedQPS)
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "  class %-12s served=%-4d shed=%-4d p50=%.1fms p99=%.1fms bound-compliance=%.3f shed-rate=%.3f\n",
			c.Class, c.Served, c.Shed, c.TTFP50Ms, c.TTFP99Ms, c.BoundComplianceRate, c.ShedRate)
	}
	return b.String()
}
