package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// The trace wire format is JSON lines: one header line, then one line
// per request in schedule order. It is the record/replay contract — a
// production-shaped run is reproducible byte-for-byte:
//
//	{"v":1,"seed":42,"duration_us":3000000,"requests":412}
//	{"at_us":1795,"cohort":"interactive","slo":"interactive",...}
//	...
//
// Serialization is deterministic (struct-ordered fields, no maps), so
// equal Traces marshal to equal bytes and Encode∘ReadTrace∘Encode is
// the identity on bytes. Fingerprint hashes exactly these bytes.

// traceHeader is the first line of a serialized trace.
type traceHeader struct {
	V          int   `json:"v"`
	Seed       int64 `json:"seed"`
	DurationUS int64 `json:"duration_us"`
	Requests   int   `json:"requests"`
}

const traceVersion = 1

// Encode serializes the trace in the JSON-lines wire format.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{
		V: traceVersion, Seed: t.Seed,
		DurationUS: t.Duration.Microseconds(),
		Requests:   len(t.Requests),
	}); err != nil {
		return err
	}
	for i := range t.Requests {
		if err := enc.Encode(&t.Requests[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Bytes serializes the trace into memory (fingerprinting and tests).
func (t *Trace) Bytes() []byte {
	var buf bytes.Buffer
	if err := t.Encode(&buf); err != nil {
		// bytes.Buffer writes cannot fail; an error here is a marshal bug.
		panic(err)
	}
	return buf.Bytes()
}

// Fingerprint returns the FNV-1a 64-bit hash of the serialized trace —
// the identity two runs compare to prove they replayed the same
// request stream.
func (t *Trace) Fingerprint() string {
	return fmt.Sprintf("%016x", fnv64(t.Bytes()))
}

// ReadTrace parses a serialized trace. The request order on the wire is
// trusted (it was written in schedule order); a request count mismatch
// between header and body is an error, so truncated recordings fail
// loudly instead of replaying a partial load.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("loadgen: empty trace")
	}
	var h traceHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("loadgen: bad trace header: %w", err)
	}
	if h.V != traceVersion {
		return nil, fmt.Errorf("loadgen: trace version %d, want %d", h.V, traceVersion)
	}
	t := &Trace{
		Seed:     h.Seed,
		Duration: time.Duration(h.DurationUS) * time.Microsecond,
		Requests: make([]Request, 0, h.Requests),
	}
	for sc.Scan() {
		var req Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			return nil, fmt.Errorf("loadgen: bad trace line %d: %w", len(t.Requests)+2, err)
		}
		t.Requests = append(t.Requests, req)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Requests) != h.Requests {
		return nil, fmt.Errorf("loadgen: truncated trace: header says %d requests, read %d",
			h.Requests, len(t.Requests))
	}
	return t, nil
}
