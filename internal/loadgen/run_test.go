package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// stubHandler speaks just enough of the server's /query wire protocol to
// exercise every verdict: the SQL text selects the scripted outcome.
func stubHandler(t *testing.T) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var req struct {
			SQL string `json:"sql"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			t.Errorf("stub: bad request body: %v", err)
		}
		switch {
		case strings.Contains(req.SQL, "shed"):
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case strings.Contains(req.SQL, "warming"):
			w.WriteHeader(http.StatusServiceUnavailable)
		case strings.Contains(req.SQL, "hang"):
			time.Sleep(2 * time.Second)
			w.WriteHeader(http.StatusOK)
		default:
			relErr := 0.01
			if strings.Contains(req.SQL, "sloppy") {
				relErr = 0.40
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintf(w, `{"seq":0,"level":1,"final":true,"elapsed_ms":1,"result":{"rows":[{"group":"*","cells":[{"value":1,"bound":0.1,"rel_err":%g,"exact":false,"rows":10}]}],"confidence":0.95,"sim_latency_seconds":0.05}}`+"\n", relErr)
		}
	})
}

func TestRunClassifiesOutcomes(t *testing.T) {
	srv := httptest.NewServer(stubHandler(t))
	defer srv.Close()

	req := func(at int64, class, sql string) Request {
		return Request{AtMicros: at, Cohort: class, SLOClass: class, SQL: sql, SLOTargetSeconds: 1}
	}
	tr := &Trace{
		Seed: 1, Duration: 10 * time.Millisecond,
		Requests: []Request{
			req(0, "good", "SELECT ok 1"),
			req(1000, "good", "SELECT ok 2"),
			req(2000, "good", "SELECT shed"),
			req(3000, "good", "SELECT warming"),
			req(4000, "sloppy", "SELECT sloppy"),
			{AtMicros: 5000, Cohort: "impatient", SLOClass: "impatient",
				SQL: "SELECT hang", GiveUpSeconds: 0.1},
		},
	}
	// good requests carry a 5% error bound; sloppy's answer blows it.
	for i := range tr.Requests {
		if !strings.Contains(tr.Requests[i].SQL, "hang") {
			tr.Requests[i].ErrorPct = 5
		}
	}

	rep, err := Run(tr, RunOptions{BaseURL: srv.URL, Speedup: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals != 6 || rep.Served != 3 || rep.Shed != 1 || rep.Unavailable != 1 || rep.Cancelled != 1 || rep.Errored != 0 {
		t.Fatalf("verdicts: %+v", rep)
	}

	good := rep.Class("good")
	if good == nil || good.Served != 2 || good.Shed != 1 || good.Unavailable != 1 {
		t.Fatalf("good class: %+v", good)
	}
	// rel_err 0.01 → 1% ≤ 5% bound: compliant.
	if good.BoundComplianceRate != 1 || good.BoundChecked != 2 {
		t.Fatalf("good bound compliance: %+v", good)
	}
	if good.ShedRate != 0.25 {
		t.Fatalf("good shed rate: %g", good.ShedRate)
	}
	if good.TTFP50Ms <= 0 || good.TTFP99Ms < good.TTFP50Ms {
		t.Fatalf("good latency percentiles: p50=%g p99=%g", good.TTFP50Ms, good.TTFP99Ms)
	}
	if good.SLOComplianceRate != 1 {
		t.Fatalf("good SLO compliance: %g", good.SLOComplianceRate)
	}

	// rel_err 0.40 → 40% > 5% bound: non-compliant, but still served.
	sloppy := rep.Class("sloppy")
	if sloppy == nil || sloppy.Served != 1 || sloppy.BoundComplianceRate != 0 {
		t.Fatalf("sloppy class: %+v", sloppy)
	}

	impatient := rep.Class("impatient")
	if impatient == nil || impatient.Cancelled != 1 {
		t.Fatalf("impatient class: %+v", impatient)
	}
}

func TestRunCallsOnVerdict(t *testing.T) {
	srv := httptest.NewServer(stubHandler(t))
	defer srv.Close()
	tr := &Trace{Duration: time.Millisecond, Requests: []Request{
		{Cohort: "c", SLOClass: "c", SQL: "SELECT ok"},
		{AtMicros: 100, Cohort: "c", SLOClass: "c", SQL: "SELECT shed"},
	}}
	got := make(chan Verdict, 2)
	_, err := Run(tr, RunOptions{BaseURL: srv.URL, Speedup: 100, OnVerdict: func(r *Request, v Verdict) { got <- v }})
	if err != nil {
		t.Fatal(err)
	}
	close(got)
	counts := map[Verdict]int{}
	for v := range got {
		counts[v]++
	}
	if counts[Served] != 1 || counts[Shed] != 1 {
		t.Fatalf("OnVerdict verdicts: %v", counts)
	}
}

func TestRunRequiresBaseURL(t *testing.T) {
	if _, err := Run(&Trace{}, RunOptions{}); err == nil {
		t.Fatal("expected error for missing BaseURL")
	}
}
