// Package loadgen is a ServeGen-style workload generator for the
// serving layer: it turns a declarative Spec — heterogeneous client
// cohorts with skewed per-client rates, bursty arrival processes,
// per-cohort template mixes and error/time-bound distributions — into a
// deterministic Trace of timestamped HTTP query requests, and replays
// that trace against a live blinkdb-server while collecting per-SLO-class
// metrics (p50/p99 latency, bound-compliance rate, shed rate).
//
// The paper's headline claim is bounded response time under real query
// mixes (Figs. 7–8); a bench that replays one template against a quiet
// server never exercises the admission, streaming, or cancellation
// accounting that claim rests on. loadgen is the continuous version of
// those figures: a production-shaped mix with a reproducibility
// contract strong enough to pin serving-path regressions.
//
// # Model
//
// A Spec holds Cohorts. Each cohort models one population of clients
// that share a workload shape and an SLO class:
//
//   - Clients and RateQPS: the cohort's aggregate arrival rate is
//     divided across its clients by a Zipf law with exponent RateSkew
//     (client 1 hottest), so a cohort models the usual few-heavy-users/
//     long-tail shape rather than identical robots.
//   - Arrival: each client is an independent renewal process. Poisson
//     draws exponential inter-arrivals; Gamma draws Gamma inter-arrivals
//     with squared coefficient of variation Burstiness (CV² = 1 is
//     Poisson-like, larger is burstier: clumps of back-to-back arrivals
//     separated by long gaps).
//   - Templates: a weighted mix of SQL templates; each arrival picks a
//     template by weight and fills its parameter from a per-template
//     Zipf law over the parameter domain (hot constants repeat, the tail
//     keeps surfacing cold ones).
//   - Bounds: a weighted distribution of per-request error bounds
//     (ERROR WITHIN n% AT CONFIDENCE c%) and response-time bounds
//     (WITHIN n SECONDS) appended to the generated SQL.
//   - StreamFraction, GiveUpSeconds: the fraction of requests issued as
//     streaming-refinement sessions, and an optional client patience —
//     requests are abandoned (context cancelled) after GiveUpSeconds,
//     which is what drives the server's cancel-while-queued accounting
//     under load.
//
// # Determinism contract
//
// Generate is a pure function of the Spec: two calls with equal Specs
// produce identical Traces — byte-for-byte identical once serialized —
// regardless of host, GOMAXPROCS, or wall clock. Every random draw
// comes from per-client PRNGs seeded by (Spec.Seed, cohort index,
// client index) in a fixed draw order, and the merged schedule is
// ordered by (arrival time, cohort, client, per-client sequence), a
// total order with no map iteration or clock dependence anywhere.
//
// Replaying a recorded trace (trace.go) therefore reproduces the exact
// request stream of the original run: same SQL strings, same bounds,
// same ordering, same timestamps. What is NOT deterministic is the
// server's response timing — Run measures a real server over real
// HTTP — which is precisely the quantity under test.
package loadgen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"blinkdb/internal/zipf"
)

// ArrivalKind names a client's inter-arrival process.
type ArrivalKind string

const (
	// Poisson draws exponential inter-arrivals (memoryless, CV² = 1).
	Poisson ArrivalKind = "poisson"
	// Gamma draws Gamma inter-arrivals with CV² = Cohort.Burstiness;
	// shape < 1 yields the bursty clump-and-gap pattern real request
	// logs show.
	Gamma ArrivalKind = "gamma"
)

// Template is one SQL shape in a cohort's mix. Pattern must contain
// exactly one %d verb, filled from a Zipf draw over [1, Cardinality].
type Template struct {
	// Name labels the template in traces (defaults to Pattern).
	Name string
	// Pattern is the SQL with one %d parameter slot.
	Pattern string
	// Cardinality is the parameter domain size (draws are 1-based).
	Cardinality int
	// Skew is the Zipf exponent over the parameter domain; <= 0 draws
	// uniformly.
	Skew float64
	// Weight is the template's share of the cohort's arrivals.
	Weight float64
}

// Bound is one entry of a cohort's error/time-bound distribution.
// The zero Bound issues the SQL unmodified (no bound clauses).
type Bound struct {
	// ErrorPct appends ERROR WITHIN n% when > 0.
	ErrorPct float64
	// Confidence appends AT CONFIDENCE c% (requires ErrorPct > 0).
	Confidence float64
	// TimeSeconds appends WITHIN n SECONDS when > 0.
	TimeSeconds float64
	// Weight is this bound's share of the cohort's arrivals.
	Weight float64
}

// Cohort models one client population sharing a workload shape and an
// SLO class. See the package comment for field semantics.
type Cohort struct {
	Name     string
	SLOClass string
	// SLOTargetSeconds is the wall-clock final-answer target the class
	// is graded against (0 disables latency-SLO grading for the class).
	SLOTargetSeconds float64

	Clients  int
	RateQPS  float64
	RateSkew float64

	Arrival    ArrivalKind
	Burstiness float64

	Templates []Template
	Bounds    []Bound

	// StreamFraction of requests are issued as streaming sessions.
	StreamFraction float64
	// GiveUpSeconds abandons (cancels) a request still unanswered after
	// this long; 0 waits forever.
	GiveUpSeconds float64
}

// Spec is a full workload description: what Generate turns into a Trace.
type Spec struct {
	Seed     int64
	Duration time.Duration
	Cohorts  []Cohort
}

// Request is one generated arrival: everything the runner needs to
// issue it and grade the response. The JSON tags are the trace wire
// format (trace.go).
type Request struct {
	// AtMicros is the arrival offset from run start, in microseconds.
	AtMicros int64 `json:"at_us"`
	// Cohort / SLOClass / Client identify the issuer; Seq numbers the
	// client's own arrivals from 0 (part of the deterministic ordering).
	Cohort   string `json:"cohort"`
	SLOClass string `json:"slo"`
	Client   int    `json:"client"`
	Seq      int    `json:"seq"`
	// Template names the SQL shape (metrics grouping).
	Template string `json:"template"`
	// SQL is the final query text, bound clauses included.
	SQL string `json:"sql"`
	// Stream requests a refinement session instead of a single answer.
	Stream bool `json:"stream,omitempty"`
	// ErrorPct / TimeBoundSeconds echo the bound baked into SQL so the
	// runner can grade compliance without re-parsing the query.
	ErrorPct         float64 `json:"error_pct,omitempty"`
	TimeBoundSeconds float64 `json:"time_bound_s,omitempty"`
	// SLOTargetSeconds / GiveUpSeconds copy the cohort knobs that grade
	// and abandon this request.
	SLOTargetSeconds float64 `json:"slo_target_s,omitempty"`
	GiveUpSeconds    float64 `json:"give_up_s,omitempty"`

	// cohortIdx is the generation-time tiebreak (not serialized; traces
	// read back from disk are already in final order).
	cohortIdx int
}

// Trace is a fully materialized request schedule: the unit of
// record/replay. Requests are ordered by (AtMicros, cohort, client,
// seq).
type Trace struct {
	Seed     int64
	Duration time.Duration
	Requests []Request
}

// Generate materializes spec into a Trace. Pure and deterministic: see
// the package comment for the contract.
func Generate(spec Spec) *Trace {
	tr := &Trace{Seed: spec.Seed, Duration: spec.Duration}
	for ci, c := range spec.Cohorts {
		clients := c.Clients
		if clients <= 0 {
			clients = 1
		}
		rates := clientRates(c.RateQPS, clients, c.RateSkew)
		for cl := 0; cl < clients; cl++ {
			if rates[cl] <= 0 {
				continue
			}
			rng := rand.New(rand.NewSource(clientSeed(spec.Seed, ci, cl)))
			tr.Requests = append(tr.Requests,
				clientArrivals(rng, &c, ci, cl, rates[cl], spec.Duration)...)
		}
	}
	sort.Slice(tr.Requests, func(i, j int) bool {
		a, b := &tr.Requests[i], &tr.Requests[j]
		if a.AtMicros != b.AtMicros {
			return a.AtMicros < b.AtMicros
		}
		if a.cohortIdx != b.cohortIdx {
			return a.cohortIdx < b.cohortIdx
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.Seq < b.Seq
	})
	return tr
}

// clientRates splits an aggregate cohort rate across clients by a Zipf
// law: rate_i ∝ 1/(i+1)^skew, normalized to sum to rateQPS. skew <= 0
// is uniform.
func clientRates(rateQPS float64, clients int, skew float64) []float64 {
	weights := make([]float64, clients)
	sum := 0.0
	for i := range weights {
		w := 1.0
		if skew > 0 {
			w = 1 / math.Pow(float64(i+1), skew)
		}
		weights[i] = w
		sum += w
	}
	for i := range weights {
		weights[i] = rateQPS * weights[i] / sum
	}
	return weights
}

// clientSeed derives one client's PRNG seed from (spec seed, cohort
// index, client index) via a splitmix64 finalizer, so neighboring
// clients get uncorrelated streams.
func clientSeed(seed int64, cohort, client int) int64 {
	h := uint64(seed) ^ 0x9E3779B97F4A7C15
	h = mix64(h + uint64(cohort)*0xBF58476D1CE4E5B9)
	h = mix64(h + uint64(client)*0x94D049BB133111EB)
	return int64(h)
}

func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// clientArrivals generates one client's arrival sequence. Draw order
// per event is fixed — gap, template, parameter, bound, stream — so the
// stream is reproducible from the client seed alone.
func clientArrivals(rng *rand.Rand, c *Cohort, cohortIdx, client int, rate float64, dur time.Duration) []Request {
	// Per-template parameter samplers, constructed in template order so
	// setup consumes no randomness.
	params := make([]*zipf.CDFGenerator, len(c.Templates))
	for i, t := range c.Templates {
		if t.Skew > 0 && t.Cardinality > 1 {
			params[i] = zipf.NewGeneratorCDF(rng, t.Skew, t.Cardinality)
		}
	}
	burst := c.Burstiness
	if burst <= 0 {
		burst = 1
	}
	var out []Request
	horizon := dur.Seconds()
	at := 0.0
	for seq := 0; ; seq++ {
		at += interArrival(rng, c.Arrival, rate, burst)
		if at >= horizon {
			break
		}
		ti := weightedTemplate(rng, c.Templates)
		t := &c.Templates[ti]
		param := 1
		if params[ti] != nil {
			param = params[ti].Next()
		} else if t.Cardinality > 1 {
			param = rng.Intn(t.Cardinality) + 1
		}
		b := weightedBound(rng, c.Bounds)
		stream := false
		if c.StreamFraction > 0 {
			stream = rng.Float64() < c.StreamFraction
		}
		name := t.Name
		if name == "" {
			name = t.Pattern
		}
		out = append(out, Request{
			AtMicros:         int64(at * 1e6),
			Cohort:           c.Name,
			SLOClass:         sloClass(c),
			Client:           client,
			Seq:              seq,
			Template:         name,
			SQL:              bindSQL(t.Pattern, param, b),
			Stream:           stream,
			ErrorPct:         b.ErrorPct,
			TimeBoundSeconds: b.TimeSeconds,
			SLOTargetSeconds: c.SLOTargetSeconds,
			GiveUpSeconds:    c.GiveUpSeconds,
			cohortIdx:        cohortIdx,
		})
	}
	return out
}

func sloClass(c *Cohort) string {
	if c.SLOClass != "" {
		return c.SLOClass
	}
	return c.Name
}

// interArrival draws one inter-arrival gap in seconds for a client with
// the given rate. Gamma matches the mean 1/rate with CV² = burst; shape
// 1/burst < 1 produces the clumpy pattern bursty clients show.
func interArrival(rng *rand.Rand, kind ArrivalKind, rate, burst float64) float64 {
	mean := 1 / rate
	if kind != Gamma || burst == 1 {
		return rng.ExpFloat64() * mean
	}
	shape := 1 / burst
	scale := mean * burst
	return gammaRand(rng, shape) * scale
}

// gammaRand samples Gamma(shape, 1) by Marsaglia–Tsang squeeze; the
// shape < 1 case boosts through Gamma(shape+1) · U^(1/shape).
func gammaRand(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaRand(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weightedTemplate draws a template index by weight (uniform when all
// weights are zero). One Float64 per call, always, to keep the draw
// order fixed.
func weightedTemplate(rng *rand.Rand, ts []Template) int {
	u := rng.Float64()
	total := 0.0
	for _, t := range ts {
		total += t.Weight
	}
	if total <= 0 {
		return int(u * float64(len(ts)))
	}
	u *= total
	for i, t := range ts {
		u -= t.Weight
		if u < 0 {
			return i
		}
	}
	return len(ts) - 1
}

// weightedBound draws one bound by weight; an empty distribution means
// "no bounds" (the zero Bound). One Float64 per call, always.
func weightedBound(rng *rand.Rand, bs []Bound) Bound {
	u := rng.Float64()
	if len(bs) == 0 {
		return Bound{}
	}
	total := 0.0
	for _, b := range bs {
		total += b.Weight
	}
	if total <= 0 {
		return bs[int(u*float64(len(bs)))]
	}
	u *= total
	for _, b := range bs {
		u -= b.Weight
		if u < 0 {
			return b
		}
	}
	return bs[len(bs)-1]
}

// bindSQL fills the template parameter and appends the bound clauses in
// the grammar the server's bindBounds would produce, so generated SQL
// and parameter-bound SQL price to the same admission templates.
func bindSQL(pattern string, param int, b Bound) string {
	sql := fmt.Sprintf(pattern, param)
	if b.ErrorPct > 0 {
		sql += fmt.Sprintf(" ERROR WITHIN %g%%", b.ErrorPct)
		if b.Confidence > 0 {
			sql += fmt.Sprintf(" AT CONFIDENCE %g%%", b.Confidence)
		}
	}
	if b.TimeSeconds > 0 {
		sql += fmt.Sprintf(" WITHIN %g SECONDS", b.TimeSeconds)
	}
	return sql
}

// fnv64 hashes a string (trace fingerprinting helper, exported through
// Trace.Fingerprint).
func fnv64(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}
