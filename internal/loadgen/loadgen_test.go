package loadgen

import (
	"bytes"
	"math"
	"testing"
	"time"

	"blinkdb/internal/sqlparser"
)

func testSpec(seed int64) Spec {
	return Spec{
		Seed:     seed,
		Duration: 2 * time.Second,
		Cohorts: []Cohort{
			{
				Name: "interactive", SLOClass: "interactive", SLOTargetSeconds: 0.5,
				Clients: 8, RateQPS: 40, RateSkew: 1.2,
				Arrival: Poisson,
				Templates: []Template{
					{Name: "avg-city", Pattern: "SELECT AVG(sessiontime) FROM sessions WHERE city = 'c%d'", Cardinality: 50, Skew: 1.3, Weight: 3},
					{Name: "cnt-os", Pattern: "SELECT COUNT(sessiontime) FROM sessions WHERE os = 'o%d'", Cardinality: 10, Skew: 1.1, Weight: 1},
				},
				Bounds: []Bound{
					{ErrorPct: 5, Confidence: 95, Weight: 2},
					{Weight: 1},
				},
				StreamFraction: 0.25,
				GiveUpSeconds:  2,
			},
			{
				Name: "batch", SLOClass: "batch",
				Clients: 2, RateQPS: 10,
				Arrival: Gamma, Burstiness: 4,
				Templates: []Template{
					{Name: "sum-genre", Pattern: "SELECT SUM(sessiontime) FROM sessions WHERE genre = 'g%d'", Cardinality: 20, Weight: 1},
				},
				Bounds: []Bound{{TimeSeconds: 0.2, Weight: 1}},
			},
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testSpec(42)).Bytes()
	b := Generate(testSpec(42)).Bytes()
	if !bytes.Equal(a, b) {
		t.Fatal("two Generate calls with equal specs produced different traces")
	}
	c := Generate(testSpec(43)).Bytes()
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := Generate(testSpec(7))
	if len(tr.Requests) == 0 {
		t.Fatal("empty trace")
	}
	wire := tr.Bytes()
	back, err := ReadTrace(bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if back.Seed != tr.Seed || back.Duration != tr.Duration || len(back.Requests) != len(tr.Requests) {
		t.Fatalf("round-trip header mismatch: got seed=%d dur=%v n=%d", back.Seed, back.Duration, len(back.Requests))
	}
	if !bytes.Equal(back.Bytes(), wire) {
		t.Fatal("Encode∘ReadTrace∘Encode is not the identity on bytes")
	}
	if back.Fingerprint() != tr.Fingerprint() {
		t.Fatal("fingerprint changed across round-trip")
	}
}

func TestReadTraceRejectsTruncation(t *testing.T) {
	wire := Generate(testSpec(7)).Bytes()
	// Drop the last line (keep the trailing newline of the previous one).
	cut := bytes.LastIndexByte(wire[:len(wire)-1], '\n')
	if _, err := ReadTrace(bytes.NewReader(wire[:cut+1])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestArrivalRateMatchesSpec(t *testing.T) {
	spec := Spec{
		Seed: 1, Duration: 10 * time.Second,
		Cohorts: []Cohort{{
			Name: "c", Clients: 4, RateQPS: 100, Arrival: Poisson,
			Templates: []Template{{Pattern: "SELECT AVG(x) FROM t WHERE k = 'v%d'", Cardinality: 5, Weight: 1}},
		}},
	}
	n := len(Generate(spec).Requests)
	want := 1000.0
	if math.Abs(float64(n)-want) > 0.15*want {
		t.Fatalf("got %d arrivals for a 100 qps × 10 s cohort, want ~%.0f", n, want)
	}
}

func TestGammaBurstier(t *testing.T) {
	base := Cohort{
		Name: "c", Clients: 1, RateQPS: 200,
		Templates: []Template{{Pattern: "SELECT AVG(x) FROM t WHERE k = 'v%d'", Cardinality: 5, Weight: 1}},
	}
	cv2 := func(kind ArrivalKind, burst float64) float64 {
		c := base
		c.Arrival, c.Burstiness = kind, burst
		tr := Generate(Spec{Seed: 9, Duration: 20 * time.Second, Cohorts: []Cohort{c}})
		var gaps []float64
		for i := 1; i < len(tr.Requests); i++ {
			gaps = append(gaps, float64(tr.Requests[i].AtMicros-tr.Requests[i-1].AtMicros))
		}
		mean, m2 := 0.0, 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			m2 += (g - mean) * (g - mean)
		}
		return m2 / float64(len(gaps)) / (mean * mean)
	}
	p, g := cv2(Poisson, 1), cv2(Gamma, 8)
	if p > 2 {
		t.Fatalf("Poisson CV² = %.2f, want ~1", p)
	}
	if g < 2*p {
		t.Fatalf("Gamma(burstiness 8) CV² = %.2f not clearly burstier than Poisson %.2f", g, p)
	}
}

func TestRateSkewFavorsFirstClient(t *testing.T) {
	spec := Spec{
		Seed: 3, Duration: 5 * time.Second,
		Cohorts: []Cohort{{
			Name: "c", Clients: 6, RateQPS: 120, RateSkew: 1.5, Arrival: Poisson,
			Templates: []Template{{Pattern: "SELECT AVG(x) FROM t WHERE k = 'v%d'", Cardinality: 5, Weight: 1}},
		}},
	}
	counts := map[int]int{}
	for _, r := range Generate(spec).Requests {
		counts[r.Client]++
	}
	if counts[0] <= counts[5]*2 {
		t.Fatalf("rate skew 1.5: client 0 issued %d, client 5 issued %d — expected a clear head/tail split", counts[0], counts[5])
	}
}

func TestGeneratedSQLParses(t *testing.T) {
	tr := Generate(testSpec(11))
	seen := map[string]bool{}
	for _, r := range tr.Requests {
		if seen[r.SQL] {
			continue
		}
		seen[r.SQL] = true
		if _, err := sqlparser.Parse(r.SQL); err != nil {
			t.Fatalf("generated SQL does not parse: %q: %v", r.SQL, err)
		}
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct queries generated; mix too narrow", len(seen))
	}
}

func TestScheduleOrdered(t *testing.T) {
	tr := Generate(testSpec(5))
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].AtMicros < tr.Requests[i-1].AtMicros {
			t.Fatalf("schedule out of order at %d", i)
		}
	}
}
