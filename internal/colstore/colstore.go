// Package colstore implements the columnar block layout underlying
// BlinkDB-Go's vectorized scan path. A Data holds one storage block's rows
// decomposed into per-column typed slices — []float64, []int64,
// dictionary-encoded strings — plus a null bitmap per column and per-block
// rate/stratum-frequency arrays (the sampling metadata storage.RowMeta
// carries row-by-row in the row layout).
//
// The layout is the paper's §5 speed argument made physical: cached sample
// blocks are scanned at memory bandwidth because the executor's compiled
// predicates and aggregate kernels run over contiguous machine-typed
// slices instead of chasing one tagged value at a time.
//
// Encoding is LOSSLESS with respect to the row layout: Value(col, i)
// reconstructs exactly the types.Value that was appended (kind included),
// so a columnar scan produces bit-identical results to a row scan. A
// column whose non-null values mix kinds falls back to a verbatim
// []types.Value encoding — still contiguous, never wrong.
//
// # Encodings
//
// The builder picks, per column and per block, the tightest encoding that
// reconstructs every appended value exactly:
//
//   - EncRLE — run-length encoding: maximal runs of exactly-equal values
//     (NULL runs included; a run's value is stored verbatim, so mixed-kind
//     columns RLE-encode too) as (RunVals[r], RunEnds[r]) pairs. Chosen
//     when the column compresses well: by default when the mean run length
//     is ≥ rleMinMeanRun, or ≥ rleHintedMinMeanRun for columns hinted
//     sorted via Builder.HintSorted (stratification columns are sorted
//     within a stratum by construction, so sample builders hint them).
//     The executor's compare kernels emit one verdict per run and its
//     group resolution advances once per run instead of once per row.
//   - EncFloat / EncInt / EncBool — one machine-typed slice plus an
//     optional null bitmap, when every non-null value shares that kind.
//   - EncDict — strings as codes into a first-appearance dictionary.
//   - EncValue — verbatim []types.Value, the fallback for columns whose
//     non-null values mix kinds (and don't run-length compress).
//
// Losslessness contract: for every encoding, Value(i) returns the exact
// types.Value appended (kind, payload bits, NaN and ±0 included — run
// detection uses struct equality, never float comparison) and IsNull(i)
// matches the appended value's kind. Encoding choice can therefore never
// change a query result, only its speed; the Options knobs (DisableRLE,
// sorted-column hints) are purely physical.
package colstore

import (
	"math/bits"
	"sort"

	"blinkdb/internal/types"
)

// Encoding says how one column's values are physically stored.
type Encoding uint8

const (
	// EncFloat stores KindFloat values in Floats (0 at null positions).
	EncFloat Encoding = iota
	// EncInt stores KindInt values in Ints.
	EncInt
	// EncBool stores KindBool payloads in Ints (0/1).
	EncBool
	// EncDict stores KindString values as Codes into Dict (first-appearance
	// order, so encoding is deterministic for a given row sequence).
	EncDict
	// EncValue stores values verbatim — the fallback for columns whose
	// non-null values mix kinds. Nulls is not used; Values holds them.
	EncValue
	// EncRLE stores maximal runs of exactly-equal values: RunVals[r] is
	// run r's value (verbatim, NULL included — Nulls is not used) and
	// RunEnds[r] its exclusive end row. Runs group by struct equality, so
	// the encoding is lossless for every kind, NaN payloads included.
	EncRLE
)

// String renders the encoding name.
func (e Encoding) String() string {
	switch e {
	case EncFloat:
		return "float"
	case EncInt:
		return "int"
	case EncBool:
		return "bool"
	case EncDict:
		return "dict"
	case EncRLE:
		return "rle"
	default:
		return "value"
	}
}

// Column is one column of a block in columnar form. Exactly the payload
// fields selected by Enc are meaningful. Nulls is a little-endian bitmap
// (bit i set ⇒ row i is NULL); nil means the column has no nulls. EncValue
// columns keep nulls inline in Values and leave Nulls nil.
type Column struct {
	Enc    Encoding
	Floats []float64
	Ints   []int64
	Codes  []uint32
	Dict   []string
	Values []types.Value
	Nulls  []uint64

	// RunVals/RunEnds are the EncRLE payload: RunVals[r] is the value of
	// run r, RunEnds[r] its exclusive cumulative end row (ascending;
	// RunEnds[len-1] is the column length). Nulls is unused — NULL runs
	// store types.Null() in RunVals.
	RunVals []types.Value
	RunEnds []int32

	// NaNFree is true when the builder PROVED the column holds no float
	// NaN (trivially true for int/bool/dict columns). The executor's
	// all-true zone shortcut relies on it: NaN compares unordered, so a
	// zone map cannot vouch for a block that might contain one. The zero
	// value (false) is the conservative side, so hand-assembled columns
	// stay correct, just ineligible for the shortcut.
	NaNFree bool
}

// Len returns the column's row count as implied by its payload slice.
func (c *Column) Len() int {
	switch c.Enc {
	case EncFloat:
		return len(c.Floats)
	case EncInt, EncBool:
		return len(c.Ints)
	case EncDict:
		return len(c.Codes)
	case EncRLE:
		if len(c.RunEnds) == 0 {
			return 0
		}
		return int(c.RunEnds[len(c.RunEnds)-1])
	default:
		return len(c.Values)
	}
}

// RunOf returns the index of the run containing row i (EncRLE only).
func (c *Column) RunOf(i int) int {
	return sort.Search(len(c.RunEnds), func(r int) bool { return c.RunEnds[r] > int32(i) })
}

// IsNull reports whether row i of the column is NULL.
func (c *Column) IsNull(i int) bool {
	switch c.Enc {
	case EncValue:
		return c.Values[i].IsNull()
	case EncRLE:
		return c.RunVals[c.RunOf(i)].IsNull()
	}
	return c.Nulls != nil && c.Nulls[i>>6]&(1<<uint(i&63)) != 0
}

// Value reconstructs row i's value exactly as it was appended.
func (c *Column) Value(i int) types.Value {
	switch c.Enc {
	case EncValue:
		return c.Values[i]
	case EncRLE:
		return c.RunVals[c.RunOf(i)]
	default:
		if c.IsNull(i) {
			return types.Null()
		}
	}
	switch c.Enc {
	case EncFloat:
		return types.Float(c.Floats[i])
	case EncInt:
		return types.Int(c.Ints[i])
	case EncBool:
		return types.Value{Kind: types.KindBool, I: c.Ints[i]}
	default: // EncDict
		return types.Str(c.Dict[c.Codes[i]])
	}
}

// NumNulls counts the NULL rows (n is the column length, needed to mask
// the bitmap's tail word).
func (c *Column) NumNulls(n int) int {
	if c.Enc == EncValue {
		count := 0
		for i := range c.Values {
			if c.Values[i].IsNull() {
				count++
			}
		}
		return count
	}
	if c.Enc == EncRLE {
		count := 0
		start := int32(0)
		for r, v := range c.RunVals {
			if v.IsNull() {
				count += int(c.RunEnds[r] - start)
			}
			start = c.RunEnds[r]
		}
		return count
	}
	if c.Nulls == nil {
		return 0
	}
	count := 0
	for wi, w := range c.Nulls {
		if rem := n - wi*64; rem < 64 {
			w &= (1 << uint(rem)) - 1
		}
		count += bits.OnesCount64(w)
	}
	return count
}

// MinMax returns the smallest and largest non-NULL value of the column
// under types.Compare, and false when every row is NULL. Note this is a
// summary helper (tests use it to cross-check encodings), NOT the source
// of block zone maps: storage.Builder extends zones from every appended
// value — NULLs included — identically in both layouts, so zone-based
// pruning stays bit-identical across layouts.
func (c *Column) MinMax(n int) (min, max types.Value, ok bool) {
	for i := 0; i < n; i++ {
		if c.IsNull(i) {
			continue
		}
		v := c.Value(i)
		if !ok {
			min, max, ok = v, v, true
			continue
		}
		if types.Compare(v, min) < 0 {
			min = v
		}
		if types.Compare(v, max) > 0 {
			max = v
		}
	}
	return min, max, ok
}

// Data is the columnar payload of one block: every column plus the per-row
// sampling metadata. When every row shares the same (rate, stratum
// frequency) pair — base tables, uniform samples, single-stratum sample
// blocks — the arrays are dropped and the shared pair is stored once,
// which is what lets the executor hoist rate math out of its inner loop.
type Data struct {
	// N is the row count.
	N int
	// Cols holds one entry per schema column.
	Cols []Column
	// Rates[i] is row i's effective sampling rate; nil when uniform.
	Rates []float64
	// Freqs[i] is row i's stratum frequency; nil when uniform.
	Freqs []int64
	// UniformRate is every row's rate when Rates is nil.
	UniformRate float64
	// UniformFreq is every row's stratum frequency when Freqs is nil.
	UniformFreq int64
}

// Uniform reports whether every row shares one (rate, freq) pair.
func (d *Data) Uniform() bool { return d.Rates == nil && d.Freqs == nil }

// RateAt returns row i's sampling rate.
func (d *Data) RateAt(i int) float64 {
	if d.Rates == nil {
		return d.UniformRate
	}
	return d.Rates[i]
}

// FreqAt returns row i's stratum frequency.
func (d *Data) FreqAt(i int) int64 {
	if d.Freqs == nil {
		return d.UniformFreq
	}
	return d.Freqs[i]
}

// Row materialises row i as a fresh types.Row (safe to retain).
func (d *Data) Row(i int) types.Row {
	return d.RowInto(make(types.Row, len(d.Cols)), i)
}

// RowInto materialises row i into buf (which must have len(d.Cols)) and
// returns it. The scan paths reuse one buffer per block with this.
func (d *Data) RowInto(buf types.Row, i int) types.Row {
	for c := range d.Cols {
		buf[c] = d.Cols[c].Value(i)
	}
	return buf
}

// RowKey renders the projection of row i onto the given column indices,
// byte-identical to types.RowKey over the materialised row.
func (d *Data) RowKey(i int, idx []int) string {
	if len(idx) == 1 {
		return d.Cols[idx[0]].Value(i).Key()
	}
	buf := make([]byte, 0, 16*len(idx))
	for k, j := range idx {
		if k > 0 {
			buf = append(buf, '\x1f')
		}
		buf = append(buf, d.Cols[j].Value(i).Key()...)
	}
	return string(buf)
}
