package colstore

import (
	"math"

	"blinkdb/internal/types"
)

// RLE selection thresholds: a column is run-length encoded when its mean
// run length reaches the threshold (runs ≤ n/threshold), i.e. when one
// per-run verdict replaces at least that many per-row ones. Columns
// hinted sorted (HintSorted) use the lower bar: stratification columns
// are sorted across strata by construction, so even short runs are
// structural, not luck, and survive refreshes.
const (
	rleMinRows          = 16
	rleMinMeanRun       = 8
	rleHintedMinMeanRun = 2
)

// Builder accumulates one block's rows and encodes them into a Data. It
// mirrors storage.Builder's per-block accumulation: Append rows (with
// their sampling metadata), then Finish to freeze the columnar payload.
// Encoding decisions are made at Finish time from the values actually
// seen, so a column degrades gracefully (typed slice → verbatim values)
// instead of ever rejecting a row.
type Builder struct {
	cols  [][]types.Value
	rates []float64
	freqs []int64

	// noRLE disables run-length encoding (plain typed encodings only);
	// sorted marks columns hinted as sorted/low-cardinality.
	noRLE  bool
	sorted []bool
}

// NewBuilder creates a builder for blocks of numCols columns.
func NewBuilder(numCols int) *Builder {
	return &Builder{cols: make([][]types.Value, numCols)}
}

// DisableRLE makes the builder skip run-length encoding and emit only the
// plain typed encodings — the pre-RLE physical design. Purely physical:
// results are bit-identical either way (the equivalence tests' "plain
// columnar" leg is built with this).
func (b *Builder) DisableRLE() { b.noRLE = true }

// HintSorted marks columns as sorted (or low-cardinality-clustered) so
// the encoder accepts shorter runs for them. Out-of-range indices are
// ignored. The hint never affects correctness — only the RLE threshold.
func (b *Builder) HintSorted(cols ...int) {
	if b.sorted == nil {
		b.sorted = make([]bool, len(b.cols))
	}
	for _, c := range cols {
		if c >= 0 && c < len(b.sorted) {
			b.sorted[c] = true
		}
	}
}

// Len returns the number of rows appended so far.
func (b *Builder) Len() int { return len(b.rates) }

// Append adds one row. len(r) must equal the builder's column count;
// short rows are padded with NULLs (mirroring how the row layout treats
// missing trailing values on read).
func (b *Builder) Append(r types.Row, rate float64, freq int64) {
	for c := range b.cols {
		v := types.Null()
		if c < len(r) {
			v = r[c]
		}
		b.cols[c] = append(b.cols[c], v)
	}
	b.rates = append(b.rates, rate)
	b.freqs = append(b.freqs, freq)
}

// Finish encodes the accumulated rows into a Data and resets the builder
// for the next block.
func (b *Builder) Finish() *Data {
	n := len(b.rates)
	d := &Data{N: n, Cols: make([]Column, len(b.cols))}
	for c := range b.cols {
		hinted := b.sorted != nil && b.sorted[c]
		d.Cols[c] = encodeColumn(b.cols[c], !b.noRLE, hinted)
		b.cols[c] = nil
	}
	d.Rates, d.UniformRate = compressFloats(b.rates)
	d.Freqs, d.UniformFreq = compressInts(b.freqs)
	b.rates, b.freqs = nil, nil
	return d
}

// FromRows encodes a complete block in one call.
func FromRows(numCols int, rows []types.Row, rates []float64, freqs []int64) *Data {
	b := NewBuilder(numCols)
	for i, r := range rows {
		b.Append(r, rates[i], freqs[i])
	}
	return b.Finish()
}

// compressFloats drops the array when every element is equal, returning
// the shared value.
func compressFloats(xs []float64) ([]float64, float64) {
	if len(xs) == 0 {
		return nil, 1
	}
	for _, x := range xs[1:] {
		if x != xs[0] {
			return xs, 0
		}
	}
	return nil, xs[0]
}

func compressInts(xs []int64) ([]int64, int64) {
	if len(xs) == 0 {
		return nil, 0
	}
	for _, x := range xs[1:] {
		if x != xs[0] {
			return xs, 0
		}
	}
	return nil, xs[0]
}

// countRuns counts maximal runs of exactly-equal values. Equality is
// struct equality — kind AND payload bits — so Int(1)/Float(1) start
// separate runs and NaN never extends one (NaN != NaN), which is what
// keeps the encoding lossless.
func countRuns(vals []types.Value) int {
	if len(vals) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
	}
	return runs
}

// noNaN reports whether no value in vals is a float NaN.
func noNaN(vals []types.Value) bool {
	for _, v := range vals {
		if v.Kind == types.KindFloat && math.IsNaN(v.F) {
			return false
		}
	}
	return true
}

// encodeColumn picks the tightest lossless encoding for one column.
func encodeColumn(vals []types.Value, allowRLE, hinted bool) Column {
	if allowRLE && len(vals) >= rleMinRows {
		threshold := rleMinMeanRun
		if hinted {
			threshold = rleHintedMinMeanRun
		}
		if runs := countRuns(vals); runs*threshold <= len(vals) {
			col := Column{Enc: EncRLE, NaNFree: noNaN(vals)}
			col.RunVals = make([]types.Value, 0, runs)
			col.RunEnds = make([]int32, 0, runs)
			for i, v := range vals {
				if i == 0 || v != vals[i-1] {
					col.RunVals = append(col.RunVals, v)
					col.RunEnds = append(col.RunEnds, int32(i+1))
				} else {
					col.RunEnds[len(col.RunEnds)-1] = int32(i + 1)
				}
			}
			return col
		}
	}

	kind := types.KindNull
	mixed := false
	hasNull := false
	for _, v := range vals {
		if v.Kind == types.KindNull {
			hasNull = true
			continue
		}
		if kind == types.KindNull {
			kind = v.Kind
		} else if v.Kind != kind {
			mixed = true
			break
		}
	}
	if mixed {
		return Column{Enc: EncValue, Values: vals, NaNFree: noNaN(vals)}
	}

	var nulls []uint64
	if hasNull {
		nulls = make([]uint64, (len(vals)+63)/64)
		for i, v := range vals {
			if v.Kind == types.KindNull {
				nulls[i>>6] |= 1 << uint(i&63)
			}
		}
	}
	switch kind {
	case types.KindFloat:
		xs := make([]float64, len(vals))
		nanFree := true
		for i, v := range vals {
			xs[i] = v.F
			if math.IsNaN(v.F) {
				nanFree = false
			}
		}
		return Column{Enc: EncFloat, Floats: xs, Nulls: nulls, NaNFree: nanFree}
	case types.KindInt:
		xs := make([]int64, len(vals))
		for i, v := range vals {
			xs[i] = v.I
		}
		return Column{Enc: EncInt, Ints: xs, Nulls: nulls, NaNFree: true}
	case types.KindBool:
		xs := make([]int64, len(vals))
		for i, v := range vals {
			xs[i] = v.I
		}
		return Column{Enc: EncBool, Ints: xs, Nulls: nulls, NaNFree: true}
	case types.KindString:
		codes := make([]uint32, len(vals))
		var dict []string
		lookup := map[string]uint32{}
		for i, v := range vals {
			if v.Kind == types.KindNull {
				continue
			}
			code, ok := lookup[v.S]
			if !ok {
				code = uint32(len(dict))
				lookup[v.S] = code
				dict = append(dict, v.S)
			}
			codes[i] = code
		}
		return Column{Enc: EncDict, Codes: codes, Dict: dict, Nulls: nulls, NaNFree: true}
	default:
		// Every value NULL: any typed encoding with a full null bitmap
		// reconstructs it; pick float.
		return Column{Enc: EncFloat, Floats: make([]float64, len(vals)), Nulls: nulls, NaNFree: true}
	}
}
