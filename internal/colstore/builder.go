package colstore

import "blinkdb/internal/types"

// Builder accumulates one block's rows and encodes them into a Data. It
// mirrors storage.Builder's per-block accumulation: Append rows (with
// their sampling metadata), then Finish to freeze the columnar payload.
// Encoding decisions are made at Finish time from the values actually
// seen, so a column degrades gracefully (typed slice → verbatim values)
// instead of ever rejecting a row.
type Builder struct {
	cols  [][]types.Value
	rates []float64
	freqs []int64
}

// NewBuilder creates a builder for blocks of numCols columns.
func NewBuilder(numCols int) *Builder {
	return &Builder{cols: make([][]types.Value, numCols)}
}

// Len returns the number of rows appended so far.
func (b *Builder) Len() int { return len(b.rates) }

// Append adds one row. len(r) must equal the builder's column count;
// short rows are padded with NULLs (mirroring how the row layout treats
// missing trailing values on read).
func (b *Builder) Append(r types.Row, rate float64, freq int64) {
	for c := range b.cols {
		v := types.Null()
		if c < len(r) {
			v = r[c]
		}
		b.cols[c] = append(b.cols[c], v)
	}
	b.rates = append(b.rates, rate)
	b.freqs = append(b.freqs, freq)
}

// Finish encodes the accumulated rows into a Data and resets the builder
// for the next block.
func (b *Builder) Finish() *Data {
	n := len(b.rates)
	d := &Data{N: n, Cols: make([]Column, len(b.cols))}
	for c := range b.cols {
		d.Cols[c] = encodeColumn(b.cols[c])
		b.cols[c] = nil
	}
	d.Rates, d.UniformRate = compressFloats(b.rates)
	d.Freqs, d.UniformFreq = compressInts(b.freqs)
	b.rates, b.freqs = nil, nil
	return d
}

// FromRows encodes a complete block in one call.
func FromRows(numCols int, rows []types.Row, rates []float64, freqs []int64) *Data {
	b := NewBuilder(numCols)
	for i, r := range rows {
		b.Append(r, rates[i], freqs[i])
	}
	return b.Finish()
}

// compressFloats drops the array when every element is equal, returning
// the shared value.
func compressFloats(xs []float64) ([]float64, float64) {
	if len(xs) == 0 {
		return nil, 1
	}
	for _, x := range xs[1:] {
		if x != xs[0] {
			return xs, 0
		}
	}
	return nil, xs[0]
}

func compressInts(xs []int64) ([]int64, int64) {
	if len(xs) == 0 {
		return nil, 0
	}
	for _, x := range xs[1:] {
		if x != xs[0] {
			return xs, 0
		}
	}
	return nil, xs[0]
}

// encodeColumn picks the tightest lossless encoding for one column.
func encodeColumn(vals []types.Value) Column {
	kind := types.KindNull
	mixed := false
	hasNull := false
	for _, v := range vals {
		if v.Kind == types.KindNull {
			hasNull = true
			continue
		}
		if kind == types.KindNull {
			kind = v.Kind
		} else if v.Kind != kind {
			mixed = true
			break
		}
	}
	if mixed {
		return Column{Enc: EncValue, Values: vals}
	}

	var nulls []uint64
	if hasNull {
		nulls = make([]uint64, (len(vals)+63)/64)
		for i, v := range vals {
			if v.Kind == types.KindNull {
				nulls[i>>6] |= 1 << uint(i&63)
			}
		}
	}
	switch kind {
	case types.KindFloat:
		xs := make([]float64, len(vals))
		for i, v := range vals {
			xs[i] = v.F
		}
		return Column{Enc: EncFloat, Floats: xs, Nulls: nulls}
	case types.KindInt:
		xs := make([]int64, len(vals))
		for i, v := range vals {
			xs[i] = v.I
		}
		return Column{Enc: EncInt, Ints: xs, Nulls: nulls}
	case types.KindBool:
		xs := make([]int64, len(vals))
		for i, v := range vals {
			xs[i] = v.I
		}
		return Column{Enc: EncBool, Ints: xs, Nulls: nulls}
	case types.KindString:
		codes := make([]uint32, len(vals))
		var dict []string
		lookup := map[string]uint32{}
		for i, v := range vals {
			if v.Kind == types.KindNull {
				continue
			}
			code, ok := lookup[v.S]
			if !ok {
				code = uint32(len(dict))
				lookup[v.S] = code
				dict = append(dict, v.S)
			}
			codes[i] = code
		}
		return Column{Enc: EncDict, Codes: codes, Dict: dict, Nulls: nulls}
	default:
		// Every value NULL: any typed encoding with a full null bitmap
		// reconstructs it; pick float.
		return Column{Enc: EncFloat, Floats: make([]float64, len(vals)), Nulls: nulls}
	}
}
