package colstore

import (
	"math/rand"
	"reflect"
	"testing"

	"blinkdb/internal/types"
)

// randomValue draws a value of a random kind, including NULLs.
func randomValue(rng *rand.Rand) types.Value {
	switch rng.Intn(5) {
	case 0:
		return types.Null()
	case 1:
		return types.Int(rng.Int63n(1000) - 500)
	case 2:
		return types.Float(rng.NormFloat64() * 100)
	case 3:
		return types.Str([]string{"NY", "SF", "LA", "Austin", ""}[rng.Intn(5)])
	default:
		return types.Bool(rng.Intn(2) == 0)
	}
}

// TestRoundTripTyped pins the lossless-encoding contract per encoding:
// every appended value (kind included) reconstructs exactly.
func TestRoundTripTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gens := map[string]func() types.Value{
		"float": func() types.Value { return types.Float(rng.NormFloat64()) },
		"int":   func() types.Value { return types.Int(rng.Int63()) },
		"bool":  func() types.Value { return types.Bool(rng.Intn(2) == 0) },
		"dict":  func() types.Value { return types.Str([]string{"a", "bb", "ccc"}[rng.Intn(3)]) },
	}
	wantEnc := map[string]Encoding{"float": EncFloat, "int": EncInt, "bool": EncBool, "dict": EncDict}
	for name, gen := range gens {
		for _, withNulls := range []bool{false, true} {
			rows := make([]types.Row, 200)
			rates := make([]float64, len(rows))
			freqs := make([]int64, len(rows))
			for i := range rows {
				v := gen()
				if withNulls && rng.Intn(4) == 0 {
					v = types.Null()
				}
				rows[i] = types.Row{v}
				rates[i] = 1
			}
			d := FromRows(1, rows, rates, freqs)
			if d.Cols[0].Enc != wantEnc[name] {
				t.Fatalf("%s(nulls=%v): encoding = %v, want %v", name, withNulls, d.Cols[0].Enc, wantEnc[name])
			}
			for i := range rows {
				if got := d.Cols[0].Value(i); !reflect.DeepEqual(got, rows[i][0]) {
					t.Fatalf("%s(nulls=%v) row %d: got %#v want %#v", name, withNulls, i, got, rows[i][0])
				}
			}
		}
	}
}

// TestRoundTripMixed pins the EncValue fallback: mixed-kind columns still
// reconstruct exactly.
func TestRoundTripMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 500
	rows := make([]types.Row, n)
	rates := make([]float64, n)
	freqs := make([]int64, n)
	for i := range rows {
		rows[i] = types.Row{randomValue(rng), randomValue(rng), randomValue(rng)}
		rates[i] = 1 / float64(1+rng.Intn(4))
		freqs[i] = int64(rng.Intn(3) * 100)
	}
	d := FromRows(3, rows, rates, freqs)
	if d.N != n {
		t.Fatalf("N = %d, want %d", d.N, n)
	}
	buf := make(types.Row, 3)
	for i := range rows {
		if got := d.Row(i); !reflect.DeepEqual(got, rows[i]) {
			t.Fatalf("row %d: got %v want %v", i, got, rows[i])
		}
		if got := d.RowInto(buf, i); !reflect.DeepEqual(got, rows[i]) {
			t.Fatalf("RowInto %d: got %v want %v", i, got, rows[i])
		}
		if d.RateAt(i) != rates[i] || d.FreqAt(i) != freqs[i] {
			t.Fatalf("meta %d: (%g,%d) want (%g,%d)", i, d.RateAt(i), d.FreqAt(i), rates[i], freqs[i])
		}
	}
}

// TestUniformMetaCompression pins that constant (rate, freq) pairs drop
// their per-row arrays — the property the executor's hoisted-rate fast
// path dispatches on.
func TestUniformMetaCompression(t *testing.T) {
	rows := []types.Row{{types.Int(1)}, {types.Int(2)}, {types.Int(3)}}
	d := FromRows(1, rows, []float64{1, 1, 1}, []int64{7, 7, 7})
	if !d.Uniform() {
		t.Fatalf("uniform meta not compressed: %+v", d)
	}
	if d.RateAt(2) != 1 || d.FreqAt(0) != 7 {
		t.Fatalf("uniform accessors wrong: rate=%g freq=%d", d.RateAt(2), d.FreqAt(0))
	}
	d2 := FromRows(1, rows, []float64{1, 0.5, 1}, []int64{7, 7, 7})
	if d2.Uniform() || d2.RateAt(1) != 0.5 || d2.FreqAt(1) != 7 {
		t.Fatalf("varying rates must keep the array: %+v", d2)
	}
}

// TestRowKeyMatchesTypesRowKey pins byte-identity of the columnar key
// projection with types.RowKey — the property the sampler and optimizer
// stratify on.
func TestRowKeyMatchesTypesRowKey(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 300
	rows := make([]types.Row, n)
	rates := make([]float64, n)
	freqs := make([]int64, n)
	for i := range rows {
		rows[i] = types.Row{randomValue(rng), randomValue(rng), randomValue(rng), randomValue(rng)}
		rates[i] = 1
	}
	d := FromRows(4, rows, rates, freqs)
	for _, idx := range [][]int{{0}, {2}, {0, 1}, {3, 1, 2}} {
		for i := range rows {
			if got, want := d.RowKey(i, idx), types.RowKey(rows[i], idx); got != want {
				t.Fatalf("idx %v row %d: key %q want %q", idx, i, got, want)
			}
		}
	}
}

// TestMinMaxAndNulls checks the zone-map helper and null accounting.
func TestMinMaxAndNulls(t *testing.T) {
	rows := []types.Row{
		{types.Float(3), types.Null()},
		{types.Null(), types.Null()},
		{types.Float(-1), types.Null()},
		{types.Float(7), types.Null()},
	}
	d := FromRows(2, rows, []float64{1, 1, 1, 1}, make([]int64, 4))
	min, max, ok := d.Cols[0].MinMax(d.N)
	if !ok || min.F != -1 || max.F != 7 {
		t.Fatalf("minmax = %v %v %v", min, max, ok)
	}
	if got := d.Cols[0].NumNulls(d.N); got != 1 {
		t.Fatalf("NumNulls = %d, want 1", got)
	}
	if _, _, ok := d.Cols[1].MinMax(d.N); ok {
		t.Fatalf("all-null column reported a min/max")
	}
	if got := d.Cols[1].NumNulls(d.N); got != 4 {
		t.Fatalf("all-null NumNulls = %d, want 4", got)
	}
}

// TestDictDeterminism pins first-appearance dictionary order, which keeps
// block encoding deterministic for a fixed row sequence.
func TestDictDeterminism(t *testing.T) {
	rows := []types.Row{
		{types.Str("b")}, {types.Str("a")}, {types.Str("b")}, {types.Str("c")},
	}
	d := FromRows(1, rows, []float64{1, 1, 1, 1}, make([]int64, 4))
	want := []string{"b", "a", "c"}
	if !reflect.DeepEqual(d.Cols[0].Dict, want) {
		t.Fatalf("dict = %v, want %v", d.Cols[0].Dict, want)
	}
	if !reflect.DeepEqual(d.Cols[0].Codes, []uint32{0, 1, 0, 2}) {
		t.Fatalf("codes = %v", d.Cols[0].Codes)
	}
}
