package colstore

import (
	"math"
	"reflect"
	"testing"

	"blinkdb/internal/types"
)

// runRows builds a single-column block of the given runs, each entry
// (value, length).
func runRows(runs []struct {
	v types.Value
	n int
}) []types.Row {
	var rows []types.Row
	for _, r := range runs {
		for i := 0; i < r.n; i++ {
			rows = append(rows, types.Row{r.v})
		}
	}
	return rows
}

func encodeSingle(rows []types.Row, opts ...func(*Builder)) Column {
	b := NewBuilder(1)
	for _, o := range opts {
		o(b)
	}
	for _, r := range rows {
		b.Append(r, 1, 0)
	}
	return b.Finish().Cols[0]
}

// TestRLERoundTrip pins the lossless contract on a run-shaped column that
// mixes kinds, NULL runs, and single-row runs: every Value/IsNull must
// match the appended sequence exactly, and the encoder must pick EncRLE.
func TestRLERoundTrip(t *testing.T) {
	rows := runRows([]struct {
		v types.Value
		n int
	}{
		{types.Str("alpha"), 20},
		{types.Null(), 15},
		{types.Int(7), 12},
		{types.Float(7), 1}, // kind switch: must not merge with Int(7)
		{types.Float(7), 0},
		{types.Bool(true), 30},
		{types.Str(""), 10},
	})
	col := encodeSingle(rows)
	if col.Enc != EncRLE {
		t.Fatalf("encoding = %v, want rle", col.Enc)
	}
	if got := col.Len(); got != len(rows) {
		t.Fatalf("Len = %d, want %d", got, len(rows))
	}
	for i, r := range rows {
		if got := col.Value(i); !reflect.DeepEqual(got, r[0]) {
			t.Fatalf("row %d: got %#v want %#v", i, got, r[0])
		}
		if got, want := col.IsNull(i), r[0].Kind == types.KindNull; got != want {
			t.Fatalf("row %d: IsNull = %v, want %v", i, got, want)
		}
	}
	if got, want := col.NumNulls(len(rows)), 15; got != want {
		t.Fatalf("NumNulls = %d, want %d", got, want)
	}
	// Int(7) and Float(7) compare equal but are distinct values — the
	// round trip above already proves they landed in separate runs.
}

// TestRLEThresholds pins encoder selection: long runs → RLE, short runs →
// typed encoding, hinted columns accept shorter runs, DisableRLE wins over
// everything, and tiny blocks never RLE.
func TestRLEThresholds(t *testing.T) {
	longRuns := runRows([]struct {
		v types.Value
		n int
	}{{types.Str("a"), 50}, {types.Str("b"), 50}})
	shortRuns := make([]types.Row, 120) // mean run 3: below default bar, above hinted
	for i := range shortRuns {
		shortRuns[i] = types.Row{types.Str([]string{"a", "a", "a", "b", "b", "b"}[i%6])}
	}
	tiny := runRows([]struct {
		v types.Value
		n int
	}{{types.Str("a"), 15}}) // under rleMinRows

	if col := encodeSingle(longRuns); col.Enc != EncRLE {
		t.Errorf("long runs: encoding = %v, want rle", col.Enc)
	}
	if col := encodeSingle(longRuns, (*Builder).DisableRLE); col.Enc != EncDict {
		t.Errorf("DisableRLE: encoding = %v, want dict", col.Enc)
	}
	if col := encodeSingle(shortRuns); col.Enc != EncDict {
		t.Errorf("short runs unhinted: encoding = %v, want dict", col.Enc)
	}
	if col := encodeSingle(shortRuns, func(b *Builder) { b.HintSorted(0) }); col.Enc != EncRLE {
		t.Errorf("short runs hinted: encoding = %v, want rle", col.Enc)
	}
	if col := encodeSingle(tiny); col.Enc != EncDict {
		t.Errorf("tiny block: encoding = %v, want dict", col.Enc)
	}
	// Out-of-range hints are ignored, not a panic.
	if col := encodeSingle(longRuns, func(b *Builder) { b.HintSorted(-1, 5) }); col.Enc != EncRLE {
		t.Errorf("out-of-range hint: encoding = %v, want rle", col.Enc)
	}
}

// TestRLENaN pins two NaN properties: NaN never extends a run (struct
// equality — losslessness depends on it), and a NaN anywhere clears
// NaNFree so zone implication refuses the column.
func TestRLENaN(t *testing.T) {
	rows := runRows([]struct {
		v types.Value
		n int
	}{{types.Float(1), 40}, {types.Float(math.NaN()), 1}, {types.Float(1), 40}})
	// Insert a second consecutive NaN: distinct runs even side by side.
	rows = append(rows, types.Row{types.Float(math.NaN())})
	col := encodeSingle(rows)
	if col.Enc != EncRLE {
		t.Fatalf("encoding = %v, want rle", col.Enc)
	}
	if col.NaNFree {
		t.Error("NaNFree = true on a NaN-bearing column")
	}
	for i := range rows {
		got, want := col.Value(i), rows[i][0]
		if got.Kind != want.Kind || (got.F != want.F && !(math.IsNaN(got.F) && math.IsNaN(want.F))) {
			t.Fatalf("row %d: got %#v want %#v", i, got, want)
		}
	}
	clean := encodeSingle(runRows([]struct {
		v types.Value
		n int
	}{{types.Float(1), 40}, {types.Float(2), 40}}))
	if !clean.NaNFree {
		t.Error("NaNFree = false on a NaN-free RLE column")
	}
}

// TestRLEMinMaxAndRowKey checks the generic readers (MinMax, RowKey) see
// through the RLE encoding identically to the plain one.
func TestRLEMinMaxAndRowKey(t *testing.T) {
	rows := runRows([]struct {
		v types.Value
		n int
	}{{types.Int(5), 30}, {types.Null(), 10}, {types.Int(-3), 30}})
	rates := make([]float64, len(rows))
	freqs := make([]int64, len(rows))
	for i := range rates {
		rates[i] = 1
	}
	b := NewBuilder(1)
	for i, r := range rows {
		b.Append(r, rates[i], freqs[i])
	}
	rle := b.Finish()
	plain := func() *Data {
		b := NewBuilder(1)
		b.DisableRLE()
		for i, r := range rows {
			b.Append(r, rates[i], freqs[i])
		}
		return b.Finish()
	}()
	if rle.Cols[0].Enc != EncRLE || plain.Cols[0].Enc == EncRLE {
		t.Fatalf("leg encodings = %v / %v", rle.Cols[0].Enc, plain.Cols[0].Enc)
	}
	gotMin, gotMax, gotOK := rle.Cols[0].MinMax(rle.N)
	wantMin, wantMax, wantOK := plain.Cols[0].MinMax(plain.N)
	if gotOK != wantOK || !reflect.DeepEqual(gotMin, wantMin) || !reflect.DeepEqual(gotMax, wantMax) {
		t.Fatalf("MinMax: rle (%v,%v,%v) vs plain (%v,%v,%v)", gotMin, gotMax, gotOK, wantMin, wantMax, wantOK)
	}
	idx := []int{0}
	for i := range rows {
		if kr, kp := rle.RowKey(i, idx), plain.RowKey(i, idx); kr != kp {
			t.Fatalf("RowKey(%d): rle %q vs plain %q", i, kr, kp)
		}
	}
}

// TestRunOf pins the run-locator used by the scan kernels' run cursors.
func TestRunOf(t *testing.T) {
	col := encodeSingle(runRows([]struct {
		v types.Value
		n int
	}{{types.Str("a"), 17}, {types.Str("b"), 1}, {types.Str("c"), 46}}))
	if col.Enc != EncRLE {
		t.Fatalf("encoding = %v, want rle", col.Enc)
	}
	for i := 0; i < 64; i++ {
		want := 0
		switch {
		case i >= 18:
			want = 2
		case i >= 17:
			want = 1
		}
		if got := col.RunOf(i); got != want {
			t.Fatalf("RunOf(%d) = %d, want %d", i, got, want)
		}
	}
}
