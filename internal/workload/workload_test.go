package workload

import (
	"math"
	"math/rand"
	"testing"

	"blinkdb/internal/exec"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

func TestConvivaGeneration(t *testing.T) {
	d := Conviva(ConvivaConfig{Rows: 20000, Seed: 1})
	if d.Name != "conviva" {
		t.Errorf("name = %q", d.Name)
	}
	if d.Table.NumRows() != 20000 {
		t.Errorf("rows = %d", d.Table.NumRows())
	}
	if err := storage.Validate(d.Table, 100); err != nil {
		t.Fatal(err)
	}
	if len(d.Templates) != 7 {
		t.Errorf("templates = %d", len(d.Templates))
	}
}

func TestConvivaCitySkew(t *testing.T) {
	d := Conviva(ConvivaConfig{Rows: 50000, Seed: 2})
	idx := d.Table.Schema.Index("city")
	counts := map[string]int{}
	d.Table.Scan(func(r types.Row, _ storage.RowMeta) bool {
		counts[r[idx].S]++
		return true
	})
	// Zipf: the top city should hold a large share, and there should be a
	// long tail of rare cities.
	max, rare := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < 10 {
			rare++
		}
	}
	if float64(max)/50000 < 0.15 {
		t.Errorf("top city share %.3f too small for Zipf 1.5", float64(max)/50000)
	}
	if rare < 50 {
		t.Errorf("only %d rare cities; want a long tail", rare)
	}
}

func TestConvivaGenreUniform(t *testing.T) {
	d := Conviva(ConvivaConfig{Rows: 40000, Seed: 3})
	idx := d.Table.Schema.Index("genre")
	counts := map[string]int{}
	d.Table.Scan(func(r types.Row, _ storage.RowMeta) bool {
		counts[r[idx].S]++
		return true
	})
	if len(counts) != 8 {
		t.Fatalf("genres = %d", len(counts))
	}
	for g, c := range counts {
		share := float64(c) / 40000
		if math.Abs(share-0.125) > 0.02 {
			t.Errorf("genre %s share %.3f, want ≈ 0.125 (uniform)", g, share)
		}
	}
}

func TestTemplateWeightsSumNearOne(t *testing.T) {
	for _, d := range []*Dataset{
		Conviva(ConvivaConfig{Rows: 100, Seed: 1}),
		TPCH(TPCHConfig{Rows: 100, Seed: 1}),
	} {
		sum := 0.0
		for _, tpl := range d.Templates {
			sum += tpl.Weight
		}
		if math.Abs(sum-1) > 0.05 {
			t.Errorf("%s template weights sum to %.3f", d.Name, sum)
		}
	}
}

func TestAllTemplateQueriesParseAndCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, d := range []*Dataset{
		Conviva(ConvivaConfig{Rows: 100, Seed: 1}),
		TPCH(TPCHConfig{Rows: 100, Seed: 1}),
	} {
		for _, tpl := range d.Templates {
			for trial := 0; trial < 10; trial++ {
				src := tpl.Gen(rng, "ERROR WITHIN 10% AT CONFIDENCE 95%")
				q, err := sqlparser.Parse(src)
				if err != nil {
					t.Fatalf("%s/%s: parse %q: %v", d.Name, tpl.Name, src, err)
				}
				if _, err := exec.Compile(q, d.Table.Schema); err != nil {
					t.Fatalf("%s/%s: compile %q: %v", d.Name, tpl.Name, src, err)
				}
				// Template column declaration must match the query.
				cs, err := q.Columns(d.Table.Schema)
				if err != nil {
					t.Fatal(err)
				}
				if !cs.SubsetOf(tpl.Columns) {
					t.Errorf("%s/%s: query columns %v not within declared %v",
						d.Name, tpl.Name, cs, tpl.Columns)
				}
			}
		}
	}
}

func TestTPCHOrderStructure(t *testing.T) {
	d := TPCH(TPCHConfig{Rows: 30000, Seed: 5})
	okIdx := d.Table.Schema.Index("orderkey")
	counts := map[int64]int{}
	d.Table.Scan(func(r types.Row, _ storage.RowMeta) bool {
		counts[r[okIdx].I]++
		return true
	})
	for ok, c := range counts {
		if c < 1 || c > 7 {
			t.Fatalf("order %d has %d lines; spec is 1-7", ok, c)
		}
	}
	// Average close to 4.
	avg := 30000.0 / float64(len(counts))
	if avg < 3 || avg > 5 {
		t.Errorf("avg lines/order = %.2f", avg)
	}
}

func TestDrawTemplateFollowsWeights(t *testing.T) {
	d := Conviva(ConvivaConfig{Rows: 100, Seed: 1})
	rng := rand.New(rand.NewSource(6))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[d.DrawTemplate(rng).Name]++
	}
	// T1 weight 0.39, T4 weight 0.317.
	if got := float64(counts["T1"]) / n; math.Abs(got-0.39) > 0.03 {
		t.Errorf("T1 draw rate = %.3f, want ≈ 0.39", got)
	}
	if got := float64(counts["T4"]) / n; math.Abs(got-0.317) > 0.03 {
		t.Errorf("T4 draw rate = %.3f, want ≈ 0.317", got)
	}
}

func TestTemplateLookup(t *testing.T) {
	d := TPCH(TPCHConfig{Rows: 100, Seed: 1})
	if d.Template("T3") == nil {
		t.Error("T3 missing")
	}
	if d.Template("T99") != nil {
		t.Error("T99 should be nil")
	}
	if len(d.OptimizerTemplates()) != len(d.Templates) {
		t.Error("OptimizerTemplates length mismatch")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Conviva(ConvivaConfig{Rows: 1000, Seed: 9})
	b := Conviva(ConvivaConfig{Rows: 1000, Seed: 9})
	if a.Table.Bytes() != b.Table.Bytes() {
		t.Error("same seed must give identical tables")
	}
	c := Conviva(ConvivaConfig{Rows: 1000, Seed: 10})
	if a.Table.Bytes() == c.Table.Bytes() {
		t.Error("different seeds should differ (byte sizes almost surely)")
	}
}

func BenchmarkConvivaGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Conviva(ConvivaConfig{Rows: 50000, Seed: int64(i)})
	}
}
