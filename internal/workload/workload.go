// Package workload generates the two evaluation datasets of §6.1 at
// laptop scale, preserving the statistical structure the paper relies on:
//
//   - Conviva: a de-normalised video-session fact table with heavily
//     Zipf-skewed dimensions (city, customer, ASN, object id, DMA) and a
//     weighted query-template mix matching Fig. 2 / Fig. 6(a). The real
//     17 TB trace is proprietary; this synthetic equivalent exercises the
//     same code paths (repro substitution documented in DESIGN.md).
//   - TPC-H: a lineitem-shaped table with the 22 benchmark queries mapped
//     to the 6 unique templates of §6.1 / Fig. 6(b).
//
// Each dataset carries query templates with weights and random
// instantiation functions so experiments can draw realistic traces.
package workload

import (
	"fmt"
	"math/rand"

	"blinkdb/internal/optimizer"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
	"blinkdb/internal/zipf"
)

// QueryTemplate is one template ⟨φ, w⟩ plus a generator that instantiates
// it with random constants (the paper: templates fix columns, not values).
type QueryTemplate struct {
	// Name labels the template in experiment output (T1..Tn).
	Name string
	// Weight is the normalized frequency in the trace.
	Weight float64
	// Columns is φ: the WHERE ∪ GROUP BY column set.
	Columns types.ColumnSet
	// Gen instantiates the template. The suffix (bound clause) is
	// appended verbatim.
	Gen func(rng *rand.Rand, boundSuffix string) string
}

// Dataset is a generated table plus its query workload.
type Dataset struct {
	// Name is "conviva" or "tpch".
	Name string
	// Table is the fact table.
	Table *storage.Table
	// Templates is the weighted template mix.
	Templates []QueryTemplate
}

// OptimizerTemplates converts the workload to optimizer input.
func (d *Dataset) OptimizerTemplates() []optimizer.TemplateSpec {
	out := make([]optimizer.TemplateSpec, len(d.Templates))
	for i, t := range d.Templates {
		out[i] = optimizer.TemplateSpec{Columns: t.Columns, Weight: t.Weight}
	}
	return out
}

// Template returns the named template or nil.
func (d *Dataset) Template(name string) *QueryTemplate {
	for i := range d.Templates {
		if d.Templates[i].Name == name {
			return &d.Templates[i]
		}
	}
	return nil
}

// DrawTemplate samples a template according to the weights.
func (d *Dataset) DrawTemplate(rng *rand.Rand) *QueryTemplate {
	total := 0.0
	for _, t := range d.Templates {
		total += t.Weight
	}
	u := rng.Float64() * total
	for i := range d.Templates {
		u -= d.Templates[i].Weight
		if u <= 0 {
			return &d.Templates[i]
		}
	}
	return &d.Templates[len(d.Templates)-1]
}

// ---------- Conviva ----------

// ConvivaConfig sizes the synthetic Conviva dataset.
type ConvivaConfig struct {
	Rows         int
	Nodes        int
	RowsPerBlock int
	Seed         int64
	Place        storage.Placement
	Layout       storage.Layout
}

func (c ConvivaConfig) normalize() ConvivaConfig {
	if c.Rows <= 0 {
		c.Rows = 100000
	}
	if c.Nodes <= 0 {
		c.Nodes = 100
	}
	if c.RowsPerBlock <= 0 {
		c.RowsPerBlock = 1024
	}
	return c
}

// ConvivaSchema returns the session-log schema (a representative subset of
// the paper's 104-column fact table).
func ConvivaSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "dt", Kind: types.KindInt},              // date (yyyymmdd)
		types.Column{Name: "customer", Kind: types.KindString},     // content customer
		types.Column{Name: "city", Kind: types.KindString},         // viewer city
		types.Column{Name: "country", Kind: types.KindString},      // viewer country
		types.Column{Name: "dma", Kind: types.KindString},          // market area
		types.Column{Name: "asn", Kind: types.KindInt},             // autonomous system
		types.Column{Name: "os", Kind: types.KindString},           // device OS
		types.Column{Name: "browser", Kind: types.KindString},      // browser
		types.Column{Name: "genre", Kind: types.KindString},        // content genre
		types.Column{Name: "objectid", Kind: types.KindInt},        // media object
		types.Column{Name: "url", Kind: types.KindString},          // site URL
		types.Column{Name: "jointimems", Kind: types.KindFloat},    // startup join time
		types.Column{Name: "sessiontimems", Kind: types.KindFloat}, // session duration
		types.Column{Name: "bufferingms", Kind: types.KindFloat},   // rebuffering time
		types.Column{Name: "bitratekbps", Kind: types.KindFloat},   // average bitrate
		types.Column{Name: "endedflag", Kind: types.KindInt},       // clean exit?
	)
}

// Conviva generates the synthetic Conviva dataset. Dimension skews follow
// the Zipf exponents Appendix A reports as typical for these columns.
func Conviva(cfg ConvivaConfig) *Dataset {
	cfg = cfg.normalize()
	schema := ConvivaSchema()
	tab := storage.NewTable("sessions", schema)
	b := storage.NewBuilderLayout(tab, cfg.RowsPerBlock, cfg.Nodes, cfg.Place, cfg.Layout)
	rng := rand.New(rand.NewSource(cfg.Seed))

	cityGen := zipf.NewGeneratorCDF(rng, 1.5, 400)
	custGen := zipf.NewGeneratorCDF(rng, 1.4, 300)
	countryGen := zipf.NewGeneratorCDF(rng, 1.3, 60)
	dmaGen := zipf.NewGeneratorCDF(rng, 1.3, 150)
	asnGen := zipf.NewGeneratorCDF(rng, 1.5, 250)
	objGen := zipf.NewGeneratorCDF(rng, 1.6, 2000)
	urlGen := zipf.NewGeneratorCDF(rng, 1.6, 500)
	oses := []string{"Win7", "OSX", "WinXP", "Linux", "iOS", "Android"}
	browsers := []string{"Chrome", "Firefox", "IE", "Safari", "Opera"}
	genres := []string{"western", "drama", "comedy", "news", "sports", "kids", "music", "horror"}

	for i := 0; i < cfg.Rows; i++ {
		// Measures are quantized the way Conviva's pipeline bucketizes
		// them (the paper stratifies on jointimems, which only makes
		// sense over a bounded value domain).
		sessionTime := quantize(rng.ExpFloat64()*600000, 5000) // mean 10 min in ms
		joinTime := quantize(rng.ExpFloat64()*2000, 100)
		buffering := quantize(rng.ExpFloat64()*5000, 250)
		ended := int64(1)
		if rng.Float64() < 0.15 {
			ended = 0
		}
		b.AppendRow(types.Row{
			types.Int(20120301 + int64(rng.Intn(30))),
			types.Str(fmt.Sprintf("cust%03d", custGen.Next())),
			types.Str(fmt.Sprintf("city%03d", cityGen.Next())),
			types.Str(fmt.Sprintf("country%02d", countryGen.Next())),
			types.Str(fmt.Sprintf("dma%03d", dmaGen.Next())),
			types.Int(int64(7000 + asnGen.Next())),
			types.Str(oses[skewedIdx(rng, len(oses))]),
			types.Str(browsers[skewedIdx(rng, len(browsers))]),
			types.Str(genres[rng.Intn(len(genres))]), // uniform: §2.3's Genre
			types.Int(int64(objGen.Next())),
			types.Str(fmt.Sprintf("u%03d.example.com", urlGen.Next())),
			types.Float(joinTime),
			types.Float(sessionTime),
			types.Float(buffering),
			types.Float([]float64{400, 800, 1500, 3000}[skewedIdx(rng, 4)]),
			types.Int(ended),
		})
	}
	d := &Dataset{Name: "conviva", Table: b.Finish()}
	d.Templates = convivaTemplates()
	return d
}

// quantize rounds v down to a multiple of step.
func quantize(v, step float64) float64 {
	return float64(int(v/step)) * step
}

// skewedIdx draws index 0 with ~50% probability, decaying geometrically.
func skewedIdx(rng *rand.Rand, n int) int {
	for i := 0; i < n-1; i++ {
		if rng.Float64() < 0.5 {
			return i
		}
	}
	return n - 1
}

// convivaTemplates mirrors the template mix of Fig. 6(a)/Fig. 7(a): the
// five heavy templates (T1–T5 with the paper's reported frequencies) plus
// a light tail of additional templates representative of the 42 in the
// real trace.
func convivaTemplates() []QueryTemplate {
	day := func(rng *rand.Rand) int64 { return 20120301 + int64(rng.Intn(30)) }
	return []QueryTemplate{
		{
			Name: "T1", Weight: 0.39,
			Columns: types.NewColumnSet("dt", "jointimems"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT COUNT(*), AVG(sessiontimems) FROM sessions WHERE dt = %d AND jointimems < %d %s",
					day(rng), 500+rng.Intn(3000), suffix)
			},
		},
		{
			Name: "T2", Weight: 0.245,
			Columns: types.NewColumnSet("objectid", "jointimems"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT AVG(jointimems) FROM sessions WHERE objectid = %d AND jointimems > %d %s",
					1+rng.Intn(100), 100+rng.Intn(500), suffix)
			},
		},
		{
			Name: "T3", Weight: 0.024,
			Columns: types.NewColumnSet("dt", "dma"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT SUM(sessiontimems) FROM sessions WHERE dma = 'dma%03d' GROUP BY dt %s",
					1+rng.Intn(40), suffix)
			},
		},
		{
			Name: "T4", Weight: 0.317,
			Columns: types.NewColumnSet("country", "endedflag"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM sessions WHERE country = 'country%02d' AND endedflag = 0 %s",
					1+rng.Intn(20), suffix)
			},
		},
		{
			Name: "T5", Weight: 0.024,
			Columns: types.NewColumnSet("dt", "country"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT AVG(bufferingms) FROM sessions WHERE dt = %d GROUP BY country %s",
					day(rng), suffix)
			},
		},
		// Tail templates (small weights; exercise probing paths).
		{
			Name: "T6", Weight: 0.01,
			Columns: types.NewColumnSet("city"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT AVG(sessiontimems) FROM sessions WHERE city = 'city%03d' %s",
					1+rng.Intn(50), suffix)
			},
		},
		{
			Name: "T7", Weight: 0.01,
			Columns: types.NewColumnSet("asn", "city"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT AVG(sessiontimems) FROM sessions WHERE asn = %d GROUP BY city %s",
					7001+rng.Intn(30), suffix)
			},
		},
	}
}

// ---------- TPC-H ----------

// TPCHConfig sizes the synthetic TPC-H lineitem table.
type TPCHConfig struct {
	Rows         int
	Nodes        int
	RowsPerBlock int
	Seed         int64
	Place        storage.Placement
	Layout       storage.Layout
}

func (c TPCHConfig) normalize() TPCHConfig {
	if c.Rows <= 0 {
		c.Rows = 60000
	}
	if c.Nodes <= 0 {
		c.Nodes = 100
	}
	if c.RowsPerBlock <= 0 {
		c.RowsPerBlock = 1024
	}
	return c
}

// TPCHSchema returns the lineitem schema (TPC-H column subset; date
// columns named per Fig. 6(b)'s abbreviations).
func TPCHSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "orderkey", Kind: types.KindInt},
		types.Column{Name: "partkey", Kind: types.KindInt},
		types.Column{Name: "suppkey", Kind: types.KindInt},
		types.Column{Name: "linenumber", Kind: types.KindInt},
		types.Column{Name: "quantity", Kind: types.KindFloat},
		types.Column{Name: "extendedprice", Kind: types.KindFloat},
		types.Column{Name: "discount", Kind: types.KindFloat},
		types.Column{Name: "tax", Kind: types.KindFloat},
		types.Column{Name: "returnflag", Kind: types.KindString},
		types.Column{Name: "linestatus", Kind: types.KindString},
		types.Column{Name: "shipdt", Kind: types.KindInt},
		types.Column{Name: "commitdt", Kind: types.KindInt},
		types.Column{Name: "receiptdt", Kind: types.KindInt},
		types.Column{Name: "shipmode", Kind: types.KindString},
	)
}

// TPCH generates a lineitem-shaped table. Orders have 1–7 lines (TPC-H
// spec); supplier references are Zipf-skewed to give the [orderkey
// suppkey] family something to stratify.
func TPCH(cfg TPCHConfig) *Dataset {
	cfg = cfg.normalize()
	schema := TPCHSchema()
	tab := storage.NewTable("lineitem", schema)
	b := storage.NewBuilderLayout(tab, cfg.RowsPerBlock, cfg.Nodes, cfg.Place, cfg.Layout)
	rng := rand.New(rand.NewSource(cfg.Seed))

	suppGen := zipf.NewGeneratorCDF(rng, 1.3, 1000)
	modes := []string{"TRUCK", "MAIL", "SHIP", "RAIL", "AIR", "REG AIR", "FOB"}
	flags := []string{"N", "N", "N", "A", "R"} // N dominates (open orders)

	orderkey := int64(0)
	linesLeft := 0
	for i := 0; i < cfg.Rows; i++ {
		if linesLeft == 0 {
			orderkey++
			linesLeft = 1 + rng.Intn(7)
		}
		linesLeft--
		ship := int64(19940101 + rng.Intn(2000))
		qty := float64(1 + rng.Intn(50))
		price := qty * (900 + rng.Float64()*100000) / 10
		b.AppendRow(types.Row{
			types.Int(orderkey),
			types.Int(int64(1 + rng.Intn(20000))),
			types.Int(int64(suppGen.Next())),
			types.Int(int64(1 + i%7)),
			types.Float(qty),
			types.Float(price),
			types.Float(float64(rng.Intn(11)) / 100),
			types.Float(float64(rng.Intn(9)) / 100),
			types.Str(flags[rng.Intn(len(flags))]),
			types.Str([]string{"O", "F"}[rng.Intn(2)]),
			types.Int(ship),
			types.Int(ship + int64(rng.Intn(60))),
			types.Int(ship + int64(rng.Intn(90))),
			types.Str(modes[skewedIdx(rng, len(modes))]),
		})
	}
	d := &Dataset{Name: "tpch", Table: b.Finish()}
	d.Templates = tpchTemplates()
	return d
}

// tpchTemplates maps the 22 TPC-H queries onto the 6 unique templates of
// §6.1 with the per-template frequencies of Fig. 7(b).
func tpchTemplates() []QueryTemplate {
	return []QueryTemplate{
		{
			Name: "T1", Weight: 0.18,
			Columns: types.NewColumnSet("orderkey", "suppkey"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT SUM(extendedprice) FROM lineitem WHERE suppkey = %d AND orderkey > %d %s",
					1+rng.Intn(50), rng.Intn(5000), suffix)
			},
		},
		{
			Name: "T2", Weight: 0.27,
			Columns: types.NewColumnSet("commitdt", "receiptdt"),
			Gen: func(rng *rand.Rand, suffix string) string {
				d := 19940101 + rng.Intn(1500)
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM lineitem WHERE commitdt < %d AND receiptdt > %d %s",
					d+60, d, suffix)
			},
		},
		{
			Name: "T3", Weight: 0.14,
			Columns: types.NewColumnSet("quantity"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT AVG(extendedprice) FROM lineitem WHERE quantity < %d %s",
					5+rng.Intn(20), suffix)
			},
		},
		{
			Name: "T4", Weight: 0.32,
			Columns: types.NewColumnSet("discount"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT SUM(extendedprice) FROM lineitem WHERE discount >= 0.0%d %s",
					1+rng.Intn(9), suffix)
			},
		},
		{
			Name: "T5", Weight: 0.045,
			Columns: types.NewColumnSet("shipmode"),
			Gen: func(rng *rand.Rand, suffix string) string {
				modes := []string{"TRUCK", "MAIL", "SHIP", "RAIL", "AIR"}
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM lineitem WHERE shipmode = '%s' %s",
					modes[rng.Intn(len(modes))], suffix)
			},
		},
		{
			Name: "T6", Weight: 0.045,
			Columns: types.NewColumnSet("linestatus", "returnflag"),
			Gen: func(rng *rand.Rand, suffix string) string {
				return fmt.Sprintf(
					"SELECT SUM(quantity), AVG(extendedprice) FROM lineitem WHERE returnflag = '%s' GROUP BY linestatus %s",
					[]string{"N", "A", "R"}[rng.Intn(3)], suffix)
			},
		},
	}
}
