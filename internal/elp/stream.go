package elp

// Streaming-refinement query sessions (the serving-side face of §4.4).
//
// A family stores its resolutions as non-overlapping delta block sets, so
// a query that will finally be answered at resolution F has a natural
// chain of cheaper answers along the way: the probe resolution pv, then
// pv+1, …, F−1, each adding one delta's worth of blocks. RunStream walks
// that chain and emits one Refinement per level, so a client sees a first
// (coarse, wide-bound) answer long before the final one.
//
// # Why refinements rescan the prefix
//
// A Horvitz-Thompson weight in this engine is per-row w = max(1, f/K_ℓ):
// it depends on the LEVEL CAP, not just the row. Partial aggregates
// accumulated at cap K_ℓ therefore cannot be folded into an answer at cap
// K_{ℓ+1} — summing delta-partials across caps gives Σ(K_d−K_{d−1})·f/K_d
// ≠ f, a biased estimator with no scalar correction. The engine's
// existing §4.4 delta-reuse path resolves the same tension by rescanning
// the pruned 0..ℓ prefix while CHARGING only the delta blocks (the
// probe's blocks are memory-resident; the simulated cluster prices what a
// real cluster would newly read). Streaming follows that exact house
// semantics: each refinement scans the prefix at its own cap — through
// the per-level memo, so repeated sessions of one template scan nothing —
// and its SimLatency is the delta-priced cumulative cost, monotonically
// approaching the final's.
//
// # Bit-identity of the final refinement
//
// The final refinement does not take a special path: it is produced by
// the same chooseConjunctive/scanConjunctive pair the non-streaming
// Execute runs, against the same memo, with the same merge and LIMIT
// handling — so it is DeepEqual (including latencies and cache markers)
// to what Run would have returned, by construction. Intermediate
// refinements add executor invocations (visible in Stats.PlanExecs) but
// never perturb the final answer; with Options.DeltaReuse disabled, or
// when the chain has a single step (result-cache hit, singleflight share,
// exact template, probe already at the final level), the stream degrades
// to exactly one final refinement.

import (
	"context"
	"fmt"
	"time"

	"blinkdb/internal/exec"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/telemetry"
	"blinkdb/internal/types"
)

// Refinement is one streamed answer of a refinement session. Non-final
// refinements are intermediate answers at coarser resolutions; the final
// refinement is bit-identical to the non-streaming Run response.
type Refinement struct {
	// Resp is the full response at this refinement's resolution. Callers
	// must treat it as read-only: results may be shared with the runtime's
	// memo and caches.
	Resp *Response
	// Level is the sample resolution that produced this refinement (max
	// across disjuncts; -1 = base table).
	Level int
	// Seq numbers refinements from 0 within the session.
	Seq int
	// Final marks the last refinement of the session.
	Final bool
}

// midEmitter receives one intermediate (pre-final) refinement response.
type midEmitter func(resp *Response, level int) error

// RunStream executes q as a streaming-refinement session: emit is called
// once per refinement, in order, ending with exactly one Final
// refinement. An emit error aborts the session and is returned.
// A session that cannot refine (result-cache hit, singleflight share,
// exact template, single-level chain, DeltaReuse disabled) emits exactly
// one final refinement, so emit is always called at least once on
// success. Cancellation follows RunCtx: ctx is checked between
// refinements and inside scans.
func (rt *Runtime) RunStream(ctx context.Context, q *sqlparser.Query, emit func(Refinement) error) error {
	return rt.RunStreamTraced(ctx, q, nil, emit)
}

// RunStreamTraced is RunStream with query-lifecycle telemetry: each
// refinement records a "refinement N" span (note level=L, final on the
// last) under the execute span, so span start times order first-answer
// vs final-answer. The completed session is observed against its
// template key exactly like a non-streaming Run (one Observation, final
// answer's accounting).
func (rt *Runtime) RunStreamTraced(ctx context.Context, q *sqlparser.Query, tr *telemetry.Trace, emit func(Refinement) error) error {
	reg := rt.opt.Telemetry
	var started time.Time
	if reg != nil {
		started = time.Now()
	}
	if err := ctx.Err(); err != nil {
		rt.bump(&rt.stats.cancelled)
		return err
	}
	root := tr.Root()
	nsp := root.Child("normalize")
	key, params := sqlparser.Normalize(q)
	nsp.End()
	seq := 0
	emitMid := func(resp *Response, level int) error {
		r := Refinement{Resp: resp, Level: level, Seq: seq}
		seq++
		return emit(r)
	}
	final, err := rt.streamKeyed(ctx, q, key, params, root, emitMid)
	if err != nil {
		if isCancellation(err) {
			rt.bump(&rt.stats.cancelled)
		}
		return err
	}
	if reg != nil {
		reg.Observe(key, observationFor(final, time.Since(started).Seconds()))
	}
	return emit(Refinement{Resp: final, Level: responseLevel(final), Seq: seq, Final: true})
}

// responseLevel is the resolution a response was served at: the max level
// across its decisions, -1 when any disjunct used the base table.
func responseLevel(resp *Response) int {
	level := 0
	for _, d := range resp.Decisions {
		if d.UsedBase {
			return -1
		}
		if d.View.Level > level {
			level = d.View.Level
		}
	}
	return level
}

// streamKeyed is runKeyed's streaming twin: identical cache, singleflight
// and annotation logic, with intermediate refinements flowing through
// emitMid on the execute (leader) path. Cache hits and singleflight
// shares stream nothing here — the caller emits their answer as the
// session's single final refinement.
func (rt *Runtime) streamKeyed(ctx context.Context, q *sqlparser.Query, key string, params []types.Value, root *telemetry.Span, emitMid midEmitter) (*Response, error) {
	if rt.results == nil {
		resp, note, _, err := rt.streamPrepared(ctx, q, key, params, root, emitMid)
		if err != nil {
			return nil, err
		}
		annotate(resp, note)
		return resp, nil
	}
	rkey := key + "\x1e" + sqlparser.ParamsKey(params)
	lsp := root.Child("result-cache lookup")
	if ent, ok := rt.results.Get(rkey); ok {
		if rt.freshDeps(ent.deps) {
			lsp.End()
			lsp.Note("result=hit")
			rt.bump(&rt.stats.resultHits)
			msp := root.Child("materialize")
			resp := ent.resp.clone()
			annotateResult(resp, "hit")
			msp.End()
			return resp, nil
		}
		rt.results.Sweep(func(_ string, cand *resultEntry) bool { return rt.freshDeps(cand.deps) })
	}
	lsp.End()
	// Intermediates only flow on the miss (leader) path, and a miss's
	// final is annotated result=miss — mark its intermediates the same
	// way so a session's refinements agree about where they came from.
	wrapped := func(resp *Response, level int) error {
		annotateResult(resp, "miss")
		return emitMid(resp, level)
	}
	var cachedHit bool
	fsp := root.Child("execute")
	ent, shared, err := rt.flights.Do(rkey, func() (*resultEntry, error) {
		var err error
		var e *resultEntry
		e, cachedHit, err = rt.streamLeader(ctx, q, key, params, rkey, fsp, wrapped)
		return e, err
	})
	fsp.End()
	if err != nil {
		// Same fallback as runKeyed: a cancelled leader poisons the shared
		// error, but a waiter with a live context owes an answer — and,
		// streaming, it owes the refinements too, so the private retry
		// keeps the emitter.
		if shared && isCancellation(err) && ctx.Err() == nil {
			rsp := root.Child("cancelled-leader re-execute")
			ent, cachedHit, err = rt.streamLeader(ctx, q, key, params, rkey, rsp, wrapped)
			rsp.End()
			if err != nil {
				return nil, err
			}
			shared = false
		} else {
			return nil, err
		}
	}
	if shared && !rt.freshDeps(ent.deps) {
		// Stale-shared: see runKeyed. The private re-execution streams.
		rsp := root.Child("stale-shared re-execute")
		ent, cachedHit, err = rt.streamLeader(ctx, q, key, params, rkey, rsp, wrapped)
		rsp.End()
		if err != nil {
			return nil, err
		}
		shared = false
	}
	msp := root.Child("materialize")
	resp := ent.resp.clone()
	switch {
	case shared:
		rt.bump(&rt.stats.resultShared)
		annotateResult(resp, "shared")
		fsp.Note("result=shared")
	case cachedHit:
		rt.bump(&rt.stats.resultHits)
		annotateResult(resp, "hit")
		fsp.Note("result=hit")
	default:
		annotate(resp, ent.note)
		annotateResult(resp, "miss")
		fsp.Note("result=miss")
	}
	msp.End()
	return resp, nil
}

// streamLeader is resultLeader with a refinement sink: the singleflight
// leader streams its intermediates while computing the answer that every
// concurrent waiter will share (waiters emit only their final).
func (rt *Runtime) streamLeader(ctx context.Context, q *sqlparser.Query, key string, params []types.Value, rkey string, sp *telemetry.Span, emitMid midEmitter) (*resultEntry, bool, error) {
	if cached, ok := rt.results.Get(rkey); ok && rt.freshDeps(cached.deps) {
		return cached, true, nil
	}
	resp, note, deps, err := rt.streamPrepared(ctx, q, key, params, sp, emitMid)
	if err != nil {
		return nil, false, err
	}
	rt.bump(&rt.stats.resultMisses)
	ent := &resultEntry{resp: resp, note: note, deps: deps}
	rt.results.Put(rkey, ent)
	return ent, false, nil
}

// streamParams executes a prepared query, streaming intermediate
// refinements through emitMid when non-nil. The returned final Response
// is bit-identical to the emitMid==nil (non-streaming executeParams)
// path: the final always runs the exact chooseConjunctive/scanConjunctive
// pair against the shared memo. See the package comment at the top of
// this file for why intermediates rescan the pruned prefix rather than
// folding delta partials across caps.
func (rt *Runtime) streamParams(ctx context.Context, pq *PreparedQuery, q *sqlparser.Query, params []types.Value, sp *telemetry.Span, emitMid midEmitter) (*Response, error) {
	bsp := sp.Child("bind+scan")
	defer bsp.End()
	plan := pq.prepPlan
	if q != pq.prepQ {
		var err error
		plan, err = exec.Compile(q, pq.schema)
		if err != nil {
			return nil, err
		}
	}
	conf := rt.confidenceFor(q)
	paramsEq := sqlparser.ParamsEqual(params, pq.prepParams)

	if pq.exact {
		res, err := pq.base.baseMemo(ctx, rt, plan, pq.entry.Table, conf, pq.joins, paramsEq, bsp)
		if err != nil {
			return nil, err
		}
		d := Decision{UsedBase: true, Reason: "no bounds: exact execution on base table"}
		d.ReadLatency = rt.latencyOfBase(pq.entry.Table.Blocks) + rt.broadcastCost(pq.joins)
		rt.recordLevel(-1)
		return &Response{Result: res, Decisions: []Decision{d}, SimLatency: d.Latency(), Confidence: conf}, nil
	}

	// §4.1.2: rewrite disjunctions into parallel conjunctive sub-queries.
	disjuncts := types.SplitDisjuncts(plan.Pred)
	if len(disjuncts) != len(pq.disjuncts) {
		return nil, errTemplateMismatch
	}
	subs := make([]*exec.Plan, len(disjuncts))
	lcs := make([]levelChoice, len(disjuncts))
	for i, pred := range disjuncts {
		subs[i] = plan.WithPred(pred)
		lcs[i] = rt.chooseConjunctive(pq, pq.disjuncts[i], subs[i], q, conf)
	}

	if emitMid != nil {
		if err := rt.streamIntermediates(ctx, pq, plan, subs, lcs, conf, paramsEq, bsp, emitMid); err != nil {
			return nil, err
		}
	}

	// The final refinement: the exact non-streaming scan path.
	var fsp *telemetry.Span
	if bsp != nil && emitMid != nil {
		fsp = bsp.Child("refinement final")
		fsp.Note("final")
	}
	scanSp := bsp
	if fsp != nil {
		scanSp = fsp
	}
	var parts []*exec.Result
	var decisions []Decision
	simLatency := 0.0
	for i := range subs {
		res, err := rt.scanConjunctive(ctx, pq, pq.disjuncts[i], subs[i], conf, paramsEq, lcs[i], scanSp)
		if err != nil {
			fsp.End()
			return nil, err
		}
		parts = append(parts, res)
		decisions = append(decisions, lcs[i].dec)
		if l := lcs[i].dec.Latency(); l > simLatency {
			simLatency = l // disjuncts execute in parallel
		}
	}
	fsp.End()
	merged := exec.MergeResults(plan, parts)
	if plan.Limit > 0 && len(merged.Groups) > plan.Limit {
		// Copy-on-truncate: with one disjunct, merged IS the (possibly
		// memoized, shared) disjunct result — never mutate it.
		cp := *merged
		cp.Groups = merged.Groups[:plan.Limit]
		merged = &cp
	}
	return &Response{Result: merged, Decisions: decisions, SimLatency: simLatency, Confidence: conf}, nil
}

// streamIntermediates emits the pre-final refinements: per disjunct the
// §4.4 level chain pv.Level..final−1, aligned across disjuncts (a
// disjunct whose chain is exhausted contributes its final-level answer,
// served from the memo when the final step re-reads it). Each step
// re-merges and re-applies LIMIT so every refinement is a complete,
// well-formed response.
func (rt *Runtime) streamIntermediates(ctx context.Context, pq *PreparedQuery, plan *exec.Plan,
	subs []*exec.Plan, lcs []levelChoice, conf float64, paramsEq bool, sp *telemetry.Span, emitMid midEmitter) error {

	if !*rt.opt.DeltaReuse {
		return nil // ablation: no delta chain, single final refinement
	}
	chains := make([][]int, len(subs))
	steps := 0
	for i, lc := range lcs {
		if lc.level < 0 {
			continue // base-table disjunct: no resolution chain
		}
		pd := pq.disjuncts[i]
		for l := pd.pv.Level; l < lc.level; l++ {
			chains[i] = append(chains[i], l)
		}
		if len(chains[i]) > steps {
			steps = len(chains[i])
		}
	}
	if steps == 0 {
		return nil
	}
	// Session-local memo: when paramsEq the shared per-level memo already
	// deduplicates; when not, it keeps one session from scanning the same
	// level twice across steps.
	local := make([]map[int]*exec.Result, len(subs))
	for i := range local {
		local[i] = make(map[int]*exec.Result)
	}
	for s := 0; s < steps; s++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		var rsp *telemetry.Span
		if sp != nil {
			rsp = sp.Child(fmt.Sprintf("refinement %d", s))
		}
		stepLevel := -1
		var parts []*exec.Result
		var decs []Decision
		simLatency := 0.0
		for i := range subs {
			pd := pq.disjuncts[i]
			level := lcs[i].level
			if s < len(chains[i]) {
				level = chains[i][s]
			}
			res, err := rt.scanStreamLevel(ctx, pq, pd, subs[i], conf, paramsEq, level, local[i], rsp)
			if err != nil {
				rsp.End()
				return err
			}
			dec := rt.refineDecision(pq, pd, subs[i], lcs[i], level, conf)
			parts = append(parts, res)
			decs = append(decs, dec)
			if l := dec.Latency(); l > simLatency {
				simLatency = l
			}
			if level > stepLevel {
				stepLevel = level
			}
		}
		merged := exec.MergeResults(plan, parts)
		if plan.Limit > 0 && len(merged.Groups) > plan.Limit {
			cp := *merged
			cp.Groups = merged.Groups[:plan.Limit]
			merged = &cp
		}
		if rsp != nil {
			rsp.Note(fmt.Sprintf("level=%d", stepLevel))
		}
		rsp.End()
		resp := &Response{Result: merged, Decisions: decs, SimLatency: simLatency, Confidence: conf}
		if err := emitMid(resp, stepLevel); err != nil {
			return err
		}
	}
	return nil
}

// scanStreamLevel produces one disjunct's answer at one chain level:
// probe reuse at the probe's own level, the shared per-level memo
// otherwise, with the session-local map preventing intra-session rescans
// when the shared memo is unusable (parameters differ from prepare).
// Unlike scanConjunctive it does not count toward AnswersByLevel — only
// final answers do.
func (rt *Runtime) scanStreamLevel(ctx context.Context, pq *PreparedQuery, pd *prepDisjunct, plan *exec.Plan,
	conf float64, paramsEq bool, level int, local map[int]*exec.Result, sp *telemetry.Span) (*exec.Result, error) {

	if level < 0 {
		return pd.baseMemo(ctx, rt, plan, pq.entry.Table, conf, pq.joins, paramsEq, sp)
	}
	if r, ok := local[level]; ok {
		return r, nil
	}
	var res *exec.Result
	if level == pd.pv.Level && paramsEq {
		res = pd.probe
	} else {
		in, _ := viewInput(pd.fam.View(level), plan)
		r, err := pd.runMemo(ctx, rt, level, plan, in, conf, pq.joins, paramsEq, sp)
		if err != nil {
			return nil, err
		}
		res = r
	}
	local[level] = res
	return res, nil
}

// refineDecision derives an intermediate refinement's Decision from the
// final level choice: same probe accounting, but the view, projected
// bound and delta-priced read latency of the intermediate level. The
// cumulative ReadLatency (delta blocks pv..level) grows monotonically
// toward the final decision's, mirroring what a client progressively
// pays. At the disjunct's final level the final Decision is reported
// verbatim.
func (rt *Runtime) refineDecision(pq *PreparedQuery, pd *prepDisjunct, plan *exec.Plan,
	lc levelChoice, level int, conf float64) Decision {

	if level < 0 || level == lc.level {
		return lc.dec
	}
	fam, pv, probe := pd.fam, pd.pv, pd.probe
	dec := lc.dec
	view := fam.View(level)
	dec.View = view
	dec.PredictedBound = predictedBound(fam, probe, level, pv, conf)
	dec.ReadLatency = rt.latencyOfSample(prunedBlocks(view.DeltaBlocks(pv), plan)) + rt.broadcastCost(pq.joins)
	dec.Reason += fmt.Sprintf("; streaming refinement at resolution %d/%d (K=%d)", level, fam.Resolutions()-1, view.Cap())
	return dec
}
