package elp

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"blinkdb/internal/sqlparser"
	"blinkdb/internal/telemetry"
)

// collectSpans flattens a trace into name → []*Span.
func collectSpans(tr *telemetry.Trace) map[string][]*telemetry.Span {
	out := map[string][]*telemetry.Span{}
	tr.Walk(func(s *telemetry.Span, depth int) {
		out[s.Name()] = append(out[s.Name()], s)
	})
	return out
}

func spanWithPrefix(spans map[string][]*telemetry.Span, prefix string) *telemetry.Span {
	for name, ss := range spans {
		if strings.HasPrefix(name, prefix) {
			return ss[0]
		}
	}
	return nil
}

func hasNote(s *telemetry.Span, note string) bool {
	if s == nil {
		return false
	}
	for _, n := range s.Notes() {
		if n == note {
			return true
		}
	}
	return false
}

// TestTraceSpanStructure runs one bounded query cold and once warm and
// checks the span topology of each phase: the cold pass walks
// normalize → result-cache lookup → execute → plan-cache lookup →
// prepare (probes) → bind+scan (scan → merge) → materialize, while the
// warm pass short-circuits at the result-cache lookup.
func TestTraceSpanStructure(t *testing.T) {
	f := newFixture(t, 20000, Options{PlanCacheSize: 8, ResultCacheSize: 8})
	q := parse(t, `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 10% AT CONFIDENCE 95%`)

	cold := telemetry.New("query")
	if _, err := f.rt.RunTraced(q, cold); err != nil {
		t.Fatal(err)
	}
	cold.Finish()
	spans := collectSpans(cold)
	for _, want := range []string{"normalize", "result-cache lookup", "execute", "plan-cache lookup", "prepare", "bind+scan", "merge", "materialize"} {
		if len(spans[want]) == 0 {
			t.Errorf("cold trace missing span %q; trace:\n%s", want, cold.Render())
		}
	}
	if s := spanWithPrefix(spans, "probe "); s == nil {
		t.Errorf("cold trace has no probe span; trace:\n%s", cold.Render())
	}
	if s := spanWithPrefix(spans, "scan blocks="); s == nil {
		t.Errorf("cold trace has no scan span; trace:\n%s", cold.Render())
	}
	if !hasNote(spans["plan-cache lookup"][0], "cache=miss") {
		t.Errorf("cold plan-cache lookup should note cache=miss; trace:\n%s", cold.Render())
	}
	if !hasNote(spans["execute"][0], "result=miss") {
		t.Errorf("cold execute should note result=miss; trace:\n%s", cold.Render())
	}

	warm := telemetry.New("query")
	if _, err := f.rt.RunTraced(q, warm); err != nil {
		t.Fatal(err)
	}
	warm.Finish()
	wspans := collectSpans(warm)
	if !hasNote(wspans["result-cache lookup"][0], "result=hit") {
		t.Errorf("warm result-cache lookup should note result=hit; trace:\n%s", warm.Render())
	}
	if len(wspans["prepare"]) != 0 || spanWithPrefix(wspans, "scan blocks=") != nil {
		t.Errorf("warm hit should not prepare or scan; trace:\n%s", warm.Render())
	}
	if len(wspans["materialize"]) == 0 {
		t.Errorf("warm hit should materialize a private copy; trace:\n%s", warm.Render())
	}
}

// TestPlanCacheHitTrace checks the middle path: a fresh constant misses
// the result cache but hits the plan cache (no probes, no prepare).
func TestPlanCacheHitTrace(t *testing.T) {
	f := newFixture(t, 20000, Options{PlanCacheSize: 8, ResultCacheSize: 8})
	if _, err := f.rt.Run(parse(t, `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 10%`)); err != nil {
		t.Fatal(err)
	}
	tr := telemetry.New("query")
	if _, err := f.rt.RunTraced(parse(t, `SELECT AVG(time) FROM sessions WHERE city = 'city2' ERROR WITHIN 10%`), tr); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	spans := collectSpans(tr)
	if !hasNote(spans["plan-cache lookup"][0], "cache=hit") {
		t.Errorf("fresh constant should hit the plan cache; trace:\n%s", tr.Render())
	}
	if len(spans["prepare"]) != 0 {
		t.Errorf("plan-cache hit should skip prepare; trace:\n%s", tr.Render())
	}
	if spanWithPrefix(spans, "scan blocks=") == nil {
		t.Errorf("result-cache miss must still scan; trace:\n%s", tr.Render())
	}
}

// TestTelemetryOnOffBitIdentical replays the same query sequence through
// two identically-built runtimes, one with a telemetry registry and a
// trace on every query, one with neither, and requires deeply equal
// responses — including SimLatency — on every query. This is the
// disabled-path guarantee: observing a query never changes its answer.
func TestTelemetryOnOffBitIdentical(t *testing.T) {
	reg := telemetry.NewRegistry()
	on := newFixture(t, 15000, Options{PlanCacheSize: 8, ResultCacheSize: 8, Telemetry: reg})
	off := newFixture(t, 15000, Options{PlanCacheSize: 8, ResultCacheSize: 8})

	queries := []string{
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 10%`,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 10%`, // result-cache hit
		`SELECT AVG(time) FROM sessions WHERE city = 'city2' ERROR WITHIN 10%`, // plan-cache hit
		`SELECT COUNT(*) FROM sessions`,                                        // exact
		`SELECT SUM(time) FROM sessions WHERE os = 'OSX' AND url = 'cnn.com' ERROR WITHIN 15%`,
	}
	for _, src := range queries {
		tr := telemetry.New("query")
		a, err := on.rt.RunTraced(parse(t, src), tr)
		tr.Finish()
		if err != nil {
			t.Fatal(err)
		}
		b, err := off.rt.Run(parse(t, src))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("telemetry changed the answer for %q:\n on: %+v\noff: %+v", src, a, b)
		}
	}
	if len(reg.Snapshot().Templates) == 0 {
		t.Error("registry recorded no templates")
	}
}

// TestRegistryObservations checks the per-template accounting: bounded
// templates record positive latency and a positive predicted error
// half-width; exact templates record a zero bound.
func TestRegistryObservations(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := newFixture(t, 15000, Options{Telemetry: reg})

	bounded := `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 10%`
	exact := `SELECT COUNT(*) FROM sessions`
	for i := 0; i < 3; i++ {
		if _, err := f.rt.Run(parse(t, bounded)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.rt.Run(parse(t, exact)); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if len(snap.Templates) != 2 {
		t.Fatalf("want 2 templates, got %d", len(snap.Templates))
	}
	byKey := map[string]telemetry.TemplateSnapshot{}
	for _, ts := range snap.Templates {
		byKey[ts.Key] = ts
	}
	bkey, _ := sqlparser.Normalize(parse(t, bounded))
	ekey, _ := sqlparser.Normalize(parse(t, exact))
	b, e := byKey[bkey], byKey[ekey]
	if b.Queries != 3 || e.Queries != 1 {
		t.Fatalf("query counts: bounded %d (want 3), exact %d (want 1)", b.Queries, e.Queries)
	}
	if b.Latency.Count != 3 || b.Latency.P50 <= 0 {
		t.Errorf("bounded latency histogram: count %d p50 %g", b.Latency.Count, b.Latency.P50)
	}
	if b.RowsScanned.Mean <= 0 || b.BytesScanned.Mean <= 0 {
		t.Errorf("bounded rows/bytes means: %g / %g", b.RowsScanned.Mean, b.BytesScanned.Mean)
	}
	if b.PredictedBound.Mean <= 0 {
		t.Error("bounded template should record a positive predicted bound")
	}
	if b.PredictedLatency.Mean <= 0 {
		t.Error("bounded template should record a positive predicted (simulated) latency")
	}
	if e.PredictedBound.Mean != 0 || e.ObservedBound.Mean != 0 {
		t.Errorf("exact template should record zero bounds, got pred %g obs %g",
			e.PredictedBound.Mean, e.ObservedBound.Mean)
	}
	if q := b.Latency; !(q.P50 <= q.P95 && q.P95 <= q.P99 && q.P99 <= q.Max) {
		t.Errorf("latency percentiles not monotone: %+v", q)
	}
}

// TestPredictedBoundDecision pins the Decision-level projection: positive
// for a sampled bounded answer, zero for exact execution, and roughly in
// the neighbourhood of the half-width the scan actually reported (the
// 1/√n extrapolation from a probe is crude, so only the order of
// magnitude is pinned).
func TestPredictedBoundDecision(t *testing.T) {
	f := newFixture(t, 20000, Options{})
	resp, err := f.rt.Run(parse(t, `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 10%`))
	if err != nil {
		t.Fatal(err)
	}
	d := resp.Decisions[0]
	if d.UsedBase {
		t.Skip("fixture answered from base table; no projection to test")
	}
	if d.PredictedBound <= 0 {
		t.Fatalf("sampled bounded answer should have PredictedBound > 0, got %g", d.PredictedBound)
	}
	obs := resp.Result.MaxAbsErr()
	if obs > 0 && (d.PredictedBound > obs*100 || d.PredictedBound < obs/100) {
		t.Errorf("predicted bound %g wildly off observed %g", d.PredictedBound, obs)
	}

	exact, err := f.rt.Run(parse(t, `SELECT COUNT(*) FROM sessions`))
	if err != nil {
		t.Fatal(err)
	}
	if got := exact.Decisions[0].PredictedBound; got != 0 {
		t.Errorf("exact execution should have PredictedBound 0, got %g", got)
	}
}

// TestStatsDelta pins the windowed counter arithmetic.
func TestStatsDelta(t *testing.T) {
	f := newFixture(t, 15000, Options{PlanCacheSize: 8, ResultCacheSize: 8})
	q := `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 10%`
	if _, err := f.rt.Run(parse(t, q)); err != nil {
		t.Fatal(err)
	}
	base := f.rt.Stats()
	for i := 0; i < 3; i++ {
		if _, err := f.rt.Run(parse(t, q)); err != nil {
			t.Fatal(err)
		}
	}
	d := f.rt.Stats().Delta(base)
	if d.ResultHits != 3 {
		t.Errorf("delta window should hold exactly the 3 replay hits, got %d", d.ResultHits)
	}
	if d.ResultMisses != 0 || d.CacheMisses != 0 || d.Prepares != 0 {
		t.Errorf("delta window should be all-hit: %+v", d)
	}
	if len(d.AnswersByLevel) != 0 {
		t.Errorf("result-cache hits execute nothing, so no level counts expected: %+v", d.AnswersByLevel)
	}

	// A fresh constant executes (plan-cache hit, result-cache miss): its
	// window must carry exactly one level count.
	base = f.rt.Stats()
	if _, err := f.rt.Run(parse(t, `SELECT AVG(time) FROM sessions WHERE city = 'city2' ERROR WITHIN 10%`)); err != nil {
		t.Fatal(err)
	}
	d = f.rt.Stats().Delta(base)
	var levelSum int64
	for _, n := range d.AnswersByLevel {
		levelSum += n
	}
	if levelSum != 1 {
		t.Errorf("executing window should record one served level, got %+v", d.AnswersByLevel)
	}
	if d.ResultMisses != 1 || d.CacheHits != 1 {
		t.Errorf("fresh constant should be result miss + plan hit: %+v", d)
	}
}

// TestStatsSnapshotConsistent hammers Run and Stats concurrently and
// checks each snapshot for internal consistency: with a replayed single
// template, result-cache outcomes can never exceed total queries, and
// every snapshot's outcome sum must be reachable (no torn half-updated
// pairs where hits were read after a query that the misses column missed).
func TestStatsSnapshotConsistent(t *testing.T) {
	f := newFixture(t, 10000, Options{PlanCacheSize: 8, ResultCacheSize: 8})
	q := `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 10%`
	const queries = 60

	var runners, reader sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		runners.Add(1)
		go func() {
			defer runners.Done()
			for i := 0; i < queries; i++ {
				if _, err := f.rt.Run(parse(t, q)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := f.rt.Stats()
			total := s.ResultHits + s.ResultMisses + s.ResultShared
			if total > 2*queries {
				t.Errorf("snapshot outcome sum %d exceeds total queries %d", total, 2*queries)
				return
			}
		}
	}()
	runners.Wait()
	close(stop)
	reader.Wait()

	s := f.rt.Stats()
	if got := s.ResultHits + s.ResultMisses + s.ResultShared; got != 2*queries {
		t.Errorf("final outcome sum %d, want %d", got, 2*queries)
	}
}
