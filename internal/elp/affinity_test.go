package elp

import (
	"reflect"
	"strings"
	"testing"

	"blinkdb/internal/catalog"
	"blinkdb/internal/cluster"
	"blinkdb/internal/sample"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// TestProbeOncePerFamilyView is the double-probe regression test: one
// bounded query must execute at most one plan run per (family, view).
// Before the fix, selectFamily probed every candidate's smallest sample
// and selectResolution re-ran the identical probe on the winner; with
// delta reuse the final read then re-executed the same view a third time.
func TestProbeOncePerFamilyView(t *testing.T) {
	f := newFixture(t, 30000, Options{})

	// No covering family: φ = {genre} intersects neither [city] nor
	// [os,url], so all 3 families (2 stratified + uniform) are probed.
	// The loose bound keeps the chosen level at the probe level, so the
	// probe answer doubles as the final answer: exactly 3 executions.
	before := f.rt.Stats()
	resp, err := f.rt.Run(parse(t, `SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Decisions[0].UsedBase {
		t.Fatal("25% bound should be satisfiable from samples")
	}
	after := f.rt.Stats()
	if got, probed := after.PlanExecs-before.PlanExecs, len(resp.Decisions[0].Probed); got != int64(probed) {
		t.Errorf("probe path ran the executor %d times for %d probed families; each (family, view) must execute at most once",
			got, probed)
	}
	if got := after.ProbeExecs - before.ProbeExecs; got != int64(len(resp.Decisions[0].Probed)) {
		t.Errorf("Stats.ProbeExecs advanced by %d, want %d", got, len(resp.Decisions[0].Probed))
	}

	// Covering family: no selectFamily probes; selectResolution runs the
	// one probe and the final answer reuses it — exactly 1 execution.
	before = f.rt.Stats()
	resp, err = f.rt.Run(parse(t, `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 25%`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Decisions[0].UsedBase {
		t.Fatal("25% bound should be satisfiable from samples")
	}
	chosen := resp.Decisions[0].View.Level
	want := int64(1)
	if pv := f.rt.probeView(resp.Decisions[0].View.Family); chosen != pv.Level {
		want = 2 // final read on a strictly larger view is a new (family, view)
	}
	if got := f.rt.Stats().PlanExecs - before.PlanExecs; got != want {
		t.Errorf("covering path ran the executor %d times, want %d", got, want)
	}
}

// TestUniformFamilyReasonLabel pins the EXPLAIN fix: when the winning
// probed family is the uniform one, Reason names it "uniform" instead of
// formatting its empty column set.
func TestUniformFamilyReasonLabel(t *testing.T) {
	// A catalog with ONLY a uniform family forces the probe path (a
	// filtered query has non-empty φ and nothing covers it) and a uniform
	// winner.
	f := newFixture(t, 20000, Options{})
	cat := catalog.New()
	cat.Register(f.tab)
	uf, err := sample.BuildUniform(f.tab, sample.GeometricCaps(4000, 4, 4, 16),
		sample.BuildConfig{Seed: 3, Nodes: 100, Place: storage.InMemory, RowsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddFamily("sessions", uf); err != nil {
		t.Fatal(err)
	}
	rt := New(cat, cluster.New(cluster.PaperConfig()), Options{})
	resp, err := rt.Run(parse(t, `SELECT COUNT(*) FROM sessions WHERE genre = 'drama' ERROR WITHIN 25%`))
	if err != nil {
		t.Fatal(err)
	}
	reason := resp.Decisions[0].Reason
	if !strings.Contains(reason, "on uniform") {
		t.Errorf("Reason = %q, want the uniform family named explicitly", reason)
	}
	// And Label keeps stratified families as their column sets.
	if got := uf.Label(); got != "uniform" {
		t.Errorf("Label(uniform) = %q", got)
	}
	strat, err := sample.Build(f.tab, types.NewColumnSet("city"), sample.GeometricCaps(512, 4, 2, 8),
		sample.BuildConfig{Seed: 3, Nodes: 100, Place: storage.InMemory, RowsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := strat.Label(); got != strat.Phi.String() || got == "uniform" {
		t.Errorf("Label(stratified) = %q", got)
	}
}

// TestAffinityEquivalenceELP: the full ELP pipeline — probes, family and
// resolution selection, latency attribution, final estimates — returns a
// DeepEqual-identical Response whether the executor schedules node-affine
// or node-blind, for worker counts 1, 2 and 8. Latencies are included:
// attribution prices block placement, never the scheduling knob.
func TestAffinityEquivalenceELP(t *testing.T) {
	f := newFixture(t, 30000, Options{})
	queries := []string{
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 10%`,
		`SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`,
		`SELECT AVG(time), MEDIAN(time) FROM sessions WHERE city = 'city2' GROUP BY os WITHIN 5 SECONDS`,
		`SELECT SUM(time) FROM sessions WHERE city = 'city1' OR os = 'Win7' ERROR WITHIN 20%`,
	}
	off := false
	for _, src := range queries {
		q := parse(t, src)
		var want *Response
		for _, workers := range []int{1, 2, 8} {
			rtOn := New(f.cat, f.clus, Options{Workers: workers})
			rtOff := New(f.cat, f.clus, Options{Workers: workers, Affine: &off})
			got, err := rtOn.Run(q)
			if err != nil {
				t.Fatal(err)
			}
			gotOff, err := rtOff.Run(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, gotOff) {
				t.Fatalf("%s workers=%d: affine and blind responses differ\non:  %+v\noff: %+v",
					src, workers, got, gotOff)
			}
			if want == nil {
				want = got
			} else if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: response differs across worker counts", src)
			}
		}
	}
}
