package elp

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"blinkdb/internal/exec"
	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
)

// stripResult removes the result-cache annotation from a response so
// hit/miss/shared servings can be compared against each other and
// against result-cache-free references.
func stripResult(resp *Response) *Response {
	cp := *resp
	cp.ResultCache = ""
	cp.Decisions = append([]Decision(nil), resp.Decisions...)
	for i := range cp.Decisions {
		r := cp.Decisions[i].Reason
		r = strings.ReplaceAll(r, "; result=hit", "")
		r = strings.ReplaceAll(r, "; result=miss", "")
		r = strings.ReplaceAll(r, "; result=shared", "")
		cp.Decisions[i].Reason = r
	}
	return &cp
}

// stripAll removes both cache layers' annotations.
func stripAll(resp *Response) *Response { return stripCache(stripResult(resp)) }

// resultRuntimes builds, over ONE shared catalog/cluster, the runtime
// under test (plan cache + result cache) and a plan-cache-only reference
// whose behavior is exactly PR 4's pipeline.
func resultRuntimes(t testing.TB, rows int) (*fixture, *Runtime) {
	f := newFixture(t, rows, Options{PlanCacheSize: 64, ResultCacheSize: 64})
	ref := New(f.cat, f.clus, Options{PlanCacheSize: 64})
	return f, ref
}

// TestResultCacheBitIdentity is the tentpole acceptance test at the elp
// layer: with the result cache enabled, every serving — the executing
// miss AND every replayed hit — must be DeepEqual (including simulated
// latencies and decisions, modulo the annotation markers) to the
// result-cache-free pipeline over the same catalog.
func TestResultCacheBitIdentity(t *testing.T) {
	f, ref := resultRuntimes(t, 30000)
	for _, src := range cacheQueries {
		for rep := 0; rep < 3; rep++ {
			want, err := ref.Run(parse(t, src))
			if err != nil {
				t.Fatalf("%q rep %d (ref): %v", src, rep, err)
			}
			got, err := f.rt.Run(parse(t, src))
			if err != nil {
				t.Fatalf("%q rep %d: %v", src, rep, err)
			}
			wantNote := "hit"
			if rep == 0 {
				wantNote = "miss"
			}
			if got.ResultCache != wantNote {
				t.Errorf("%q rep %d: ResultCache = %q, want %q", src, rep, got.ResultCache, wantNote)
			}
			for _, d := range got.Decisions {
				if !strings.Contains(d.Reason, "; result="+wantNote) {
					t.Errorf("%q rep %d: Reason %q missing result=%s", src, rep, d.Reason, wantNote)
				}
			}
			// A result-cache hit skips the plan pipeline entirely: no
			// plan-cache marker. The miss carries the plan note as usual.
			if rep == 0 && got.Cache != "miss" {
				t.Errorf("%q rep 0: Cache = %q, want miss", src, got.Cache)
			}
			if rep > 0 && got.Cache != "" {
				t.Errorf("%q rep %d: result hit leaked a plan-cache note %q", src, rep, got.Cache)
			}
			if !reflect.DeepEqual(stripAll(want), stripAll(got)) {
				t.Errorf("%q rep %d (%s): diverged from result-cache-free pipeline\nwant %+v\ngot  %+v",
					src, rep, wantNote, stripAll(want), stripAll(got))
			}
		}
	}
	s := f.rt.Stats()
	if s.ResultMisses != int64(len(cacheQueries)) || s.ResultHits != 2*int64(len(cacheQueries)) {
		t.Errorf("stats = %d hits / %d misses, want %d / %d",
			s.ResultHits, s.ResultMisses, 2*len(cacheQueries), len(cacheQueries))
	}
	if ref.Stats().ResultMisses != 0 || ref.Stats().ResultHits != 0 {
		t.Errorf("disabled result cache moved counters: %+v", ref.Stats())
	}
}

// TestResultCacheHitSkipsAllWork pins the serving contract: an exact
// replay runs NO executor work, no probe, no prepare — the answer comes
// from memory. A same-template different-constant query is a result MISS
// that still enjoys the plan cache (one executor run, no probes).
func TestResultCacheHitSkipsAllWork(t *testing.T) {
	f, _ := resultRuntimes(t, 30000)
	const src = `SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`
	if _, err := f.rt.Run(parse(t, src)); err != nil {
		t.Fatal(err)
	}
	before := f.rt.Stats()
	resp, err := f.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultCache != "hit" {
		t.Fatalf("exact replay: ResultCache = %q, want hit", resp.ResultCache)
	}
	after := f.rt.Stats()
	if after.PlanExecs != before.PlanExecs || after.ProbeExecs != before.ProbeExecs || after.Prepares != before.Prepares {
		t.Errorf("result hit did executor/probe/prepare work: %+v -> %+v", before, after)
	}

	// New constant, same template: result miss, plan hit, exactly one
	// executor run (the chosen view scan), zero probes.
	before = after
	resp, err = f.rt.Run(parse(t, `SELECT COUNT(*) FROM sessions WHERE genre = 'drama' ERROR WITHIN 25%`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultCache != "miss" || resp.Cache != "hit" {
		t.Fatalf("new constant: ResultCache = %q (want miss), Cache = %q (want hit)", resp.ResultCache, resp.Cache)
	}
	after = f.rt.Stats()
	if got := after.PlanExecs - before.PlanExecs; got != 1 {
		t.Errorf("new constant ran the executor %d times, want 1", got)
	}
	if after.ProbeExecs != before.ProbeExecs {
		t.Errorf("new constant re-probed: %d -> %d", before.ProbeExecs, after.ProbeExecs)
	}
}

// TestResultCacheCopyOnReturn: callers own their responses. Mutating a
// served answer — groups, estimates, decision reasons — must not leak
// into the cache or into other callers' copies (the PR 4 copy-on-truncate
// race is the cautionary tale).
func TestResultCacheCopyOnReturn(t *testing.T) {
	f, _ := resultRuntimes(t, 20000)
	const src = `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 25%`
	first, err := f.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	pristine := stripAll(first)
	pristine.Result = first.Result.Clone()

	// Vandalize every layer of the served response.
	first.Result.Groups[0].Estimates[0].Point = -1e9
	first.Result.Groups[0].Key = nil
	first.Result.RowsScanned = -7
	first.Decisions[0].Reason = "vandalized"
	first.SimLatency = -1

	second, err := f.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if second.ResultCache != "hit" {
		t.Fatalf("replay should hit, got %q", second.ResultCache)
	}
	if !reflect.DeepEqual(pristine.Result, second.Result) {
		t.Errorf("mutating a served result corrupted the cache\nwant %+v\ngot  %+v", pristine.Result, second.Result)
	}
	if second.Decisions[0].Reason == "vandalized" || second.SimLatency < 0 {
		t.Error("mutating served decisions/latency corrupted the cache")
	}
	// And the two servings are distinct objects end to end.
	if second.Result == first.Result || &second.Decisions[0] == &first.Decisions[0] {
		t.Error("served responses alias each other")
	}
}

// TestResultCacheEpochInvalidation: re-installing a sample family (what
// RefreshSamples and Maintain.Apply do) bumps the table epoch; a cached
// answer computed against the old samples must never be served, and the
// staleness sweep must purge every stale answer, not just the queried one.
func TestResultCacheEpochInvalidation(t *testing.T) {
	f, ref := resultRuntimes(t, 30000)
	const src = `SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`
	if _, err := f.rt.Run(parse(t, src)); err != nil {
		t.Fatal(err)
	}
	// A second warm answer that will NOT be re-queried: the sweep must
	// still purge it.
	if _, err := f.rt.Run(parse(t, `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 25%`)); err != nil {
		t.Fatal(err)
	}
	if resp, _ := f.rt.Run(parse(t, src)); resp.ResultCache != "hit" {
		t.Fatalf("warm query should hit, got %q", resp.ResultCache)
	}
	if got := f.rt.results.Len(); got != 2 {
		t.Fatalf("result cache holds %d entries before refresh, want 2", got)
	}

	entry, err := f.cat.Lookup("sessions")
	if err != nil {
		t.Fatal(err)
	}
	var cityFam *sample.Family
	for _, fam := range entry.Families {
		if fam.Phi.Key() == "city" {
			cityFam = fam
		}
	}
	fresh, err := sample.Build(f.tab, cityFam.Phi, cityFam.Caps,
		sample.BuildConfig{Seed: 99, Nodes: 100, Place: storage.InMemory, RowsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.cat.AddFamily("sessions", fresh); err != nil {
		t.Fatal(err)
	}

	got, err := f.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if got.ResultCache != "miss" {
		t.Fatalf("post-refresh query served a stale answer: %q, want miss", got.ResultCache)
	}
	want, err := ref.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripAll(want), stripAll(got)) {
		t.Errorf("post-refresh answer diverged from the result-cache-free pipeline\nwant %+v\ngot  %+v",
			stripAll(want), stripAll(got))
	}
	// The sweep purged BOTH stale answers; only the re-executed one is
	// resident again.
	if got := f.rt.results.Len(); got != 1 {
		t.Errorf("result cache holds %d entries after the stale sweep, want 1", got)
	}
}

// TestResultCacheTTLExpiry: with a TTL configured, an answer older than
// the TTL is a miss (re-executed and re-cached); within the TTL it hits.
// Hit assertions use a generous TTL and expiry assertions a tiny one, so
// neither direction can flake under scheduler stalls (the exact deadline
// boundary is pinned with an injected clock in the resultcache package).
func TestResultCacheTTLExpiry(t *testing.T) {
	const src = `SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`

	// Generous TTL: replays hit.
	long := newFixture(t, 10000, Options{PlanCacheSize: 64, ResultCacheSize: 64, ResultCacheTTL: time.Hour})
	if _, err := long.rt.Run(parse(t, src)); err != nil {
		t.Fatal(err)
	}
	if resp, _ := long.rt.Run(parse(t, src)); resp.ResultCache != "hit" {
		t.Fatalf("replay within the TTL should hit, got %q", resp.ResultCache)
	}

	// Tiny TTL: any answer is expired by the time it is replayed.
	short := newFixture(t, 10000, Options{PlanCacheSize: 64, ResultCacheSize: 64, ResultCacheTTL: time.Millisecond})
	if _, err := short.rt.Run(parse(t, src)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // comfortably past the deadline
	resp, err := short.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultCache != "miss" {
		t.Fatalf("expired answer served: %q, want miss", resp.ResultCache)
	}
	if s := short.rt.Stats(); s.ResultMisses != 2 || s.ResultHits != 0 {
		t.Errorf("short-TTL stats = %d hits / %d misses, want 0 / 2", s.ResultHits, s.ResultMisses)
	}
}

// TestResultCacheSingleflight is the -race acceptance test: 8 goroutines
// missing ONE cold key must execute the pipeline exactly once — one
// prepare, one miss, executor work identical to a single serial cold run
// — and every goroutine receives an equal answer.
func TestResultCacheSingleflight(t *testing.T) {
	f, _ := resultRuntimes(t, 20000)
	// A twin fixture measures what ONE serial cold run costs in executor
	// invocations (same dataset: newFixture is deterministic).
	twin := newFixture(t, 20000, Options{PlanCacheSize: 64, ResultCacheSize: 64})
	const src = `SELECT AVG(time) FROM sessions WHERE genre = 'western' GROUP BY os ERROR WITHIN 25%`
	want, err := twin.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	oneColdRun := twin.rt.Stats()

	const goroutines = 8
	responses := make([]*Response, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			responses[g], errs[g] = f.rt.Run(parse(t, src))
		}(g)
	}
	close(start)
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(stripAll(want), stripAll(responses[g])) {
			t.Errorf("goroutine %d: answer diverged from the serial cold run (marker %q)",
				g, responses[g].ResultCache)
		}
	}
	s := f.rt.Stats()
	if s.ResultMisses != 1 {
		t.Errorf("ResultMisses = %d, want 1 (one execution across %d concurrent callers)", s.ResultMisses, goroutines)
	}
	if s.ResultHits+s.ResultShared != goroutines-1 {
		t.Errorf("hits+shared = %d+%d, want %d", s.ResultHits, s.ResultShared, goroutines-1)
	}
	if s.Prepares != 1 {
		t.Errorf("Prepares = %d, want 1", s.Prepares)
	}
	// The executor ran exactly as much as one serial cold run: the view
	// scan (and its probes) happened once, not once per goroutine.
	if s.PlanExecs != oneColdRun.PlanExecs || s.ProbeExecs != oneColdRun.ProbeExecs {
		t.Errorf("concurrent cold key did %d plan / %d probe execs, one serial run does %d / %d",
			s.PlanExecs, s.ProbeExecs, oneColdRun.PlanExecs, oneColdRun.ProbeExecs)
	}
}

// TestResultCacheStaleSharedWaiterReExecutes pins the epoch half of the
// singleflight contract: a waiter whose query began AFTER an epoch
// change must never be served a flight answer computed before it. The
// test registers a fake in-flight leader whose (poisoned) answer carries
// stale deps, lets a real Run join it as a waiter, and requires the
// waiter to discard the shared answer and execute fresh.
func TestResultCacheStaleSharedWaiterReExecutes(t *testing.T) {
	f, ref := resultRuntimes(t, 20000)
	const src = `SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`
	q := parse(t, src)
	key, params := sqlparser.Normalize(q)
	rkey := key + "\x1e" + sqlparser.ParamsKey(params)

	stale := &resultEntry{
		resp: &Response{
			Result:    &exec.Result{Groups: []exec.Group{{}}},
			Decisions: []Decision{{Reason: "poisoned stale flight"}},
		},
		note: "miss",
		deps: []tableDep{{table: "sessions", epoch: 999999}}, // ≠ current: stale
	}

	started := make(chan struct{})
	release := make(chan struct{})
	var leaderWG sync.WaitGroup
	leaderWG.Add(1)
	go func() { // fake leader holding the flight open
		defer leaderWG.Done()
		f.rt.flights.Do(rkey, func() (*resultEntry, error) {
			close(started) // the flight is registered before fn runs
			<-release
			return stale, nil
		})
	}()
	<-started

	type outcome struct {
		resp *Response
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := f.rt.Run(parse(t, src))
		done <- outcome{resp, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter join the flight
	close(release)
	leaderWG.Wait()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	for _, d := range out.resp.Decisions {
		if strings.Contains(d.Reason, "poisoned") {
			t.Fatal("waiter served the stale flight answer")
		}
	}
	if out.resp.ResultCache == "shared" {
		t.Fatal("stale flight answer must not be reported as shared")
	}
	want, err := ref.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripAll(want), stripAll(out.resp)) {
		t.Errorf("post-stale-flight answer diverged from the fresh pipeline\nwant %+v\ngot  %+v",
			stripAll(want), stripAll(out.resp))
	}
}

// TestResultCacheSecondLeaderServesCachedAnswer pins the other half: a
// caller that missed the cache but lost the race to an already-landed
// flight (its Do call starts a NEW flight) must serve the cached answer
// from the leader re-check instead of re-executing the pipeline.
func TestResultCacheSecondLeaderServesCachedAnswer(t *testing.T) {
	f, _ := resultRuntimes(t, 20000)
	const src = `SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`
	q := parse(t, src)
	key, params := sqlparser.Normalize(q)
	rkey := key + "\x1e" + sqlparser.ParamsKey(params)
	if _, err := f.rt.Run(q); err != nil { // warms the cache
		t.Fatal(err)
	}
	before := f.rt.Stats()
	ent, cached, err := f.rt.resultLeader(context.Background(), q, key, params, rkey, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || ent == nil {
		t.Fatalf("second leader must serve the cached answer (cached=%v)", cached)
	}
	after := f.rt.Stats()
	if after.Prepares != before.Prepares || after.PlanExecs != before.PlanExecs ||
		after.ResultMisses != before.ResultMisses {
		t.Errorf("second leader re-executed: %+v -> %+v", before, after)
	}
}

// TestResultCacheConcurrentMixedKeysWithRefresh hammers several result
// keys from many goroutines while the catalog concurrently re-installs a
// family (epoch churn), under -race in CI: every answer — hit, miss or
// shared, before or after any epoch bump — must equal the serial
// reference (the refresh re-installs byte-identical family content, so
// pre- and post-refresh truths coincide).
func TestResultCacheConcurrentMixedKeysWithRefresh(t *testing.T) {
	f, ref := resultRuntimes(t, 20000)
	srcs := []string{
		`SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`,
		`SELECT AVG(time) FROM sessions WHERE genre = 'western' GROUP BY os ERROR WITHIN 25% LIMIT 2`,
		`SELECT AVG(time), MEDIAN(time) FROM sessions GROUP BY city WITHIN 2 SECONDS`,
	}
	wants := make([]*Response, len(srcs))
	for i, src := range srcs {
		w, err := ref.Run(parse(t, src))
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = stripAll(w)
	}
	entry, err := f.cat.Lookup("sessions")
	if err != nil {
		t.Fatal(err)
	}
	var cityFam *sample.Family
	for _, fam := range entry.Families {
		if fam.Phi.Key() == "city" {
			cityFam = fam
		}
	}

	const goroutines = 8
	var queriers, refresher sync.WaitGroup
	errs := make(chan error, goroutines*15+1)
	stop := make(chan struct{})
	refresher.Add(1)
	go func() {
		defer refresher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.cat.AddFamily("sessions", cityFam); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		queriers.Add(1)
		go func(g int) {
			defer queriers.Done()
			for i := 0; i < 15; i++ {
				k := (i + g) % len(srcs)
				resp, err := f.rt.Run(parse(t, srcs[k]))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !reflect.DeepEqual(wants[k], stripAll(resp)) {
					errs <- fmt.Errorf("goroutine %d iter %d (%s/%s): diverged from serial reference",
						g, i, resp.Cache, resp.ResultCache)
					return
				}
			}
		}(g)
	}
	queriers.Wait()
	close(stop)
	refresher.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
