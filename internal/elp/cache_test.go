package elp

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"blinkdb/internal/sample"
	"blinkdb/internal/storage"
)

// cacheQueries exercises every planning path through the cache: probed
// (no covering family), covering, uniform, time-bounded, disjunctive,
// unbounded-exact and unreachable-bound fallback.
var cacheQueries = []string{
	`SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`,
	`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 25%`,
	`SELECT AVG(time), MEDIAN(time) FROM sessions GROUP BY city WITHIN 2 SECONDS`,
	`SELECT SUM(time) FROM sessions WHERE city = 'city2' OR os = 'Linux' ERROR WITHIN 20%`,
	`SELECT COUNT(*) FROM sessions GROUP BY os`,
	`SELECT AVG(time) FROM sessions WHERE genre = 'nosuchgenre' ERROR WITHIN 1%`,
}

// stripCache removes the cache annotation from every decision reason so
// hit/miss responses can be compared against the cache-off reference.
func stripCache(resp *Response) *Response {
	cp := *resp
	cp.Cache = ""
	cp.Decisions = append([]Decision(nil), resp.Decisions...)
	for i := range cp.Decisions {
		r := cp.Decisions[i].Reason
		r = strings.ReplaceAll(r, "; cache=hit", "")
		r = strings.ReplaceAll(r, "; cache=miss", "")
		cp.Decisions[i].Reason = r
	}
	return &cp
}

// twoRuntimes builds a cached and an uncached runtime over ONE shared
// catalog/cluster, so the uncached one is always the ground truth for the
// catalog's current state.
func twoRuntimes(t testing.TB, rows int) (*fixture, *Runtime) {
	f := newFixture(t, rows, Options{PlanCacheSize: 64})
	ref := New(f.cat, f.clus, Options{})
	return f, ref
}

// TestCacheBitIdentity is the tentpole acceptance test at the elp layer:
// with the cache enabled, replaying a template with the same constants
// must return responses bit-identical (DeepEqual, including simulated
// latencies and decisions) to the cache-off path — on the miss AND on
// every subsequent hit.
func TestCacheBitIdentity(t *testing.T) {
	f, ref := twoRuntimes(t, 30000)
	for _, src := range cacheQueries {
		q := parse(t, src)
		want, err := ref.Run(q)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for rep := 0; rep < 3; rep++ {
			got, err := f.rt.Run(parse(t, src))
			if err != nil {
				t.Fatalf("%q rep %d: %v", src, rep, err)
			}
			wantNote := "hit"
			if rep == 0 {
				wantNote = "miss"
			}
			if got.Cache != wantNote {
				t.Errorf("%q rep %d: Cache = %q, want %q", src, rep, got.Cache, wantNote)
			}
			for _, d := range got.Decisions {
				if !strings.Contains(d.Reason, "; cache="+wantNote) {
					t.Errorf("%q rep %d: Reason %q missing cache=%s", src, rep, d.Reason, wantNote)
				}
			}
			if !reflect.DeepEqual(want, stripCache(got)) {
				t.Errorf("%q rep %d (%s): diverged from cache-off reference\nwant %+v\ngot  %+v",
					src, rep, wantNote, want, stripCache(got))
			}
		}
	}
	s := f.rt.Stats()
	if s.CacheMisses != int64(len(cacheQueries)) || s.CacheHits != 2*int64(len(cacheQueries)) {
		t.Errorf("stats = %d hits / %d misses, want %d / %d",
			s.CacheHits, s.CacheMisses, 2*len(cacheQueries), len(cacheQueries))
	}
}

// TestCacheMissNotCountedOnError: queries that fail to prepare (unknown
// table) never enter the cache and must not skew the hit-rate counters.
func TestCacheMissNotCountedOnError(t *testing.T) {
	f, _ := twoRuntimes(t, 5000)
	before := f.rt.Stats()
	if _, err := f.rt.Run(parse(t, `SELECT COUNT(*) FROM nosuchtable ERROR WITHIN 10%`)); err == nil {
		t.Fatal("unknown table should error")
	}
	after := f.rt.Stats()
	if after.CacheMisses != before.CacheMisses || after.CacheHits != before.CacheHits {
		t.Errorf("errored prepare moved cache counters: %+v -> %+v", before, after)
	}
}

// TestCacheHitSkipsProbes pins the performance contract: a hit must not
// re-run any probe, and an exact replay must not re-run ANY executor work
// (the memoized answer is served).
func TestCacheHitSkipsProbes(t *testing.T) {
	f, _ := twoRuntimes(t, 30000)
	q := `SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`
	if _, err := f.rt.Run(parse(t, q)); err != nil {
		t.Fatal(err)
	}
	before := f.rt.Stats()
	if before.ProbeExecs == 0 {
		t.Fatal("cold run should have probed")
	}
	if _, err := f.rt.Run(parse(t, q)); err != nil {
		t.Fatal(err)
	}
	after := f.rt.Stats()
	if after.ProbeExecs != before.ProbeExecs {
		t.Errorf("hit re-probed: %d -> %d", before.ProbeExecs, after.ProbeExecs)
	}
	if after.PlanExecs != before.PlanExecs {
		t.Errorf("exact replay ran the executor: %d -> %d", before.PlanExecs, after.PlanExecs)
	}
	if after.Prepares != before.Prepares {
		t.Errorf("hit re-prepared: %d -> %d", before.Prepares, after.Prepares)
	}

	// Same template, different constant: still a hit (no probes), but the
	// answer is computed for the new constant — exactly one executor run.
	before = after
	resp, err := f.rt.Run(parse(t, `SELECT COUNT(*) FROM sessions WHERE genre = 'drama' ERROR WITHIN 25%`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "hit" {
		t.Fatalf("different constant should hit the template cache, got %q", resp.Cache)
	}
	after = f.rt.Stats()
	if after.ProbeExecs != before.ProbeExecs {
		t.Errorf("constant change re-probed: %d -> %d", before.ProbeExecs, after.ProbeExecs)
	}
	if got := after.PlanExecs - before.PlanExecs; got != 1 {
		t.Errorf("constant change ran the executor %d times, want 1", got)
	}
}

// TestCacheDifferentConstantsCorrectAnswer: a hit with new constants must
// compute the answer for THOSE constants (the cached probe only steers
// resolution selection). COUNT(*) point estimates for two different
// genres must differ and be near their true counts.
func TestCacheDifferentConstantsCorrectAnswer(t *testing.T) {
	f, _ := twoRuntimes(t, 30000)
	counts := map[string]float64{}
	for _, b := range f.tab.Blocks {
		for ri, n := 0, b.NumRows(); ri < n; ri++ {
			counts[b.ValueAt(ri, 3).S]++
		}
	}
	point := func(genre string) float64 {
		resp, err := f.rt.Run(parse(t, fmt.Sprintf(
			`SELECT COUNT(*) FROM sessions WHERE genre = '%s' ERROR WITHIN 25%%`, genre)))
		if err != nil {
			t.Fatal(err)
		}
		return resp.Result.Groups[0].Estimates[0].Point
	}
	for _, genre := range []string{"western", "drama", "comedy"} {
		got := point(genre)
		truth := counts[genre]
		if got < 0.5*truth || got > 1.5*truth {
			t.Errorf("genre %s: estimate %.0f too far from truth %.0f", genre, got, truth)
		}
	}
}

// TestEpochInvalidation proves no stale serve: after a family refresh
// (AddFamily with a re-drawn sample — what RefreshSamples and
// maintenance.Apply do), a cached template must re-probe, and its answer
// must equal the cache-off path over the refreshed catalog.
func TestEpochInvalidation(t *testing.T) {
	f, ref := twoRuntimes(t, 30000)
	const src = `SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`

	if _, err := f.rt.Run(parse(t, src)); err != nil {
		t.Fatal(err)
	}
	// A second warm template that will NOT be re-queried after the
	// refresh: the stale sweep must still purge it.
	if _, err := f.rt.Run(parse(t, `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 25%`)); err != nil {
		t.Fatal(err)
	}
	resp, err := f.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "hit" {
		t.Fatalf("warm query should hit, got %q", resp.Cache)
	}
	if got := f.rt.cache.Len(); got != 2 {
		t.Fatalf("cache holds %d entries before refresh, want 2", got)
	}

	// Refresh the [city] family with a fresh seed (the §4.5 background
	// replacement): the epoch bumps and the cached probe is stale.
	entry, err := f.cat.Lookup("sessions")
	if err != nil {
		t.Fatal(err)
	}
	epochBefore := entry.Epoch
	var cityFam *sample.Family
	for _, fam := range entry.Families {
		if fam.Phi.Key() == "city" {
			cityFam = fam
		}
	}
	fresh, err := sample.Build(f.tab, cityFam.Phi, cityFam.Caps,
		sample.BuildConfig{Seed: 99, Nodes: 100, Place: storage.InMemory, RowsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.cat.AddFamily("sessions", fresh); err != nil {
		t.Fatal(err)
	}
	if got := f.cat.Epoch("sessions"); got != epochBefore+1 {
		t.Fatalf("epoch = %d, want %d (bump observed)", got, epochBefore+1)
	}

	before := f.rt.Stats()
	got, err := f.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cache != "miss" {
		t.Fatalf("post-refresh query served stale state: Cache = %q, want miss", got.Cache)
	}
	after := f.rt.Stats()
	if after.Prepares == before.Prepares || after.ProbeExecs == before.ProbeExecs {
		t.Error("post-refresh query must re-prepare and re-probe")
	}
	want, err := ref.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, stripCache(got)) {
		t.Errorf("post-refresh answer diverged from cache-off path\nwant %+v\ngot  %+v", want, stripCache(got))
	}
	// The stale sweep purged BOTH pre-refresh templates; only the
	// re-prepared one is resident (dead catalog snapshots must not ride
	// the LRU).
	if got := f.rt.cache.Len(); got != 1 {
		t.Errorf("cache holds %d entries after refresh sweep, want 1", got)
	}
}

// TestCacheConcurrentHotTemplateWithRefresh is the -race test: 8
// goroutines hammer one hot template while the catalog concurrently
// re-installs a family (epoch churn). Every answer must equal one of the
// two serial cache-off truths (pre- and post-refresh state); since the
// refresh re-installs byte-identical family content, the two truths
// coincide and every concurrent answer must equal THE serial cache-off
// result, hit or miss.
func TestCacheConcurrentHotTemplateWithRefresh(t *testing.T) {
	f, ref := twoRuntimes(t, 20000)
	const src = `SELECT COUNT(*) FROM sessions WHERE genre = 'western' ERROR WITHIN 25%`
	// srcLim exercises the LIMIT-truncation path on a shared memoized
	// result — a former write/write race between concurrent hits.
	const srcLim = `SELECT AVG(time) FROM sessions WHERE genre = 'western' GROUP BY os ERROR WITHIN 25% LIMIT 2`
	want, err := ref.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	wantLim, err := ref.Run(parse(t, srcLim))
	if err != nil {
		t.Fatal(err)
	}

	entry, err := f.cat.Lookup("sessions")
	if err != nil {
		t.Fatal(err)
	}
	var cityFam *sample.Family
	for _, fam := range entry.Families {
		if fam.Phi.Key() == "city" {
			cityFam = fam
		}
	}

	const goroutines = 8
	var queriers, refresher sync.WaitGroup
	errs := make(chan error, goroutines*20+1)
	stop := make(chan struct{})
	refresher.Add(1)
	go func() { // concurrent "refresh": same content, epoch bumps anyway
		defer refresher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.cat.AddFamily("sessions", cityFam); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		queriers.Add(1)
		go func(g int) {
			defer queriers.Done()
			for i := 0; i < 20; i++ {
				q, exp := src, want
				if (i+g)%2 == 1 {
					q, exp = srcLim, wantLim
				}
				resp, err := f.rt.Run(parse(t, q))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !reflect.DeepEqual(exp, stripCache(resp)) {
					errs <- fmt.Errorf("goroutine %d iter %d (%s): diverged from serial cache-off result",
						g, i, resp.Cache)
					return
				}
			}
		}(g)
	}
	queriers.Wait()
	close(stop)
	refresher.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPreparedQueryExplicitAPI drives Prepare/Execute directly: one
// Prepare serves multiple Executes with different constants, and a
// mismatched template is rejected.
func TestPreparedQueryExplicitAPI(t *testing.T) {
	f := newFixture(t, 20000, Options{})
	pq, err := f.rt.Prepare(parse(t, `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 25%`))
	if err != nil {
		t.Fatal(err)
	}
	if pq.Key == "" || pq.Epoch() == 0 {
		t.Fatalf("prepared query missing key/epoch: %+v", pq)
	}
	for _, city := range []string{"city1", "city2", "city3"} {
		resp, err := f.rt.Execute(pq, parse(t, fmt.Sprintf(
			`SELECT AVG(time) FROM sessions WHERE city = '%s' ERROR WITHIN 25%%`, city)))
		if err != nil {
			t.Fatalf("execute %s: %v", city, err)
		}
		truth := f.truth[city]
		got := resp.Result.Groups[0].Estimates[0].Point
		if got < 0.7*truth || got > 1.3*truth {
			t.Errorf("city %s: estimate %.2f too far from truth %.2f", city, got, truth)
		}
	}
	if _, err := f.rt.Execute(pq, parse(t, `SELECT COUNT(*) FROM sessions ERROR WITHIN 25%`)); err == nil {
		t.Error("executing a different template must be rejected")
	}
}
