package elp

import (
	"fmt"
	"hash/crc32"
	"time"

	"blinkdb/internal/blockfile"
	"blinkdb/internal/exec"
	"blinkdb/internal/sample"
	"blinkdb/internal/stats"
	"blinkdb/internal/types"
)

// Warmup persistence: the runtime's two reuse layers serialize to a
// binary blob (blockfile.Enc wire format — bit-exact floats, so NaN and
// ±0 in estimates survive where JSON would not) and replay at boot.
//
// What is persisted per plan-cache template: the template key, fact
// table, epoch deps, the prepare-time parameter vector, and each
// disjunct's family choice (by φ), Decision skeleton, probe-chain
// endpoint (level, probe result, probe latency). What is NOT: the
// compiled query/plan (prepQ/prepPlan restore as nil — executeParams
// recompiles per query, its pointer-identity fast path simply never
// fires), the per-level result memos (repopulated on demand; a memo
// only saves work, never changes an answer), and join templates (their
// join-expanded schema and specs need the query object to recompile, so
// they re-prepare on first use).
//
// Per result-cache entry: the full key, the canonical Response (result
// groups, decisions, simulated latency), the plan-cache note, epoch
// deps, and the entry's ORIGINAL absolute TTL deadline — a restart
// never extends a cached answer's life.
//
// Import is strict-then-selective: a structurally corrupt blob is
// rejected whole (nothing applied), while well-formed entries are
// applied one by one, silently skipping any that fail validation
// against the live catalog — unknown table, missing family, level out
// of range, epoch mismatch, expired TTL. Families are resurrected by
// reference (φ against the restored catalog entry), never by value, so
// a warmup blob can only ever point at samples the engine actually
// loaded.

// warmupVersion versions the elp warmup blob layout.
const warmupVersion = 1

// warmupCRC is the blob's integrity check (CRC32-Castagnoli, matching
// the segment format). The segment layer already checksums the meta
// section carrying the blob; this inner checksum makes the blob
// self-protecting when stored any other way — warmup data feeds answers
// directly, so a flipped payload bit must fail loudly, not serve a
// wrong estimate.
var warmupCRC = crc32.MakeTable(crc32.Castagnoli)

// ExportWarmup serializes the runtime's warm state — prepared templates
// and cached results — for replay via ImportWarmup after a restart.
// Safe to call concurrently with queries; it sees a snapshot-quality
// view of both caches.
func (rt *Runtime) ExportWarmup() []byte {
	var e blockfile.Enc

	var plans [][]byte
	rt.cache.Range(func(_ string, pq *PreparedQuery) bool {
		if b, ok := encodePlan(pq); ok {
			plans = append(plans, b)
		}
		return true
	})
	e.U32(uint32(len(plans)))
	for _, b := range plans {
		e.U32(uint32(len(b)))
		e.Raw(b)
	}

	var results [][]byte
	rt.results.Range(func(rkey string, ent *resultEntry, deadline time.Time) bool {
		results = append(results, encodeResultEntry(rkey, ent, deadline))
		return true
	})
	e.U32(uint32(len(results)))
	for _, b := range results {
		e.U32(uint32(len(b)))
		e.Raw(b)
	}

	payload := e.Bytes()
	var out blockfile.Enc
	out.U32(warmupVersion)
	out.U32(crc32.Checksum(payload, warmupCRC))
	out.Raw(payload)
	return out.Bytes()
}

// ImportWarmup replays a warmup blob produced by ExportWarmup into the
// plan and result caches, returning how many templates and results were
// restored. Entries that no longer validate — epoch-stale deps, missing
// families, expired TTLs — are skipped individually; a structurally
// corrupt blob returns an error with nothing applied.
//
// allow is the caller's content gate: an entry is restored only when
// allow accepts every table it depends on. Catalog epochs restart from
// scratch each process, so a snapshot epoch can numerically alias a
// freshly rebuilt epoch over DIFFERENT content — epoch equality alone
// is not proof of sameness across a restart. The engine passes a
// fingerprint check; nil allows every table (same-process use, where
// epoch monotonicity does hold).
//
// Call it AFTER the catalog holds the tables and families the snapshot
// was taken against (and after any RestoreEpoch), or every entry will
// skip as stale.
func (rt *Runtime) ImportWarmup(blob []byte, allow func(table string) bool) (plans, results int, err error) {
	d := blockfile.NewDec(blob)
	if v := d.U32(); d.Err() != nil || v != warmupVersion {
		return 0, 0, fmt.Errorf("elp: warmup blob version %d (want %d)", v, warmupVersion)
	}
	sum := d.U32()
	payload := d.Raw(d.Remaining())
	if d.Err() != nil || crc32.Checksum(payload, warmupCRC) != sum {
		return 0, 0, fmt.Errorf("elp: warmup blob checksum mismatch")
	}
	d = blockfile.NewDec(payload)
	planBlobs, err := decodeBlobList(d)
	if err != nil {
		return 0, 0, fmt.Errorf("elp: warmup plans: %w", err)
	}
	resultBlobs, err := decodeBlobList(d)
	if err != nil {
		return 0, 0, fmt.Errorf("elp: warmup results: %w", err)
	}

	// Stage everything before applying anything: a blob that decodes
	// halfway applies nothing.
	staged := make([]*PreparedQuery, 0, len(planBlobs))
	for _, b := range planBlobs {
		pq, err := rt.decodePlan(b)
		if err != nil {
			return 0, 0, fmt.Errorf("elp: warmup plan entry: %w", err)
		}
		staged = append(staged, pq) // nil = valid encoding, stale content
	}
	type stagedResult struct {
		rkey     string
		ent      *resultEntry
		deadline time.Time
	}
	stagedResults := make([]stagedResult, 0, len(resultBlobs))
	for _, b := range resultBlobs {
		rkey, ent, deadline, err := rt.decodeResultEntry(b)
		if err != nil {
			return 0, 0, fmt.Errorf("elp: warmup result entry: %w", err)
		}
		stagedResults = append(stagedResults, stagedResult{rkey, ent, deadline})
	}

	allowed := func(deps []tableDep) bool {
		if allow == nil {
			return true
		}
		for _, dep := range deps {
			if !allow(dep.table) {
				return false
			}
		}
		return true
	}
	for _, pq := range staged {
		if pq == nil || !allowed(pq.deps) || !rt.fresh(pq) {
			continue
		}
		rt.cache.Put(pq.Key, pq)
		plans++
	}
	now := time.Now()
	for _, sr := range stagedResults {
		if sr.ent == nil || !allowed(sr.ent.deps) || !rt.freshDeps(sr.ent.deps) {
			continue
		}
		if !sr.deadline.IsZero() && now.After(sr.deadline) {
			continue
		}
		rt.results.PutWithDeadline(sr.rkey, sr.ent, sr.deadline)
		results++
	}
	return plans, results, nil
}

// decodeBlobList reads a count-prefixed list of length-prefixed blobs.
func decodeBlobList(d *blockfile.Dec) ([][]byte, error) {
	n := d.Count(4)
	if err := d.Err(); err != nil {
		return nil, err
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		b := d.Raw(d.Count(0))
		if err := d.Err(); err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// encodePlan serializes one prepared template. Join templates are not
// persisted (ok=false): rebuilding their join-expanded schema and
// compiled specs requires the original query object.
func encodePlan(pq *PreparedQuery) ([]byte, bool) {
	if len(pq.joins) > 0 {
		return nil, false
	}
	var e blockfile.Enc
	e.Str(pq.Key)
	e.Str(pq.table)
	encDeps(&e, pq.deps)
	e.U8(b2u(pq.exact))
	encValues(&e, pq.prepParams)
	e.U32(uint32(len(pq.disjuncts)))
	for _, pd := range pq.disjuncts {
		if pd.fam == nil {
			e.U8(0)
		} else {
			e.U8(1)
			e.Str(pd.fam.Phi.Key())
		}
		encDecision(&e, pd.famDec)
		if pd.fam != nil {
			e.U32(uint32(pd.pv.Level))
			if pd.probe == nil {
				e.U8(0)
			} else {
				e.U8(1)
				encResult(&e, pd.probe)
			}
			e.F64(pd.probeLat)
		}
	}
	return e.Bytes(), true
}

// decodePlan reconstructs a prepared template against the live catalog.
// It returns (nil, nil) for well-formed entries whose referenced state
// no longer exists — those skip silently; only malformed bytes error.
func (rt *Runtime) decodePlan(blob []byte) (*PreparedQuery, error) {
	d := blockfile.NewDec(blob)
	pq := &PreparedQuery{
		Key:   d.Str(),
		table: d.Str(),
		deps:  decDeps(d),
		exact: d.U8() != 0,
	}
	pq.prepParams = decValues(d)
	ndis := d.Count(1)
	if err := d.Err(); err != nil {
		return nil, err
	}

	entry, lookupErr := rt.cat.Lookup(pq.table)
	resolve := func(phiKey string) *sample.Family {
		if entry == nil {
			return nil
		}
		for _, f := range entry.Families {
			if f.Phi.Key() == phiKey {
				return f
			}
		}
		return nil
	}

	stale := lookupErr != nil
	for i := 0; i < ndis; i++ {
		pd := &prepDisjunct{results: map[int]*exec.Result{}}
		var famKey string
		hasFam := d.U8() != 0
		if hasFam {
			famKey = d.Str()
		}
		dec, decStale := decDecision(d, resolve)
		pd.famDec = dec
		stale = stale || decStale
		if hasFam {
			level := int(d.U32())
			if d.U8() != 0 {
				pd.probe = decResult(d)
			}
			pd.probeLat = d.F64()
			if fam := resolve(famKey); fam != nil && level < fam.Resolutions() {
				pd.fam = fam
				pd.pv = fam.View(level)
			} else {
				stale = true
			}
		}
		pq.disjuncts = append(pq.disjuncts, pd)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes", d.Remaining())
	}
	if stale {
		return nil, nil
	}
	pq.entry = entry
	pq.schema = entry.Table.Schema
	if pq.exact {
		pq.base = &prepDisjunct{results: map[int]*exec.Result{}}
	}
	return pq, nil
}

// encodeResultEntry serializes one cached answer with its key, note,
// deps and absolute expiry deadline.
func encodeResultEntry(rkey string, ent *resultEntry, deadline time.Time) []byte {
	var e blockfile.Enc
	e.Str(rkey)
	e.Str(ent.note)
	encDeps(&e, ent.deps)
	if deadline.IsZero() {
		e.I64(0)
	} else {
		e.I64(deadline.UnixNano())
	}
	encResponse(&e, ent.resp)
	return e.Bytes()
}

// decodeResultEntry reconstructs one cached answer. Like decodePlan,
// stale-but-well-formed entries return a nil entry and no error.
func (rt *Runtime) decodeResultEntry(blob []byte) (string, *resultEntry, time.Time, error) {
	d := blockfile.NewDec(blob)
	rkey := d.Str()
	note := d.Str()
	deps := decDeps(d)
	var deadline time.Time
	if ns := d.I64(); ns != 0 {
		deadline = time.Unix(0, ns)
	}

	stale := len(deps) == 0
	resolve := func(phiKey string) *sample.Family { return nil }
	if len(deps) > 0 {
		if ce, err := rt.cat.Lookup(deps[0].table); err == nil {
			resolve = func(phiKey string) *sample.Family {
				for _, f := range ce.Families {
					if f.Phi.Key() == phiKey {
						return f
					}
				}
				return nil
			}
		} else {
			stale = true
		}
	}
	resp, respStale := decResponse(d, resolve)
	if err := d.Err(); err != nil {
		return "", nil, time.Time{}, err
	}
	if d.Remaining() != 0 {
		return "", nil, time.Time{}, fmt.Errorf("%d trailing bytes", d.Remaining())
	}
	if stale || respStale {
		return rkey, nil, deadline, nil
	}
	return rkey, &resultEntry{resp: resp, note: note, deps: deps}, deadline, nil
}

// --- field codecs -----------------------------------------------------

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func encDeps(e *blockfile.Enc, deps []tableDep) {
	e.U32(uint32(len(deps)))
	for _, dep := range deps {
		e.Str(dep.table)
		e.U64(dep.epoch)
	}
}

func decDeps(d *blockfile.Dec) []tableDep {
	n := d.Count(12)
	if n == 0 {
		return nil
	}
	out := make([]tableDep, n)
	for i := range out {
		out[i] = tableDep{table: d.Str(), epoch: d.U64()}
	}
	return out
}

// encValues writes a value list preserving nil-vs-empty (0 = nil,
// n+1 = list of n) — restored state must stay DeepEqual to live state.
func encValues(e *blockfile.Enc, vs []types.Value) {
	if vs == nil {
		e.U32(0)
		return
	}
	e.U32(uint32(len(vs)) + 1)
	for _, v := range vs {
		e.Val(v)
	}
}

func decValues(d *blockfile.Dec) []types.Value {
	n := d.Count(1)
	if n == 0 {
		return nil
	}
	out := make([]types.Value, n-1)
	for i := range out {
		out[i] = d.Val()
	}
	return out
}

func encEstimates(e *blockfile.Enc, es []stats.Estimate) {
	if es == nil {
		e.U32(0)
		return
	}
	e.U32(uint32(len(es)) + 1)
	for _, est := range es {
		e.F64(est.Point)
		e.F64(est.StdErr)
		e.F64(est.Confidence)
		e.F64(est.Bound)
		e.I64(est.Rows)
		e.F64(est.EffRows)
		e.U8(b2u(est.Exact))
	}
}

func decEstimates(d *blockfile.Dec) []stats.Estimate {
	n := d.Count(8)
	if n == 0 {
		return nil
	}
	out := make([]stats.Estimate, n-1)
	for i := range out {
		out[i] = stats.Estimate{
			Point:      d.F64(),
			StdErr:     d.F64(),
			Confidence: d.F64(),
			Bound:      d.F64(),
			Rows:       d.I64(),
			EffRows:    d.F64(),
			Exact:      d.U8() != 0,
		}
	}
	return out
}

func encResult(e *blockfile.Enc, r *exec.Result) {
	if r.Groups == nil {
		e.U32(0)
	} else {
		e.U32(uint32(len(r.Groups)) + 1)
		for _, g := range r.Groups {
			encValues(e, g.Key)
			encEstimates(e, g.Estimates)
		}
	}
	e.I64(r.RowsScanned)
	e.I64(r.RowsMatched)
	e.F64(r.WeightedMatched)
	e.I64(r.MaxMatchedStratumFreq)
	e.I64(r.BytesScanned)
	e.F64(r.Confidence)
}

func decResult(d *blockfile.Dec) *exec.Result {
	r := &exec.Result{}
	n := d.Count(8)
	if n > 0 {
		r.Groups = make([]exec.Group, n-1)
		for i := range r.Groups {
			r.Groups[i] = exec.Group{Key: decValues(d), Estimates: decEstimates(d)}
		}
	}
	r.RowsScanned = d.I64()
	r.RowsMatched = d.I64()
	r.WeightedMatched = d.F64()
	r.MaxMatchedStratumFreq = d.I64()
	r.BytesScanned = d.I64()
	r.Confidence = d.F64()
	return r
}

// encDecision serializes a Decision; family references go by φ key.
func encDecision(e *blockfile.Enc, dec Decision) {
	if dec.View.Family == nil {
		e.U8(0)
	} else {
		e.U8(1)
		e.Str(dec.View.Family.Phi.Key())
		e.U32(uint32(dec.View.Level))
	}
	e.U8(b2u(dec.UsedBase))
	if dec.Probed == nil {
		e.U32(0)
	} else {
		e.U32(uint32(len(dec.Probed)) + 1)
		for _, p := range dec.Probed {
			if p.Family == nil {
				e.U8(0)
			} else {
				e.U8(1)
				e.Str(p.Family.Phi.Key())
			}
			e.F64(p.Selectivity)
			e.I64(p.Matched)
		}
	}
	e.F64(dec.ProbeLatency)
	e.F64(dec.ReadLatency)
	e.F64(dec.RequiredRows)
	e.F64(dec.PredictedBound)
	e.Str(dec.Reason)
}

// decDecision reconstructs a Decision, resolving family references via
// resolve. stale reports a reference that no longer resolves (or a view
// level out of range) — the decode itself still consumed the bytes.
func decDecision(d *blockfile.Dec, resolve func(string) *sample.Family) (dec Decision, stale bool) {
	if d.U8() != 0 {
		phiKey := d.Str()
		level := int(d.U32())
		if fam := resolve(phiKey); fam != nil && level < fam.Resolutions() {
			dec.View = fam.View(level)
		} else {
			stale = true
		}
	}
	dec.UsedBase = d.U8() != 0
	n := d.Count(10)
	if n > 0 {
		dec.Probed = make([]ProbeInfo, n-1)
		for i := range dec.Probed {
			var fam *sample.Family
			if d.U8() != 0 {
				if fam = resolve(d.Str()); fam == nil {
					stale = true
				}
			}
			dec.Probed[i] = ProbeInfo{Family: fam, Selectivity: d.F64(), Matched: d.I64()}
		}
	}
	dec.ProbeLatency = d.F64()
	dec.ReadLatency = d.F64()
	dec.RequiredRows = d.F64()
	dec.PredictedBound = d.F64()
	dec.Reason = d.Str()
	return dec, stale
}

func encResponse(e *blockfile.Enc, resp *Response) {
	if resp.Result == nil {
		e.U8(0)
	} else {
		e.U8(1)
		encResult(e, resp.Result)
	}
	if resp.Decisions == nil {
		e.U32(0)
	} else {
		e.U32(uint32(len(resp.Decisions)) + 1)
		for _, dec := range resp.Decisions {
			encDecision(e, dec)
		}
	}
	e.F64(resp.SimLatency)
	e.F64(resp.Confidence)
	e.Str(resp.Cache)
	e.Str(resp.ResultCache)
}

func decResponse(d *blockfile.Dec, resolve func(string) *sample.Family) (*Response, bool) {
	resp := &Response{}
	stale := false
	if d.U8() != 0 {
		resp.Result = decResult(d)
	}
	n := d.Count(10)
	if n > 0 {
		resp.Decisions = make([]Decision, n-1)
		for i := range resp.Decisions {
			var s bool
			resp.Decisions[i], s = decDecision(d, resolve)
			stale = stale || s
		}
	}
	resp.SimLatency = d.F64()
	resp.Confidence = d.F64()
	resp.Cache = d.Str()
	resp.ResultCache = d.Str()
	return resp, stale
}
