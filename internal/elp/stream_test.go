package elp

import (
	"context"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"blinkdb/internal/sqlparser"
	"blinkdb/internal/telemetry"
)

// collect runs q as a streaming session and returns every refinement.
func collect(t *testing.T, rt *Runtime, q *sqlparser.Query) []Refinement {
	t.Helper()
	var refs []Refinement
	if err := rt.RunStream(context.Background(), q, func(r Refinement) error {
		refs = append(refs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("stream emitted no refinements")
	}
	return refs
}

// checkSession validates the frame invariants every session must hold:
// contiguous sequence numbers, exactly one final refinement, and it last.
func checkSession(t *testing.T, refs []Refinement) {
	t.Helper()
	finals := 0
	for i, r := range refs {
		if r.Seq != i {
			t.Errorf("refinement %d has Seq %d", i, r.Seq)
		}
		if r.Resp == nil {
			t.Fatalf("refinement %d has nil response", i)
		}
		if r.Final {
			finals++
			if i != len(refs)-1 {
				t.Errorf("final refinement at position %d of %d", i, len(refs))
			}
		}
	}
	if finals != 1 {
		t.Errorf("session emitted %d final refinements, want exactly 1", finals)
	}
}

// TestStreamFinalBitIdentical is the equivalence matrix: for every query
// shape the final streamed response must be DeepEqual — latencies, cache
// markers, explanations included — to what the non-streaming Run returns
// on a twin runtime (newFixture is deterministic, so twins agree).
func TestStreamFinalBitIdentical(t *testing.T) {
	templates := []struct {
		name string
		src  string
		join bool
	}{
		{"bounded-avg", `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`, false},
		{"bounded-groupby", `SELECT AVG(time) FROM sessions GROUP BY os ERROR WITHIN 10%`, false},
		{"bounded-limit", `SELECT COUNT(*) FROM sessions GROUP BY city ERROR WITHIN 10% LIMIT 3`, false},
		{"time-bounded", `SELECT AVG(time) FROM sessions WHERE os = 'OSX' WITHIN 0.5 SECONDS`, false},
		{"exact-stratum", `SELECT AVG(time) FROM sessions WHERE city = 'city1'`, false},
		{"bounded-join", `SELECT AVG(time) FROM sessions JOIN vendors ON os = os WHERE vendor = 'Apple' ERROR WITHIN 10%`, true},
	}
	build := func(join bool) *fixture {
		if join {
			return joinFixture(t, 20000, Options{})
		}
		return newFixture(t, 20000, Options{})
	}
	for _, tc := range templates {
		t.Run(tc.name, func(t *testing.T) {
			stream, serial := build(tc.join), build(tc.join)
			want, err := serial.rt.Run(parse(t, tc.src))
			if err != nil {
				t.Fatal(err)
			}
			refs := collect(t, stream.rt, parse(t, tc.src))
			checkSession(t, refs)
			final := refs[len(refs)-1]
			if !reflect.DeepEqual(final.Resp, want) {
				t.Errorf("final streamed response diverges from Run:\n got %+v\nwant %+v", final.Resp, want)
			}
			if want := responseLevel(final.Resp); final.Level != want {
				t.Errorf("final Level = %d, want %d", final.Level, want)
			}
		})
	}
}

// TestStreamRefinementChain pins the heart of the feature: a selective
// tightly-bounded query answers first at the probe resolution, then walks
// the §4.4 delta chain — strictly increasing levels, non-increasing
// predicted bounds, non-decreasing simulated latency — before the final.
func TestStreamRefinementChain(t *testing.T) {
	f := newFixture(t, 20000, Options{})
	refs := collect(t, f.rt, parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`))
	checkSession(t, refs)
	if len(refs) < 2 {
		t.Fatalf("want at least one intermediate refinement before the final, got %d frame(s)", len(refs))
	}
	for i := 1; i < len(refs); i++ {
		prev, cur := refs[i-1], refs[i]
		if cur.Level <= prev.Level {
			t.Errorf("levels must strictly increase along the chain: %d then %d", prev.Level, cur.Level)
		}
		pb, cb := prev.Resp.Decisions[0].PredictedBound, cur.Resp.Decisions[0].PredictedBound
		if cb > pb {
			t.Errorf("predicted bound grew from %g to %g at refinement %d", pb, cb, i)
		}
		if cur.Resp.SimLatency < prev.Resp.SimLatency {
			t.Errorf("cumulative latency shrank from %g to %g at refinement %d",
				prev.Resp.SimLatency, cur.Resp.SimLatency, i)
		}
	}
	// Every intermediate is a complete well-formed answer near the truth.
	truth := f.truth["city1"]
	for i, r := range refs {
		est := r.Resp.Result.Groups[0].Estimates[0]
		if math.Abs(est.Point-truth)/truth > 0.5 {
			t.Errorf("refinement %d estimate %.2f wildly off truth %.2f", i, est.Point, truth)
		}
		if !r.Final && !strings.Contains(r.Resp.Decisions[0].Reason, "streaming refinement") {
			t.Errorf("intermediate %d not marked as a streaming refinement: %q", i, r.Resp.Decisions[0].Reason)
		}
	}
}

// TestStreamResultCacheHitSingleFinal: a warmed result cache answers a
// streaming session with exactly one final refinement — no scans, no
// intermediate frames, annotation "hit".
func TestStreamResultCacheHitSingleFinal(t *testing.T) {
	f, _ := resultRuntimes(t, 20000)
	q := `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`
	if _, err := f.rt.Run(parse(t, q)); err != nil {
		t.Fatal(err)
	}
	before := f.rt.Stats()
	refs := collect(t, f.rt, parse(t, q))
	checkSession(t, refs)
	if len(refs) != 1 {
		t.Fatalf("cache hit streamed %d refinements, want exactly 1 final", len(refs))
	}
	if rc := refs[0].Resp.ResultCache; rc != "hit" {
		t.Errorf("ResultCache = %q, want \"hit\"", rc)
	}
	after := f.rt.Stats()
	if after.PlanExecs != before.PlanExecs {
		t.Errorf("cache-hit stream ran the executor: PlanExecs %d -> %d", before.PlanExecs, after.PlanExecs)
	}
	if after.ResultHits != before.ResultHits+1 {
		t.Errorf("ResultHits %d -> %d, want +1", before.ResultHits, after.ResultHits)
	}
}

// TestStreamStampede: 8 concurrent streaming sessions over one cold key
// execute once. The singleflight leader streams its refinements; waiters
// each get exactly one shared final, bit-identical (modulo cache markers)
// to a serial cold run.
func TestStreamStampede(t *testing.T) {
	f, _ := resultRuntimes(t, 20000)
	twin := newFixture(t, 20000, Options{PlanCacheSize: 64, ResultCacheSize: 64})
	const src = `SELECT AVG(time) FROM sessions WHERE genre = 'western' GROUP BY os ERROR WITHIN 25%`
	twinRefs := collect(t, twin.rt, parse(t, src))
	want := twinRefs[len(twinRefs)-1].Resp
	oneColdRun := twin.rt.Stats()

	const goroutines = 8
	sessions := make([][]Refinement, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			errs[g] = f.rt.RunStream(context.Background(), parse(t, src), func(r Refinement) error {
				sessions[g] = append(sessions[g], r)
				return nil
			})
		}(g)
	}
	close(start)
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("session %d: %v", g, errs[g])
		}
		checkSession(t, sessions[g])
		final := sessions[g][len(sessions[g])-1]
		if !reflect.DeepEqual(stripAll(want), stripAll(final.Resp)) {
			t.Errorf("session %d final diverged from the serial cold run (marker %q)",
				g, final.Resp.ResultCache)
		}
		// Only the leader may stream intermediates; hit/shared sessions
		// degrade to one final frame.
		if rc := final.Resp.ResultCache; rc != "miss" && len(sessions[g]) != 1 {
			t.Errorf("session %d (%q) streamed %d frames, want 1", g, rc, len(sessions[g]))
		}
	}
	s := f.rt.Stats()
	if s.ResultMisses != 1 {
		t.Errorf("ResultMisses = %d, want 1 (one execution across %d sessions)", s.ResultMisses, goroutines)
	}
	if s.PlanExecs != oneColdRun.PlanExecs || s.ProbeExecs != oneColdRun.ProbeExecs {
		t.Errorf("stampede did %d plan / %d probe execs; one serial cold streaming run does %d / %d",
			s.PlanExecs, s.ProbeExecs, oneColdRun.PlanExecs, oneColdRun.ProbeExecs)
	}
}

// TestStreamDeltaReuseOff: with the §4.4 ablation the chain is gone and a
// session is exactly one final refinement — still bit-identical to Run
// under the same options.
func TestStreamDeltaReuseOff(t *testing.T) {
	off := false
	stream := newFixture(t, 20000, Options{DeltaReuse: &off})
	serial := newFixture(t, 20000, Options{DeltaReuse: &off})
	const src = `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`
	want, err := serial.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	refs := collect(t, stream.rt, parse(t, src))
	checkSession(t, refs)
	if len(refs) != 1 {
		t.Fatalf("DeltaReuse off streamed %d refinements, want 1", len(refs))
	}
	if !reflect.DeepEqual(refs[0].Resp, want) {
		t.Error("DeltaReuse-off final diverges from Run")
	}
}

// TestStreamDoesNotPerturbNonStreaming: running streaming sessions leaves
// a subsequent non-streaming Run bit-identical to a runtime that never
// streamed (shared memo, no recorded levels from intermediates).
func TestStreamDoesNotPerturbNonStreaming(t *testing.T) {
	mixed := newFixture(t, 20000, Options{})
	pure := newFixture(t, 20000, Options{})
	const src = `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`
	collect(t, mixed.rt, parse(t, src))
	got, err := mixed.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pure.rt.Run(parse(t, src)); err != nil {
		t.Fatal(err)
	}
	want, err := pure.rt.Run(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("a prior streaming session perturbed the non-streaming answer")
	}
	// Intermediates never count toward AnswersByLevel — only finals do.
	ms, ps := mixed.rt.Stats(), pure.rt.Stats()
	if !reflect.DeepEqual(ms.AnswersByLevel, ps.AnswersByLevel) {
		t.Errorf("AnswersByLevel diverged: streaming %v vs pure %v", ms.AnswersByLevel, ps.AnswersByLevel)
	}
}

// TestStreamSpanOrdering: the trace proves the first answer lands before
// the final — "refinement 0" starts (and ends) before "refinement final"
// starts.
func TestStreamSpanOrdering(t *testing.T) {
	f := newFixture(t, 20000, Options{})
	tr := telemetry.New("stream")
	err := f.rt.RunStreamTraced(context.Background(), parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`), tr,
		func(Refinement) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	var first, final *telemetry.Span
	tr.Walk(func(s *telemetry.Span, _ int) {
		switch s.Name() {
		case "refinement 0":
			first = s
		case "refinement final":
			final = s
		}
	})
	if first == nil || final == nil {
		t.Fatalf("trace missing refinement spans:\n%s", tr.Render())
	}
	if !first.Start().Before(final.Start()) {
		t.Errorf("refinement 0 (start %v) did not precede the final (start %v)",
			first.Start(), final.Start())
	}
	if gotLevel := first.Notes(); len(gotLevel) == 0 || !strings.HasPrefix(gotLevel[0], "level=") {
		t.Errorf("refinement span notes = %v, want level=N", gotLevel)
	}
}

// TestStreamCancelBetweenRefinements: an emit callback that cancels the
// context stops the session before the final scan, and the error is the
// context's.
func TestStreamCancelBetweenRefinements(t *testing.T) {
	f := newFixture(t, 20000, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []Refinement
	err := f.rt.RunStream(ctx, parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`),
		func(r Refinement) error {
			got = append(got, r)
			cancel()
			return nil
		})
	if err == nil {
		t.Fatal("cancelled session returned nil error")
	}
	if !isCancellation(err) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
	for _, r := range got {
		if r.Final {
			t.Error("cancelled session still delivered a final refinement")
		}
	}
	s := f.rt.Stats()
	if s.Cancelled == 0 {
		t.Error("Cancelled counter not bumped")
	}
}

// TestStreamAlreadyCancelled: a dead context returns before any work.
func TestStreamAlreadyCancelled(t *testing.T) {
	f := newFixture(t, 5000, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := f.rt.RunStream(ctx, parse(t, `SELECT COUNT(*) FROM sessions ERROR WITHIN 10%`),
		func(Refinement) error {
			t.Error("emit called despite dead context")
			return nil
		})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	s := f.rt.Stats()
	if s.PlanExecs != 0 || s.Prepares != 0 {
		t.Errorf("dead context still did work: PlanExecs=%d Prepares=%d", s.PlanExecs, s.Prepares)
	}
	if s.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", s.Cancelled)
	}
}
