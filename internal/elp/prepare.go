package elp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"blinkdb/internal/catalog"
	"blinkdb/internal/exec"
	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/telemetry"
	"blinkdb/internal/types"
)

// errTemplateMismatch signals that a PreparedQuery cannot serve a query
// (different template shape); callers re-prepare.
var errTemplateMismatch = errors.New("elp: query does not match the prepared template")

// tableDep records one table the prepared state was computed against,
// with its catalog epoch at prepare time. Any epoch change — a sample
// refresh, a maintenance rebuild/drop, a table reload — invalidates the
// prepared state.
type tableDep struct {
	table string
	epoch uint64
}

// PreparedQuery is the reusable outcome of Prepare for one query
// template: the resolved catalog snapshot, compiled join specs, and — for
// bounded queries — each disjunct's probed family, probe result and
// Error-Latency Profile inputs. Execute binds fresh constants and bounds
// against this state without re-probing.
//
// A PreparedQuery is safe for concurrent Execute calls: everything
// written by Prepare is immutable afterwards, and the per-level result
// memo is mutex-guarded.
type PreparedQuery struct {
	// Key is the template key (sqlparser.Normalize) this state serves.
	Key string

	table string
	deps  []tableDep
	entry *catalog.Entry // catalog snapshot at prepare time
	// schema is the scan schema: the fact table's, or the join-expanded
	// one when the template has JOIN clauses.
	schema *types.Schema
	joins  []exec.JoinSpec
	// exact marks unbounded templates (no ERROR/WITHIN bound): they run
	// on the base table and carry no probe state.
	exact bool
	// prepParams is the parameter vector Prepare ran with. Cached RESULTS
	// (probe answers, memoized scans) may only answer queries whose
	// parameters equal it; cached DECISION state (family choice, probe
	// statistics, ELP fit) is template-scoped and serves any constants.
	prepParams []types.Value
	// prepQ/prepPlan are the exact query object Prepare compiled and its
	// plan; executeParams reuses the plan when handed the same object
	// (the cache-off and miss paths), skipping a second compile.
	prepQ    *sqlparser.Query
	prepPlan *exec.Plan

	base      *prepDisjunct // base-table result memo for exact templates
	disjuncts []*prepDisjunct
}

// Epoch returns the fact table's epoch the query was prepared against.
func (pq *PreparedQuery) Epoch() uint64 {
	if len(pq.deps) == 0 {
		return 0
	}
	return pq.deps[0].epoch
}

// prepDisjunct is the prepared state of one conjunctive sub-query
// (§4.1.2 disjunct): the §4.1.1 family choice with its probe outcomes,
// and the probe-chain endpoint the §4.2 resolution selection extrapolates
// from.
type prepDisjunct struct {
	// fam is the selected family; nil when the table has no usable
	// samples (exact execution).
	fam *sample.Family
	// famDec is the Decision skeleton selectFamily produced: probed
	// candidates with selectivities, probe latency, reason prefix.
	famDec Decision
	// pv/probe/probeLat are the §4.2 probe chain endpoint: the escalated
	// probe view, its result, and the accumulated probe latency.
	pv       sample.View
	probe    *exec.Result
	probeLat float64

	// results memoizes executed answers by resolution level (-1 = base
	// table) for queries whose parameters equal prepParams; guarded by mu.
	mu      sync.Mutex
	results map[int]*exec.Result
}

// runMemo returns the memoized result for a level, executing (and, when
// reusable, memoizing) on miss. reusable is true only when the caller's
// parameter vector equals prepParams — results computed for different
// constants must never be served from or stored into the memo.
func (pd *prepDisjunct) runMemo(ctx context.Context, rt *Runtime, level int, plan *exec.Plan, in exec.Input, conf float64, joins []exec.JoinSpec, reusable bool, sp *telemetry.Span) (*exec.Result, error) {
	if reusable {
		pd.mu.Lock()
		r, ok := pd.results[level]
		pd.mu.Unlock()
		if ok {
			sp.Note("memo=hit")
			return r, nil
		}
	}
	r, err := rt.runPlan(ctx, plan, in, conf, joins, sp)
	if err != nil {
		return nil, err
	}
	if reusable {
		pd.mu.Lock()
		if prev, ok := pd.results[level]; ok {
			r = prev // concurrent executes converge on one pointer
		} else {
			pd.results[level] = r
		}
		pd.mu.Unlock()
	}
	return r, nil
}

// baseMemo is runMemo for the base table (level -1).
func (pd *prepDisjunct) baseMemo(ctx context.Context, rt *Runtime, plan *exec.Plan, tab *storage.Table, conf float64, joins []exec.JoinSpec, reusable bool, sp *telemetry.Span) (*exec.Result, error) {
	return pd.runMemo(ctx, rt, -1, plan, exec.FromTable(tab), conf, joins, reusable, sp)
}

// confidenceFor derives the CI level for a query.
func (rt *Runtime) confidenceFor(q *sqlparser.Query) float64 {
	conf := rt.opt.Confidence
	if q.Err != nil && q.Err.Confidence > 0 {
		conf = q.Err.Confidence
	} else if q.ReportError {
		conf = q.ReportConfidence
	}
	return conf
}

// Prepare compiles a query template and builds its reusable runtime
// state: catalog/join resolution, and — for bounded queries — per
// disjunct the §4.1.1 family selection (probing the smallest samples
// where needed) and the §4.2 probe chain the Error-Latency Profile is
// extrapolated from. The returned PreparedQuery answers any query with
// the same template via Execute; it becomes stale (and is rejected by the
// plan cache) when any involved table's catalog epoch changes.
func (rt *Runtime) Prepare(q *sqlparser.Query) (*PreparedQuery, error) {
	key, params := sqlparser.Normalize(q)
	return rt.prepareKeyed(context.Background(), q, key, params, nil)
}

// prepareKeyed is Prepare with the normalization precomputed (Run already
// normalized the query for the cache lookup) and an optional parent span
// under which the prepare phase and its probes are recorded.
func (rt *Runtime) prepareKeyed(ctx context.Context, q *sqlparser.Query, key string, params []types.Value, sp *telemetry.Span) (*PreparedQuery, error) {
	psp := sp.Child("prepare")
	defer psp.End()
	rt.bump(&rt.stats.prepares)
	entry, err := rt.cat.Lookup(q.Table)
	if err != nil {
		return nil, err
	}
	pq := &PreparedQuery{
		Key:        key,
		table:      q.Table,
		entry:      entry,
		prepParams: params,
		deps:       []tableDep{{strings.ToLower(q.Table), entry.Epoch}},
	}
	schema := entry.Table.Schema
	var joins []exec.JoinSpec
	if len(q.Joins) > 0 {
		schema, joins, err = exec.CompileJoins(q, entry.Table.Schema,
			func(table string) (*storage.Table, error) {
				de, err := rt.cat.Lookup(table)
				if err != nil {
					return nil, err
				}
				pq.deps = append(pq.deps, tableDep{strings.ToLower(table), de.Epoch})
				return de.Table, nil
			})
		if err != nil {
			return nil, err
		}
		if err := rt.checkJoinAdmissible(entry, q, joins); err != nil {
			return nil, err
		}
	}
	pq.schema = schema
	pq.joins = joins
	plan, err := exec.Compile(q, schema)
	if err != nil {
		return nil, err
	}
	pq.prepQ, pq.prepPlan = q, plan

	// Unbounded queries run exactly on the base table, like plain Hive:
	// no probes, no ELP.
	if q.Err == nil && q.Time == nil {
		pq.exact = true
		pq.base = &prepDisjunct{results: map[int]*exec.Result{}}
		return pq, nil
	}

	conf := rt.confidenceFor(q)
	disjuncts := types.SplitDisjuncts(plan.Pred)
	groupCols := types.NewColumnSet(q.GroupBy...)
	for _, pred := range disjuncts {
		sub := plan.WithPred(pred)
		// Sample selection considers only fact-table columns: samples
		// exist on the fact side; dimension columns are joined exactly.
		phi := factColumns(pred.Columns().Union(groupCols), entry.Table.Schema)
		pd, err := rt.prepareConjunctive(ctx, entry, sub, phi, q, conf, joins, psp)
		if err != nil {
			return nil, err
		}
		pq.disjuncts = append(pq.disjuncts, pd)
	}
	return pq, nil
}

// prepareConjunctive runs the probing half of planning one conjunctive
// sub-query: §4.1.1 family selection, then the §4.2 probe chain —
// for error-bounded queries, escalating to coarser resolutions until the
// probe carries statistical signal (≥20 matching rows). Only the FIRST
// probe enjoys the cheap-probe assumption; escalations read real delta
// blocks and are priced (and budget-limited) accordingly.
func (rt *Runtime) prepareConjunctive(ctx context.Context, entry *catalog.Entry, plan *exec.Plan,
	phi types.ColumnSet, q *sqlparser.Query, conf float64, joins []exec.JoinSpec, sp *telemetry.Span) (*prepDisjunct, error) {

	fam, dec, famProbe, err := rt.selectFamily(ctx, entry, plan, phi, conf, joins, sp)
	if err != nil {
		return nil, err
	}
	pd := &prepDisjunct{fam: fam, famDec: dec, results: map[int]*exec.Result{}}
	if fam == nil {
		return pd, nil
	}
	pv := rt.probeView(fam)
	in, probeBlocks := viewInput(pv, plan)
	probe := famProbe
	if probe == nil {
		var psp *telemetry.Span
		if sp != nil {
			psp = sp.Child("probe " + fam.Label())
		}
		probe, err = rt.runProbe(ctx, plan, in, conf, joins, psp)
		psp.End()
		if err != nil {
			return nil, err
		}
	}
	probeLat := rt.latencyOfProbe(probeBlocks)
	for q.Err != nil && probe.RowsMatched < 20 && pv.Level < fam.Resolutions()-1 {
		next := fam.View(pv.Level + 1)
		step := rt.latencyOfSample(prunedBlocks(next.DeltaBlocks(pv), plan))
		if q.Time != nil && probeLat+step > q.Time.Seconds {
			break // escalating further would blow the time bound
		}
		pv = next
		in, _ = viewInput(pv, plan)
		var esp *telemetry.Span
		if sp != nil {
			esp = sp.Child(fmt.Sprintf("probe escalate L%d %s", pv.Level, fam.Label()))
		}
		probe, err = rt.runProbe(ctx, plan, in, conf, joins, esp)
		esp.End()
		if err != nil {
			return nil, err
		}
		probeLat += step
	}
	pd.pv, pd.probe, pd.probeLat = pv, probe, probeLat
	return pd, nil
}

// Execute answers a query from prepared state: it binds the query's
// current constants into a fresh plan, re-runs resolution selection
// against the cached probe statistics, and scans only the chosen view —
// never re-probing. The query must match the prepared template
// (sqlparser.Normalize key); constants and bound values may differ from
// the prepare-time ones, in which case the cached probe statistics stand
// in for a fresh probe (the template-scoped approximation the paper's
// per-template sample choice rests on) while the answer itself is always
// computed — or memo-served — for the query's own constants.
func (rt *Runtime) Execute(pq *PreparedQuery, q *sqlparser.Query) (*Response, error) {
	key, params := sqlparser.Normalize(q)
	if key != pq.Key {
		return nil, errTemplateMismatch
	}
	return rt.executeParams(context.Background(), pq, q, params, nil)
}

// executeParams is Execute with the normalization precomputed. The
// response is returned unannotated; Run applies the plan/result cache
// markers so cached canonical responses stay pristine. It is exactly
// streamParams with no refinement sink.
func (rt *Runtime) executeParams(ctx context.Context, pq *PreparedQuery, q *sqlparser.Query, params []types.Value, sp *telemetry.Span) (*Response, error) {
	return rt.streamParams(ctx, pq, q, params, sp, nil)
}

// levelChoice is the scan-free half of executing one conjunctive
// sub-query: the fully-built Decision (reason, latencies, chosen view,
// predicted bound) plus the resolution the scan half must read. level -1
// means base-table execution (no samples, unreachable error bound, or an
// exact template). Everything here derives deterministically from
// prepared probe state and block metadata — no scan runs — which is what
// lets the streaming session price and announce every refinement before
// executing it.
type levelChoice struct {
	dec   Decision
	level int
}

// chooseConjunctive runs §4.2 resolution selection for one conjunctive
// sub-query from its prepared probe state: the error bound's row
// requirement (levelForRows), the time bound's latency cap (levelForTime),
// the §4.4 delta-reuse bump to at least the probe's resolution, and the
// full latency/bound accounting for the chosen level.
func (rt *Runtime) chooseConjunctive(pq *PreparedQuery, pd *prepDisjunct, plan *exec.Plan,
	q *sqlparser.Query, conf float64) levelChoice {

	entry, joins := pq.entry, pq.joins
	dec := pd.famDec // copy; Probed slice is shared and immutable
	if pd.fam == nil {
		// No samples at all: exact execution.
		dec.UsedBase = true
		dec.Reason = "no sample families available: exact execution"
		dec.ReadLatency = rt.latencyOfBase(entry.Table.Blocks) + rt.broadcastCost(joins)
		return levelChoice{dec: dec, level: -1}
	}
	fam, pv, probe := pd.fam, pd.pv, pd.probe
	if pd.probeLat > dec.ProbeLatency {
		dec.ProbeLatency = pd.probeLat
	}

	minLevel := 0 // smallest level satisfying the error bound
	satisfiable := true
	if q.Err != nil {
		if probe.RowsMatched == 0 {
			// The probe saw no matching rows: no error bound can be
			// certified from this family.
			satisfiable = false
			minLevel = fam.Resolutions() - 1
			dec.Reason += "; probe matched no rows"
		} else {
			need := rt.requiredRows(probe, q.Err)
			dec.RequiredRows = need
			minLevel, satisfiable = rt.levelForRows(fam, probe, need, pv)
		}
	}

	maxLevel := fam.Resolutions() - 1 // largest level within the time bound
	if q.Time != nil {
		maxLevel = rt.levelForTime(fam, plan, q.Time.Seconds, dec.ProbeLatency, pv)
	}

	level := minLevel
	switch {
	case q.Err != nil && q.Time != nil:
		// Time is a hard bound; deliver the most accurate within it.
		if minLevel > maxLevel || !satisfiable {
			level = maxLevel
		}
	case q.Err != nil:
		if !satisfiable {
			// Even the largest resolution cannot meet the error bound and
			// no time bound caps the work: fall back to exact execution.
			dec.Reason += "; largest sample insufficient for error bound"
			dec.UsedBase = true
			dec.Reason += "; error bound unreachable on samples: exact execution"
			dec.ReadLatency = rt.latencyOfBase(entry.Table.Blocks) + rt.broadcastCost(joins)
			return levelChoice{dec: dec, level: -1}
		}
	case q.Time != nil:
		level = maxLevel
	}
	if level < 0 {
		level = 0
	}
	dec.Reason += fmt.Sprintf("; resolution %d/%d (K=%d)", level, fam.Resolutions()-1, fam.View(level).Cap())
	// With delta reuse the probe's blocks are already read; answering
	// from at least the probe's resolution costs nothing extra and can
	// only improve accuracy.
	if *rt.opt.DeltaReuse && level < pv.Level {
		level = pv.Level
	}
	view := fam.View(level)
	dec.View = view
	// The projected half-width at the chosen level — recorded whether or
	// not telemetry is enabled, so enabling it never perturbs answers.
	dec.PredictedBound = predictedBound(fam, probe, level, pv, conf)
	// Latency accounting applies §4.4 delta reuse: the probe already read
	// resolutions 0..pv.Level.
	if *rt.opt.DeltaReuse && probe != nil {
		dec.ReadLatency = rt.latencyOfSample(prunedBlocks(view.DeltaBlocks(pv), plan))
	} else {
		dec.ReadLatency = rt.latencyOfSample(prunedBlocks(view.Blocks(), plan))
	}
	dec.ReadLatency += rt.broadcastCost(joins)
	return levelChoice{dec: dec, level: level}
}

// scanConjunctive is the scan half: execute the level chooseConjunctive
// picked (zone-pruned) — unless the probe already ran on exactly this
// view with these very parameters, in which case its answer IS the final
// answer: re-running the same (family, view) was the double-probe bug.
func (rt *Runtime) scanConjunctive(ctx context.Context, pq *PreparedQuery, pd *prepDisjunct, plan *exec.Plan,
	conf float64, paramsEq bool, lc levelChoice, sp *telemetry.Span) (*exec.Result, error) {

	if lc.level < 0 {
		res, err := pd.baseMemo(ctx, rt, plan, pq.entry.Table, conf, pq.joins, paramsEq, sp)
		if err != nil {
			return nil, err
		}
		rt.recordLevel(-1)
		return res, nil
	}
	if lc.level == pd.pv.Level && paramsEq {
		rt.recordLevel(lc.level)
		return pd.probe, nil
	}
	in, _ := viewInput(pd.fam.View(lc.level), plan)
	res, err := pd.runMemo(ctx, rt, lc.level, plan, in, conf, pq.joins, paramsEq, sp)
	if err != nil {
		return nil, err
	}
	rt.recordLevel(lc.level)
	return res, nil
}

// fresh reports whether every table the prepared query depends on still
// carries its prepare-time epoch — i.e. no sample refresh, maintenance
// rebuild or table reload happened since. A stale PreparedQuery must
// never be served: its probe results and ELP were fitted on sample data
// that no longer exists.
func (rt *Runtime) fresh(pq *PreparedQuery) bool { return rt.freshDeps(pq.deps) }

// freshDeps is the dependency half of fresh, shared with the result
// cache: a cached RESULT is exactly as stale as a cached probe when any
// of its tables' epochs moved.
func (rt *Runtime) freshDeps(deps []tableDep) bool {
	for _, d := range deps {
		if rt.cat.Epoch(d.table) != d.epoch {
			return false
		}
	}
	return true
}

// clone deep-copies a response: the Result (groups, keys, estimates) and
// the Decisions slice are fresh, so annotating or mutating the clone
// never touches the canonical cached response or any other caller's
// copy. The Probed slices and sample.View references inside decisions
// are shared — both are immutable after planning.
func (r *Response) clone() *Response {
	cp := *r
	cp.Result = r.Result.Clone()
	if r.Decisions != nil {
		cp.Decisions = append([]Decision(nil), r.Decisions...)
	}
	return &cp
}

// annotate tags each decision (and the response) with the plan-cache
// outcome so EXPLAIN output shows cache=hit|miss. No-op when the cache
// is disabled, preserving pre-cache reason strings bit for bit.
func annotate(resp *Response, note string) {
	if note == "" {
		return
	}
	resp.Cache = note
	for i := range resp.Decisions {
		resp.Decisions[i].Reason += "; cache=" + note
	}
}

// annotateResult tags each decision (and the response) with the
// result-cache outcome so EXPLAIN output shows result=hit|miss|shared.
// No-op when the result cache is disabled, preserving pre-result-cache
// reason strings bit for bit.
func annotateResult(resp *Response, note string) {
	if note == "" {
		return
	}
	resp.ResultCache = note
	for i := range resp.Decisions {
		resp.Decisions[i].Reason += "; result=" + note
	}
}
