// Package elp implements BlinkDB's runtime sample selection (§4): given a
// query with an error or response-time bound, it probes the smallest
// samples of candidate families, builds an Error-Latency Profile that
// predicts how error shrinks and latency grows with sample size, and picks
// the family and resolution that best satisfy the bounds.
//
// Latency is attributed by the cluster simulator (internal/cluster) using
// the same linear-scaling model the paper fits at runtime (§4.2); error
// projections use the 1/√n law of Table 2.
package elp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"time"

	"blinkdb/internal/catalog"
	"blinkdb/internal/cluster"
	"blinkdb/internal/exec"
	"blinkdb/internal/plancache"
	"blinkdb/internal/resultcache"
	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/stats"
	"blinkdb/internal/storage"
	"blinkdb/internal/telemetry"
	"blinkdb/internal/types"
)

// DefaultShuffleFraction is Options.ShuffleFraction's default: shuffle
// (GROUP BY exchange) volume approximated as 1% of bytes scanned.
const DefaultShuffleFraction = 0.01

// Options tune the runtime. Zero values select paper-default behaviour.
type Options struct {
	// Confidence is the default CI level for queries that don't set one.
	Confidence float64
	// ProbeAll, when true (default), probes the smallest sample of every
	// family when no covering family exists (§4.1.1's choice); false
	// probes only families sharing ≥1 column with the query — the
	// ablation the paper argues against (negative correlation risk).
	ProbeAll *bool
	// DeltaReuse, when true (default), charges only the delta blocks
	// when upgrading from the probe resolution (§4.4); false recharges
	// the full chosen sample — the ablation of intermediate-data reuse.
	DeltaReuse *bool
	// Scale maps physical stored bytes to logical bytes for BASE TABLE
	// scans (our tables are laptop-scale stand-ins for TB-scale data).
	Scale float64
	// SampleScale maps physical sample bytes to logical bytes. Sample
	// resolutions are absolute row counts in the paper (§2.3: 1M/2M/4M
	// tuples; K = 1e5), so their logical size scales with the cap ratio
	// (paperK/ourK), not with the table-byte ratio. Defaults to Scale.
	SampleScale float64
	// Profile is the engine cost profile (default BlinkDBEngine).
	Profile cluster.EngineProfile
	// ShuffleFraction approximates shuffle volume as a fraction of bytes
	// scanned (GROUP BY exchange). Default DefaultShuffleFraction.
	ShuffleFraction float64
	// ProbeOverheadOnly prices probe runs at job overhead alone,
	// reflecting §4.1.1's assumption that the smallest samples fit in
	// aggregate memory and "running Q on these samples is very fast".
	// Off by default (probes priced like any other read).
	ProbeOverheadOnly bool
	// MinProbeRows is the smallest sample size worth probing; the probe
	// uses the smallest resolution with at least this many rows so the
	// selectivity estimate carries statistical signal. Default 100.
	MinProbeRows int64
	// Workers sizes the executor's scan worker pool (default 1). Results
	// are bit-identical for any value: the executor folds block-partitioned
	// partial aggregates in a deterministic order.
	Workers int
	// Affine, when true (default), schedules scan workers node-affine:
	// each worker owns one simulated node's shard of the block list
	// (exec.SchedNodeAffine). False restores the node-blind round-robin
	// scheduler. Results are bit-identical either way — the partition and
	// merge order never change — and latency attribution always prices
	// the affine schedule's locality: which bytes are node-local is a
	// property of block placement and the partition, not of the knob.
	Affine *bool
	// PlanCacheSize enables the template-keyed prepared-query cache: up
	// to this many templates keep their compiled state, probe results and
	// Error-Latency Profiles across queries, amortizing the probe cost
	// that dominates bounded queries at high QPS. 0 (the default)
	// disables the cache, preserving the prepare-per-query pipeline — and
	// with it every pre-cache answer and latency, bit for bit. Cached
	// state is epoch-validated against the catalog on every hit, so a
	// sample refresh or rebuild is never served stale.
	PlanCacheSize int
	// ResultCacheSize enables the cross-query RESULT cache: up to this
	// many completed answers are kept keyed by (template key, full
	// parameter vector), so an exact replay of a recent query is served
	// from memory — no probe, no scan — after validating the catalog
	// epochs of every table the answer depends on. Concurrent misses of
	// one key are collapsed by singleflight: the scan runs once and every
	// caller shares (a private copy of) the answer. 0 (the default)
	// disables the cache, preserving the result-cache-free pipeline bit
	// for bit. Served answers are deep copies (copy-on-return), so
	// callers can never mutate cached state.
	ResultCacheSize int
	// ResultCacheTTL bounds the wall-clock age of served results on top
	// of epoch validation (epochs track sample rebuilds; the TTL covers
	// deployments whose base data drifts underneath unchanged samples).
	// 0 (the default) means no TTL: entries live until evicted or
	// epoch-invalidated.
	ResultCacheTTL time.Duration
	// Telemetry, when non-nil, receives one Observation per completed Run
	// (keyed by template): wall-clock and predicted latency, rows/bytes
	// scanned, and predicted-vs-observed error half-width. nil (the
	// default) disables recording with zero overhead on the query path —
	// answers are bit-identical either way (the PredictedBound projection
	// is computed unconditionally).
	Telemetry *telemetry.Registry
}

func (o Options) normalize() Options {
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.ProbeAll == nil {
		v := true
		o.ProbeAll = &v
	}
	if o.DeltaReuse == nil {
		v := true
		o.DeltaReuse = &v
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.SampleScale <= 0 {
		o.SampleScale = o.Scale
	}
	if o.Profile.Name == "" {
		o.Profile = cluster.BlinkDBEngine
	}
	if o.ShuffleFraction <= 0 {
		o.ShuffleFraction = DefaultShuffleFraction
	}
	if o.MinProbeRows <= 0 {
		o.MinProbeRows = 100
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Affine == nil {
		v := true
		o.Affine = &v
	}
	if o.PlanCacheSize < 0 {
		o.PlanCacheSize = 0
	}
	if o.ResultCacheSize < 0 {
		o.ResultCacheSize = 0
	}
	if o.ResultCacheTTL < 0 {
		o.ResultCacheTTL = 0
	}
	return o
}

// Runtime executes bounded queries against a catalog on a simulated
// cluster via an explicit prepare → execute pipeline: Prepare compiles a
// query template, probes the smallest samples and fits the Error-Latency
// Profile; Execute binds constants and bounds, re-runs only resolution
// selection and the chosen view scan. Run composes the two, and — when
// Options.PlanCacheSize enables it — reuses prepared state across queries
// of the same template through a sharded LRU with catalog-epoch
// invalidation. All methods are safe for concurrent use.
type Runtime struct {
	cat  *catalog.Catalog
	clus *cluster.Cluster
	opt  Options

	// cache maps template keys to prepared queries; nil when disabled.
	cache *plancache.Cache[*PreparedQuery]
	// results maps (template key, parameter vector) to completed answers;
	// nil when disabled. flights collapses concurrent misses of one
	// result key into a single execution.
	results *resultcache.Cache[*resultEntry]
	flights resultcache.Flights[*resultEntry]

	// Serving counters behind Stats(), guarded by one mutex so a snapshot
	// is internally consistent — per-counter atomics let Stats observe a
	// hits/misses pair that never coexisted, skewing HitRate under load.
	statMu sync.Mutex
	stats  statCounters
}

// resultEntry is one cached answer: the canonical (never-annotated,
// never-handed-out) response, the plan-cache note of the execution that
// produced it, and the per-table epochs it was computed against. The
// entry is servable only while every dep's catalog epoch is unchanged.
type resultEntry struct {
	resp *Response
	note string
	deps []tableDep
}

// New creates a runtime.
func New(cat *catalog.Catalog, clus *cluster.Cluster, opt Options) *Runtime {
	opt = opt.normalize()
	return &Runtime{
		cat: cat, clus: clus, opt: opt,
		cache:   plancache.New[*PreparedQuery](opt.PlanCacheSize),
		results: resultcache.New[*resultEntry](opt.ResultCacheSize, opt.ResultCacheTTL),
	}
}

// Decision records how one conjunctive sub-query was planned.
type Decision struct {
	// View is the chosen sample resolution (zero-value when the base
	// table was used).
	View sample.View
	// UsedBase marks execution on the full base table (unbounded query
	// or no usable sample).
	UsedBase bool
	// Probed lists the families probed, with their selectivity ratios.
	Probed []ProbeInfo
	// ProbeLatency is the simulated seconds spent probing (parallel max).
	ProbeLatency float64
	// ReadLatency is the simulated seconds reading the chosen sample
	// (delta-only when reuse applies).
	ReadLatency float64
	// RequiredRows is the matched-row target derived from the error
	// bound (0 when no error bound).
	RequiredRows float64
	// PredictedBound is the ELP-projected worst-group CI half-width at
	// the chosen resolution (probe stderr scaled by the 1/√n law, times
	// the z score) — what the profile promised before scanning. 0 for
	// exact/base-table execution. Computed unconditionally and
	// deterministically, so it is identical with telemetry on or off;
	// comparing it against the result's reported half-width is the
	// calibration signal the adaptive loop consumes.
	PredictedBound float64
	// Reason summarises the choice for EXPLAIN-style output.
	Reason string
}

// Latency returns the decision's total simulated seconds.
func (d Decision) Latency() float64 { return d.ProbeLatency + d.ReadLatency }

// ProbeInfo is one family probe outcome.
type ProbeInfo struct {
	Family      *sample.Family
	Selectivity float64 // matched/read on the family's smallest sample
	Matched     int64
}

// Response is the full outcome of one query.
type Response struct {
	// Result holds the estimates.
	Result *exec.Result
	// Decisions has one entry per conjunctive disjunct (§4.1.2).
	Decisions []Decision
	// SimLatency is the simulated wall-clock seconds (disjuncts run in
	// parallel: max over decisions).
	SimLatency float64
	// Confidence is the CI level used.
	Confidence float64
	// Cache reports the plan-cache outcome: "hit" when prepared state was
	// reused, "miss" when this query prepared it, "" when the cache is
	// disabled — or when the whole answer came from the result cache,
	// which never consults the plan pipeline.
	Cache string
	// ResultCache reports the result-cache outcome: "hit" when a cached
	// answer for this exact (template, parameters) pair was served,
	// "miss" when this query executed (and cached) it, "shared" when a
	// concurrent miss's singleflight execution supplied the answer, ""
	// when the result cache is disabled.
	ResultCache string
}

// Run parses nothing: q must already be parsed. It plans and executes the
// query returning estimates with error bars and a simulated latency.
//
// Run is Prepare + Execute, wrapped by up to two reuse layers. With the
// plan cache enabled, the Prepare half is amortized across queries
// sharing a template: a hit reuses the cached compiled state, probe
// results and ELP fit (after validating catalog epochs — stale state from
// before a sample refresh is re-prepared, never served) and pays only
// resolution selection plus the chosen view scan. With the result cache
// enabled, an exact replay — same template AND same parameter vector —
// skips even that: the completed answer is served from memory (epoch- and
// TTL-validated, deep-copied so callers cannot mutate cached state), and
// concurrent misses of one cold key collapse into a single execution
// whose answer every caller shares.
func (rt *Runtime) Run(q *sqlparser.Query) (*Response, error) {
	return rt.RunCtxTraced(context.Background(), q, nil)
}

// RunCtx is Run with a cancellation context: a context cancelled before
// the call returns ctx.Err() without planning or scanning anything, and a
// context cancelled mid-query stops the scan workers within one block
// range's worth of work. Cancelled queries bump Stats.Cancelled and
// return no partial answer. The background context makes this exactly
// Run.
func (rt *Runtime) RunCtx(ctx context.Context, q *sqlparser.Query) (*Response, error) {
	return rt.RunCtxTraced(ctx, q, nil)
}

// RunTraced is Run with query-lifecycle telemetry: span children of the
// trace's root record each pipeline phase (normalize, cache lookups, the
// singleflight execution with its probes and per-shard scans, result
// materialization), and — when Options.Telemetry is set — the completed
// query is recorded against its template key. tr may be nil: with a nil
// trace and a nil registry this is exactly Run, with zero telemetry
// overhead and no allocations on the telemetry paths.
func (rt *Runtime) RunTraced(q *sqlparser.Query, tr *telemetry.Trace) (*Response, error) {
	return rt.RunCtxTraced(context.Background(), q, tr)
}

// RunCtxTraced is RunTraced with a cancellation context (see RunCtx).
func (rt *Runtime) RunCtxTraced(ctx context.Context, q *sqlparser.Query, tr *telemetry.Trace) (*Response, error) {
	reg := rt.opt.Telemetry
	var started time.Time
	if reg != nil {
		started = time.Now()
	}
	// An already-cancelled context never enters the pipeline: no
	// normalization, no cache consultation, no scan (the QueryCtx
	// promptness pin).
	if err := ctx.Err(); err != nil {
		rt.bump(&rt.stats.cancelled)
		return nil, err
	}
	root := tr.Root()
	nsp := root.Child("normalize")
	key, params := sqlparser.Normalize(q)
	nsp.End()
	resp, err := rt.runKeyed(ctx, q, key, params, root)
	if err != nil {
		if isCancellation(err) {
			rt.bump(&rt.stats.cancelled)
		}
		return nil, err
	}
	if reg != nil {
		reg.Observe(key, observationFor(resp, time.Since(started).Seconds()))
	}
	return resp, nil
}

// isCancellation reports whether an error is a context cancellation or
// deadline expiry (possibly wrapped).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// observationFor folds one completed response into a telemetry
// Observation. Predicted latency is the cluster simulator's seconds (a
// different clock from wall time — the ratio is a per-template
// calibration constant); the bound pair is same-units.
func observationFor(resp *Response, wallSeconds float64) telemetry.Observation {
	o := telemetry.Observation{
		WallSeconds:      wallSeconds,
		PredictedSeconds: resp.SimLatency,
		// A result-cache hit (or a singleflight share of one execution)
		// scanned nothing this time around; only executed queries feed
		// the scan-shaped histograms.
		Executed:      resp.ResultCache != "hit" && resp.ResultCache != "shared",
		RowsScanned:   resp.Result.RowsScanned,
		BytesScanned:  resp.Result.BytesScanned,
		ObservedBound: resp.Result.MaxAbsErr(),
	}
	for _, d := range resp.Decisions {
		if d.PredictedBound > o.PredictedBound {
			o.PredictedBound = d.PredictedBound
		}
	}
	return o
}

// runKeyed is the Run body with normalization precomputed and an optional
// parent span (nil when untraced).
func (rt *Runtime) runKeyed(ctx context.Context, q *sqlparser.Query, key string, params []types.Value, root *telemetry.Span) (*Response, error) {
	if rt.results == nil {
		resp, note, _, err := rt.runPrepared(ctx, q, key, params, root)
		if err != nil {
			return nil, err
		}
		annotate(resp, note)
		return resp, nil
	}
	rkey := key + "\x1e" + sqlparser.ParamsKey(params)
	lsp := root.Child("result-cache lookup")
	if ent, ok := rt.results.Get(rkey); ok {
		if rt.freshDeps(ent.deps) {
			lsp.End()
			lsp.Note("result=hit")
			rt.bump(&rt.stats.resultHits)
			msp := root.Child("materialize")
			resp := ent.resp.clone()
			annotateResult(resp, "hit")
			msp.End()
			return resp, nil
		}
		// A stale entry means a sample refresh/rebuild happened since the
		// answer was computed; purge EVERY stale answer now (mirroring the
		// plan cache's sweep) rather than letting dead epochs ride the LRU.
		rt.results.Sweep(func(_ string, cand *resultEntry) bool { return rt.freshDeps(cand.deps) })
	}
	lsp.End()
	var cachedHit bool
	fsp := root.Child("execute")
	ent, shared, err := rt.flights.Do(rkey, func() (*resultEntry, error) {
		var err error
		var e *resultEntry
		// Only the singleflight leader's closure runs, so only the
		// leader's trace carries the pipeline spans; waiters' "execute"
		// spans cover their wait and are noted result=shared below.
		e, cachedHit, err = rt.resultLeader(ctx, q, key, params, rkey, fsp)
		return e, err
	})
	fsp.End()
	if err != nil {
		// A leader cancelled mid-flight poisons the shared error for every
		// waiter, but a waiter whose OWN context is still live owes its
		// caller an answer: run a private leader pass outside the (landed)
		// flight. Real query errors are shared as-is — re-executing would
		// reproduce them.
		if shared && isCancellation(err) && ctx.Err() == nil {
			rsp := root.Child("cancelled-leader re-execute")
			ent, cachedHit, err = rt.resultLeader(ctx, q, key, params, rkey, rsp)
			rsp.End()
			if err != nil {
				return nil, err
			}
			shared = false
			msp := root.Child("materialize")
			resp := ent.resp.clone()
			if cachedHit {
				rt.bump(&rt.stats.resultHits)
				annotateResult(resp, "hit")
			} else {
				annotate(resp, ent.note)
				annotateResult(resp, "miss")
			}
			msp.End()
			return resp, nil
		}
		return nil, err
	}
	if shared && !rt.freshDeps(ent.deps) {
		// The shared answer predates an epoch change this caller has
		// already observed (its own cache lookup happened after the
		// change): serving it would leak pre-refresh data into a
		// post-refresh query. Fall back to a fresh leader pass — outside
		// the (already landed) flight; concurrent stale waiters each
		// re-execute, an acceptable cost for the rare refresh window.
		rsp := root.Child("stale-shared re-execute")
		ent, cachedHit, err = rt.resultLeader(ctx, q, key, params, rkey, rsp)
		rsp.End()
		if err != nil {
			return nil, err
		}
		shared = false
	}
	// Every caller — leader and singleflight waiters alike — receives a
	// private deep copy; the canonical response in the entry is never
	// annotated and never handed out.
	msp := root.Child("materialize")
	resp := ent.resp.clone()
	switch {
	case shared:
		rt.bump(&rt.stats.resultShared)
		annotateResult(resp, "shared")
		fsp.Note("result=shared")
	case cachedHit:
		rt.bump(&rt.stats.resultHits)
		annotateResult(resp, "hit")
		fsp.Note("result=hit")
	default:
		annotate(resp, ent.note)
		annotateResult(resp, "miss")
		fsp.Note("result=miss")
	}
	msp.End()
	return resp, nil
}

// resultLeader is the singleflight leader's body: re-check the cache,
// then execute and cache on a true miss. The re-check matters — a caller
// descheduled between its cache miss and its Do call can find the flight
// already landed and become a second "leader"; without the re-check it
// would re-run the whole pipeline for an answer that is already cached
// (and skew the exactly-one-execution Stats contract). cached reports
// whether the answer came from the cache (a hit) rather than execution.
func (rt *Runtime) resultLeader(ctx context.Context, q *sqlparser.Query, key string, params []types.Value, rkey string, sp *telemetry.Span) (*resultEntry, bool, error) {
	if cached, ok := rt.results.Get(rkey); ok && rt.freshDeps(cached.deps) {
		return cached, true, nil
	}
	resp, note, deps, err := rt.runPrepared(ctx, q, key, params, sp)
	if err != nil {
		return nil, false, err
	}
	// Count the miss only for executions that enter the cache, like the
	// plan cache's convention.
	rt.bump(&rt.stats.resultMisses)
	ent := &resultEntry{resp: resp, note: note, deps: deps}
	rt.results.Put(rkey, ent)
	return ent, false, nil
}

// runPrepared is the prepare/execute pipeline of Run — plan-cache lookup
// (when enabled), prepare on miss, execute — returning the UNANNOTATED
// response, the plan-cache note ("hit"/"miss", "" when disabled) and the
// table-epoch deps the answer was computed against. Callers own the
// annotation so the result cache can store canonical responses.
func (rt *Runtime) runPrepared(ctx context.Context, q *sqlparser.Query, key string, params []types.Value, sp *telemetry.Span) (*Response, string, []tableDep, error) {
	resp, note, deps, err := rt.streamPrepared(ctx, q, key, params, sp, nil)
	return resp, note, deps, err
}

// streamPrepared is runPrepared with an optional intermediate-refinement
// sink: when emitMid is non-nil, executeParams runs in streaming mode and
// emitMid receives each pre-final refinement (see streamParams). The
// returned Response is always the final answer — bit-identical to the
// emitMid==nil path.
func (rt *Runtime) streamPrepared(ctx context.Context, q *sqlparser.Query, key string, params []types.Value, sp *telemetry.Span, emitMid midEmitter) (*Response, string, []tableDep, error) {
	if rt.cache == nil {
		pq, err := rt.prepareKeyed(ctx, q, key, params, sp)
		if err != nil {
			return nil, "", nil, err
		}
		resp, err := rt.streamParams(ctx, pq, q, pq.prepParams, sp, emitMid)
		return resp, "", pq.deps, err
	}
	lsp := sp.Child("plan-cache lookup")
	if pq, ok := rt.cache.Get(key); ok {
		if rt.fresh(pq) {
			lsp.End()
			resp, err := rt.streamParams(ctx, pq, q, params, sp, emitMid)
			if err == nil {
				lsp.Note("cache=hit")
				rt.bump(&rt.stats.cacheHits)
				return resp, "hit", pq.deps, nil
			}
			if err != errTemplateMismatch {
				return nil, "", nil, err
			}
			// Defensive: equal keys should imply equal shape; if not,
			// fall through and re-prepare. (The mismatch is detected
			// before any refinement is emitted.)
		}
		// A stale (or mismatched) entry means a sample refresh/rebuild
		// happened: a PreparedQuery pins its catalog snapshot — old
		// table blocks, old sample families, memoized results — so
		// purge EVERY stale entry now rather than letting dead
		// snapshots ride the LRU until their template happens to be
		// queried again.
		rt.cache.Sweep(func(_ string, cand *PreparedQuery) bool { return rt.fresh(cand) })
	}
	lsp.End() // idempotent on the template-mismatch fall-through
	lsp.Note("cache=miss")
	pq, err := rt.prepareKeyed(ctx, q, key, params, sp)
	if err != nil {
		return nil, "", nil, err
	}
	// Count the miss only for queries that actually entered the cache;
	// errored prepares would otherwise skew the hit rate.
	rt.bump(&rt.stats.cacheMisses)
	rt.cache.Put(key, pq)
	resp, err := rt.streamParams(ctx, pq, q, params, sp, emitMid)
	return resp, "miss", pq.deps, err
}

// selectFamily implements §4.1.1: prefer the covering stratified family
// with the fewest columns; otherwise probe candidates and take the one
// with the highest matched/read ratio. The third return value is the
// winning family's smallest-sample probe result (nil when no probe ran),
// which selectResolution reuses so each (family, view) executes at most
// once per query.
func (rt *Runtime) selectFamily(ctx context.Context, entry *catalog.Entry, plan *exec.Plan,
	phi types.ColumnSet, conf float64, joins []exec.JoinSpec, sp *telemetry.Span) (*sample.Family, Decision, *exec.Result, error) {

	var dec Decision
	if len(entry.Families) == 0 {
		return nil, dec, nil, nil
	}

	// Queries with no filter/group columns have no stratification to
	// exploit; the uniform family's equal weights give the lowest
	// estimator variance per row read.
	if phi.Empty() {
		if u := entry.Uniform(); u != nil {
			dec.Reason = "no filter/group columns: uniform family"
			return u, dec, nil, nil
		}
	}

	if covering := entry.CoveringFamilies(phi); len(covering) > 0 {
		f := covering[0]
		dec.Reason = fmt.Sprintf("covering family %s (fewest columns among %d covering)", f.Phi, len(covering))
		return f, dec, nil, nil
	}

	// No covering family: probe smallest samples. Candidate set per the
	// ProbeAll option; the uniform family is always a candidate.
	var cands []*sample.Family
	for _, f := range entry.Families {
		if f.IsUniform() {
			cands = append(cands, f)
			continue
		}
		if *rt.opt.ProbeAll {
			cands = append(cands, f)
			continue
		}
		// Ablation path: only families sharing a column with φ.
		shares := false
		for _, c := range f.Phi.Columns() {
			if phi.Contains(c) {
				shares = true
				break
			}
		}
		if shares {
			cands = append(cands, f)
		}
	}
	if len(cands) == 0 {
		return nil, dec, nil, nil
	}

	var best, uniform *sample.Family
	var bestRes, uniformRes *exec.Result
	bestRatio, uniformRatio := -1.0, -1.0
	maxProbe := 0.0
	for _, f := range cands {
		in, blocks := viewInput(rt.probeView(f), plan)
		var psp *telemetry.Span
		if sp != nil {
			psp = sp.Child("probe " + f.Label())
		}
		res, err := rt.runProbe(ctx, plan, in, conf, joins, psp)
		if err != nil {
			psp.End()
			return nil, dec, nil, err
		}
		psp.End()
		lat := rt.latencyOfProbe(blocks)
		if lat > maxProbe {
			maxProbe = lat // probes run in parallel
		}
		ratio := res.Selectivity()
		dec.Probed = append(dec.Probed, ProbeInfo{Family: f, Selectivity: ratio, Matched: res.RowsMatched})
		if ratio > bestRatio {
			bestRatio, best, bestRes = ratio, f, res
		}
		if f.IsUniform() {
			uniform, uniformRatio, uniformRes = f, ratio, res
		}
	}
	// Tie-break: when the uniform family matches the best stratified
	// ratio (within 10%), prefer it — for predicates uncorrelated with
	// any stratification column the ratios converge, and the uniform
	// sample's equal weights give strictly lower estimator variance than
	// a stratified sample's spread of 1/rate weights.
	if uniform != nil && best != nil && !best.IsUniform() && uniformRatio >= 0.9*bestRatio {
		best, bestRatio, bestRes = uniform, uniformRatio, uniformRes
	}
	dec.ProbeLatency = maxProbe
	dec.Reason = fmt.Sprintf("no covering family: probed %d families, best selectivity %.4f on %s",
		len(cands), bestRatio, best.Label())
	return best, dec, bestRes, nil
}

// requiredRows converts the error bound into a matched-row target using
// the Table 2 extrapolation: stderr ∝ 1/√n. The worst (group, aggregate)
// pair dominates.
func (rt *Runtime) requiredRows(probe *exec.Result, eb *sqlparser.ErrorBound) float64 {
	z := stats.ZForConfidence(eb.Confidence)
	need := 0.0
	for _, g := range probe.Groups {
		for _, e := range g.Estimates {
			if e.Rows == 0 {
				continue
			}
			var n float64
			if e.Exact {
				// The probe already holds every matching row of this
				// group; keeping them all keeps the answer exact.
				n = float64(e.Rows)
			} else {
				targetBound := eb.Bound
				if eb.Relative {
					targetBound = eb.Bound * math.Abs(e.Point)
					if targetBound == 0 {
						continue
					}
				}
				targetStdErr := targetBound / z
				n = stats.RequiredRowsForStdErr(e.StdErr, float64(e.Rows), targetStdErr)
				// Stderr estimated from a handful of rows is unreliable;
				// apply a floor that shrinks once the probe carries
				// signal.
				switch {
				case e.Rows < 8 && n < 30:
					n = 30
				case n < 10:
					n = 10
				}
			}
			// n is a PER-GROUP requirement; levelForRows reasons in
			// query-total matched rows, so scale by the group's share of
			// the probe's matches.
			if probe.RowsMatched > 0 {
				n *= float64(probe.RowsMatched) / float64(e.Rows)
			}
			if n > need && !math.IsInf(n, 1) {
				need = n
			}
		}
	}
	return need
}

// levelForRows finds the smallest resolution whose expected matched rows
// reach need (the paper's n·(Km/n_{i,m}) rule inverted). The second return
// value is false when even the largest resolution falls short.
func (rt *Runtime) levelForRows(fam *sample.Family, probe *exec.Result, need float64, pv sample.View) (int, bool) {
	if need == 0 {
		return 0, true
	}
	probeRows := float64(probe.RowsMatched)
	if probeRows == 0 {
		return fam.Resolutions() - 1, false // no signal: be conservative
	}
	for lvl := 0; lvl < fam.Resolutions(); lvl++ {
		if expectedMatches(fam, probe, lvl, pv) >= need {
			return lvl, true
		}
		// Census detection: a resolution whose cap is at least the
		// largest stratum frequency among matched rows contains EVERY
		// matching base-table row, so its answer is exact (§3.1:
		// F(x) ≤ K ⇒ exact) and any error bound is satisfied. The
		// stratum frequencies come from sample metadata, so this test is
		// noise-free.
		if f := probe.MaxMatchedStratumFreq; f > 0 && fam.View(lvl).Cap() >= f &&
			!fam.IsUniform() {
			return lvl, true
		}
	}
	return fam.Resolutions() - 1, false
}

// expectedMatches projects the matched rows at a resolution. Matched rows
// in capped strata grow proportionally to the cap K (that is precisely the
// guarantee of S(φ,K)); the projection is clamped by the HT estimate of
// the true base-table match count, which uncapped strata cannot exceed.
func expectedMatches(fam *sample.Family, probe *exec.Result, lvl int, pv sample.View) float64 {
	probeRows := float64(probe.RowsMatched)
	capProbe := float64(pv.Cap())
	if capProbe <= 0 {
		return probeRows
	}
	expected := probeRows * float64(fam.View(lvl).Cap()) / capProbe
	if probe.WeightedMatched > 0 && expected > probe.WeightedMatched {
		expected = probe.WeightedMatched
	}
	return expected
}

// predictedBound projects the worst-group CI half-width the chosen
// resolution should deliver: the probe's worst non-exact stderr scaled to
// the level's expected matches by the 1/√n law, times the z score —
// the same extrapolation Profile's curve plots. Deterministic and derived
// only from prepared probe state, so it is identical with telemetry on or
// off (the bit-identity invariant). 0 when the probe carries no
// statistical signal (no matches, or all-exact estimates).
func predictedBound(fam *sample.Family, probe *exec.Result, level int, pv sample.View, conf float64) float64 {
	probeMatched := float64(probe.RowsMatched)
	if probeMatched <= 0 {
		return 0
	}
	worstStd := 0.0
	for _, g := range probe.Groups {
		for _, e := range g.Estimates {
			if !e.Exact && e.StdErr > worstStd {
				worstStd = e.StdErr
			}
		}
	}
	if worstStd == 0 {
		return 0
	}
	em := expectedMatches(fam, probe, level, pv)
	if em <= 0 {
		return 0
	}
	return worstStd * math.Sqrt(probeMatched/em) * stats.ZForConfidence(conf)
}

// levelForTime finds the largest resolution executable within the bound,
// accounting for probe time already spent and §4.4 delta reuse.
func (rt *Runtime) levelForTime(fam *sample.Family, plan *exec.Plan, budget, spent float64, pv sample.View) int {
	best := 0
	small := pv
	for lvl := 0; lvl < fam.Resolutions(); lvl++ {
		view := fam.View(lvl)
		var lat float64
		if *rt.opt.DeltaReuse {
			lat = rt.latencyOfSample(prunedBlocks(view.DeltaBlocks(small), plan))
		} else {
			lat = rt.latencyOfSample(prunedBlocks(view.Blocks(), plan))
		}
		if spent+lat <= budget {
			best = lvl
		}
	}
	return best
}

// ProfilePoint is one point of an Error-Latency Profile: the projected
// standard error and simulated latency of running the plan on one
// resolution of a family.
type ProfilePoint struct {
	// Level is the resolution index.
	Level int
	// Cap is the resolution's frequency cap (or row target for uniform).
	Cap int64
	// Rows is the resolution's total row count.
	Rows int64
	// ExpectedMatches projects the matched rows at this resolution.
	ExpectedMatches float64
	// ProjStdErr is the projected worst-group standard error (1/√n law).
	ProjStdErr float64
	// ProjRelErr is the projected worst-group relative error.
	ProjRelErr float64
	// Latency is the simulated seconds to scan this resolution
	// (cumulative blocks, no delta reuse).
	Latency float64
}

// Profile builds the full ELP for a plan over one family by probing the
// smallest resolution and extrapolating error with the 1/√n law of
// Table 2 while pricing latency with the cluster model. This is the curve
// Fig. 7(c) plots (time to reach a target error).
func (rt *Runtime) Profile(fam *sample.Family, plan *exec.Plan, conf float64) []ProfilePoint {
	pv := rt.probeView(fam)
	smallIn, _ := viewInput(pv, plan)
	probe, _ := rt.runPlan(context.Background(), plan, smallIn, conf, nil, nil)
	probeMatched := float64(probe.RowsMatched)

	// Worst-group probe error.
	worstStd, worstRel := 0.0, 0.0
	for _, g := range probe.Groups {
		for _, e := range g.Estimates {
			if e.StdErr > worstStd {
				worstStd = e.StdErr
			}
			if re := e.RelErr(); re > worstRel && !math.IsInf(re, 1) {
				worstRel = re
			}
		}
	}

	pts := make([]ProfilePoint, 0, fam.Resolutions())
	for lvl := 0; lvl < fam.Resolutions(); lvl++ {
		view := fam.View(lvl)
		pt := ProfilePoint{Level: lvl, Cap: view.Cap(), Rows: view.Rows()}
		pt.ExpectedMatches = expectedMatches(fam, probe, lvl, pv)
		if probeMatched > 0 && pt.ExpectedMatches > 0 {
			shrink := math.Sqrt(probeMatched / pt.ExpectedMatches)
			pt.ProjStdErr = worstStd * shrink
			pt.ProjRelErr = worstRel * shrink
		}
		pt.Latency = rt.latencyOfSample(prunedBlocks(view.Blocks(), plan))
		pts = append(pts, pt)
	}
	return pts
}

// runProbe is runPlan counted as an ELP probe (§4.1.1 candidate probes
// and §4.2 escalations) — the executions the plan cache amortizes away.
func (rt *Runtime) runProbe(ctx context.Context, plan *exec.Plan, in exec.Input, conf float64, joins []exec.JoinSpec, sp *telemetry.Span) (*exec.Result, error) {
	rt.bump(&rt.stats.probeExecs)
	return rt.runPlan(ctx, plan, in, conf, joins, sp)
}

// runPlan executes the plan over the input, joining dimension tables when
// the query has JOIN clauses (§2.1: fact-side sampling, exact broadcast
// dimensions). The scan schedule follows Options.Affine. With sp non-nil
// the scan records a span tree (per-shard partials + merge) beneath it.
// The only possible error is ctx.Err(): a cancelled scan returns no
// partial result. PlanExecs counts the attempt either way — a cancelled
// scan may have done most of its work.
func (rt *Runtime) runPlan(ctx context.Context, plan *exec.Plan, in exec.Input, conf float64, joins []exec.JoinSpec, sp *telemetry.Span) (*exec.Result, error) {
	rt.bump(&rt.stats.planExecs)
	sched := exec.SchedNodeAffine
	if !*rt.opt.Affine {
		sched = exec.SchedBlind
	}
	var ssp *telemetry.Span
	if sp != nil {
		ssp = sp.Child(fmt.Sprintf("scan blocks=%d", len(in.Blocks)))
	}
	var res *exec.Result
	var err error
	if len(joins) == 0 {
		res, err = exec.RunParallelSchedCtx(ctx, plan, in, conf, rt.opt.Workers, sched, ssp)
	} else {
		res, err = exec.RunJoinParallelSchedCtx(ctx, plan, in, joins, conf, rt.opt.Workers, sched, ssp)
	}
	ssp.End()
	return res, err
}

// checkJoinAdmissible enforces §2.1's join rules: each join needs either a
// stratified family on the fact table containing the join key, or a
// dimension table that fits in the cluster's aggregate memory.
func (rt *Runtime) checkJoinAdmissible(entry *catalog.Entry, q *sqlparser.Query, joins []exec.JoinSpec) error {
	cacheBytes := float64(rt.clus.Config().Nodes) * rt.clus.Config().MemCacheBytesPerNode
	for i, j := range joins {
		key := q.Joins[i].LeftCol
		keyInFamily := false
		for _, f := range entry.Stratified() {
			if f.Phi.Contains(key) {
				keyInFamily = true
				break
			}
		}
		fits := float64(j.Dim.Bytes())*rt.opt.Scale <= cacheBytes
		if !keyInFamily && !fits {
			return fmt.Errorf("elp: join on %s unsupported: no stratified sample contains the join key %q and table %q does not fit in cluster memory (§2.1)",
				q.Joins[i].Table, key, q.Joins[i].Table)
		}
	}
	return nil
}

// broadcastCost prices shipping every dimension table to every node once
// per query (the §2.1 in-memory dimension path).
func (rt *Runtime) broadcastCost(joins []exec.JoinSpec) float64 {
	if len(joins) == 0 {
		return 0
	}
	var bytes float64
	for _, j := range joins {
		bytes += float64(j.Dim.Bytes()) * rt.opt.Scale
	}
	cfg := rt.clus.Config()
	return bytes / (float64(cfg.Nodes) * rt.opt.Profile.NetworkMBps * 1e6)
}

// factColumns restricts a column set to those present in the fact schema.
func factColumns(cs types.ColumnSet, fact *types.Schema) types.ColumnSet {
	var keep []string
	for _, c := range cs.Columns() {
		if fact.Index(c) >= 0 {
			keep = append(keep, c)
		}
	}
	return types.NewColumnSet(keep...)
}

// prunedBlocks applies zone-map pruning (the §3.1 clustered layout) to a
// view's blocks for the given plan: blocks whose per-column min/max cannot
// satisfy the predicate's conjunctive bounds are neither read nor priced.
func prunedBlocks(blocks []*storage.Block, plan *exec.Plan) []*storage.Block {
	kept, _ := exec.PruneBlocks(blocks, exec.ColumnBounds(plan.Pred))
	return kept
}

// viewInput builds a pruned executor input for one view.
func viewInput(v sample.View, plan *exec.Plan) (exec.Input, []*storage.Block) {
	blocks := prunedBlocks(v.Blocks(), plan)
	return exec.FromBlocks(v.Family.Schema(), blocks, v.Cap()), blocks
}

// PriceBlockRead prices reading blocks on the cluster under the given
// engine profile: bytes are scaled to logical size, spread per the
// blocks' node placement, with a shuffle term proportional to bytes
// scanned, a cross-node merge fan-in term over the nodes holding blocks,
// and a remote-read term for the bytes the executor's node-affine
// schedule cannot read locally (ranges whose blocks straddle their owner
// node). This is the single pricing path shared by the runtime's latency
// attribution and the experiments' placement ablations; an error means a
// block carries a negative node id.
func PriceBlockRead(clus *cluster.Cluster, prof cluster.EngineProfile,
	blocks []*storage.Block, scale, shuffleFraction float64) (float64, error) {

	if len(blocks) == 0 {
		return 0, nil
	}
	var total int64
	for _, b := range blocks {
		total += b.Bytes
	}
	shuffle := float64(total) * scale * shuffleFraction
	work, err := clus.WorkFromBlocks(blocks, scale, shuffle)
	if err != nil {
		return 0, err
	}
	// Latency attribution follows the executor's affine schedule: bytes a
	// shard cannot read on its owner node cross the network.
	_, shards := exec.ScanShards(blocks)
	work.RemoteBytes = float64(storage.RemoteBytes(shards)) * scale
	return clus.Latency(prof, work), nil
}

// latencyOf prices a block read via PriceBlockRead with the runtime's
// profile and shuffle fraction. An empty block list costs nothing — §4.4:
// upgrading to the already-probed resolution reads nothing and launches
// no job; the probe's answer is reused as-is.
func (rt *Runtime) latencyOf(blocks []*storage.Block, scale float64) float64 {
	lat, err := PriceBlockRead(rt.clus, rt.opt.Profile, blocks, scale, rt.opt.ShuffleFraction)
	if err != nil {
		// Tables pass storage.Validate at build time, so a negative node
		// id here is a programming error, not a user-recoverable one.
		panic(fmt.Sprintf("elp: %v", err))
	}
	return lat
}

// latencyOfBase prices a base-table read (table-byte scale).
func (rt *Runtime) latencyOfBase(blocks []*storage.Block) float64 {
	return rt.latencyOf(blocks, rt.opt.Scale)
}

// latencyOfSample prices a sample read (sample scale).
func (rt *Runtime) latencyOfSample(blocks []*storage.Block) float64 {
	return rt.latencyOf(blocks, rt.opt.SampleScale)
}

// latencyOfProbe prices a probe run.
func (rt *Runtime) latencyOfProbe(blocks []*storage.Block) float64 {
	if rt.opt.ProbeOverheadOnly {
		if len(blocks) == 0 {
			return 0
		}
		return rt.opt.Profile.JobOverheadSec
	}
	return rt.latencyOfSample(blocks)
}

// probeView returns the family's probe resolution: the smallest level with
// at least MinProbeRows rows (or the largest level if none reaches it).
func (rt *Runtime) probeView(fam *sample.Family) sample.View {
	for lvl := 0; lvl < fam.Resolutions(); lvl++ {
		if v := fam.View(lvl); v.Rows() >= rt.opt.MinProbeRows {
			return v
		}
	}
	return fam.Largest()
}
