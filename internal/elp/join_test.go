package elp

import (
	"math"
	"testing"

	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// joinFixture extends the standard fixture with a dimension table mapping
// OS → vendor, registered in the same catalog.
func joinFixture(t *testing.T, rows int, opt Options) *fixture {
	t.Helper()
	f := newFixture(t, rows, opt)
	schema := types.NewSchema(
		types.Column{Name: "os", Kind: types.KindString},
		types.Column{Name: "vendor", Kind: types.KindString},
	)
	dim := storage.NewTable("vendors", schema)
	b := storage.NewBuilder(dim, 8, 1, storage.InMemory)
	for _, r := range [][2]string{
		{"Win7", "Microsoft"}, {"OSX", "Apple"}, {"Linux", "Community"}, {"iOS", "Apple"},
	} {
		b.AppendRow(types.Row{types.Str(r[0]), types.Str(r[1])})
	}
	b.Finish()
	f.cat.Register(dim)
	return f
}

func TestJoinUnboundedExact(t *testing.T) {
	f := joinFixture(t, 20000, Options{})
	resp, err := f.rt.Run(parse(t,
		`SELECT COUNT(*) FROM sessions JOIN vendors ON os = os WHERE vendor = 'Apple'`))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decisions[0].UsedBase {
		t.Error("unbounded join should be exact")
	}
	// Apple = OSX + iOS rows; cross-check against two exact counts.
	osx, _ := f.rt.Run(parse(t, `SELECT COUNT(*) FROM sessions WHERE os = 'OSX'`))
	ios, _ := f.rt.Run(parse(t, `SELECT COUNT(*) FROM sessions WHERE os = 'iOS'`))
	want := osx.Result.Groups[0].Estimates[0].Point + ios.Result.Groups[0].Estimates[0].Point
	if got := resp.Result.Groups[0].Estimates[0].Point; got != want {
		t.Errorf("join count = %g, want %g", got, want)
	}
}

func TestJoinBoundedUsesSample(t *testing.T) {
	// Scale matters: latency advantages only appear when the base table
	// is logically large.
	f := joinFixture(t, 40000, Options{Scale: 2e4})
	resp, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions JOIN vendors ON os = os WHERE vendor = 'Apple' ERROR WITHIN 10%`))
	if err != nil {
		t.Fatal(err)
	}
	d := resp.Decisions[0]
	if d.UsedBase {
		t.Fatal("bounded join should use a sample")
	}
	// §2.1 case (i): the [os,url] family contains the join key os.
	exact, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions JOIN vendors ON os = os WHERE vendor = 'Apple'`))
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Result.Groups[0].Estimates[0]
	want := exact.Result.Groups[0].Estimates[0].Point
	if math.Abs(got.Point-want)/want > 0.12 {
		t.Errorf("join estimate %.2f vs truth %.2f", got.Point, want)
	}
	if resp.SimLatency >= exact.SimLatency {
		t.Errorf("bounded join (%gs) should beat exact (%gs)", resp.SimLatency, exact.SimLatency)
	}
}

func TestJoinGroupByDimensionColumn(t *testing.T) {
	f := joinFixture(t, 30000, Options{})
	resp, err := f.rt.Run(parse(t,
		`SELECT COUNT(*) FROM sessions JOIN vendors ON os = os GROUP BY vendor ERROR WITHIN 15%`))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Groups) != 3 {
		t.Fatalf("vendors = %d, want 3 (Apple, Community, Microsoft)", len(resp.Result.Groups))
	}
	exact, _ := f.rt.Run(parse(t,
		`SELECT COUNT(*) FROM sessions JOIN vendors ON os = os GROUP BY vendor`))
	for i, g := range resp.Result.Groups {
		want := exact.Result.Groups[i].Estimates[0].Point
		got := g.Estimates[0].Point
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("%s: %g vs %g", g.KeyString(), got, want)
		}
	}
}

func TestJoinAdmissibilityRejected(t *testing.T) {
	// A dimension too big for cluster memory, joined on a key with no
	// stratified sample, must be rejected (§2.1).
	f := newFixture(t, 5000, Options{Scale: 1e9}) // huge scale: nothing "fits"
	schema := types.NewSchema(
		types.Column{Name: "genre", Kind: types.KindString},
		types.Column{Name: "label", Kind: types.KindString},
	)
	dim := storage.NewTable("genres", schema)
	b := storage.NewBuilder(dim, 8, 1, storage.OnDisk)
	for i := 0; i < 20000; i++ {
		b.AppendRow(types.Row{types.Str("g"), types.Str("x")})
	}
	b.Finish()
	f.cat.Register(dim)
	// genre is in no stratified family ([city], [os,url]).
	_, err := f.rt.Run(parse(t,
		`SELECT COUNT(*) FROM sessions JOIN genres ON genre = genre ERROR WITHIN 10%`))
	if err == nil {
		t.Fatal("join without key sample or in-memory dim should be rejected")
	}
}

func TestJoinUnknownDimTable(t *testing.T) {
	f := newFixture(t, 1000, Options{})
	if _, err := f.rt.Run(parse(t,
		`SELECT COUNT(*) FROM sessions JOIN missing ON os = os ERROR WITHIN 10%`)); err == nil {
		t.Error("unknown dimension table should error")
	}
}
