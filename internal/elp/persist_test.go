package elp

import (
	"reflect"
	"testing"
	"time"

	"blinkdb/internal/sample"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// warmupOptions enables both reuse layers the warmup blob persists.
func warmupOptions(ttl time.Duration) Options {
	return Options{PlanCacheSize: 64, ResultCacheSize: 64, ResultCacheTTL: ttl}
}

// TestWarmupRoundTrip is the warmup acceptance test at the elp layer: a
// runtime that exported its warm state and a fresh runtime that imported
// it over the same catalog must answer identically — replayed parameters
// as result-cache hits, new parameters as plan-cache hits — with
// responses DeepEqual to the warm original's, simulated latencies and
// cache markers included.
func TestWarmupRoundTrip(t *testing.T) {
	f := newFixture(t, 30000, warmupOptions(0))
	for _, src := range cacheQueries {
		if _, err := f.rt.Run(parse(t, src)); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
	// Capture the warm runtime's steady-state answers (second run: plan
	// AND result caches hot).
	warm := map[string]*Response{}
	for _, src := range cacheQueries {
		resp, err := f.rt.Run(parse(t, src))
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if resp.ResultCache != "hit" {
			t.Fatalf("%q: warm ResultCache = %q, want hit", src, resp.ResultCache)
		}
		warm[src] = resp
	}

	blob := f.rt.ExportWarmup()
	cold := New(f.cat, f.clus, warmupOptions(0))
	plans, results, err := cold.ImportWarmup(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plans == 0 || results == 0 {
		t.Fatalf("restored %d plans, %d results; want both > 0", plans, results)
	}
	if got, want := cold.results.Len(), f.rt.results.Len(); got != want {
		t.Errorf("restored result cache holds %d entries, exporter held %d", got, want)
	}

	// Replayed parameters: served from the restored result cache,
	// bit-identical to the never-restarted runtime's warm answers.
	for _, src := range cacheQueries {
		resp, err := cold.Run(parse(t, src))
		if err != nil {
			t.Fatalf("%q after import: %v", src, err)
		}
		if resp.ResultCache != "hit" {
			t.Errorf("%q after import: ResultCache = %q, want hit", src, resp.ResultCache)
		}
		if !reflect.DeepEqual(resp, warm[src]) {
			t.Errorf("%q after import: response differs from warm original\n got %+v\nwant %+v",
				src, resp, warm[src])
		}
	}

	// New parameters on a known template: the restored prepared state
	// (nil prepQ/prepPlan — always recompiles) must yield the same
	// answer and decisions as the live runtime's prepared state.
	for _, src := range []string{
		`SELECT AVG(time) FROM sessions WHERE city = 'city3' ERROR WITHIN 25%`,
		`SELECT SUM(time) FROM sessions WHERE city = 'city5' OR os = 'OSX' ERROR WITHIN 20%`,
	} {
		want, err := f.rt.Run(parse(t, src))
		if err != nil {
			t.Fatalf("%q live: %v", src, err)
		}
		got, err := cold.Run(parse(t, src))
		if err != nil {
			t.Fatalf("%q restored: %v", src, err)
		}
		if got.Cache != "hit" {
			t.Errorf("%q restored: Cache = %q, want hit (plan restored)", src, got.Cache)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: restored response differs from live\n got %+v\nwant %+v", src, got, want)
		}
	}
}

// TestWarmupStaleEpochSkipped: entries whose catalog epochs moved on
// (a sample refresh between snapshot and restore) must not be restored.
func TestWarmupStaleEpochSkipped(t *testing.T) {
	f := newFixture(t, 8000, warmupOptions(0))
	src := `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 25%`
	if _, err := f.rt.Run(parse(t, src)); err != nil {
		t.Fatal(err)
	}
	blob := f.rt.ExportWarmup()

	// Bump the table's epoch: re-add one family (a refresh).
	fam, err := sample.Build(f.tab, types.NewColumnSet("city"),
		sample.GeometricCaps(2000, 4, 4, 8),
		sample.BuildConfig{Seed: 3, Nodes: 100, Place: storage.InMemory, RowsPerBlock: 64, Layout: storage.ColumnarLayout})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.cat.AddFamily("sessions", fam); err != nil {
		t.Fatal(err)
	}

	cold := New(f.cat, f.clus, warmupOptions(0))
	plans, results, err := cold.ImportWarmup(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plans != 0 || results != 0 {
		t.Fatalf("stale warmup restored %d plans, %d results; want 0, 0", plans, results)
	}
}

// TestWarmupExpiredTTLSkipped: a snapshotted result whose original
// deadline has passed by import time is dropped, and the restart never
// extends a surviving entry's life.
func TestWarmupExpiredTTLSkipped(t *testing.T) {
	f := newFixture(t, 8000, warmupOptions(30*time.Millisecond))
	src := `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 25%`
	if _, err := f.rt.Run(parse(t, src)); err != nil {
		t.Fatal(err)
	}
	blob := f.rt.ExportWarmup()
	time.Sleep(40 * time.Millisecond)

	cold := New(f.cat, f.clus, warmupOptions(30*time.Millisecond))
	plans, results, err := cold.ImportWarmup(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results != 0 {
		t.Errorf("restored %d expired results, want 0", results)
	}
	if plans == 0 {
		t.Errorf("plan entries have no TTL and must survive; restored 0")
	}
}

// TestWarmupCorruptBlobRejected: flipping any byte of the blob must
// yield either a clean error with nothing applied, or a successful
// import whose restored entries still answer correctly (field-level
// mutations that keep the structure valid but break references are
// skipped as stale).
func TestWarmupCorruptBlobRejected(t *testing.T) {
	f := newFixture(t, 8000, warmupOptions(0))
	srcs := cacheQueries[:3]
	for _, src := range srcs {
		if _, err := f.rt.Run(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	blob := f.rt.ExportWarmup()

	for off := 0; off < len(blob); off += len(blob)/257 + 1 {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		cold := New(f.cat, f.clus, warmupOptions(0))
		if _, _, err := cold.ImportWarmup(mut, nil); err != nil {
			continue // rejected whole: nothing applied
		}
		// Import accepted: whatever was restored must still serve
		// correct answers (or miss and re-execute).
		want := New(f.cat, f.clus, Options{})
		for _, src := range srcs {
			got, err := cold.Run(parse(t, src))
			if err != nil {
				t.Fatalf("off %d %q: %v", off, src, err)
			}
			ref, err := want.Run(parse(t, src))
			if err != nil {
				t.Fatal(err)
			}
			if !estimatesClose(got, ref) {
				t.Fatalf("off %d: corrupt import served wrong answer for %q", off, src)
			}
		}
	}

	// Truncations: must never panic; error or degraded-but-correct.
	for off := 0; off < len(blob); off += len(blob)/97 + 1 {
		cold := New(f.cat, f.clus, warmupOptions(0))
		cold.ImportWarmup(blob[:off], nil)
	}
}

// estimatesClose compares two responses' point estimates bit-exactly —
// a deliberately weaker check than DeepEqual for the corruption test,
// where cache markers legitimately differ between hit and re-executed
// paths.
func estimatesClose(a, b *Response) bool {
	if (a.Result == nil) != (b.Result == nil) {
		return false
	}
	if a.Result == nil {
		return true
	}
	if len(a.Result.Groups) != len(b.Result.Groups) {
		return false
	}
	for i, g := range a.Result.Groups {
		h := b.Result.Groups[i]
		if len(g.Estimates) != len(h.Estimates) {
			return false
		}
		for j := range g.Estimates {
			if g.Estimates[j].Point != h.Estimates[j].Point &&
				!(g.Estimates[j].Point != g.Estimates[j].Point && h.Estimates[j].Point != h.Estimates[j].Point) {
				return false
			}
		}
	}
	return true
}
