package elp

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"blinkdb/internal/catalog"
	"blinkdb/internal/cluster"
	"blinkdb/internal/exec"
	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
	"blinkdb/internal/zipf"
)

// fixture builds a skewed sessions table with stratified families on
// [city] and [os,url] plus a uniform family, registered in a catalog.
type fixture struct {
	cat   *catalog.Catalog
	clus  *cluster.Cluster
	tab   *storage.Table
	rt    *Runtime
	truth map[string]float64 // city -> true AVG(time)
}

func newFixture(t testing.TB, rows int, opt Options) *fixture {
	t.Helper()
	return newFixtureLayout(t, rows, opt, storage.ColumnarLayout)
}

// newFixtureLayout is newFixture with an explicit physical block layout
// for both the base table and every sample family.
func newFixtureLayout(t testing.TB, rows int, opt Options, layout storage.Layout) *fixture {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "os", Kind: types.KindString},
		types.Column{Name: "url", Kind: types.KindString},
		types.Column{Name: "genre", Kind: types.KindString},
		types.Column{Name: "time", Kind: types.KindFloat},
	)
	tab := storage.NewTable("sessions", schema)
	b := storage.NewBuilderLayout(tab, 256, 100, storage.InMemory, layout)
	rng := rand.New(rand.NewSource(77))
	cityGen := zipf.NewGeneratorCDF(rng, 1.4, 200)
	oses := []string{"Win7", "OSX", "Linux", "iOS"}
	urls := []string{"cnn.com", "yahoo.com", "bing.com", "nyt.com", "bbc.com"}
	genres := []string{"western", "drama", "comedy"}
	sums := map[string]float64{}
	counts := map[string]float64{}
	for i := 0; i < rows; i++ {
		city := "city" + itoa(cityGen.Next())
		v := rng.ExpFloat64() * 40
		sums[city] += v
		counts[city]++
		b.AppendRow(types.Row{
			types.Str(city),
			types.Str(oses[rng.Intn(len(oses))]),
			types.Str(urls[zipfIdx(rng, len(urls))]),
			types.Str(genres[rng.Intn(len(genres))]),
			types.Float(v),
		})
	}
	b.Finish()

	cat := catalog.New()
	cat.Register(tab)
	caps := sample.GeometricCaps(2000, 4, 4, 8)
	bc := sample.BuildConfig{Seed: 3, Nodes: 100, Place: storage.InMemory, RowsPerBlock: 64, Layout: layout}
	for _, phi := range []types.ColumnSet{
		types.NewColumnSet("city"),
		types.NewColumnSet("os", "url"),
	} {
		f, err := sample.Build(tab, phi, caps, bc)
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddFamily("sessions", f); err != nil {
			t.Fatal(err)
		}
	}
	uf, err := sample.BuildUniform(tab, sample.GeometricCaps(int64(rows/5), 4, 4, 16), bc)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddFamily("sessions", uf); err != nil {
		t.Fatal(err)
	}

	clus := cluster.New(cluster.PaperConfig())
	truth := map[string]float64{}
	for c, s := range sums {
		truth[c] = s / counts[c]
	}
	return &fixture{
		cat: cat, clus: clus, tab: tab,
		rt:    New(cat, clus, opt),
		truth: truth,
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func zipfIdx(rng *rand.Rand, n int) int {
	// Cheap skew for URL: square a uniform draw.
	u := rng.Float64()
	return int(u * u * float64(n))
}

func parse(t testing.TB, src string) *sqlparser.Query {
	t.Helper()
	q, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestUnboundedQueryIsExact(t *testing.T) {
	f := newFixture(t, 30000, Options{})
	resp, err := f.rt.Run(parse(t, `SELECT COUNT(*) FROM sessions`))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decisions[0].UsedBase {
		t.Error("unbounded query should run on base table")
	}
	if got := resp.Result.Groups[0].Estimates[0].Point; got != 30000 {
		t.Errorf("count = %g", got)
	}
	if !resp.Result.Groups[0].Estimates[0].Exact {
		t.Error("base-table count should be exact")
	}
}

func TestCoveringFamilySelected(t *testing.T) {
	f := newFixture(t, 30000, Options{})
	resp, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5% AT CONFIDENCE 95%`))
	if err != nil {
		t.Fatal(err)
	}
	d := resp.Decisions[0]
	if d.UsedBase {
		t.Fatal("should use a sample")
	}
	if d.View.Family.Phi.Key() != "city" {
		t.Errorf("family = %s, want [city]", d.View.Family.Phi)
	}
	if !strings.Contains(d.Reason, "covering family") {
		t.Errorf("reason = %q", d.Reason)
	}
	if len(d.Probed) != 0 {
		t.Error("covering path should not probe all families")
	}
}

func TestProbingPathWhenNoCoveringFamily(t *testing.T) {
	f := newFixture(t, 30000, Options{})
	// φ = {city, genre}: no covering family (families are [city],
	// [os,url]); runtime must probe.
	resp, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' AND genre = 'western' ERROR WITHIN 10%`))
	if err != nil {
		t.Fatal(err)
	}
	d := resp.Decisions[0]
	if len(d.Probed) != 3 {
		t.Fatalf("should probe all 3 families, probed %d", len(d.Probed))
	}
	if d.UsedBase {
		t.Error("should pick a sample family")
	}
	// The paper's rule: pick the probed family with the highest
	// matched/read ratio — refined by the uniform tie-break (a uniform
	// family within 10% of the best ratio wins on estimator variance).
	best := -1.0
	for _, pi := range d.Probed {
		if pi.Selectivity > best {
			best = pi.Selectivity
		}
	}
	var pickedSel float64
	for _, pi := range d.Probed {
		if pi.Family == d.View.Family {
			pickedSel = pi.Selectivity
		}
	}
	if pickedSel < 0.9*best {
		t.Errorf("picked family selectivity %g below tie-break band of max %g", pickedSel, best)
	}
}

func TestProbeSubsetAblation(t *testing.T) {
	probeAll := false
	f := newFixture(t, 30000, Options{ProbeAll: &probeAll})
	resp, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' AND genre = 'western' ERROR WITHIN 10%`))
	if err != nil {
		t.Fatal(err)
	}
	d := resp.Decisions[0]
	// Ablation probes only [city] (shares a column) + uniform = 2.
	if len(d.Probed) != 2 {
		t.Fatalf("ablation should probe 2 families, probed %d", len(d.Probed))
	}
}

func TestErrorBoundMet(t *testing.T) {
	f := newFixture(t, 60000, Options{})
	resp, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5% AT CONFIDENCE 95%`))
	if err != nil {
		t.Fatal(err)
	}
	re := resp.Result.MaxRelErr()
	if re > 0.05*1.5 { // small slack: the bound is met in expectation
		t.Errorf("relative error %.4f exceeds requested 5%% (with slack)", re)
	}
	// Estimate must be close to the truth.
	got := resp.Result.Groups[0].Estimates[0]
	want := f.truth["city1"]
	if math.Abs(got.Point-want)/want > 0.10 {
		t.Errorf("AVG estimate %.2f vs truth %.2f", got.Point, want)
	}
}

func TestTighterErrorUsesBiggerSample(t *testing.T) {
	f := newFixture(t, 60000, Options{})
	loose, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 20%`))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 1%`))
	if err != nil {
		t.Fatal(err)
	}
	// A 1%% bound may exceed what the largest sample offers, in which
	// case the runtime correctly falls back to exact base-table execution
	// (maximum accuracy). Otherwise it must pick a level ≥ the loose one.
	if !tight.Decisions[0].UsedBase &&
		tight.Decisions[0].View.Level < loose.Decisions[0].View.Level {
		t.Errorf("tighter bound picked smaller sample: %d vs %d",
			tight.Decisions[0].View.Level, loose.Decisions[0].View.Level)
	}
	if tight.SimLatency < loose.SimLatency {
		t.Errorf("tighter bound should not be faster: %g vs %g",
			tight.SimLatency, loose.SimLatency)
	}
}

func TestTimeBoundRespected(t *testing.T) {
	f := newFixture(t, 60000, Options{Scale: 2e4}) // pretend TB-scale
	for _, budget := range []float64{1, 2, 5, 10} {
		resp, err := f.rt.Run(parse(t,
			`SELECT AVG(time) FROM sessions WHERE city = 'city1' GROUP BY os WITHIN `+
				itoa(int(budget))+` SECONDS`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.SimLatency > budget*1.05 {
			t.Errorf("budget %gs: simulated latency %.2fs", budget, resp.SimLatency)
		}
	}
}

func TestLargerTimeBudgetMoreAccurate(t *testing.T) {
	f := newFixture(t, 60000, Options{Scale: 2e4})
	fast, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' WITHIN 1 SECONDS`))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' WITHIN 10 SECONDS`))
	if err != nil {
		t.Fatal(err)
	}
	if slow.Decisions[0].View.Level < fast.Decisions[0].View.Level {
		t.Errorf("more time should not shrink the sample: %d vs %d",
			slow.Decisions[0].View.Level, fast.Decisions[0].View.Level)
	}
}

func TestBothBoundsTimeWins(t *testing.T) {
	f := newFixture(t, 60000, Options{Scale: 2e4})
	// 0.1% error needs a huge sample; 1 second does not allow it. Time
	// must win (paper: most accurate answer within the time bound).
	resp, err := f.rt.Run(parse(t,
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 0.1% WITHIN 1 SECONDS`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.SimLatency > 1.05 {
		t.Errorf("time bound violated: %.2fs", resp.SimLatency)
	}
}

func TestDisjunctionRewrite(t *testing.T) {
	f := newFixture(t, 30000, Options{})
	resp, err := f.rt.Run(parse(t,
		`SELECT COUNT(*) FROM sessions WHERE city = 'city1' OR os = 'Win7' ERROR WITHIN 10%`))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Decisions) != 2 {
		t.Fatalf("disjunction should yield 2 decisions, got %d", len(resp.Decisions))
	}
	// Each disjunct picks its own family: [city] and [os,url].
	fams := map[string]bool{}
	for _, d := range resp.Decisions {
		fams[d.View.Family.Phi.Key()] = true
	}
	if !fams["city"] || !fams["os,url"] {
		t.Errorf("disjunct families = %v", fams)
	}
}

func TestGroupByRareSubgroupsPresent(t *testing.T) {
	// Stratified sample on city guarantees rare cities appear in output
	// (no subset error), unlike a uniform sample of the same size.
	f := newFixture(t, 60000, Options{})
	resp, err := f.rt.Run(parse(t,
		`SELECT COUNT(*) FROM sessions GROUP BY city ERROR WITHIN 10%`))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := f.rt.Run(parse(t, `SELECT COUNT(*) FROM sessions GROUP BY city`))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Groups) != len(exact.Result.Groups) {
		t.Errorf("stratified groups = %d, exact groups = %d (missing subgroups)",
			len(resp.Result.Groups), len(exact.Result.Groups))
	}
}

func TestProfileShape(t *testing.T) {
	f := newFixture(t, 60000, Options{Scale: 2e4})
	entry, _ := f.cat.Lookup("sessions")
	q := parse(t, `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`)
	plan, err := exec.Compile(q, entry.Table.Schema)
	if err != nil {
		t.Fatal(err)
	}
	fam := entry.CoveringFamilies(types.NewColumnSet("city"))[0]
	pts := f.rt.Profile(fam, plan, 0.95)
	if len(pts) != fam.Resolutions() {
		t.Fatalf("profile points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency < pts[i-1].Latency {
			t.Errorf("latency must grow with resolution: %v", pts)
		}
		if pts[i].ProjStdErr > pts[i-1].ProjStdErr+1e-12 {
			t.Errorf("projected error must shrink with resolution: %v", pts)
		}
	}
}

func TestDeltaReuseCheaperThanFullRead(t *testing.T) {
	reuse, noReuse := true, false
	fr := newFixture(t, 30000, Options{DeltaReuse: &reuse, Scale: 2e4})
	fn := newFixture(t, 30000, Options{DeltaReuse: &noReuse, Scale: 2e4})
	q := `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`
	r1, err := fr.rt.Run(parse(t, q))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fn.rt.Run(parse(t, q))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Decisions[0].UsedBase || r2.Decisions[0].UsedBase {
		t.Fatal("5% bound should be satisfiable from samples")
	}
	if r1.Decisions[0].View.Level != r2.Decisions[0].View.Level {
		t.Skip("different levels chosen; comparison not meaningful")
	}
	if r1.Decisions[0].View.Level == 0 {
		t.Skip("probe level chosen; no delta to reuse")
	}
	if r1.Decisions[0].ReadLatency >= r2.Decisions[0].ReadLatency {
		t.Errorf("delta reuse should be cheaper: %g vs %g",
			r1.Decisions[0].ReadLatency, r2.Decisions[0].ReadLatency)
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	f := newFixture(t, 1000, Options{})
	if _, err := f.rt.Run(parse(t, `SELECT COUNT(*) FROM nope ERROR WITHIN 5%`)); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := f.rt.Run(parse(t, `SELECT COUNT(*) FROM sessions WHERE bogus = 1 ERROR WITHIN 5%`)); err == nil {
		t.Error("unknown column should error")
	}
}

func TestNoFamiliesFallsBackToBase(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "x", Kind: types.KindInt})
	tab := storage.NewTable("bare", schema)
	b := storage.NewBuilder(tab, 8, 1, storage.OnDisk)
	for i := 0; i < 100; i++ {
		b.AppendRow(types.Row{types.Int(int64(i))})
	}
	b.Finish()
	cat := catalog.New()
	cat.Register(tab)
	rt := New(cat, cluster.New(cluster.PaperConfig()), Options{})
	resp, err := rt.Run(parse(t, `SELECT SUM(x) FROM bare ERROR WITHIN 5%`))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decisions[0].UsedBase {
		t.Error("should fall back to base table")
	}
	if got := resp.Result.Groups[0].Estimates[0].Point; got != 4950 {
		t.Errorf("sum = %g", got)
	}
}

func BenchmarkRunErrorBounded(b *testing.B) {
	f := newFixture(b, 60000, Options{})
	q := parse(b, `SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.rt.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLayoutEquivalenceELP pins the runtime sample-selection contract of
// the columnar store at the ELP layer: identical fixtures in row and
// columnar layouts must probe the same families, choose the same
// resolutions, pay the same simulated latencies and return bit-identical
// estimates for every bounded-query shape and worker count.
func TestLayoutEquivalenceELP(t *testing.T) {
	queries := []string{
		`SELECT AVG(time) FROM sessions WHERE city = 'city1' ERROR WITHIN 5%`,
		`SELECT COUNT(*) FROM sessions WHERE os = 'Linux' GROUP BY city WITHIN 2 SECONDS`,
		`SELECT SUM(time), MEDIAN(time) FROM sessions WHERE city = 'city1' OR os = 'OSX' ERROR WITHIN 10%`,
		`SELECT AVG(time) FROM sessions GROUP BY genre`,
		`SELECT COUNT(*) FROM sessions WHERE url = 'cnn.com' ERROR WITHIN 20% AT CONFIDENCE 90%`,
	}
	for _, workers := range []int{1, 4} {
		row := newFixtureLayout(t, 20000, Options{Workers: 1}, storage.RowLayout)
		col := newFixtureLayout(t, 20000, Options{Workers: workers}, storage.ColumnarLayout)
		for _, src := range queries {
			q, err := sqlparser.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			want, err := row.rt.Run(q)
			if err != nil {
				t.Fatalf("%q (row): %v", src, err)
			}
			got, err := col.rt.Run(q)
			if err != nil {
				t.Fatalf("%q (columnar/%d): %v", src, workers, err)
			}
			if !reflect.DeepEqual(want.Result, got.Result) {
				t.Errorf("%q workers=%d: estimates diverged across layouts\nrow %+v\ncol %+v",
					src, workers, want.Result, got.Result)
			}
			if want.SimLatency != got.SimLatency || want.Confidence != got.Confidence {
				t.Errorf("%q workers=%d: latency/confidence diverged: %g/%g vs %g/%g",
					src, workers, want.SimLatency, want.Confidence, got.SimLatency, got.Confidence)
			}
			if len(want.Decisions) != len(got.Decisions) {
				t.Fatalf("%q: decision counts diverged", src)
			}
			for i := range want.Decisions {
				a, b := want.Decisions[i], got.Decisions[i]
				if a.UsedBase != b.UsedBase || a.Reason != b.Reason ||
					a.View.Level != b.View.Level ||
					a.ProbeLatency != b.ProbeLatency || a.ReadLatency != b.ReadLatency ||
					a.RequiredRows != b.RequiredRows {
					t.Errorf("%q decision %d diverged across layouts:\nrow %+v\ncol %+v", src, i, a, b)
				}
			}
		}
	}
}
