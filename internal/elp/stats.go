package elp

// Stats is a point-in-time snapshot of the runtime's serving counters,
// the observability surface for the prepare/execute pipeline (consumed by
// blinkdb-bench's JSON snapshot and the concurrency tests). All counters
// are cumulative since the runtime was created; compute deltas across two
// snapshots to measure an interval.
type Stats struct {
	// PlanExecs counts executor invocations of any kind — family probes,
	// probe escalations, and final reads. It is the physical-work
	// counter: a plan-cache hit that reuses a memoized answer adds 0.
	PlanExecs int64
	// ProbeExecs counts the subset of PlanExecs that were ELP probes
	// (§4.1.1 candidate probes and §4.2 escalations). The plan cache
	// exists to amortize exactly these.
	ProbeExecs int64
	// Prepares counts Prepare calls: template compilations with their
	// probe+profile work. With the cache on, this is the cold-path count.
	Prepares int64
	// CacheHits / CacheMisses count plan-cache outcomes. A stale entry
	// (catalog epoch changed) counts as a miss. Both stay 0 when the
	// cache is disabled. A result-cache hit consults neither the plan
	// cache nor these counters.
	CacheHits   int64
	CacheMisses int64
	// ResultHits / ResultMisses / ResultShared count result-cache
	// outcomes: exact replays served from memory, executions that entered
	// the cache, and singleflight waiters that shared a concurrent miss's
	// execution. A stale or TTL-expired entry counts as a miss. All stay
	// 0 when the result cache is disabled.
	ResultHits   int64
	ResultMisses int64
	ResultShared int64
	// AnswersByLevel counts final answers by the resolution level that
	// served them (-1 = base table), whether freshly executed or served
	// from the prepared-query memo. One entry per conjunctive disjunct.
	// Result-cache hits replay a recorded answer without re-planning and
	// are not re-counted here.
	AnswersByLevel map[int]int64
}

// HitRate returns CacheHits/(CacheHits+CacheMisses), or 0 before any
// cache-eligible query ran.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// ResultHitRate returns the fraction of result-cache-eligible queries
// answered without executing: (hits + shared) / (hits + shared + misses),
// or 0 before any such query ran.
func (s Stats) ResultHitRate() float64 {
	total := s.ResultHits + s.ResultShared + s.ResultMisses
	if total == 0 {
		return 0
	}
	return float64(s.ResultHits+s.ResultShared) / float64(total)
}

// Stats returns a snapshot of the runtime's counters. Safe for
// concurrent use with Run/Prepare/Execute.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		PlanExecs:    rt.planExecs.Load(),
		ProbeExecs:   rt.probeExecs.Load(),
		Prepares:     rt.prepares.Load(),
		CacheHits:    rt.cacheHits.Load(),
		CacheMisses:  rt.cacheMisses.Load(),
		ResultHits:   rt.resultHits.Load(),
		ResultMisses: rt.resultMisses.Load(),
		ResultShared: rt.resultShared.Load(),
	}
	rt.levelMu.Lock()
	s.AnswersByLevel = make(map[int]int64, len(rt.answersByLevel))
	for k, v := range rt.answersByLevel {
		s.AnswersByLevel[k] = v
	}
	rt.levelMu.Unlock()
	return s
}

// recordLevel counts one served answer at a resolution level (-1 base).
func (rt *Runtime) recordLevel(level int) {
	rt.levelMu.Lock()
	if rt.answersByLevel == nil {
		rt.answersByLevel = make(map[int]int64)
	}
	rt.answersByLevel[level]++
	rt.levelMu.Unlock()
}
