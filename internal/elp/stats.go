package elp

// Stats is a point-in-time snapshot of the runtime's serving counters,
// the observability surface for the prepare/execute pipeline (consumed by
// blinkdb-bench's JSON snapshot and the concurrency tests). All counters
// are cumulative since the runtime was created; use Delta to measure an
// interval between two snapshots.
type Stats struct {
	// PlanExecs counts executor invocations of any kind — family probes,
	// probe escalations, and final reads. It is the physical-work
	// counter: a plan-cache hit that reuses a memoized answer adds 0.
	PlanExecs int64
	// ProbeExecs counts the subset of PlanExecs that were ELP probes
	// (§4.1.1 candidate probes and §4.2 escalations). The plan cache
	// exists to amortize exactly these.
	ProbeExecs int64
	// Prepares counts Prepare calls: template compilations with their
	// probe+profile work. With the cache on, this is the cold-path count.
	Prepares int64
	// CacheHits / CacheMisses count plan-cache outcomes. A stale entry
	// (catalog epoch changed) counts as a miss. Both stay 0 when the
	// cache is disabled. A result-cache hit consults neither the plan
	// cache nor these counters.
	CacheHits   int64
	CacheMisses int64
	// ResultHits / ResultMisses / ResultShared count result-cache
	// outcomes: exact replays served from memory, executions that entered
	// the cache, and singleflight waiters that shared a concurrent miss's
	// execution. A stale or TTL-expired entry counts as a miss. All stay
	// 0 when the result cache is disabled.
	ResultHits   int64
	ResultMisses int64
	ResultShared int64
	// Admitted / Shed count serving-layer admission outcomes, recorded by
	// the owner of the admission queue (blinkdb-server) via NoteAdmitted /
	// NoteShed. A shed query never reaches the pipeline — the invariant the
	// server tests pin is Shed > 0 with PlanExecs unchanged. Both stay 0
	// for library-only use.
	Admitted int64
	Shed     int64
	// Cancelled counts queries aborted by context cancellation (client
	// disconnect, deadline) anywhere in the pipeline — before scanning or
	// mid-scan. Cancelled queries produce no answer and are not counted in
	// AnswersByLevel.
	Cancelled int64
	// AnswersByLevel counts final answers by the resolution level that
	// served them (-1 = base table), whether freshly executed or served
	// from the prepared-query memo. One entry per conjunctive disjunct.
	// Result-cache hits replay a recorded answer without re-planning and
	// are not re-counted here.
	AnswersByLevel map[int]int64
}

// statCounters is the runtime's live counter block, guarded as a unit by
// Runtime.statMu so snapshots are internally consistent (no torn
// hits/misses pairs). Field meanings mirror Stats.
type statCounters struct {
	planExecs      int64
	probeExecs     int64
	prepares       int64
	cacheHits      int64
	cacheMisses    int64
	resultHits     int64
	resultMisses   int64
	resultShared   int64
	admitted       int64
	shed           int64
	cancelled      int64
	answersByLevel map[int]int64
}

// NoteAdmitted records one admission-control accept. The serving layer
// owns the admission decision; the runtime only keeps the counter so one
// Stats snapshot covers the whole serving picture.
func (rt *Runtime) NoteAdmitted() { rt.bump(&rt.stats.admitted) }

// NoteShed records one admission-control rejection (load shed before any
// planning or scanning happened).
func (rt *Runtime) NoteShed() { rt.bump(&rt.stats.shed) }

// NoteCancelled records one cancellation that happened outside the query
// pipeline — a client that gave up while still waiting in the admission
// queue. Cancels inside a running query are counted by the pipeline
// itself; this entry point exists so queued-then-gone arrivals don't
// vanish from the admitted/shed/cancelled ledger.
func (rt *Runtime) NoteCancelled() { rt.bump(&rt.stats.cancelled) }

// bump increments one counter under the stats mutex. Call sites pass a
// pointer to the field (`rt.bump(&rt.stats.cacheHits)`); computing the
// field address outside the lock is safe — only the write is guarded.
func (rt *Runtime) bump(counter *int64) {
	rt.statMu.Lock()
	*counter++
	rt.statMu.Unlock()
}

// HitRate returns CacheHits/(CacheHits+CacheMisses), or 0 before any
// cache-eligible query ran.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// ResultHitRate returns the fraction of result-cache-eligible queries
// answered without executing: (hits + shared) / (hits + shared + misses),
// or 0 before any such query ran.
func (s Stats) ResultHitRate() float64 {
	total := s.ResultHits + s.ResultShared + s.ResultMisses
	if total == 0 {
		return 0
	}
	return float64(s.ResultHits+s.ResultShared) / float64(total)
}

// Delta returns the interval counters s − prev: what happened between
// the prev snapshot and this one. AnswersByLevel holds only levels whose
// count changed. Derived rates (HitRate, ResultHitRate) on the returned
// value are then interval rates, not cumulative ones.
func (s Stats) Delta(prev Stats) Stats {
	d := Stats{
		PlanExecs:    s.PlanExecs - prev.PlanExecs,
		ProbeExecs:   s.ProbeExecs - prev.ProbeExecs,
		Prepares:     s.Prepares - prev.Prepares,
		CacheHits:    s.CacheHits - prev.CacheHits,
		CacheMisses:  s.CacheMisses - prev.CacheMisses,
		ResultHits:   s.ResultHits - prev.ResultHits,
		ResultMisses: s.ResultMisses - prev.ResultMisses,
		ResultShared: s.ResultShared - prev.ResultShared,
		Admitted:     s.Admitted - prev.Admitted,
		Shed:         s.Shed - prev.Shed,
		Cancelled:    s.Cancelled - prev.Cancelled,
	}
	d.AnswersByLevel = make(map[int]int64)
	for k, v := range s.AnswersByLevel {
		if dv := v - prev.AnswersByLevel[k]; dv != 0 {
			d.AnswersByLevel[k] = dv
		}
	}
	return d
}

// Stats returns a consistent snapshot of the runtime's counters: all
// fields are copied under one mutex, so ratios like HitRate never mix a
// hits value from one moment with a misses value from another. Safe for
// concurrent use with Run/Prepare/Execute.
func (rt *Runtime) Stats() Stats {
	rt.statMu.Lock()
	defer rt.statMu.Unlock()
	s := Stats{
		PlanExecs:    rt.stats.planExecs,
		ProbeExecs:   rt.stats.probeExecs,
		Prepares:     rt.stats.prepares,
		CacheHits:    rt.stats.cacheHits,
		CacheMisses:  rt.stats.cacheMisses,
		ResultHits:   rt.stats.resultHits,
		ResultMisses: rt.stats.resultMisses,
		ResultShared: rt.stats.resultShared,
		Admitted:     rt.stats.admitted,
		Shed:         rt.stats.shed,
		Cancelled:    rt.stats.cancelled,
	}
	s.AnswersByLevel = make(map[int]int64, len(rt.stats.answersByLevel))
	for k, v := range rt.stats.answersByLevel {
		s.AnswersByLevel[k] = v
	}
	return s
}

// recordLevel counts one served answer at a resolution level (-1 base).
func (rt *Runtime) recordLevel(level int) {
	rt.statMu.Lock()
	if rt.stats.answersByLevel == nil {
		rt.stats.answersByLevel = make(map[int]int64)
	}
	rt.stats.answersByLevel[level]++
	rt.statMu.Unlock()
}
