package plancache

import (
	"fmt"
	"sync"
	"testing"
)

// TestLRUOrder uses a single shard for exact-LRU determinism.
func TestLRUOrder(t *testing.T) {
	c := NewSharded[int](3, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if _, ok := c.Get("a"); !ok { // a becomes MRU
		t.Fatal("a missing")
	}
	c.Put("d", 4) // evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestPutReplacesAndDelete(t *testing.T) {
	c := NewSharded[string](2, 1)
	c.Put("k", "v1")
	c.Put("k", "v2")
	if v, _ := c.Get("k"); v != "v2" {
		t.Errorf("Get = %q, want v2", v)
	}
	if c.Len() != 1 {
		t.Errorf("replace grew the cache: Len = %d", c.Len())
	}
	c.Delete("k")
	if _, ok := c.Get("k"); ok {
		t.Error("deleted key still present")
	}
	c.Delete("k") // idempotent
}

// TestNilCacheAlwaysMisses: capacity ≤ 0 yields the nil always-miss
// cache, every method a safe no-op — the "cache disabled" path.
func TestNilCacheAlwaysMisses(t *testing.T) {
	c := New[int](0)
	if c != nil {
		t.Fatal("capacity 0 should return nil")
	}
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("nil cache must always miss")
	}
	c.Delete("a")
	if c.Len() != 0 {
		t.Error("nil cache Len must be 0")
	}
}

// TestCapacityAcrossShards: total capacity is respected regardless of key
// distribution — inserting far more keys than capacity never exceeds it.
func TestCapacityAcrossShards(t *testing.T) {
	const capTotal = 20
	c := New[int](capTotal)
	for i := 0; i < 500; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if got := c.Len(); got > capTotal {
		t.Errorf("Len = %d exceeds capacity %d", got, capTotal)
	}
	if got := c.Len(); got == 0 {
		t.Error("cache empty after inserts")
	}
}

// TestTinyCapacityShardClamp: shard count clamps so every shard holds at
// least one entry.
func TestTinyCapacityShardClamp(t *testing.T) {
	c := New[int](3)
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if got := c.Len(); got == 0 || got > 3 {
		t.Errorf("Len = %d, want in [1,3]", got)
	}
}

func TestSweep(t *testing.T) {
	c := NewSharded[int](32, 1) // single shard: no eviction below 32 entries
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	removed := c.Sweep(func(_ string, v int) bool { return v%2 == 0 })
	if removed != 10 {
		t.Errorf("Sweep removed %d, want 10", removed)
	}
	for i := 0; i < 20; i++ {
		_, ok := c.Get(fmt.Sprintf("k%d", i))
		if want := i%2 == 0; ok != want {
			t.Errorf("k%d present=%v, want %v", i, ok, want)
		}
	}
	if c := (*Cache[int])(nil); c.Sweep(func(string, int) bool { return false }) != 0 {
		t.Error("nil cache Sweep must remove nothing")
	}
}

// TestConcurrentAccess hammers the stripes from many goroutines; run
// under -race in CI. Hot keys must stay readable throughout.
func TestConcurrentAccess(t *testing.T) {
	c := New[int](64)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("key-%d", i%100)
				if i%3 == 0 {
					c.Put(k, g*10000+i)
				} else if i%7 == 0 {
					c.Delete(k)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("capacity exceeded under concurrency: %d", c.Len())
	}
}

// TestGetHitNoAllocs is the plan-cache half of the hit-path allocation
// audit: serving a hot template from the cache must allocate nothing —
// the lookup is maphash + map probe + list splice, all in place. The
// resultcache package (which wraps this LRU) pins the same property for
// its TTL-checking Get.
func TestGetHitNoAllocs(t *testing.T) {
	c := New[int](64)
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	hot := fmt.Sprintf("k%d", 7)
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := c.Get(hot); !ok {
			t.Fatal("hot key missed")
		}
	})
	if allocs != 0 {
		t.Errorf("Get hit allocates %.1f objects/op, want 0", allocs)
	}
}

// TestMissNoAllocs: a miss is just as free (no entry is created).
func TestMissNoAllocs(t *testing.T) {
	c := New[int](8)
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := c.Get("never-inserted"); ok {
			t.Fatal("phantom hit")
		}
	})
	if allocs != 0 {
		t.Errorf("Get miss allocates %.1f objects/op, want 0", allocs)
	}
}

// TestDeleteIf: conditional delete removes only while cond holds for the
// CURRENT value — the primitive resultcache uses so a reader evicting an
// expired entry cannot race-evict a concurrently refreshed one.
func TestDeleteIf(t *testing.T) {
	c := NewSharded[int](4, 1)
	c.Put("k", 1)
	if c.DeleteIf("k", func(v int) bool { return v == 2 }) {
		t.Fatal("cond false must not delete")
	}
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry vanished despite false cond")
	}
	c.Put("k", 2) // the "concurrent refresh"
	if c.DeleteIf("k", func(v int) bool { return v == 1 }) {
		t.Fatal("stale cond must not delete the refreshed value")
	}
	if v, ok := c.Get("k"); !ok || v != 2 {
		t.Fatal("refreshed entry must survive a stale conditional delete")
	}
	if !c.DeleteIf("k", func(v int) bool { return v == 2 }) {
		t.Fatal("matching cond must delete")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived a matching conditional delete")
	}
	if c.DeleteIf("absent", func(int) bool { return true }) {
		t.Fatal("missing key must report false")
	}
}
