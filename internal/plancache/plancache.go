// Package plancache provides the sharded LRU behind BlinkDB-Go's
// prepare/execute pipeline: a concurrency-safe map from query-template
// keys (sqlparser.Normalize) to prepared-query state (compiled plan,
// probe results, Error-Latency Profile fit).
//
// The cache is mutex-striped: keys hash to one of up to 16 shards, each
// an independently locked exact-LRU list, so concurrent lookups of
// different hot templates never contend on one lock. Capacity is divided
// evenly across shards, which makes global eviction approximate — a
// burst of templates hashing to one shard can evict earlier than a
// global LRU would — but per-shard recency is exact, which is what a
// template-heavy serving workload needs: the hot templates stay resident
// regardless of cold-template churn elsewhere.
//
// The cache stores values of any type and never inspects them; staleness
// (e.g. a sample rebuild) is the caller's concern — the ELP runtime
// validates catalog epochs on every hit and treats a mismatch as a miss.
package plancache

import (
	"container/list"
	"hash/maphash"
	"sync"
)

// maxShards caps the stripe count; fewer are used for tiny capacities so
// every shard can hold at least one entry.
const maxShards = 16

// Cache is a sharded, mutex-striped LRU keyed by strings.
// The zero value is not usable; call New. A nil *Cache is a valid
// always-miss cache, so callers can treat "cache disabled" uniformly.
type Cache[V any] struct {
	seed   maphash.Seed
	shards []shard[V]
}

type shard[V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	tab map[string]*list.Element
}

type entry[V any] struct {
	key string
	val V
}

// New creates a cache holding up to capacity entries in total, striped
// over min(capacity, 16) shards. Capacity ≤ 0 returns nil — the
// always-miss cache.
func New[V any](capacity int) *Cache[V] {
	return NewSharded[V](capacity, maxShards)
}

// NewSharded is New with an explicit stripe count (clamped to
// [1, capacity] so no shard has zero capacity). Exact single-LRU
// semantics are available with shards = 1.
func NewSharded[V any](capacity, shards int) *Cache[V] {
	if capacity <= 0 {
		return nil
	}
	if shards > capacity {
		shards = capacity
	}
	if shards < 1 {
		shards = 1
	}
	c := &Cache[V]{seed: maphash.MakeSeed(), shards: make([]shard[V], shards)}
	per := capacity / shards
	extra := capacity % shards
	for i := range c.shards {
		n := per
		if i < extra {
			n++
		}
		c.shards[i] = shard[V]{cap: n, ll: list.New(), tab: make(map[string]*list.Element)}
	}
	return c
}

func (c *Cache[V]) shardOf(key string) *shard[V] {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := maphash.String(c.seed, key)
	return &c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.tab[key]
	if !ok {
		return zero, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

// Put inserts or replaces the value for key, evicting the shard's least
// recently used entry when over capacity.
func (c *Cache[V]) Put(key string, v V) {
	if c == nil {
		return
	}
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.tab[key]; ok {
		el.Value.(*entry[V]).val = v
		s.ll.MoveToFront(el)
		return
	}
	s.tab[key] = s.ll.PushFront(&entry[V]{key: key, val: v})
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.tab, back.Value.(*entry[V]).key)
	}
}

// Delete removes the key if present.
func (c *Cache[V]) Delete(key string) {
	if c == nil {
		return
	}
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.tab[key]; ok {
		s.ll.Remove(el)
		delete(s.tab, key)
	}
}

// DeleteIf removes the key only while cond holds for its CURRENT value
// (checked under the shard lock) and reports whether it removed. It lets
// a reader that decided to evict a value it loaded earlier (e.g. a
// TTL-expired entry) avoid racing a concurrent Put: if the slot was
// refreshed in between, cond sees the new value and the fresh entry
// survives.
func (c *Cache[V]) DeleteIf(key string, cond func(V) bool) bool {
	if c == nil {
		return false
	}
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.tab[key]; ok && cond(el.Value.(*entry[V]).val) {
		s.ll.Remove(el)
		delete(s.tab, key)
		return true
	}
	return false
}

// Sweep removes every entry for which keep returns false and reports how
// many were removed. Each shard is swept under its own lock; keep must
// not call back into the cache. The ELP runtime uses it to purge ALL
// epoch-stale prepared queries the moment any staleness is observed,
// instead of letting dead catalog snapshots ride the LRU.
func (c *Cache[V]) Sweep(keep func(key string, v V) bool) int {
	if c == nil {
		return 0
	}
	removed := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry[V])
			if !keep(e.key, e.val) {
				s.ll.Remove(el)
				delete(s.tab, e.key)
				removed++
			}
			el = next
		}
		s.mu.Unlock()
	}
	return removed
}

// Range calls fn for every cached entry without touching recency order
// (unlike Get, so a full export does not reshuffle the LRU). Iteration
// stops early when fn returns false. Each shard is visited under its own
// lock; fn must not call back into the cache. Entries added or removed
// concurrently may or may not be seen — Range is a snapshot-quality
// iterator for warmup export, not a consistency point.
func (c *Cache[V]) Range(fn func(key string, v V) bool) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry[V])
			if !fn(e.key, e.val) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}

// Len returns the current entry count across all shards.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
