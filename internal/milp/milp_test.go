package milp

import (
	"math"
	"math/rand"
	"testing"
)

// simpleProblem: 3 candidates, 2 templates.
//
//	cand 0: store 10, covers T0 fully
//	cand 1: store 10, covers T1 fully
//	cand 2: store 15, covers T0 at 0.5 and T1 at 0.5
func simpleProblem(budget float64) *Problem {
	return &Problem{
		Store:     []float64{10, 10, 15},
		Budget:    budget,
		ChurnFrac: -1,
		Templates: []Template{
			{Weight: 0.6, Delta: 100, Covers: []Cover{{Cand: 0, Frac: 1}, {Cand: 2, Frac: 0.5}}},
			{Weight: 0.4, Delta: 100, Covers: []Cover{{Cand: 1, Frac: 1}, {Cand: 2, Frac: 0.5}}},
		},
	}
}

func TestSolveExactPicksBest(t *testing.T) {
	// Budget 20: picking 0 and 1 (G=100) beats 2 alone (G=50).
	sol, err := Solve(simpleProblem(20))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal {
		t.Error("small instance should be exact")
	}
	if !sol.Select[0] || !sol.Select[1] || sol.Select[2] {
		t.Errorf("selection = %v", sol.Select)
	}
	if math.Abs(sol.Objective-100) > 1e-9 {
		t.Errorf("objective = %g", sol.Objective)
	}
	if sol.Cost != 20 {
		t.Errorf("cost = %g", sol.Cost)
	}
}

func TestSolveBudgetForcesTradeoff(t *testing.T) {
	// Budget 15: only candidate 2 fits both templates; but single cand 0
	// gives 0.6·100 = 60 > 50 from cand 2. Optimal: {0}.
	sol, err := Solve(simpleProblem(15))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Select[0] || sol.Select[1] || sol.Select[2] {
		t.Errorf("selection = %v", sol.Select)
	}
	if math.Abs(sol.Objective-60) > 1e-9 {
		t.Errorf("objective = %g", sol.Objective)
	}
}

func TestSolveZeroBudget(t *testing.T) {
	sol, err := Solve(simpleProblem(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range sol.Select {
		if z {
			t.Error("zero budget must select nothing")
		}
	}
	if sol.Objective != 0 {
		t.Errorf("objective = %g", sol.Objective)
	}
}

func TestSkewWeighting(t *testing.T) {
	// Equal weights, different Δ: the high-skew template's candidate wins.
	p := &Problem{
		Store:     []float64{10, 10},
		Budget:    10,
		ChurnFrac: -1,
		Templates: []Template{
			{Weight: 0.5, Delta: 10, Covers: []Cover{{Cand: 0, Frac: 1}}},
			{Weight: 0.5, Delta: 1000, Covers: []Cover{{Cand: 1, Frac: 1}}},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Select[0] || !sol.Select[1] {
		t.Errorf("high-skew candidate should win: %v", sol.Select)
	}
}

func TestChurnConstraint(t *testing.T) {
	// Candidate 0 exists (store 10). r=0 forbids any change: the solver
	// must keep exactly {0} even though {1} would score higher.
	p := &Problem{
		Store:     []float64{10, 10},
		Budget:    10,
		Exists:    []bool{true, false},
		ChurnFrac: 0,
		Templates: []Template{
			{Weight: 1, Delta: 1, Covers: []Cover{{Cand: 0, Frac: 0.5}}},
			{Weight: 1, Delta: 100, Covers: []Cover{{Cand: 1, Frac: 1}}},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Select[0] || sol.Select[1] {
		t.Errorf("r=0 must freeze the existing set: %v", sol.Select)
	}
	if sol.Churn != 0 {
		t.Errorf("churn = %g", sol.Churn)
	}

	// r=1 allows full replacement: {1} wins (budget only fits one).
	p.ChurnFrac = 1
	// Churn of swapping = 10 (delete) + 10 (create) = 20 > r·10 = 10,
	// so even r=1 can't do a full swap here; r=2 can.
	sol, err = Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Select[1] {
		t.Errorf("r=1 churn budget (10) cannot afford swap costing 20: %v", sol.Select)
	}
	p.ChurnFrac = 2
	sol, err = Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Select[0] || !sol.Select[1] {
		t.Errorf("r=2 should swap to the better sample: %v", sol.Select)
	}
	if sol.Churn != 20 {
		t.Errorf("churn = %g, want 20", sol.Churn)
	}
}

func TestCoverageFractionMatters(t *testing.T) {
	// A cheap partial cover can beat an expensive full cover under budget.
	p := &Problem{
		Store:     []float64{100, 10},
		Budget:    10,
		ChurnFrac: -1,
		Templates: []Template{
			{Weight: 1, Delta: 1, Covers: []Cover{{Cand: 0, Frac: 1}, {Cand: 1, Frac: 0.7}}},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Select[1] || sol.Select[0] {
		t.Errorf("partial cover should be chosen: %v", sol.Select)
	}
	if math.Abs(sol.Objective-0.7) > 1e-9 {
		t.Errorf("objective = %g", sol.Objective)
	}
}

func TestMaxNotSumOfCoverage(t *testing.T) {
	// Two candidates both covering one template: objective takes the max
	// coverage, not the sum — selecting both must not double-count.
	p := &Problem{
		Store:     []float64{1, 1},
		Budget:    2,
		ChurnFrac: -1,
		Templates: []Template{
			{Weight: 1, Delta: 10, Covers: []Cover{{Cand: 0, Frac: 0.8}, {Cand: 1, Frac: 0.6}}},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-8) > 1e-9 {
		t.Errorf("objective = %g, want 8 (max coverage 0.8 · Δ 10)", sol.Objective)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{Store: []float64{1}, Budget: -1},
		{Store: []float64{-1}, Budget: 1},
		{Store: []float64{1}, Budget: 1, Templates: []Template{{Weight: -1}}},
		{Store: []float64{1}, Budget: 1, Templates: []Template{{Weight: 1, Covers: []Cover{{Cand: 5, Frac: 1}}}}},
		{Store: []float64{1}, Budget: 1, Templates: []Template{{Weight: 1, Covers: []Cover{{Cand: 0, Frac: 2}}}}},
		{Store: []float64{1}, Budget: 1, Exists: []bool{true, false}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

// randomProblem generates a random instance with n candidates.
func randomProblem(rng *rand.Rand, n, m int) *Problem {
	p := &Problem{
		Store:     make([]float64, n),
		Budget:    float64(n) * 3,
		ChurnFrac: -1,
	}
	for j := range p.Store {
		p.Store[j] = 1 + rng.Float64()*9
	}
	for i := 0; i < m; i++ {
		t := Template{Weight: rng.Float64(), Delta: rng.Float64() * 100}
		seen := map[int]bool{}
		for k := 0; k < 1+rng.Intn(4); k++ {
			c := rng.Intn(n)
			if seen[c] {
				continue
			}
			seen[c] = true
			t.Covers = append(t.Covers, Cover{Cand: c, Frac: 0.2 + 0.8*rng.Float64()})
		}
		p.Templates = append(p.Templates, t)
	}
	return p
}

// bruteForce finds the optimum by enumeration (n ≤ 16).
func bruteForce(p *Problem) float64 {
	n := len(p.Store)
	best := 0.0
	sel := make([]bool, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		cost := 0.0
		for j := 0; j < n; j++ {
			sel[j] = mask&(1<<uint(j)) != 0
			if sel[j] {
				cost += p.Store[j]
			}
		}
		if cost > p.Budget {
			continue
		}
		if g := p.Objective(sel); g > best {
			best = g
		}
	}
	return best
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 3+rng.Intn(10), 2+rng.Intn(8))
		p.Budget = 5 + rng.Float64()*20
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(p)
		if math.Abs(sol.Objective-want) > 1e-9 {
			t.Errorf("trial %d: B&B %g != brute force %g", trial, sol.Objective, want)
		}
		if sol.Cost > p.Budget+1e-9 {
			t.Errorf("trial %d: infeasible cost %g > %g", trial, sol.Cost, p.Budget)
		}
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, ExactLimit+10, 20) // forces greedy path
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Optimal {
			t.Fatal("large instance should use greedy")
		}
		if sol.Cost > p.Budget+1e-9 {
			t.Errorf("greedy infeasible: cost %g > %g", sol.Cost, p.Budget)
		}
		// Compare against the exact optimum of a truncated instance is
		// not possible; check greedy is at least (1-1/e)-ish of the
		// unconstrained-upper-bound heuristic: compute bound with all
		// candidates selected.
		all := make([]bool, len(p.Store))
		for j := range all {
			all[j] = true
		}
		ub := p.Objective(all)
		if ub > 0 && sol.Objective < 0.3*ub {
			t.Errorf("greedy objective %g suspiciously far from bound %g", sol.Objective, ub)
		}
	}
}

func TestGreedyRespectsChurn(t *testing.T) {
	n := ExactLimit + 5
	p := &Problem{
		Store:     make([]float64, n),
		Budget:    1000,
		Exists:    make([]bool, n),
		ChurnFrac: 0,
	}
	for j := range p.Store {
		p.Store[j] = 1
		p.Exists[j] = j%2 == 0
		p.Templates = append(p.Templates, Template{
			Weight: 1, Delta: 1, Covers: []Cover{{Cand: j, Frac: 1}},
		})
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for j, z := range sol.Select {
		if z != p.Exists[j] {
			t.Fatalf("r=0 greedy must freeze configuration at cand %d", j)
		}
	}
}

func BenchmarkBranchAndBound(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	p := randomProblem(rng, 24, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	p := randomProblem(rng, 200, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
