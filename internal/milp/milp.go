// Package milp solves the paper's sample-selection optimization problem
// (§3.2.1, equations (2)–(5)): a mixed integer linear program that picks
// which column sets to build stratified sample families on.
//
//	maximize   G = Σᵢ wᵢ·yᵢ·Δ(φᵢ)                           (2)
//	subject to Σⱼ Store(φⱼ)·zⱼ ≤ S                           (3)
//	           yᵢ ≤ max_{φⱼ ⊆ φᵢ} |D(φⱼ)|/|D(φᵢ)| · zⱼ       (4)
//	           Σⱼ (δⱼ−zⱼ)²·Store(φⱼ) ≤ r·Σⱼ δⱼ·Store(φⱼ)     (5)
//
// with zⱼ ∈ {0,1}. Because the yᵢ appear only through their upper bound,
// the optimum sets yᵢ to the max coverage among selected candidates, so
// the program reduces to a nonlinear binary knapsack with a max-coverage
// objective. The paper solves it with GLPK; we implement an exact
// depth-first branch-and-bound (optimal for the instance sizes the
// evaluation uses) with a greedy + local-search fallback for very large
// candidate sets.
package milp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Cover links a template to a candidate that (partially) covers it.
type Cover struct {
	// Cand indexes Problem.Store.
	Cand int
	// Frac is the coverage ratio |D(φⱼ)|/|D(φᵢ)| ∈ [0,1].
	Frac float64
}

// Template is one workload query template ⟨φᵢ, wᵢ⟩ with its skew Δ(φᵢ).
type Template struct {
	// Weight is wᵢ, the normalized frequency of the template.
	Weight float64
	// Delta is Δ(φᵢ), the non-uniformity of the template's column set.
	Delta float64
	// Covers lists candidates φⱼ ⊆ φᵢ with their coverage fractions.
	Covers []Cover
}

// Problem is a full instance of the optimization.
type Problem struct {
	// Store[j] is the storage cost of building candidate j.
	Store []float64
	// Budget is S, the total storage budget.
	Budget float64
	// Templates is the workload.
	Templates []Template
	// Exists[j] is δⱼ: whether candidate j is already built. nil means
	// nothing exists yet (first solve; the paper then forces r = 1).
	Exists []bool
	// ChurnFrac is r ∈ [0,1] from constraint (5). Negative disables the
	// constraint entirely (equivalent to r = 1 with no prior samples).
	ChurnFrac float64
}

// Solution is the solver output.
type Solution struct {
	// Select[j] is zⱼ.
	Select []bool
	// Objective is G at the solution.
	Objective float64
	// Cost is Σ selected storage.
	Cost float64
	// Churn is the storage mass created+deleted relative to Exists.
	Churn float64
	// Optimal is true when produced by exhaustive branch-and-bound.
	Optimal bool
}

// ExactLimit is the candidate count above which Solve falls back from
// exact branch-and-bound to greedy + local search.
const ExactLimit = 28

// Solve solves the instance. Candidate sets up to ExactLimit are solved
// exactly; larger instances use a greedy with swap-based local search.
func Solve(p *Problem) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(p.Store) <= ExactLimit {
		return branchAndBound(p), nil
	}
	return greedy(p), nil
}

// SolveGreedy forces the greedy + local-search path regardless of instance
// size. Exposed for the exact-vs-greedy ablation; production callers
// should use Solve.
func SolveGreedy(p *Problem) *Solution {
	if err := p.validate(); err != nil {
		return &Solution{Select: make([]bool, len(p.Store))}
	}
	return greedy(p)
}

func (p *Problem) validate() error {
	if p.Budget < 0 {
		return errors.New("milp: negative budget")
	}
	for j, s := range p.Store {
		if s < 0 || math.IsNaN(s) {
			return fmt.Errorf("milp: bad storage cost %g for candidate %d", s, j)
		}
	}
	for i, t := range p.Templates {
		if t.Weight < 0 || t.Delta < 0 {
			return fmt.Errorf("milp: template %d has negative weight/delta", i)
		}
		for _, c := range t.Covers {
			if c.Cand < 0 || c.Cand >= len(p.Store) {
				return fmt.Errorf("milp: template %d covers unknown candidate %d", i, c.Cand)
			}
			if c.Frac < 0 || c.Frac > 1 {
				return fmt.Errorf("milp: template %d has coverage %g outside [0,1]", i, c.Frac)
			}
		}
	}
	if p.Exists != nil && len(p.Exists) != len(p.Store) {
		return errors.New("milp: Exists length mismatch")
	}
	return nil
}

// existingStorage returns Σ δⱼ·Store(φⱼ).
func (p *Problem) existingStorage() float64 {
	if p.Exists == nil {
		return 0
	}
	var s float64
	for j, e := range p.Exists {
		if e {
			s += p.Store[j]
		}
	}
	return s
}

// churnOf returns the created+deleted storage mass of a selection.
func (p *Problem) churnOf(sel []bool) float64 {
	if p.Exists == nil {
		var s float64
		for j, z := range sel {
			if z {
				s += p.Store[j]
			}
		}
		return s
	}
	var churn float64
	for j, z := range sel {
		if z != p.Exists[j] {
			churn += p.Store[j]
		}
	}
	return churn
}

// churnBudget returns the RHS of constraint (5), or +Inf when disabled.
func (p *Problem) churnBudget() float64 {
	if p.ChurnFrac < 0 || p.Exists == nil {
		return math.Inf(1)
	}
	return p.ChurnFrac * p.existingStorage()
}

// Objective evaluates G for a selection.
func (p *Problem) Objective(sel []bool) float64 {
	var g float64
	for _, t := range p.Templates {
		best := 0.0
		for _, c := range t.Covers {
			if sel[c.Cand] && c.Frac > best {
				best = c.Frac
			}
		}
		g += t.Weight * t.Delta * best
	}
	return g
}

// cost returns total storage of a selection.
func (p *Problem) cost(sel []bool) float64 {
	var s float64
	for j, z := range sel {
		if z {
			s += p.Store[j]
		}
	}
	return s
}

// ---------- exact branch & bound ----------

type bbState struct {
	p        *Problem
	order    []int // candidate visit order
	gain     []float64
	best     float64
	bestSel  []bool
	churnCap float64
}

func branchAndBound(p *Problem) *Solution {
	n := len(p.Store)
	st := &bbState{p: p, churnCap: p.churnBudget(), best: -1}

	// Visit candidates in descending "max possible contribution" order so
	// good solutions are found early and pruning bites.
	maxGain := make([]float64, n)
	for _, t := range p.Templates {
		for _, c := range t.Covers {
			if g := t.Weight * t.Delta * c.Frac; g > maxGain[c.Cand] {
				maxGain[c.Cand] = g
			}
		}
	}
	st.gain = maxGain
	st.order = make([]int, n)
	for j := range st.order {
		st.order[j] = j
	}
	sort.Slice(st.order, func(a, b int) bool {
		return maxGain[st.order[a]] > maxGain[st.order[b]]
	})

	sel := make([]bool, n)
	st.recurse(sel, 0, 0, 0)
	if st.bestSel == nil {
		st.bestSel = make([]bool, n) // empty selection is always feasible
		st.best = p.Objective(st.bestSel)
	}
	return &Solution{
		Select:    st.bestSel,
		Objective: st.best,
		Cost:      p.cost(st.bestSel),
		Churn:     p.churnOf(st.bestSel),
		Optimal:   true,
	}
}

// upperBound computes an admissible bound: the objective if every
// undecided candidate (position ≥ depth) were selected for free.
func (st *bbState) upperBound(sel []bool, depth int) float64 {
	undecided := make(map[int]bool, len(st.order)-depth)
	for k := depth; k < len(st.order); k++ {
		undecided[st.order[k]] = true
	}
	var g float64
	for _, t := range st.p.Templates {
		best := 0.0
		for _, c := range t.Covers {
			if (sel[c.Cand] || undecided[c.Cand]) && c.Frac > best {
				best = c.Frac
			}
		}
		g += t.Weight * t.Delta * best
	}
	return g
}

func (st *bbState) recurse(sel []bool, depth int, cost, churn float64) {
	if cost > st.p.Budget+1e-9 || churn > st.churnCap+1e-9 {
		return
	}
	if depth == len(st.order) {
		// With Exists set, NOT selecting an existing sample also costs
		// churn (deletion); account for the full selection now.
		totalChurn := st.p.churnOf(sel)
		if totalChurn > st.churnCap+1e-9 {
			return
		}
		if g := st.p.Objective(sel); g > st.best {
			st.best = g
			st.bestSel = append([]bool{}, sel...)
		}
		return
	}
	if st.upperBound(sel, depth) <= st.best {
		return // prune
	}
	j := st.order[depth]

	// Branch 1: skip j (deleting an existing sample costs churn).
	// Exploring "skip" first makes ties resolve toward the smallest
	// selection, so zero-gain candidates are never chosen just because
	// budget allows (matches §2.3: no sample on the uniform Genre column).
	delChurn := 0.0
	if st.p.Exists != nil && st.p.Exists[j] {
		delChurn = st.p.Store[j]
	}
	st.recurse(sel, depth+1, cost, churn+delChurn)

	// Branch 2: select j (creating a new sample costs churn).
	addChurn := 0.0
	if st.p.Exists != nil && !st.p.Exists[j] {
		addChurn = st.p.Store[j]
	}
	sel[j] = true
	st.recurse(sel, depth+1, cost+st.p.Store[j], churn+addChurn)
	sel[j] = false
}

// ---------- greedy + local search fallback ----------

func greedy(p *Problem) *Solution {
	n := len(p.Store)
	sel := make([]bool, n)
	churnCap := p.churnBudget()

	feasible := func(s []bool) bool {
		return p.cost(s) <= p.Budget+1e-9 && p.churnOf(s) <= churnCap+1e-9
	}

	// Seed with the existing configuration when it is feasible — churn
	// constraints make "keep everything" the natural starting point.
	if p.Exists != nil {
		copySel := make([]bool, n)
		copy(copySel, p.Exists)
		if feasible(copySel) {
			sel = copySel
		}
	}

	cur := p.Objective(sel)
	for {
		bestJ, bestGain := -1, 0.0
		for j := 0; j < n; j++ {
			if sel[j] {
				continue
			}
			sel[j] = true
			ok := feasible(sel)
			g := 0.0
			if ok {
				g = p.Objective(sel) - cur
				// Density: prefer gain per storage unit.
				if p.Store[j] > 0 {
					g /= p.Store[j]
				} else if g > 0 {
					g = math.Inf(1)
				}
			}
			sel[j] = false
			if ok && g > bestGain {
				bestGain, bestJ = g, j
			}
		}
		if bestJ < 0 {
			break
		}
		sel[bestJ] = true
		cur = p.Objective(sel)
	}

	// Local search: try single swaps (drop one, add one) until no
	// improvement. Bounded passes keep this polynomial.
	improved := true
	for pass := 0; improved && pass < 8; pass++ {
		improved = false
		for out := 0; out < n; out++ {
			if !sel[out] {
				continue
			}
			swapped := false
			for in := 0; in < n && !swapped; in++ {
				if sel[in] || in == out {
					continue
				}
				sel[out], sel[in] = false, true
				if feasible(sel) {
					if g := p.Objective(sel); g > cur+1e-12 {
						cur = g
						improved = true
						swapped = true
						continue
					}
				}
				sel[out], sel[in] = true, false
			}
		}
	}

	return &Solution{
		Select:    sel,
		Objective: cur,
		Cost:      p.cost(sel),
		Churn:     p.churnOf(sel),
		Optimal:   false,
	}
}
