package storage

import (
	"testing"
	"testing/quick"

	"blinkdb/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "city", Kind: types.KindString},
	)
}

func buildTable(t *testing.T, n, rowsPerBlock, nodes int) *Table {
	t.Helper()
	tab := NewTable("t", testSchema())
	b := NewBuilder(tab, rowsPerBlock, nodes, OnDisk)
	for i := 0; i < n; i++ {
		b.AppendRow(types.Row{types.Int(int64(i)), types.Str("NY")})
	}
	b.Finish()
	if err := Validate(tab, nodes); err != nil {
		t.Fatalf("invalid table: %v", err)
	}
	return tab
}

func TestBuilderBlocksAndCounts(t *testing.T) {
	tab := buildTable(t, 100, 16, 4)
	if tab.NumRows() != 100 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
	// 100/16 → 7 blocks (6 full + 1 partial).
	if len(tab.Blocks) != 7 {
		t.Errorf("blocks = %d, want 7", len(tab.Blocks))
	}
	if tab.Blocks[6].NumRows() != 4 {
		t.Errorf("last block rows = %d, want 4", tab.Blocks[6].NumRows())
	}
	if tab.Bytes() <= 0 {
		t.Error("bytes should be positive")
	}
}

func TestBuilderRoundRobinPlacement(t *testing.T) {
	tab := buildTable(t, 100, 10, 4)
	for i, b := range tab.Blocks {
		if b.Node != i%4 {
			t.Errorf("block %d on node %d, want %d", i, b.Node, i%4)
		}
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	tab := buildTable(t, 50, 8, 2)
	var seen []int64
	tab.Scan(func(r types.Row, m RowMeta) bool {
		if m.Rate != 1 {
			t.Fatalf("rate = %g, want 1", m.Rate)
		}
		seen = append(seen, r[0].I)
		return len(seen) < 10
	})
	if len(seen) != 10 {
		t.Fatalf("early stop failed: scanned %d", len(seen))
	}
	for i, v := range seen {
		if v != int64(i) {
			t.Fatalf("scan order broken at %d: %d", i, v)
		}
	}
}

func TestEstimateRowBytes(t *testing.T) {
	r := types.Row{types.Int(1), types.Str("abc"), types.Float(1.5), types.Null()}
	// 8 + (3+2) + 8 + 1 = 22
	if got := EstimateRowBytes(r); got != 22 {
		t.Errorf("EstimateRowBytes = %d, want 22", got)
	}
}

func TestSetPlacement(t *testing.T) {
	tab := buildTable(t, 30, 8, 2)
	SetPlacement(tab, InMemory)
	for _, b := range tab.Blocks {
		if b.Place != InMemory {
			t.Fatal("placement not applied")
		}
	}
	if InMemory.String() != "memory" || OnDisk.String() != "disk" {
		t.Error("Placement.String wrong")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tab := buildTable(t, 20, 8, 2)
	tab.Blocks[0].Meta = tab.Blocks[0].Meta[:1]
	if err := Validate(tab, 2); err == nil {
		t.Error("meta/rows mismatch not caught")
	}

	tab2 := buildTable(t, 20, 8, 2)
	tab2.Blocks[0].Meta[0].Rate = 0
	if err := Validate(tab2, 2); err == nil {
		t.Error("zero rate not caught")
	}

	tab3 := buildTable(t, 20, 8, 2)
	tab3.Blocks[0].Node = 99
	if err := Validate(tab3, 2); err == nil {
		t.Error("node out of range not caught")
	}

	tab4 := buildTable(t, 20, 8, 2)
	tab4.Blocks[0].Bytes++
	if err := Validate(tab4, 2); err == nil {
		t.Error("byte drift not caught")
	}
}

// Property: for any row count and block size, total scanned rows equals
// appended rows and blocks are bounded by ceil(n/rowsPerBlock).
func TestBuilderConservation(t *testing.T) {
	f := func(n uint16, bs uint8) bool {
		rows := int(n % 2000)
		blockSize := int(bs%64) + 1
		tab := NewTable("q", testSchema())
		b := NewBuilder(tab, blockSize, 3, InMemory)
		for i := 0; i < rows; i++ {
			b.AppendRow(types.Row{types.Int(int64(i)), types.Str("x")})
		}
		b.Finish()
		count := 0
		tab.Scan(func(types.Row, RowMeta) bool { count++; return true })
		wantBlocks := (rows + blockSize - 1) / blockSize
		return count == rows && len(tab.Blocks) == wantBlocks &&
			Validate(tab, 3) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBuilderDefaults(t *testing.T) {
	tab := NewTable("d", testSchema())
	b := NewBuilder(tab, 0, 0, OnDisk) // defaults kick in
	b.AppendRow(types.Row{types.Int(1), types.Str("x")})
	b.Finish()
	if len(tab.Blocks) != 1 || tab.Blocks[0].Node != 0 {
		t.Error("defaults broken")
	}
}

// buildTableLayout mirrors buildTable with an explicit layout and mixed
// value kinds (nulls, strings, floats) to exercise every encoding.
func buildTableLayout(t *testing.T, layout Layout, n, rowsPerBlock, nodes int) *Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "v", Kind: types.KindFloat},
	)
	tab := NewTable("t", schema)
	b := NewBuilderLayout(tab, rowsPerBlock, nodes, OnDisk, layout)
	cities := []string{"NY", "SF", "LA"}
	for i := 0; i < n; i++ {
		v := types.Float(float64(i) * 1.5)
		if i%11 == 0 {
			v = types.Null()
		}
		b.Append(types.Row{types.Int(int64(i)), types.Str(cities[i%3]), v},
			RowMeta{Rate: 1, StratumFreq: int64(i % 4 * 100)})
	}
	b.Finish()
	if err := Validate(tab, nodes); err != nil {
		t.Fatalf("invalid %s table: %v", layout, err)
	}
	return tab
}

// TestColumnarBuilderMatchesRowBuilder pins that the two layouts produce
// tables with identical logical content: same block boundaries, nodes,
// zones, bytes, rows and metadata.
func TestColumnarBuilderMatchesRowBuilder(t *testing.T) {
	row := buildTableLayout(t, RowLayout, 230, 16, 4)
	col := buildTableLayout(t, ColumnarLayout, 230, 16, 4)
	if len(row.Blocks) != len(col.Blocks) || row.NumRows() != col.NumRows() || row.Bytes() != col.Bytes() {
		t.Fatalf("shape mismatch: %d/%d blocks, %d/%d rows, %d/%d bytes",
			len(row.Blocks), len(col.Blocks), row.NumRows(), col.NumRows(), row.Bytes(), col.Bytes())
	}
	for bi, rb := range row.Blocks {
		cb := col.Blocks[bi]
		if !cb.IsColumnar() || cb.IsColumnar() == rb.IsColumnar() {
			t.Fatalf("block %d layouts wrong", bi)
		}
		if rb.Node != cb.Node || rb.Place != cb.Place || rb.Bytes != cb.Bytes || rb.NumRows() != cb.NumRows() {
			t.Fatalf("block %d physical mismatch", bi)
		}
		if len(rb.Zones) != len(cb.Zones) {
			t.Fatalf("block %d zone widths differ", bi)
		}
		for zi := range rb.Zones {
			rz, cz := rb.Zones[zi], cb.Zones[zi]
			if rz.Valid != cz.Valid || types.Compare(rz.Min, cz.Min) != 0 || types.Compare(rz.Max, cz.Max) != 0 {
				t.Fatalf("block %d zone %d differs: %+v vs %+v", bi, zi, rz, cz)
			}
		}
		for i := 0; i < rb.NumRows(); i++ {
			if rb.MetaAt(i) != cb.MetaAt(i) {
				t.Fatalf("block %d row %d meta differs", bi, i)
			}
			rr, cr := rb.RowAt(i), cb.RowAt(i)
			for ci := range rr {
				if !types.GroupEqual(rr[ci], cr[ci]) || rr[ci].Kind != cr[ci].Kind {
					t.Fatalf("block %d row %d col %d: %v vs %v", bi, i, ci, rr[ci], cr[ci])
				}
				if rb.ValueAt(i, ci) != rr[ci] || cb.ValueAt(i, ci).Kind != rr[ci].Kind {
					t.Fatalf("ValueAt mismatch at block %d row %d col %d", bi, i, ci)
				}
			}
			if rb.RowKey(i, []int{1, 0}) != cb.RowKey(i, []int{1, 0}) {
				t.Fatalf("RowKey mismatch at block %d row %d", bi, i)
			}
		}
	}
}

// TestColumnarScanMatchesRowScan checks Table.Scan parity across layouts,
// including early stop.
func TestColumnarScanMatchesRowScan(t *testing.T) {
	row := buildTableLayout(t, RowLayout, 120, 32, 2)
	col := buildTableLayout(t, ColumnarLayout, 120, 32, 2)
	var rowSeen, colSeen []types.Row
	row.Scan(func(r types.Row, m RowMeta) bool { rowSeen = append(rowSeen, r.Clone()); return len(rowSeen) < 70 })
	col.Scan(func(r types.Row, m RowMeta) bool { colSeen = append(colSeen, r); return len(colSeen) < 70 })
	if len(rowSeen) != len(colSeen) {
		t.Fatalf("scan lengths differ: %d vs %d", len(rowSeen), len(colSeen))
	}
	for i := range rowSeen {
		for ci := range rowSeen[i] {
			if rowSeen[i][ci] != colSeen[i][ci] {
				t.Fatalf("scan row %d col %d: %v vs %v", i, ci, rowSeen[i][ci], colSeen[i][ci])
			}
		}
	}
}

// TestZoneSizingFromSchema is the regression test for the zone-sizing
// bug: a narrow first row used to size curZones, silently disabling zone
// maintenance for trailing columns of later (full-width) rows.
func TestZoneSizingFromSchema(t *testing.T) {
	for _, layout := range []Layout{RowLayout, ColumnarLayout} {
		tab := NewTable("z", testSchema()) // (id INT, city STRING)
		b := NewBuilderLayout(tab, 8, 1, OnDisk, layout)
		b.AppendRow(types.Row{types.Int(5)}) // narrow row first
		b.AppendRow(types.Row{types.Int(1), types.Str("AA")})
		b.AppendRow(types.Row{types.Int(9), types.Str("ZZ")})
		b.Finish()
		blk := tab.Blocks[0]
		if len(blk.Zones) != 2 {
			t.Fatalf("%s: zones sized %d from first row, want 2 (schema width)", layout, len(blk.Zones))
		}
		z := blk.Zones[1]
		if !z.Valid || z.Min.S != "AA" || z.Max.S != "ZZ" {
			t.Fatalf("%s: trailing column zone not maintained: %+v", layout, z)
		}
		if z0 := blk.Zones[0]; !z0.Valid || z0.Min.I != 1 || z0.Max.I != 9 {
			t.Fatalf("%s: leading zone wrong: %+v", layout, z0)
		}
	}
}

// TestAppendTableRechunk pins the re-chunking copy across every layout
// pairing: contents, metadata and totals survive, and the columnar →
// columnar path (which reuses a decode buffer) matches a fresh build.
func TestAppendTableRechunk(t *testing.T) {
	for _, srcLayout := range []Layout{RowLayout, ColumnarLayout} {
		for _, dstLayout := range []Layout{RowLayout, ColumnarLayout} {
			src := buildTableLayout(t, srcLayout, 230, 16, 4)
			dst := NewTable("t", src.Schema)
			b := NewBuilderLayout(dst, 64, 2, OnDisk, dstLayout)
			b.AppendTable(src)
			b.Finish()
			if dst.NumRows() != src.NumRows() || dst.Bytes() != src.Bytes() {
				t.Fatalf("%s->%s: totals changed: %d/%d rows, %d/%d bytes",
					srcLayout, dstLayout, dst.NumRows(), src.NumRows(), dst.Bytes(), src.Bytes())
			}
			if err := Validate(dst, 2); err != nil {
				t.Fatalf("%s->%s: %v", srcLayout, dstLayout, err)
			}
			want := buildTableLayout(t, srcLayout, 230, 16, 4) // reference contents
			ri, bi := 0, 0
			want.Scan(func(r types.Row, m RowMeta) bool {
				blk := dst.Blocks[bi]
				if ri >= blk.NumRows() {
					bi, ri = bi+1, 0
					blk = dst.Blocks[bi]
				}
				if blk.MetaAt(ri) != m {
					t.Fatalf("%s->%s: meta diverged at block %d row %d", srcLayout, dstLayout, bi, ri)
				}
				got := blk.RowAt(ri)
				for ci := range r {
					if got[ci] != r[ci] {
						t.Fatalf("%s->%s: row diverged at block %d row %d col %d: %v vs %v",
							srcLayout, dstLayout, bi, ri, ci, got[ci], r[ci])
					}
				}
				ri++
				return true
			})
		}
	}
}

func TestPartitionBlocksByNodeBoundariesUnchanged(t *testing.T) {
	// The affine partitioner must reuse PartitionBlocks's boundaries
	// exactly — that is what keeps affinity-on results bit-identical to
	// the node-blind schedule (float accumulation order is fixed by the
	// ranges, not by which worker consumes them).
	for _, n := range []int{0, 1, 5, 64, 300, 1000} {
		for _, maxParts := range []int{1, 7, 256} {
			tab := buildTable(t, n*3+1, 3, 4)
			blocks := tab.Blocks
			if len(blocks) > n {
				blocks = blocks[:n]
			}
			want := PartitionBlocks(len(blocks), maxParts)
			got, _ := PartitionBlocksByNode(blocks, maxParts)
			if len(want) != len(got) {
				t.Fatalf("n=%d parts=%d: %d ranges vs %d", n, maxParts, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("n=%d parts=%d range %d: %+v vs %+v", n, maxParts, i, want[i], got[i])
				}
			}
		}
	}
}

func TestPartitionBlocksByNodeShardsCoverAllRangesOnce(t *testing.T) {
	tab := buildTable(t, 900, 3, 7) // 300 blocks striped over 7 nodes
	ranges, shards := PartitionBlocksByNode(tab.Blocks, 256)
	seen := make([]int, len(ranges))
	lastNode := -1
	for _, s := range shards {
		if s.Node <= lastNode {
			t.Fatalf("shards not in ascending node order: %d after %d", s.Node, lastNode)
		}
		lastNode = s.Node
		prev := -1
		for _, ri := range s.Ranges {
			if ri <= prev {
				t.Fatalf("shard %d ranges not ascending: %d after %d", s.Node, ri, prev)
			}
			prev = ri
			seen[ri]++
		}
	}
	for ri, c := range seen {
		if c != 1 {
			t.Fatalf("range %d claimed %d times", ri, c)
		}
	}
}

func TestPartitionBlocksByNodeOwnerAndLocality(t *testing.T) {
	// Single-block ranges: the owner is the block's node and locality is
	// perfect.
	tab := buildTable(t, 60, 3, 4) // 20 blocks over 4 nodes, ≤256 parts
	ranges, shards := PartitionBlocksByNode(tab.Blocks, 256)
	if len(ranges) != len(tab.Blocks) {
		t.Fatalf("expected one range per block, got %d for %d blocks", len(ranges), len(tab.Blocks))
	}
	if len(shards) != 4 {
		t.Fatalf("expected 4 shards, got %d", len(shards))
	}
	for _, s := range shards {
		if s.LocalBytes != s.Bytes {
			t.Errorf("node %d: local %d != total %d with single-block ranges", s.Node, s.LocalBytes, s.Bytes)
		}
		for _, ri := range s.Ranges {
			if got := tab.Blocks[ranges[ri].Lo].Node; got != s.Node {
				t.Errorf("range %d owned by node %d but its block lives on %d", ri, s.Node, got)
			}
		}
	}
	if hr := LocalityHitRate(shards); hr != 1 {
		t.Errorf("hit rate = %g, want 1 for single-block ranges", hr)
	}
	if rb := RemoteBytes(shards); rb != 0 {
		t.Errorf("remote bytes = %d, want 0", rb)
	}

	// Multi-block ranges straddling nodes: owner is the max-bytes node
	// (ties to the lowest id) and the off-owner share is remote.
	blocks := []*Block{
		{ID: 0, Node: 2, Bytes: 100},
		{ID: 1, Node: 0, Bytes: 100},
		{ID: 2, Node: 2, Bytes: 50},
	}
	_, sh := PartitionBlocksByNode(blocks, 1) // one range over all three
	if len(sh) != 1 || sh[0].Node != 2 {
		t.Fatalf("owner = %+v, want node 2 (150 of 250 bytes)", sh)
	}
	if sh[0].Bytes != 250 || sh[0].LocalBytes != 150 {
		t.Errorf("bytes = %d/%d, want 150/250", sh[0].LocalBytes, sh[0].Bytes)
	}
	if rb := RemoteBytes(sh); rb != 100 {
		t.Errorf("remote = %d, want 100", rb)
	}

	// Byte tie between nodes 3 and 1 → lowest id wins.
	tie := []*Block{
		{ID: 0, Node: 3, Bytes: 80},
		{ID: 1, Node: 1, Bytes: 80},
	}
	_, sh = PartitionBlocksByNode(tie, 1)
	if len(sh) != 1 || sh[0].Node != 1 {
		t.Fatalf("tie should go to the lowest node id, got %+v", sh)
	}

	// Empty input.
	if r, s := PartitionBlocksByNode(nil, 8); r != nil || s != nil {
		t.Errorf("nil blocks should partition to nil, got %v %v", r, s)
	}
	if hr := LocalityHitRate(nil); hr != 1 {
		t.Errorf("empty shard list hit rate = %g, want 1", hr)
	}
}
