package storage

import (
	"testing"
	"testing/quick"

	"blinkdb/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "city", Kind: types.KindString},
	)
}

func buildTable(t *testing.T, n, rowsPerBlock, nodes int) *Table {
	t.Helper()
	tab := NewTable("t", testSchema())
	b := NewBuilder(tab, rowsPerBlock, nodes, OnDisk)
	for i := 0; i < n; i++ {
		b.AppendRow(types.Row{types.Int(int64(i)), types.Str("NY")})
	}
	b.Finish()
	if err := Validate(tab, nodes); err != nil {
		t.Fatalf("invalid table: %v", err)
	}
	return tab
}

func TestBuilderBlocksAndCounts(t *testing.T) {
	tab := buildTable(t, 100, 16, 4)
	if tab.NumRows() != 100 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
	// 100/16 → 7 blocks (6 full + 1 partial).
	if len(tab.Blocks) != 7 {
		t.Errorf("blocks = %d, want 7", len(tab.Blocks))
	}
	if tab.Blocks[6].NumRows() != 4 {
		t.Errorf("last block rows = %d, want 4", tab.Blocks[6].NumRows())
	}
	if tab.Bytes() <= 0 {
		t.Error("bytes should be positive")
	}
}

func TestBuilderRoundRobinPlacement(t *testing.T) {
	tab := buildTable(t, 100, 10, 4)
	for i, b := range tab.Blocks {
		if b.Node != i%4 {
			t.Errorf("block %d on node %d, want %d", i, b.Node, i%4)
		}
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	tab := buildTable(t, 50, 8, 2)
	var seen []int64
	tab.Scan(func(r types.Row, m RowMeta) bool {
		if m.Rate != 1 {
			t.Fatalf("rate = %g, want 1", m.Rate)
		}
		seen = append(seen, r[0].I)
		return len(seen) < 10
	})
	if len(seen) != 10 {
		t.Fatalf("early stop failed: scanned %d", len(seen))
	}
	for i, v := range seen {
		if v != int64(i) {
			t.Fatalf("scan order broken at %d: %d", i, v)
		}
	}
}

func TestEstimateRowBytes(t *testing.T) {
	r := types.Row{types.Int(1), types.Str("abc"), types.Float(1.5), types.Null()}
	// 8 + (3+2) + 8 + 1 = 22
	if got := EstimateRowBytes(r); got != 22 {
		t.Errorf("EstimateRowBytes = %d, want 22", got)
	}
}

func TestSetPlacement(t *testing.T) {
	tab := buildTable(t, 30, 8, 2)
	SetPlacement(tab, InMemory)
	for _, b := range tab.Blocks {
		if b.Place != InMemory {
			t.Fatal("placement not applied")
		}
	}
	if InMemory.String() != "memory" || OnDisk.String() != "disk" {
		t.Error("Placement.String wrong")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tab := buildTable(t, 20, 8, 2)
	tab.Blocks[0].Meta = tab.Blocks[0].Meta[:1]
	if err := Validate(tab, 2); err == nil {
		t.Error("meta/rows mismatch not caught")
	}

	tab2 := buildTable(t, 20, 8, 2)
	tab2.Blocks[0].Meta[0].Rate = 0
	if err := Validate(tab2, 2); err == nil {
		t.Error("zero rate not caught")
	}

	tab3 := buildTable(t, 20, 8, 2)
	tab3.Blocks[0].Node = 99
	if err := Validate(tab3, 2); err == nil {
		t.Error("node out of range not caught")
	}

	tab4 := buildTable(t, 20, 8, 2)
	tab4.Blocks[0].Bytes++
	if err := Validate(tab4, 2); err == nil {
		t.Error("byte drift not caught")
	}
}

// Property: for any row count and block size, total scanned rows equals
// appended rows and blocks are bounded by ceil(n/rowsPerBlock).
func TestBuilderConservation(t *testing.T) {
	f := func(n uint16, bs uint8) bool {
		rows := int(n % 2000)
		blockSize := int(bs%64) + 1
		tab := NewTable("q", testSchema())
		b := NewBuilder(tab, blockSize, 3, InMemory)
		for i := 0; i < rows; i++ {
			b.AppendRow(types.Row{types.Int(int64(i)), types.Str("x")})
		}
		b.Finish()
		count := 0
		tab.Scan(func(types.Row, RowMeta) bool { count++; return true })
		wantBlocks := (rows + blockSize - 1) / blockSize
		return count == rows && len(tab.Blocks) == wantBlocks &&
			Validate(tab, 3) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBuilderDefaults(t *testing.T) {
	tab := NewTable("d", testSchema())
	b := NewBuilder(tab, 0, 0, OnDisk) // defaults kick in
	b.AppendRow(types.Row{types.Int(1), types.Str("x")})
	b.Finish()
	if len(tab.Blocks) != 1 || tab.Blocks[0].Node != 0 {
		t.Error("defaults broken")
	}
}
