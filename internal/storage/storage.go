// Package storage provides the block-oriented table store underlying
// BlinkDB-Go. A Table is a bag of Blocks; each block holds a contiguous
// run of rows, carries per-row effective sampling rates (1.0 for base
// tables), and has a physical placement: the simulated cluster node it
// lives on and whether it is resident in memory or on disk.
//
// This mirrors the paper's HDFS layout (§2.2.1 "Storage optimization" and
// Fig. 4): samples are split into many small blocks spread across nodes,
// and multi-resolution samples map to non-overlapping block sets.
package storage

import (
	"fmt"
	"sort"

	"blinkdb/internal/colstore"
	"blinkdb/internal/types"
)

// Layout selects a table's physical block representation.
type Layout uint8

const (
	// RowLayout stores blocks as []types.Row plus per-row RowMeta — the
	// original representation, kept as the fallback scan path.
	RowLayout Layout = iota
	// ColumnarLayout stores blocks as per-column typed slices with null
	// bitmaps and per-block rate/stratum-frequency arrays
	// (internal/colstore), enabling the executor's vectorized kernels.
	ColumnarLayout
)

// String renders the layout name.
func (l Layout) String() string {
	if l == ColumnarLayout {
		return "columnar"
	}
	return "row"
}

// Placement says where a block physically resides.
type Placement uint8

const (
	// OnDisk blocks are read at disk bandwidth.
	OnDisk Placement = iota
	// InMemory blocks are read at memory bandwidth.
	InMemory
)

// String renders the placement.
func (p Placement) String() string {
	if p == InMemory {
		return "memory"
	}
	return "disk"
}

// RowMeta carries per-row sampling metadata used for the §4.3 bias
// correction. Base-table rows have Rate 1 and StratumFreq 0.
type RowMeta struct {
	// Rate is the effective sampling rate in (0, 1] for rows whose rate
	// is fixed at build time (uniform samples, base tables).
	Rate float64
	// StratumFreq, when positive, records F(φ,T,x): the base-table
	// frequency of this row's stratum. Stratified-family rows derive
	// their per-resolution rate as min(1, K/StratumFreq) at query time,
	// because the same physical row serves several resolutions with
	// different caps (non-overlapping delta storage, Fig. 4).
	StratumFreq int64
}

// Zone is a per-block min/max summary of one column (a zone map). Blocks
// whose zone cannot intersect a predicate's bounds are skipped entirely —
// this is how the §3.1 clustered layout ("records with the same or
// consecutive x values are stored contiguously") turns into I/O savings.
type Zone struct {
	// Min and Max bound the column's values within the block.
	Min, Max types.Value
	// Valid is false until the first row is recorded.
	Valid bool
}

// Extend widens the zone to include v.
func (z *Zone) Extend(v types.Value) {
	if !z.Valid {
		z.Min, z.Max, z.Valid = v, v, true
		return
	}
	if types.Compare(v, z.Min) < 0 {
		z.Min = v
	}
	if types.Compare(v, z.Max) > 0 {
		z.Max = v
	}
}

// Block is a contiguous run of rows with shared placement. A block is
// stored in exactly one layout: row blocks populate Rows/Meta, columnar
// blocks populate Col (and leave Rows/Meta nil). Readers that don't go
// through the executor's layout-aware scan use the accessor methods
// (NumRows, RowAt, MetaAt, ValueAt, RowKey), which work for both.
type Block struct {
	// ID is unique within a Table.
	ID int
	// Rows holds the data (row layout only).
	Rows []types.Row
	// Meta[i] describes Rows[i]. len(Meta) == len(Rows) (row layout only).
	Meta []RowMeta
	// Col is the columnar payload (columnar layout only).
	Col *colstore.Data
	// Zones[i] summarises column i across the block's rows.
	Zones []Zone
	// Node is the cluster node the block is assigned to.
	Node int
	// Place is the storage tier.
	Place Placement
	// Bytes is the serialized size used by the cost model.
	Bytes int64
}

// NumRows returns the row count.
func (b *Block) NumRows() int {
	if b.Col != nil {
		return b.Col.N
	}
	return len(b.Rows)
}

// IsColumnar reports whether the block carries a columnar payload.
func (b *Block) IsColumnar() bool { return b.Col != nil }

// RowAt returns row i. For row blocks it aliases the stored row; for
// columnar blocks it materialises a fresh one. Callers must not mutate
// the result.
func (b *Block) RowAt(i int) types.Row {
	if b.Col != nil {
		return b.Col.Row(i)
	}
	return b.Rows[i]
}

// MetaAt returns row i's sampling metadata.
func (b *Block) MetaAt(i int) RowMeta {
	if b.Col != nil {
		return RowMeta{Rate: b.Col.RateAt(i), StratumFreq: b.Col.FreqAt(i)}
	}
	return b.Meta[i]
}

// ValueAt returns the value of column col in row i without materialising
// the row.
func (b *Block) ValueAt(i, col int) types.Value {
	if b.Col != nil {
		return b.Col.Cols[col].Value(i)
	}
	return b.Rows[i][col]
}

// RowKey renders the projection of row i onto the given schema indices —
// types.RowKey without materialising columnar rows.
func (b *Block) RowKey(i int, idx []int) string {
	if b.Col != nil {
		return b.Col.RowKey(i, idx)
	}
	return types.RowKey(b.Rows[i], idx)
}

// Table is a named collection of blocks sharing a schema.
type Table struct {
	Name   string
	Schema *types.Schema
	Blocks []*Block

	rows  int64
	bytes int64
}

// NewTable creates an empty table.
func NewTable(name string, schema *types.Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// AddBlock appends a block, assigning its ID, and updates totals.
func (t *Table) AddBlock(b *Block) {
	b.ID = len(t.Blocks)
	t.Blocks = append(t.Blocks, b)
	t.rows += int64(b.NumRows())
	t.bytes += b.Bytes
}

// NumRows returns the total number of rows.
func (t *Table) NumRows() int64 { return t.rows }

// Bytes returns the total serialized size.
func (t *Table) Bytes() int64 { return t.bytes }

// Scan calls fn for every row (with its metadata) in block order. Rows
// from columnar blocks are materialised fresh per call (safe to retain);
// rows from row blocks alias storage and must not be mutated.
func (t *Table) Scan(fn func(r types.Row, m RowMeta) bool) {
	for _, b := range t.Blocks {
		if d := b.Col; d != nil {
			for i := 0; i < d.N; i++ {
				if !fn(d.Row(i), b.MetaAt(i)) {
					return
				}
			}
			continue
		}
		for i, r := range b.Rows {
			if !fn(r, b.Meta[i]) {
				return
			}
		}
	}
}

// BlockRange is a half-open range [Lo, Hi) of positions in a block list —
// the unit of work the parallel executor hands to one worker.
type BlockRange struct {
	Lo, Hi int
}

// Len returns the number of blocks in the range.
func (r BlockRange) Len() int { return r.Hi - r.Lo }

// PartitionBlocks splits n blocks into at most maxParts contiguous,
// near-equal ranges. The partition depends only on n and maxParts — never
// on how many workers will consume it — so an executor that folds
// per-range partial aggregates in range order produces bit-identical
// results for any worker count (floating-point accumulation order is
// fixed by the partition, not the scheduling).
func PartitionBlocks(n, maxParts int) []BlockRange {
	if n <= 0 {
		return nil
	}
	parts := maxParts
	if parts <= 0 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]BlockRange, 0, parts)
	base, rem := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		sz := base
		if i < rem {
			sz++
		}
		out = append(out, BlockRange{Lo: lo, Hi: lo + sz})
		lo += sz
	}
	return out
}

// NodeShard is the unit of locality-aware scheduling: the set of scan
// ranges owned by one cluster node. A shard-affine executor hands each
// shard to one worker, so a worker reads (mostly) blocks that live on
// its node — the paper's HDFS layout of many small sample blocks striped
// across the cluster (§2.2.1) turns into per-node scan tasks instead of
// node-blind ones.
type NodeShard struct {
	// Node is the owning cluster node.
	Node int
	// Ranges indexes into the companion []BlockRange slice, ascending.
	// Every range appears in exactly one shard.
	Ranges []int
	// Bytes is the total physical size of the shard's ranges.
	Bytes int64
	// LocalBytes is the portion of Bytes residing on the owning node. A
	// range whose blocks straddle nodes makes LocalBytes < Bytes; the
	// difference is read across the network.
	LocalBytes int64
}

// PartitionBlocksByNode splits blocks into the SAME contiguous ranges as
// PartitionBlocks(len(blocks), maxParts) and groups them into per-node
// shards. Each range is owned by the node holding the most of its bytes
// (ties break to the lowest node id); a shard is one node's ranges, and
// shards are returned in ascending node order.
//
// The range boundaries deliberately never depend on placement: they are
// exactly PartitionBlocks's, so an executor that merges per-range
// partials in range order produces results bit-identical to the
// node-blind schedule — affinity changes WHICH worker scans a range,
// never how the ranges (and hence float accumulation) are laid out.
func PartitionBlocksByNode(blocks []*Block, maxParts int) ([]BlockRange, []NodeShard) {
	ranges := PartitionBlocks(len(blocks), maxParts)
	if len(ranges) == 0 {
		return nil, nil
	}
	shardIdx := make(map[int]int) // node → index into shards
	var shards []NodeShard
	var perNode map[int]int64 // reused per range
	for ri, r := range ranges {
		var total int64
		if perNode == nil {
			perNode = make(map[int]int64)
		} else {
			for k := range perNode {
				delete(perNode, k)
			}
		}
		for bi := r.Lo; bi < r.Hi; bi++ {
			b := blocks[bi]
			perNode[b.Node] += b.Bytes
			total += b.Bytes
		}
		// Owner: most bytes, ties to the lowest node id. The selection is
		// by comparison, so map iteration order cannot affect it.
		owner, ownerBytes, first := 0, int64(0), true
		for node, bytes := range perNode {
			if first || bytes > ownerBytes || (bytes == ownerBytes && node < owner) {
				owner, ownerBytes, first = node, bytes, false
			}
		}
		si, ok := shardIdx[owner]
		if !ok {
			si = len(shards)
			shardIdx[owner] = si
			shards = append(shards, NodeShard{Node: owner})
		}
		shards[si].Ranges = append(shards[si].Ranges, ri)
		shards[si].Bytes += total
		shards[si].LocalBytes += ownerBytes
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].Node < shards[j].Node })
	return ranges, shards
}

// LocalityHitRate returns the fraction of shard bytes a node-affine
// schedule reads locally (Σ LocalBytes / Σ Bytes); 1 when the shards
// carry no bytes (nothing to read remotely).
func LocalityHitRate(shards []NodeShard) float64 {
	var total, local int64
	for _, s := range shards {
		total += s.Bytes
		local += s.LocalBytes
	}
	if total == 0 {
		return 1
	}
	return float64(local) / float64(total)
}

// RemoteBytes returns the bytes a node-affine schedule must read across
// the network: Σ (Bytes − LocalBytes) over the shards.
func RemoteBytes(shards []NodeShard) int64 {
	var remote int64
	for _, s := range shards {
		remote += s.Bytes - s.LocalBytes
	}
	return remote
}

// EstimateRowBytes computes the approximate serialized size of a row:
// 8 bytes per numeric value, len+2 per string, 1 per bool/null. The cost
// model only needs relative sizes, so this is deliberately simple.
func EstimateRowBytes(r types.Row) int64 {
	var n int64
	for _, v := range r {
		switch v.Kind {
		case types.KindInt, types.KindFloat:
			n += 8
		case types.KindString:
			n += int64(len(v.S)) + 2
		default:
			n++
		}
	}
	return n
}

// Builder accumulates rows into fixed-size blocks, striping them
// round-robin across numNodes cluster nodes (HDFS-style block spread).
// The layout decides the physical block representation: RowLayout keeps
// []types.Row, ColumnarLayout encodes each flushed block into per-column
// typed slices (internal/colstore). Both layouts produce tables with
// identical logical content, block boundaries, zones and byte accounting,
// so query results are bit-identical across layouts.
type Builder struct {
	table        *Table
	rowsPerBlock int
	numNodes     int
	place        Placement
	layout       Layout

	curRows  []types.Row
	curMeta  []RowMeta
	curCol   *colstore.Builder
	curZones []Zone
	curByte  int64
	nextTgt  int

	// Encoding knobs forwarded to each block's colstore.Builder (which is
	// created lazily per block): sortedCols hints sorted/low-cardinality
	// columns, noRLE pins the pre-RLE plain typed encodings. Both are
	// purely physical — logical content is identical either way.
	sortedCols []int
	noRLE      bool
}

// NewBuilder creates a row-layout builder for the given table.
// rowsPerBlock controls block granularity; numNodes the round-robin
// striping width.
func NewBuilder(table *Table, rowsPerBlock, numNodes int, place Placement) *Builder {
	return NewBuilderLayout(table, rowsPerBlock, numNodes, place, RowLayout)
}

// NewBuilderLayout is NewBuilder with an explicit block layout.
func NewBuilderLayout(table *Table, rowsPerBlock, numNodes int, place Placement, layout Layout) *Builder {
	if rowsPerBlock <= 0 {
		rowsPerBlock = 8192
	}
	if numNodes <= 0 {
		numNodes = 1
	}
	return &Builder{table: table, rowsPerBlock: rowsPerBlock, numNodes: numNodes, place: place, layout: layout}
}

// HintSortedColumns marks columns as sorted (or low-cardinality-clustered)
// for the columnar encoder, lowering its run-length-encoding threshold for
// them. Sample builders hint the stratification columns, which are sorted
// within a stratum by construction. No-op under RowLayout.
func (b *Builder) HintSortedColumns(cols ...int) {
	b.sortedCols = append(b.sortedCols, cols...)
	if b.curCol != nil {
		b.curCol.HintSorted(cols...)
	}
}

// DisableRLE pins the plain typed encodings (no run-length encoding) —
// the benchmark and equivalence suites use it to build the pre-RLE
// physical design from identical input.
func (b *Builder) DisableRLE() {
	b.noRLE = true
	if b.curCol != nil {
		b.curCol.DisableRLE()
	}
}

// numCols returns the block width: the schema's width when known, else
// the first appended row's.
func (b *Builder) numCols(r types.Row) int {
	if b.table.Schema != nil {
		return b.table.Schema.Len()
	}
	return len(r)
}

// Append adds one row with its sampling metadata.
func (b *Builder) Append(r types.Row, m RowMeta) {
	if b.layout == ColumnarLayout {
		if b.curCol == nil {
			b.curCol = colstore.NewBuilder(b.numCols(r))
			if b.noRLE {
				b.curCol.DisableRLE()
			}
			if len(b.sortedCols) > 0 {
				b.curCol.HintSorted(b.sortedCols...)
			}
		}
		b.curCol.Append(r, m.Rate, m.StratumFreq)
	} else {
		b.curRows = append(b.curRows, r)
		b.curMeta = append(b.curMeta, m)
	}
	if b.curZones == nil {
		// Zones are sized from the schema, not the first row, so a narrow
		// leading row cannot silently disable zone maintenance for
		// trailing columns.
		b.curZones = make([]Zone, b.numCols(r))
	}
	for i, v := range r {
		if i < len(b.curZones) {
			b.curZones[i].Extend(v)
		}
	}
	b.curByte += EstimateRowBytes(r)
	if b.curLen() >= b.rowsPerBlock {
		b.flush()
	}
}

func (b *Builder) curLen() int {
	if b.curCol != nil {
		return b.curCol.Len()
	}
	return len(b.curRows)
}

// AppendRow adds an unsampled (rate-1) row.
func (b *Builder) AppendRow(r types.Row) { b.Append(r, RowMeta{Rate: 1}) }

// AppendTable copies every row of src (with its metadata) into the
// builder — the re-chunking path. When both the source block and this
// builder are columnar, rows are decoded through one reused buffer
// instead of a fresh allocation per row (safe: the columnar builder
// copies values out immediately and never retains the row slice).
func (b *Builder) AppendTable(src *Table) {
	var scratch types.Row
	for _, blk := range src.Blocks {
		n := blk.NumRows()
		if d := blk.Col; d != nil && b.layout == ColumnarLayout {
			if cap(scratch) < len(d.Cols) {
				scratch = make(types.Row, len(d.Cols))
			}
			for i := 0; i < n; i++ {
				b.Append(d.RowInto(scratch[:len(d.Cols)], i), blk.MetaAt(i))
			}
			continue
		}
		for i := 0; i < n; i++ {
			b.Append(blk.RowAt(i), blk.MetaAt(i))
		}
	}
}

func (b *Builder) flush() {
	if b.curLen() == 0 {
		return
	}
	blk := &Block{
		Zones: b.curZones,
		Node:  b.nextTgt % b.numNodes,
		Place: b.place,
		Bytes: b.curByte,
	}
	if b.curCol != nil {
		blk.Col = b.curCol.Finish()
		b.curCol = nil
	} else {
		blk.Rows = b.curRows
		blk.Meta = b.curMeta
		b.curRows = nil
		b.curMeta = nil
	}
	b.nextTgt++
	b.table.AddBlock(blk)
	b.curZones = nil
	b.curByte = 0
}

// Finish flushes any partial block and returns the table.
func (b *Builder) Finish() *Table {
	b.flush()
	return b.table
}

// SetPlacement moves every block of the table to the given tier. Used by
// experiments to compare cached vs uncached execution (Fig. 8(c)).
func SetPlacement(t *Table, p Placement) {
	for _, b := range t.Blocks {
		b.Place = p
	}
}

// Validate checks internal invariants: meta parity, byte accounting and
// node assignment ranges. Returns the first violation found.
func Validate(t *Table, numNodes int) error {
	var rows, bytes int64
	for _, b := range t.Blocks {
		if d := b.Col; d != nil {
			if len(b.Rows) != 0 || len(b.Meta) != 0 {
				return fmt.Errorf("block %d: carries both row and columnar payloads", b.ID)
			}
			for ci := range d.Cols {
				if got := d.Cols[ci].Len(); got != d.N {
					return fmt.Errorf("block %d: column %d length %d but %d rows", b.ID, ci, got, d.N)
				}
			}
			if d.Rates != nil && len(d.Rates) != d.N {
				return fmt.Errorf("block %d: %d rates but %d rows", b.ID, len(d.Rates), d.N)
			}
			if d.Freqs != nil && len(d.Freqs) != d.N {
				return fmt.Errorf("block %d: %d freqs but %d rows", b.ID, len(d.Freqs), d.N)
			}
		} else if len(b.Rows) != len(b.Meta) {
			return fmt.Errorf("block %d: %d rows but %d meta", b.ID, len(b.Rows), len(b.Meta))
		}
		if numNodes > 0 && (b.Node < 0 || b.Node >= numNodes) {
			return fmt.Errorf("block %d: node %d out of range [0,%d)", b.ID, b.Node, numNodes)
		}
		for i, n := 0, b.NumRows(); i < n; i++ {
			if r := b.MetaAt(i).Rate; r <= 0 || r > 1 {
				return fmt.Errorf("block %d row %d: rate %g out of (0,1]", b.ID, i, r)
			}
		}
		rows += int64(b.NumRows())
		bytes += b.Bytes
	}
	if rows != t.rows {
		return fmt.Errorf("row accounting: blocks have %d, table says %d", rows, t.rows)
	}
	if bytes != t.bytes {
		return fmt.Errorf("byte accounting: blocks have %d, table says %d", bytes, t.bytes)
	}
	return nil
}
