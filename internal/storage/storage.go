// Package storage provides the block-oriented table store underlying
// BlinkDB-Go. A Table is a bag of Blocks; each block holds a contiguous
// run of rows, carries per-row effective sampling rates (1.0 for base
// tables), and has a physical placement: the simulated cluster node it
// lives on and whether it is resident in memory or on disk.
//
// This mirrors the paper's HDFS layout (§2.2.1 "Storage optimization" and
// Fig. 4): samples are split into many small blocks spread across nodes,
// and multi-resolution samples map to non-overlapping block sets.
package storage

import (
	"fmt"

	"blinkdb/internal/types"
)

// Placement says where a block physically resides.
type Placement uint8

const (
	// OnDisk blocks are read at disk bandwidth.
	OnDisk Placement = iota
	// InMemory blocks are read at memory bandwidth.
	InMemory
)

// String renders the placement.
func (p Placement) String() string {
	if p == InMemory {
		return "memory"
	}
	return "disk"
}

// RowMeta carries per-row sampling metadata used for the §4.3 bias
// correction. Base-table rows have Rate 1 and StratumFreq 0.
type RowMeta struct {
	// Rate is the effective sampling rate in (0, 1] for rows whose rate
	// is fixed at build time (uniform samples, base tables).
	Rate float64
	// StratumFreq, when positive, records F(φ,T,x): the base-table
	// frequency of this row's stratum. Stratified-family rows derive
	// their per-resolution rate as min(1, K/StratumFreq) at query time,
	// because the same physical row serves several resolutions with
	// different caps (non-overlapping delta storage, Fig. 4).
	StratumFreq int64
}

// Zone is a per-block min/max summary of one column (a zone map). Blocks
// whose zone cannot intersect a predicate's bounds are skipped entirely —
// this is how the §3.1 clustered layout ("records with the same or
// consecutive x values are stored contiguously") turns into I/O savings.
type Zone struct {
	// Min and Max bound the column's values within the block.
	Min, Max types.Value
	// Valid is false until the first row is recorded.
	Valid bool
}

// Extend widens the zone to include v.
func (z *Zone) Extend(v types.Value) {
	if !z.Valid {
		z.Min, z.Max, z.Valid = v, v, true
		return
	}
	if types.Compare(v, z.Min) < 0 {
		z.Min = v
	}
	if types.Compare(v, z.Max) > 0 {
		z.Max = v
	}
}

// Block is a contiguous run of rows with shared placement.
type Block struct {
	// ID is unique within a Table.
	ID int
	// Rows holds the data.
	Rows []types.Row
	// Meta[i] describes Rows[i]. len(Meta) == len(Rows).
	Meta []RowMeta
	// Zones[i] summarises column i across the block's rows.
	Zones []Zone
	// Node is the cluster node the block is assigned to.
	Node int
	// Place is the storage tier.
	Place Placement
	// Bytes is the serialized size used by the cost model.
	Bytes int64
}

// NumRows returns the row count.
func (b *Block) NumRows() int { return len(b.Rows) }

// Table is a named collection of blocks sharing a schema.
type Table struct {
	Name   string
	Schema *types.Schema
	Blocks []*Block

	rows  int64
	bytes int64
}

// NewTable creates an empty table.
func NewTable(name string, schema *types.Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// AddBlock appends a block, assigning its ID, and updates totals.
func (t *Table) AddBlock(b *Block) {
	b.ID = len(t.Blocks)
	t.Blocks = append(t.Blocks, b)
	t.rows += int64(len(b.Rows))
	t.bytes += b.Bytes
}

// NumRows returns the total number of rows.
func (t *Table) NumRows() int64 { return t.rows }

// Bytes returns the total serialized size.
func (t *Table) Bytes() int64 { return t.bytes }

// Scan calls fn for every row (with its metadata) in block order.
// It is the sequential access path used by the executor.
func (t *Table) Scan(fn func(r types.Row, m RowMeta) bool) {
	for _, b := range t.Blocks {
		for i, r := range b.Rows {
			if !fn(r, b.Meta[i]) {
				return
			}
		}
	}
}

// BlockRange is a half-open range [Lo, Hi) of positions in a block list —
// the unit of work the parallel executor hands to one worker.
type BlockRange struct {
	Lo, Hi int
}

// Len returns the number of blocks in the range.
func (r BlockRange) Len() int { return r.Hi - r.Lo }

// PartitionBlocks splits n blocks into at most maxParts contiguous,
// near-equal ranges. The partition depends only on n and maxParts — never
// on how many workers will consume it — so an executor that folds
// per-range partial aggregates in range order produces bit-identical
// results for any worker count (floating-point accumulation order is
// fixed by the partition, not the scheduling).
func PartitionBlocks(n, maxParts int) []BlockRange {
	if n <= 0 {
		return nil
	}
	parts := maxParts
	if parts <= 0 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]BlockRange, 0, parts)
	base, rem := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		sz := base
		if i < rem {
			sz++
		}
		out = append(out, BlockRange{Lo: lo, Hi: lo + sz})
		lo += sz
	}
	return out
}

// EstimateRowBytes computes the approximate serialized size of a row:
// 8 bytes per numeric value, len+2 per string, 1 per bool/null. The cost
// model only needs relative sizes, so this is deliberately simple.
func EstimateRowBytes(r types.Row) int64 {
	var n int64
	for _, v := range r {
		switch v.Kind {
		case types.KindInt, types.KindFloat:
			n += 8
		case types.KindString:
			n += int64(len(v.S)) + 2
		default:
			n++
		}
	}
	return n
}

// Builder accumulates rows into fixed-size blocks, striping them
// round-robin across numNodes cluster nodes (HDFS-style block spread).
type Builder struct {
	table        *Table
	rowsPerBlock int
	numNodes     int
	place        Placement

	curRows  []types.Row
	curMeta  []RowMeta
	curZones []Zone
	curByte  int64
	nextTgt  int
}

// NewBuilder creates a builder for the given table. rowsPerBlock controls
// block granularity; numNodes the round-robin striping width.
func NewBuilder(table *Table, rowsPerBlock, numNodes int, place Placement) *Builder {
	if rowsPerBlock <= 0 {
		rowsPerBlock = 8192
	}
	if numNodes <= 0 {
		numNodes = 1
	}
	return &Builder{table: table, rowsPerBlock: rowsPerBlock, numNodes: numNodes, place: place}
}

// Append adds one row with its sampling metadata.
func (b *Builder) Append(r types.Row, m RowMeta) {
	b.curRows = append(b.curRows, r)
	b.curMeta = append(b.curMeta, m)
	if b.curZones == nil {
		b.curZones = make([]Zone, len(r))
	}
	for i, v := range r {
		if i < len(b.curZones) {
			b.curZones[i].Extend(v)
		}
	}
	b.curByte += EstimateRowBytes(r)
	if len(b.curRows) >= b.rowsPerBlock {
		b.flush()
	}
}

// AppendRow adds an unsampled (rate-1) row.
func (b *Builder) AppendRow(r types.Row) { b.Append(r, RowMeta{Rate: 1}) }

func (b *Builder) flush() {
	if len(b.curRows) == 0 {
		return
	}
	blk := &Block{
		Rows:  b.curRows,
		Meta:  b.curMeta,
		Zones: b.curZones,
		Node:  b.nextTgt % b.numNodes,
		Place: b.place,
		Bytes: b.curByte,
	}
	b.nextTgt++
	b.table.AddBlock(blk)
	b.curRows = nil
	b.curMeta = nil
	b.curZones = nil
	b.curByte = 0
}

// Finish flushes any partial block and returns the table.
func (b *Builder) Finish() *Table {
	b.flush()
	return b.table
}

// SetPlacement moves every block of the table to the given tier. Used by
// experiments to compare cached vs uncached execution (Fig. 8(c)).
func SetPlacement(t *Table, p Placement) {
	for _, b := range t.Blocks {
		b.Place = p
	}
}

// Validate checks internal invariants: meta parity, byte accounting and
// node assignment ranges. Returns the first violation found.
func Validate(t *Table, numNodes int) error {
	var rows, bytes int64
	for _, b := range t.Blocks {
		if len(b.Rows) != len(b.Meta) {
			return fmt.Errorf("block %d: %d rows but %d meta", b.ID, len(b.Rows), len(b.Meta))
		}
		if numNodes > 0 && (b.Node < 0 || b.Node >= numNodes) {
			return fmt.Errorf("block %d: node %d out of range [0,%d)", b.ID, b.Node, numNodes)
		}
		for i, m := range b.Meta {
			if m.Rate <= 0 || m.Rate > 1 {
				return fmt.Errorf("block %d row %d: rate %g out of (0,1]", b.ID, i, m.Rate)
			}
		}
		rows += int64(len(b.Rows))
		bytes += b.Bytes
	}
	if rows != t.rows {
		return fmt.Errorf("row accounting: blocks have %d, table says %d", rows, t.rows)
	}
	if bytes != t.bytes {
		return fmt.Errorf("byte accounting: blocks have %d, table says %d", bytes, t.bytes)
	}
	return nil
}
