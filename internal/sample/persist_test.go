package sample

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"blinkdb/internal/blockfile"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// TestFamilyPersistRoundTrip: build → persist → load must reconstruct
// the family exactly — descriptor fields, per-delta content, per-view
// effective rates — so a warm-booted engine answers bit-identically.
func TestFamilyPersistRoundTrip(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "x", Kind: types.KindFloat},
	)
	base := storage.NewTable("base", schema)
	bld := storage.NewBuilderLayout(base, 128, 2, storage.InMemory, storage.ColumnarLayout)
	for r := 0; r < 3000; r++ {
		bld.Append(types.Row{
			types.Str(fmt.Sprintf("c%d", r%(1+r%37))),
			types.Float(float64(r) * 0.25),
		}, storage.RowMeta{Rate: 1})
	}
	bld.Finish()

	fam, err := Build(base, types.NewColumnSet("city"), []int64{10, 40, 160}, BuildConfig{
		RowsPerBlock: 64, Nodes: 2, Place: storage.InMemory,
		Layout: storage.ColumnarLayout, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "fam.seg")
	if err := blockfile.WriteSegment(path, func(w *blockfile.Writer) error {
		return WriteFamily(w, fam)
	}); err != nil {
		t.Fatal(err)
	}
	seg, err := blockfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	got, err := ReadFamily(seg)
	if err != nil {
		t.Fatal(err)
	}

	if !got.Phi.Equal(fam.Phi) || !reflect.DeepEqual(got.Caps, fam.Caps) {
		t.Fatalf("identity mismatch: %v/%v vs %v/%v", got.Phi, got.Caps, fam.Phi, fam.Caps)
	}
	if got.BaseRows() != fam.BaseRows() || got.NumStrata() != fam.NumStrata() ||
		got.TailCount() != fam.TailCount() {
		t.Fatalf("descriptor stats mismatch: %d/%d/%d vs %d/%d/%d",
			got.BaseRows(), got.NumStrata(), got.TailCount(),
			fam.BaseRows(), fam.NumStrata(), fam.TailCount())
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("loaded family fails validation: %v", err)
	}
	for level := 0; level < fam.Resolutions(); level++ {
		type rr struct {
			row  string
			rate float64
		}
		collect := func(v View) []rr {
			var out []rr
			v.Scan(func(r types.Row, rate float64) bool {
				out = append(out, rr{types.RowKey(r, []int{0, 1}), rate})
				return true
			})
			return out
		}
		want := collect(fam.View(level))
		have := collect(got.View(level))
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("level %d scan differs (%d vs %d rows)", level, len(want), len(have))
		}
	}
	if got.StorageBytes() != fam.StorageBytes() || got.StorageRows() != fam.StorageRows() {
		t.Fatalf("storage totals differ: %d/%d vs %d/%d",
			got.StorageBytes(), got.StorageRows(), fam.StorageBytes(), fam.StorageRows())
	}
}
