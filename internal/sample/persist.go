package sample

import (
	"fmt"

	"blinkdb/internal/blockfile"
	"blinkdb/internal/types"
)

// Persistence: a family serializes into one blockfile segment — the
// delta tables in resolution order plus a "family" metadata blob
// carrying what the table data cannot reconstruct (φ, caps, base-table
// row count, stratum and tail counts). The segment is the §3 offline
// artifact made durable: a restarted engine loads it instead of
// re-running the two-pass stratification, and because sampling is
// seeded-deterministic the loaded family answers bit-identically to
// the one that was built.

// familyMetaKey names the family descriptor blob inside a segment.
const familyMetaKey = "family"

// WriteFamily serializes fam into w (descriptor blob + one table per
// delta). One family per segment: ReadFamily reads the whole segment
// back.
func WriteFamily(w *blockfile.Writer, fam *Family) error {
	var e blockfile.Enc
	e.U32(uint32(fam.Phi.Len()))
	for _, c := range fam.Phi.Columns() {
		e.Str(c)
	}
	e.U32(uint32(len(fam.Caps)))
	for _, k := range fam.Caps {
		e.I64(k)
	}
	e.I64(fam.baseRows)
	e.I64(fam.numStrata)
	e.I64(fam.tailCount)
	e.U32(uint32(len(fam.Deltas)))
	w.PutMeta(familyMetaKey, e.Bytes())
	for _, d := range fam.Deltas {
		if err := w.AddTable(d); err != nil {
			return err
		}
	}
	return nil
}

// ReadFamily reconstructs the family stored in seg. Structural
// invariants are validated (delta count vs caps, shared schema), but
// statistical validity is the caller's concern: the engine only loads
// a family segment whose build signature matches what it would build.
func ReadFamily(seg *blockfile.Segment) (*Family, error) {
	blob, ok := seg.Meta(familyMetaKey)
	if !ok {
		return nil, fmt.Errorf("sample: segment has no %q descriptor", familyMetaKey)
	}
	d := blockfile.NewDec(blob)
	ncols := d.Count(1)
	cols := make([]string, ncols)
	for i := range cols {
		cols[i] = d.Str()
	}
	ncaps := d.Count(8)
	caps := make([]int64, ncaps)
	for i := range caps {
		caps[i] = d.I64()
	}
	fam := &Family{
		Phi:  types.NewColumnSet(cols...),
		Caps: caps,
	}
	fam.baseRows = d.I64()
	fam.numStrata = d.I64()
	fam.tailCount = d.I64()
	ndeltas := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("sample: family descriptor: %w", err)
	}
	if ncaps == 0 || ndeltas != ncaps {
		return nil, fmt.Errorf("sample: descriptor has %d deltas for %d caps", ndeltas, ncaps)
	}
	for i := 1; i < len(caps); i++ {
		if caps[i] < caps[i-1] {
			return nil, fmt.Errorf("sample: persisted caps not ascending: %v", caps)
		}
	}
	if seg.NumTables() != ndeltas {
		return nil, fmt.Errorf("sample: segment holds %d tables, descriptor says %d deltas",
			seg.NumTables(), ndeltas)
	}
	for i := 0; i < ndeltas; i++ {
		t, err := seg.Table(i)
		if err != nil {
			return nil, err
		}
		if fam.schema == nil {
			fam.schema = t.Schema
		} else if t.Schema.String() != fam.schema.String() {
			return nil, fmt.Errorf("sample: delta %d schema %s differs from %s",
				i, t.Schema, fam.schema)
		} else {
			// Deltas share one schema object, as they do when built.
			t.Schema = fam.schema
		}
		fam.Deltas = append(fam.Deltas, t)
	}
	for _, c := range cols {
		if fam.schema.Index(c) < 0 {
			return nil, fmt.Errorf("sample: stratification column %q missing from schema %s", c, fam.schema)
		}
	}
	return fam, nil
}
