package sample

import (
	"math"
	"math/rand"
	"testing"

	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

func sessionsSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "os", Kind: types.KindString},
		types.Column{Name: "time", Kind: types.KindFloat},
	)
}

// skewedTable builds a table where city frequencies are highly skewed:
// city-0 has many rows, later cities exponentially fewer.
func skewedTable(t testing.TB, perCity []int) *storage.Table {
	t.Helper()
	tab := storage.NewTable("sessions", sessionsSchema())
	b := storage.NewBuilder(tab, 64, 4, storage.OnDisk)
	rng := rand.New(rand.NewSource(99))
	oses := []string{"Win7", "OSX", "Linux"}
	for ci, n := range perCity {
		for i := 0; i < n; i++ {
			b.AppendRow(types.Row{
				types.Str(cityName(ci)),
				types.Str(oses[rng.Intn(3)]),
				types.Float(rng.Float64() * 100),
			})
		}
	}
	return b.Finish()
}

func cityName(i int) string { return string(rune('A'+i%26)) + "city" }

func TestGeometricCaps(t *testing.T) {
	caps := GeometricCaps(1000, 10, 3, 1)
	want := []int64{10, 100, 1000}
	if len(caps) != 3 {
		t.Fatalf("caps = %v", caps)
	}
	for i := range want {
		if caps[i] != want[i] {
			t.Errorf("caps[%d] = %d, want %d", i, caps[i], want[i])
		}
	}
	// minCap truncates the sequence.
	caps = GeometricCaps(1000, 10, 5, 50)
	if len(caps) != 2 || caps[0] != 100 {
		t.Errorf("minCap caps = %v", caps)
	}
	// c ≤ 1 defaults to 2.
	caps = GeometricCaps(8, 0, 3, 1)
	if len(caps) != 3 || caps[0] != 2 || caps[2] != 8 {
		t.Errorf("default-c caps = %v", caps)
	}
}

func TestBuildStratifiedCapsFrequencies(t *testing.T) {
	// Cities with frequencies 1000, 100, 10, 1; cap K=50.
	tab := skewedTable(t, []int{1000, 100, 10, 1})
	fam, err := Build(tab, types.NewColumnSet("city"), []int64{5, 50}, BuildConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.Validate(); err != nil {
		t.Fatal(err)
	}
	if fam.NumStrata() != 4 {
		t.Errorf("strata = %d", fam.NumStrata())
	}
	// Δ(φ) with K1=50: cities with freq < 50 are those with 10 and 1.
	if fam.TailCount() != 2 {
		t.Errorf("tail count = %d, want 2", fam.TailCount())
	}
	// Largest sample: min(1000,50)+min(100,50)+10+1 = 111 rows.
	if got := fam.Largest().Rows(); got != 111 {
		t.Errorf("largest rows = %d, want 111", got)
	}
	// Smallest: min at cap 5: 5+5+5+1 = 16.
	if got := fam.Smallest().Rows(); got != 16 {
		t.Errorf("smallest rows = %d, want 16", got)
	}
	// Deltas are non-overlapping: total physical = largest resolution.
	if fam.StorageRows() != fam.Largest().Rows() {
		t.Errorf("physical rows %d != largest view %d", fam.StorageRows(), fam.Largest().Rows())
	}
}

func TestViewRates(t *testing.T) {
	tab := skewedTable(t, []int{1000, 10})
	fam, err := Build(tab, types.NewColumnSet("city"), []int64{5, 100}, BuildConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	small, large := fam.View(0), fam.View(1)
	// City A (freq 1000): rate 5/1000 at K=5, 100/1000 at K=100.
	// City B (freq 10): rate 5/10 at K=5, exact (1.0) at K=100.
	rates := map[string]map[string]float64{} // view -> city -> rate
	for _, v := range []View{small, large} {
		m := map[string]float64{}
		v.Scan(func(r types.Row, rate float64) bool {
			m[r[0].S] = rate
			return true
		})
		rates[v.String()] = m
	}
	if got := rates[small.String()]["Acity"]; math.Abs(got-0.005) > 1e-12 {
		t.Errorf("small Acity rate = %g, want 0.005", got)
	}
	if got := rates[small.String()]["Bcity"]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("small Bcity rate = %g, want 0.5", got)
	}
	if got := rates[large.String()]["Acity"]; math.Abs(got-0.1) > 1e-12 {
		t.Errorf("large Acity rate = %g, want 0.1", got)
	}
	if got := rates[large.String()]["Bcity"]; got != 1.0 {
		t.Errorf("large Bcity rate = %g, want exact 1.0", got)
	}
}

func TestNestingProperty(t *testing.T) {
	// Every row of a smaller view must appear in every larger view
	// (samples are nested subsets, §3.1 / Fig. 3).
	tab := skewedTable(t, []int{500, 80, 7})
	fam, err := Build(tab, types.NewColumnSet("city"), []int64{3, 30, 300}, BuildConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.Validate(); err != nil {
		t.Fatal(err)
	}
	for lvl := 0; lvl < fam.Resolutions()-1; lvl++ {
		smallRows := fam.View(lvl).Rows()
		largeRows := fam.View(lvl + 1).Rows()
		if smallRows > largeRows {
			t.Errorf("level %d (%d rows) larger than level %d (%d rows)",
				lvl, smallRows, lvl+1, largeRows)
		}
	}
	// DeltaBlocks(smaller) + smaller.Blocks == larger.Blocks exactly.
	small, large := fam.View(0), fam.View(2)
	delta := large.DeltaBlocks(small)
	if len(small.Blocks())+len(delta) != len(large.Blocks()) {
		t.Errorf("delta reuse mismatch: %d + %d != %d",
			len(small.Blocks()), len(delta), len(large.Blocks()))
	}
}

func TestHTEstimateUnbiasedFromStratified(t *testing.T) {
	// COUNT per city via 1/rate weights must equal the true counts in
	// expectation; for strata under the cap it is exact.
	perCity := []int{2000, 300, 40, 6}
	tab := skewedTable(t, perCity)
	fam, err := Build(tab, types.NewColumnSet("city"), []int64{50}, BuildConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	fam.View(0).Scan(func(r types.Row, rate float64) bool {
		got[r[0].S] += 1 / rate
		return true
	})
	for ci, n := range perCity {
		name := cityName(ci)
		if math.Abs(got[name]-float64(n)) > 1e-6 {
			t.Errorf("city %s: HT count %g, want exactly %d (rate = K/F is deterministic)",
				name, got[name], n)
		}
	}
}

func TestUniformFamily(t *testing.T) {
	tab := skewedTable(t, []int{1000})
	fam, err := BuildUniform(tab, []int64{10, 100}, BuildConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !fam.IsUniform() {
		t.Error("should be uniform")
	}
	if got := fam.View(0).Rows(); got != 10 {
		t.Errorf("small uniform rows = %d", got)
	}
	if got := fam.View(1).Rows(); got != 100 {
		t.Errorf("large uniform rows = %d", got)
	}
	// Rates: 10/1000 and 100/1000.
	fam.View(0).Scan(func(r types.Row, rate float64) bool {
		if math.Abs(rate-0.01) > 1e-12 {
			t.Fatalf("uniform small rate = %g", rate)
		}
		return true
	})
	fam.View(1).Scan(func(r types.Row, rate float64) bool {
		if math.Abs(rate-0.1) > 1e-12 {
			t.Fatalf("uniform large rate = %g", rate)
		}
		return true
	})
}

func TestMultiColumnStratification(t *testing.T) {
	tab := skewedTable(t, []int{400, 100})
	fam, err := Build(tab, types.NewColumnSet("city", "os"), []int64{20}, BuildConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.Validate(); err != nil {
		t.Fatal(err)
	}
	// Strata = city × os combinations present (≤ 2×3).
	if fam.NumStrata() < 4 || fam.NumStrata() > 6 {
		t.Errorf("strata = %d, want 4..6", fam.NumStrata())
	}
	// Each (city, os) stratum is capped at 20.
	counts := map[string]int{}
	fam.View(0).Scan(func(r types.Row, rate float64) bool {
		counts[r[0].S+"|"+r[1].S]++
		return true
	})
	for k, n := range counts {
		if n > 20 {
			t.Errorf("stratum %s has %d rows > cap 20", k, n)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	tab := skewedTable(t, []int{10})
	if _, err := Build(tab, types.NewColumnSet("city"), nil, BuildConfig{}); err == nil {
		t.Error("no caps should error")
	}
	if _, err := Build(tab, types.NewColumnSet("city"), []int64{10, 5}, BuildConfig{}); err == nil {
		t.Error("descending caps should error")
	}
	if _, err := Build(tab, types.NewColumnSet("bogus"), []int64{5}, BuildConfig{}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestViewClamping(t *testing.T) {
	tab := skewedTable(t, []int{100})
	fam, _ := Build(tab, types.NewColumnSet("city"), []int64{5, 50}, BuildConfig{})
	if fam.View(-1).Level != 0 {
		t.Error("negative level should clamp to 0")
	}
	if fam.View(99).Level != 1 {
		t.Error("overlarge level should clamp to max")
	}
	if fam.Smallest().Level != 0 || fam.Largest().Level != 1 {
		t.Error("Smallest/Largest wrong")
	}
	if fam.String() == "" || fam.View(0).String() == "" {
		t.Error("String empty")
	}
}

func TestDeterministicBuild(t *testing.T) {
	tab := skewedTable(t, []int{500, 50})
	f1, _ := Build(tab, types.NewColumnSet("city"), []int64{10}, BuildConfig{Seed: 7})
	f2, _ := Build(tab, types.NewColumnSet("city"), []int64{10}, BuildConfig{Seed: 7})
	var r1, r2 []float64
	f1.View(0).Scan(func(r types.Row, _ float64) bool { r1 = append(r1, r[2].F); return true })
	f2.View(0).Scan(func(r types.Row, _ float64) bool { r2 = append(r2, r[2].F); return true })
	if len(r1) != len(r2) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("same seed must give identical samples")
		}
	}
}

func TestSampledSubsetUnbiasedMean(t *testing.T) {
	// The capped stratum's rows are a uniform random subset, so the mean
	// of the sampled time values should approximate the stratum mean.
	tab := storage.NewTable("s", sessionsSchema())
	b := storage.NewBuilder(tab, 64, 1, storage.OnDisk)
	rng := rand.New(rand.NewSource(12))
	truth := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := rng.Float64() * 100
		truth += v
		b.AppendRow(types.Row{types.Str("A"), types.Str("x"), types.Float(v)})
	}
	b.Finish()
	truth /= n
	fam, err := Build(tab, types.NewColumnSet("city"), []int64{2000}, BuildConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sum, cnt := 0.0, 0
	fam.View(0).Scan(func(r types.Row, rate float64) bool {
		if math.Abs(rate-0.1) > 1e-12 {
			t.Fatalf("rate = %g, want 0.1", rate)
		}
		sum += r[2].F
		cnt++
		return true
	})
	if cnt != 2000 {
		t.Fatalf("sample rows = %d", cnt)
	}
	mean := sum / float64(cnt)
	if math.Abs(mean-truth) > 2.5 { // ~3σ for uniform(0,100)/√2000
		t.Errorf("sample mean %.2f vs truth %.2f", mean, truth)
	}
}

func BenchmarkBuildStratified(b *testing.B) {
	tab := skewedTable(b, []int{50000, 5000, 500, 50, 5})
	phi := types.NewColumnSet("city")
	caps := GeometricCaps(1000, 10, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(tab, phi, caps, BuildConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
