package sample

import (
	"math"
	"math/rand"
	"testing"
)

// TestLemmaA1CapFactor property-checks the structural core of Lemma A.1:
// for a geometric cap family with ratio c, for every feasible optimal cap
// Kopt the smallest family cap K' ≥ Kopt satisfies K' < c·Kopt + 1 — so an
// I/O-bound query pays at most a factor c + 1/Kopt in response time over
// the optimal-sized sample.
func TestLemmaA1CapFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		c := 2 + rng.Float64()*6 // ratio in [2, 8)
		k1 := int64(1000 + rng.Intn(1000000))
		m := 2 + rng.Intn(6)
		caps := GeometricCaps(k1, c, m, 1)
		if len(caps) < 2 {
			continue
		}
		// Draw Kopt within the family's representable range.
		lo, hi := caps[0], caps[len(caps)-1]
		kopt := lo + int64(rng.Float64()*float64(hi-lo))
		if kopt < 1 {
			kopt = 1
		}
		// Smallest cap ≥ Kopt.
		var kPrime int64 = -1
		for _, k := range caps {
			if k >= kopt {
				kPrime = k
				break
			}
		}
		if kPrime < 0 {
			continue // Kopt above K1: family cannot satisfy, out of scope
		}
		bound := c*float64(kopt) + 1
		if float64(kPrime) >= bound+1e-9 {
			t.Fatalf("trial %d: c=%.2f caps=%v Kopt=%d: K'=%d ≥ c·Kopt+1=%.1f",
				trial, c, caps, kopt, kPrime, bound)
		}
	}
}

// TestLemmaA2CapFactor checks Lemma A.2's structural core: the largest
// family cap K” ≤ Kopt satisfies K” > Kopt/c − 1, so a time-bounded
// query's standard deviation grows by at most 1/√(1/c − 1/Kopt).
func TestLemmaA2CapFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		c := 2 + rng.Float64()*6
		k1 := int64(1000 + rng.Intn(1000000))
		m := 2 + rng.Intn(6)
		caps := GeometricCaps(k1, c, m, 1)
		if len(caps) < 2 {
			continue
		}
		lo, hi := caps[0], caps[len(caps)-1]
		kopt := lo + int64(rng.Float64()*float64(hi-lo))
		var kDouble int64 = -1
		for i := len(caps) - 1; i >= 0; i-- {
			if caps[i] <= kopt {
				kDouble = caps[i]
				break
			}
		}
		if kDouble < 0 {
			continue
		}
		bound := float64(kopt)/c - 1
		if float64(kDouble) <= bound-1e-9 {
			t.Fatalf("trial %d: c=%.2f caps=%v Kopt=%d: K''=%d ≤ Kopt/c−1=%.1f",
				trial, c, caps, kopt, kDouble, bound)
		}
	}
}

// TestLemmaA2StdErrFactor verifies the statistical consequence empirically:
// answering from the next-smaller resolution inflates the standard error by
// at most ~√c relative to the optimal cap (stderr ∝ 1/√n for capped
// strata).
func TestLemmaA2StdErrFactor(t *testing.T) {
	// stderr(K'')/stderr(Kopt) = √(Kopt/K'') < √(c·Kopt/(Kopt−c)) → ~√c
	// for Kopt ≫ c. Check the ratio bound numerically across the ladder.
	for _, c := range []float64{2, 4} {
		caps := GeometricCaps(1<<20, c, 8, 1)
		for i := 1; i < len(caps); i++ {
			kopt := caps[i]
			kDouble := caps[i-1]
			ratio := math.Sqrt(float64(kopt) / float64(kDouble))
			limit := 1 / math.Sqrt(1/c-1/float64(kopt))
			if ratio > limit+1e-9 {
				t.Errorf("c=%g: stderr ratio %.4f exceeds lemma bound %.4f (Kopt=%d)",
					c, ratio, limit, kopt)
			}
		}
	}
}
