// Package sample implements BlinkDB's sample creation machinery (§3.1):
// stratified samples S(φ,K) that cap the frequency of every distinct value
// of a column set φ at K, organised into multi-resolution families
// SFam(φ) = {S(φ,Ki)} with exponentially decreasing caps Ki = ⌊K1/cⁱ⌋.
//
// Families are stored physically as NON-OVERLAPPING delta block sets
// (paper Fig. 4): the smallest sample is delta 0; each coarser resolution
// adds delta i. A sample at resolution i is the union of deltas 0..i, so a
// family costs only as much storage as its largest member, and a query
// that probed resolution 0 can be extended to resolution i by reading only
// the missing deltas (§4.4 intermediate-data reuse).
//
// Uniform samples are the φ = ∅ special case: a single stratum containing
// every row, capped at the desired sample size.
package sample

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// BuildConfig controls physical layout of built samples.
type BuildConfig struct {
	// RowsPerBlock is the block granularity (default 8192).
	RowsPerBlock int
	// Nodes is the striping width for round-robin block placement.
	Nodes int
	// Place is the storage tier for the blocks.
	Place storage.Placement
	// Layout is the physical block representation (row or columnar).
	// Sampling is layout-transparent: the same seed draws the same rows
	// either way, and query results are bit-identical across layouts.
	Layout storage.Layout
	// Seed makes sampling deterministic.
	Seed int64
}

func (c BuildConfig) normalize() BuildConfig {
	if c.RowsPerBlock <= 0 {
		c.RowsPerBlock = 8192
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	return c
}

// Family is a multi-resolution sample family SFam(φ).
type Family struct {
	// Phi is the stratification column set; empty for uniform families.
	Phi types.ColumnSet
	// Caps holds the per-resolution frequency caps in ascending order:
	// Caps[0] is the smallest (probe) sample, Caps[len-1] is K1.
	Caps []int64
	// Deltas[i] holds the rows added when moving from resolution i-1 to
	// i; Deltas[0] is the smallest sample itself. Rows carry
	// StratumFreq metadata so per-resolution rates can be derived.
	Deltas []*storage.Table

	schema    *types.Schema
	baseRows  int64
	numStrata int64
	// tailCount is Δ(φ) relative to the largest cap: the number of
	// distinct φ-values with frequency < K1 (§3.2.1 non-uniformity).
	tailCount int64
}

// Resolutions returns the number of resolutions in the family.
func (f *Family) Resolutions() int { return len(f.Caps) }

// Schema returns the sampled table's schema.
func (f *Family) Schema() *types.Schema { return f.schema }

// BaseRows returns the row count of the table the family was built from.
func (f *Family) BaseRows() int64 { return f.baseRows }

// NumStrata returns |D(φ)|, the number of distinct values of φ.
func (f *Family) NumStrata() int64 { return f.numStrata }

// TailCount returns Δ(φ) = |{v : F(φ,T,v) < K1}|.
func (f *Family) TailCount() int64 { return f.tailCount }

// IsUniform reports whether this is the uniform (φ = ∅) family.
func (f *Family) IsUniform() bool { return f.Phi.Empty() }

// StorageBytes returns the family's physical footprint — the size of the
// largest sample only, since smaller resolutions share its blocks.
func (f *Family) StorageBytes() int64 {
	var n int64
	for _, d := range f.Deltas {
		n += d.Bytes()
	}
	return n
}

// StorageRows returns the row count of the largest sample.
func (f *Family) StorageRows() int64 {
	var n int64
	for _, d := range f.Deltas {
		n += d.NumRows()
	}
	return n
}

// View returns the sample at the given resolution (0 = smallest).
func (f *Family) View(level int) View {
	if level < 0 {
		level = 0
	}
	if level >= len(f.Caps) {
		level = len(f.Caps) - 1
	}
	return View{Family: f, Level: level}
}

// Smallest returns the probe resolution.
func (f *Family) Smallest() View { return f.View(0) }

// Largest returns the highest-fidelity resolution.
func (f *Family) Largest() View { return f.View(len(f.Caps) - 1) }

// Label names the family for display: its column set, or "uniform" —
// the uniform family's column set is empty and would render as an empty
// set otherwise.
func (f *Family) Label() string {
	if f.IsUniform() {
		return "uniform"
	}
	return f.Phi.String()
}

// String renders e.g. "SFam([city], K=100..100000, 4 resolutions)".
func (f *Family) String() string {
	if f.IsUniform() {
		return fmt.Sprintf("SFam(uniform, %d resolutions)", len(f.Caps))
	}
	return fmt.Sprintf("SFam(%s, K=%d..%d, %d resolutions)",
		f.Phi, f.Caps[0], f.Caps[len(f.Caps)-1], len(f.Caps))
}

// View is one sample S(φ, Caps[Level]) of a family: the union of delta
// block sets 0..Level.
type View struct {
	Family *Family
	Level  int
}

// Cap returns this view's frequency cap K.
func (v View) Cap() int64 { return v.Family.Caps[v.Level] }

// Blocks returns the block set backing this resolution (deltas 0..Level).
func (v View) Blocks() []*storage.Block {
	var out []*storage.Block
	for i := 0; i <= v.Level; i++ {
		out = append(out, v.Family.Deltas[i].Blocks...)
	}
	return out
}

// DeltaBlocks returns only the blocks NOT contained in the other (smaller)
// view — the §4.4 reuse path: having scanned `smaller`, a query needs to
// read just these blocks to upgrade to v.
func (v View) DeltaBlocks(smaller View) []*storage.Block {
	lo := smaller.Level + 1
	if smaller.Family != v.Family {
		lo = 0
	}
	var out []*storage.Block
	for i := lo; i <= v.Level; i++ {
		out = append(out, v.Family.Deltas[i].Blocks...)
	}
	return out
}

// Rows returns the number of rows in this resolution.
func (v View) Rows() int64 {
	var n int64
	for i := 0; i <= v.Level; i++ {
		n += v.Family.Deltas[i].NumRows()
	}
	return n
}

// Bytes returns the logical size of this resolution.
func (v View) Bytes() int64 {
	var n int64
	for i := 0; i <= v.Level; i++ {
		n += v.Family.Deltas[i].Bytes()
	}
	return n
}

// Rate computes the effective sampling rate of a row with the given
// metadata when read through this view: min(1, K/F(x)) where F(x) is the
// row's stratum frequency in the base table (§3.1). A row whose stratum
// fits under the cap has rate 1 (it is exact).
func (v View) Rate(m storage.RowMeta) float64 {
	return RateForCap(m, v.Cap())
}

// RateForCap is View.Rate for an explicit cap value.
func RateForCap(m storage.RowMeta, cap int64) float64 {
	f := m.StratumFreq
	if f <= 0 || f <= cap {
		return 1
	}
	return float64(cap) / float64(f)
}

// Scan iterates the view's rows with their per-view effective rates.
func (v View) Scan(fn func(r types.Row, rate float64) bool) {
	cap := v.Cap()
	for i := 0; i <= v.Level; i++ {
		for _, b := range v.Family.Deltas[i].Blocks {
			for j, n := 0, b.NumRows(); j < n; j++ {
				if !fn(b.RowAt(j), RateForCap(b.MetaAt(j), cap)) {
					return
				}
			}
		}
	}
}

// String renders e.g. "S([city], K=1000)".
func (v View) String() string {
	if v.Family.IsUniform() {
		return fmt.Sprintf("U(n=%d)", v.Cap())
	}
	return fmt.Sprintf("S(%s, K=%d)", v.Family.Phi, v.Cap())
}

// GeometricCaps builds the paper's cap sequence: Ki = ⌊K1/cⁱ⌋ for
// 0 ≤ i < m, returned ascending (smallest first). Caps below minCap are
// dropped; at least one cap (K1) is always returned.
func GeometricCaps(k1 int64, c float64, m int, minCap int64) []int64 {
	if c <= 1 {
		c = 2
	}
	if minCap < 1 {
		minCap = 1
	}
	var caps []int64
	k := float64(k1)
	for i := 0; i < m; i++ {
		ki := int64(math.Floor(k))
		if ki < minCap && i > 0 {
			break
		}
		caps = append(caps, ki)
		k /= c
	}
	// Reverse to ascending order.
	for i, j := 0, len(caps)-1; i < j; i, j = i+1, j-1 {
		caps[i], caps[j] = caps[j], caps[i]
	}
	return caps
}

// Build constructs SFam(φ) from a base table. caps must be ascending
// (GeometricCaps output). An empty φ builds a uniform family whose caps
// are interpreted as target row counts.
func Build(base *storage.Table, phi types.ColumnSet, caps []int64, cfg BuildConfig) (*Family, error) {
	if len(caps) == 0 {
		return nil, fmt.Errorf("sample: no caps given")
	}
	for i := 1; i < len(caps); i++ {
		if caps[i] < caps[i-1] {
			return nil, fmt.Errorf("sample: caps must be ascending, got %v", caps)
		}
	}
	cfg = cfg.normalize()

	// Resolve φ to schema indices (empty φ → uniform: single stratum).
	var idx []int
	for _, col := range phi.Columns() {
		i, err := base.Schema.MustIndex(col)
		if err != nil {
			return nil, fmt.Errorf("sample: %w", err)
		}
		idx = append(idx, i)
	}

	// Pass 1: group row locators by stratum key. Block.RowKey projects
	// the key directly from either layout (no row materialisation for
	// columnar bases).
	type loc struct{ block, row int32 }
	strata := make(map[string][]loc)
	var keys []string
	for bi, b := range base.Blocks {
		for ri, n := 0, b.NumRows(); ri < n; ri++ {
			var key string
			if len(idx) > 0 {
				key = b.RowKey(ri, idx)
			}
			if _, seen := strata[key]; !seen {
				keys = append(keys, key)
			}
			strata[key] = append(strata[key], loc{int32(bi), int32(ri)})
		}
	}
	sort.Strings(keys) // §3.1: store strata sorted by φ for clustering

	rng := rand.New(rand.NewSource(cfg.Seed))
	fam := &Family{
		Phi:       phi,
		Caps:      append([]int64{}, caps...),
		schema:    base.Schema,
		baseRows:  base.NumRows(),
		numStrata: int64(len(keys)),
	}
	k1 := caps[len(caps)-1]

	// Pass 2: per stratum, shuffle once; nested prefixes give every
	// resolution. Emit rows level by level so deltas are non-overlapping.
	builders := make([]*storage.Builder, len(caps))
	for i := range caps {
		t := storage.NewTable(fmt.Sprintf("%s@K%d", phi.Key(), caps[i]), base.Schema)
		builders[i] = storage.NewBuilderLayout(t, cfg.RowsPerBlock, cfg.Nodes, cfg.Place, cfg.Layout)
		// Strata are emitted in sorted φ-key order, so the stratification
		// columns arrive in runs up to the cap length — prime RLE targets.
		builders[i].HintSortedColumns(idx...)
		fam.Deltas = append(fam.Deltas, t)
	}
	for _, key := range keys {
		locs := strata[key]
		f := int64(len(locs))
		if f < k1 {
			fam.tailCount++
		}
		rng.Shuffle(len(locs), func(i, j int) { locs[i], locs[j] = locs[j], locs[i] })
		prev := int64(0)
		for li, cap := range caps {
			take := f
			if cap < take {
				take = cap
			}
			for _, l := range locs[prev:take] {
				r := base.Blocks[l.block].RowAt(int(l.row))
				builders[li].Append(r, storage.RowMeta{Rate: 1, StratumFreq: f})
			}
			if take > prev {
				prev = take
			}
		}
	}
	for i := range builders {
		builders[i].Finish()
	}
	return fam, nil
}

// BuildUniform builds a uniform multi-resolution family with the given
// target row counts (ascending).
func BuildUniform(base *storage.Table, sizes []int64, cfg BuildConfig) (*Family, error) {
	return Build(base, types.NewColumnSet(), sizes, cfg)
}

// Validate checks the family's structural invariants:
//   - deltas are disjoint in aggregate size and per-stratum counts are
//     exactly min(F, K_level) at each resolution;
//   - per-row StratumFreq matches the actual base frequency recorded at
//     build time (spot-checkable only via totals here);
//   - blocks pass storage validation.
func (f *Family) Validate() error {
	for li, d := range f.Deltas {
		if err := storage.Validate(d, 0); err != nil {
			return fmt.Errorf("delta %d: %w", li, err)
		}
	}
	// Per-stratum counts at each level must be min(F, cap).
	counts := make(map[string]int64) // stratum key -> rows seen so far
	freq := make(map[string]int64)   // stratum key -> declared F
	var idx []int
	for _, col := range f.Phi.Columns() {
		i := f.schema.Index(col)
		if i < 0 {
			return fmt.Errorf("family column %q missing from schema", col)
		}
		idx = append(idx, i)
	}
	for li, d := range f.Deltas {
		cap := f.Caps[li]
		for _, b := range d.Blocks {
			for j, n := 0, b.NumRows(); j < n; j++ {
				key := ""
				if len(idx) > 0 {
					key = b.RowKey(j, idx)
				}
				counts[key]++
				m := b.MetaAt(j)
				if prev, ok := freq[key]; ok && prev != m.StratumFreq {
					return fmt.Errorf("stratum %q: inconsistent freq %d vs %d", key, prev, m.StratumFreq)
				}
				freq[key] = m.StratumFreq
			}
		}
		for key, n := range counts {
			want := freq[key]
			if cap < want {
				want = cap
			}
			if n > want {
				return fmt.Errorf("level %d stratum %q: %d rows exceeds min(F=%d, K=%d)", li, key, n, freq[key], cap)
			}
		}
	}
	return nil
}
