// Package cluster simulates the distributed execution substrate the paper
// runs on: a 100-node EC2 cluster with per-node disks, memory caches, cores
// and a network, executing scan-heavy data-parallel jobs under different
// engine profiles (Hive on Hadoop, Shark with/without caching, BlinkDB).
//
// The model is the same first-order model BlinkDB itself uses for its
// latency profile (§4.2): job latency is linear in per-node bytes scanned
// at a tier-dependent rate, plus scheduling-wave overhead, plus a shuffle
// term, plus fixed job startup. The simulator exists so that the latency
// *shape* of every figure (who wins, by what factor, where crossovers
// fall) can be regenerated without the authors' testbed.
package cluster

import (
	"fmt"
	"math"

	"blinkdb/internal/storage"
)

// Config describes cluster hardware. The defaults mirror the paper's
// evaluation setting (§6.1): 100 EC2 extra-large nodes, 8 cores, 68.4 GB
// RAM and 800 GB disk each; 6 TB aggregate RAM cache configured.
type Config struct {
	// Nodes is the number of worker machines.
	Nodes int
	// CoresPerNode bounds task parallelism per node.
	CoresPerNode int
	// MemCacheBytesPerNode is the per-node cache capacity; bytes placed
	// in memory beyond this spill to disk rate (§6.2's 6 TB cache).
	MemCacheBytesPerNode float64
}

// PaperConfig returns the 100-node evaluation cluster of §6.1.
func PaperConfig() Config {
	return Config{
		Nodes:                100,
		CoresPerNode:         8,
		MemCacheBytesPerNode: 60e9, // 6 TB aggregate
	}
}

// WithNodes returns a copy of c resized to n nodes (Fig. 8(c) scale-up).
func (c Config) WithNodes(n int) Config {
	c.Nodes = n
	return c
}

// EngineProfile captures the per-engine execution characteristics. Rates
// are effective scan-processing rates (CPU + I/O pipeline), not raw device
// bandwidth, which is why they differ between engines reading identical
// hardware.
type EngineProfile struct {
	// Name labels the engine in experiment output.
	Name string
	// JobOverheadSec is fixed startup cost per job (JVM spin-up, plan
	// distribution). Hadoop pays tens of seconds; Spark under a second.
	JobOverheadSec float64
	// TaskOverheadSec is per-scheduling-wave overhead.
	TaskOverheadSec float64
	// DiskMBps is the effective per-node scan rate from disk.
	DiskMBps float64
	// MemMBps is the effective per-node scan rate from memory cache.
	MemMBps float64
	// NetworkMBps is the per-node shuffle bandwidth.
	NetworkMBps float64
	// RandomIOPenalty multiplies disk time for random-order access
	// (online aggregation must stream in random order, §7).
	RandomIOPenalty float64
}

// Engine profiles calibrated against the paper's reported anchors:
// a full scan of 10 TB on Hadoop takes 30–45 min (§1); Shark answers the
// 2.5 TB cached query in ~112 s (§6.2); BlinkDB answers in ~2 s.
var (
	// HiveOnHadoop models Hive compiling to Hadoop MapReduce.
	HiveOnHadoop = EngineProfile{
		Name: "Hive on Hadoop", JobOverheadSec: 30, TaskOverheadSec: 2.0,
		DiskMBps: 40, MemMBps: 40, NetworkMBps: 60, RandomIOPenalty: 8,
	}
	// SharkNoCache models Shark (Hive on Spark) reading from disk.
	SharkNoCache = EngineProfile{
		Name: "Hive on Spark (no cache)", JobOverheadSec: 2, TaskOverheadSec: 0.3,
		DiskMBps: 90, MemMBps: 90, NetworkMBps: 120, RandomIOPenalty: 8,
	}
	// SharkCached models Shark with input cached in cluster RAM.
	SharkCached = EngineProfile{
		Name: "Hive on Spark (cached)", JobOverheadSec: 2, TaskOverheadSec: 0.3,
		DiskMBps: 90, MemMBps: 230, NetworkMBps: 120, RandomIOPenalty: 8,
	}
	// BlinkDBEngine models BlinkDB's Shark-based runtime on samples.
	BlinkDBEngine = EngineProfile{
		Name: "BlinkDB", JobOverheadSec: 0.25, TaskOverheadSec: 0.05,
		DiskMBps: 90, MemMBps: 230, NetworkMBps: 120, RandomIOPenalty: 8,
	}
)

// Work describes a single data-parallel job to be costed.
type Work struct {
	// DiskBytesPerNode and MemBytesPerNode give logical bytes scanned on
	// each node from each tier. Lengths usually equal Config.Nodes (nil
	// means zero); LONGER slices are legal — they describe data placed on
	// more physical nodes than the cluster is configured with (a table
	// built with a larger striping width) and every entry is charged, the
	// straggler bound included.
	DiskBytesPerNode []float64
	MemBytesPerNode  []float64
	// Tasks is the number of independent scan tasks (≈ blocks).
	Tasks int
	// ShuffleBytes is the total bytes repartitioned over the network
	// (GROUP BY / JOIN exchange).
	ShuffleBytes float64
	// RemoteBytes is the portion of the scanned bytes read across the
	// network because the scanning task was not co-located with its
	// blocks (a node-blind or straddling schedule); it rides the
	// aggregate network like shuffle traffic.
	RemoteBytes float64
	// MergeNodes is the number of distinct nodes producing partial
	// aggregates for this job. Merging them is a cross-node fan-in tree
	// of depth ceil(log2(MergeNodes)); 0 or 1 means the merge is
	// node-local and free of network cost.
	MergeNodes int
	// MergeBytes is the serialized size of one node's partial-aggregate
	// state, shipped over a single node link once per fan-in round.
	MergeBytes float64
	// RandomOrder marks random-access streaming (OLA); disk reads then
	// pay the profile's RandomIOPenalty.
	RandomOrder bool
}

// Cluster is a simulated cluster with a virtual clock.
type Cluster struct {
	cfg Config
}

// New creates a cluster simulator.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = 1
	}
	return &Cluster{cfg: cfg}
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Latency returns the simulated wall-clock seconds for the job under the
// given engine profile.
func (c *Cluster) Latency(p EngineProfile, w Work) float64 {
	// Per-node scan time: the straggler node bounds the job. The loop
	// covers every per-node entry, not just cfg.Nodes — data placed on
	// more nodes than the cluster is configured with must still be
	// charged (silently dropping trailing entries under-charged such jobs
	// before).
	nodes := c.cfg.Nodes
	if len(w.DiskBytesPerNode) > nodes {
		nodes = len(w.DiskBytesPerNode)
	}
	if len(w.MemBytesPerNode) > nodes {
		nodes = len(w.MemBytesPerNode)
	}
	maxScan := 0.0
	for n := 0; n < nodes; n++ {
		var disk, mem float64
		if n < len(w.DiskBytesPerNode) {
			disk = w.DiskBytesPerNode[n]
		}
		if n < len(w.MemBytesPerNode) {
			mem = w.MemBytesPerNode[n]
		}
		// Memory beyond the cache capacity spills to disk rate.
		if over := mem - c.cfg.MemCacheBytesPerNode; over > 0 {
			mem = c.cfg.MemCacheBytesPerNode
			disk += over
		}
		diskRate := p.DiskMBps * 1e6
		if w.RandomOrder && p.RandomIOPenalty > 1 {
			diskRate /= p.RandomIOPenalty
		}
		t := disk/diskRate + mem/(p.MemMBps*1e6)
		if t > maxScan {
			maxScan = t
		}
	}

	// Scheduling waves.
	slots := float64(c.cfg.Nodes * c.cfg.CoresPerNode)
	waves := math.Ceil(float64(w.Tasks) / slots)
	if w.Tasks == 0 {
		waves = 0
	}

	// Shuffle and remote (non-local) scan traffic: all-to-all over
	// aggregate network bandwidth.
	shuffle := (w.ShuffleBytes + w.RemoteBytes) / (float64(c.cfg.Nodes) * p.NetworkMBps * 1e6)

	// Cross-node partial merge: a fan-in tree over the nodes that
	// produced partials. Each round halves the partial count and ships
	// one partial state per node link; the rounds serialize, so merging
	// k nodes' partials costs ceil(log2 k) link transfers end to end.
	// Jobs whose input sits on one node (k ≤ 1) merge locally for free —
	// the flip side of their straggler-bound scan.
	merge := 0.0
	if w.MergeNodes > 1 && w.MergeBytes > 0 {
		merge = math.Ceil(math.Log2(float64(w.MergeNodes))) * w.MergeBytes / (p.NetworkMBps * 1e6)
	}

	return p.JobOverheadSec + waves*p.TaskOverheadSec + maxScan + shuffle + merge
}

// UniformWork builds a Work whose totalBytes are spread evenly over the
// cluster with memFraction of the data cache-resident. taskBytes sets the
// per-task granularity (HDFS block size; 0 defaults to 256 MB).
func (c *Cluster) UniformWork(totalBytes, memFraction, shuffleBytes, taskBytes float64) Work {
	if taskBytes <= 0 {
		taskBytes = 256e6
	}
	n := c.cfg.Nodes
	disk := make([]float64, n)
	mem := make([]float64, n)
	per := totalBytes / float64(n)
	for i := 0; i < n; i++ {
		mem[i] = per * memFraction
		disk[i] = per * (1 - memFraction)
	}
	return Work{
		DiskBytesPerNode: disk,
		MemBytesPerNode:  mem,
		Tasks:            int(math.Ceil(totalBytes / taskBytes)),
		ShuffleBytes:     shuffleBytes,
		MergeNodes:       n,
		MergeBytes:       shuffleBytes / float64(n),
	}
}

// SkewedWork is UniformWork but with the data striped over only the first
// span nodes, modelling selective queries whose input lives on a few
// machines (Fig. 8(c) "selective" suite).
func (c *Cluster) SkewedWork(totalBytes, memFraction, shuffleBytes, taskBytes float64, span int) Work {
	if span <= 0 || span > c.cfg.Nodes {
		span = c.cfg.Nodes
	}
	if taskBytes <= 0 {
		taskBytes = 256e6
	}
	disk := make([]float64, c.cfg.Nodes)
	mem := make([]float64, c.cfg.Nodes)
	per := totalBytes / float64(span)
	for i := 0; i < span; i++ {
		mem[i] = per * memFraction
		disk[i] = per * (1 - memFraction)
	}
	return Work{
		DiskBytesPerNode: disk,
		MemBytesPerNode:  mem,
		Tasks:            int(math.Ceil(totalBytes / taskBytes)),
		ShuffleBytes:     shuffleBytes,
		MergeNodes:       span,
		MergeBytes:       shuffleBytes / float64(span),
	}
}

// WorkFromBlocks derives a Work from physical sample blocks, scaling
// physical bytes by scale (logical bytes per stored byte). Every block is
// attributed to its OWN node: blocks on nodes beyond the configured
// cluster size extend the per-node slices rather than silently aliasing
// onto node b.Node % Nodes (which used to pile two physical nodes' bytes
// onto one simulated node when a table was striped wider than the
// cluster). A block with a negative node id is a storage-invariant
// violation and returns an error. MergeNodes/MergeBytes charge the
// cross-node fan-in that combines the per-node partial aggregates.
func (c *Cluster) WorkFromBlocks(blocks []*storage.Block, scale float64, shuffleBytes float64) (Work, error) {
	width := c.cfg.Nodes
	for _, b := range blocks {
		if b.Node < 0 {
			return Work{}, fmt.Errorf("cluster: block %d has negative node %d", b.ID, b.Node)
		}
		if b.Node >= width {
			width = b.Node + 1
		}
	}
	disk := make([]float64, width)
	mem := make([]float64, width)
	for _, b := range blocks {
		bytes := float64(b.Bytes) * scale
		if b.Place == storage.InMemory {
			mem[b.Node] += bytes
		} else {
			disk[b.Node] += bytes
		}
	}
	mergeNodes := 0
	for n := 0; n < width; n++ {
		if disk[n] > 0 || mem[n] > 0 {
			mergeNodes++
		}
	}
	mergeBytes := 0.0
	if mergeNodes > 0 {
		mergeBytes = shuffleBytes / float64(mergeNodes)
	}
	return Work{
		DiskBytesPerNode: disk,
		MemBytesPerNode:  mem,
		Tasks:            len(blocks),
		ShuffleBytes:     shuffleBytes,
		MergeNodes:       mergeNodes,
		MergeBytes:       mergeBytes,
	}, nil
}

// String summarises the config.
func (c Config) String() string {
	return fmt.Sprintf("%d nodes × %d cores, %.0f GB cache/node",
		c.Nodes, c.CoresPerNode, c.MemCacheBytesPerNode/1e9)
}
