package cluster

import (
	"math"
	"testing"

	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig()
	if cfg.Nodes != 100 || cfg.CoresPerNode != 8 {
		t.Errorf("paper config = %+v", cfg)
	}
	if cfg.WithNodes(10).Nodes != 10 {
		t.Error("WithNodes failed")
	}
	if cfg.String() == "" {
		t.Error("String empty")
	}
}

func TestLatencyScalesLinearlyWithBytes(t *testing.T) {
	c := New(PaperConfig())
	w1 := c.UniformWork(1e12, 0, 0, 256e6)
	w2 := c.UniformWork(2e12, 0, 0, 256e6)
	l1 := c.Latency(SharkNoCache, w1)
	l2 := c.Latency(SharkNoCache, w2)
	// Subtract job overhead before checking linearity.
	s1 := l1 - SharkNoCache.JobOverheadSec
	s2 := l2 - SharkNoCache.JobOverheadSec
	if s2 < 1.8*s1 || s2 > 2.2*s1 {
		t.Errorf("scan time not ~linear: %g vs %g", s1, s2)
	}
}

func TestMemoryFasterThanDisk(t *testing.T) {
	c := New(PaperConfig())
	disk := c.Latency(SharkCached, c.UniformWork(1e12, 0, 0, 0))
	mem := c.Latency(SharkCached, c.UniformWork(1e12, 1, 0, 0))
	if mem >= disk {
		t.Errorf("memory (%g) should beat disk (%g)", mem, disk)
	}
}

func TestCacheSpill(t *testing.T) {
	c := New(PaperConfig())
	// 7.5 TB "cached" exceeds the 6 TB aggregate cache → partial spill,
	// so latency grows super-linearly vs the fully-cached 2.5 TB case.
	small := c.Latency(SharkCached, c.UniformWork(2.5e12, 1, 0, 0))
	big := c.Latency(SharkCached, c.UniformWork(7.5e12, 1, 0, 0))
	if big < 3*small {
		t.Errorf("spill should cost more than 3× (%g vs %g)", big, small)
	}
}

func TestFigure6cAnchors(t *testing.T) {
	// Calibration anchors from the paper: Shark cached ≈ 112 s on 2.5 TB;
	// Hadoop ≈ 1800–2700 s on 10 TB; BlinkDB ≈ seconds.
	c := New(PaperConfig())
	shark := c.Latency(SharkCached, c.UniformWork(2.5e12, 1, 2.5e9, 0))
	if shark < 60 || shark > 200 {
		t.Errorf("Shark cached 2.5TB = %.0f s, want ≈ 112 s", shark)
	}
	hadoop := c.Latency(HiveOnHadoop, c.UniformWork(10e12, 0, 10e9, 0))
	if hadoop < 1500 || hadoop > 4000 {
		t.Errorf("Hadoop 10TB = %.0f s, want 1800-2700 s", hadoop)
	}
	blink := c.Latency(BlinkDBEngine, c.UniformWork(20e9, 1, 0.1e9, 64e6))
	if blink > 3 {
		t.Errorf("BlinkDB on 20GB sample = %.2f s, want < 3 s", blink)
	}
}

func TestRandomOrderPenalty(t *testing.T) {
	c := New(PaperConfig())
	w := c.UniformWork(1e12, 0, 0, 0)
	seq := c.Latency(SharkNoCache, w)
	w.RandomOrder = true
	rnd := c.Latency(SharkNoCache, w)
	if rnd < 2*seq {
		t.Errorf("random order should be much slower: %g vs %g", rnd, seq)
	}
}

func TestStragglerBoundsJob(t *testing.T) {
	c := New(Config{Nodes: 4, CoresPerNode: 2, MemCacheBytesPerNode: 1e12})
	disk := make([]float64, 4)
	disk[0] = 4e9 // all data on one node
	skew := c.Latency(SharkNoCache, Work{DiskBytesPerNode: disk, Tasks: 4})
	even := c.Latency(SharkNoCache, c.UniformWork(4e9, 0, 0, 1e9))
	if skew <= even {
		t.Errorf("skewed placement (%g) should be slower than even (%g)", skew, even)
	}
}

func TestSkewedWorkSpan(t *testing.T) {
	c := New(Config{Nodes: 10, CoresPerNode: 2, MemCacheBytesPerNode: 1e12})
	w := c.SkewedWork(10e9, 0, 0, 1e9, 2)
	nonZero := 0
	for _, b := range w.DiskBytesPerNode {
		if b > 0 {
			nonZero++
		}
	}
	if nonZero != 2 {
		t.Errorf("span=2 but %d nodes have data", nonZero)
	}
	// Span defaults to all nodes when out of range.
	w2 := c.SkewedWork(10e9, 0, 0, 1e9, 0)
	nonZero = 0
	for _, b := range w2.DiskBytesPerNode {
		if b > 0 {
			nonZero++
		}
	}
	if nonZero != 10 {
		t.Errorf("span=0 should spread to all nodes, got %d", nonZero)
	}
}

func TestWorkFromBlocks(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2, MemCacheBytesPerNode: 1e12})
	blocks := []*storage.Block{
		{Node: 0, Place: storage.OnDisk, Bytes: 100},
		{Node: 1, Place: storage.InMemory, Bytes: 200},
		{Node: 5, Place: storage.OnDisk, Bytes: 50}, // wraps to node 1
	}
	w := c.WorkFromBlocks(blocks, 10, 7)
	if w.DiskBytesPerNode[0] != 1000 {
		t.Errorf("node0 disk = %g", w.DiskBytesPerNode[0])
	}
	if w.MemBytesPerNode[1] != 2000 || w.DiskBytesPerNode[1] != 500 {
		t.Errorf("node1 = mem %g disk %g", w.MemBytesPerNode[1], w.DiskBytesPerNode[1])
	}
	if w.Tasks != 3 || w.ShuffleBytes != 7 {
		t.Errorf("tasks=%d shuffle=%g", w.Tasks, w.ShuffleBytes)
	}
	_ = types.Row{} // keep import for parallel edits
}

func TestMoreNodesFaster(t *testing.T) {
	// Fixed 1 TB dataset: a bigger cluster should be faster (Fig. 8(c)
	// rationale in reverse — per-node share shrinks).
	small := New(PaperConfig().WithNodes(10))
	big := New(PaperConfig().WithNodes(100))
	ls := small.Latency(SharkNoCache, small.UniformWork(1e12, 0, 0, 0))
	lb := big.Latency(SharkNoCache, big.UniformWork(1e12, 0, 0, 0))
	if lb >= ls {
		t.Errorf("100 nodes (%g) should beat 10 nodes (%g)", lb, ls)
	}
}

func TestZeroWork(t *testing.T) {
	c := New(PaperConfig())
	l := c.Latency(BlinkDBEngine, Work{})
	if math.Abs(l-BlinkDBEngine.JobOverheadSec) > 1e-9 {
		t.Errorf("empty work should cost only job overhead, got %g", l)
	}
}
