package cluster

import (
	"math"
	"testing"

	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig()
	if cfg.Nodes != 100 || cfg.CoresPerNode != 8 {
		t.Errorf("paper config = %+v", cfg)
	}
	if cfg.WithNodes(10).Nodes != 10 {
		t.Error("WithNodes failed")
	}
	if cfg.String() == "" {
		t.Error("String empty")
	}
}

func TestLatencyScalesLinearlyWithBytes(t *testing.T) {
	c := New(PaperConfig())
	w1 := c.UniformWork(1e12, 0, 0, 256e6)
	w2 := c.UniformWork(2e12, 0, 0, 256e6)
	l1 := c.Latency(SharkNoCache, w1)
	l2 := c.Latency(SharkNoCache, w2)
	// Subtract job overhead before checking linearity.
	s1 := l1 - SharkNoCache.JobOverheadSec
	s2 := l2 - SharkNoCache.JobOverheadSec
	if s2 < 1.8*s1 || s2 > 2.2*s1 {
		t.Errorf("scan time not ~linear: %g vs %g", s1, s2)
	}
}

func TestMemoryFasterThanDisk(t *testing.T) {
	c := New(PaperConfig())
	disk := c.Latency(SharkCached, c.UniformWork(1e12, 0, 0, 0))
	mem := c.Latency(SharkCached, c.UniformWork(1e12, 1, 0, 0))
	if mem >= disk {
		t.Errorf("memory (%g) should beat disk (%g)", mem, disk)
	}
}

func TestCacheSpill(t *testing.T) {
	c := New(PaperConfig())
	// 7.5 TB "cached" exceeds the 6 TB aggregate cache → partial spill,
	// so latency grows super-linearly vs the fully-cached 2.5 TB case.
	small := c.Latency(SharkCached, c.UniformWork(2.5e12, 1, 0, 0))
	big := c.Latency(SharkCached, c.UniformWork(7.5e12, 1, 0, 0))
	if big < 3*small {
		t.Errorf("spill should cost more than 3× (%g vs %g)", big, small)
	}
}

func TestFigure6cAnchors(t *testing.T) {
	// Calibration anchors from the paper: Shark cached ≈ 112 s on 2.5 TB;
	// Hadoop ≈ 1800–2700 s on 10 TB; BlinkDB ≈ seconds.
	c := New(PaperConfig())
	shark := c.Latency(SharkCached, c.UniformWork(2.5e12, 1, 2.5e9, 0))
	if shark < 60 || shark > 200 {
		t.Errorf("Shark cached 2.5TB = %.0f s, want ≈ 112 s", shark)
	}
	hadoop := c.Latency(HiveOnHadoop, c.UniformWork(10e12, 0, 10e9, 0))
	if hadoop < 1500 || hadoop > 4000 {
		t.Errorf("Hadoop 10TB = %.0f s, want 1800-2700 s", hadoop)
	}
	blink := c.Latency(BlinkDBEngine, c.UniformWork(20e9, 1, 0.1e9, 64e6))
	if blink > 3 {
		t.Errorf("BlinkDB on 20GB sample = %.2f s, want < 3 s", blink)
	}
}

func TestRandomOrderPenalty(t *testing.T) {
	c := New(PaperConfig())
	w := c.UniformWork(1e12, 0, 0, 0)
	seq := c.Latency(SharkNoCache, w)
	w.RandomOrder = true
	rnd := c.Latency(SharkNoCache, w)
	if rnd < 2*seq {
		t.Errorf("random order should be much slower: %g vs %g", rnd, seq)
	}
}

func TestStragglerBoundsJob(t *testing.T) {
	c := New(Config{Nodes: 4, CoresPerNode: 2, MemCacheBytesPerNode: 1e12})
	disk := make([]float64, 4)
	disk[0] = 4e9 // all data on one node
	skew := c.Latency(SharkNoCache, Work{DiskBytesPerNode: disk, Tasks: 4})
	even := c.Latency(SharkNoCache, c.UniformWork(4e9, 0, 0, 1e9))
	if skew <= even {
		t.Errorf("skewed placement (%g) should be slower than even (%g)", skew, even)
	}
}

func TestSkewedWorkSpan(t *testing.T) {
	c := New(Config{Nodes: 10, CoresPerNode: 2, MemCacheBytesPerNode: 1e12})
	w := c.SkewedWork(10e9, 0, 0, 1e9, 2)
	nonZero := 0
	for _, b := range w.DiskBytesPerNode {
		if b > 0 {
			nonZero++
		}
	}
	if nonZero != 2 {
		t.Errorf("span=2 but %d nodes have data", nonZero)
	}
	// Span defaults to all nodes when out of range.
	w2 := c.SkewedWork(10e9, 0, 0, 1e9, 0)
	nonZero = 0
	for _, b := range w2.DiskBytesPerNode {
		if b > 0 {
			nonZero++
		}
	}
	if nonZero != 10 {
		t.Errorf("span=0 should spread to all nodes, got %d", nonZero)
	}
}

func TestWorkFromBlocks(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2, MemCacheBytesPerNode: 1e12})
	blocks := []*storage.Block{
		{Node: 0, Place: storage.OnDisk, Bytes: 100},
		{Node: 1, Place: storage.InMemory, Bytes: 200},
		{Node: 5, Place: storage.OnDisk, Bytes: 50}, // wider than the cluster
	}
	w, err := c.WorkFromBlocks(blocks, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if w.DiskBytesPerNode[0] != 1000 {
		t.Errorf("node0 disk = %g", w.DiskBytesPerNode[0])
	}
	if w.MemBytesPerNode[1] != 2000 || w.DiskBytesPerNode[1] != 0 {
		t.Errorf("node1 = mem %g disk %g", w.MemBytesPerNode[1], w.DiskBytesPerNode[1])
	}
	if w.Tasks != 3 || w.ShuffleBytes != 7 {
		t.Errorf("tasks=%d shuffle=%g", w.Tasks, w.ShuffleBytes)
	}
	_ = types.Row{} // keep import for parallel edits
}

// TestWorkFromBlocksNoAliasing pins the node-aliasing fix: a table striped
// over more nodes than the simulated cluster must keep each physical
// node's bytes separate — the old b.Node % Nodes wrap piled node 5's bytes
// onto node 1, halving that node's apparent scan time.
func TestWorkFromBlocksNoAliasing(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2, MemCacheBytesPerNode: 1e12})
	blocks := []*storage.Block{
		{ID: 0, Node: 1, Place: storage.OnDisk, Bytes: 100},
		{ID: 1, Node: 5, Place: storage.OnDisk, Bytes: 100},
	}
	w, err := c.WorkFromBlocks(blocks, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.DiskBytesPerNode) != 6 {
		t.Fatalf("per-node slice len = %d, want 6 (nodes 0..5)", len(w.DiskBytesPerNode))
	}
	if w.DiskBytesPerNode[1] != 100 || w.DiskBytesPerNode[5] != 100 {
		t.Errorf("bytes aliased: node1=%g node5=%g, want 100 each",
			w.DiskBytesPerNode[1], w.DiskBytesPerNode[5])
	}
	if w.MergeNodes != 2 {
		t.Errorf("MergeNodes = %d, want 2", w.MergeNodes)
	}

	// And the straggler bound must charge the out-of-range node: the same
	// bytes aliased onto one node would look twice as slow, dropped
	// entries half as slow. Two nodes × 100 B must scan in the time of
	// 100 B, not 200 B and not 0.
	one, err := c.WorkFromBlocks(blocks[:1], 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lTwo := c.Latency(SharkNoCache, w)
	lOne := c.Latency(SharkNoCache, one)
	if math.Abs(lTwo-lOne) > 1e-12 {
		t.Errorf("parallel nodes should bound equally: %g vs %g", lTwo, lOne)
	}

	if _, err := c.WorkFromBlocks([]*storage.Block{{Node: -1, Bytes: 10}}, 1, 0); err == nil {
		t.Error("negative node id should be rejected")
	}
}

// TestLatencyChargesNodesBeyondConfig pins the under-charging fix:
// per-node byte entries beyond cfg.Nodes used to be silently ignored.
func TestLatencyChargesNodesBeyondConfig(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2, MemCacheBytesPerNode: 1e12})
	disk := make([]float64, 6)
	disk[5] = 4e9 // straggler lives beyond the configured cluster
	l := c.Latency(SharkNoCache, Work{DiskBytesPerNode: disk, Tasks: 1})
	want := SharkNoCache.JobOverheadSec + SharkNoCache.TaskOverheadSec + 4e9/(SharkNoCache.DiskMBps*1e6)
	if math.Abs(l-want) > 1e-9 {
		t.Errorf("latency = %g, want %g (node 5 must be charged)", l, want)
	}

	mem := make([]float64, 6)
	mem[5] = 4e9
	lm := c.Latency(SharkNoCache, Work{MemBytesPerNode: mem, Tasks: 1})
	wantMem := SharkNoCache.JobOverheadSec + SharkNoCache.TaskOverheadSec + 4e9/(SharkNoCache.MemMBps*1e6)
	if math.Abs(lm-wantMem) > 1e-9 {
		t.Errorf("mem latency = %g, want %g", lm, wantMem)
	}
}

// TestMergeFanInPricing: merging partials from more nodes costs more
// (log2 fan-in depth), and single-node jobs merge for free.
func TestMergeFanInPricing(t *testing.T) {
	c := New(PaperConfig())
	base := Work{Tasks: 1, MergeBytes: 1e9}
	prev := -1.0
	for _, k := range []int{1, 2, 16, 100} {
		w := base
		w.MergeNodes = k
		l := c.Latency(BlinkDBEngine, w)
		if k == 1 {
			if math.Abs(l-(BlinkDBEngine.JobOverheadSec+BlinkDBEngine.TaskOverheadSec)) > 1e-9 {
				t.Errorf("single-node merge should be free, got %g", l)
			}
		} else if l <= prev {
			t.Errorf("merge cost not increasing with fan-in: k=%d gives %g after %g", k, l, prev)
		}
		prev = l
	}
}

// TestSkewedPlacementStrictlySlower is the tentpole's cluster-model
// acceptance check: the SAME blocks piled on one node must price strictly
// higher than striped over the cluster — the straggler term dwarfs the
// striped layout's cross-node merge fan-in.
func TestSkewedPlacementStrictlySlower(t *testing.T) {
	c := New(Config{Nodes: 10, CoresPerNode: 2, MemCacheBytesPerNode: 1e12})
	const nBlocks, blockBytes = 40, 64e6
	striped := make([]*storage.Block, nBlocks)
	skewed := make([]*storage.Block, nBlocks)
	for i := range striped {
		striped[i] = &storage.Block{ID: i, Node: i % 10, Place: storage.OnDisk, Bytes: blockBytes}
		skewed[i] = &storage.Block{ID: i, Node: 0, Place: storage.OnDisk, Bytes: blockBytes}
	}
	shuffle := float64(nBlocks) * blockBytes * 0.01
	wStriped, err := c.WorkFromBlocks(striped, 1, shuffle)
	if err != nil {
		t.Fatal(err)
	}
	wSkewed, err := c.WorkFromBlocks(skewed, 1, shuffle)
	if err != nil {
		t.Fatal(err)
	}
	if wStriped.MergeNodes != 10 || wSkewed.MergeNodes != 1 {
		t.Fatalf("merge nodes = %d/%d, want 10/1", wStriped.MergeNodes, wSkewed.MergeNodes)
	}
	lStriped := c.Latency(BlinkDBEngine, wStriped)
	lSkewed := c.Latency(BlinkDBEngine, wSkewed)
	if lSkewed <= lStriped {
		t.Errorf("skewed placement (%g s) must be strictly slower than striped (%g s)", lSkewed, lStriped)
	}
}

func TestMoreNodesFaster(t *testing.T) {
	// Fixed 1 TB dataset: a bigger cluster should be faster (Fig. 8(c)
	// rationale in reverse — per-node share shrinks).
	small := New(PaperConfig().WithNodes(10))
	big := New(PaperConfig().WithNodes(100))
	ls := small.Latency(SharkNoCache, small.UniformWork(1e12, 0, 0, 0))
	lb := big.Latency(SharkNoCache, big.UniformWork(1e12, 0, 0, 0))
	if lb >= ls {
		t.Errorf("100 nodes (%g) should beat 10 nodes (%g)", lb, ls)
	}
}

func TestZeroWork(t *testing.T) {
	c := New(PaperConfig())
	l := c.Latency(BlinkDBEngine, Work{})
	if math.Abs(l-BlinkDBEngine.JobOverheadSec) > 1e-9 {
		t.Errorf("empty work should cost only job overhead, got %g", l)
	}
}
