package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"blinkdb"
	"blinkdb/internal/admission"
)

// demoEngine mirrors the root package's fixture: a skewed sessions table
// with city/os-stratified samples, deterministic per seed so two engines
// built with the same arguments answer bit-identically.
func demoEngine(t testing.TB, rows int) *blinkdb.Engine {
	t.Helper()
	eng := blinkdb.Open(blinkdb.Config{Scale: 1e4, Seed: 7, CacheTables: true})
	load := eng.CreateTable("sessions",
		blinkdb.Col("city", blinkdb.String),
		blinkdb.Col("os", blinkdb.String),
		blinkdb.Col("sessiontime", blinkdb.Float),
	)
	rng := rand.New(rand.NewSource(3))
	cities := []string{"NY", "SF", "LA", "Austin", "Boise", "Fargo"}
	weights := []float64{0.5, 0.25, 0.15, 0.06, 0.03, 0.01}
	oses := []string{"Win7", "OSX", "Linux"}
	pick := func() string {
		u := rng.Float64()
		for i, w := range weights {
			u -= w
			if u <= 0 {
				return cities[i]
			}
		}
		return cities[len(cities)-1]
	}
	for i := 0; i < rows; i++ {
		if err := load.Append(pick(), oses[rng.Intn(3)], rng.ExpFloat64()*100); err != nil {
			t.Fatal(err)
		}
	}
	if err := load.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateSamples("sessions", blinkdb.SampleOptions{
		BudgetFraction: 0.5,
		K:              2000,
		Templates: []blinkdb.Template{
			{Columns: []string{"city"}, Weight: 0.7},
			{Columns: []string{"os"}, Weight: 0.3},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return eng
}

const boundedSQL = `SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 5% AT CONFIDENCE 95%`

func postQuery(t *testing.T, srv *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

// TestSingleQueryJSON pins the non-streaming path: one final frame whose
// result matches library mode on a twin engine byte for byte.
func TestSingleQueryJSON(t *testing.T) {
	eng := demoEngine(t, 20000)
	twin := demoEngine(t, 20000)
	srv := New(eng, Config{})
	w := postQuery(t, srv, fmt.Sprintf(`{"sql": %q}`, boundedSQL))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var f frame
	if err := json.Unmarshal(w.Body.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if !f.Final || f.Seq != 0 || f.Result == nil {
		t.Fatalf("single answer must be one final frame: %+v", f)
	}
	want, err := twin.Query(boundedSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Result, toResultJSON(want)) {
		t.Fatalf("server answer diverges from library mode:\n got %+v\nwant %+v", f.Result, toResultJSON(want))
	}
	if s := eng.Stats(); s.Admitted != 1 || s.Shed != 0 {
		t.Fatalf("admission counters: %+v", s)
	}
}

// TestStreamNDJSON pins the streaming path: at least one frame, strictly
// increasing seq, exactly one final frame (the last), non-increasing
// predicted bounds, and a final result bit-identical to library mode on
// a twin engine.
func TestStreamNDJSON(t *testing.T) {
	eng := demoEngine(t, 20000)
	twin := demoEngine(t, 20000)
	srv := New(eng, Config{})
	w := postQuery(t, srv, fmt.Sprintf(`{"sql": %q, "stream": true}`, boundedSQL))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var frames []frame
	sc := bufio.NewScanner(w.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	for i, f := range frames {
		if f.Seq != i {
			t.Fatalf("frame %d has seq %d", i, f.Seq)
		}
		if f.Final != (i == len(frames)-1) {
			t.Fatalf("final flag misplaced at frame %d of %d", i, len(frames))
		}
		if f.Error != "" {
			t.Fatalf("frame %d carries error %q", i, f.Error)
		}
		if i > 0 && f.Result.PredictedBound > frames[i-1].Result.PredictedBound {
			t.Fatalf("predicted bound widened between frames %d and %d: %v -> %v",
				i-1, i, frames[i-1].Result.PredictedBound, f.Result.PredictedBound)
		}
	}
	want, err := twin.Query(boundedSQL)
	if err != nil {
		t.Fatal(err)
	}
	final := frames[len(frames)-1]
	if !reflect.DeepEqual(final.Result, toResultJSON(want)) {
		t.Fatalf("streamed final diverges from library mode:\n got %+v\nwant %+v", final.Result, toResultJSON(want))
	}
}

// TestStreamSSE pins the event-stream encoding: data:-prefixed frames
// separated by blank lines.
func TestStreamSSE(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{})
	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(fmt.Sprintf(`{"sql": %q, "stream": true}`, boundedSQL)))
	req.Header.Set("Accept", "text/event-stream")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body := w.Body.String()
	if !strings.HasPrefix(body, "data: ") {
		t.Fatalf("SSE body must start with data:, got %q", body[:min(len(body), 40)])
	}
	var finals int
	for _, chunk := range strings.Split(body, "\n\n") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		var f frame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(chunk, "data: ")), &f); err != nil {
			t.Fatalf("bad SSE event %q: %v", chunk, err)
		}
		if f.Final {
			finals++
		}
	}
	if finals != 1 {
		t.Fatalf("want exactly one final event, got %d", finals)
	}
}

// TestShedBeforeScanning pins the admission contract: with the slot and
// queue full, a burst is rejected with 429 + Retry-After and the engine
// never plans or scans for it (PlanExecs pinned, Shed counted).
func TestShedBeforeScanning(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{Admission: admission.Config{
		MaxConcurrent: 1, MaxQueue: 1, MaxBacklogSeconds: -1,
	}})
	// Occupy the slot and the queue directly; HTTP arrivals now shed.
	hold, err := srv.adm.Admit(context.Background(), "hold", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release(0)
	queuedCtx, cancelQueued := context.WithCancel(context.Background())
	defer cancelQueued()
	queued := make(chan error, 1)
	go func() {
		tk, err := srv.adm.Admit(queuedCtx, "queued", 1)
		if tk != nil {
			tk.Release(0)
		}
		queued <- err
	}()
	for i := 0; srv.adm.Snapshot().Queued != 1; i++ {
		if i > 5000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	before := eng.Stats()
	w := postQuery(t, srv, fmt.Sprintf(`{"sql": %q}`, boundedSQL))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q", w.Header().Get("Retry-After"))
	}
	after := eng.Stats()
	if after.Shed != before.Shed+1 {
		t.Fatalf("shed counter: before %d after %d", before.Shed, after.Shed)
	}
	if after.PlanExecs != before.PlanExecs || after.Prepares != before.Prepares {
		t.Fatalf("a shed query must not plan or scan: %+v vs %+v", before, after)
	}
	cancelQueued()
	<-queued
}

// TestBoundParams pins per-request bound binding: parameters append
// clauses, conflicts with in-SQL bounds are 400s.
func TestBoundParams(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{})
	w := postQuery(t, srv,
		`{"sql": "SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY'", "error": "10%", "confidence": "95%", "time_seconds": 2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var f frame
	if err := json.Unmarshal(w.Body.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.Result == nil || !strings.Contains(f.Result.Explanation, "resolution") {
		t.Fatalf("bounded query should answer from a sample: %+v", f.Result)
	}
	if len(f.Result.Rows) == 0 || f.Result.Rows[0].Cells[0].Bound <= 0 {
		t.Fatalf("bounded answer must carry an error bar: %+v", f.Result)
	}

	w = postQuery(t, srv, fmt.Sprintf(`{"sql": %q, "error": "10%%"}`, boundedSQL))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("conflicting error param must 400, got %d: %s", w.Code, w.Body.String())
	}
	w = postQuery(t, srv, `{"sql": "SELECT COUNT(*) FROM sessions WITHIN 2 SECONDS", "time_seconds": 1}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("conflicting time param must 400, got %d: %s", w.Code, w.Body.String())
	}
	w = postQuery(t, srv, `{"sql": "SELECT COUNT(*) FROM sessions", "confidence": "95%"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("confidence without error must 400, got %d", w.Code)
	}
}

// TestGetQueryParams pins the GET form of /query.
func TestGetQueryParams(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{})
	params := url.Values{"sql": {boundedSQL}, "stream": {"1"}}
	req := httptest.NewRequest(http.MethodGet, "/query?"+params.Encode(), nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), `"final":true`) {
		t.Fatalf("stream must end with a final frame: %s", w.Body.String())
	}
}

// TestHealthzAndStats pins the sidecar endpoints.
func TestHealthzAndStats(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{})
	if w := postQuery(t, srv, fmt.Sprintf(`{"sql": %q}`, boundedSQL)); w.Code != http.StatusOK {
		t.Fatalf("warm query failed: %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz: %d %s", w.Code, w.Body.String())
	}
	req = httptest.NewRequest(http.MethodGet, "/stats", nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var stats struct {
		Server struct {
			Admitted int64 `json:"Admitted"`
		} `json:"server"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Server.Admitted < 1 {
		t.Fatalf("stats must report admissions: %s", w.Body.String())
	}
}

// TestWarmingGate: a server constructed warming refuses queries and
// reports 503 "warming" from /healthz until SetReady; after the flip
// both endpoints behave normally.
func TestWarmingGate(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{Warming: true})

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "warming") {
		t.Fatalf("warming healthz: %d %s", w.Code, w.Body.String())
	}
	if w := postQuery(t, srv, fmt.Sprintf(`{"sql": %q}`, boundedSQL)); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("warming query: %d, want 503", w.Code)
	} else if w.Header().Get("Retry-After") == "" {
		t.Fatal("warming query rejection must carry Retry-After")
	}

	srv.SetReady()
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("ready healthz: %d %s", w.Code, w.Body.String())
	}
	if w := postQuery(t, srv, fmt.Sprintf(`{"sql": %q}`, boundedSQL)); w.Code != http.StatusOK {
		t.Fatalf("ready query: %d %s", w.Code, w.Body.String())
	}
}

// TestAdmissionEWMARoundTrip: costs learned by one server seed a
// successor through the export/import pair the warmup file uses.
func TestAdmissionEWMARoundTrip(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{})
	if w := postQuery(t, srv, fmt.Sprintf(`{"sql": %q}`, boundedSQL)); w.Code != http.StatusOK {
		t.Fatalf("query: %d", w.Code)
	}
	m := srv.ExportAdmissionEWMA()
	if len(m) == 0 {
		t.Fatal("no EWMA learned after a completed query")
	}
	next := New(eng, Config{})
	next.ImportAdmissionEWMA(m)
	if got := next.ExportAdmissionEWMA(); !reflect.DeepEqual(got, m) {
		t.Fatalf("imported EWMA %v, want %v", got, m)
	}
}

// TestGracefulDrain pins SIGTERM semantics at the http.Server level: an
// in-flight query completes while Shutdown waits, and the listener stops
// accepting afterwards.
func TestGracefulDrain(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{})
	hs := httptest.NewServer(srv)
	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		close(started)
		resp, err := http.Post(hs.URL+"/query", "application/json",
			strings.NewReader(fmt.Sprintf(`{"sql": %q, "stream": true}`, boundedSQL)))
		if err != nil {
			result <- err
			return
		}
		defer resp.Body.Close()
		body := new(strings.Builder)
		if _, err := fmt.Fprint(body, readAll(resp)); err != nil {
			result <- err
			return
		}
		if resp.StatusCode != http.StatusOK || !strings.Contains(body.String(), `"final":true`) {
			result <- fmt.Errorf("draining request broken: %d %s", resp.StatusCode, body.String())
			return
		}
		result <- nil
	}()
	<-started
	// Close drains like Shutdown for httptest servers: it blocks until
	// outstanding requests finish.
	time.Sleep(10 * time.Millisecond)
	hs.Close()
	if err := <-result; err != nil {
		t.Fatal(err)
	}
}

func readAll(resp *http.Response) string {
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
