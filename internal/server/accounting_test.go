package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blinkdb/internal/admission"
	"blinkdb/internal/loadgen"
)

// slowWriter throttles every response write, imitating a streaming
// client that drains NDJSON frames slowly. Deliberately NOT an
// http.Flusher: each frame still passes through Write, where the delay
// lives.
type slowWriter struct {
	http.ResponseWriter
	perWrite time.Duration
}

func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.perWrite)
	return s.ResponseWriter.Write(p)
}

// TestReleaseExcludesClientDrainTime pins the compute-side Release
// contract: a slow streaming consumer must not inflate the admission
// EWMA. Pre-fix, Release was charged the full handler wall time
// (including per-frame drain sleeps), so the learned cost tracked the
// client's read speed instead of the engine's.
func TestReleaseExcludesClientDrainTime(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{})

	const perWrite = 150 * time.Millisecond
	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(fmt.Sprintf(`{"sql": %q, "stream": true}`, boundedSQL)))
	w := &slowWriter{ResponseWriter: httptest.NewRecorder(), perWrite: perWrite}
	begin := time.Now()
	srv.ServeHTTP(w, req)
	wall := time.Since(begin).Seconds()

	if wall < perWrite.Seconds() {
		t.Fatalf("handler wall %.3fs: the slow writer never throttled anything", wall)
	}
	ewma := srv.ExportAdmissionEWMA()
	if len(ewma) != 1 {
		t.Fatalf("want one learned template, got %v", ewma)
	}
	var learned float64
	for _, v := range ewma {
		learned = v
	}
	if learned <= 0 {
		t.Fatalf("completed stream must teach the cost model, got %v", ewma)
	}
	// At least one throttled frame means ≥ perWrite of pure drain time;
	// compute-side accounting must have excluded it. The pre-fix code
	// (Release with wall-from-grant) fails here by ~the full drain time.
	if learned > wall-0.1 {
		t.Fatalf("EWMA %.3fs is within 100ms of handler wall %.3fs: drain time leaked into the cost model", learned, wall)
	}
}

// TestQueueCancelAccounted pins conservation for queued-then-gone
// clients: a request cancelled while waiting for admission must be
// counted (engine Cancelled, server QueueCancelled) — pre-fix it
// vanished from every ledger.
func TestQueueCancelAccounted(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{Admission: admission.Config{
		MaxConcurrent: 1, MaxQueue: 4, MaxBacklogSeconds: -1,
	}})
	// Occupy the only slot so the HTTP arrival queues.
	hold, err := srv.adm.Admit(context.Background(), "hold", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release(0)

	before := eng.Stats()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest(http.MethodPost, "/query",
			strings.NewReader(fmt.Sprintf(`{"sql": %q}`, boundedSQL))).WithContext(ctx)
		srv.ServeHTTP(httptest.NewRecorder(), req)
	}()
	for i := 0; srv.adm.Snapshot().Queued != 1; i++ {
		if i > 5000 {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	after := eng.Stats()
	if after.Cancelled != before.Cancelled+1 {
		t.Fatalf("engine Cancelled: before %d after %d — queued cancel vanished", before.Cancelled, after.Cancelled)
	}
	if after.Admitted != before.Admitted {
		t.Fatalf("a cancelled-in-queue request must not count admitted: %+v", after)
	}
	snap := srv.met.Snapshot()
	if snap.QueueCancelled != 1 {
		t.Fatalf("server QueueCancelled = %d, want 1", snap.QueueCancelled)
	}
	if snap.Admitted != 0 || snap.Shed != 0 {
		t.Fatalf("admitted/shed must stay 0: %+v", snap)
	}
}

// TestRetryAfterSecondsCeil pins the header rounding: Retry-After must
// round UP (1.9s → 2) and never emit the illegal 0.
func TestRetryAfterSecondsCeil(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Nanosecond, 1},
		{900 * time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Nanosecond, 2},
		{1900 * time.Millisecond, 2},
		{2 * time.Second, 2},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestLoadgenConservation drives the serving path with a heterogeneous
// loadgen mix — patient and impatient cohorts against one slot — and
// asserts the accounting identity the queue-cancel fix makes possible:
// every arrival that reached admission is admitted, shed, or
// queue-cancelled. Nothing vanishes.
func TestLoadgenConservation(t *testing.T) {
	eng := demoEngine(t, 20000)
	srv := New(eng, Config{Admission: admission.Config{
		MaxConcurrent: 1, MaxQueue: 2, MaxBacklogSeconds: -1,
	}})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	spec := loadgen.Spec{
		Seed:     1234,
		Duration: 1500 * time.Millisecond,
		Cohorts: []loadgen.Cohort{
			{
				Name: "steady", SLOClass: "steady",
				Clients: 4, RateQPS: 30, RateSkew: 1.2,
				Arrival: loadgen.Poisson,
				Templates: []loadgen.Template{{
					Name:        "avg-city",
					Pattern:     "SELECT AVG(sessiontime) FROM sessions WHERE city = 'c%d'",
					Cardinality: 6, Skew: 1.3, Weight: 1,
				}},
				Bounds:         []loadgen.Bound{{ErrorPct: 10, Confidence: 95, Weight: 1}},
				StreamFraction: 0.3,
			},
			{
				Name: "impatient", SLOClass: "impatient",
				Clients: 2, RateQPS: 20,
				Arrival: loadgen.Gamma, Burstiness: 4,
				Templates: []loadgen.Template{{
					Name:        "avg-os",
					Pattern:     "SELECT AVG(sessiontime) FROM sessions WHERE os = 'o%d'",
					Cardinality: 3, Weight: 1,
				}},
				GiveUpSeconds: 0.2,
			},
		},
	}
	tr := loadgen.Generate(spec)
	if len(tr.Requests) == 0 {
		t.Fatal("empty trace")
	}

	// Hold the slot for the first part of the run so queues build, sheds
	// fire, and impatient clients abandon while queued.
	hold, err := srv.adm.Admit(context.Background(), "hold", 1)
	if err != nil {
		t.Fatal(err)
	}
	release := time.AfterFunc(400*time.Millisecond, func() { hold.Release(0) })
	defer release.Stop()

	rep, err := loadgen.Run(tr, loadgen.RunOptions{BaseURL: hs.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errored != 0 {
		t.Fatalf("unexpected request errors: %+v", rep)
	}
	if rep.Served == 0 {
		t.Fatalf("nothing served: %+v", rep)
	}

	// Handlers for abandoned requests may still be unwinding; poll until
	// the server-side ledger balances against dispatched arrivals.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := srv.met.Snapshot()
		if snap.Admitted+snap.Shed+snap.QueueCancelled == int64(rep.Arrivals) {
			if rep.Cancelled > 0 && snap.QueueCancelled == 0 {
				t.Logf("note: all %d client cancels hit running queries, none while queued", rep.Cancelled)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("conservation violated: admitted %d + shed %d + queueCancelled %d != arrivals %d",
				snap.Admitted, snap.Shed, snap.QueueCancelled, rep.Arrivals)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
