// Package server is the HTTP serving layer over a blinkdb.Engine: a
// plain http.Handler (embeddable in any mux or test server) that exposes
// bounded queries as JSON, streams refinement sessions as NDJSON or SSE,
// and sheds overload *before any scanning happens* via ELP-priced
// admission control.
//
// The admission gate sits between parse and plan: a request is parsed
// (cheap, allocation-bounded) so its normalized template key prices the
// queue entry — using the template's observed-latency calibration when
// the engine has seen it, a flat default otherwise — and only admitted
// requests ever reach the planner or executor. A rejected request costs
// one parse and one mutex acquisition and gets 429 with a Retry-After
// estimated from the predicted backlog, which is what keeps a 2×
// overload burst from converting bounded-latency queries into an
// unbounded queue.
//
// Endpoints:
//
//	POST /query   {"sql": "...", "stream": true, ...}  (also GET with ?sql=)
//	GET  /healthz liveness
//	GET  /stats   engine + admission + serving counters
//
// Streaming responses are NDJSON frames by default, Server-Sent Events
// when the client sends Accept: text/event-stream. Every frame is a
// complete answer with error bounds; the last frame has "final": true
// and is bit-identical to what the non-streaming path returns.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"blinkdb"
	"blinkdb/internal/admission"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/telemetry"
)

// Config tunes the serving layer. The zero value serves with the
// admission defaults.
type Config struct {
	// Admission bounds the controller (see admission.Config).
	Admission admission.Config
	// DefaultCostSeconds prices templates the engine has never observed
	// (default 0.1s).
	DefaultCostSeconds float64
	// Warming starts the server in the not-ready state: /healthz reports
	// 503 {"status":"warming"} and /query refuses with 503 until
	// SetReady. Lets the listener come up immediately while the engine
	// loads samples and warmup state behind it.
	Warming bool
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// Server is the HTTP handler. Use New.
type Server struct {
	eng   *blinkdb.Engine
	adm   *admission.Controller
	met   *telemetry.ServerMetrics
	mux   *http.ServeMux
	cfg   Config
	ready atomic.Bool
}

// New wraps eng in the serving layer.
func New(eng *blinkdb.Engine, cfg Config) *Server {
	if cfg.DefaultCostSeconds <= 0 {
		cfg.DefaultCostSeconds = 0.1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{
		eng: eng,
		adm: admission.New(cfg.Admission),
		met: &telemetry.ServerMetrics{},
		mux: http.NewServeMux(),
		cfg: cfg,
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.ready.Store(!cfg.Warming)
	return s
}

// SetReady marks warming complete: /healthz flips to 200 "ok" and
// /query starts admitting. One-way; call after samples and warmup state
// have loaded.
func (s *Server) SetReady() { s.ready.Store(true) }

// ExportAdmissionEWMA snapshots the admission controller's learned
// per-template costs for persistence in the engine's warmup file.
func (s *Server) ExportAdmissionEWMA() map[string]float64 { return s.adm.ExportEWMA() }

// ImportAdmissionEWMA seeds the admission controller from a persisted
// snapshot. Live observations always win over imported ones.
func (s *Server) ImportAdmissionEWMA(m map[string]float64) { s.adm.ImportEWMA(m) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the serving histograms (queue wait, TTFA, TTF) for
// benchmarking and tests.
func (s *Server) Metrics() *telemetry.ServerMetrics { return s.met }

// queryRequest is the /query payload. GET requests supply the same
// fields as URL parameters (sql, stream, error, confidence, time).
type queryRequest struct {
	SQL string `json:"sql"`
	// Stream requests a refinement session (NDJSON or SSE) instead of a
	// single JSON answer.
	Stream bool `json:"stream,omitempty"`
	// Error is a per-request error bound ("10%" relative or "0.5"
	// absolute), appended to the SQL as an ERROR WITHIN clause. Rejected
	// when the SQL already carries one.
	Error string `json:"error,omitempty"`
	// Confidence qualifies Error ("95%"; default the engine's).
	Confidence string `json:"confidence,omitempty"`
	// TimeSeconds is a per-request response-time bound, appended as a
	// WITHIN n SECONDS clause. Rejected when the SQL already carries one.
	TimeSeconds float64 `json:"time_seconds,omitempty"`
}

// frame is one streamed refinement (or the single non-streaming answer,
// which is a lone final frame).
type frame struct {
	Seq       int         `json:"seq"`
	Level     int         `json:"level"`
	Final     bool        `json:"final"`
	ElapsedMS float64     `json:"elapsed_ms"`
	Result    *resultJSON `json:"result,omitempty"`
	Error     string      `json:"error,omitempty"`
}

// resultJSON is the wire shape of blinkdb.Result.
type resultJSON struct {
	Rows              []rowJSON `json:"rows"`
	Confidence        float64   `json:"confidence"`
	SimLatencySeconds float64   `json:"sim_latency_seconds"`
	Sample            string    `json:"sample"`
	Explanation       string    `json:"explanation"`
	PlanCache         string    `json:"plan_cache,omitempty"`
	ResultCache       string    `json:"result_cache,omitempty"`
	RowsScanned       int64     `json:"rows_scanned"`
	RowsMatched       int64     `json:"rows_matched"`
	PredictedBound    float64   `json:"predicted_bound"`
}

type rowJSON struct {
	Group string     `json:"group"`
	Cells []cellJSON `json:"cells"`
}

type cellJSON struct {
	Name   string  `json:"name,omitempty"`
	Value  float64 `json:"value"`
	Bound  float64 `json:"bound"`
	RelErr float64 `json:"rel_err"`
	Exact  bool    `json:"exact"`
	Rows   int64   `json:"rows"`
}

func toResultJSON(res *blinkdb.Result) *resultJSON {
	out := &resultJSON{
		Confidence:        res.Confidence,
		SimLatencySeconds: res.SimLatencySeconds,
		Sample:            res.SampleDescription,
		Explanation:       res.Explanation,
		PlanCache:         res.PlanCache,
		ResultCache:       res.ResultCache,
		RowsScanned:       res.RowsScanned,
		RowsMatched:       res.RowsMatched,
		PredictedBound:    res.PredictedBound,
	}
	for _, row := range res.Rows {
		rj := rowJSON{Group: row.Group}
		for _, c := range row.Cells {
			re := c.RelErr
			if math.IsInf(re, 0) || math.IsNaN(re) {
				re = -1 // JSON has no Inf; -1 marks "undefined relative error"
			}
			rj.Cells = append(rj.Cells, cellJSON{
				Name: c.Name, Value: c.Value, Bound: c.Bound,
				RelErr: re, Exact: c.Exact, Rows: c.Rows,
			})
		}
		out.Rows = append(out.Rows, rj)
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "warming"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"engine":    s.eng.Stats(),
		"admission": s.adm.Snapshot(),
		"server":    s.met.Snapshot(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "warming: samples and warmup state still loading"})
		return
	}
	arrival := s.cfg.Now()
	req, err := decodeRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sql, key, err := s.bindBounds(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Admission: everything above was parse-only. Price the queue entry
	// with the template's observed calibration when the engine has one.
	predicted := s.cfg.DefaultCostSeconds
	if obs, ok := s.eng.TemplateWallSeconds(key); ok {
		predicted = obs
	}
	ticket, err := s.adm.Admit(r.Context(), key, predicted)
	if err != nil {
		var shed *admission.ShedError
		if errors.As(err, &shed) {
			s.eng.NoteShed()
			s.met.RecordShed()
			retry := retryAfterSeconds(shed.RetryAfter)
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":               "overloaded: query shed by admission control",
				"retry_after_seconds": retry,
				"queued":              shed.Queued,
				"backlog_seconds":     shed.BacklogSeconds,
			})
			return
		}
		// Client went away while queued. Nothing useful to write, but the
		// arrival must not vanish from accounting: without these two
		// records, admitted + shed + queue-cancelled drifts away from
		// arrivals under bursty load and conservation checks can't hold.
		s.eng.NoteCancelled()
		s.met.RecordQueueCancel()
		return
	}
	s.eng.NoteAdmitted()
	s.met.RecordAdmit(ticket.WaitSeconds)

	// Release the ticket with compute-side seconds only. The handlers
	// stop their clock when the final frame is produced, not when the
	// last byte is flushed to the client: charging wire-drain time here
	// would let one slow streaming consumer inflate the template's
	// admission EWMA and shed everyone else's queries.
	var compute float64
	if req.Stream {
		compute = s.streamQuery(w, r, sql, arrival)
	} else {
		compute = s.singleQuery(w, r, sql, arrival)
	}
	ticket.Release(compute)
}

// retryAfterSeconds renders a shed backoff as whole seconds for the
// Retry-After header and the JSON mirror. Rounds up — truncation would
// tell clients to come back before the backlog drains, and could emit
// the illegal "Retry-After: 0" for sub-second hints.
func retryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	return int((d + time.Second - 1) / time.Second)
}

// singleQuery answers with one JSON frame. It returns the engine
// compute seconds for admission calibration (0 when the query did not
// complete — Release skips learning on non-positive observations).
func (s *Server) singleQuery(w http.ResponseWriter, r *http.Request, sql string, arrival time.Time) float64 {
	start := s.cfg.Now()
	res, err := s.eng.QueryCtx(r.Context(), sql)
	if err != nil {
		if r.Context().Err() != nil {
			return 0 // client gone; the engine already counted the cancel
		}
		writeError(w, http.StatusUnprocessableEntity, err)
		return 0
	}
	compute := s.cfg.Now().Sub(start).Seconds()
	elapsed := s.cfg.Now().Sub(arrival).Seconds()
	s.met.RecordFirstAnswer(elapsed)
	s.met.RecordFinal(elapsed)
	writeJSON(w, http.StatusOK, frame{
		Seq: 0, Level: res.Level, Final: true,
		ElapsedMS: elapsed * 1000, Result: toResultJSON(res),
	})
	return compute
}

// streamQuery answers with one frame per refinement: NDJSON lines by
// default, SSE "data:" events when the client asked for an event stream.
// It returns the engine compute seconds — wall time minus emit/flush
// time, accumulated in segments that pause while a frame drains to the
// client — so a slow reader cannot poison the admission EWMA. 0 when
// the stream did not complete.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, sql string, arrival time.Time) float64 {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(f frame) error {
		if sse {
			if _, err := fmt.Fprintf(w, "data: "); err != nil {
				return err
			}
		}
		if err := enc.Encode(f); err != nil { // Encode appends '\n'
			return err
		}
		if sse {
			if _, err := fmt.Fprintf(w, "\n"); err != nil {
				return err
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	first := true
	compute := 0.0
	segStart := s.cfg.Now() // current compute segment; paused during emit
	err := s.eng.QueryStream(r.Context(), sql, func(u blinkdb.StreamUpdate) error {
		now := s.cfg.Now()
		compute += now.Sub(segStart).Seconds()
		elapsed := now.Sub(arrival).Seconds()
		if first {
			s.met.RecordFirstAnswer(elapsed)
			first = false
		}
		if u.Final {
			s.met.RecordFinal(elapsed)
		}
		emitErr := emit(frame{
			Seq: u.Seq, Level: u.Level, Final: u.Final,
			ElapsedMS: elapsed * 1000, Result: toResultJSON(u.Result),
		})
		segStart = s.cfg.Now()
		return emitErr
	})
	compute += s.cfg.Now().Sub(segStart).Seconds()
	if err != nil {
		if r.Context().Err() == nil {
			// Headers are gone; deliver the failure in-band as a final frame.
			_ = emit(frame{Final: true, Error: err.Error(),
				ElapsedMS: s.cfg.Now().Sub(arrival).Seconds() * 1000})
		}
		return 0
	}
	return compute
}

// decodeRequest reads a queryRequest from JSON (POST) or URL parameters
// (GET).
func decodeRequest(r *http.Request) (*queryRequest, error) {
	req := &queryRequest{}
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(req); err != nil {
			return nil, fmt.Errorf("bad request body: %w", err)
		}
	case http.MethodGet:
		qv := r.URL.Query()
		req.SQL = qv.Get("sql")
		req.Stream = qv.Get("stream") == "1" || qv.Get("stream") == "true"
		req.Error = qv.Get("error")
		req.Confidence = qv.Get("confidence")
		if t := qv.Get("time"); t != "" {
			secs, err := strconv.ParseFloat(t, 64)
			if err != nil {
				return nil, fmt.Errorf("bad time parameter %q", t)
			}
			req.TimeSeconds = secs
		}
	default:
		return nil, fmt.Errorf("method %s not allowed", r.Method)
	}
	if strings.TrimSpace(req.SQL) == "" {
		return nil, errors.New("missing sql")
	}
	return req, nil
}

// bindBounds validates the SQL, applies per-request bound parameters as
// clause text, and returns the final SQL plus its normalized template
// key (the admission pricing key). Bound parameters conflict with bounds
// already written in the SQL — that's an error, not an override.
func (s *Server) bindBounds(req *queryRequest) (sql string, key string, err error) {
	q, err := sqlparser.Parse(req.SQL)
	if err != nil {
		return "", "", fmt.Errorf("parse error: %w", err)
	}
	sql = strings.TrimRight(strings.TrimSpace(req.SQL), ";")
	if req.Error != "" {
		if q.Err != nil {
			return "", "", errors.New("sql already specifies an ERROR bound; drop the error parameter")
		}
		bound, pct, err := parseBoundNumber(req.Error)
		if err != nil {
			return "", "", fmt.Errorf("bad error parameter: %w", err)
		}
		if pct {
			sql += fmt.Sprintf(" ERROR WITHIN %g%%", bound)
		} else {
			sql += fmt.Sprintf(" ERROR WITHIN %g", bound)
		}
		if req.Confidence != "" {
			conf, _, err := parseBoundNumber(req.Confidence)
			if err != nil {
				return "", "", fmt.Errorf("bad confidence parameter: %w", err)
			}
			sql += fmt.Sprintf(" AT CONFIDENCE %g%%", normalizeConfidencePct(conf))
		}
	} else if req.Confidence != "" {
		return "", "", errors.New("confidence parameter requires an error parameter")
	}
	if req.TimeSeconds != 0 {
		if req.TimeSeconds < 0 {
			return "", "", errors.New("time parameter must be positive")
		}
		if q.Time != nil {
			return "", "", errors.New("sql already specifies a WITHIN time bound; drop the time parameter")
		}
		sql += fmt.Sprintf(" WITHIN %g SECONDS", req.TimeSeconds)
	}
	final, err := sqlparser.Parse(sql)
	if err != nil {
		return "", "", fmt.Errorf("parse error after binding bounds: %w", err)
	}
	key, _ = sqlparser.Normalize(final)
	return sql, key, nil
}

// parseBoundNumber parses "10%" or "0.1"-style parameters.
func parseBoundNumber(s string) (v float64, pct bool, err error) {
	s = strings.TrimSpace(s)
	if strings.HasSuffix(s, "%") {
		pct = true
		s = strings.TrimSuffix(s, "%")
	}
	v, err = strconv.ParseFloat(s, 64)
	if err != nil || v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, false, fmt.Errorf("not a valid bound: %q", s)
	}
	return v, pct, nil
}

// normalizeConfidencePct maps 0.95 and 95 (and "95%") all to 95.
func normalizeConfidencePct(v float64) float64 {
	if v <= 1 {
		return v * 100
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
