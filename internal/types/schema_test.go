package types

import (
	"reflect"
	"testing"
)

func demoSchema() *Schema {
	return NewSchema(
		Column{Name: "City", Kind: KindString},
		Column{Name: "OS", Kind: KindString},
		Column{Name: "SessionTime", Kind: KindFloat},
	)
}

func TestSchemaIndexCaseInsensitive(t *testing.T) {
	s := demoSchema()
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i := s.Index("city"); i != 0 {
		t.Errorf("Index(city) = %d", i)
	}
	if i := s.Index("SESSIONTIME"); i != 2 {
		t.Errorf("Index(SESSIONTIME) = %d", i)
	}
	if i := s.Index("nope"); i != -1 {
		t.Errorf("Index(nope) = %d", i)
	}
	if _, err := s.MustIndex("nope"); err == nil {
		t.Error("MustIndex should fail for unknown column")
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"City", "OS", "SessionTime"}) {
		t.Errorf("Names() = %v", got)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate column should panic")
		}
	}()
	NewSchema(Column{Name: "a"}, Column{Name: "A"})
}

func TestSchemaString(t *testing.T) {
	got := demoSchema().String()
	want := "(City STRING, OS STRING, SessionTime DOUBLE)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestColumnSetCanonical(t *testing.T) {
	a := NewColumnSet("OS", "city", "os", " URL ")
	if a.Key() != "city,os,url" {
		t.Errorf("Key = %q", a.Key())
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d", a.Len())
	}
	if a.String() != "[city os url]" {
		t.Errorf("String = %q", a.String())
	}
	if !a.Contains("URL") || a.Contains("genre") {
		t.Error("Contains failed")
	}
}

func TestColumnSetSubsetUnionEqual(t *testing.T) {
	a := NewColumnSet("city")
	b := NewColumnSet("city", "os")
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("subset relation wrong")
	}
	if !a.SubsetOf(a) {
		t.Error("set must be subset of itself")
	}
	u := a.Union(NewColumnSet("os"))
	if !u.Equal(b) {
		t.Errorf("union = %v", u)
	}
	if NewColumnSet().Empty() != true || b.Empty() {
		t.Error("Empty wrong")
	}
	empty := NewColumnSet()
	if !empty.SubsetOf(a) {
		t.Error("empty set is subset of everything")
	}
}

func TestColumnSetSubsets(t *testing.T) {
	c := NewColumnSet("a", "b", "c")
	all := c.Subsets(0)
	if len(all) != 7 {
		t.Fatalf("3-set has 7 non-empty subsets, got %d", len(all))
	}
	limited := c.Subsets(2)
	if len(limited) != 6 {
		t.Fatalf("subsets ≤2 of 3-set = 6, got %d", len(limited))
	}
	for _, s := range limited {
		if s.Len() > 2 {
			t.Errorf("subset %v exceeds max size", s)
		}
	}
}

func TestRowKey(t *testing.T) {
	r := Row{Str("NY"), Str("Win7"), Float(1.5)}
	k1 := RowKey(r, []int{0})
	k2 := RowKey(r, []int{0, 1})
	if k1 == k2 {
		t.Error("different projections should give different keys")
	}
	r2 := Row{Str("NY"), Str("OSX"), Float(1.5)}
	if RowKey(r, []int{0}) != RowKey(r2, []int{0}) {
		t.Error("same projection values must share key")
	}
	if RowKey(r, []int{0, 1}) == RowKey(r2, []int{0, 1}) {
		t.Error("differing projections must not share key")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Str("x")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0].I != 1 {
		t.Error("clone must not alias")
	}
}
