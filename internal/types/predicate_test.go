package types

import (
	"math/rand"
	"testing"
)

func cmp(col string, idx int, op CmpOp, v Value) *CmpPred {
	return &CmpPred{Col: col, ColIdx: idx, Op: op, Val: v}
}

func TestCmpOps(t *testing.T) {
	r := Row{Int(5)}
	cases := []struct {
		op   CmpOp
		val  int64
		want bool
	}{
		{CmpEq, 5, true}, {CmpEq, 4, false},
		{CmpNe, 4, true}, {CmpNe, 5, false},
		{CmpLt, 6, true}, {CmpLt, 5, false},
		{CmpLe, 5, true}, {CmpLe, 4, false},
		{CmpGt, 4, true}, {CmpGt, 5, false},
		{CmpGe, 5, true}, {CmpGe, 6, false},
	}
	for _, c := range cases {
		p := cmp("a", 0, c.op, Int(c.val))
		if got := p.Eval(r); got != c.want {
			t.Errorf("5 %s %d = %v, want %v", c.op, c.val, got, c.want)
		}
	}
}

func TestBoolCombinators(t *testing.T) {
	r := Row{Int(5), Str("NY")}
	a := cmp("a", 0, CmpGt, Int(3))    // true
	b := cmp("b", 1, CmpEq, Str("LA")) // false

	and := &AndPred{Kids: []Predicate{a, b}}
	if and.Eval(r) {
		t.Error("AND of true,false should be false")
	}
	or := &OrPred{Kids: []Predicate{a, b}}
	if !or.Eval(r) {
		t.Error("OR of true,false should be true")
	}
	not := &NotPred{Kid: b}
	if !not.Eval(r) {
		t.Error("NOT false should be true")
	}
	if !(TruePred{}).Eval(r) {
		t.Error("TruePred should match")
	}
}

func TestPredicateColumns(t *testing.T) {
	a := cmp("city", 0, CmpEq, Str("NY"))
	b := cmp("os", 1, CmpEq, Str("Win7"))
	and := &AndPred{Kids: []Predicate{a, b, cmp("city", 0, CmpNe, Str("LA"))}}
	if got := and.Columns().Key(); got != "city,os" {
		t.Errorf("Columns = %q", got)
	}
	not := &NotPred{Kid: and}
	if got := not.Columns().Key(); got != "city,os" {
		t.Errorf("NOT Columns = %q", got)
	}
	if !(TruePred{}).Columns().Empty() {
		t.Error("TruePred has no columns")
	}
}

func TestPredicateString(t *testing.T) {
	p := &AndPred{Kids: []Predicate{
		cmp("city", 0, CmpEq, Str("NY")),
		cmp("n", 1, CmpGe, Int(3)),
	}}
	want := "(city = 'NY') AND (n >= 3)"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// TestSplitDisjunctsEquivalence property-checks that the OR of the split
// conjunctive disjuncts matches the original predicate on random rows.
func TestSplitDisjunctsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Random predicate tree over 3 int columns.
	var gen func(depth int) Predicate
	gen = func(depth int) Predicate {
		if depth == 0 || rng.Intn(3) == 0 {
			return cmp("c", rng.Intn(3), CmpOp(rng.Intn(6)), Int(int64(rng.Intn(5))))
		}
		switch rng.Intn(3) {
		case 0:
			return &AndPred{Kids: []Predicate{gen(depth - 1), gen(depth - 1)}}
		case 1:
			return &OrPred{Kids: []Predicate{gen(depth - 1), gen(depth - 1)}}
		default:
			return &NotPred{Kid: gen(depth - 1)}
		}
	}
	for trial := 0; trial < 200; trial++ {
		p := gen(3)
		ds := SplitDisjuncts(p)
		if len(ds) == 0 {
			t.Fatal("split produced no disjuncts")
		}
		for row := 0; row < 20; row++ {
			r := Row{Int(int64(rng.Intn(5))), Int(int64(rng.Intn(5))), Int(int64(rng.Intn(5)))}
			want := p.Eval(r)
			got := false
			for _, d := range ds {
				if d.Eval(r) {
					got = true
					break
				}
			}
			if got != want {
				t.Fatalf("trial %d: split(%s) != original on row %v", trial, p, r)
			}
		}
	}
}

// TestSplitDisjunctsConjunctiveOnly checks that no disjunct contains an OR.
func TestSplitDisjunctsConjunctiveOnly(t *testing.T) {
	p := &AndPred{Kids: []Predicate{
		&OrPred{Kids: []Predicate{
			cmp("a", 0, CmpEq, Int(1)),
			cmp("a", 0, CmpEq, Int(2)),
		}},
		cmp("b", 1, CmpGt, Int(0)),
	}}
	ds := SplitDisjuncts(p)
	if len(ds) != 2 {
		t.Fatalf("want 2 disjuncts, got %d", len(ds))
	}
	var hasOr func(Predicate) bool
	hasOr = func(q Predicate) bool {
		switch tq := q.(type) {
		case *OrPred:
			return true
		case *AndPred:
			for _, k := range tq.Kids {
				if hasOr(k) {
					return true
				}
			}
		case *NotPred:
			// NOT over a leaf only at this point.
			return hasOr(tq.Kid)
		}
		return false
	}
	for _, d := range ds {
		if hasOr(d) {
			t.Errorf("disjunct %s still contains OR", d)
		}
	}
}
