package types

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique
// (case-insensitive); duplicates panic since schemas are program constants.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			panic(fmt.Sprintf("types: duplicate column %q", c.Name))
		}
		s.byName[key] = i
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// MustIndex is Index but returns an error for unknown columns.
func (s *Schema) MustIndex(name string) (int, error) {
	if i := s.Index(name); i >= 0 {
		return i, nil
	}
	return -1, fmt.Errorf("unknown column %q", name)
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a BIGINT, b STRING)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Row is one record; index i corresponds to schema column i.
type Row []Value

// Clone returns a deep-enough copy of the row (values are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// ColumnSet is a canonicalised set of column names. The canonical form is
// lower-cased, sorted and comma-joined, so it can be used as a map key and
// compared for subset relations. It corresponds to φ in the paper.
type ColumnSet struct {
	cols []string // sorted, lower-case, unique
}

// NewColumnSet canonicalises names into a set.
func NewColumnSet(names ...string) ColumnSet {
	seen := make(map[string]bool, len(names))
	cols := make([]string, 0, len(names))
	for _, n := range names {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		cols = append(cols, n)
	}
	sort.Strings(cols)
	return ColumnSet{cols: cols}
}

// Columns returns the sorted member names (do not mutate).
func (c ColumnSet) Columns() []string { return c.cols }

// Len returns the number of columns in the set.
func (c ColumnSet) Len() int { return len(c.cols) }

// Empty reports whether the set has no columns.
func (c ColumnSet) Empty() bool { return len(c.cols) == 0 }

// Key returns the canonical string form, e.g. "city,os".
func (c ColumnSet) Key() string { return strings.Join(c.cols, ",") }

// String renders the set as "[city os]" to match the paper's figures.
func (c ColumnSet) String() string { return "[" + strings.Join(c.cols, " ") + "]" }

// Contains reports whether name is a member.
func (c ColumnSet) Contains(name string) bool {
	name = strings.ToLower(name)
	i := sort.SearchStrings(c.cols, name)
	return i < len(c.cols) && c.cols[i] == name
}

// SubsetOf reports whether every member of c is in other (c ⊆ other).
func (c ColumnSet) SubsetOf(other ColumnSet) bool {
	if len(c.cols) > len(other.cols) {
		return false
	}
	for _, n := range c.cols {
		if !other.Contains(n) {
			return false
		}
	}
	return true
}

// Union returns c ∪ other.
func (c ColumnSet) Union(other ColumnSet) ColumnSet {
	return NewColumnSet(append(append([]string{}, c.cols...), other.cols...)...)
}

// Equal reports set equality.
func (c ColumnSet) Equal(other ColumnSet) bool {
	if len(c.cols) != len(other.cols) {
		return false
	}
	for i := range c.cols {
		if c.cols[i] != other.cols[i] {
			return false
		}
	}
	return true
}

// Subsets enumerates every non-empty subset of c with at most maxSize
// members. Used by the optimizer's candidate generation (§3.2.2).
func (c ColumnSet) Subsets(maxSize int) []ColumnSet {
	n := len(c.cols)
	if maxSize <= 0 || maxSize > n {
		maxSize = n
	}
	var out []ColumnSet
	// Enumerate bitmasks; n is small (template column sets are ≤ ~6 wide).
	for mask := 1; mask < 1<<uint(n); mask++ {
		if popcount(mask) > maxSize {
			continue
		}
		var sel []string
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sel = append(sel, c.cols[i])
			}
		}
		out = append(out, NewColumnSet(sel...))
	}
	return out
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// RowKey concatenates the key encodings of the values of cols (given as
// schema indices) in row r. Rows with equal projections share a key.
func RowKey(r Row, idx []int) string {
	if len(idx) == 1 {
		return r[idx[0]].Key()
	}
	var b strings.Builder
	for i, j := range idx {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(r[j].Key())
	}
	return b.String()
}
