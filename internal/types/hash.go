package types

import "math"

// FNV-1a constants (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashSeed is the initial hash state for HashInto chains.
const HashSeed uint64 = fnvOffset64

// HashInto folds the value into an FNV-1a hash state. Values that encode
// to equal Key() strings hash equally (Int and Bool share the integer
// space, mirroring Key()), so a hash of the GROUP BY values can replace
// the string-concatenated RowKey in grouping hot paths.
func (v Value) HashInto(h uint64) uint64 {
	switch v.Kind {
	case KindNull:
		return (h ^ 0) * fnvPrime64
	case KindInt, KindBool:
		return hashUint64((h^'i')*fnvPrime64, uint64(v.I))
	case KindFloat:
		return hashUint64((h^'f')*fnvPrime64, math.Float64bits(v.F))
	default: // KindString
		h = (h ^ 's') * fnvPrime64
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * fnvPrime64
		}
		return h
	}
}

func hashUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	return h
}

// HashRowKey hashes the projection of r onto idx — the hashed equivalent
// of RowKey(r, idx).
func HashRowKey(r Row, idx []int) uint64 {
	h := HashSeed
	for _, j := range idx {
		h = r[j].HashInto(h)
	}
	return h
}

// GroupEqual reports whether two values are the same GROUP BY key, with
// the same equivalence RowKey/Key() encode: NULLs match each other, Int
// and Bool compare by integer payload, floats by bit pattern, strings by
// content. This is deliberately stricter than Compare (Int(1) and
// Float(1) are distinct groups, as they were under string keys).
func GroupEqual(a, b Value) bool {
	ka, kb := groupClass(a.Kind), groupClass(b.Kind)
	if ka != kb {
		return false
	}
	switch ka {
	case 0: // NULL
		return true
	case 1: // integer-like
		return a.I == b.I
	case 2: // float
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	default: // string
		return a.S == b.S
	}
}

func groupClass(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindBool:
		return 1
	case KindFloat:
		return 2
	default:
		return 3
	}
}
