// Package types defines the primitive data model shared by every layer of
// BlinkDB-Go: typed values, rows, schemas and comparison helpers.
//
// The representation is deliberately flat (a tagged struct rather than an
// interface) so that rows can be stored contiguously and compared without
// allocation, which matters for the sampling and execution hot paths.
package types

import (
	"fmt"
	"strconv"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

const (
	// KindNull is the zero Kind; it compares less than every other value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE 754 float.
	KindFloat
	// KindString is an immutable UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single typed datum. Exactly one of the payload fields is
// meaningful, selected by Kind. The zero Value is NULL.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Str wraps a string.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// Bool wraps a bool.
func Bool(v bool) Value {
	if v {
		return Value{Kind: KindBool, I: 1}
	}
	return Value{Kind: KindBool}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts numeric values to float64. Strings and NULL yield 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt converts numeric values to int64 (floats truncate).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// AsBool reports the truthiness of the value.
func (v Value) AsBool() bool {
	switch v.Kind {
	case KindBool, KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// kindRank orders kinds for cross-kind comparison: NULL < numeric < string.
func kindRank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool, KindInt, KindFloat:
		return 1
	case KindString:
		return 2
	default:
		return 3
	}
}

// Compare returns -1, 0 or +1 ordering a before/equal/after b.
// Numeric kinds compare numerically with each other; otherwise values of
// different kinds order by kind rank. NULL sorts first.
func Compare(a, b Value) int {
	ra, rb := kindRank(a.Kind), kindRank(b.Kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // numeric
		fa, fb := a.AsFloat(), b.AsFloat()
		// Fast path: both ints avoids float rounding on large magnitudes.
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	default: // string
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	}
}

// Equal reports whether a and b compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Key returns a compact string encoding usable as a map key. Distinct
// values produce distinct keys within a column's kind.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "\x00"
	case KindInt, KindBool:
		return "i" + strconv.FormatInt(v.I, 36)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.F, 'b', -1, 64)
	default:
		return "s" + v.S
	}
}
