package types

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator in a predicate leaf.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator in SQL syntax.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// Eval applies the operator to the comparison result of two values.
func (op CmpOp) Eval(a, b Value) bool {
	c := Compare(a, b)
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	default:
		return false
	}
}

// Predicate is a boolean expression tree over row columns. It is the
// engine-internal (already column-resolved) form of a WHERE clause.
type Predicate interface {
	// Eval reports whether the row satisfies the predicate.
	Eval(r Row) bool
	// Columns returns the set of columns the predicate references.
	Columns() ColumnSet
	// String renders the predicate in SQL-ish syntax.
	String() string
}

// CmpPred compares one column against a constant.
type CmpPred struct {
	Col    string // column name, for display and column-set extraction
	ColIdx int    // resolved schema index
	Op     CmpOp
	Val    Value
}

// Eval implements Predicate.
func (p *CmpPred) Eval(r Row) bool { return p.Op.Eval(r[p.ColIdx], p.Val) }

// Columns implements Predicate.
func (p *CmpPred) Columns() ColumnSet { return NewColumnSet(p.Col) }

// String implements Predicate.
func (p *CmpPred) String() string {
	if p.Val.Kind == KindString {
		return fmt.Sprintf("%s %s '%s'", p.Col, p.Op, p.Val.S)
	}
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Val)
}

// AndPred is a conjunction of predicates.
type AndPred struct{ Kids []Predicate }

// Eval implements Predicate.
func (p *AndPred) Eval(r Row) bool {
	for _, k := range p.Kids {
		if !k.Eval(r) {
			return false
		}
	}
	return true
}

// Columns implements Predicate.
func (p *AndPred) Columns() ColumnSet {
	cs := NewColumnSet()
	for _, k := range p.Kids {
		cs = cs.Union(k.Columns())
	}
	return cs
}

// String implements Predicate.
func (p *AndPred) String() string { return joinPreds(p.Kids, " AND ") }

// OrPred is a disjunction of predicates.
type OrPred struct{ Kids []Predicate }

// Eval implements Predicate.
func (p *OrPred) Eval(r Row) bool {
	for _, k := range p.Kids {
		if k.Eval(r) {
			return true
		}
	}
	return false
}

// Columns implements Predicate.
func (p *OrPred) Columns() ColumnSet {
	cs := NewColumnSet()
	for _, k := range p.Kids {
		cs = cs.Union(k.Columns())
	}
	return cs
}

// String implements Predicate.
func (p *OrPred) String() string { return joinPreds(p.Kids, " OR ") }

// NotPred negates a predicate.
type NotPred struct{ Kid Predicate }

// Eval implements Predicate.
func (p *NotPred) Eval(r Row) bool { return !p.Kid.Eval(r) }

// Columns implements Predicate.
func (p *NotPred) Columns() ColumnSet { return p.Kid.Columns() }

// String implements Predicate.
func (p *NotPred) String() string { return "NOT (" + p.Kid.String() + ")" }

// TruePred matches every row (an absent WHERE clause).
type TruePred struct{}

// Eval implements Predicate.
func (TruePred) Eval(Row) bool { return true }

// Columns implements Predicate.
func (TruePred) Columns() ColumnSet { return NewColumnSet() }

// String implements Predicate.
func (TruePred) String() string { return "TRUE" }

func joinPreds(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// SplitDisjuncts rewrites a predicate into a list of conjunctive-only
// predicates whose OR is equivalent (§4.1.2). A predicate with no OR
// returns itself as the single disjunct. NOT over OR is pushed down via
// De Morgan so the result is correct for the grammar the parser emits.
func SplitDisjuncts(p Predicate) []Predicate {
	switch t := p.(type) {
	case *OrPred:
		var out []Predicate
		for _, k := range t.Kids {
			out = append(out, SplitDisjuncts(k)...)
		}
		return out
	case *AndPred:
		// Distribute: (a OR b) AND c → (a AND c) OR (b AND c).
		parts := [][]Predicate{{}}
		for _, k := range t.Kids {
			ds := SplitDisjuncts(k)
			next := make([][]Predicate, 0, len(parts)*len(ds))
			for _, base := range parts {
				for _, d := range ds {
					comb := make([]Predicate, len(base), len(base)+1)
					copy(comb, base)
					next = append(next, append(comb, d))
				}
			}
			parts = next
		}
		out := make([]Predicate, len(parts))
		for i, kids := range parts {
			if len(kids) == 1 {
				out[i] = kids[0]
			} else {
				out[i] = &AndPred{Kids: kids}
			}
		}
		return out
	case *NotPred:
		switch kid := t.Kid.(type) {
		case *OrPred: // NOT (a OR b) = NOT a AND NOT b
			kids := make([]Predicate, len(kid.Kids))
			for i, k := range kid.Kids {
				kids[i] = &NotPred{Kid: k}
			}
			return SplitDisjuncts(&AndPred{Kids: kids})
		case *AndPred: // NOT (a AND b) = NOT a OR NOT b
			kids := make([]Predicate, len(kid.Kids))
			for i, k := range kid.Kids {
				kids[i] = &NotPred{Kid: k}
			}
			return SplitDisjuncts(&OrPred{Kids: kids})
		case *NotPred:
			return SplitDisjuncts(kid.Kid)
		default:
			return []Predicate{p}
		}
	default:
		return []Predicate{p}
	}
}
