package types

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() should be null")
	}
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Int(42).AsFloat(); got != 42.0 {
		t.Errorf("Int(42).AsFloat() = %g", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %g", got)
	}
	if got := Float(2.9).AsInt(); got != 2 {
		t.Errorf("Float(2.9).AsInt() = %d, want truncation to 2", got)
	}
	if got := Str("x").String(); got != "x" {
		t.Errorf("Str(x).String() = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round-trip failed")
	}
	if Null().AsBool() || Null().AsFloat() != 0 || Null().AsInt() != 0 {
		t.Error("NULL should convert to zero values")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-7), "-7"},
		{Float(1.5), "1.5"},
		{Str("hi"), "hi"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(3), Int(3), 0},
		{Int(1), Float(1.5), -1},
		{Float(1.5), Int(1), 1},
		{Float(2.0), Int(2), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("a"), Str("a"), 0},
		{Int(999), Str("0"), -1}, // numeric sorts before string
		{Bool(false), Bool(true), -1},
		{Bool(true), Int(1), 0}, // bools compare numerically
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareLargeInts(t *testing.T) {
	// Values that would collide after float64 rounding must still order.
	a := Int(1 << 60)
	b := Int(1<<60 + 1)
	if Compare(a, b) != -1 || Compare(b, a) != 1 {
		t.Error("large ints must compare exactly")
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyDistinctness(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return Int(a).Key() == Int(b).Key()
		}
		return Int(a).Key() != Int(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		if a == b {
			return Str(a).Key() == Str(b).Key()
		}
		return Str(a).Key() != Str(b).Key()
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	if Int(0).Key() == Str("0").Key() {
		t.Error("int and string keys must not collide")
	}
	if Null().Key() == Str("").Key() {
		t.Error("null and empty string keys must not collide")
	}
}

func TestFloatKeyDistinctness(t *testing.T) {
	f := func(a, b float64) bool {
		if a == b {
			return Float(a).Key() == Float(b).Key()
		}
		return Float(a).Key() != Float(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindNull: "NULL", KindInt: "BIGINT", KindFloat: "DOUBLE",
		KindString: "STRING", KindBool: "BOOLEAN",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), w)
		}
	}
}
