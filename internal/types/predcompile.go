package types

// CompilePredicate lowers a predicate tree into a single closure, removing
// the per-row interface dispatch of Predicate.Eval from the executor's hot
// loop. Comparison leaves are specialised on the constant's kind so the
// common case (row value of the same kind) is a direct field comparison;
// mixed-kind rows fall back to Compare, keeping the semantics identical to
// the interpreted tree.
//
// A nil return means the predicate is trivially true (no filtering needed);
// callers skip the call entirely.
func CompilePredicate(p Predicate) func(Row) bool {
	switch t := p.(type) {
	case TruePred:
		return nil
	case *CmpPred:
		return compileCmp(t.ColIdx, t.Op, t.Val)
	case *AndPred:
		kids := make([]func(Row) bool, 0, len(t.Kids))
		for _, k := range t.Kids {
			if f := CompilePredicate(k); f != nil {
				kids = append(kids, f)
			}
		}
		switch len(kids) {
		case 0:
			return nil
		case 1:
			return kids[0]
		case 2:
			a, b := kids[0], kids[1]
			return func(r Row) bool { return a(r) && b(r) }
		default:
			return func(r Row) bool {
				for _, f := range kids {
					if !f(r) {
						return false
					}
				}
				return true
			}
		}
	case *OrPred:
		if len(t.Kids) == 0 {
			// Matches OrPred.Eval: an empty disjunction is false.
			return func(Row) bool { return false }
		}
		kids := make([]func(Row) bool, 0, len(t.Kids))
		for _, k := range t.Kids {
			f := CompilePredicate(k)
			if f == nil {
				return nil // OR with TRUE is TRUE
			}
			kids = append(kids, f)
		}
		switch len(kids) {
		case 1:
			return kids[0]
		case 2:
			a, b := kids[0], kids[1]
			return func(r Row) bool { return a(r) || b(r) }
		default:
			return func(r Row) bool {
				for _, f := range kids {
					if f(r) {
						return true
					}
				}
				return false
			}
		}
	case *NotPred:
		f := CompilePredicate(t.Kid)
		if f == nil {
			return func(Row) bool { return false }
		}
		return func(r Row) bool { return !f(r) }
	default:
		return p.Eval
	}
}

// compileCmp builds a closure for one comparison leaf. The three booleans
// record whether a row satisfying v < c, v = c, v > c passes the operator,
// so every operator shares the same comparison body.
func compileCmp(idx int, op CmpOp, val Value) func(Row) bool {
	var lt, eq, gt bool
	switch op {
	case CmpEq:
		eq = true
	case CmpNe:
		lt, gt = true, true
	case CmpLt:
		lt = true
	case CmpLe:
		lt, eq = true, true
	case CmpGt:
		gt = true
	case CmpGe:
		eq, gt = true, true
	}
	switch val.Kind {
	case KindInt:
		c := val.I
		cf := float64(c)
		return func(r Row) bool {
			v := r[idx]
			switch v.Kind {
			case KindInt:
				if v.I < c {
					return lt
				}
				if v.I > c {
					return gt
				}
				return eq
			case KindFloat:
				if v.F < cf {
					return lt
				}
				if v.F > cf {
					return gt
				}
				return eq
			}
			return signOK(Compare(v, val), lt, eq, gt)
		}
	case KindFloat:
		c := val.F
		return func(r Row) bool {
			v := r[idx]
			switch v.Kind {
			case KindFloat:
				if v.F < c {
					return lt
				}
				if v.F > c {
					return gt
				}
				return eq
			case KindInt:
				f := float64(v.I)
				if f < c {
					return lt
				}
				if f > c {
					return gt
				}
				return eq
			}
			return signOK(Compare(v, val), lt, eq, gt)
		}
	case KindString:
		c := val.S
		return func(r Row) bool {
			v := r[idx]
			if v.Kind == KindString {
				if v.S < c {
					return lt
				}
				if v.S > c {
					return gt
				}
				return eq
			}
			return signOK(Compare(v, val), lt, eq, gt)
		}
	default:
		// NULL and boolean constants are rare; the generic comparison is
		// already cheap there.
		return func(r Row) bool {
			return signOK(Compare(r[idx], val), lt, eq, gt)
		}
	}
}

func signOK(c int, lt, eq, gt bool) bool {
	if c < 0 {
		return lt
	}
	if c > 0 {
		return gt
	}
	return eq
}
