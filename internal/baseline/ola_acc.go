package baseline

import (
	"math"
	"sort"

	"blinkdb/internal/stats"
)

// olaAcc accumulates one (group, aggregate) pair for online aggregation.
// Unlike stats.Acc, the sampling fraction is not known at Add time — the
// consumed prefix of the stream is a uniform sample whose rate grows as
// more rows arrive — so sums are kept raw and the current fraction is
// applied at estimate time.
type olaAcc struct {
	kind stats.AggKind
	p    float64 // quantile level

	n     int64
	sumX  float64
	sumX2 float64
	vals  []float64 // retained for quantiles only
}

func newOLAAcc(kind stats.AggKind, p float64) *olaAcc {
	return &olaAcc{kind: kind, p: p}
}

func (a *olaAcc) add(x float64) {
	a.n++
	a.sumX += x
	a.sumX2 += x * x
	if a.kind.NeedsValues() {
		a.vals = append(a.vals, x)
	}
}

// estimate computes the current point estimate and CI given that the
// matched rows are a uniform sample with rate frac ∈ (0, 1].
func (a *olaAcc) estimate(frac, conf float64) stats.Estimate {
	e := stats.Estimate{Confidence: conf, Rows: a.n, EffRows: float64(a.n)}
	if a.n == 0 {
		return e
	}
	if frac <= 0 {
		frac = 1
	}
	if frac > 1 {
		frac = 1
	}
	z := stats.ZForConfidence(conf)
	nf := float64(a.n)
	fpc := 1 - frac // finite-population correction: exact at frac = 1
	switch a.kind {
	case stats.AggCount:
		e.Point = nf / frac
		e.StdErr = math.Sqrt(nf*fpc) / frac
	case stats.AggSum:
		e.Point = a.sumX / frac
		e.StdErr = math.Sqrt(math.Max(a.sumX2*fpc, 0)) / frac
	case stats.AggAvg:
		e.Point = a.sumX / nf
		variance := a.sumX2/nf - e.Point*e.Point
		if variance < 0 {
			variance = 0
		}
		e.StdErr = math.Sqrt(variance / nf * fpc)
	case stats.AggQuantile:
		e.Point = a.quantile(a.p)
		e.StdErr = a.quantileStdErr(fpc)
	}
	e.Exact = frac >= 1
	if e.Exact {
		e.StdErr = 0
	}
	e.Bound = z * e.StdErr
	return e
}

func (a *olaAcc) quantile(p float64) float64 {
	if len(a.vals) == 0 {
		return 0
	}
	sort.Float64s(a.vals)
	h := p * float64(len(a.vals)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if hi >= len(a.vals) {
		hi = len(a.vals) - 1
	}
	return a.vals[lo] + (h-float64(lo))*(a.vals[hi]-a.vals[lo])
}

func (a *olaAcc) quantileStdErr(fpc float64) float64 {
	n := float64(len(a.vals))
	if n < 4 {
		return math.Abs(a.quantile(0.75)-a.quantile(0.25)) / 2
	}
	delta := math.Min(0.1, math.Max(0.01, 1/math.Sqrt(n)))
	lo := math.Max(0.001, a.p-delta)
	hi := math.Min(0.999, a.p+delta)
	spread := a.quantile(hi) - a.quantile(lo)
	if spread <= 0 {
		return 0
	}
	f := (hi - lo) / spread
	return math.Sqrt(a.p*(1-a.p)/n*fpc) / f
}
