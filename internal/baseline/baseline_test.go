package baseline

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"blinkdb/internal/cluster"
	"blinkdb/internal/exec"
	"blinkdb/internal/optimizer"
	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/stats"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
	"blinkdb/internal/zipf"
)

func testTable(t testing.TB, rows int) *storage.Table {
	t.Helper()
	return testTableLayout(t, rows, storage.ColumnarLayout)
}

func testTableLayout(t testing.TB, rows int, layout storage.Layout) *storage.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "os", Kind: types.KindString},
		types.Column{Name: "time", Kind: types.KindFloat},
	)
	tab := storage.NewTable("sessions", schema)
	b := storage.NewBuilderLayout(tab, 512, 100, storage.OnDisk, layout)
	rng := rand.New(rand.NewSource(13))
	cityGen := zipf.NewGeneratorCDF(rng, 1.4, 100)
	oses := []string{"Win7", "OSX", "Linux"}
	for i := 0; i < rows; i++ {
		b.AppendRow(types.Row{
			types.Str("city" + string(rune('A'+cityGen.Next()%26))),
			types.Str(oses[rng.Intn(3)]),
			types.Float(rng.ExpFloat64() * 100),
		})
	}
	return b.Finish()
}

func compile(t testing.TB, src string, schema *types.Schema) *exec.Plan {
	t.Helper()
	q, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := exec.Compile(q, schema)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFullScanEngineOrdering(t *testing.T) {
	tab := testTable(t, 20000)
	plan := compile(t, `SELECT AVG(time) FROM sessions GROUP BY city`, tab.Schema)
	clus := cluster.New(cluster.PaperConfig())
	scale := 1e5 // pretend multi-TB

	_, hadoop := FullScan(clus, cluster.HiveOnHadoop, tab, plan, scale, 0, 4, exec.SchedNodeAffine)
	_, sharkDisk := FullScan(clus, cluster.SharkNoCache, tab, plan, scale, 0, 4, exec.SchedNodeAffine)
	_, sharkMem := FullScan(clus, cluster.SharkCached, tab, plan, scale, 1, 4, exec.SchedBlind)
	if !(hadoop > sharkDisk && sharkDisk > sharkMem) {
		t.Errorf("engine ordering wrong: hadoop %.0f, shark-disk %.0f, shark-mem %.0f",
			hadoop, sharkDisk, sharkMem)
	}
	// Answers are exact regardless of engine.
	res, _ := FullScan(clus, cluster.HiveOnHadoop, tab, plan, scale, 0, 4, exec.SchedNodeAffine)
	for _, g := range res.Groups {
		if !g.Estimates[0].Exact {
			t.Error("full scan must be exact")
		}
	}
}

func TestOLAConvergesAndIsAccurate(t *testing.T) {
	tab := testTable(t, 50000)
	plan := compile(t, `SELECT AVG(time) FROM sessions`, tab.Schema)
	clus := cluster.New(cluster.PaperConfig())
	exact := exec.Run(plan, exec.FromTable(tab), 0.95)
	truth := exact.Groups[0].Estimates[0].Point

	r := OLA(clus, tab, plan, OLAConfig{TargetRelErr: 0.05, Seed: 1, Scale: 1e5})
	if !r.Converged {
		t.Fatal("OLA should converge at 5% on 50k rows")
	}
	if r.Fraction >= 1 {
		t.Error("OLA should stop before reading everything")
	}
	got := r.Result.Groups[0].Estimates[0].Point
	if math.Abs(got-truth)/truth > 0.10 {
		t.Errorf("OLA estimate %.2f vs truth %.2f", got, truth)
	}
	if r.Latency <= 0 {
		t.Error("latency should be positive")
	}
}

func TestOLATighterTargetReadsMore(t *testing.T) {
	tab := testTable(t, 50000)
	plan := compile(t, `SELECT AVG(time) FROM sessions`, tab.Schema)
	clus := cluster.New(cluster.PaperConfig())
	loose := OLA(clus, tab, plan, OLAConfig{TargetRelErr: 0.10, Seed: 2})
	tight := OLA(clus, tab, plan, OLAConfig{TargetRelErr: 0.02, Seed: 2})
	if tight.RowsConsumed <= loose.RowsConsumed {
		t.Errorf("tighter target should read more: %d vs %d",
			tight.RowsConsumed, loose.RowsConsumed)
	}
}

func TestOLAFullStreamIsExact(t *testing.T) {
	tab := testTable(t, 5000)
	plan := compile(t, `SELECT COUNT(*), SUM(time) FROM sessions`, tab.Schema)
	clus := cluster.New(cluster.PaperConfig())
	r := OLA(clus, tab, plan, OLAConfig{Seed: 3}) // no targets: full stream
	if r.Fraction != 1 {
		t.Fatalf("fraction = %g", r.Fraction)
	}
	e := r.Result.Groups[0].Estimates
	if e[0].Point != 5000 {
		t.Errorf("count = %g", e[0].Point)
	}
	if !e[0].Exact || e[0].Bound != 0 {
		t.Error("full stream should be exact")
	}
	exact := exec.Run(plan, exec.FromTable(tab), 0.95)
	if math.Abs(e[1].Point-exact.Groups[0].Estimates[1].Point) > 1e-6 {
		t.Errorf("sum = %g vs %g", e[1].Point, exact.Groups[0].Estimates[1].Point)
	}
}

func TestOLATimeBudgetStops(t *testing.T) {
	tab := testTable(t, 50000)
	plan := compile(t, `SELECT AVG(time) FROM sessions`, tab.Schema)
	clus := cluster.New(cluster.PaperConfig())
	// Random-order scan of "5 GB" per node takes ~hundreds of seconds; a
	// 10-second budget must truncate the stream early.
	r := OLA(clus, tab, plan, OLAConfig{TimeBudget: 10, Seed: 4, Scale: 1e5})
	if r.Fraction >= 0.5 {
		t.Errorf("time budget should stop early: fraction %.2f", r.Fraction)
	}
	if r.Latency > 12 {
		t.Errorf("latency %.1f exceeds budget", r.Latency)
	}
}

func TestOLARandomOrderPenaltyVsBlinkDBStyleScan(t *testing.T) {
	// The same byte volume costs more in random order — this is the
	// paper's core argument for precomputed clustered samples (§7).
	tab := testTable(t, 20000)
	clus := cluster.New(cluster.PaperConfig())
	scale := 1e5
	seq := clus.UniformWork(float64(tab.Bytes())*scale, 0, 0, 256e6)
	rnd := seq
	rnd.RandomOrder = true
	if clus.Latency(cluster.SharkNoCache, rnd) < 2*clus.Latency(cluster.SharkNoCache, seq) {
		t.Error("random order should cost at least 2× sequential")
	}
}

func TestOLACountVarianceCalibrated(t *testing.T) {
	// Empirical coverage of the olaAcc COUNT estimator at a fixed prefix.
	tab := testTable(t, 20000)
	plan := compile(t, `SELECT COUNT(*) FROM sessions WHERE os = 'Win7'`, tab.Schema)
	clus := cluster.New(cluster.PaperConfig())
	exact := exec.Run(plan, exec.FromTable(tab), 0.95)
	truth := exact.Groups[0].Estimates[0].Point
	hits, trials := 0, 40
	for s := 0; s < trials; s++ {
		r := OLA(clus, tab, plan, OLAConfig{TargetRelErr: 0.08, Seed: int64(s), MinGroups: 1})
		e := r.Result.Groups[0].Estimates[0]
		if math.Abs(e.Point-truth) <= e.Bound {
			hits++
		}
	}
	if cov := float64(hits) / float64(trials); cov < 0.80 {
		t.Errorf("OLA COUNT CI coverage = %.2f, want ≥ 0.80", cov)
	}
}

func TestUniformOnly(t *testing.T) {
	tab := testTable(t, 10000)
	fam, err := UniformOnly(tab, 0.5, 3, 4, sample.BuildConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !fam.IsUniform() {
		t.Error("should be uniform")
	}
	if got := fam.Largest().Rows(); got != 5000 {
		t.Errorf("largest = %d, want 5000", got)
	}
	if fam.Resolutions() != 3 {
		t.Errorf("resolutions = %d", fam.Resolutions())
	}
}

func TestSingleColumnRestriction(t *testing.T) {
	tab := testTable(t, 10000)
	templates := []optimizer.TemplateSpec{
		{Columns: types.NewColumnSet("city", "os"), Weight: 1},
	}
	plan, err := SingleColumn(tab, templates, optimizer.Config{
		K: 100, BudgetBytes: tab.Bytes(), ChurnFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.Chosen {
		if c.Phi.Len() != 1 {
			t.Errorf("single-column baseline built %v", c.Phi)
		}
	}
}

func TestOLAQuantile(t *testing.T) {
	tab := testTable(t, 30000)
	plan := compile(t, `SELECT MEDIAN(time) FROM sessions`, tab.Schema)
	clus := cluster.New(cluster.PaperConfig())
	exact := exec.Run(plan, exec.FromTable(tab), 0.95)
	truth := exact.Groups[0].Estimates[0].Point
	r := OLA(clus, tab, plan, OLAConfig{TargetRelErr: 0.05, Seed: 5})
	got := r.Result.Groups[0].Estimates[0].Point
	if math.Abs(got-truth)/truth > 0.12 {
		t.Errorf("OLA median %.2f vs truth %.2f", got, truth)
	}
}

func TestOLAAccEstimates(t *testing.T) {
	// Unit-level checks of the fraction-aware estimators.
	a := newOLAAcc(stats.AggCount, 0)
	for i := 0; i < 100; i++ {
		a.add(1)
	}
	e := a.estimate(0.1, 0.95)
	if math.Abs(e.Point-1000) > 1e-9 {
		t.Errorf("count at 10%% = %g, want 1000", e.Point)
	}
	if e.Exact || e.Bound <= 0 {
		t.Error("partial fraction must carry uncertainty")
	}
	e = a.estimate(1.0, 0.95)
	if e.Point != 100 || !e.Exact || e.Bound != 0 {
		t.Errorf("full fraction must be exact: %+v", e)
	}

	s := newOLAAcc(stats.AggSum, 0)
	s.add(10)
	s.add(20)
	if got := s.estimate(0.5, 0.95).Point; math.Abs(got-60) > 1e-9 {
		t.Errorf("sum at 50%% = %g, want 60", got)
	}

	m := newOLAAcc(stats.AggAvg, 0)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		m.add(v)
	}
	if got := m.estimate(0.2, 0.95).Point; math.Abs(got-3) > 1e-9 {
		t.Errorf("avg = %g", got)
	}
	empty := newOLAAcc(stats.AggAvg, 0)
	if e := empty.estimate(0.5, 0.95); e.Point != 0 || e.Rows != 0 {
		t.Errorf("empty estimate = %+v", e)
	}
}

func BenchmarkOLA(b *testing.B) {
	tab := testTable(b, 50000)
	plan := compile(b, `SELECT AVG(time) FROM sessions`, tab.Schema)
	clus := cluster.New(cluster.PaperConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OLA(clus, tab, plan, OLAConfig{TargetRelErr: 0.05, Seed: int64(i)})
	}
}

// TestBaselineLayoutEquivalence pins the comparison systems to the same
// row-vs-columnar contract as the main engine: FullScan (any worker
// count) and OLA return bit-identical results and simulated latencies on
// both layouts.
func TestBaselineLayoutEquivalence(t *testing.T) {
	row := testTableLayout(t, 20000, storage.RowLayout)
	col := testTableLayout(t, 20000, storage.ColumnarLayout)
	clus := cluster.New(cluster.PaperConfig())
	for _, src := range []string{
		`SELECT AVG(time) FROM sessions GROUP BY city`,
		`SELECT COUNT(*), SUM(time) FROM sessions WHERE os = 'Linux' GROUP BY city`,
	} {
		plan := compile(t, src, row.Schema)
		wantRes, wantLat := FullScan(clus, cluster.SharkCached, row, plan, 1e5, 1, 1, exec.SchedBlind)
		for _, w := range []int{1, 8} {
			gotRes, gotLat := FullScan(clus, cluster.SharkCached, col, plan, 1e5, 1, w, exec.SchedNodeAffine)
			if !reflect.DeepEqual(wantRes, gotRes) || wantLat != gotLat {
				t.Errorf("%q workers=%d: FullScan diverged across layouts", src, w)
			}
		}

		cfg := OLAConfig{TargetRelErr: 0.05, Seed: 11, Scale: 1e5}
		wantOLA := OLA(clus, row, plan, cfg)
		gotOLA := OLA(clus, col, plan, cfg)
		if wantOLA.RowsConsumed != gotOLA.RowsConsumed || wantOLA.Converged != gotOLA.Converged ||
			wantOLA.Latency != gotOLA.Latency || wantOLA.Fraction != gotOLA.Fraction {
			t.Errorf("%q: OLA stopping behaviour diverged across layouts: %+v vs %+v",
				src, wantOLA, gotOLA)
		}
		if !reflect.DeepEqual(wantOLA.Result.Groups, gotOLA.Result.Groups) {
			t.Errorf("%q: OLA estimates diverged across layouts", src)
		}
	}
}
