// Package baseline implements the comparison systems of the evaluation:
//
//   - full-scan execution under the Hive-on-Hadoop and Shark (±cache)
//     engine profiles (Fig. 6(c));
//   - online aggregation (OLA) — streaming the data in random order and
//     stopping once the error target is met (§7 related work; the 2×
//     comparison in §1). OLA pays the random-I/O penalty the paper argues
//     makes it impractical on distributed stores;
//   - helper constructors for the uniform-only and single-dimension
//     sampling strategies of §6.3.
package baseline

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"blinkdb/internal/cluster"
	"blinkdb/internal/exec"
	"blinkdb/internal/optimizer"
	"blinkdb/internal/sample"
	"blinkdb/internal/stats"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// FullScan runs the plan exactly over the base table and prices the scan
// under the given engine profile. memFraction says how much of the data is
// cache-resident (Shark-with-caching = 1, disk engines = 0). scale maps
// physical to logical bytes. workers sizes the executor's scan pool and
// sched its scheduling mode (results are identical for any worker count
// and either schedule; ≤1 workers means sequential). The priced Work
// carries the cluster model's cross-node merge fan-in: a full scan's
// per-node partials merge over the network like any other job.
func FullScan(clus *cluster.Cluster, prof cluster.EngineProfile, tab *storage.Table,
	plan *exec.Plan, scale, memFraction float64, workers int, sched exec.Sched) (*exec.Result, float64) {

	res := exec.RunParallelSched(plan, exec.FromTable(tab), 0.95, workers, sched)
	logical := float64(tab.Bytes()) * scale
	shuffle := logical * 0.01
	taskBytes := 256e6
	work := clus.UniformWork(logical, memFraction, shuffle, taskBytes)
	return res, clus.Latency(prof, work)
}

// OLAResult reports an online-aggregation run.
type OLAResult struct {
	// Result holds the estimates at stop time.
	Result *exec.Result
	// RowsConsumed is how many rows were streamed before stopping.
	RowsConsumed int64
	// Fraction is RowsConsumed / table rows.
	Fraction float64
	// Latency is the simulated seconds (random-order I/O).
	Latency float64
	// Converged is true when the error target was met before exhausting
	// the table.
	Converged bool
}

// OLAConfig controls an online-aggregation run.
type OLAConfig struct {
	// TargetRelErr stops the stream once every group's relative error at
	// Confidence drops below it (0 disables, streaming the whole table).
	TargetRelErr float64
	// TimeBudget stops when simulated latency exceeds it (0 = none).
	TimeBudget float64
	// Confidence for the error estimates (default 0.95).
	Confidence float64
	// BatchRows between error checks (default 1024).
	BatchRows int
	// MinGroups requires at least this many groups before convergence
	// can be declared (guards against declaring victory before rare
	// groups have appeared). Default 1.
	MinGroups int
	// Seed shuffles the stream order.
	Seed int64
	// Profile prices the scan (default SharkNoCache, disk-resident).
	Profile cluster.EngineProfile
	// Scale maps physical to logical bytes.
	Scale float64
	// MemFraction of the data that is cache-resident.
	MemFraction float64
}

func (c OLAConfig) normalize() OLAConfig {
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	if c.BatchRows <= 0 {
		c.BatchRows = 1024
	}
	if c.MinGroups <= 0 {
		c.MinGroups = 1
	}
	if c.Profile.Name == "" {
		c.Profile = cluster.SharkNoCache
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// OLA simulates online aggregation: rows are streamed in a random
// permutation (the random order OLA's statistical guarantees require);
// after each batch the current estimates and error bars are recomputed;
// the stream stops when the target error is reached or the time budget is
// exhausted. Latency is priced at the random-I/O rate.
func OLA(clus *cluster.Cluster, tab *storage.Table, plan *exec.Plan, cfg OLAConfig) *OLAResult {
	cfg = cfg.normalize()

	// Materialise a shuffled index of all rows. OLA cannot exploit
	// clustering — that is exactly its cost.
	type loc struct{ b, r int32 }
	locs := make([]loc, 0, tab.NumRows())
	for bi, b := range tab.Blocks {
		for ri, n := 0, b.NumRows(); ri < n; ri++ {
			locs = append(locs, loc{int32(bi), int32(ri)})
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(locs), func(i, j int) { locs[i], locs[j] = locs[j], locs[i] })

	total := float64(len(locs))
	bytesPerRow := 1.0
	if total > 0 {
		bytesPerRow = float64(tab.Bytes()) / total
	}
	fullWork := clus.UniformWork(float64(tab.Bytes())*cfg.Scale, cfg.MemFraction,
		float64(tab.Bytes())*cfg.Scale*0.01, 256e6)
	fullWork.RandomOrder = true
	fullLatency := clus.Latency(cfg.Profile, fullWork)

	type gState struct {
		key  []types.Value
		accs []*olaAcc
	}
	groups := map[string]*gState{}
	consumed := int64(0)

	latencyAt := func(rows int64) float64 {
		frac := float64(rows) / math.Max(total, 1)
		// Startup overhead is paid once; scan time scales with fraction.
		return cfg.Profile.JobOverheadSec + (fullLatency-cfg.Profile.JobOverheadSec)*frac
	}

	buildResult := func() *exec.Result {
		res := &exec.Result{RowsScanned: consumed, Confidence: cfg.Confidence}
		frac := float64(consumed) / math.Max(total, 1)
		for _, gs := range groups {
			g := exec.Group{Key: gs.key, Estimates: make([]stats.Estimate, len(gs.accs))}
			for i, a := range gs.accs {
				g.Estimates[i] = a.estimate(frac, cfg.Confidence)
			}
			res.Groups = append(res.Groups, g)
			res.RowsMatched += gs.accs[0].n
		}
		// Sort by encoded key (computed once per group) so output order
		// never depends on map iteration. Note this is a deterministic
		// lexicographic order, not exec.finalize's value order —
		// baseline results are compared by key, never positionally.
		enc := make([]string, len(res.Groups))
		for i, g := range res.Groups {
			enc[i] = encodeGroupKey(g.Key)
		}
		sort.Sort(&groupsByKey{groups: res.Groups, keys: enc})
		res.BytesScanned = int64(float64(consumed) * bytesPerRow)
		return res
	}

	converged := false
	for start := 0; start < len(locs); start += cfg.BatchRows {
		end := start + cfg.BatchRows
		if end > len(locs) {
			end = len(locs)
		}
		for _, l := range locs[start:end] {
			consumed++
			row := tab.Blocks[l.b].RowAt(int(l.r))
			if !plan.Pred.Eval(row) {
				continue
			}
			key := ""
			if len(plan.GroupBy) > 0 {
				key = types.RowKey(row, plan.GroupBy)
			}
			gs, ok := groups[key]
			if !ok {
				gs = &gState{accs: make([]*olaAcc, len(plan.Aggs))}
				for ai, a := range plan.Aggs {
					gs.accs[ai] = newOLAAcc(a.Kind, a.P)
				}
				if len(plan.GroupBy) > 0 {
					gs.key = make([]types.Value, len(plan.GroupBy))
					for ki, ci := range plan.GroupBy {
						gs.key[ki] = row[ci]
					}
				}
				groups[key] = gs
			}
			// The rows seen so far are a uniform prefix sample; raw sums
			// are kept and the current fraction is applied at estimate
			// time (see olaAcc).
			for ai, a := range plan.Aggs {
				x := 1.0
				if a.Col >= 0 {
					v := row[a.Col]
					if v.IsNull() {
						continue
					}
					x = v.AsFloat()
					if a.Kind == stats.AggCount {
						x = 1
					}
				}
				gs.accs[ai].add(x)
			}
		}

		if cfg.TimeBudget > 0 && latencyAt(consumed) >= cfg.TimeBudget {
			break
		}
		if cfg.TargetRelErr > 0 && len(groups) >= cfg.MinGroups {
			worst := 0.0
			frac := float64(consumed) / math.Max(total, 1)
			for _, gs := range groups {
				for _, a := range gs.accs {
					e := a.estimate(frac, cfg.Confidence)
					if re := e.RelErr(); re > worst {
						worst = re
					}
				}
			}
			if worst > 0 && worst <= cfg.TargetRelErr {
				converged = true
				break
			}
		}
	}

	return &OLAResult{
		Result:       buildResult(),
		RowsConsumed: consumed,
		Fraction:     float64(consumed) / math.Max(total, 1),
		Latency:      latencyAt(consumed),
		Converged:    converged,
	}
}

func encodeGroupKey(key []types.Value) string {
	var b strings.Builder
	for _, v := range key {
		b.WriteString(v.Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// groupsByKey sorts groups and their precomputed encoded keys together.
type groupsByKey struct {
	groups []exec.Group
	keys   []string
}

func (s *groupsByKey) Len() int           { return len(s.groups) }
func (s *groupsByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *groupsByKey) Swap(i, j int) {
	s.groups[i], s.groups[j] = s.groups[j], s.groups[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// UniformOnly builds the §6.3 "random samples" strategy: a single uniform
// family holding the given fraction of the table, with the same resolution
// ladder a stratified family would get.
func UniformOnly(tab *storage.Table, fraction float64, resolutions int, capRatio float64,
	bc sample.BuildConfig) (*sample.Family, error) {

	target := int64(float64(tab.NumRows()) * fraction)
	if target < 1 {
		target = 1
	}
	sizes := sample.GeometricCaps(target, capRatio, resolutions, 1)
	return sample.BuildUniform(tab, sizes, bc)
}

// SingleColumn runs the optimizer restricted to one-column candidates —
// the Babcock-style single-dimensional stratified baseline of §6.3.
func SingleColumn(tab *storage.Table, templates []optimizer.TemplateSpec,
	cfg optimizer.Config) (*optimizer.Plan, error) {

	cfg.MaxColumns = 1
	return optimizer.ChooseSamples(tab, templates, cfg)
}
