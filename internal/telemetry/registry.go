package telemetry

import (
	"sort"
	"sync"
)

// Registry accumulates per-template histograms across every query a
// runtime executes. The ELP runtime calls Observe once per completed
// query with the normalized template key; Snapshot folds the histograms
// into percentile summaries for Engine.Telemetry, the REPL's \stats and
// the bench's telemetry record.
//
// A nil *Registry is the disabled state: Observe is a nil-safe no-op.
type Registry struct {
	mu        sync.RWMutex
	templates map[string]*TemplateStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{templates: make(map[string]*TemplateStats)}
}

// TemplateStats is the live per-template accumulator. Histograms are
// lock-free; the enclosing map is guarded by the registry's RWMutex with
// a read-locked fast path, so concurrent observers of a warm template
// never serialize on a write lock.
type TemplateStats struct {
	latency     Histogram // observed wall-clock seconds
	predLatency Histogram // ELP-predicted (simulated cluster) seconds
	rows        Histogram // rows scanned
	bytes       Histogram // bytes scanned
	predBound   Histogram // ELP-projected CI half-width
	obsBound    Histogram // reported CI half-width (worst group)
}

// Observation is one completed query's accounting, recorded against its
// normalized template key.
type Observation struct {
	// WallSeconds is observed wall-clock execution time. PredictedSeconds
	// is the ELP's simulated-cluster latency for the same query; the two
	// are different clocks (real single-process vs simulated 100-node), so
	// their ratio is a per-template calibration constant, not an error.
	WallSeconds      float64
	PredictedSeconds float64

	// Executed reports whether the query actually ran a scan. Result-cache
	// hits (and singleflight-shared results) scan nothing, so the
	// scan-shaped histograms — rows, bytes and the two error bounds —
	// are only recorded for executed queries; recording a cached
	// execution's values again would double-count work that never
	// happened. Latency histograms record every query regardless, which
	// also keeps the hot cache-hit path at two histogram updates.
	Executed bool

	RowsScanned  int64
	BytesScanned int64

	// PredictedBound is the ELP's projected error half-width at the chosen
	// resolution (worst disjunct); ObservedBound is the half-width actually
	// reported with the answer. Same units, so predicted/observed here is
	// the calibration signal the adaptive loop consumes.
	PredictedBound float64
	ObservedBound  float64
}

// Observe records one query. Nil-safe; concurrent-safe.
func (r *Registry) Observe(key string, o Observation) {
	if r == nil {
		return
	}
	r.mu.RLock()
	ts := r.templates[key]
	r.mu.RUnlock()
	if ts == nil {
		r.mu.Lock()
		ts = r.templates[key]
		if ts == nil {
			ts = &TemplateStats{}
			r.templates[key] = ts
		}
		r.mu.Unlock()
	}
	ts.latency.Record(o.WallSeconds)
	ts.predLatency.Record(o.PredictedSeconds)
	if o.Executed {
		ts.rows.Record(float64(o.RowsScanned))
		ts.bytes.Record(float64(o.BytesScanned))
		ts.predBound.Record(o.PredictedBound)
		ts.obsBound.Record(o.ObservedBound)
	}
}

// ObservedWallSeconds returns the mean observed wall-clock seconds of
// one query of template key, or false when the template has never been
// observed (or never completed with positive latency). This is the
// registry's calibration answer to "how long will this template take":
// the ELP's simulated-cluster prediction divided by the template's
// predicted-over-observed ratio collapses algebraically to the observed
// mean, so serving layers can price admission with one cheap lookup
// instead of folding a full Snapshot. Nil-safe.
func (r *Registry) ObservedWallSeconds(key string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.RLock()
	ts := r.templates[key]
	r.mu.RUnlock()
	if ts == nil {
		return 0, false
	}
	lat := ts.latency.Snapshot()
	if m := lat.Mean(); lat.Count > 0 && m > 0 {
		return m, true
	}
	return 0, false
}

// Percentiles summarizes one histogram for reporting.
type Percentiles struct {
	Count uint64
	Mean  float64
	Max   float64
	P50   float64
	P95   float64
	P99   float64
}

func percentilesOf(s HistSnapshot) Percentiles {
	return Percentiles{
		Count: s.Count,
		Mean:  s.Mean(),
		Max:   s.Max,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// TemplateSnapshot is one template's folded summary.
type TemplateSnapshot struct {
	Key     string
	Queries uint64

	// Latency histograms cover every query; the scan-shaped histograms
	// below (rows, bytes, bounds) cover only *executed* queries, so their
	// Count is Queries minus result-cache hits.
	Latency          Percentiles // observed wall-clock seconds
	PredictedLatency Percentiles // simulated-cluster seconds
	RowsScanned      Percentiles
	BytesScanned     Percentiles
	PredictedBound   Percentiles // ELP-projected error half-width
	ObservedBound    Percentiles // reported error half-width

	// PredictedOverObservedLatency is mean predicted / mean observed
	// latency — a calibration constant relating simulated-cluster seconds
	// to local wall-clock, stable per template. 0 when observed is 0.
	PredictedOverObservedLatency float64
	// PredictedOverObservedBound is mean predicted / mean observed error
	// half-width; ≈1 means the 1/√n projection is honest, >1 conservative.
	// 0 when the observed mean is 0 (exact-only template) — and a 0 ratio
	// against a positive observed mean is itself a calibration finding:
	// the template's cached probe ran on a fully-sampled stratum (exact,
	// zero projected half-width) while later bindings hit sampled strata.
	PredictedOverObservedBound float64
}

// Snapshot folds the registry into per-template summaries, sorted by key
// for deterministic output. Nil-safe (returns an empty snapshot).
type Snapshot struct {
	Templates []TemplateSnapshot
}

// Snapshot summarizes every template observed so far.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	keys := make([]string, 0, len(r.templates))
	stats := make([]*TemplateStats, 0, len(r.templates))
	for k, ts := range r.templates {
		keys = append(keys, k)
		stats = append(stats, ts)
	}
	r.mu.RUnlock()

	snap := Snapshot{Templates: make([]TemplateSnapshot, len(keys))}
	for i, k := range keys {
		ts := stats[i]
		lat := ts.latency.Snapshot()
		pred := ts.predLatency.Snapshot()
		pb := ts.predBound.Snapshot()
		ob := ts.obsBound.Snapshot()
		t := TemplateSnapshot{
			Key:              k,
			Queries:          lat.Count,
			Latency:          percentilesOf(lat),
			PredictedLatency: percentilesOf(pred),
			RowsScanned:      percentilesOf(ts.rows.Snapshot()),
			BytesScanned:     percentilesOf(ts.bytes.Snapshot()),
			PredictedBound:   percentilesOf(pb),
			ObservedBound:    percentilesOf(ob),
		}
		if m := lat.Mean(); m > 0 {
			t.PredictedOverObservedLatency = pred.Mean() / m
		}
		if m := ob.Mean(); m > 0 {
			t.PredictedOverObservedBound = pb.Mean() / m
		}
		snap.Templates[i] = t
	}
	sort.Slice(snap.Templates, func(i, j int) bool {
		return snap.Templates[i].Key < snap.Templates[j].Key
	})
	return snap
}
