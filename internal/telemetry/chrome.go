package telemetry

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace-event ("X" = complete event). The
// format is the trace-event JSON array consumed by chrome://tracing and
// Perfetto: ts/dur in microseconds, pid/tid grouping lanes.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChrome exports traces as a Chrome trace-event JSON array — load
// the file in chrome://tracing or ui.perfetto.dev. Each trace becomes
// one pid; overlapping spans within a trace are spread across tids by
// greedy lane assignment (a span takes the first lane whose previous
// span ended before it started), so parallel shard scans render as
// parallel rows.
func WriteChrome(w io.Writer, traces []*Trace) error {
	var events []chromeEvent
	for ti, tr := range traces {
		if tr == nil {
			continue
		}
		origin := tr.Root().spanStart()
		var laneEnds []float64 // per-lane last end time, µs
		for _, s := range tr.sortedSpans() {
			ts := float64(s.spanStart().Sub(origin).Nanoseconds()) / 1e3
			dur := float64(s.Duration().Nanoseconds()) / 1e3
			lane := -1
			for i, end := range laneEnds {
				if end <= ts {
					lane = i
					break
				}
			}
			if lane < 0 {
				lane = len(laneEnds)
				laneEnds = append(laneEnds, 0)
			}
			laneEnds[lane] = ts + dur
			ev := chromeEvent{
				Name:  s.Name(),
				Phase: "X",
				TS:    ts,
				Dur:   dur,
				PID:   ti + 1,
				TID:   lane + 1,
			}
			if notes := s.Notes(); len(notes) > 0 {
				ev.Args = map[string]string{}
				for i, n := range notes {
					k := "note"
					if i > 0 {
						k = "note" + string(rune('0'+i))
					}
					ev.Args[k] = n
				}
			}
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
