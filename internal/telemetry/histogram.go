package telemetry

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-size, lock-free, log-bucketed histogram of
// non-negative float64 observations (seconds, rows, bytes, error
// half-widths — unit-agnostic). Buckets are logarithmic with 4
// sub-buckets per octave, so any quantile estimate carries at most
// ~2^(1/4)-1 ≈ 19% relative width (we report bucket midpoints, halving
// that). Record is wait-free apart from two CAS loops and performs zero
// allocations; concurrent recorders never block each other on a mutex.
//
// The zero value is ready to use. Snapshots fold across histograms with
// HistSnapshot.Merge exactly associatively (see the package doc).
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	sum    atomicFloat
	max    atomicFloat
}

const (
	// numBuckets is fixed so HistSnapshot is a comparable array-backed
	// value and Merge needs no reallocation or resizing protocol.
	numBuckets = 256
	// subBits gives 2^subBits sub-buckets per power-of-two octave.
	subBits = 2
	// minExp is the Frexp exponent mapped to bucket 1. With 255 value
	// buckets at 4 per octave the span is ~63 octaves: ~2.9e-11 up to
	// ~5.4e8 (in seconds: tens of picoseconds to ~17 years). Values
	// outside clamp to the edge buckets; bucket 0 is reserved for
	// non-positive and NaN observations.
	minExp = -34
)

// bucketOf maps a value to its bucket index. Frexp gives v = frac·2^exp
// with frac ∈ [0.5, 1), so (frac·2 − 1) ∈ [0, 1) picks the sub-bucket.
func bucketOf(v float64) int {
	if !(v > 0) || math.IsInf(v, 1) {
		if math.IsInf(v, 1) {
			return numBuckets - 1
		}
		return 0
	}
	frac, exp := math.Frexp(v)
	b := (exp-minExp)<<subBits + int((frac*2-1)*(1<<subBits))
	if b < 1 {
		return 1
	}
	if b > numBuckets-1 {
		return numBuckets - 1
	}
	return b
}

// bucketLower returns the smallest value mapping to bucket b (b ≥ 1).
func bucketLower(b int) float64 {
	exp := b>>subBits + minExp
	sub := b & (1<<subBits - 1)
	return math.Ldexp(1+float64(sub)/(1<<subBits), exp-1)
}

// bucketMid returns the midpoint of bucket b, the quantile representative.
func bucketMid(b int) float64 {
	if b >= numBuckets-1 {
		return bucketLower(numBuckets - 1)
	}
	return (bucketLower(b) + bucketLower(b+1)) / 2
}

// Record adds one observation. Safe for concurrent use; 0 allocs/op
// (pinned by TestHistogramRecordZeroAllocs). The total count is derived
// from the buckets at Snapshot time, keeping the hot path to one bucket
// increment, one sum CAS and (usually) one max load.
func (h *Histogram) Record(v float64) {
	h.counts[bucketOf(v)].Add(1)
	h.sum.add(v)
	h.max.storeMax(v)
}

// Snapshot returns a point-in-time copy. Individual fields are loaded
// atomically; under concurrent recording the snapshot may straddle an
// in-flight Record (bucket updated, sum not yet), which is fine for
// monitoring — quantiles and means converge as counts grow.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = h.sum.load()
	s.Max = h.max.load()
	return s
}

// HistSnapshot is an immutable histogram state. It is a comparable value
// (== works), so merge-associativity tests can compare fold orders
// directly, mirroring the stats.Acc suite.
type HistSnapshot struct {
	Counts [numBuckets]uint64
	Count  uint64
	Sum    float64
	Max    float64
}

// Merge folds o into s and returns the combination. Bucket counts add
// exactly; Max is exact; Sum is float addition (exact on dyadic inputs).
// Associative and commutative, like stats.Acc.Merge.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	return s
}

// Mean returns Sum/Count (0 for an empty snapshot).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns the value at quantile p ∈ [0, 1] — the midpoint of the
// bucket containing the ⌈p·Count⌉-th smallest observation, clamped to Max
// so single-bucket histograms never report above their largest
// observation. Bucket 0 (non-positive observations) reports as 0.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for b := 0; b < numBuckets; b++ {
		seen += s.Counts[b]
		if seen >= rank {
			if b == 0 {
				return 0
			}
			v := bucketMid(b)
			if s.Max > 0 && v > s.Max {
				return s.Max
			}
			return v
		}
	}
	return s.Max
}

// atomicFloat is a float64 with atomic add and max via CAS on the bit
// pattern. Sufficient for monitoring sums; no ordering guarantees beyond
// atomicity of each update.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64 {
	return math.Float64frombits(f.bits.Load())
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
