// Package telemetry is the query-lifecycle observability layer: per-query
// span trees with monotonic timestamps, fixed-size mergeable log-bucketed
// histograms, and a per-template registry that accounts predicted
// (ELP-projected) against observed latency and error.
//
// The package is deliberately a leaf — it imports only the standard
// library — so the executor, the ELP runtime and the public engine can all
// thread the same Trace/Registry through without import cycles.
//
// # Overhead contract
//
// Disabled means free. Every Trace and Span method is safe on a nil
// receiver and returns immediately without allocating, so call sites
// thread a possibly-nil *Span unconditionally; the only cost on the
// disabled path is the nil check (pinned at 0 allocs/op by
// TestDisabledPathZeroAllocs). Callers must guard span-name formatting
// themselves (`if sp != nil { sp.Child(fmt.Sprintf(...)) }`) — the
// fmt.Sprintf would otherwise be the allocation.
//
// Enabled tracing costs one small allocation per span plus a mutex-guarded
// append; enabled histogram recording is a handful of atomic operations
// and zero allocations (Histogram.Record is also alloc-pinned). Result-
// cache hits record only the two latency histograms — a hit scans
// nothing, so the scan-shaped metrics (rows, bytes, bounds) are recorded
// only for executed queries (Observation.Executed), keeping the
// microsecond-scale hit path cheap. The enabled end-to-end overhead is
// tracked by blinkdb-bench's telemetry record (qps with the registry on
// vs off on the result-cache replay).
//
// # Merge semantics
//
// HistSnapshot.Merge is bucket-wise integer addition plus float sum/max
// combination — associative and commutative like stats.Acc.Merge, so
// snapshots taken on different shards, goroutines or processes fold in
// any grouping (bit-identically for integer counts and max; float sums
// are exact on dyadic inputs, the same contract stats.Acc tests pin).
//
// # Disabled-path guarantee
//
// A runtime with no Registry and no Trace performs no timestamp reads, no
// histogram updates and no allocations on behalf of this package, and
// query answers are bit-identical to a build without telemetry: the only
// telemetry-adjacent work on that path, the Decision.PredictedBound
// projection, is computed unconditionally and deterministically so
// enabling telemetry can never change an answer.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is one query's span tree. Create with New, pass Root() down the
// pipeline, and Finish when the query completes. All methods are safe on a
// nil *Trace (no-ops), and safe for concurrent use — per-shard scan spans
// are created from worker goroutines.
type Trace struct {
	mu   sync.Mutex
	root *Span
}

// New starts a trace whose root span begins now.
func New(name string) *Trace {
	tr := &Trace{}
	tr.root = &Span{tr: tr, name: name, start: time.Now()}
	return tr
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.End()
}

// Span is one timed phase of a query. Spans form a tree under the trace's
// root; timestamps use Go's monotonic clock (time.Now/time.Since), so
// durations are immune to wall-clock jumps. All methods are nil-safe.
type Span struct {
	tr    *Trace
	name  string
	start time.Time

	// Guarded by tr.mu.
	dur      time.Duration
	ended    bool
	notes    []string
	children []*Span
}

// Child starts a sub-span. Safe to call from any goroutine; children
// appear in creation order.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End stops the span's clock. The first End wins; later calls are no-ops,
// so defensive double-ends on error paths are harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.tr.mu.Lock()
	if !s.ended {
		s.ended, s.dur = true, d
	}
	s.tr.mu.Unlock()
}

// Note attaches an annotation (e.g. "cache=hit") rendered next to the
// span. Notes may be added after End — cache outcomes are often known
// only once the lookup span has closed.
func (s *Span) Note(note string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.notes = append(s.notes, note)
	s.tr.mu.Unlock()
}

// Name returns the span's label ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time (zero for nil). Immutable after
// creation, so no lock is needed; useful for asserting ordering between
// sibling spans (e.g. a streaming session's first refinement starting
// before its final one).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's elapsed time — final after End, running
// until then (0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Notes returns a copy of the span's annotations.
func (s *Span) Notes() []string {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return append([]string(nil), s.notes...)
}

// Children returns a copy of the span's direct children in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// maxRenderChildren caps how many children of one span Render prints —
// a 100-node scan produces up to 100 shard spans; the tree stays readable
// and the elided count is reported.
const maxRenderChildren = 12

// Render draws the span tree with per-span durations and notes:
//
//	query                          1.82ms
//	├─ normalize                   2µs
//	├─ result-cache lookup         1µs  [result=miss]
//	└─ execute                     1.8ms
//	   ├─ plan-cache lookup        1µs  [cache=miss]
//	   ...
//
// Children beyond maxRenderChildren per node are elided with a count.
// Returns "" for a nil trace.
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	renderSpan(&b, t.root, "", "", "")
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, lead, branch, childLead string) {
	line := lead + branch + s.Name()
	fmt.Fprintf(b, "%-42s %s", line, fmtDur(s.Duration()))
	if notes := s.Notes(); len(notes) > 0 {
		fmt.Fprintf(b, "  [%s]", strings.Join(notes, "; "))
	}
	b.WriteByte('\n')
	kids := s.Children()
	shown := kids
	if len(shown) > maxRenderChildren {
		shown = shown[:maxRenderChildren]
	}
	for i, c := range shown {
		last := i == len(shown)-1 && len(kids) <= maxRenderChildren
		if last {
			renderSpan(b, c, lead+childLead, "└─ ", "   ")
		} else {
			renderSpan(b, c, lead+childLead, "├─ ", "│  ")
		}
	}
	if n := len(kids) - len(shown); n > 0 {
		var total time.Duration
		for _, c := range kids[len(shown):] {
			total += c.Duration()
		}
		fmt.Fprintf(b, "%s└─ … (+%d more spans, %s)\n", lead+childLead, n, fmtDur(total))
	}
}

// fmtDur renders durations compactly at µs precision (traces care about
// microseconds, not nanosecond noise).
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// Walk visits every span depth-first (parent before children), passing
// the nesting depth (root = 0). No-op on a nil trace.
func (t *Trace) Walk(fn func(s *Span, depth int)) {
	if t == nil {
		return
	}
	walkSpan(t.root, 0, fn)
}

func walkSpan(s *Span, depth int, fn func(*Span, int)) {
	fn(s, depth)
	for _, c := range s.Children() {
		walkSpan(c, depth+1, fn)
	}
}

// spanStart exposes the monotonic start for the Chrome exporter.
func (s *Span) spanStart() time.Time { return s.start }

// sortedSpans flattens the tree in start order (ties broken by creation
// order, which Walk preserves).
func (t *Trace) sortedSpans() []*Span {
	var all []*Span
	t.Walk(func(s *Span, _ int) { all = append(all, s) })
	sort.SliceStable(all, func(i, j int) bool {
		return all[i].spanStart().Before(all[j].spanStart())
	})
	return all
}
