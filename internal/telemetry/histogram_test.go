package telemetry

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestBucketOfEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{math.Inf(1), numBuckets - 1},
		{1e-300, 1}, // underflow clamps to the smallest value bucket
		{1e300, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Monotone: larger values never land in smaller buckets.
	prev := 0
	for v := 1e-12; v < 1e9; v *= 1.1 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %v: %d < %d", v, b, prev)
		}
		prev = b
	}
	// Each in-range bucket's lower edge maps back to that bucket.
	for b := 2; b < numBuckets-1; b++ {
		lo := bucketLower(b)
		if got := bucketOf(lo); got != b {
			t.Fatalf("bucketOf(bucketLower(%d)=%v) = %d", b, lo, got)
		}
		if got := bucketOf(lo * 0.999); got != b-1 {
			t.Fatalf("just below bucket %d edge -> %d, want %d", b, got, b-1)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i)) // uniform 1..1000
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %v", s.Max)
	}
	// Log buckets at 4/octave ⇒ ≤ ~13% relative error on quantiles.
	checks := []struct{ p, want float64 }{{0.50, 500}, {0.95, 950}, {0.99, 990}}
	for _, c := range checks {
		got := s.Quantile(c.p)
		if rel := math.Abs(got-c.want) / c.want; rel > 0.13 {
			t.Errorf("q%.2f = %v, want ~%v (rel err %.3f)", c.p, got, c.want, rel)
		}
	}
	if !(s.Quantile(0.5) <= s.Quantile(0.95) && s.Quantile(0.95) <= s.Quantile(0.99)) {
		t.Fatalf("quantiles not monotone: %v %v %v", s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99))
	}
	if got := s.Quantile(1); got > s.Max {
		t.Fatalf("q1.0 = %v exceeds max %v", got, s.Max)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Record(0.25) // dyadic: exact bucket edge
	}
	s := h.Snapshot()
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(p); got != 0.25 {
			t.Fatalf("q%v = %v, want 0.25 (max-clamped)", p, got)
		}
	}
	if s.Sum != 2.5 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestHistogramZeros(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(0)
	h.Record(4)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("median of {0,0,4} = %v, want 0", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Fatalf("q1 = %v, want 4", got)
	}
}

// TestMergeAssociative mirrors the stats.Acc merge suite: folding the
// same observations in different groupings must give identical (==)
// snapshots. Dyadic values make float sums exact.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := make([]HistSnapshot, 8)
	for i := range parts {
		var h Histogram
		for j := 0; j < 200; j++ {
			// Dyadic: k/1024 for random k — exact under float addition.
			h.Record(float64(rng.Intn(1<<14)) / 1024)
		}
		parts[i] = h.Snapshot()
	}

	leftFold := parts[0]
	for _, p := range parts[1:] {
		leftFold = leftFold.Merge(p)
	}
	var rightFold HistSnapshot
	for i := len(parts) - 1; i >= 0; i-- {
		rightFold = parts[i].Merge(rightFold)
	}
	pairTree := parts[0].Merge(parts[1]).Merge(parts[2].Merge(parts[3])).
		Merge(parts[4].Merge(parts[5]).Merge(parts[6].Merge(parts[7])))

	if leftFold != rightFold {
		t.Fatal("left fold != right fold")
	}
	if leftFold != pairTree {
		t.Fatal("left fold != pair tree")
	}
	if leftFold.Count != 1600 {
		t.Fatalf("merged count = %d", leftFold.Count)
	}
}

func TestMergeCommutative(t *testing.T) {
	var a, b Histogram
	a.Record(0.5)
	a.Record(2)
	b.Record(8)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Merge(sb) != sb.Merge(sa) {
		t.Fatal("merge not commutative")
	}
	var zero HistSnapshot
	if sa.Merge(zero) != sa {
		t.Fatal("zero snapshot is not an identity")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(float64(i%100) / 64) // dyadic
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	want := float64(goroutines) * 1000 * (99 * 100 / 2) / (100 * 64)
	if s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}
