package telemetry

import "sync/atomic"

// ServerMetrics aggregates the serving-layer signals blinkdb-server
// reports on /stats and blinkdb-bench folds into its snapshot: admission
// outcomes and the latency shape of streaming sessions. The interesting
// serving quantity is the gap between TimeToFirstAnswer and TimeToFinal —
// how much sooner a streaming client has *an* answer than *the* answer —
// plus how long admitted queries waited in the queue before scanning.
//
// The zero value is ready to use; all methods are safe for concurrent use
// and nil-safe, so call sites can thread an optional *ServerMetrics
// without guards.
type ServerMetrics struct {
	admitted       atomic.Int64
	shed           atomic.Int64
	queueCancelled atomic.Int64
	queueWait      Histogram // seconds from arrival to admission grant
	ttfa           Histogram // seconds from arrival to first streamed refinement
	ttf            Histogram // seconds from arrival to final answer
}

// RecordAdmit counts one admitted request and its queue wait in seconds.
func (m *ServerMetrics) RecordAdmit(waitSeconds float64) {
	if m == nil {
		return
	}
	m.admitted.Add(1)
	m.queueWait.Record(waitSeconds)
}

// RecordShed counts one request rejected by admission control.
func (m *ServerMetrics) RecordShed() {
	if m == nil {
		return
	}
	m.shed.Add(1)
}

// RecordQueueCancel counts one request whose client went away while it
// was still queued for admission — neither admitted nor shed. Tracking
// it keeps the books balanced: arrivals that reached admission equal
// Admitted + Shed + QueueCancelled.
func (m *ServerMetrics) RecordQueueCancel() {
	if m == nil {
		return
	}
	m.queueCancelled.Add(1)
}

// RecordFirstAnswer records the seconds from request arrival to the first
// streamed refinement (for non-streaming requests, the only answer — then
// TTFA and TTF coincide).
func (m *ServerMetrics) RecordFirstAnswer(seconds float64) {
	if m == nil {
		return
	}
	m.ttfa.Record(seconds)
}

// RecordFinal records the seconds from request arrival to the final
// (authoritative) answer.
func (m *ServerMetrics) RecordFinal(seconds float64) {
	if m == nil {
		return
	}
	m.ttf.Record(seconds)
}

// ServerSnapshot is a point-in-time summary of ServerMetrics.
type ServerSnapshot struct {
	// Admitted / Shed count admission outcomes since start; QueueCancelled
	// counts arrivals whose client gave up while still queued. ShedRate is
	// Shed/(Admitted+Shed), 0 before any request.
	Admitted       int64
	Shed           int64
	QueueCancelled int64
	ShedRate       float64
	// QueueWait summarizes seconds spent queued before admission.
	QueueWait Percentiles
	// TimeToFirstAnswer / TimeToFinal summarize seconds from arrival to
	// the first refinement and to the final answer. Their p50 gap is the
	// latency a streaming client saves over waiting for the final.
	TimeToFirstAnswer Percentiles
	TimeToFinal       Percentiles
}

// Snapshot folds the metrics into a reportable summary (zero-valued for
// nil).
func (m *ServerMetrics) Snapshot() ServerSnapshot {
	if m == nil {
		return ServerSnapshot{}
	}
	s := ServerSnapshot{
		Admitted:          m.admitted.Load(),
		Shed:              m.shed.Load(),
		QueueCancelled:    m.queueCancelled.Load(),
		QueueWait:         percentilesOf(m.queueWait.Snapshot()),
		TimeToFirstAnswer: percentilesOf(m.ttfa.Snapshot()),
		TimeToFinal:       percentilesOf(m.ttf.Snapshot()),
	}
	if total := s.Admitted + s.Shed; total > 0 {
		s.ShedRate = float64(s.Shed) / float64(total)
	}
	return s
}
