package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	tr := New("query")
	root := tr.Root()
	if root.Name() != "query" {
		t.Fatalf("root name = %q", root.Name())
	}
	norm := root.Child("normalize")
	norm.End()
	exec := root.Child("execute")
	scan := exec.Child("scan")
	scan.Note("blocks=4")
	scan.End()
	exec.End()
	root.Note("result=miss")
	tr.Finish()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "normalize" || kids[1].Name() != "execute" {
		t.Fatalf("children = %v", kids)
	}
	if got := kids[1].Children()[0].Notes(); len(got) != 1 || got[0] != "blocks=4" {
		t.Fatalf("scan notes = %v", got)
	}
	if root.Duration() <= 0 {
		t.Fatalf("root duration = %v", root.Duration())
	}
	// Parent spans cover their children.
	if exec.Duration() < scan.Duration() {
		t.Fatalf("exec %v < scan %v", exec.Duration(), scan.Duration())
	}

	var names []string
	tr.Walk(func(s *Span, depth int) { names = append(names, fmt.Sprintf("%d:%s", depth, s.Name())) })
	want := []string{"0:query", "1:normalize", "1:execute", "2:scan"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("walk = %v, want %v", names, want)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := New("q")
	sp := tr.Root().Child("phase")
	sp.End()
	d := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End() // second End must not extend the span
	if got := sp.Duration(); got != d {
		t.Fatalf("duration changed after second End: %v -> %v", d, got)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.Root() != nil {
		t.Fatal("nil trace Root should be nil")
	}
	tr.Finish()
	tr.Walk(func(*Span, int) { t.Fatal("nil trace walked") })
	if tr.Render() != "" {
		t.Fatal("nil trace render should be empty")
	}
	var sp *Span
	c := sp.Child("x")
	if c != nil {
		t.Fatal("nil span Child should be nil")
	}
	c.End()
	c.Note("n")
	if c.Name() != "" || c.Duration() != 0 || c.Notes() != nil || c.Children() != nil {
		t.Fatal("nil span accessors should be zero")
	}
	var reg *Registry
	reg.Observe("k", Observation{WallSeconds: 1})
	if got := reg.Snapshot(); len(got.Templates) != 0 {
		t.Fatalf("nil registry snapshot = %+v", got)
	}
}

// TestDisabledPathZeroAllocs pins the disabled-path guarantee from the
// package doc: the full span-op sequence a traced query performs must be
// free when the trace is nil.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var tr *Trace
	var reg *Registry
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.Root()
		sp := root.Child("execute")
		sp.Note("cache=hit")
		inner := sp.Child("scan")
		inner.End()
		sp.End()
		tr.Finish()
		reg.Observe("key", Observation{})
	})
	if allocs != 0 {
		t.Fatalf("disabled-path allocs/op = %v, want 0", allocs)
	}
}

func TestHistogramRecordZeroAllocs(t *testing.T) {
	var h Histogram
	v := 0.001
	allocs := testing.AllocsPerRun(100, func() {
		h.Record(v)
		v *= 1.01
	})
	if allocs != 0 {
		t.Fatalf("Record allocs/op = %v, want 0", allocs)
	}
}

func TestRenderTree(t *testing.T) {
	tr := New("query")
	root := tr.Root()
	lookup := root.Child("result-cache lookup")
	lookup.End()
	lookup.Note("result=miss")
	ex := root.Child("execute")
	for i := 0; i < 20; i++ {
		c := ex.Child(fmt.Sprintf("shard %d", i))
		c.End()
	}
	ex.End()
	tr.Finish()

	out := tr.Render()
	for _, want := range []string{"query", "result-cache lookup", "[result=miss]", "execute", "shard 0", "… (+8 more spans"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "shard 15") {
		t.Fatalf("render should elide children beyond %d:\n%s", maxRenderChildren, out)
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	tr := New("query")
	ex := tr.Root().Child("execute")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := ex.Child(fmt.Sprintf("shard g%d i%d", g, i))
				sp.Note("n")
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	ex.End()
	tr.Finish()
	if got := len(ex.Children()); got != 400 {
		t.Fatalf("children = %d, want 400", got)
	}
}

func TestChromeExport(t *testing.T) {
	tr := New("query")
	root := tr.Root()
	a := root.Child("plan-cache lookup")
	a.Note("cache=miss")
	a.End()
	b := root.Child("execute")
	b.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, []*Trace{tr, nil}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("phase = %v", ev["ph"])
		}
		if ev["pid"].(float64) != 1 {
			t.Fatalf("pid = %v", ev["pid"])
		}
	}
	// The root overlaps both children, so it must not share their lane.
	if events[0]["name"] != "query" {
		t.Fatalf("first event = %v", events[0]["name"])
	}
}

func TestChromeLaneAssignment(t *testing.T) {
	// Two spans created under the same parent where the second starts
	// before the first ends must land in different lanes; a third starting
	// after both end reuses lane 1's slot.
	tr := New("root")
	root := tr.Root()
	a := root.Child("a")
	b := root.Child("b") // overlaps a
	time.Sleep(time.Millisecond)
	a.End()
	b.End()
	c := root.Child("c") // starts after a and b ended
	c.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, []*Trace{tr}); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	tid := map[string]int{}
	for _, ev := range events {
		tid[ev.Name] = ev.TID
	}
	if tid["a"] == tid["b"] {
		t.Fatalf("overlapping spans share a lane: %v", tid)
	}
	// root is still open while c starts, so c shares with a or b, not root.
	if tid["c"] == tid["root"] {
		t.Fatalf("c should not share the root's lane: %v", tid)
	}
}
