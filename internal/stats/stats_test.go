package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZForConfidence(t *testing.T) {
	cases := []struct{ conf, z float64 }{
		{0.90, 1.6449}, {0.95, 1.9600}, {0.99, 2.5758},
	}
	for _, c := range cases {
		if got := ZForConfidence(c.conf); math.Abs(got-c.z) > 0.001 {
			t.Errorf("z(%.2f) = %.4f, want %.4f", c.conf, got, c.z)
		}
	}
	if ZForConfidence(0) != 0 {
		t.Error("z(0) should be 0")
	}
	if z := ZForConfidence(1); math.IsInf(z, 1) || z < 4 {
		t.Errorf("z(1) should be large finite, got %g", z)
	}
}

func TestAggKindString(t *testing.T) {
	if AggCount.String() != "COUNT" || AggSum.String() != "SUM" ||
		AggAvg.String() != "AVG" || AggQuantile.String() != "QUANTILE" {
		t.Error("AggKind names wrong")
	}
	if !AggQuantile.NeedsValues() || AggSum.NeedsValues() {
		t.Error("NeedsValues wrong")
	}
}

func TestExactOnRateOne(t *testing.T) {
	for _, k := range []AggKind{AggCount, AggSum, AggAvg, AggQuantile} {
		a := NewAcc(k, 0.5)
		for i := 1; i <= 100; i++ {
			a.Add(float64(i), 1.0)
		}
		e := a.Estimate(0.95)
		if !e.Exact || e.StdErr != 0 || e.Bound != 0 {
			t.Errorf("%s: rate-1 sample should be exact, got %+v", k, e)
		}
		switch k {
		case AggCount:
			if e.Point != 100 {
				t.Errorf("COUNT = %g", e.Point)
			}
		case AggSum:
			if e.Point != 5050 {
				t.Errorf("SUM = %g", e.Point)
			}
		case AggAvg:
			if e.Point != 50.5 {
				t.Errorf("AVG = %g", e.Point)
			}
		case AggQuantile:
			if e.Point < 49 || e.Point > 52 {
				t.Errorf("MEDIAN = %g, want ≈ 50.5", e.Point)
			}
		}
	}
}

func TestEmptyAcc(t *testing.T) {
	a := NewAcc(AggAvg, 0)
	e := a.Estimate(0.95)
	if e.Point != 0 || e.Rows != 0 {
		t.Errorf("empty estimate = %+v", e)
	}
}

func TestCountUnbiasedUnderUniformSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, p = 100000, 0.01
	var sum float64
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		a := NewAcc(AggCount, 0)
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				a.Add(1, p)
			}
		}
		sum += a.Estimate(0.95).Point
	}
	mean := sum / trials
	if math.Abs(mean-n)/n > 0.02 {
		t.Errorf("mean COUNT estimate %.0f, want ≈ %d", mean, n)
	}
}

// coverage runs repeated sampling experiments and reports the fraction of
// trials whose CI contains the true value.
func coverage(t *testing.T, kind AggKind, q float64, truth float64,
	sampleOnce func(a *Acc, rng *rand.Rand)) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	const trials = 400
	hit := 0
	for i := 0; i < trials; i++ {
		a := NewAcc(kind, q)
		sampleOnce(a, rng)
		e := a.Estimate(0.95)
		if math.Abs(e.Point-truth) <= e.Bound {
			hit++
		}
	}
	return float64(hit) / trials
}

func TestAvgCICoverage(t *testing.T) {
	// Population: exponential-ish values; uniform 2% sampling.
	pop := make([]float64, 50000)
	rng := rand.New(rand.NewSource(1))
	truth := 0.0
	for i := range pop {
		pop[i] = rng.ExpFloat64() * 100
		truth += pop[i]
	}
	truth /= float64(len(pop))
	cov := coverage(t, AggAvg, 0, truth, func(a *Acc, rng *rand.Rand) {
		for _, x := range pop {
			if rng.Float64() < 0.02 {
				a.Add(x, 0.02)
			}
		}
	})
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("AVG 95%% CI empirical coverage = %.3f", cov)
	}
}

func TestSumCICoverage(t *testing.T) {
	pop := make([]float64, 50000)
	rng := rand.New(rand.NewSource(2))
	truth := 0.0
	for i := range pop {
		pop[i] = rng.Float64() * 10
		truth += pop[i]
	}
	cov := coverage(t, AggSum, 0, truth, func(a *Acc, rng *rand.Rand) {
		for _, x := range pop {
			if rng.Float64() < 0.02 {
				a.Add(x, 0.02)
			}
		}
	})
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("SUM 95%% CI empirical coverage = %.3f", cov)
	}
}

func TestCountCICoverage(t *testing.T) {
	const n = 50000
	cov := coverage(t, AggCount, 0, n, func(a *Acc, rng *rand.Rand) {
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.02 {
				a.Add(1, 0.02)
			}
		}
	})
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("COUNT 95%% CI empirical coverage = %.3f", cov)
	}
}

func TestQuantileCICoverage(t *testing.T) {
	pop := make([]float64, 20000)
	rng := rand.New(rand.NewSource(3))
	for i := range pop {
		pop[i] = rng.NormFloat64()*10 + 100
	}
	// True median of the population.
	sorted := append([]float64{}, pop...)
	for i := 1; i < len(sorted); i++ { // insertion-free: use sort via Acc
	}
	aAll := NewAcc(AggQuantile, 0.5)
	for _, x := range pop {
		aAll.Add(x, 1)
	}
	truth := aAll.Estimate(0.95).Point
	_ = sorted
	cov := coverage(t, AggQuantile, 0.5, truth, func(a *Acc, rng *rand.Rand) {
		for _, x := range pop {
			if rng.Float64() < 0.05 {
				a.Add(x, 0.05)
			}
		}
	})
	if cov < 0.88 || cov > 1.0 {
		t.Errorf("QUANTILE 95%% CI empirical coverage = %.3f", cov)
	}
}

// TestStratifiedBiasCorrection reproduces the §4.3 worked example: the
// Sessions table stratified on Browser with K=1; SUM(SessionTime) grouped
// by City must be estimated with per-row rates (Firefox row at 0.33).
func TestStratifiedBiasCorrection(t *testing.T) {
	// Sample rows for New York: yahoo/Firefox 20 @ rate 1/3,
	// google/Safari 82 @ rate 1.
	ny := NewAcc(AggSum, 0)
	ny.Add(20, 1.0/3.0)
	ny.Add(82, 1.0)
	got := ny.Estimate(0.95).Point
	want := 3.0*20 + 82 // paper: 1/0.33·20 + 1/1·82
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("NY SUM = %g, want %g", got, want)
	}

	cam := NewAcc(AggSum, 0)
	cam.Add(22, 1.0)
	if got := cam.Estimate(0.95).Point; got != 22 {
		t.Errorf("Cambridge SUM = %g, want 22", got)
	}
}

func TestMerge(t *testing.T) {
	full := NewAcc(AggAvg, 0)
	a := NewAcc(AggAvg, 0)
	b := NewAcc(AggAvg, 0)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		x := rng.Float64() * 50
		full.Add(x, 0.1)
		if i%2 == 0 {
			a.Add(x, 0.1)
		} else {
			b.Add(x, 0.1)
		}
	}
	a.Merge(b)
	ea, ef := a.Estimate(0.95), full.Estimate(0.95)
	if math.Abs(ea.Point-ef.Point) > 1e-9 || math.Abs(ea.StdErr-ef.StdErr) > 1e-9 {
		t.Errorf("merge mismatch: %+v vs %+v", ea, ef)
	}
	if ea.Rows != ef.Rows {
		t.Errorf("rows %d vs %d", ea.Rows, ef.Rows)
	}
}

func TestWeightedQuantileAgainstUnweighted(t *testing.T) {
	// Duplicating a row twice at weight 1 must equal one row at weight 2.
	a := NewAcc(AggQuantile, 0.5)
	b := NewAcc(AggQuantile, 0.5)
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	for _, v := range vals {
		a.Add(v, 1)
		a.Add(v, 1)
		b.Add(v, 0.5) // weight 2
	}
	qa := a.Estimate(0.95).Point
	qb := b.Estimate(0.95).Point
	if math.Abs(qa-qb) > 0.51 {
		t.Errorf("weighted quantile %g vs duplicated %g", qb, qa)
	}
}

func TestQuantileEdgeLevels(t *testing.T) {
	a := NewAcc(AggQuantile, 0)
	for _, v := range []float64{3, 1, 2} {
		a.Add(v, 0.5)
	}
	if q := a.weightedQuantile(0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := a.weightedQuantile(1); q != 3 {
		t.Errorf("q1 = %g", q)
	}
}

func TestRelErr(t *testing.T) {
	e := Estimate{Point: 100, Bound: 5}
	if e.RelErr() != 0.05 {
		t.Errorf("RelErr = %g", e.RelErr())
	}
	if (Estimate{Point: 0, Bound: 1}).RelErr() != math.Inf(1) {
		t.Error("zero point should give infinite rel err")
	}
	if (Estimate{Point: 0, Bound: 0}).RelErr() != 0 {
		t.Error("zero bound is zero rel err")
	}
	if (Estimate{Point: 2, Bound: 1, Confidence: 0.95}).String() == "" {
		t.Error("String empty")
	}
}

func TestRequiredRowsForStdErr(t *testing.T) {
	// stderr ∝ 1/√n: halving the error quadruples the rows.
	got := RequiredRowsForStdErr(0.1, 1000, 0.05)
	if math.Abs(got-4000) > 1 {
		t.Errorf("required rows = %g, want 4000", got)
	}
	if !math.IsInf(RequiredRowsForStdErr(0.1, 0, 0.05), 1) {
		t.Error("zero current rows → infinite requirement")
	}
	if !math.IsInf(RequiredRowsForStdErr(0.1, 100, 0), 1) {
		t.Error("zero target → infinite requirement")
	}
	if RequiredRowsForStdErr(0, 100, 0.05) != 100 {
		t.Error("already-exact estimate needs no more rows")
	}
}

func TestUniformVarianceFormulas(t *testing.T) {
	// COUNT: N=1e6, n=1e4, c=0.5 → Var = 1e12/1e4·0.25 = 2.5e7.
	if got := UniformCountVariance(1e6, 1e4, 0.5); math.Abs(got-2.5e7) > 1 {
		t.Errorf("count var = %g", got)
	}
	if !math.IsInf(UniformCountVariance(1e6, 0, 0.5), 1) {
		t.Error("n=0 should be infinite")
	}
	if got := UniformAvgVariance(4.0, 100); got != 0.04 {
		t.Errorf("avg var = %g", got)
	}
	if !math.IsInf(UniformAvgVariance(4.0, 0), 1) {
		t.Error("n=0 should be infinite")
	}
}

// Property: stderr decreases (weakly) as more rows are added, for AVG.
func TestStdErrShrinksWithRows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAcc(AggAvg, 0)
		for i := 0; i < 100; i++ {
			a.Add(rng.Float64()*100, 0.1)
		}
		e1 := a.Estimate(0.95)
		for i := 0; i < 900; i++ {
			a.Add(rng.Float64()*100, 0.1)
		}
		e2 := a.Estimate(0.95)
		return e2.StdErr < e1.StdErr*1.2 // allow variance growth noise
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: invalid rates are clamped to 1 rather than corrupting weights.
func TestInvalidRateClamped(t *testing.T) {
	a := NewAcc(AggCount, 0)
	a.Add(1, 0)
	a.Add(1, -3)
	a.Add(1, 2)
	e := a.Estimate(0.95)
	if e.Point != 3 || !e.Exact {
		t.Errorf("clamped rates should behave as rate 1: %+v", e)
	}
}

func BenchmarkAccAdd(b *testing.B) {
	a := NewAcc(AggAvg, 0)
	for i := 0; i < b.N; i++ {
		a.Add(float64(i%1000), 0.1)
	}
}

func BenchmarkQuantileEstimate(b *testing.B) {
	a := NewAcc(AggQuantile, 0.5)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a.Add(rng.Float64(), 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Estimate(0.95)
	}
}
