package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestMergeEquivalence is the mergeability property the parallel executor
// rests on: splitting a stream of (x, rate) observations into consecutive
// chunks, accumulating each chunk separately and folding the partial
// accumulators in chunk order must reproduce the estimate of a single
// sequential accumulator. Values are small integers and rates dyadic
// (1/2^k), so every moment sum is exact in float64 and the comparison can
// be bit-for-bit — Merge adds partial sums, and with inexact addition the
// association would legitimately differ (which is why exec.MergePartials
// pins a canonical fold order instead of promising monolithic equality).
func TestMergeEquivalence(t *testing.T) {
	kinds := []struct {
		kind AggKind
		p    float64
	}{
		{AggCount, 0}, {AggSum, 0}, {AggAvg, 0}, {AggQuantile, 0.5}, {AggQuantile, 0.9},
	}
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(1500)
		xs := make([]float64, n)
		rates := make([]float64, n)
		dyadic := []float64{1, 0.5, 0.25, 0.125, 0.0625}
		for i := range xs {
			xs[i] = float64(rng.Intn(200))
			rates[i] = dyadic[rng.Intn(len(dyadic))]
		}
		for _, k := range kinds {
			seq := NewAcc(k.kind, k.p)
			for i := range xs {
				seq.Add(xs[i], rates[i])
			}
			want := seq.Estimate(0.95)

			for _, chunks := range []int{1, 2, 7, 64} {
				accs := make([]*Acc, chunks)
				for c := range accs {
					accs[c] = NewAcc(k.kind, k.p)
				}
				// Consecutive chunking mirrors the executor's contiguous
				// block ranges: chunk boundaries preserve stream order.
				per := (n + chunks - 1) / chunks
				for i := range xs {
					accs[i/per].Add(xs[i], rates[i])
				}
				merged := accs[0]
				for _, a := range accs[1:] {
					merged.Merge(a)
				}
				got := merged.Estimate(0.95)
				if got != want {
					t.Fatalf("seed=%d kind=%s p=%g chunks=%d: merged %+v != sequential %+v",
						seed, k.kind, k.p, chunks, got, want)
				}
			}
		}
	}
}

// TestMergeEmptyAndZeroRows checks merging with empty partials (a block
// range where no row matched) is the identity.
func TestMergeEmptyAndZeroRows(t *testing.T) {
	a := NewAcc(AggAvg, 0)
	a.Add(10, 1)
	a.Add(20, 0.5)
	want := a.Estimate(0.9)

	b := NewAcc(AggAvg, 0)
	b.Add(10, 1)
	b.Add(20, 0.5)
	b.Merge(NewAcc(AggAvg, 0))
	if got := b.Estimate(0.9); got != want {
		t.Fatalf("merging an empty acc changed the estimate: %+v vs %+v", got, want)
	}

	empty := NewAcc(AggCount, 0)
	empty.Merge(NewAcc(AggCount, 0))
	if e := empty.Estimate(0.95); e.Rows != 0 || e.Point != 0 {
		t.Fatalf("empty merge should stay empty: %+v", e)
	}
}

// TestQuantileOrderInvariance: the quantile estimate depends only on the
// merged multiset of weighted values, not the order buffers were
// concatenated in (the sort uses a total order on (x, w)).
func TestQuantileOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = math.Round(rng.NormFloat64() * 5) // many ties
	}
	build := func(order []int) Estimate {
		a := NewAcc(AggQuantile, 0.5)
		b := NewAcc(AggQuantile, 0.5)
		for _, i := range order {
			rate := 1.0
			if i%3 == 0 {
				rate = 0.25
			}
			if i < len(vals)/2 {
				a.Add(vals[i], rate)
			} else {
				b.Add(vals[i], rate)
			}
		}
		a.Merge(b)
		return a.Estimate(0.95)
	}
	asc := make([]int, len(vals))
	for i := range asc {
		asc[i] = i
	}
	shuffled := append([]int(nil), asc...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if e1, e2 := build(asc), build(shuffled); e1.Point != e2.Point {
		t.Fatalf("quantile depends on insertion order: %g vs %g", e1.Point, e2.Point)
	}
}
