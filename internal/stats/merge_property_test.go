package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestMergePropertyRandomShapes is the quickcheck-style pin of the
// invariant every bit-identity claim in PRs 1-5 rests on: Acc merging is
// associative and commutative. 200 seeded trials draw a random stream,
// cut it into a random number of partitions at random boundaries
// (including empty ones), fold the partial accumulators under random
// association trees AND random commutation orders, and require the exact
// same Estimate every time.
//
// Exactness discipline mirrors merge_test.go: values are small integers
// and rates dyadic, so every moment sum is exact in float64 and equality
// can be bit-for-bit — with inexact addition, associativity would
// legitimately fail, which is precisely why exec.MergePartials pins a
// canonical fold order. Commutativity of a single Merge needs no such
// care (IEEE addition commutes exactly), and the quantile estimate is
// order-free by construction (total-order sort of the merged multiset) —
// both facts get their own arbitrary-float trial at the end.
func TestMergePropertyRandomShapes(t *testing.T) {
	kinds := []struct {
		kind AggKind
		p    float64
	}{
		{AggCount, 0}, {AggSum, 0}, {AggAvg, 0}, {AggQuantile, 0.5}, {AggQuantile, 0.9},
	}
	dyadic := []float64{1, 0.5, 0.25, 0.125, 0.0625}
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := rng.Intn(600) // includes n = 0
		xs := make([]float64, n)
		rates := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(100) - 20)
			rates[i] = dyadic[rng.Intn(len(dyadic))]
		}
		// Random partition: k parts with random boundaries, empties legal.
		k := 1 + rng.Intn(9)
		cuts := make([]int, k+1)
		cuts[k] = n
		for c := 1; c < k; c++ {
			cuts[c] = rng.Intn(n + 1)
		}
		cuts[0] = 0
		sortInts(cuts)

		for _, kd := range kinds {
			parts := make([]*Acc, k)
			for p := 0; p < k; p++ {
				parts[p] = NewAcc(kd.kind, kd.p)
				for i := cuts[p]; i < cuts[p+1]; i++ {
					parts[p].Add(xs[i], rates[i])
				}
			}
			// Reference: strict left fold in partition order.
			want := foldOrdered(parts).Estimate(0.95)

			// Associativity: a random binary merge tree over the same
			// partition order.
			if got := foldRandomTree(rng, parts).Estimate(0.95); got != want {
				t.Fatalf("trial %d kind %s p=%g: random association tree diverged\nwant %+v\ngot  %+v",
					trial, kd.kind, kd.p, want, got)
			}
			// Commutativity: left fold over a random permutation.
			perm := rng.Perm(k)
			shuffled := make([]*Acc, k)
			for i, j := range perm {
				shuffled[i] = parts[j]
			}
			if got := foldOrdered(shuffled).Estimate(0.95); got != want {
				t.Fatalf("trial %d kind %s p=%g: permutation %v diverged\nwant %+v\ngot  %+v",
					trial, kd.kind, kd.p, perm, want, got)
			}
		}
	}

	// Arbitrary (non-dyadic) floats: pairwise Merge commutes bit-for-bit
	// (IEEE a+b == b+a), and the quantile point depends only on the
	// merged multiset, for any partition shape.
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 50; trial++ {
		a, b := NewAcc(AggAvg, 0), NewAcc(AggAvg, 0)
		qa, qb := NewAcc(AggQuantile, 0.5), NewAcc(AggQuantile, 0.5)
		for i, n := 0, 50+rng.Intn(200); i < n; i++ {
			x, r := rng.NormFloat64()*1e3, math.Min(1, rng.Float64()+0.01)
			if rng.Intn(2) == 0 {
				a.Add(x, r)
				qa.Add(x, r)
			} else {
				b.Add(x, r)
				qb.Add(x, r)
			}
		}
		ab, ba := a.Clone(), b.Clone()
		ab.Merge(b)
		ba.Merge(a)
		if ab.Estimate(0.95) != ba.Estimate(0.95) {
			t.Fatalf("trial %d: Merge does not commute on arbitrary floats\nA∪B %+v\nB∪A %+v",
				trial, ab.Estimate(0.95), ba.Estimate(0.95))
		}
		qab, qba := qa.Clone(), qb.Clone()
		qab.Merge(qb)
		qba.Merge(qa)
		if pa, pb := qab.Estimate(0.95).Point, qba.Estimate(0.95).Point; pa != pb {
			t.Fatalf("trial %d: quantile point depends on merge order: %v vs %v", trial, pa, pb)
		}
	}
}

// foldOrdered left-folds clones (sources stay reusable across orders).
func foldOrdered(parts []*Acc) *Acc {
	acc := parts[0].Clone()
	for _, p := range parts[1:] {
		acc.Merge(p)
	}
	return acc
}

// foldRandomTree merges parts under a random association: repeatedly
// merge a random ADJACENT pair (preserving left-to-right order, so only
// the parenthesization varies — pure associativity, no commutation).
func foldRandomTree(rng *rand.Rand, parts []*Acc) *Acc {
	work := make([]*Acc, len(parts))
	for i, p := range parts {
		work[i] = p.Clone()
	}
	for len(work) > 1 {
		i := rng.Intn(len(work) - 1)
		work[i].Merge(work[i+1])
		work = append(work[:i+1], work[i+2:]...)
	}
	return work[0]
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
