// Package stats implements BlinkDB's error-estimation machinery (§4.3 and
// Table 2): closed-form variance estimators for COUNT, SUM, AVG and
// QUANTILE over weighted (Horvitz–Thompson) samples, normal-approximation
// confidence intervals, and the per-row effective-sampling-rate bias
// correction required when answering from stratified samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// AggKind enumerates the closed-form aggregates of Table 2.
type AggKind uint8

const (
	// AggCount is COUNT(*) (or COUNT(col), NULLs pre-filtered upstream).
	AggCount AggKind = iota
	// AggSum is SUM(col).
	AggSum
	// AggAvg is AVG(col).
	AggAvg
	// AggQuantile is QUANTILE(col, p) (MEDIAN is p = 0.5).
	AggQuantile
)

// String renders the aggregate name.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggQuantile:
		return "QUANTILE"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// NeedsValues reports whether the accumulator must retain raw values
// (true only for quantiles, which need order statistics).
func (k AggKind) NeedsValues() bool { return k == AggQuantile }

// ZForConfidence returns the two-sided normal critical value z such that
// P(|Z| ≤ z) = conf, e.g. ≈1.96 for conf = 0.95.
func ZForConfidence(conf float64) float64 {
	if conf <= 0 {
		return 0
	}
	if conf >= 1 {
		conf = 0.999999
	}
	return math.Sqrt2 * math.Erfinv(conf)
}

// Estimate is a point estimate with uncertainty, as returned to users
// ("Result: 1,101,822 ± 2,105 (95% confidence)" in Fig. 1).
type Estimate struct {
	// Point is the unbiased point estimate.
	Point float64
	// StdErr is the estimated standard error of Point.
	StdErr float64
	// Confidence is the level the Bound was computed at.
	Confidence float64
	// Bound is the half-width of the confidence interval (z·StdErr).
	Bound float64
	// Rows is the number of matching sample rows the estimate used.
	Rows int64
	// EffRows is the effective sample size (Σw)²/Σw², which accounts
	// for the design effect of unequal weights.
	EffRows float64
	// Exact marks estimates known to be exact (e.g. a stratum fully
	// contained in the sample, §3.1: F(x) ≤ K ⇒ no sampling error).
	Exact bool
}

// RelErr returns Bound/|Point|, the relative error at the estimate's
// confidence level. Infinite when Point is 0 with nonzero bound.
func (e Estimate) RelErr() float64 {
	if e.Bound == 0 {
		return 0
	}
	if e.Point == 0 {
		return math.Inf(1)
	}
	return e.Bound / math.Abs(e.Point)
}

// String renders "point ± bound (conf%)".
func (e Estimate) String() string {
	return fmt.Sprintf("%.4g ± %.3g (%.0f%% confidence)", e.Point, e.Bound, e.Confidence*100)
}

type weightedVal struct {
	x float64
	w float64
}

// Acc accumulates matching rows of one (group, aggregate) pair from a
// weighted sample. Each matching row carries the effective sampling rate
// with which it entered the sample; weight w = 1/rate. Base tables have
// rate 1 everywhere, making every estimate exact.
type Acc struct {
	kind AggKind
	p    float64 // quantile level for AggQuantile

	rows    int64
	sumW    float64 // Σ w            (HT count estimate)
	sumW2   float64 // Σ w²
	sumWX   float64 // Σ w·x          (HT sum estimate)
	sumWX2  float64 // Σ w·x²
	sumWW1  float64 // Σ w(w−1)       (Poisson-HT count variance)
	sumWW1X float64 // Σ w(w−1)x²     (Poisson-HT sum variance)
	allOne  bool    // every weight was exactly 1 → estimate is exact

	vals []weightedVal // retained only for quantiles
}

// NewAcc creates an accumulator. p is the quantile level and is ignored
// for other aggregate kinds.
func NewAcc(kind AggKind, p float64) *Acc {
	return &Acc{kind: kind, p: p, allOne: true}
}

// Kind returns the aggregate kind.
func (a *Acc) Kind() AggKind { return a.kind }

// Add records one matching row with value x sampled at the given rate.
func (a *Acc) Add(x, rate float64) {
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	w := 1 / rate
	a.rows++
	a.sumW += w
	a.sumW2 += w * w
	a.sumWX += w * x
	a.sumWX2 += w * x * x
	a.sumWW1 += w * (w - 1)
	a.sumWW1X += w * (w - 1) * x * x
	if w != 1 {
		a.allOne = false
	}
	if a.kind.NeedsValues() {
		a.vals = append(a.vals, weightedVal{x: x, w: w})
	}
}

// AddBatch records n matching rows at once, identically — operation for
// operation, in order — to calling Add for each row, so batch and scalar
// accumulation produce bit-identical state. xs holds the per-row values
// (nil means every x is 1, the COUNT path; otherwise len(xs) == n). rates
// holds the per-row sampling rates (nil means every row shares rate;
// otherwise len(rates) == n). The batch forms exist for the vectorized
// columnar scan: with a shared rate the weight terms w, w² and w(w−1) are
// loop-invariant and the moment sums stay in registers across the batch.
func (a *Acc) AddBatch(xs, rates []float64, n int, rate float64) {
	if n == 0 {
		return
	}
	if rates != nil {
		// Varying rates: per-row weight math is unavoidable; reuse Add so
		// the operation sequence stays trivially identical.
		if xs == nil {
			for _, r := range rates[:n] {
				a.Add(1, r)
			}
		} else {
			for j, x := range xs[:n] {
				a.Add(x, rates[j])
			}
		}
		return
	}
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	w := 1 / rate
	w2, ww1 := w*w, w*(w-1)
	sumW, sumW2, sumWX, sumWX2 := a.sumW, a.sumW2, a.sumWX, a.sumWX2
	sumWW1, sumWW1X := a.sumWW1, a.sumWW1X
	if xs == nil {
		// x = 1 throughout: w·x = w, w·x·x = w, w(w−1)x² = w(w−1), all
		// exactly (IEEE multiplication by 1 is the identity).
		for j := 0; j < n; j++ {
			sumW += w
			sumW2 += w2
			sumWX += w
			sumWX2 += w
			sumWW1 += ww1
			sumWW1X += ww1
		}
	} else {
		for _, x := range xs[:n] {
			sumW += w
			sumW2 += w2
			sumWX += w * x
			sumWX2 += w * x * x
			sumWW1 += ww1
			sumWW1X += ww1 * x * x
		}
	}
	a.sumW, a.sumW2, a.sumWX, a.sumWX2 = sumW, sumW2, sumWX, sumWX2
	a.sumWW1, a.sumWW1X = sumWW1, sumWW1X
	a.rows += int64(n)
	if w != 1 {
		a.allOne = false
	}
	if a.kind.NeedsValues() {
		if xs == nil {
			for j := 0; j < n; j++ {
				a.vals = append(a.vals, weightedVal{x: 1, w: w})
			}
		} else {
			for _, x := range xs[:n] {
				a.vals = append(a.vals, weightedVal{x: x, w: w})
			}
		}
	}
}

// Merge folds other into a (parallel partial aggregation). Every estimator
// state is a set of moment sums (Σw, Σw², Σwx, Σwx², …), so combining is
// associative addition — the Chan et al. parallel-merge formulation of
// mean/variance expressed over raw moments. Quantile value buffers
// concatenate; weightedQuantile sorts with a total order, so the estimate
// depends only on the merged multiset, not the merge schedule. Callers who
// need bit-identical floating-point results across worker counts must
// additionally fold partials in a deterministic order (see
// exec.MergePartials).
func (a *Acc) Merge(other *Acc) {
	a.rows += other.rows
	a.sumW += other.sumW
	a.sumW2 += other.sumW2
	a.sumWX += other.sumWX
	a.sumWX2 += other.sumWX2
	a.sumWW1 += other.sumWW1
	a.sumWW1X += other.sumWW1X
	a.allOne = a.allOne && other.allOne
	a.vals = append(a.vals, other.vals...)
}

// Clone returns an independent copy of the accumulator (the quantile
// value buffer is copied, not aliased), so merging into the clone leaves
// the original usable.
func (a *Acc) Clone() *Acc {
	cp := *a
	if a.vals != nil {
		cp.vals = append(make([]weightedVal, 0, len(a.vals)), a.vals...)
	}
	return &cp
}

// Rows returns the number of matching rows added.
func (a *Acc) Rows() int64 { return a.rows }

// EffRows returns the effective sample size (Σw)²/Σw².
func (a *Acc) EffRows() float64 {
	if a.sumW2 == 0 {
		return 0
	}
	return a.sumW * a.sumW / a.sumW2
}

// weightedVariance returns the weighted population variance of x,
// S² = Σw(x−μ)²/Σw with μ the weighted mean.
func (a *Acc) weightedVariance() float64 {
	if a.sumW == 0 {
		return 0
	}
	mu := a.sumWX / a.sumW
	v := a.sumWX2/a.sumW - mu*mu
	if v < 0 {
		v = 0 // numeric noise
	}
	return v
}

// Estimate produces the point estimate and CI at the given confidence.
func (a *Acc) Estimate(conf float64) Estimate {
	e := Estimate{Confidence: conf, Rows: a.rows, EffRows: a.EffRows(), Exact: a.allOne}
	if a.rows == 0 {
		return e
	}
	z := ZForConfidence(conf)
	switch a.kind {
	case AggCount:
		// Table 2: N̂ = Σw; Var(N̂) = Σ w(w−1) (Poisson-design HT
		// estimator; reduces to N²c(1−c)/n under uniform rates for
		// small c).
		e.Point = a.sumW
		e.StdErr = math.Sqrt(math.Max(a.sumWW1, 0))
	case AggSum:
		// Table 2: Ŝ = Σw·x; Var(Ŝ) = Σ w(w−1)x² plus the
		// within-replicate variance term N̂·S²ₙ·(deff) captured by the
		// HT estimator under Poisson sampling.
		e.Point = a.sumWX
		e.StdErr = math.Sqrt(math.Max(a.sumWW1X, 0))
	case AggAvg:
		// Table 2: X̄ = Σwx/Σw; Var(X̄) = S²ₙ/n with n the effective
		// sample size under unequal weights.
		e.Point = a.sumWX / a.sumW
		if eff := a.EffRows(); eff > 0 && !a.allOne {
			e.StdErr = math.Sqrt(a.weightedVariance() / eff)
		} else if a.allOne {
			e.StdErr = 0 // rate-1 rows: exact
		}
	case AggQuantile:
		e.Point = a.weightedQuantile(a.p)
		if !a.allOne {
			e.StdErr = a.quantileStdErr()
		}
	}
	if a.allOne {
		// All rows were sampled at rate 1: the sample contains every
		// matching row of the base table and the answer is exact.
		e.StdErr = 0
	}
	e.Bound = z * e.StdErr
	return e
}

// weightedQuantile computes the weighted interpolated p-quantile,
// generalising Table 2's x_⌊h⌋ + (h−⌊h⌋)(x_⌈h⌉−x_⌊h⌋).
func (a *Acc) weightedQuantile(p float64) float64 {
	if len(a.vals) == 0 {
		return 0
	}
	// Total order (x, then w): ties between equal values with different
	// weights resolve identically however the buffer was assembled, so
	// merged partials quantile the same as a sequential scan.
	sort.Slice(a.vals, func(i, j int) bool {
		if a.vals[i].x != a.vals[j].x {
			return a.vals[i].x < a.vals[j].x
		}
		return a.vals[i].w < a.vals[j].w
	})
	if p <= 0 {
		return a.vals[0].x
	}
	if p >= 1 {
		return a.vals[len(a.vals)-1].x
	}
	target := p * a.sumW
	cum := 0.0
	for i, v := range a.vals {
		next := cum + v.w
		if next >= target {
			// Past the midpoint of this value's weight mass, interpolate
			// linearly toward the next order statistic; this generalises
			// Table 2's x_⌊h⌋ + (h−⌊h⌋)(x_⌈h⌉−x_⌊h⌋) to weighted rows.
			if i+1 < len(a.vals) && v.w > 0 {
				if frac := (target - cum) / v.w; frac > 0.5 {
					return v.x + (a.vals[i+1].x-v.x)*(frac-0.5)
				}
			}
			return v.x
		}
		cum = next
	}
	return a.vals[len(a.vals)-1].x
}

// quantileStdErr estimates Table 2's quantile stderr
// √(p(1−p)/n)/f(x_p) using a finite-difference density estimate:
// f(x_p) ≈ 2δ / (x_{p+δ} − x_{p−δ}).
func (a *Acc) quantileStdErr() float64 {
	n := a.EffRows()
	if n < 4 {
		return math.Abs(a.weightedQuantile(0.75)-a.weightedQuantile(0.25)) / 2
	}
	delta := math.Min(0.1, math.Max(0.01, 1/math.Sqrt(n)))
	lo := clampQ(a.p - delta)
	hi := clampQ(a.p + delta)
	spread := a.weightedQuantile(hi) - a.weightedQuantile(lo)
	if spread <= 0 {
		return 0 // locally constant data: quantile is pinned
	}
	f := (hi - lo) / spread
	return math.Sqrt(a.p*(1-a.p)/n) / f
}

func clampQ(p float64) float64 {
	return math.Max(0.001, math.Min(0.999, p))
}

// UniformCountVariance is the textbook Table 2 COUNT variance
// N²·c(1−c)/n for a uniform sample: N total rows, n sample rows read,
// c the matching fraction. Exposed for ELP planning and tests.
func UniformCountVariance(totalRows, sampleRows float64, c float64) float64 {
	if sampleRows <= 0 {
		return math.Inf(1)
	}
	return totalRows * totalRows / sampleRows * c * (1 - c)
}

// UniformAvgVariance is Table 2's AVG variance S²ₙ/n.
func UniformAvgVariance(sampleVariance float64, n float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return sampleVariance / n
}

// RequiredRowsForStdErr extrapolates how many matching rows are needed to
// shrink the standard error to target, given that stderr ∝ 1/√n (which
// holds for every operator in Table 2). currentN is the matching rows
// behind currentStdErr.
func RequiredRowsForStdErr(currentStdErr float64, currentN float64, target float64) float64 {
	if target <= 0 || currentN <= 0 {
		return math.Inf(1)
	}
	if currentStdErr == 0 {
		return currentN
	}
	r := currentStdErr / target
	return currentN * r * r
}
