// Package catalog is BlinkDB-Go's metastore (§5): it registers base tables
// and the sample families built over them, and answers the family-lookup
// queries the runtime sample selection needs (§4.1) — "which stratified
// families exist whose column set covers this query's columns?".
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"blinkdb/internal/sample"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// Entry groups one base table with its sample families.
type Entry struct {
	Table    *storage.Table
	Families []*sample.Family
}

// Uniform returns the table's uniform family, or nil.
func (e *Entry) Uniform() *sample.Family {
	for _, f := range e.Families {
		if f.IsUniform() {
			return f
		}
	}
	return nil
}

// Stratified returns the non-uniform families.
func (e *Entry) Stratified() []*sample.Family {
	var out []*sample.Family
	for _, f := range e.Families {
		if !f.IsUniform() {
			out = append(out, f)
		}
	}
	return out
}

// CoveringFamilies returns stratified families whose column set is a
// superset of phi, sorted by ascending column count then key — §4.1.1
// picks the first (fewest columns).
func (e *Entry) CoveringFamilies(phi types.ColumnSet) []*sample.Family {
	var out []*sample.Family
	for _, f := range e.Families {
		if f.IsUniform() {
			continue
		}
		if phi.SubsetOf(f.Phi) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phi.Len() != out[j].Phi.Len() {
			return out[i].Phi.Len() < out[j].Phi.Len()
		}
		return out[i].Phi.Key() < out[j].Phi.Key()
	})
	return out
}

// SampleBytes returns the total physical bytes of all families.
func (e *Entry) SampleBytes() int64 {
	var n int64
	for _, f := range e.Families {
		n += f.StorageBytes()
	}
	return n
}

// Catalog is a concurrency-safe table registry.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{entries: make(map[string]*Entry)}
}

// Register adds a base table. Re-registering a name replaces the entry.
func (c *Catalog) Register(t *storage.Table) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &Entry{Table: t}
	c.entries[strings.ToLower(t.Name)] = e
	return e
}

// AddFamily attaches a sample family to a registered table. Only one
// family per column set is kept; re-adding replaces it (sample refresh).
func (c *Catalog) AddFamily(table string, f *sample.Family) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("catalog: unknown table %q", table)
	}
	for i, old := range e.Families {
		if old.Phi.Equal(f.Phi) {
			e.Families[i] = f
			return nil
		}
	}
	e.Families = append(e.Families, f)
	return nil
}

// DropFamily removes the family on the given column set.
func (c *Catalog) DropFamily(table string, phi types.ColumnSet) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("catalog: unknown table %q", table)
	}
	for i, f := range e.Families {
		if f.Phi.Equal(phi) {
			e.Families = append(e.Families[:i], e.Families[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("catalog: table %q has no family on %s", table, phi)
}

// Lookup returns the entry for a table.
func (c *Catalog) Lookup(table string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", table)
	}
	return e, nil
}

// Tables returns the registered table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
