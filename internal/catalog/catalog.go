// Package catalog is BlinkDB-Go's metastore (§5): it registers base tables
// and the sample families built over them, and answers the family-lookup
// queries the runtime sample selection needs (§4.1) — "which stratified
// families exist whose column set covers this query's columns?".
//
// Concurrency contract: Lookup returns an immutable point-in-time snapshot
// of a table's entry. Mutators (Register, AddFamily, DropFamily) never
// touch a published snapshot — they install fresh family slices under the
// catalog lock (copy-on-write) — so readers may hold a snapshot across
// arbitrary work, including full query execution, without further locking.
//
// Every mutation also bumps the table's epoch, a monotonically increasing
// counter that survives re-registration. The epoch is the invalidation
// token for anything derived from a snapshot (the ELP runtime's prepared
// queries cache probe results and Error-Latency Profiles keyed by query
// template): if a cached artifact's epoch no longer matches Epoch(table),
// a sample was rebuilt, refreshed, dropped or the table was reloaded since
// the artifact was computed, and it must not be served.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"blinkdb/internal/sample"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// Entry is a point-in-time snapshot of one base table with its sample
// families, as returned by Lookup. The Families slice is never mutated
// after publication; a later AddFamily/DropFamily installs a new slice in
// the catalog and bumps the table epoch instead.
type Entry struct {
	Table    *storage.Table
	Families []*sample.Family
	// Epoch is the table's sample-epoch at snapshot time. It increases on
	// every Register, AddFamily and DropFamily for the table; comparing it
	// against Catalog.Epoch detects any sample or data change since the
	// snapshot was taken.
	Epoch uint64
}

// Uniform returns the table's uniform family, or nil.
func (e *Entry) Uniform() *sample.Family {
	for _, f := range e.Families {
		if f.IsUniform() {
			return f
		}
	}
	return nil
}

// Stratified returns the non-uniform families.
func (e *Entry) Stratified() []*sample.Family {
	var out []*sample.Family
	for _, f := range e.Families {
		if !f.IsUniform() {
			out = append(out, f)
		}
	}
	return out
}

// CoveringFamilies returns stratified families whose column set is a
// superset of phi, sorted by ascending column count then key — §4.1.1
// picks the first (fewest columns).
func (e *Entry) CoveringFamilies(phi types.ColumnSet) []*sample.Family {
	var out []*sample.Family
	for _, f := range e.Families {
		if f.IsUniform() {
			continue
		}
		if phi.SubsetOf(f.Phi) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phi.Len() != out[j].Phi.Len() {
			return out[i].Phi.Len() < out[j].Phi.Len()
		}
		return out[i].Phi.Key() < out[j].Phi.Key()
	})
	return out
}

// SampleBytes returns the total physical bytes of all families.
func (e *Entry) SampleBytes() int64 {
	var n int64
	for _, f := range e.Families {
		n += f.StorageBytes()
	}
	return n
}

// Catalog is a concurrency-safe table registry.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	// epochs survives Register replacing an entry, so a cached artifact
	// computed against the old table can never validate against the new
	// one (a fresh entry restarting at 0 would alias old epochs).
	epochs map[string]uint64
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{entries: make(map[string]*Entry), epochs: make(map[string]uint64)}
}

// Register adds a base table. Re-registering a name replaces the entry
// (and bumps the table epoch, invalidating snapshots of the old data).
func (c *Catalog) Register(t *storage.Table) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name)
	c.epochs[key]++
	e := &Entry{Table: t, Epoch: c.epochs[key]}
	c.entries[key] = e
	return &Entry{Table: e.Table, Families: e.Families, Epoch: e.Epoch}
}

// AddFamily attaches a sample family to a registered table. Only one
// family per column set is kept; re-adding replaces it (sample refresh).
// The family list is replaced copy-on-write so existing Lookup snapshots
// stay valid, and the table epoch is bumped.
func (c *Catalog) AddFamily(table string, f *sample.Family) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(table)
	e, ok := c.entries[key]
	if !ok {
		return fmt.Errorf("catalog: unknown table %q", table)
	}
	fams := make([]*sample.Family, len(e.Families), len(e.Families)+1)
	copy(fams, e.Families)
	replaced := false
	for i, old := range fams {
		if old.Phi.Equal(f.Phi) {
			fams[i] = f
			replaced = true
			break
		}
	}
	if !replaced {
		fams = append(fams, f)
	}
	c.epochs[key]++
	c.entries[key] = &Entry{Table: e.Table, Families: fams, Epoch: c.epochs[key]}
	return nil
}

// DropFamily removes the family on the given column set (copy-on-write,
// epoch bumped).
func (c *Catalog) DropFamily(table string, phi types.ColumnSet) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(table)
	e, ok := c.entries[key]
	if !ok {
		return fmt.Errorf("catalog: unknown table %q", table)
	}
	for i, f := range e.Families {
		if f.Phi.Equal(phi) {
			fams := make([]*sample.Family, 0, len(e.Families)-1)
			fams = append(fams, e.Families[:i]...)
			fams = append(fams, e.Families[i+1:]...)
			c.epochs[key]++
			c.entries[key] = &Entry{Table: e.Table, Families: fams, Epoch: c.epochs[key]}
			return nil
		}
	}
	return fmt.Errorf("catalog: table %q has no family on %s", table, phi)
}

// Lookup returns an immutable snapshot of the entry for a table,
// including its current epoch.
func (c *Catalog) Lookup(table string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", table)
	}
	return &Entry{Table: e.Table, Families: e.Families, Epoch: e.Epoch}, nil
}

// Epoch returns the table's current sample-epoch (0 for unknown tables).
// It increases on every Register, AddFamily and DropFamily for the table.
func (c *Catalog) Epoch(table string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epochs[strings.ToLower(table)]
}

// RestoreEpoch sets the table's epoch to epoch, provided that would not
// move it backwards: epochs only ever increase, so restoring a smaller
// value could re-validate artifacts computed against state that has
// since changed in THIS process. It reports whether the epoch was
// applied. This is a boot-time API: the engine calls it after reloading
// a persisted snapshot whose content fingerprint matches the live
// catalog, so that warmup sets whose entries recorded pre-restart
// epochs validate against the restored state.
func (c *Catalog) RestoreEpoch(table string, epoch uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(table)
	if epoch < c.epochs[key] {
		return false
	}
	c.epochs[key] = epoch
	if e, ok := c.entries[key]; ok {
		c.entries[key] = &Entry{Table: e.Table, Families: e.Families, Epoch: epoch}
	}
	return true
}

// Tables returns the registered table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
