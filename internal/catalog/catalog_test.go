package catalog

import (
	"testing"

	"blinkdb/internal/sample"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

func buildFixture(t *testing.T) (*Catalog, *storage.Table) {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "os", Kind: types.KindString},
		types.Column{Name: "url", Kind: types.KindString},
		types.Column{Name: "t", Kind: types.KindFloat},
	)
	tab := storage.NewTable("Sessions", schema)
	b := storage.NewBuilder(tab, 64, 2, storage.OnDisk)
	for i := 0; i < 500; i++ {
		b.AppendRow(types.Row{
			types.Str("c" + string(rune('a'+i%7))),
			types.Str("o" + string(rune('a'+i%3))),
			types.Str("u" + string(rune('a'+i%11))),
			types.Float(float64(i)),
		})
	}
	b.Finish()
	c := New()
	c.Register(tab)
	mustFam := func(phi types.ColumnSet) *sample.Family {
		var f *sample.Family
		var err error
		if phi.Empty() {
			f, err = sample.BuildUniform(tab, []int64{50, 200}, sample.BuildConfig{Seed: 1})
		} else {
			f, err = sample.Build(tab, phi, []int64{5, 50}, sample.BuildConfig{Seed: 1})
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddFamily("sessions", f); err != nil {
			t.Fatal(err)
		}
		return f
	}
	mustFam(types.NewColumnSet("city"))
	mustFam(types.NewColumnSet("os", "url"))
	mustFam(types.NewColumnSet())
	return c, tab
}

func TestLookupCaseInsensitive(t *testing.T) {
	c, tab := buildFixture(t)
	e, err := c.Lookup("SESSIONS")
	if err != nil {
		t.Fatal(err)
	}
	if e.Table != tab {
		t.Error("wrong table")
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("unknown table should error")
	}
	if got := c.Tables(); len(got) != 1 || got[0] != "sessions" {
		t.Errorf("Tables = %v", got)
	}
}

func TestUniformAndStratifiedAccessors(t *testing.T) {
	c, _ := buildFixture(t)
	e, _ := c.Lookup("sessions")
	if e.Uniform() == nil {
		t.Error("uniform family missing")
	}
	if got := len(e.Stratified()); got != 2 {
		t.Errorf("stratified = %d", got)
	}
	if e.SampleBytes() <= 0 {
		t.Error("sample bytes should be positive")
	}
}

func TestCoveringFamilies(t *testing.T) {
	c, _ := buildFixture(t)
	e, _ := c.Lookup("sessions")
	// φ = {city}: covered by [city] only.
	fams := e.CoveringFamilies(types.NewColumnSet("city"))
	if len(fams) != 1 || fams[0].Phi.Key() != "city" {
		t.Errorf("covering(city) = %v", fams)
	}
	// φ = {os}: covered by [os,url].
	fams = e.CoveringFamilies(types.NewColumnSet("os"))
	if len(fams) != 1 || fams[0].Phi.Key() != "os,url" {
		t.Errorf("covering(os) = %v", fams)
	}
	// φ = {city, os}: no covering family.
	if fams = e.CoveringFamilies(types.NewColumnSet("city", "os")); len(fams) != 0 {
		t.Errorf("covering(city,os) = %v", fams)
	}
	// Empty φ is covered by every stratified family, smallest first.
	fams = e.CoveringFamilies(types.NewColumnSet())
	if len(fams) != 2 || fams[0].Phi.Key() != "city" {
		t.Errorf("covering(∅) = %v", fams)
	}
}

func TestAddFamilyReplaces(t *testing.T) {
	c, tab := buildFixture(t)
	snap, _ := c.Lookup("sessions")
	before := len(snap.Families)
	f2, err := sample.Build(tab, types.NewColumnSet("city"), []int64{10, 100}, sample.BuildConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddFamily("sessions", f2); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Lookup("sessions")
	if len(e.Families) != before {
		t.Error("replacement should not grow the family list")
	}
	found := false
	for _, f := range e.Families {
		if f == f2 {
			found = true
		}
	}
	if !found {
		t.Error("new family not installed")
	}
	// The pre-mutation snapshot is immutable: it must still hold the old
	// family, not the replacement.
	for _, f := range snap.Families {
		if f == f2 {
			t.Error("AddFamily mutated a published snapshot")
		}
	}
	if err := c.AddFamily("nope", f2); err == nil {
		t.Error("unknown table should error")
	}
}

func TestDropFamily(t *testing.T) {
	c, _ := buildFixture(t)
	snap, _ := c.Lookup("sessions")
	before := len(snap.Families)
	if err := c.DropFamily("sessions", types.NewColumnSet("city")); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Lookup("sessions")
	if len(e.Families) != before-1 {
		t.Error("family not dropped")
	}
	if len(snap.Families) != before {
		t.Error("DropFamily mutated a published snapshot")
	}
	if err := c.DropFamily("sessions", types.NewColumnSet("city")); err == nil {
		t.Error("double drop should error")
	}
	if err := c.DropFamily("nope", types.NewColumnSet("city")); err == nil {
		t.Error("unknown table should error")
	}
}

// TestEpochBumps pins the invalidation token: every sample or data
// mutation must advance the table epoch, and re-registering a table must
// not reset it (a cached plan from the old data would otherwise validate
// against the new table).
func TestEpochBumps(t *testing.T) {
	c, tab := buildFixture(t) // Register + 3 AddFamily = 4 bumps
	if got := c.Epoch("sessions"); got != 4 {
		t.Fatalf("epoch after fixture = %d, want 4", got)
	}
	if got := c.Epoch("nope"); got != 0 {
		t.Fatalf("epoch of unknown table = %d, want 0", got)
	}
	e, _ := c.Lookup("SESSIONS")
	if e.Epoch != 4 {
		t.Fatalf("snapshot epoch = %d, want 4", e.Epoch)
	}
	f2, err := sample.Build(tab, types.NewColumnSet("city"), []int64{10, 100}, sample.BuildConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddFamily("sessions", f2); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch("sessions"); got != 5 {
		t.Fatalf("epoch after refresh = %d, want 5", got)
	}
	if err := c.DropFamily("sessions", types.NewColumnSet("city")); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch("sessions"); got != 6 {
		t.Fatalf("epoch after drop = %d, want 6", got)
	}
	// Re-registering continues the sequence instead of restarting at 1.
	c.Register(tab)
	if got := c.Epoch("sessions"); got != 7 {
		t.Fatalf("epoch after re-register = %d, want 7", got)
	}
	if e.Epoch != 4 {
		t.Error("mutations changed a published snapshot's epoch")
	}
}
