// Package zipf implements a deterministic Zipf-distributed value generator
// and the analytic storage-overhead calculation used by the paper's
// Appendix A (Table 5): the size of a stratified sample S(φ,K) relative to
// the original table when the value frequencies follow a Zipf law.
package zipf

import (
	"math"
	"math/rand"
)

// Generator draws ranks from a Zipf distribution with exponent S over
// ranks 1..N: P(rank=r) ∝ 1/r^S. It is a thin deterministic wrapper over
// math/rand's rejection-inversion sampler.
type Generator struct {
	z *rand.Zipf
	n uint64
}

// NewGenerator returns a Zipf generator over ranks [1, n] with exponent s.
// s must be > 1 for math/rand's sampler; callers needing s == 1 should use
// NewGeneratorCDF which supports any s > 0 via inverse-CDF sampling.
func NewGenerator(rng *rand.Rand, s float64, n uint64) *Generator {
	if s <= 1 {
		panic("zipf: exponent must be > 1 for rejection sampler; use NewGeneratorCDF")
	}
	return &Generator{z: rand.NewZipf(rng, s, 1, n-1), n: n}
}

// Next returns a rank in [1, n]; rank 1 is the most frequent.
func (g *Generator) Next() uint64 { return g.z.Uint64() + 1 }

// CDFGenerator samples Zipf ranks by inverse-CDF lookup over a
// precomputed table. It supports any exponent s > 0 (including s ≤ 1,
// which math/rand cannot) at the cost of O(n) setup memory, so it is
// intended for moderate n (≤ ~10⁷).
type CDFGenerator struct {
	cdf []float64
	rng *rand.Rand
}

// NewGeneratorCDF builds an inverse-CDF Zipf sampler over ranks [1, n].
func NewGeneratorCDF(rng *rand.Rand, s float64, n int) *CDFGenerator {
	cdf := make([]float64, n)
	sum := 0.0
	for r := 1; r <= n; r++ {
		sum += 1 / math.Pow(float64(r), s)
		cdf[r-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &CDFGenerator{cdf: cdf, rng: rng}
}

// Next returns a rank in [1, n].
func (g *CDFGenerator) Next() int {
	u := g.rng.Float64()
	// Binary search for the first cdf entry ≥ u.
	lo, hi := 0, len(g.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Frequencies returns the expected frequency of each rank 1..n for a table
// with total rows, under Zipf exponent s. Frequencies are real-valued
// expectations, f(r) = total · (1/r^s)/H_{n,s}.
func Frequencies(s float64, n int, total float64) []float64 {
	h := 0.0
	for r := 1; r <= n; r++ {
		h += 1 / math.Pow(float64(r), s)
	}
	out := make([]float64, n)
	for r := 1; r <= n; r++ {
		out[r-1] = total / math.Pow(float64(r), s) / h
	}
	return out
}

// StratifiedOverhead computes the fraction of the original table that a
// stratified sample S(φ,K) occupies, assuming the value frequencies of φ
// follow the paper's Appendix-A parameterisation: F(x) = M / rank(x)^s,
// i.e. the most frequent value occurs M times and there are as many
// distinct values as needed until the frequency drops below 1.
//
// The sample keeps min(F(x), K) rows of each value, so
//
//	overhead = Σ_r min(M/r^s, K) / Σ_r M/r^s.
//
// Both sums are evaluated analytically: the rank at which M/r^s crosses K
// is r* = (M/K)^{1/s}; ranks below r* contribute K each, ranks above
// contribute M/r^s. Tail sums use the integral approximation
// Σ_{r>a} r^{-s} ≈ ∫_a^∞ x^{-s} dx = a^{1-s}/(s-1) (s > 1), matching the
// paper's Table 5 to the reported precision.
func StratifiedOverhead(s float64, m float64, k float64) float64 {
	if s <= 1 {
		// Harmonic-like tail diverges; fall back to explicit summation with
		// a cutoff where frequency < 1 (value no longer appears).
		return stratifiedOverheadSum(s, m, k)
	}
	if k >= m {
		return 1 // no value exceeds the cap; the sample is the whole table
	}
	rStar := math.Pow(m/k, 1/s) // frequency ≥ K for ranks ≤ r*
	rMax := math.Pow(m, 1/s)    // frequency ≥ 1 for ranks ≤ rMax
	if rStar > rMax {
		rStar = rMax
	}
	// Σ_{r=1..rMax} M/r^s  (total rows)
	total := m * zetaPartial(s, rMax)
	// Sample rows: K · r*  +  Σ_{r*<r≤rMax} M/r^s
	sample := k*rStar + m*(zetaPartial(s, rMax)-zetaPartial(s, rStar))
	if total <= 0 {
		return 0
	}
	return sample / total
}

// stratifiedOverheadSum is the explicit-summation fallback used for s ≤ 1.
// It caps the number of summed ranks for tractability; the paper's Table 5
// only reports s ≥ 1.0 where rank counts stay manageable relative to the
// chosen cutoff.
func stratifiedOverheadSum(s, m, k float64) float64 {
	rMax := math.Pow(m, 1/s)
	if rMax > 5e7 {
		rMax = 5e7
	}
	total, sample := 0.0, 0.0
	for r := 1.0; r <= rMax; r++ {
		f := m / math.Pow(r, s)
		if f < 1 {
			break
		}
		total += f
		sample += math.Min(f, k)
	}
	if total == 0 {
		return 0
	}
	return sample / total
}

// zetaPartial approximates Σ_{r=1..a} r^{-s} for s > 1 using exact
// summation of the head plus an integral tail correction, accurate to
// well under 0.1% for the ranges in Table 5.
func zetaPartial(s, a float64) float64 {
	if a < 1 {
		return 0
	}
	const head = 10000
	n := math.Min(a, head)
	sum := 0.0
	for r := 1.0; r <= n; r++ {
		sum += math.Pow(r, -s)
	}
	if a > head {
		// ∫_{head}^{a} x^{-s} dx with midpoint correction.
		sum += (math.Pow(head, 1-s) - math.Pow(a, 1-s)) / (s - 1)
	}
	return sum
}
