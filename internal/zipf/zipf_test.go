package zipf

import (
	"math"
	"math/rand"
	"testing"
)

func TestGeneratorRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGenerator(rng, 1.5, 1000)
	for i := 0; i < 10000; i++ {
		r := g.Next()
		if r < 1 || r > 1000 {
			t.Fatalf("rank %d out of [1,1000]", r)
		}
	}
}

func TestGeneratorPanicsOnSmallExponent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for s <= 1")
		}
	}()
	NewGenerator(rand.New(rand.NewSource(1)), 1.0, 10)
}

func TestGeneratorSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGenerator(rng, 1.5, 1000)
	counts := make(map[uint64]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	// Rank 1 should dominate: expected share is 1/ζ(1.5 partial) ≈ 38%.
	share1 := float64(counts[1]) / n
	if share1 < 0.25 || share1 > 0.55 {
		t.Errorf("rank-1 share = %.3f, want ≈ 0.38", share1)
	}
	if counts[1] <= counts[2] || counts[2] <= counts[10] {
		t.Error("frequencies should decrease with rank")
	}
}

func TestCDFGeneratorMatchesTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGeneratorCDF(rng, 1.0, 100) // s=1 unsupported by math/rand
	counts := make([]int, 101)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	freqs := Frequencies(1.0, 100, n)
	for _, r := range []int{1, 2, 5, 10, 50} {
		got := float64(counts[r])
		want := freqs[r-1]
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("rank %d: got %d draws, want ≈ %.0f", r, counts[r], want)
		}
	}
}

func TestFrequenciesSumToTotal(t *testing.T) {
	f := Frequencies(1.3, 500, 1e6)
	sum := 0.0
	for _, v := range f {
		sum += v
	}
	if math.Abs(sum-1e6) > 1 {
		t.Errorf("frequencies sum to %.2f, want 1e6", sum)
	}
	for i := 1; i < len(f); i++ {
		if f[i] > f[i-1] {
			t.Fatalf("frequencies must be non-increasing at rank %d", i+1)
		}
	}
}

// TestTable5 reproduces the paper's Table 5: storage fraction of S(φ,K)
// for a Zipf distribution with max frequency M = 10⁹ across exponents and
// cap values. Tolerances are loose-but-meaningful (±20% relative or
// ±0.005 absolute): the paper reports 2-3 significant digits and our
// analytic tail approximation differs slightly from their numeric method.
func TestTable5(t *testing.T) {
	m := 1e9
	want := map[float64][3]float64{ // s -> overhead at K=1e4, 1e5, 1e6
		1.1: {0.25, 0.35, 0.48},
		1.2: {0.13, 0.21, 0.32},
		1.3: {0.07, 0.13, 0.22},
		1.4: {0.04, 0.08, 0.15},
		1.5: {0.024, 0.052, 0.114},
		1.6: {0.015, 0.036, 0.087},
		1.7: {0.010, 0.026, 0.069},
		1.8: {0.007, 0.020, 0.055},
		1.9: {0.005, 0.015, 0.045},
		2.0: {0.0038, 0.012, 0.038},
	}
	ks := []float64{1e4, 1e5, 1e6}
	for s, row := range want {
		for i, k := range ks {
			got := StratifiedOverhead(s, m, k)
			paper := row[i]
			if math.Abs(got-paper) > 0.2*paper+0.005 {
				t.Errorf("s=%.1f K=%.0e: got %.4f, paper %.4f", s, k, got, paper)
			}
		}
	}
}

func TestTable5S1(t *testing.T) {
	// s=1.0 row: paper reports 0.49, 0.58, 0.69 (fallback summation path).
	got := StratifiedOverhead(1.0, 1e9, 1e5)
	if math.Abs(got-0.58) > 0.12 {
		t.Errorf("s=1.0 K=1e5: got %.3f, paper 0.58", got)
	}
}

func TestStratifiedOverheadMonotone(t *testing.T) {
	// Overhead grows with K and shrinks with s.
	m := 1e9
	if !(StratifiedOverhead(1.5, m, 1e4) < StratifiedOverhead(1.5, m, 1e5)) {
		t.Error("overhead should grow with K")
	}
	if !(StratifiedOverhead(1.8, m, 1e5) < StratifiedOverhead(1.2, m, 1e5)) {
		t.Error("overhead should shrink with s")
	}
	// K larger than M keeps everything.
	if got := StratifiedOverhead(1.5, 1e6, 1e7); math.Abs(got-1) > 1e-9 {
		t.Errorf("K > M should give overhead 1, got %g", got)
	}
}

func BenchmarkCDFGenerator(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGeneratorCDF(rng, 1.2, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
