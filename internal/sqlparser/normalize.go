package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"blinkdb/internal/stats"
	"blinkdb/internal/types"
)

// Normalize canonicalizes a parsed query into its template key and
// parameter vector — the §3.2.1 notion of a query template, made
// operational for plan caching: BlinkDB workloads repeat the same
// templates with different constants, and everything the runtime computes
// from probes (family choice, Error-Latency Profile) is a property of the
// template, not of the constants.
//
// The key captures the query's shape: table, join clauses, aggregate
// operators with their argument columns and quantile levels, the
// predicate tree with every comparison literal replaced by a '?'
// placeholder, the GROUP BY list, and the *kinds* of bounds present
// (relative vs absolute error, time, error reporting, LIMIT). Aggregate
// aliases are excluded — they rename output columns without affecting
// execution. The predicate's syntactic structure is preserved verbatim
// (no conjunct reordering): execution order determines floating-point
// accumulation order, so two keys must collide only when replaying one
// against the other's cached state is bit-reproducible.
//
// The parameter vector lifts, in deterministic traversal order, every
// value the key elides: comparison literals (predicate order), then the
// error bound and its confidence, the time bound, the report confidence
// and the LIMIT count. Two queries with equal keys AND equal parameter
// vectors are the same query up to aliases and answer identically.
func Normalize(q *Query) (key string, params []types.Value) {
	var b strings.Builder
	b.WriteString("select ")
	for i, a := range q.Aggs {
		if i > 0 {
			b.WriteByte(',')
		}
		writeAggTemplate(&b, a)
	}
	if q.ReportError {
		b.WriteString(",relerr@?")
		params = append(params, types.Float(q.ReportConfidence))
	}
	b.WriteString("|from ")
	b.WriteString(strings.ToLower(q.Table))
	for _, j := range q.Joins {
		fmt.Fprintf(&b, "|join %s on %s=%s",
			strings.ToLower(j.Table), strings.ToLower(j.LeftCol), strings.ToLower(j.RightCol))
	}
	if q.Where != nil {
		b.WriteString("|where ")
		params = writeExprTemplate(&b, q.Where, params)
	}
	if len(q.GroupBy) > 0 {
		b.WriteString("|group ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strings.ToLower(c))
		}
	}
	if q.Err != nil {
		if q.Err.Relative {
			b.WriteString("|err rel ?@?")
		} else {
			b.WriteString("|err abs ?@?")
		}
		params = append(params, types.Float(q.Err.Bound), types.Float(q.Err.Confidence))
	}
	if q.Time != nil {
		b.WriteString("|time ?")
		params = append(params, types.Float(q.Time.Seconds))
	}
	if q.Limit > 0 {
		b.WriteString("|limit ?")
		params = append(params, types.Int(int64(q.Limit)))
	}
	return b.String(), params
}

// writeAggTemplate renders one aggregate without its alias. The quantile
// level is structural (it changes the computed statistic, not a constant
// the executor binds), so it stays in the key.
func writeAggTemplate(b *strings.Builder, a AggSpec) {
	switch {
	case a.Kind == stats.AggCount && a.Col == "":
		b.WriteString("count(*)")
	case a.Kind == stats.AggQuantile:
		fmt.Fprintf(b, "quantile(%s,%g)", strings.ToLower(a.Col), a.P)
	default:
		fmt.Fprintf(b, "%s(%s)", strings.ToLower(a.Kind.String()), strings.ToLower(a.Col))
	}
}

// writeExprTemplate renders the predicate shape with literals lifted into
// params, preserving the tree structure exactly.
func writeExprTemplate(b *strings.Builder, e Expr, params []types.Value) []types.Value {
	switch t := e.(type) {
	case *CmpExpr:
		fmt.Fprintf(b, "%s%s?", strings.ToLower(t.Col), t.Op)
		return append(params, t.Val)
	case *BinExpr:
		b.WriteByte('(')
		params = writeExprTemplate(b, t.L, params)
		if t.And {
			b.WriteString(" and ")
		} else {
			b.WriteString(" or ")
		}
		params = writeExprTemplate(b, t.R, params)
		b.WriteByte(')')
		return params
	case *NotExpr:
		b.WriteString("not(")
		params = writeExprTemplate(b, t.Kid, params)
		b.WriteByte(')')
		return params
	default:
		// Unknown node: render its SQL form so distinct shapes cannot
		// collide on a shared placeholder.
		b.WriteString(e.String())
		return params
	}
}

// ParamsKey renders a parameter vector as a canonical string: the result
// cache appends it to the template key so two queries share a cache slot
// exactly when they share template AND parameters. Each value encodes its
// kind and exact payload (types.Value.Key: floats by bit pattern, so
// Int(1), Float(1) and Float(1.0000000001) all key differently), with an
// unambiguous separator. The encoding is at least as strict as
// ParamsEqual: distinct vectors always key differently, and the float
// edge cases where the two disagree (+0 vs −0 key differently though ==;
// identical NaN bit patterns key equally though != under ==) err on the
// side of an extra cache miss, never a wrong hit.
func ParamsKey(params []types.Value) string {
	if len(params) == 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range params {
		// Explicit kind byte: Value.Key alone folds Bool(true) into
		// Int(1) (sound for group keys, where the two compare equal, but
		// ParamsEqual — and hence the result cache — keeps them apart).
		b.WriteByte(byte('0' + v.Kind))
		if v.Kind == types.KindString {
			// Length-prefix string payloads: the lexer admits ANY byte
			// inside a quoted literal, including the '\x1f' separator, so
			// raw concatenation would let one vector forge another
			// ([a\x1f…b, c] vs [a, b\x1f…c]). With the prefix, decoding a
			// key is unambiguous, hence the encoding injective.
			b.WriteString(strconv.Itoa(len(v.S)))
			b.WriteByte(':')
			b.WriteString(v.S)
		} else {
			// Numeric payloads (base-36 ints, 'b'-format floats) never
			// contain the separator.
			b.WriteString(v.Key())
		}
		b.WriteByte('\x1f')
	}
	return b.String()
}

// ParamsEqual reports whether two parameter vectors are identical —
// the condition under which a cached result computed for one query may
// answer the other (given equal template keys). Values compare by kind
// and payload; Int(1) and Float(1) are NOT equal (they can produce
// different group keys and zone-pruning decisions).
func ParamsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
