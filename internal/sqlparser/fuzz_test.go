package sqlparser

import (
	"math"
	"reflect"
	"testing"

	"blinkdb/internal/types"
)

// FuzzNormalize is the template-canonicalization fuzz harness. For every
// input that parses, it pins the three invariants the plan and result
// caches rest on:
//
//  1. Normalize never panics (any parsed query has a template).
//  2. Literal insensitivity: mutating every lifted literal (comparison
//     values, bounds, confidences, LIMIT) yields the SAME template key
//     with the same parameter arity — different constants, one template.
//  3. Round trip: re-binding the lifted parameter vector into the
//     mutated tree restores the original query exactly (DeepEqual), so
//     (key, params) is a lossless encoding of everything that affects
//     execution — the property that makes replaying a cached result for
//     an equal (key, params) pair sound.
//
// The seed corpus lives in testdata/fuzz/FuzzNormalize and runs as part
// of the ordinary test suite (non-fuzz mode); `go test -fuzz=FuzzNormalize
// ./internal/sqlparser` explores from those seeds.
func FuzzNormalize(f *testing.F) {
	for _, seed := range []string{
		`SELECT COUNT(*) FROM sessions`,
		`SELECT AVG(sessiontime) FROM sessions WHERE city = 'NY' ERROR WITHIN 10% AT CONFIDENCE 95%`,
		`SELECT SUM(x), QUANTILE(x, 0.9) FROM t WHERE (a > 1 OR b <= -2.5) AND NOT (c <> 'v') GROUP BY g WITHIN 5 SECONDS`,
		`SELECT COUNT(*), RELATIVE ERROR AT 99% CONFIDENCE FROM t WHERE ok = TRUE LIMIT 3`,
		`SELECT MEDIAN(y) AS m FROM t JOIN d ON k = id WHERE d.name = 'x' ERROR WITHIN 0.5 AT CONFIDENCE 90% WITHIN 2 SECONDS`,
		`SELECT AVG(v) FROM t WHERE a = 1 AND a = 1.0 AND a = '1'`,
		`SELECT COUNT(*) FROM t WHERE`,
		`not sql at all`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // Normalize's domain is parsed queries
		}
		key, params := Normalize(q) // invariant 1: must not panic

		q2, err := Parse(src) // independent tree to mutate
		if err != nil {
			t.Fatalf("parse is not deterministic: %q reparsed with error %v", src, err)
		}
		mutateLiterals(q2)
		key2, params2 := Normalize(q2)
		if key2 != key {
			t.Fatalf("mutated literals changed the template key\nsrc  %q\nwas  %q\nnow  %q", src, key, key2)
		}
		if len(params2) != len(params) {
			t.Fatalf("mutated literals changed the parameter arity: %d -> %d (src %q)",
				len(params), len(params2), src)
		}

		rest := rebind(t, q2, params)
		if rest != 0 {
			t.Fatalf("rebind left %d of %d params unconsumed (src %q)", rest, len(params), src)
		}
		key3, params3 := Normalize(q2)
		if key3 != key {
			t.Fatalf("rebound query changed the template key\nsrc %q\nwas %q\nnow %q", src, key, key3)
		}
		if !paramsBitsEqual(params3, params) {
			t.Fatalf("rebound parameter vector diverged\nsrc  %q\nwant %v\ngot  %v", src, params, params3)
		}
		// The rebound tree must BE the original query again — equal Query
		// values compile to equal plans, so (key, params) round-trips to
		// an equivalent plan. reflect.DeepEqual compares floats with ==,
		// which a NaN literal would break spuriously; no literal syntax
		// produces NaN, but guard anyway since fuzzing owns the input.
		if !paramsHaveNaN(params) && !reflect.DeepEqual(q, q2) {
			t.Fatalf("rebinding did not round-trip the query\nsrc  %q\nwant %#v\ngot  %#v", src, q, q2)
		}
	})
}

// mutateLiterals changes every value Normalize lifts into the parameter
// vector — and nothing else — walking the query in template order.
func mutateLiterals(q *Query) {
	if q.ReportError {
		q.ReportConfidence = q.ReportConfidence/2 + 0.17
	}
	if q.Where != nil {
		mutateExpr(q.Where)
	}
	if q.Err != nil {
		q.Err.Bound += 0.5
		q.Err.Confidence = q.Err.Confidence/3 + 0.01
	}
	if q.Time != nil {
		q.Time.Seconds += 1.25
	}
	if q.Limit > 0 {
		q.Limit += 3 // stays positive: presence of LIMIT is structural
	}
}

func mutateExpr(e Expr) {
	switch t := e.(type) {
	case *CmpExpr:
		t.Val = mutateValue(t.Val)
	case *BinExpr:
		mutateExpr(t.L)
		mutateExpr(t.R)
	case *NotExpr:
		mutateExpr(t.Kid)
	}
}

// mutateValue returns a different literal; it may even change the KIND —
// the comparison placeholder '?' elides both, so the key must not move.
func mutateValue(v types.Value) types.Value {
	switch v.Kind {
	case types.KindInt:
		return types.Int(v.I + 1)
	case types.KindFloat:
		return types.Float(v.F/2 + 1)
	case types.KindString:
		return types.Str(v.S + "~")
	case types.KindBool:
		return types.Bool(v.I == 0)
	default:
		return types.Str("was-null")
	}
}

// rebind writes the parameter vector back into the query, mirroring
// Normalize's traversal order exactly, and returns how many params were
// left over (0 on a clean round trip).
func rebind(t *testing.T, q *Query, params []types.Value) int {
	t.Helper()
	pop := func() types.Value {
		if len(params) == 0 {
			t.Fatal("rebind ran out of params")
		}
		v := params[0]
		params = params[1:]
		return v
	}
	if q.ReportError {
		q.ReportConfidence = pop().F
	}
	if q.Where != nil {
		rebindExpr(q.Where, &params)
	}
	if q.Err != nil {
		q.Err.Bound = pop().F
		q.Err.Confidence = pop().F
	}
	if q.Time != nil {
		q.Time.Seconds = pop().F
	}
	if q.Limit > 0 {
		q.Limit = int(pop().I)
	}
	return len(params)
}

func rebindExpr(e Expr, params *[]types.Value) {
	switch t := e.(type) {
	case *CmpExpr:
		t.Val = (*params)[0]
		*params = (*params)[1:]
	case *BinExpr:
		rebindExpr(t.L, params)
		rebindExpr(t.R, params)
	case *NotExpr:
		rebindExpr(t.Kid, params)
	}
}

// paramsBitsEqual compares vectors field-by-field with floats by bit
// pattern, so a NaN round trip (bits preserved) still counts as equal.
func paramsBitsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].I != b[i].I || a[i].S != b[i].S ||
			math.Float64bits(a[i].F) != math.Float64bits(b[i].F) {
			return false
		}
	}
	return true
}

func paramsHaveNaN(params []types.Value) bool {
	for _, v := range params {
		if v.Kind == types.KindFloat && math.IsNaN(v.F) {
			return true
		}
	}
	return false
}
