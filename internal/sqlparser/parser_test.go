package sqlparser

import (
	"strings"
	"testing"

	"blinkdb/internal/stats"
	"blinkdb/internal/types"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParsePaperQuery1(t *testing.T) {
	// First example query from §2.
	q := mustParse(t, `
		SELECT COUNT(*)
		FROM Sessions
		WHERE Genre = 'western'
		GROUP BY OS
		ERROR WITHIN 10% AT CONFIDENCE 95%`)
	if len(q.Aggs) != 1 || q.Aggs[0].Kind != stats.AggCount || q.Aggs[0].Col != "" {
		t.Errorf("aggs = %+v", q.Aggs)
	}
	if q.Table != "Sessions" {
		t.Errorf("table = %q", q.Table)
	}
	if q.Where == nil || q.Where.String() != "genre = 'western'" {
		t.Errorf("where = %v", q.Where)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "OS" {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if q.Err == nil || !q.Err.Relative || q.Err.Bound != 0.10 || q.Err.Confidence != 0.95 {
		t.Errorf("error bound = %+v", q.Err)
	}
	if q.Time != nil {
		t.Error("no time bound expected")
	}
}

func TestParsePaperQuery2(t *testing.T) {
	// Second example from §2: error-reporting projection + time bound.
	q := mustParse(t, `
		SELECT COUNT(*), RELATIVE ERROR AT 95% CONFIDENCE
		FROM Sessions
		WHERE Genre = 'western'
		GROUP BY OS
		WITHIN 5 SECONDS`)
	if !q.ReportError || q.ReportConfidence != 0.95 {
		t.Errorf("report error = %v at %g", q.ReportError, q.ReportConfidence)
	}
	if q.Time == nil || q.Time.Seconds != 5 {
		t.Errorf("time = %+v", q.Time)
	}
	if q.Err != nil {
		t.Error("no error bound expected")
	}
}

func TestParseFig1Query(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(*) FROM TABLE1 WHERE city = 'NY' WITHIN 1 SECONDS;`)
	if q.Time == nil || q.Time.Seconds != 1 {
		t.Errorf("time = %+v", q.Time)
	}
}

func TestParseAggregates(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(url), SUM(time), AVG(time), MEAN(time),
		MEDIAN(time), QUANTILE(time, 0.9), PERCENTILE(time, 99) FROM s`)
	wantKinds := []stats.AggKind{
		stats.AggCount, stats.AggSum, stats.AggAvg, stats.AggAvg,
		stats.AggQuantile, stats.AggQuantile, stats.AggQuantile,
	}
	if len(q.Aggs) != len(wantKinds) {
		t.Fatalf("aggs = %d", len(q.Aggs))
	}
	for i, k := range wantKinds {
		if q.Aggs[i].Kind != k {
			t.Errorf("agg %d kind = %v, want %v", i, q.Aggs[i].Kind, k)
		}
	}
	if q.Aggs[4].P != 0.5 {
		t.Errorf("median p = %g", q.Aggs[4].P)
	}
	if q.Aggs[5].P != 0.9 {
		t.Errorf("quantile p = %g", q.Aggs[5].P)
	}
	if q.Aggs[6].P != 0.99 {
		t.Errorf("percentile p = %g", q.Aggs[6].P)
	}
	if q.Aggs[0].Col != "url" {
		t.Errorf("count col = %q", q.Aggs[0].Col)
	}
}

func TestParseAlias(t *testing.T) {
	q := mustParse(t, `SELECT AVG(time) AS avg_time FROM s`)
	if q.Aggs[0].Alias != "avg_time" {
		t.Errorf("alias = %q", q.Aggs[0].Alias)
	}
}

func TestParseWherePrecedence(t *testing.T) {
	// AND binds tighter than OR.
	q := mustParse(t, `SELECT COUNT(*) FROM s WHERE a = 1 OR b = 2 AND c = 3`)
	want := "(a = 1 OR (b = 2 AND c = 3))"
	if got := q.Where.String(); got != want {
		t.Errorf("where = %q, want %q", got, want)
	}
	q2 := mustParse(t, `SELECT COUNT(*) FROM s WHERE (a = 1 OR b = 2) AND c = 3`)
	want2 := "((a = 1 OR b = 2) AND c = 3)"
	if got := q2.Where.String(); got != want2 {
		t.Errorf("where = %q, want %q", got, want2)
	}
}

func TestParseOperatorsAndLiterals(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(*) FROM s WHERE a >= 1.5 AND b <> 'x' AND c < -3
		AND d = TRUE AND e != FALSE AND f <= 10 AND g > 0`)
	s := q.Where.String()
	for _, frag := range []string{"a >= 1.5", "b <> 'x'", "c < -3", "d = true", "f <= 10", "g > 0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("where %q missing %q", s, frag)
		}
	}
}

func TestParseNot(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(*) FROM s WHERE NOT a = 1`)
	if got := q.Where.String(); got != "NOT (a = 1)" {
		t.Errorf("where = %q", got)
	}
}

func TestParseAbsoluteError(t *testing.T) {
	q := mustParse(t, `SELECT SUM(x) FROM s ERROR WITHIN 500 AT CONFIDENCE 99%`)
	if q.Err == nil || q.Err.Relative || q.Err.Bound != 500 || q.Err.Confidence != 0.99 {
		t.Errorf("err = %+v", q.Err)
	}
}

func TestParseErrorDefaults(t *testing.T) {
	q := mustParse(t, `SELECT SUM(x) FROM s ERROR WITHIN 5%`)
	if q.Err.Confidence != 0.95 {
		t.Errorf("default confidence = %g", q.Err.Confidence)
	}
	// Bare confidence number > 1 treated as percent.
	q2 := mustParse(t, `SELECT SUM(x) FROM s ERROR WITHIN 5% AT CONFIDENCE 99`)
	if q2.Err.Confidence != 0.99 {
		t.Errorf("bare confidence = %g", q2.Err.Confidence)
	}
}

func TestParseLimit(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(*) FROM s LIMIT 10`)
	if q.Limit != 10 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseBoundsEitherOrder(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(*) FROM s WITHIN 5 SECONDS ERROR WITHIN 10%`)
	if q.Time == nil || q.Err == nil {
		t.Error("both bounds should parse in any order")
	}
}

func TestQueryString(t *testing.T) {
	src := `SELECT COUNT(*), AVG(time) FROM s WHERE city = 'NY' GROUP BY os ERROR WITHIN 10% AT CONFIDENCE 95% LIMIT 5`
	q := mustParse(t, src)
	// Round-trip: rendering re-parses to an identical query.
	q2 := mustParse(t, q.String())
	if q2.String() != q.String() {
		t.Errorf("round trip: %q vs %q", q.String(), q2.String())
	}
}

func TestQueryColumns(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "os", Kind: types.KindString},
		types.Column{Name: "time", Kind: types.KindFloat},
	)
	q := mustParse(t, `SELECT COUNT(*) FROM s WHERE city = 'NY' GROUP BY os`)
	cs, err := q.Columns(schema)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Key() != "city,os" {
		t.Errorf("columns = %q", cs.Key())
	}
	// Unknown column in WHERE surfaces on Columns().
	q2 := mustParse(t, `SELECT COUNT(*) FROM s WHERE bogus = 1`)
	if _, err := q2.Columns(schema); err == nil {
		t.Error("unknown column should error")
	}
}

func TestResolveErrors(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "a", Kind: types.KindInt})
	for _, src := range []string{
		`SELECT COUNT(*) FROM s WHERE z = 1`,
		`SELECT COUNT(*) FROM s WHERE z = 1 AND a = 2`,
		`SELECT COUNT(*) FROM s WHERE a = 2 OR z = 1`,
		`SELECT COUNT(*) FROM s WHERE NOT z = 1`,
	} {
		q := mustParse(t, src)
		if _, err := q.Where.Resolve(schema); err == nil {
			t.Errorf("%q: resolve should fail", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM s`,
		`SELECT COUNT(* FROM s`,
		`SELECT BOGUS(x) FROM s`,
		`SELECT COUNT(*)`,
		`SELECT COUNT(*) FROM`,
		`SELECT COUNT(*) FROM s WHERE`,
		`SELECT COUNT(*) FROM s WHERE a`,
		`SELECT COUNT(*) FROM s WHERE a =`,
		`SELECT COUNT(*) FROM s WHERE a = 'unterminated`,
		`SELECT COUNT(*) FROM s GROUP`,
		`SELECT COUNT(*) FROM s GROUP BY`,
		`SELECT COUNT(*) FROM s ERROR`,
		`SELECT COUNT(*) FROM s ERROR WITHIN`,
		`SELECT COUNT(*) FROM s WITHIN 5`,
		`SELECT COUNT(*) FROM s WITHIN 5 SECONDS WITHIN 6 SECONDS`,
		`SELECT COUNT(*) FROM s ERROR WITHIN 5% ERROR WITHIN 6%`,
		`SELECT COUNT(*) FROM s trailing garbage`,
		`SELECT QUANTILE(x, 1.5) FROM s`,
		`SELECT QUANTILE(x) FROM s`,
		`SELECT COUNT(*) FROM s WHERE a = 1 AND`,
		`SELECT COUNT(*) FROM s WHERE (a = 1`,
		`SELECT COUNT(*) FROM s WHERE a @ 1`,
		`SELECT COUNT(*) FROM s WHERE 1.2.3 = a`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestLexerFeatures(t *testing.T) {
	// Comments, escaped quotes, double-quoted strings, semicolons.
	q := mustParse(t, `
		-- leading comment
		SELECT COUNT(*) FROM s
		WHERE a = 'it''s' AND b = "dq" -- trailing comment
		;`)
	s := q.Where.String()
	if !strings.Contains(s, "it's") {
		t.Errorf("escaped quote lost: %q", s)
	}
	if !strings.Contains(s, "dq") {
		t.Errorf("double-quoted string lost: %q", s)
	}
}

func TestResolvedPredicateEval(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "genre", Kind: types.KindString},
		types.Column{Name: "n", Kind: types.KindInt},
	)
	q := mustParse(t, `SELECT COUNT(*) FROM s WHERE genre = 'western' AND n >= 3`)
	pred, err := q.Where.Resolve(schema)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Eval(types.Row{types.Str("western"), types.Int(5)}) {
		t.Error("should match")
	}
	if pred.Eval(types.Row{types.Str("drama"), types.Int(5)}) {
		t.Error("should not match genre")
	}
	if pred.Eval(types.Row{types.Str("western"), types.Int(2)}) {
		t.Error("should not match n")
	}
}

func BenchmarkParse(b *testing.B) {
	src := `SELECT COUNT(*), AVG(time) FROM sessions WHERE city = 'NY' AND os = 'Win7' GROUP BY genre ERROR WITHIN 10% AT CONFIDENCE 95%`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
