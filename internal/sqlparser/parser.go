package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"blinkdb/internal/stats"
	"blinkdb/internal/types"
)

// Parse parses one BlinkDB query.
//
// Grammar (case-insensitive keywords):
//
//	query    := [EXPLAIN ANALYZE]
//	            SELECT aggs [, RELATIVE ERROR AT num% CONFIDENCE]
//	            FROM ident {JOIN ident ON ident = ident}
//	            [WHERE expr] [GROUP BY ident {, ident}]
//	            [ERROR WITHIN num[%] AT CONFIDENCE num[%]]
//	            [WITHIN num SECONDS] [LIMIT int] [;]
//	aggs     := agg {, agg}
//	agg      := COUNT ( * | ident ) | SUM|AVG|MEAN ( ident )
//	          | MEDIAN ( ident ) | QUANTILE|PERCENTILE ( ident , num )
//	expr     := orExpr
//	orExpr   := andExpr {OR andExpr}
//	andExpr  := unary {AND unary}
//	unary    := NOT unary | ( expr ) | cmp
//	cmp      := ident op literal
//	op       := = | <> | != | < | <= | > | >=
//	literal  := number | string | TRUE | FALSE
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parse error near %s: %s", p.cur(), fmt.Sprintf(format, args...))
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tokIdent && p.cur().text == kw {
		p.i++
		return true
	}
	return false
}

// expectKw requires the keyword.
func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

// acceptSym consumes the symbol if present.
func (p *parser) acceptSym(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	if p.cur().kind != tokIdent {
		return token{}, p.errf("expected identifier")
	}
	return p.next(), nil
}

func (p *parser) expectNumber() (float64, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected number")
	}
	t := p.next()
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errf("bad number %q", t.raw)
	}
	return v, nil
}

// percentage parses "num %" or "num" and returns the value as a fraction
// when a % sign is present (95% → 0.95) or verbatim when absent and ≤ 1.
// Bare numbers > 1 are treated as percentages for ergonomics (CONFIDENCE 95).
func (p *parser) percentage() (float64, bool, error) {
	v, err := p.expectNumber()
	if err != nil {
		return 0, false, err
	}
	if p.acceptSym("%") {
		return v / 100, true, nil
	}
	return v, false, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{ReportConfidence: 0.95}
	if p.acceptKw("EXPLAIN") {
		if err := p.expectKw("ANALYZE"); err != nil {
			return nil, err
		}
		q.Analyze = true
	}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	for {
		// "RELATIVE ERROR AT c% CONFIDENCE" pseudo-projection.
		if p.cur().kind == tokIdent && p.cur().text == "RELATIVE" {
			p.i++
			if err := p.expectKw("ERROR"); err != nil {
				return nil, err
			}
			if err := p.expectKw("AT"); err != nil {
				return nil, err
			}
			v, pct, err := p.percentage()
			if err != nil {
				return nil, err
			}
			if !pct && v > 1 {
				v /= 100
			}
			if err := p.expectKw("CONFIDENCE"); err != nil {
				return nil, err
			}
			q.ReportError = true
			q.ReportConfidence = v
		} else {
			agg, err := p.parseAgg()
			if err != nil {
				return nil, err
			}
			q.Aggs = append(q.Aggs, agg)
		}
		if !p.acceptSym(",") {
			break
		}
	}
	if len(q.Aggs) == 0 {
		return nil, p.errf("query must contain at least one aggregate")
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q.Table = tbl.raw

	for p.acceptKw("JOIN") {
		jt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		left, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		right, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		q.Joins = append(q.Joins, JoinClause{
			Table:    jt.raw,
			LeftCol:  strings.ToLower(left.raw),
			RightCol: strings.ToLower(right.raw),
		})
	}

	if p.acceptKw("WHERE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c.raw)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	// Bound clauses, in either order.
	for {
		switch {
		case p.cur().kind == tokIdent && p.cur().text == "ERROR":
			p.i++
			if err := p.expectKw("WITHIN"); err != nil {
				return nil, err
			}
			bound, rel, err := p.percentage()
			if err != nil {
				return nil, err
			}
			eb := &ErrorBound{Relative: rel, Bound: bound, Confidence: 0.95}
			if p.acceptKw("AT") {
				if err := p.expectKw("CONFIDENCE"); err != nil {
					return nil, err
				}
				c, pct, err := p.percentage()
				if err != nil {
					return nil, err
				}
				if !pct && c > 1 {
					c /= 100
				}
				eb.Confidence = c
			}
			if q.Err != nil {
				return nil, p.errf("duplicate ERROR clause")
			}
			q.Err = eb
		case p.cur().kind == tokIdent && p.cur().text == "WITHIN":
			p.i++
			secs, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			if !p.acceptKw("SECONDS") && !p.acceptKw("SECOND") {
				return nil, p.errf("expected SECONDS")
			}
			if q.Time != nil {
				return nil, p.errf("duplicate WITHIN clause")
			}
			q.Time = &TimeBound{Seconds: secs}
		case p.cur().kind == tokIdent && p.cur().text == "LIMIT":
			p.i++
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			q.Limit = int(n)
		default:
			goto done
		}
	}
done:
	p.acceptSym(";")
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	return q, nil
}

func (p *parser) parseAgg() (AggSpec, error) {
	t, err := p.expectIdent()
	if err != nil {
		return AggSpec{}, err
	}
	var spec AggSpec
	name := t.text
	switch name {
	case "COUNT":
		spec.Kind = stats.AggCount
	case "SUM":
		spec.Kind = stats.AggSum
	case "AVG", "MEAN":
		spec.Kind = stats.AggAvg
	case "MEDIAN":
		spec.Kind = stats.AggQuantile
		spec.P = 0.5
	case "QUANTILE", "PERCENTILE":
		spec.Kind = stats.AggQuantile
	default:
		return spec, p.errf("unknown aggregate %s", t.raw)
	}
	if err := p.expectSym("("); err != nil {
		return spec, err
	}
	if name == "COUNT" && p.acceptSym("*") {
		// COUNT(*): no argument column.
	} else {
		col, err := p.expectIdent()
		if err != nil {
			return spec, err
		}
		spec.Col = strings.ToLower(col.raw)
	}
	if spec.Kind == stats.AggQuantile && name != "MEDIAN" {
		if err := p.expectSym(","); err != nil {
			return spec, err
		}
		v, err := p.expectNumber()
		if err != nil {
			return spec, err
		}
		if name == "PERCENTILE" && v > 1 {
			v /= 100
		}
		if v <= 0 || v >= 1 {
			return spec, p.errf("quantile level must be in (0,1)")
		}
		spec.P = v
	}
	if err := p.expectSym(")"); err != nil {
		return spec, err
	}
	spec.Alias = spec.String()
	if p.acceptKw("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return spec, err
		}
		spec.Alias = a.raw
	}
	return spec, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{And: false, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{And: true, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptKw("NOT") {
		k, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Kid: k}, nil
	}
	if p.acceptSym("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokSymbol {
		return nil, p.errf("expected comparison operator")
	}
	var op types.CmpOp
	switch p.next().text {
	case "=":
		op = types.CmpEq
	case "<>", "!=":
		op = types.CmpNe
	case "<":
		op = types.CmpLt
	case "<=":
		op = types.CmpLe
	case ">":
		op = types.CmpGt
	case ">=":
		op = types.CmpGe
	default:
		return nil, p.errf("expected comparison operator")
	}
	val, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Col: strings.ToLower(col.raw), Op: op, Val: val}, nil
}

func (p *parser) parseLiteral() (types.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return types.Null(), p.errf("bad number")
			}
			return types.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return types.Null(), p.errf("bad integer")
		}
		return types.Int(n), nil
	case tokString:
		p.i++
		return types.Str(t.text), nil
	case tokIdent:
		switch t.text {
		case "TRUE":
			p.i++
			return types.Bool(true), nil
		case "FALSE":
			p.i++
			return types.Bool(false), nil
		case "NULL":
			p.i++
			return types.Null(), nil
		}
	}
	return types.Null(), p.errf("expected literal")
}
