// Package sqlparser implements the SQL dialect of BlinkDB (§2): standard
// aggregation queries extended with error bounds ("ERROR WITHIN 10% AT
// CONFIDENCE 95%"), response-time bounds ("WITHIN 5 SECONDS") and
// error-reporting projections ("RELATIVE ERROR AT 95% CONFIDENCE").
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * = < > <= >= <> != %
)

type token struct {
	kind tokKind
	text string // identifiers upper-cased for keyword matching; sym text
	raw  string // original spelling (identifiers keep case)
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokString:
		return fmt.Sprintf("'%s'", t.raw)
	default:
		return t.raw
	}
}

// lexer splits a query string into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9' || c == '.' && l.peekDigit():
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '-' && l.peekDigit():
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

func (l *lexer) peekDigit() bool {
	return l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	raw := l.src[start:l.pos]
	l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToUpper(raw), raw: raw, pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	dots := 0
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			dots++
			if dots > 1 {
				return fmt.Errorf("invalid number at offset %d", start)
			}
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	raw := l.src[start:l.pos]
	l.toks = append(l.toks, token{kind: tokNumber, text: raw, raw: raw, pos: start})
	return nil
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// Doubled quote is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				sb.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), raw: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("unterminated string starting at offset %d", start)
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, raw: two, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '=', '<', '>', '%', ';':
		l.pos++
		s := string(c)
		l.toks = append(l.toks, token{kind: tokSymbol, text: s, raw: s, pos: start})
		return nil
	}
	return fmt.Errorf("unexpected character %q at offset %d", c, start)
}
