package sqlparser

import (
	"reflect"
	"testing"

	"blinkdb/internal/types"
)

// TestNormalizeSameTemplate pins the core property: queries differing
// only in constants (and aliases) share a key, and the lifted parameter
// vectors carry the constants in traversal order.
func TestNormalizeSameTemplate(t *testing.T) {
	a := mustParse(t, `SELECT AVG(time) AS x FROM sessions WHERE city = 'NY' AND code < 10 GROUP BY os ERROR WITHIN 10% AT CONFIDENCE 95% LIMIT 5`)
	b := mustParse(t, `SELECT AVG(time) AS y FROM Sessions WHERE city = 'SF' AND code < 99 GROUP BY OS ERROR WITHIN 5% AT CONFIDENCE 99% LIMIT 5`)
	ka, pa := Normalize(a)
	kb, pb := Normalize(b)
	if ka != kb {
		t.Fatalf("same template produced different keys:\n%q\n%q", ka, kb)
	}
	wantA := []types.Value{types.Str("NY"), types.Int(10), types.Float(0.10), types.Float(0.95), types.Int(5)}
	if !reflect.DeepEqual(pa, wantA) {
		t.Errorf("params(a) = %v, want %v", pa, wantA)
	}
	if ParamsEqual(pa, pb) {
		t.Error("different constants must yield unequal parameter vectors")
	}
	if !ParamsEqual(pa, append([]types.Value(nil), pa...)) {
		t.Error("identical parameter vectors must compare equal")
	}
}

// TestNormalizeDistinguishesShapes: structurally different queries must
// not collide, even when a naive rendering would look similar.
func TestNormalizeDistinguishesShapes(t *testing.T) {
	qs := []string{
		`SELECT COUNT(*) FROM t WHERE a = 1`,
		`SELECT COUNT(*) FROM t WHERE a = 1.0`, // Float literal: same key, different param kind
		`SELECT COUNT(*) FROM t WHERE a < 1`,
		`SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2`,
		`SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2`,
		`SELECT COUNT(*) FROM t WHERE NOT (a = 1)`,
		`SELECT COUNT(*) FROM t WHERE a = 1 GROUP BY b`,
		`SELECT COUNT(*) FROM t WHERE a = 1 ERROR WITHIN 10%`,
		`SELECT COUNT(*) FROM t WHERE a = 1 ERROR WITHIN 10`,
		`SELECT COUNT(*) FROM t WHERE a = 1 WITHIN 2 SECONDS`,
		`SELECT COUNT(*) FROM t WHERE a = 1 LIMIT 3`,
		`SELECT COUNT(a) FROM t WHERE a = 1`,
		`SELECT SUM(a) FROM t WHERE a = 1`,
		`SELECT QUANTILE(a, 0.9) FROM t WHERE a = 1`,
		`SELECT QUANTILE(a, 0.5) FROM t WHERE a = 1`,
		`SELECT COUNT(*) FROM u WHERE a = 1`,
		`SELECT COUNT(*) FROM t JOIN u ON a = b WHERE a = 1`,
		`SELECT COUNT(*), RELATIVE ERROR AT 95% CONFIDENCE FROM t WHERE a = 1`,
	}
	seen := map[string]string{}
	for _, src := range qs {
		key, _ := Normalize(mustParse(t, src))
		if prev, ok := seen[key]; ok {
			// The Int-vs-Float literal pair intentionally shares a key
			// (shape-equal); everything else must be distinct.
			if prev == `SELECT COUNT(*) FROM t WHERE a = 1` && src == `SELECT COUNT(*) FROM t WHERE a = 1.0` {
				continue
			}
			t.Errorf("key collision between %q and %q: %q", prev, src, key)
		}
		seen[key] = src
	}
	// The Int/Float pair collides on key but their params must differ.
	_, pi := Normalize(mustParse(t, `SELECT COUNT(*) FROM t WHERE a = 1`))
	_, pf := Normalize(mustParse(t, `SELECT COUNT(*) FROM t WHERE a = 1.0`))
	if ParamsEqual(pi, pf) {
		t.Error("Int(1) and Float(1) literals must not compare parameter-equal")
	}
}

// TestNormalizeAliasInsensitive: aliases rename output columns only.
func TestNormalizeAliasInsensitive(t *testing.T) {
	a := mustParse(t, `SELECT COUNT(*) AS n FROM t`)
	b := mustParse(t, `SELECT COUNT(*) FROM t`)
	ka, _ := Normalize(a)
	kb, _ := Normalize(b)
	if ka != kb {
		t.Errorf("alias changed the template key: %q vs %q", ka, kb)
	}
}

// TestNormalizeDeterministic: normalizing the same query twice is stable.
func TestNormalizeDeterministic(t *testing.T) {
	src := `SELECT AVG(x), MEDIAN(x) FROM t JOIN d ON k = id WHERE (a = 'v' OR b > 2) AND NOT (c <= 3.5) GROUP BY g, h ERROR WITHIN 0.5 AT CONFIDENCE 90% WITHIN 4 SECONDS LIMIT 7`
	k1, p1 := Normalize(mustParse(t, src))
	k2, p2 := Normalize(mustParse(t, src))
	if k1 != k2 || !ParamsEqual(p1, p2) {
		t.Errorf("normalization not deterministic:\n%q %v\n%q %v", k1, p1, k2, p2)
	}
}

// TestParamsKeyCanonical pins the result-cache key contract: vectors that
// ParamsEqual share a key; vectors differing in any value — including the
// Int(1)-vs-Float(1) kind distinction and distinct float bit patterns —
// key differently; and concatenation cannot forge a collision across
// different vector lengths.
func TestParamsKeyCanonical(t *testing.T) {
	v := func(vs ...types.Value) []types.Value { return vs }
	if ParamsKey(nil) != "" || ParamsKey(v()) != "" {
		t.Error("empty vectors must share the empty key")
	}
	a := v(types.Int(1), types.Str("NY"), types.Float(0.5))
	b := v(types.Int(1), types.Str("NY"), types.Float(0.5))
	if ParamsKey(a) != ParamsKey(b) {
		t.Error("equal vectors keyed differently")
	}
	distinct := [][]types.Value{
		a,
		v(types.Float(1), types.Str("NY"), types.Float(0.5)),             // kind differs
		v(types.Int(1), types.Str("NY"), types.Float(0.25)),              // payload differs
		v(types.Int(1), types.Str("NY")),                                 // shorter
		v(types.Int(1), types.Str("NY"), types.Float(0.5), types.Int(7)), // longer
		v(types.Str("iNY"), types.Float(0.5)),                            // prefix-forgery attempt
		v(types.Bool(true), types.Str("NY"), types.Float(0.5)),
		v(types.Null(), types.Str("NY"), types.Float(0.5)),
	}
	seen := map[string]int{}
	for i, p := range distinct {
		k := ParamsKey(p)
		if j, ok := seen[k]; ok {
			t.Errorf("vectors %d and %d collide on key %q", j, i, k)
		}
		seen[k] = i
	}
	// Separator injection: a string literal may contain the '\x1f'
	// separator byte (the lexer admits any byte inside quotes); without
	// length-prefixing, these two distinct vectors would concatenate to
	// the same key and the result cache would serve one query the other's
	// answer.
	forgeA := v(types.Str("a\x1f3sb"), types.Str("c"))
	forgeB := v(types.Str("a"), types.Str("b\x1f3sc"))
	if ParamsKey(forgeA) == ParamsKey(forgeB) {
		t.Error("separator injection forged a ParamsKey collision")
	}

	// The keys Normalize lifts round through ParamsKey consistently with
	// ParamsEqual on real queries.
	_, pi := Normalize(mustParse(t, `SELECT COUNT(*) FROM t WHERE a = 1`))
	_, pf := Normalize(mustParse(t, `SELECT COUNT(*) FROM t WHERE a = 1.0`))
	if ParamsKey(pi) == ParamsKey(pf) {
		t.Error("Int(1) and Float(1) literals must key differently")
	}
}
