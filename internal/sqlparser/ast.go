package sqlparser

import (
	"fmt"
	"strings"

	"blinkdb/internal/stats"
	"blinkdb/internal/types"
)

// AggSpec is one aggregate in the SELECT list.
type AggSpec struct {
	// Kind is the aggregate operator.
	Kind stats.AggKind
	// Col is the argument column; empty for COUNT(*).
	Col string
	// P is the quantile level for QUANTILE/PERCENTILE/MEDIAN.
	P float64
	// Alias is the output column label.
	Alias string
}

// String renders the aggregate in SQL form.
func (a AggSpec) String() string {
	switch {
	case a.Kind == stats.AggCount && a.Col == "":
		return "COUNT(*)"
	case a.Kind == stats.AggQuantile:
		return fmt.Sprintf("QUANTILE(%s, %g)", a.Col, a.P)
	default:
		return fmt.Sprintf("%s(%s)", a.Kind, a.Col)
	}
}

// ErrorBound is the "ERROR WITHIN x[%] AT CONFIDENCE c%" clause.
type ErrorBound struct {
	// Relative, when true, interprets Bound as a fraction of the answer
	// (the "%": 10% → 0.10); otherwise Bound is absolute.
	Relative bool
	// Bound is the maximum half-width of the confidence interval.
	Bound float64
	// Confidence is the CI level in (0,1), e.g. 0.95.
	Confidence float64
}

// String renders the clause.
func (e ErrorBound) String() string {
	if e.Relative {
		return fmt.Sprintf("ERROR WITHIN %g%% AT CONFIDENCE %g%%", e.Bound*100, e.Confidence*100)
	}
	return fmt.Sprintf("ERROR WITHIN %g AT CONFIDENCE %g%%", e.Bound, e.Confidence*100)
}

// TimeBound is the "WITHIN n SECONDS" clause.
type TimeBound struct {
	// Seconds is the maximum response time.
	Seconds float64
}

// String renders the clause.
func (t TimeBound) String() string { return fmt.Sprintf("WITHIN %g SECONDS", t.Seconds) }

// Expr is an unresolved boolean expression (column names not yet bound to
// schema positions).
type Expr interface {
	// Resolve binds column names against a schema, producing an
	// executable predicate.
	Resolve(s *types.Schema) (types.Predicate, error)
	// String renders the expression in SQL-ish syntax.
	String() string
}

// CmpExpr is "col op literal".
type CmpExpr struct {
	Col string
	Op  types.CmpOp
	Val types.Value
}

// Resolve implements Expr.
func (e *CmpExpr) Resolve(s *types.Schema) (types.Predicate, error) {
	i, err := s.MustIndex(e.Col)
	if err != nil {
		return nil, err
	}
	return &types.CmpPred{Col: strings.ToLower(e.Col), ColIdx: i, Op: e.Op, Val: e.Val}, nil
}

// String implements Expr.
func (e *CmpExpr) String() string {
	if e.Val.Kind == types.KindString {
		return fmt.Sprintf("%s %s '%s'", e.Col, e.Op, e.Val.S)
	}
	return fmt.Sprintf("%s %s %s", e.Col, e.Op, e.Val)
}

// BinExpr is AND/OR over two sub-expressions.
type BinExpr struct {
	And  bool // true = AND, false = OR
	L, R Expr
}

// Resolve implements Expr.
func (e *BinExpr) Resolve(s *types.Schema) (types.Predicate, error) {
	l, err := e.L.Resolve(s)
	if err != nil {
		return nil, err
	}
	r, err := e.R.Resolve(s)
	if err != nil {
		return nil, err
	}
	if e.And {
		return &types.AndPred{Kids: []types.Predicate{l, r}}, nil
	}
	return &types.OrPred{Kids: []types.Predicate{l, r}}, nil
}

// String implements Expr.
func (e *BinExpr) String() string {
	op := " OR "
	if e.And {
		op = " AND "
	}
	return "(" + e.L.String() + op + e.R.String() + ")"
}

// NotExpr negates a sub-expression.
type NotExpr struct{ Kid Expr }

// Resolve implements Expr.
func (e *NotExpr) Resolve(s *types.Schema) (types.Predicate, error) {
	k, err := e.Kid.Resolve(s)
	if err != nil {
		return nil, err
	}
	return &types.NotPred{Kid: k}, nil
}

// String implements Expr.
func (e *NotExpr) String() string { return "NOT (" + e.Kid.String() + ")" }

// JoinClause is one "JOIN dim ON left = right" clause (equi-joins only,
// §2.1: BlinkDB supports k-way joins when stratified samples carry the
// join keys, or when the non-fact operands fit in cluster memory).
type JoinClause struct {
	// Table is the joined (dimension) table.
	Table string
	// LeftCol and RightCol are the equi-join columns; LeftCol refers to
	// the accumulated left side (fact table or earlier joins), RightCol
	// to the joined table. Qualified names ("t.col") are accepted.
	LeftCol, RightCol string
}

// String renders the clause.
func (j JoinClause) String() string {
	return fmt.Sprintf("JOIN %s ON %s = %s", j.Table, j.LeftCol, j.RightCol)
}

// Query is a parsed BlinkDB query.
type Query struct {
	// Aggs is the SELECT aggregate list.
	Aggs []AggSpec
	// ReportError is set by "SELECT ..., RELATIVE ERROR AT c% CONFIDENCE".
	ReportError bool
	// ReportConfidence is the confidence for ReportError (default 0.95).
	ReportConfidence float64
	// Table is the FROM table name.
	Table string
	// Joins lists JOIN clauses in order.
	Joins []JoinClause
	// Where is the filter, or nil.
	Where Expr
	// GroupBy lists grouping columns.
	GroupBy []string
	// Err is the error bound, or nil.
	Err *ErrorBound
	// Time is the response-time bound, or nil.
	Time *TimeBound
	// Limit caps output rows (0 = unlimited).
	Limit int
	// Analyze is set by the EXPLAIN ANALYZE prefix: execute the query
	// normally AND capture a query-lifecycle span tree for the response.
	// Normalize ignores it, so an analyzed query shares plan- and
	// result-cache state with its plain form — EXPLAIN ANALYZE on a warm
	// template shows the warm path, not an artificial cold one.
	Analyze bool
}

// Columns returns the query-template column set: the union of columns in
// WHERE and GROUP BY clauses (§3.2.1's φ of the template).
func (q *Query) Columns(schema *types.Schema) (types.ColumnSet, error) {
	cs := types.NewColumnSet(q.GroupBy...)
	if q.Where != nil {
		p, err := q.Where.Resolve(schema)
		if err != nil {
			return cs, err
		}
		cs = cs.Union(p.Columns())
	}
	return cs, nil
}

// String renders the query back to SQL.
func (q *Query) String() string {
	var b strings.Builder
	if q.Analyze {
		b.WriteString("EXPLAIN ANALYZE ")
	}
	b.WriteString("SELECT ")
	for i, a := range q.Aggs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	if q.ReportError {
		fmt.Fprintf(&b, ", RELATIVE ERROR AT %g%% CONFIDENCE", q.ReportConfidence*100)
	}
	b.WriteString(" FROM ")
	b.WriteString(q.Table)
	for _, j := range q.Joins {
		b.WriteString(" ")
		b.WriteString(j.String())
	}
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(q.GroupBy, ", "))
	}
	if q.Err != nil {
		b.WriteString(" ")
		b.WriteString(q.Err.String())
	}
	if q.Time != nil {
		b.WriteString(" ")
		b.WriteString(q.Time.String())
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
