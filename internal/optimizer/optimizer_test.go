package optimizer

import (
	"math/rand"
	"reflect"
	"testing"

	"blinkdb/internal/sample"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
	"blinkdb/internal/zipf"
)

// buildTestTable creates a table with one heavily skewed column (city,
// Zipf), one uniform column (genre) and one numeric column.
func buildTestTable(t testing.TB, rows int) *storage.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "genre", Kind: types.KindString},
		types.Column{Name: "os", Kind: types.KindString},
		types.Column{Name: "time", Kind: types.KindFloat},
	)
	tab := storage.NewTable("sessions", schema)
	b := storage.NewBuilder(tab, 1024, 4, storage.OnDisk)
	rng := rand.New(rand.NewSource(42))
	cityGen := zipf.NewGeneratorCDF(rng, 1.6, 500) // highly skewed
	genres := []string{"western", "drama", "comedy", "horror"}
	oses := []string{"Win7", "OSX", "Linux", "iOS", "Android"}
	for i := 0; i < rows; i++ {
		b.AppendRow(types.Row{
			types.Str(cityLabel(cityGen.Next())),
			types.Str(genres[rng.Intn(len(genres))]), // uniform
			types.Str(oses[rng.Intn(len(oses))]),     // uniform
			types.Float(rng.Float64() * 100),
		})
	}
	return b.Finish()
}

func cityLabel(rank int) string {
	return "city" + string(rune('0'+rank%10)) + string(rune('a'+rank/10%26)) + string(rune('a'+rank/260))
}

func TestTailCountMetric(t *testing.T) {
	freqs := []int64{1000, 500, 50, 5, 1}
	if got := TailCount(freqs, 100); got != 3 {
		t.Errorf("TailCount = %g, want 3", got)
	}
	if got := TailCount(freqs, 1); got != 0 {
		t.Errorf("TailCount K=1 = %g, want 0", got)
	}
	if got := TailCount(nil, 100); got != 0 {
		t.Errorf("empty TailCount = %g", got)
	}
}

func TestKurtosisMetric(t *testing.T) {
	// Uniform frequencies → zero (clamped) kurtosis; heavy tail → large.
	uniform := []int64{100, 100, 100, 100}
	if got := Kurtosis(uniform, 0); got != 0 {
		t.Errorf("uniform kurtosis = %g", got)
	}
	skewed := []int64{10000, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := Kurtosis(skewed, 0); got <= 0 {
		t.Errorf("skewed kurtosis = %g, want > 0", got)
	}
	if Kurtosis([]int64{5}, 0) != 0 {
		t.Error("single-value kurtosis should be 0")
	}
}

func TestChooseSamplesPrefersSkewedColumns(t *testing.T) {
	tab := buildTestTable(t, 30000)
	templates := []TemplateSpec{
		{Columns: types.NewColumnSet("city"), Weight: 0.5},
		{Columns: types.NewColumnSet("genre"), Weight: 0.5},
	}
	cfg := Config{K: 200, BudgetBytes: tab.Bytes() / 2, ChurnFrac: -1}
	plan, err := ChooseSamples(tab, templates, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// city is Zipf-skewed (many sub-cap values); genre is uniform with 4
	// values all above the cap, so Δ(genre) = 0 and it must not be
	// chosen (this is the paper's §2.3 narrative: "Note that despite
	// Genre being a frequently queried column, we do not create a
	// stratified sample on this column").
	var hasCity, hasGenre bool
	for _, ch := range plan.Chosen {
		switch ch.Phi.Key() {
		case "city":
			hasCity = true
		case "genre":
			hasGenre = true
		}
	}
	if !hasCity {
		t.Errorf("skewed city column not chosen: %+v", plan.Chosen)
	}
	if hasGenre {
		t.Errorf("uniform genre column should not be chosen")
	}
	if !plan.Optimal {
		t.Error("small instance should solve exactly")
	}
}

func TestChooseSamplesBudgetRespected(t *testing.T) {
	tab := buildTestTable(t, 20000)
	templates := []TemplateSpec{
		{Columns: types.NewColumnSet("city", "os"), Weight: 0.6},
		{Columns: types.NewColumnSet("city"), Weight: 0.4},
	}
	for _, frac := range []float64{0.1, 0.5, 1.0} {
		budget := int64(float64(tab.Bytes()) * frac)
		plan, err := ChooseSamples(tab, templates, Config{K: 100, BudgetBytes: budget, ChurnFrac: -1})
		if err != nil {
			t.Fatal(err)
		}
		if plan.TotalBytes > budget {
			t.Errorf("budget %d exceeded: %d", budget, plan.TotalBytes)
		}
	}
}

func TestLargerBudgetNeverWorse(t *testing.T) {
	tab := buildTestTable(t, 20000)
	templates := []TemplateSpec{
		{Columns: types.NewColumnSet("city", "os"), Weight: 0.4},
		{Columns: types.NewColumnSet("city", "genre"), Weight: 0.3},
		{Columns: types.NewColumnSet("os"), Weight: 0.3},
	}
	var prev float64 = -1
	for _, frac := range []float64{0.25, 0.5, 1.0, 2.0} {
		plan, err := ChooseSamples(tab, templates, Config{
			K: 100, BudgetBytes: int64(float64(tab.Bytes()) * frac), ChurnFrac: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Objective < prev-1e-9 {
			t.Errorf("objective decreased with budget: %g after %g", plan.Objective, prev)
		}
		prev = plan.Objective
	}
}

func TestCandidateGenerationSubsets(t *testing.T) {
	tab := buildTestTable(t, 5000)
	templates := []TemplateSpec{
		{Columns: types.NewColumnSet("city", "os", "genre"), Weight: 1},
	}
	plan, err := ChooseSamples(tab, templates, Config{
		K: 100, BudgetBytes: tab.Bytes() * 10, MaxColumns: 2, ChurnFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Subsets of a 3-set limited to ≤2 columns: 3 singletons + 3 pairs.
	if len(plan.Candidates) != 6 {
		t.Errorf("candidates = %d, want 6", len(plan.Candidates))
	}
	for _, c := range plan.Candidates {
		if c.Phi.Len() > 2 {
			t.Errorf("candidate %v exceeds MaxColumns", c.Phi)
		}
	}
}

func TestSingleColumnRestriction(t *testing.T) {
	// MaxColumns=1 reproduces the single-dimensional baseline (§6.3).
	tab := buildTestTable(t, 5000)
	templates := []TemplateSpec{
		{Columns: types.NewColumnSet("city", "os"), Weight: 1},
	}
	plan, err := ChooseSamples(tab, templates, Config{
		K: 100, BudgetBytes: tab.Bytes() * 10, MaxColumns: 1, ChurnFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.Candidates {
		if c.Phi.Len() != 1 {
			t.Errorf("single-column restriction violated: %v", c.Phi)
		}
	}
}

func TestChurnPreservesExisting(t *testing.T) {
	tab := buildTestTable(t, 10000)
	templates := []TemplateSpec{
		{Columns: types.NewColumnSet("city"), Weight: 0.5},
		{Columns: types.NewColumnSet("os"), Weight: 0.5},
	}
	base, err := ChooseSamples(tab, templates, Config{K: 100, BudgetBytes: tab.Bytes(), ChurnFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Chosen) == 0 {
		t.Fatal("nothing chosen in base run")
	}
	var existing []types.ColumnSet
	for _, c := range base.Chosen {
		existing = append(existing, c.Phi)
	}
	// r=0: must return exactly the existing configuration.
	frozen, err := ChooseSamples(tab, templates, Config{
		K: 100, BudgetBytes: tab.Bytes(), ChurnFrac: 0, Existing: existing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frozen.Chosen) != len(base.Chosen) {
		t.Fatalf("r=0 changed the set: %d vs %d", len(frozen.Chosen), len(base.Chosen))
	}
	for i := range frozen.Chosen {
		if !frozen.Chosen[i].Phi.Equal(base.Chosen[i].Phi) {
			t.Errorf("r=0 swapped %v for %v", base.Chosen[i].Phi, frozen.Chosen[i].Phi)
		}
	}
}

func TestBuildFamilies(t *testing.T) {
	tab := buildTestTable(t, 20000)
	templates := []TemplateSpec{
		{Columns: types.NewColumnSet("city"), Weight: 1},
	}
	cfg := Config{K: 200, CapRatio: 4, Resolutions: 3, MinCap: 5,
		BudgetBytes: tab.Bytes(), ChurnFrac: -1, Build: sample.BuildConfig{Seed: 9}}
	plan, err := ChooseSamples(tab, templates, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := BuildFamilies(tab, plan, cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != len(plan.Chosen)+1 {
		t.Fatalf("families = %d, want chosen+uniform = %d", len(fams), len(plan.Chosen)+1)
	}
	last := fams[len(fams)-1]
	if !last.IsUniform() {
		t.Error("last family should be uniform")
	}
	// Uniform family sized at ~10% of 20000 rows.
	if got := last.Largest().Rows(); got < 1500 || got > 2500 {
		t.Errorf("uniform largest rows = %d, want ≈ 2000", got)
	}
	for _, f := range fams {
		if err := f.Validate(); err != nil {
			t.Errorf("family %s invalid: %v", f, err)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	tab := buildTestTable(t, 100)
	if _, err := ChooseSamples(tab, nil, Config{}); err == nil {
		t.Error("no templates should fail")
	}
	if _, err := ChooseSamples(tab, []TemplateSpec{{Columns: types.NewColumnSet()}}, Config{}); err == nil {
		t.Error("empty template columns should fail")
	}
	if _, err := ChooseSamples(tab, []TemplateSpec{
		{Columns: types.NewColumnSet("bogus"), Weight: 1},
	}, Config{}); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestKurtosisConfigUsed(t *testing.T) {
	tab := buildTestTable(t, 10000)
	templates := []TemplateSpec{
		{Columns: types.NewColumnSet("city"), Weight: 0.5},
		{Columns: types.NewColumnSet("genre"), Weight: 0.5},
	}
	plan, err := ChooseSamples(tab, templates, Config{
		K: 200, BudgetBytes: tab.Bytes(), ChurnFrac: -1, Skew: Kurtosis,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The skewed column still wins under the alternative metric.
	var hasCity bool
	for _, c := range plan.Chosen {
		if c.Phi.Key() == "city" {
			hasCity = true
		}
	}
	if !hasCity {
		t.Error("kurtosis metric should also favor the skewed column")
	}
}

func BenchmarkChooseSamples(b *testing.B) {
	tab := buildTestTable(b, 50000)
	templates := []TemplateSpec{
		{Columns: types.NewColumnSet("city", "os"), Weight: 0.3},
		{Columns: types.NewColumnSet("city", "genre"), Weight: 0.25},
		{Columns: types.NewColumnSet("os", "genre", "city"), Weight: 0.18},
		{Columns: types.NewColumnSet("genre"), Weight: 0.15},
		{Columns: types.NewColumnSet("os"), Weight: 0.12},
	}
	cfg := Config{K: 500, BudgetBytes: tab.Bytes(), ChurnFrac: -1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ChooseSamples(tab, templates, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParallelBuildDeterminism pins the satellite contract of the
// parallel offline pipeline: BuildMILP and BuildFamilies produce
// identical output for any Workers value (indexed output slots, per-unit
// RNGs), and under -race this also proves the fan-out is data-race free.
func TestParallelBuildDeterminism(t *testing.T) {
	tab := buildTestTable(t, 6000)
	templates := []TemplateSpec{
		{Columns: types.NewColumnSet("city"), Weight: 0.5},
		{Columns: types.NewColumnSet("city", "genre"), Weight: 0.3},
		{Columns: types.NewColumnSet("os", "genre"), Weight: 0.2},
	}
	base := Config{
		K: 200, BudgetBytes: tab.Bytes(),
		Build: sample.BuildConfig{RowsPerBlock: 256, Nodes: 4, Seed: 7,
			Layout: storage.ColumnarLayout},
	}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8

	probSeq, candsSeq, err := BuildMILP(tab, templates, seq)
	if err != nil {
		t.Fatal(err)
	}
	probPar, candsPar, err := BuildMILP(tab, templates, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(probSeq, probPar) {
		t.Fatalf("MILP problem depends on worker count:\nseq %+v\npar %+v", probSeq, probPar)
	}
	if !reflect.DeepEqual(candsSeq, candsPar) {
		t.Fatalf("candidates depend on worker count")
	}

	planSeq, err := ChooseSamples(tab, templates, seq)
	if err != nil {
		t.Fatal(err)
	}
	famsSeq, err := BuildFamilies(tab, planSeq, seq, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	famsPar, err := BuildFamilies(tab, planSeq, par, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(famsSeq) != len(famsPar) || len(famsSeq) < 2 {
		t.Fatalf("family counts differ: %d vs %d", len(famsSeq), len(famsPar))
	}
	for i := range famsSeq {
		a, b := famsSeq[i], famsPar[i]
		if !a.Phi.Equal(b.Phi) || a.StorageRows() != b.StorageRows() || a.StorageBytes() != b.StorageBytes() {
			t.Fatalf("family %d differs across worker counts: %s/%d vs %s/%d",
				i, a, a.StorageRows(), b, b.StorageRows())
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("family %d invalid: %v", i, err)
		}
		// Contents, not just sizes: rows drawn must be identical.
		for li := range a.Deltas {
			var rowsA, rowsB []string
			idx := allCols(a.Schema())
			for _, blk := range a.Deltas[li].Blocks {
				for ri := 0; ri < blk.NumRows(); ri++ {
					rowsA = append(rowsA, blk.RowKey(ri, idx))
				}
			}
			for _, blk := range b.Deltas[li].Blocks {
				for ri := 0; ri < blk.NumRows(); ri++ {
					rowsB = append(rowsB, blk.RowKey(ri, idx))
				}
			}
			if !reflect.DeepEqual(rowsA, rowsB) {
				t.Fatalf("family %d delta %d contents differ across worker counts", i, li)
			}
		}
	}
}

func allCols(s *types.Schema) []int {
	idx := make([]int, s.Len())
	for i := range idx {
		idx[i] = i
	}
	return idx
}
