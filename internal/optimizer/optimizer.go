// Package optimizer implements BlinkDB's sample-creation optimization
// framework (§3.2): given the base table, a workload of query templates
// with weights, and a storage budget, it decides which column sets to
// build stratified sample families on.
//
// The pipeline is:
//  1. candidate generation — subsets of template column sets, limited to
//     MaxColumns members (§3.2.2's combinatorial-explosion guard);
//  2. per-candidate statistics — |D(φ)|, the non-uniformity Δ(φ) and the
//     storage cost Store(φ) measured from the actual data;
//  3. the MILP of §3.2.1, solved by internal/milp;
//  4. physical construction of the chosen families plus the always-present
//     uniform family.
package optimizer

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"blinkdb/internal/milp"
	"blinkdb/internal/sample"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// TemplateSpec is one workload query template ⟨φᵀ, w⟩ (§3.2.1).
type TemplateSpec struct {
	// Columns is the union of WHERE and GROUP BY columns.
	Columns types.ColumnSet
	// Weight is the normalized frequency/importance, in (0, 1].
	Weight float64
}

// SkewMetric maps a stratum-frequency histogram to the non-uniformity
// Δ(φ). freqs holds F(φ,T,v) for every distinct v; k is the largest cap.
type SkewMetric func(freqs []int64, k int64) float64

// TailCount is the paper's default Δ: the number of distinct values whose
// frequency is below the cap K (§3.2.1).
func TailCount(freqs []int64, k int64) float64 {
	n := 0
	for _, f := range freqs {
		if f < k {
			n++
		}
	}
	return float64(n)
}

// Kurtosis is the alternative metric the paper mentions (excess kurtosis
// of the frequency distribution, shifted to be ≥ 0). Exposed for the
// DESIGN.md ablation of the skew-metric choice.
func Kurtosis(freqs []int64, _ int64) float64 {
	n := float64(len(freqs))
	if n < 2 {
		return 0
	}
	var mean float64
	for _, f := range freqs {
		mean += float64(f)
	}
	mean /= n
	var m2, m4 float64
	for _, f := range freqs {
		d := float64(f) - mean
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	k := m4/(m2*m2) - 3
	if k < 0 {
		return 0
	}
	return k
}

// Config controls the optimization.
type Config struct {
	// K is the largest frequency cap K1 (the paper uses 100,000).
	K int64
	// CapRatio is c, the geometric step between resolutions (default 2).
	CapRatio float64
	// Resolutions is the number of samples per family (default 3).
	Resolutions int
	// MinCap drops resolutions whose cap would fall below this.
	MinCap int64
	// MaxColumns limits candidate subsets (§3.2.2; the evaluation uses 3).
	MaxColumns int
	// BudgetBytes is the storage budget S.
	BudgetBytes int64
	// ChurnFrac is r for constraint (5); negative disables.
	ChurnFrac float64
	// Workers sizes the worker pool used for per-candidate statistics
	// collection and physical family construction, which are independent
	// units of work (the executor's pool pattern applied to the offline
	// pipeline). ≤1 (default) is sequential; results are identical for
	// any value, since each unit is internally deterministic and output
	// slots are indexed.
	Workers int
	// Existing lists column sets already built (δⱼ inputs).
	Existing []types.ColumnSet
	// Skew is the non-uniformity metric (default TailCount).
	Skew SkewMetric
	// Build is the physical layout config for constructed families.
	Build sample.BuildConfig
}

func (c Config) normalize() Config {
	if c.K <= 0 {
		c.K = 100000
	}
	if c.CapRatio <= 1 {
		c.CapRatio = 2
	}
	if c.Resolutions <= 0 {
		c.Resolutions = 3
	}
	if c.MinCap <= 0 {
		c.MinCap = 10
	}
	if c.MaxColumns <= 0 {
		c.MaxColumns = 3
	}
	if c.Skew == nil {
		c.Skew = TailCount
	}
	return c
}

// Candidate is a column set considered for a sample family, with its
// measured statistics.
type Candidate struct {
	// Phi is the column set.
	Phi types.ColumnSet
	// Distinct is |D(φ)|.
	Distinct int64
	// Delta is Δ(φ) under the configured skew metric.
	Delta float64
	// StorageBytes is Store(φ): the physical size of the family (its
	// largest sample; smaller resolutions share the blocks).
	StorageBytes int64
	// StorageRows is the row count of the largest sample.
	StorageRows int64
	// Exists marks candidates already built (δⱼ).
	Exists bool
}

// Plan is the optimization output.
type Plan struct {
	// Chosen lists the selected candidates in descending storage order.
	Chosen []Candidate
	// Candidates lists everything considered (for reporting).
	Candidates []Candidate
	// Objective is the achieved MILP goal value G.
	Objective float64
	// TotalBytes is the storage consumed by the chosen families.
	TotalBytes int64
	// Optimal is true when the exact solver ran.
	Optimal bool
}

// ChooseSamples runs candidate generation, statistics collection and the
// MILP, returning the selected column sets. It does not build families;
// see BuildFamilies.
func ChooseSamples(tab *storage.Table, templates []TemplateSpec, cfg Config) (*Plan, error) {
	prob, cands, err := BuildMILP(tab, templates, cfg)
	if err != nil {
		return nil, err
	}
	sol, err := milp.Solve(prob)
	if err != nil {
		return nil, err
	}
	return planFromSolution(prob, cands, sol), nil
}

// BuildMILP performs candidate generation and statistics collection,
// returning the §3.2.1 optimization instance and the candidate metadata
// (aligned with the problem's Store vector). Exposed so callers can
// compare solver strategies on identical instances.
func BuildMILP(tab *storage.Table, templates []TemplateSpec, cfg Config) (*milp.Problem, []Candidate, error) {
	cfg = cfg.normalize()
	if len(templates) == 0 {
		return nil, nil, fmt.Errorf("optimizer: no query templates")
	}

	// 1. Candidate generation: all subsets (≤ MaxColumns) of template
	// column sets (§3.2.2's restriction preserves optimality).
	seen := map[string]types.ColumnSet{}
	for _, t := range templates {
		if t.Columns.Empty() {
			continue
		}
		for _, sub := range t.Columns.Subsets(cfg.MaxColumns) {
			seen[sub.Key()] = sub
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return nil, nil, fmt.Errorf("optimizer: templates reference no columns")
	}

	existing := map[string]bool{}
	for _, e := range cfg.Existing {
		existing[e.Key()] = true
	}

	// 2. Statistics per candidate. Each candidate's frequency histogram
	// is an independent scan of the base table, so the collection fans
	// out over the worker pool; output slots are indexed, keeping the
	// assembled problem identical for any worker count.
	avgRow := avgRowBytes(tab)
	cands := make([]Candidate, len(keys))
	candFreqs := make([][]int64, len(keys))
	errs := make([]error, len(keys))
	parallelFor(len(keys), cfg.Workers, func(i int) {
		phi := seen[keys[i]]
		freqs, err := frequencies(tab, phi)
		if err != nil {
			errs[i] = err
			return
		}
		candFreqs[i] = freqs
		var storeRows int64
		for _, f := range freqs {
			if f < cfg.K {
				storeRows += f
			} else {
				storeRows += cfg.K
			}
		}
		cands[i] = Candidate{
			Phi:          phi,
			Distinct:     int64(len(freqs)),
			Delta:        cfg.Skew(freqs, cfg.K),
			StorageRows:  storeRows,
			StorageBytes: int64(float64(storeRows) * avgRow),
			Exists:       existing[keys[i]],
		}
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	// Candidate histograms double as a cache for the template pass (a
	// template whose column set is itself a candidate re-scans nothing).
	freqCache := make(map[string][]int64, len(keys))
	for i, key := range keys {
		freqCache[key] = candFreqs[i]
	}

	// 3. Template statistics + MILP assembly.
	prob := &milp.Problem{
		Budget:    float64(cfg.BudgetBytes),
		ChurnFrac: cfg.ChurnFrac,
	}
	for _, c := range cands {
		prob.Store = append(prob.Store, float64(c.StorageBytes))
	}
	if len(cfg.Existing) > 0 {
		prob.Exists = make([]bool, len(cands))
		for j, c := range cands {
			prob.Exists[j] = c.Exists
		}
	}
	tmplFreqs := make([][]int64, len(templates))
	errs = make([]error, len(templates))
	parallelFor(len(templates), cfg.Workers, func(i int) {
		if f, ok := freqCache[templates[i].Columns.Key()]; ok {
			tmplFreqs[i] = f // cache is read-only here: safe concurrently
			return
		}
		tmplFreqs[i], errs[i] = frequencies(tab, templates[i].Columns)
	})
	if err := firstError(errs); err != nil {
		return nil, nil, err
	}
	for ti, t := range templates {
		freqs := tmplFreqs[ti]
		mt := milp.Template{
			Weight: t.Weight,
			Delta:  cfg.Skew(freqs, cfg.K),
		}
		dT := float64(len(freqs))
		for j, c := range cands {
			if c.Phi.SubsetOf(t.Columns) && dT > 0 {
				frac := float64(c.Distinct) / dT
				if frac > 1 {
					frac = 1
				}
				mt.Covers = append(mt.Covers, milp.Cover{Cand: j, Frac: frac})
			}
		}
		prob.Templates = append(prob.Templates, mt)
	}

	return prob, cands, nil
}

// parallelFor runs fn(0..n-1) on up to workers goroutines (sequentially
// when workers ≤ 1), mirroring the executor's atomic-counter pool. fn
// must write only to its own index's output slots.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// planFromSolution converts a solver output into a Plan, pruning selected
// candidates with zero marginal contribution: dropping
// them leaves the objective unchanged and frees storage (the §2.3
// narrative — no stratified sample on uniformly distributed columns).
func planFromSolution(prob *milp.Problem, cands []Candidate, sol *milp.Solution) *Plan {
	sel := append([]bool{}, sol.Select...)
	for j := range sel {
		if !sel[j] {
			continue
		}
		if cands[j].Exists {
			continue // keep existing samples: dropping them costs churn
		}
		sel[j] = false
		if prob.Objective(sel) < sol.Objective-1e-12 {
			sel[j] = true
		}
	}

	plan := &Plan{Candidates: cands, Objective: sol.Objective, Optimal: sol.Optimal}
	for j, z := range sel {
		if z {
			plan.Chosen = append(plan.Chosen, cands[j])
			plan.TotalBytes += cands[j].StorageBytes
		}
	}
	sort.Slice(plan.Chosen, func(a, b int) bool {
		return plan.Chosen[a].StorageBytes > plan.Chosen[b].StorageBytes
	})
	return plan
}

// BuildFamilies physically constructs the chosen stratified families plus
// a uniform family sized at uniformFraction of the base table (spread over
// the same resolution count). The uniform family is always present: it
// serves templates with near-uniform distributions (§2.2.1).
//
// Family builds are independent (each reads the immutable base table and
// draws from its own seeded RNG), so they fan out over cfg.Workers; the
// result order — chosen families, then uniform — and every family's
// contents are identical for any worker count.
func BuildFamilies(tab *storage.Table, plan *Plan, cfg Config, uniformFraction float64) ([]*sample.Family, error) {
	cfg = cfg.normalize()
	caps := sample.GeometricCaps(cfg.K, cfg.CapRatio, cfg.Resolutions, cfg.MinCap)
	total := len(plan.Chosen)
	if uniformFraction > 0 {
		total++
	}
	fams := make([]*sample.Family, total)
	errs := make([]error, total)
	parallelFor(total, cfg.Workers, func(i int) {
		if i < len(plan.Chosen) {
			fams[i], errs[i] = sample.Build(tab, plan.Chosen[i].Phi, caps, cfg.Build)
			return
		}
		target := int64(float64(tab.NumRows()) * uniformFraction)
		if target < 1 {
			target = 1
		}
		sizes := sample.GeometricCaps(target, cfg.CapRatio, cfg.Resolutions, 1)
		fams[i], errs[i] = sample.BuildUniform(tab, sizes, cfg.Build)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return fams, nil
}

// frequencies returns the stratum-frequency histogram of φ over the table.
func frequencies(tab *storage.Table, phi types.ColumnSet) ([]int64, error) {
	var idx []int
	for _, col := range phi.Columns() {
		i, err := tab.Schema.MustIndex(col)
		if err != nil {
			return nil, fmt.Errorf("optimizer: %w", err)
		}
		idx = append(idx, i)
	}
	// Block.RowKey projects the key from either layout, so columnar base
	// tables are profiled without materialising rows.
	counts := map[string]int64{}
	for _, b := range tab.Blocks {
		for i, n := 0, b.NumRows(); i < n; i++ {
			counts[b.RowKey(i, idx)]++
		}
	}
	out := make([]int64, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] > out[b] })
	return out, nil
}

func avgRowBytes(tab *storage.Table) float64 {
	if tab.NumRows() == 0 {
		return 1
	}
	return math.Max(1, float64(tab.Bytes())/float64(tab.NumRows()))
}
