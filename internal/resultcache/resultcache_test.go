package resultcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable clock for deterministic TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newFakeCache(capacity int, ttl time.Duration) (*Cache[int], *fakeClock) {
	c := New[int](capacity, ttl)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c.now = clk.now
	return c, clk
}

func TestCacheBasic(t *testing.T) {
	c := New[string](4, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", "1")
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("a", "2") // replace
	if v, _ := c.Get("a"); v != "2" {
		t.Fatalf("replace failed: %q", v)
	}
	c.Delete("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestCacheNilIsAlwaysMiss(t *testing.T) {
	var c *Cache[int]
	if c != New[int](0, 0) || New[int](-1, time.Second) != nil {
		t.Fatal("capacity ≤ 0 must return the nil always-miss cache")
	}
	c.Put("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	c.Delete("k")
	if c.Len() != 0 || c.Sweep(func(string, int) bool { return true }) != 0 {
		t.Fatal("nil cache must be empty and sweep nothing")
	}
}

// TestCacheTTLExpiry pins the TTL half of the staleness contract with an
// injected clock: an entry is served until its deadline and becomes a
// miss (and is dropped) the instant the clock passes it.
func TestCacheTTLExpiry(t *testing.T) {
	c, clk := newFakeCache(8, time.Minute)
	c.Put("k", 42)
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Fatal("fresh entry must hit")
	}
	clk.advance(time.Minute) // exactly at the deadline: still valid
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry at its deadline must still be served")
	}
	clk.advance(time.Nanosecond) // past it
	if _, ok := c.Get("k"); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry not dropped: len = %d", c.Len())
	}
	// Re-putting restarts the clock.
	c.Put("k", 43)
	clk.advance(30 * time.Second)
	if v, ok := c.Get("k"); !ok || v != 43 {
		t.Fatal("re-put entry must get a fresh deadline")
	}
}

func TestCacheZeroTTLNeverExpires(t *testing.T) {
	c, clk := newFakeCache(8, 0)
	c.Put("k", 1)
	clk.advance(1000 * time.Hour)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("zero-TTL entry expired")
	}
}

// TestCacheSweep: Sweep drops both keep-rejected and expired entries.
// Capacity 64 gives every shard slack, so no key is LRU-evicted behind
// the test's back (tiny capacities stripe into single-entry shards).
func TestCacheSweep(t *testing.T) {
	c, clk := newFakeCache(64, time.Minute)
	c.Put("fresh", 1)
	c.Put("stale", 2)
	clk.advance(2 * time.Minute)
	c.Put("young", 3) // inserted after the advance: unexpired
	removed := c.Sweep(func(k string, _ int) bool { return k != "stale" })
	// "fresh" is expired, "stale" is keep-rejected (and also expired).
	if removed != 2 {
		t.Fatalf("swept %d entries, want 2", removed)
	}
	if _, ok := c.Get("young"); !ok {
		t.Fatal("sweep dropped a fresh kept entry")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Single shard (capacity 2 → ≤2 shards... force exactness with cap 2):
	// plancache stripes min(cap, 16) shards; with cap 2 each shard holds 1.
	c := New[int](2, 0)
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() > 2 {
		t.Fatalf("len = %d, want ≤ 2", c.Len())
	}
}

// TestCacheHitNoAllocs is the resultcache half of the hit-path allocation
// audit: a Get hit allocates nothing (the elp layer's copy-on-return is
// measured separately — the cache itself must be free).
func TestCacheHitNoAllocs(t *testing.T) {
	c := New[int](64, time.Hour)
	c.Put("hot", 7)
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := c.Get("hot"); !ok {
			t.Fatal("hot key missed")
		}
	})
	if allocs != 0 {
		t.Errorf("Get hit allocates %.1f objects/op, want 0", allocs)
	}
}

// waitersOf reports how many callers are blocked sharing the in-flight
// computation for key (-1 when no flight is registered). Test-side
// observation hook for building deterministic stampedes.
func (f *Flights[V]) waitersOf(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fl, ok := f.m[key]; ok {
		return int(fl.waiters.Load())
	}
	return -1
}

// awaitWaiters blocks until n callers are waiting on key's flight.
func awaitWaiters[V any](t *testing.T, f *Flights[V], key string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for f.waitersOf(key) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters joined %q after 10s, want %d", f.waitersOf(key), key, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestFlightsSingleflight pins the collapse property deterministically:
// the leader blocks inside fn until every follower is OBSERVED waiting
// on the flight (waiter counter), so all N callers must share ONE
// execution — no scheduler luck involved.
func TestFlightsSingleflight(t *testing.T) {
	var f Flights[int]
	const followers = 8
	var execs atomic.Int32
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, followers+1)
	shareds := make([]bool, followers+1)
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		v, shared, err := f.Do("k", func() (int, error) {
			execs.Add(1)
			<-release
			return 99, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], shareds[0] = v, shared
	}()
	// The leader's flight is registered before fn runs, and fn blocks on
	// release; wait for it, then launch the followers.
	awaitWaiters(t, &f, "k", 0)
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := f.Do("k", func() (int, error) {
				execs.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shareds[i] = v, shared
		}(i)
	}
	// Release the leader only once every follower is provably blocked on
	// the flight.
	awaitWaiters(t, &f, "k", followers)
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	sharedCount := 0
	for i, v := range results {
		if v != 99 {
			t.Fatalf("caller %d got %d, want 99", i, v)
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount != followers {
		t.Fatalf("%d callers shared, want %d (exactly one leader)", sharedCount, followers)
	}
}

// TestFlightsSequentialCallersEachExecute: Flights is not a cache — once
// a flight lands, the next caller starts a fresh one.
func TestFlightsSequentialCallersEachExecute(t *testing.T) {
	var f Flights[int]
	execs := 0
	for i := 0; i < 3; i++ {
		v, shared, err := f.Do("k", func() (int, error) {
			execs++
			return execs, nil
		})
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: v=%d shared=%v err=%v", i, v, shared, err)
		}
	}
	if execs != 3 {
		t.Fatalf("execs = %d, want 3", execs)
	}
}

// TestFlightsErrorShared: an error from the leader is delivered to every
// waiter; nothing is retained afterwards.
func TestFlightsErrorShared(t *testing.T) {
	var f Flights[int]
	boom := errors.New("boom")
	release := make(chan struct{})
	var wg sync.WaitGroup
	errsc := make(chan error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := f.Do("k", func() (int, error) {
			<-release
			return 0, boom
		})
		errsc <- err
	}()
	awaitWaiters(t, &f, "k", 0) // flight registered
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := f.Do("k", func() (int, error) { return 0, errors.New("second flight") })
			errsc <- err
		}()
	}
	awaitWaiters(t, &f, "k", 3) // all three provably share the flight
	close(release)
	wg.Wait()
	close(errsc)
	for err := range errsc {
		if err != boom {
			t.Fatalf("caller got err=%v, want shared %v", err, boom)
		}
	}
	if f.waitersOf("k") != -1 {
		t.Error("flight retained after completion")
	}
}

// TestFlightsPanicUnblocksWaiters: a panicking leader must not leave
// waiters hanging; they receive an error and the panic propagates.
func TestFlightsPanicUnblocksWaiters(t *testing.T) {
	var f Flights[int]
	waiterErr := make(chan error, 1)
	go func() {
		awaitWaiters(t, &f, "k", 0) // leader's flight registered
		_, _, err := f.Do("k", func() (int, error) { return 1, nil })
		waiterErr <- err
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		f.Do("k", func() (int, error) {
			awaitWaiters(t, &f, "k", 1) // panic only once the waiter shares the flight
			panic("kaboom")
		})
	}()
	select {
	case err := <-waiterErr:
		if err != errPanicked {
			t.Errorf("waiter got err=%v, want errPanicked", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter still blocked after leader panicked")
	}
}

// TestFlightsConcurrentDistinctKeys runs many keys concurrently under
// -race: flights of different keys never serialize each other's fn.
func TestFlightsConcurrentDistinctKeys(t *testing.T) {
	var f Flights[int]
	var wg sync.WaitGroup
	var total atomic.Int32
	for k := 0; k < 8; k++ {
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				v, _, err := f.Do(fmt.Sprintf("k%d", k), func() (int, error) {
					total.Add(1)
					return k, nil
				})
				if err != nil || v != k {
					t.Errorf("key %d: v=%d err=%v", k, v, err)
				}
			}(k)
		}
	}
	wg.Wait()
	if got := total.Load(); got < 8 || got > 32 {
		t.Fatalf("executions = %d, want within [8, 32]", got)
	}
}
