// Package resultcache provides the cross-query RESULT cache behind
// BlinkDB-Go's serving path: a sharded LRU from fully-bound query keys
// (template key + canonical parameter encoding, sqlparser.Normalize +
// ParamsKey) to completed answers, with per-entry wall-clock TTLs and a
// singleflight group that collapses concurrent misses of one key into a
// single execution.
//
// # Staleness contract
//
// A cached result is served only while BOTH freshness conditions hold;
// either failing makes the entry unservable:
//
//  1. Sample epochs. The caller (the ELP runtime) records, at execution
//     time, the catalog epoch of every table the answer depends on, and
//     re-validates them on every hit. Any epoch change — RefreshSamples,
//     a Maintain rebuild/drop, a table reload — means the sample data the
//     answer was computed from no longer exists, and the entry must not
//     be served. The cache itself never inspects values; epoch validation
//     is the caller's half of the contract (mirroring plancache).
//
//  2. TTL. An optional wall-clock bound on answer age, for deployments
//     where the base data keeps changing underneath unchanged samples
//     (epochs only track sample rebuilds, not upstream drift). A zero TTL
//     means entries live until evicted or epoch-invalidated.
//
// What a hit guarantees: the key binds the template AND the full
// parameter vector (every comparison literal, error/time bound,
// confidence and LIMIT), so — unlike the plan cache's template-level
// probe reuse, which answers NEW constants from cached probe statistics —
// a result-cache hit replays an exact prior query and returns a deep copy
// of the very answer that query computed. Within one epoch a replay is
// therefore bit-identical to re-executing (the executor is deterministic);
// copies are handed out (copy-on-return) so callers mutating a returned
// Result can never corrupt the cached canonical copy or other callers'
// views.
//
// The LRU itself is plancache.Cache (up to 16 mutex-striped shards,
// exact per-shard recency); this package layers entry deadlines and the
// singleflight group on top. The Get hit path performs no allocations.
package resultcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"blinkdb/internal/plancache"
)

// errPanicked is returned to singleflight waiters when the in-flight
// leader panicked before producing a value.
var errPanicked = errors.New("resultcache: in-flight computation panicked")

// entry pairs a cached value with its expiry deadline (zero = no TTL).
type entry[V any] struct {
	val      V
	deadline time.Time
}

// Cache is a sharded LRU with per-entry TTLs. A nil *Cache is a valid
// always-miss cache (the "result cache disabled" state), mirroring
// plancache's convention.
type Cache[V any] struct {
	lru *plancache.Cache[*entry[V]]
	ttl time.Duration
	// now is the clock; tests inject a fake to pin TTL expiry
	// deterministically.
	now func() time.Time
}

// New creates a cache holding up to capacity entries whose values expire
// ttl after insertion (ttl ≤ 0 disables expiry). Capacity ≤ 0 returns
// nil — the always-miss cache.
func New[V any](capacity int, ttl time.Duration) *Cache[V] {
	lru := plancache.New[*entry[V]](capacity)
	if lru == nil {
		return nil
	}
	if ttl < 0 {
		ttl = 0
	}
	return &Cache[V]{lru: lru, ttl: ttl, now: time.Now}
}

// Get returns the cached value and marks it most recently used. An entry
// past its deadline is removed and reported as a miss.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	e, ok := c.lru.Get(key)
	if !ok {
		return zero, false
	}
	if !e.deadline.IsZero() && c.now().After(e.deadline) {
		// Identity-checked eviction: between loading e and deleting it, a
		// concurrent Put may have refreshed the slot — an unconditional
		// delete would evict the FRESH entry and force re-execution at
		// every TTL boundary under concurrency.
		c.lru.DeleteIf(key, func(cur *entry[V]) bool { return cur == e })
		return zero, false
	}
	return e.val, true
}

// Put inserts or replaces the value for key, stamping a fresh deadline.
func (c *Cache[V]) Put(key string, v V) {
	if c == nil {
		return
	}
	e := &entry[V]{val: v}
	if c.ttl > 0 {
		e.deadline = c.now().Add(c.ttl)
	}
	c.lru.Put(key, e)
}

// PutWithDeadline inserts or replaces the value for key with an explicit
// absolute expiry deadline (zero = no TTL), bypassing the cache's
// configured TTL. Boot-time restore uses it to re-insert snapshotted
// entries under their ORIGINAL deadlines, so a restart never extends a
// cached answer's life beyond what the pre-restart process promised.
func (c *Cache[V]) PutWithDeadline(key string, v V, deadline time.Time) {
	if c == nil {
		return
	}
	c.lru.Put(key, &entry[V]{val: v, deadline: deadline})
}

// Range calls fn for every live (non-expired) entry together with its
// absolute expiry deadline (zero = no TTL), without touching recency
// order. Iteration stops early when fn returns false; fn must not call
// back into the cache. Expired-but-unswept entries are skipped, not
// removed (Range takes only read-side shard locks via the LRU).
func (c *Cache[V]) Range(fn func(key string, v V, deadline time.Time) bool) {
	if c == nil {
		return
	}
	now := c.now()
	c.lru.Range(func(k string, e *entry[V]) bool {
		if !e.deadline.IsZero() && now.After(e.deadline) {
			return true
		}
		return fn(k, e.val, e.deadline)
	})
}

// Delete removes the key if present.
func (c *Cache[V]) Delete(key string) {
	if c == nil {
		return
	}
	c.lru.Delete(key)
}

// Sweep removes every expired entry and every entry for which keep
// returns false, reporting how many were removed. The ELP runtime sweeps
// the moment it observes one epoch-stale entry, so answers computed
// against dead catalog snapshots never ride the LRU.
func (c *Cache[V]) Sweep(keep func(key string, v V) bool) int {
	if c == nil {
		return 0
	}
	now := c.now()
	return c.lru.Sweep(func(k string, e *entry[V]) bool {
		if !e.deadline.IsZero() && now.After(e.deadline) {
			return false
		}
		return keep(k, e.val)
	})
}

// Len returns the current entry count (expired-but-unswept entries
// included; they are dropped lazily on Get/Sweep).
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	return c.lru.Len()
}

// flight is one in-progress computation shared by concurrent callers.
type flight[V any] struct {
	done chan struct{}
	// waiters counts callers blocked on done (cold path only; the tests
	// use it to build deterministic stampedes).
	waiters atomic.Int32
	val     V
	err     error
}

// Flights collapses concurrent computations of one key: the first caller
// (the leader) runs the function; callers arriving while it is in flight
// block and share the leader's outcome instead of re-executing. The zero
// value is ready to use.
//
// Unlike a cache, Flights retains nothing after the leader returns — a
// caller arriving later starts a fresh flight. The ELP runtime pairs it
// with Cache: N concurrent misses of one cold key run the chosen view
// scan once, then the Put'd entry serves everyone else.
type Flights[V any] struct {
	mu sync.Mutex
	m  map[string]*flight[V]
}

// Do returns the result of fn for key, executing it at most once across
// concurrent callers. shared is false for the leader that executed fn and
// true for callers that received the leader's outcome. Errors are shared
// like values and cached by nobody. If the leader panics, the panic
// propagates on the leader and waiters receive a non-nil error.
func (f *Flights[V]) Do(key string, fn func() (V, error)) (v V, shared bool, err error) {
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[string]*flight[V])
	}
	if fl, ok := f.m[key]; ok {
		fl.waiters.Add(1)
		f.mu.Unlock()
		<-fl.done
		return fl.val, true, fl.err
	}
	fl := &flight[V]{done: make(chan struct{})}
	f.m[key] = fl
	f.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			fl.err = errPanicked // leader panicked: unblock waiters with an error
		}
		f.mu.Lock()
		delete(f.m, key)
		f.mu.Unlock()
		close(fl.done)
	}()
	fl.val, fl.err = fn()
	completed = true
	return fl.val, false, fl.err
}
