package maintenance

import (
	"math/rand"
	"testing"

	"blinkdb/internal/catalog"
	"blinkdb/internal/optimizer"
	"blinkdb/internal/sample"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
	"blinkdb/internal/zipf"
)

func buildTable(t testing.TB, rows int, citySkew float64, seed int64) *storage.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "os", Kind: types.KindString},
		types.Column{Name: "v", Kind: types.KindFloat},
	)
	tab := storage.NewTable("sessions", schema)
	b := storage.NewBuilder(tab, 512, 4, storage.OnDisk)
	rng := rand.New(rand.NewSource(seed))
	gen := zipf.NewGeneratorCDF(rng, citySkew, 150)
	oses := []string{"Win7", "OSX", "Linux"}
	for i := 0; i < rows; i++ {
		b.AppendRow(types.Row{
			types.Str("city" + string(rune('A'+gen.Next()%26))),
			types.Str(oses[rng.Intn(3)]),
			types.Float(rng.Float64() * 100),
		})
	}
	return b.Finish()
}

func templatesFor(weightCity, weightOS float64) []optimizer.TemplateSpec {
	return []optimizer.TemplateSpec{
		{Columns: types.NewColumnSet("city"), Weight: weightCity},
		{Columns: types.NewColumnSet("os"), Weight: weightOS},
	}
}

func TestSnapshotAndDrift(t *testing.T) {
	tab1 := buildTable(t, 20000, 1.5, 1)
	tab2 := buildTable(t, 20000, 1.5, 2)  // same distribution, new draw
	tab3 := buildTable(t, 20000, 1.05, 3) // much flatter skew

	cols := []string{"city", "os"}
	tpls := templatesFor(0.6, 0.4)
	s1, err := TakeSnapshot(tab1, cols, tpls)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := TakeSnapshot(tab2, cols, tpls)
	s3, _ := TakeSnapshot(tab3, cols, tpls)

	same := DataDrift(s1, s2)
	diff := DataDrift(s1, s3)
	if same > 0.08 {
		t.Errorf("same-distribution drift = %.3f, want small", same)
	}
	if diff < 0.2 {
		t.Errorf("cross-skew drift = %.3f, want large", diff)
	}
	if diff <= same {
		t.Error("different skew must drift more than a re-draw")
	}
}

func TestWorkloadDrift(t *testing.T) {
	tab := buildTable(t, 1000, 1.5, 1)
	s1, _ := TakeSnapshot(tab, nil, templatesFor(0.9, 0.1))
	s2, _ := TakeSnapshot(tab, nil, templatesFor(0.9, 0.1))
	s3, _ := TakeSnapshot(tab, nil, templatesFor(0.1, 0.9))
	if WorkloadDrift(s1, s2) > 1e-9 {
		t.Error("identical workloads should not drift")
	}
	if WorkloadDrift(s1, s3) < 0.5 {
		t.Errorf("flipped workload drift = %.3f", WorkloadDrift(s1, s3))
	}
}

func TestSnapshotUnknownColumn(t *testing.T) {
	tab := buildTable(t, 100, 1.5, 1)
	if _, err := TakeSnapshot(tab, []string{"bogus"}, nil); err == nil {
		t.Error("unknown column should error")
	}
}

func TestNeedsResolve(t *testing.T) {
	tab := buildTable(t, 20000, 1.5, 1)
	cat := catalog.New()
	cat.Register(tab)
	m := NewMaintainer(cat, "sessions", optimizer.Config{K: 100, BudgetBytes: tab.Bytes(), ChurnFrac: 0.5})

	cur, _ := TakeSnapshot(tab, []string{"city"}, templatesFor(0.6, 0.4))
	if !m.NeedsResolve(cur) {
		t.Error("no baseline: must resolve")
	}
	m.Observe(cur)
	if m.NeedsResolve(cur) {
		t.Error("identical snapshot should not trigger")
	}
	flat := buildTable(t, 20000, 1.05, 9)
	drifted, _ := TakeSnapshot(flat, []string{"city"}, templatesFor(0.6, 0.4))
	if !m.NeedsResolve(drifted) {
		t.Error("skew change should trigger")
	}
	shifted, _ := TakeSnapshot(tab, []string{"city"}, templatesFor(0.1, 0.9))
	if !m.NeedsResolve(shifted) {
		t.Error("workload change should trigger")
	}
}

func TestResolveAndApplyFirstTime(t *testing.T) {
	tab := buildTable(t, 20000, 1.6, 1)
	cat := catalog.New()
	cat.Register(tab)
	m := NewMaintainer(cat, "sessions", optimizer.Config{
		K: 100, CapRatio: 4, Resolutions: 2, MinCap: 5,
		BudgetBytes: tab.Bytes(), ChurnFrac: 0.3,
		Build: sample.BuildConfig{Seed: 1},
	})
	diff, err := m.Resolve(templatesFor(0.7, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Build) == 0 || len(diff.Drop) != 0 || len(diff.Keep) != 0 {
		t.Fatalf("first resolve diff = %+v", diff)
	}
	if !diff.Changed() {
		t.Error("first diff should change things")
	}
	if err := m.Apply(diff); err != nil {
		t.Fatal(err)
	}
	entry, _ := cat.Lookup("sessions")
	if len(entry.Stratified()) != len(diff.Build) {
		t.Errorf("families = %d, want %d", len(entry.Stratified()), len(diff.Build))
	}

	// Second resolve with unchanged inputs: nothing to do.
	diff2, err := m.Resolve(templatesFor(0.7, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if diff2.Changed() {
		t.Errorf("stable workload should not churn: %+v", diff2)
	}
}

func TestChurnZeroFreezesConfiguration(t *testing.T) {
	tab := buildTable(t, 20000, 1.6, 1)
	cat := catalog.New()
	cat.Register(tab)
	cfg := optimizer.Config{
		K: 100, CapRatio: 4, Resolutions: 2, MinCap: 5,
		BudgetBytes: tab.Bytes(), ChurnFrac: -1,
		Build: sample.BuildConfig{Seed: 1},
	}
	m := NewMaintainer(cat, "sessions", cfg)
	diff, err := m.Resolve(templatesFor(0.7, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(diff); err != nil {
		t.Fatal(err)
	}
	// Flip the workload but set r = 0: nothing may change.
	m.Cfg.ChurnFrac = 0
	diff2, err := m.Resolve(templatesFor(0.05, 0.95))
	if err != nil {
		t.Fatal(err)
	}
	if diff2.Changed() {
		t.Errorf("r=0 must freeze the sample set: build=%v drop=%v", diff2.Build, diff2.Drop)
	}
	// r = 1 may adapt.
	m.Cfg.ChurnFrac = 1
	diff3, err := m.Resolve(templatesFor(0.05, 0.95))
	if err != nil {
		t.Fatal(err)
	}
	_ = diff3 // adaptation depends on storage weights; just must not error
}

func TestRefresherRotatesAndReplaces(t *testing.T) {
	tab := buildTable(t, 10000, 1.5, 1)
	cat := catalog.New()
	cat.Register(tab)
	f1, err := sample.Build(tab, types.NewColumnSet("city"), []int64{10, 100}, sample.BuildConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddFamily("sessions", f1); err != nil {
		t.Fatal(err)
	}
	uf, err := sample.BuildUniform(tab, []int64{100, 1000}, sample.BuildConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddFamily("sessions", uf); err != nil {
		t.Fatal(err)
	}

	r := NewRefresher(cat, "sessions", sample.BuildConfig{Seed: 100})
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		phi, ok, err := r.RefreshNext()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("refresh should find families")
		}
		seen[phi.Key()]++
	}
	// Round-robin over 2 families, twice each.
	if seen["city"] != 2 || seen[""] != 2 {
		t.Errorf("rotation = %v", seen)
	}
	// The replaced family object must differ from the original.
	entry, _ := cat.Lookup("sessions")
	for _, f := range entry.Families {
		if f == f1 || f == uf {
			t.Error("refresh did not replace the family object")
		}
	}
	// Structure is preserved: same caps, valid.
	for _, f := range entry.Families {
		if err := f.Validate(); err != nil {
			t.Errorf("refreshed family invalid: %v", err)
		}
	}
}

func TestRefresherEmptyCatalog(t *testing.T) {
	tab := buildTable(t, 100, 1.5, 1)
	cat := catalog.New()
	cat.Register(tab)
	r := NewRefresher(cat, "sessions", sample.BuildConfig{})
	if _, ok, err := r.RefreshNext(); err != nil || ok {
		t.Errorf("empty catalog: ok=%v err=%v", ok, err)
	}
	r2 := NewRefresher(cat, "nope", sample.BuildConfig{})
	if _, _, err := r2.RefreshNext(); err == nil {
		t.Error("unknown table should error")
	}
}
