// Package maintenance implements BlinkDB's sample upkeep:
//
//   - drift detection (§2.2.1 "Sample Maintenance", §3.2.3): snapshots of
//     per-column frequency histograms and template weights are compared
//     over time; significant divergence triggers a re-solve;
//   - churn-constrained re-optimization (§3.2.3, constraint (5)): the
//     optimizer is re-run with the currently-built families as δⱼ inputs
//     and the administrator's churn fraction r, yielding a build/drop diff;
//   - background refresh (§4.5): periodically re-drawing each family with
//     a fresh seed so unrepresentative samples get replaced. Refresh is
//     incremental — one family per tick — mirroring the paper's
//     low-priority background task.
package maintenance

import (
	"fmt"
	"math"
	"sort"

	"blinkdb/internal/catalog"
	"blinkdb/internal/optimizer"
	"blinkdb/internal/sample"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// Snapshot captures the statistics drift detection compares.
type Snapshot struct {
	// Rows is the table size at snapshot time.
	Rows int64
	// ColumnHists maps column name → (value key → frequency), truncated
	// to the TopK most frequent values.
	ColumnHists map[string]map[string]int64
	// TemplateWeights maps template column-set key → weight.
	TemplateWeights map[string]float64
}

// TopK bounds the per-column histogram size in snapshots.
const TopK = 256

// TakeSnapshot measures the table's frequency histograms on the given
// columns plus the workload's template weights.
func TakeSnapshot(tab *storage.Table, columns []string, templates []optimizer.TemplateSpec) (*Snapshot, error) {
	s := &Snapshot{
		Rows:            tab.NumRows(),
		ColumnHists:     map[string]map[string]int64{},
		TemplateWeights: map[string]float64{},
	}
	var idxs []int
	for _, c := range columns {
		i, err := tab.Schema.MustIndex(c)
		if err != nil {
			return nil, fmt.Errorf("maintenance: %w", err)
		}
		idxs = append(idxs, i)
		s.ColumnHists[c] = map[string]int64{}
	}
	// Per-column histograms read values straight out of either layout.
	for _, b := range tab.Blocks {
		for ri, n := 0, b.NumRows(); ri < n; ri++ {
			for k, i := range idxs {
				s.ColumnHists[columns[k]][b.ValueAt(ri, i).Key()]++
			}
		}
	}
	for c := range s.ColumnHists {
		s.ColumnHists[c] = truncateHist(s.ColumnHists[c], TopK)
	}
	for _, t := range templates {
		s.TemplateWeights[t.Columns.Key()] += t.Weight
	}
	return s, nil
}

func truncateHist(h map[string]int64, k int) map[string]int64 {
	if len(h) <= k {
		return h
	}
	type kv struct {
		key string
		n   int64
	}
	all := make([]kv, 0, len(h))
	for key, n := range h {
		all = append(all, kv{key, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].key < all[j].key
	})
	out := make(map[string]int64, k)
	for _, e := range all[:k] {
		out[e.key] = e.n
	}
	return out
}

// DataDrift returns the worst per-column total-variation distance between
// the normalized frequency histograms of two snapshots, in [0, 1].
func DataDrift(old, cur *Snapshot) float64 {
	worst := 0.0
	for col, oldH := range old.ColumnHists {
		curH, ok := cur.ColumnHists[col]
		if !ok {
			worst = 1
			continue
		}
		if d := tvDistance(oldH, curH); d > worst {
			worst = d
		}
	}
	return worst
}

// WorkloadDrift returns the total-variation distance between template
// weight distributions.
func WorkloadDrift(old, cur *Snapshot) float64 {
	return tvDistanceF(old.TemplateWeights, cur.TemplateWeights)
}

func tvDistance(a, b map[string]int64) float64 {
	af := make(map[string]float64, len(a))
	bf := make(map[string]float64, len(b))
	var at, bt float64
	for k, v := range a {
		af[k] = float64(v)
		at += float64(v)
	}
	for k, v := range b {
		bf[k] = float64(v)
		bt += float64(v)
	}
	if at > 0 {
		for k := range af {
			af[k] /= at
		}
	}
	if bt > 0 {
		for k := range bf {
			bf[k] /= bt
		}
	}
	return tvDistanceF(af, bf)
}

func tvDistanceF(a, b map[string]float64) float64 {
	var at, bt float64
	for _, v := range a {
		at += v
	}
	for _, v := range b {
		bt += v
	}
	d := 0.0
	seen := map[string]bool{}
	for k, v := range a {
		va := v
		if at > 0 {
			va /= at
		}
		vb := 0.0
		if w, ok := b[k]; ok {
			vb = w
			if bt > 0 {
				vb /= bt
			}
		}
		d += math.Abs(va - vb)
		seen[k] = true
	}
	for k, v := range b {
		if seen[k] {
			continue
		}
		vb := v
		if bt > 0 {
			vb /= bt
		}
		d += vb
	}
	return d / 2
}

// Diff is the outcome of a churn-constrained re-solve.
type Diff struct {
	// Build lists column sets to construct.
	Build []types.ColumnSet
	// Drop lists column sets to remove.
	Drop []types.ColumnSet
	// Keep lists column sets left untouched.
	Keep []types.ColumnSet
	// Plan is the underlying optimizer output.
	Plan *optimizer.Plan
}

// Changed reports whether the diff performs any work.
func (d *Diff) Changed() bool { return len(d.Build) > 0 || len(d.Drop) > 0 }

// Maintainer re-solves the sample-selection problem for one table and
// applies the resulting diff to the catalog.
type Maintainer struct {
	cat   *catalog.Catalog
	table string
	// Cfg is the optimizer configuration; ChurnFrac is the r of (5).
	Cfg optimizer.Config
	// DataDriftThreshold and WorkloadDriftThreshold trigger NeedsResolve.
	DataDriftThreshold     float64
	WorkloadDriftThreshold float64

	last *Snapshot
}

// NewMaintainer creates a maintainer. Thresholds default to 0.1.
func NewMaintainer(cat *catalog.Catalog, table string, cfg optimizer.Config) *Maintainer {
	return &Maintainer{
		cat: cat, table: table, Cfg: cfg,
		DataDriftThreshold:     0.1,
		WorkloadDriftThreshold: 0.1,
	}
}

// Observe records a snapshot baseline.
func (m *Maintainer) Observe(s *Snapshot) { m.last = s }

// NeedsResolve reports whether the current statistics have drifted enough
// from the last observed snapshot to warrant re-solving.
func (m *Maintainer) NeedsResolve(cur *Snapshot) bool {
	if m.last == nil {
		return true
	}
	return DataDrift(m.last, cur) > m.DataDriftThreshold ||
		WorkloadDrift(m.last, cur) > m.WorkloadDriftThreshold
}

// Resolve re-runs the optimizer with the currently-built families as the
// δⱼ inputs and returns the build/drop diff. It does not modify the
// catalog; call Apply.
func (m *Maintainer) Resolve(templates []optimizer.TemplateSpec) (*Diff, error) {
	entry, err := m.cat.Lookup(m.table)
	if err != nil {
		return nil, err
	}
	cfg := m.Cfg
	cfg.Existing = nil
	existing := map[string]bool{}
	for _, f := range entry.Stratified() {
		cfg.Existing = append(cfg.Existing, f.Phi)
		existing[f.Phi.Key()] = true
	}
	if len(cfg.Existing) == 0 {
		// First solve: the paper forces r = 1 (§3.2.3).
		cfg.ChurnFrac = -1
	}
	plan, err := optimizer.ChooseSamples(entry.Table, templates, cfg)
	if err != nil {
		return nil, err
	}
	diff := &Diff{Plan: plan}
	chosen := map[string]bool{}
	for _, c := range plan.Chosen {
		chosen[c.Phi.Key()] = true
		if existing[c.Phi.Key()] {
			diff.Keep = append(diff.Keep, c.Phi)
		} else {
			diff.Build = append(diff.Build, c.Phi)
		}
	}
	for _, f := range entry.Stratified() {
		if !chosen[f.Phi.Key()] {
			diff.Drop = append(diff.Drop, f.Phi)
		}
	}
	return diff, nil
}

// Apply executes a diff: builds new families and drops removed ones.
func (m *Maintainer) Apply(diff *Diff) error {
	entry, err := m.cat.Lookup(m.table)
	if err != nil {
		return err
	}
	cfg := m.Cfg
	caps := sample.GeometricCaps(capOf(cfg), capRatioOf(cfg), resolutionsOf(cfg), minCapOf(cfg))
	for _, phi := range diff.Build {
		f, err := sample.Build(entry.Table, phi, caps, cfg.Build)
		if err != nil {
			return err
		}
		if err := m.cat.AddFamily(m.table, f); err != nil {
			return err
		}
	}
	for _, phi := range diff.Drop {
		if err := m.cat.DropFamily(m.table, phi); err != nil {
			return err
		}
	}
	return nil
}

// The optimizer.Config zero-value defaults are private to that package;
// mirror them here so Apply builds with the same ladder.
func capOf(c optimizer.Config) int64 {
	if c.K <= 0 {
		return 100000
	}
	return c.K
}

func capRatioOf(c optimizer.Config) float64 {
	if c.CapRatio <= 1 {
		return 2
	}
	return c.CapRatio
}

func resolutionsOf(c optimizer.Config) int {
	if c.Resolutions <= 0 {
		return 3
	}
	return c.Resolutions
}

func minCapOf(c optimizer.Config) int64 {
	if c.MinCap <= 0 {
		return 10
	}
	return c.MinCap
}

// Refresher re-draws sample families with fresh randomness, one per call —
// the §4.5 low-priority background replacement task.
type Refresher struct {
	cat   *catalog.Catalog
	table string
	cfg   sample.BuildConfig
	next  int
	seq   int64
}

// NewRefresher creates a refresher; cfg.Seed seeds the re-draw sequence.
func NewRefresher(cat *catalog.Catalog, table string, cfg sample.BuildConfig) *Refresher {
	return &Refresher{cat: cat, table: table, cfg: cfg}
}

// RefreshNext rebuilds the next family in round-robin order with a new
// seed and swaps it into the catalog. Returns the refreshed column set, or
// false when the table has no families.
func (r *Refresher) RefreshNext() (types.ColumnSet, bool, error) {
	entry, err := r.cat.Lookup(r.table)
	if err != nil {
		return types.ColumnSet{}, false, err
	}
	if len(entry.Families) == 0 {
		return types.ColumnSet{}, false, nil
	}
	idx := r.next % len(entry.Families)
	r.next++
	old := entry.Families[idx]
	cfg := r.cfg
	r.seq++
	cfg.Seed = r.cfg.Seed + r.seq*7919 // distinct deterministic seeds
	fresh, err := sample.Build(entry.Table, old.Phi, old.Caps, cfg)
	if err != nil {
		return types.ColumnSet{}, false, err
	}
	if err := r.cat.AddFamily(r.table, fresh); err != nil {
		return types.ColumnSet{}, false, err
	}
	return old.Phi, true, nil
}
