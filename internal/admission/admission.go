// Package admission implements load shedding for the serving layer: a
// bounded FIFO queue in front of a fixed number of execution slots, with
// the queue bounded not only by count but by *predicted seconds of
// backlog*. BlinkDB's contract is bounded response time; a queue that
// admits an hour of work silently converts "5% error in 2 seconds" into
// "5% error in an hour". Pricing admission in predicted seconds keeps
// the door honest: when the backlog exceeds what the configured
// concurrency can drain within MaxBacklogSeconds, new work is shed
// immediately with a Retry-After estimate instead of being queued into a
// latency cliff.
//
// Each query's predicted cost comes from the template's EWMA of observed
// wall seconds (fed back by Ticket.Release), falling back to the
// caller-supplied prediction — in blinkdb-server, the ELP's simulated-
// cluster latency scaled by the telemetry registry's predicted-over-
// observed calibration — for templates never seen before. The controller
// never scans anything itself: a shed request costs one mutex
// acquisition, which is what lets the server reject a 2× overload burst
// before any planning or scanning happens.
package admission

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"
)

// Config bounds the controller. The zero value of any field selects its
// default.
type Config struct {
	// MaxConcurrent is the number of queries allowed to execute at once
	// (default 1 — the simulated cluster is CPU-bound and single-tenant
	// per core).
	MaxConcurrent int
	// MaxQueue is the number of waiters allowed behind the running set
	// (default 16). Arrivals beyond it are shed regardless of backlog.
	MaxQueue int
	// MaxBacklogSeconds caps the predicted seconds of admitted-but-
	// unfinished work (running + queued). Arrivals that would push the
	// backlog past it are shed. Default 30; negative disables the cap.
	MaxBacklogSeconds float64
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// ShedError reports a rejected admission: the predicted backlog or queue
// bound was exceeded. RetryAfter estimates when capacity frees up
// (backlog divided by drain rate, at least a second) — blinkdb-server
// maps it onto the Retry-After header of a 429 response.
type ShedError struct {
	RetryAfter time.Duration
	// Queued and BacklogSeconds describe the state that shed the request.
	Queued         int
	BacklogSeconds float64
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: overloaded (%d queued, %.1fs predicted backlog), retry after %s",
		e.Queued, e.BacklogSeconds, e.RetryAfter)
}

// Ticket is a granted execution slot. The holder must call Release
// exactly once when the query finishes (success, error or cancellation),
// reporting the observed wall seconds so the per-template cost model
// learns.
type Ticket struct {
	c    *Controller
	key  string
	cost float64
	// WaitSeconds is how long the request queued before its grant (0 for
	// immediate admission).
	WaitSeconds float64
}

// waiter is one queued Admit call. grant is closed (exactly once, under
// the controller mutex) when a slot transfers to it.
type waiter struct {
	grant   chan struct{}
	cost    float64
	granted bool
}

// Controller is the admission gate. Use New; the zero value is not
// ready.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	running int
	queue   []*waiter
	// backlog is the predicted seconds of admitted-but-unfinished work:
	// the sum of cost over running tickets and queued waiters.
	backlog float64
	// ewma holds the per-template cost model: exponentially weighted
	// moving average of observed wall seconds, α = 0.3. Bounded to
	// maxKeys templates; unseen keys beyond that use the caller's
	// prediction (the model degrades, it doesn't grow without bound).
	ewma map[string]float64
}

const (
	ewmaAlpha = 0.3
	maxKeys   = 4096
	// minCost floors every prediction so a flood of "free" queries still
	// consumes backlog budget.
	minCost = 1e-3
)

// New returns a Controller for cfg (zero fields get defaults).
func New(cfg Config) *Controller {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16
	}
	if cfg.MaxBacklogSeconds == 0 {
		cfg.MaxBacklogSeconds = 30
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Controller{cfg: cfg, ewma: make(map[string]float64)}
}

// predictedCost prices one admission: the learned EWMA for the template
// when present, the caller's prediction otherwise, floored at minCost.
func (c *Controller) predictedCost(key string, predictedSeconds float64) float64 {
	cost := predictedSeconds
	if learned, ok := c.ewma[key]; ok {
		cost = learned
	}
	if cost < minCost {
		cost = minCost
	}
	return cost
}

// Admit requests an execution slot for a query of template key with the
// given predicted wall seconds (used only until the template's observed
// EWMA exists). It returns a granted Ticket, a *ShedError when the
// request is rejected by the queue or backlog bound, or ctx.Err() when
// the context is cancelled while queued. Admit never blocks when a shed
// decision applies — overload is rejected immediately.
func (c *Controller) Admit(ctx context.Context, key string, predictedSeconds float64) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	cost := c.predictedCost(key, predictedSeconds)
	if c.running < c.cfg.MaxConcurrent && len(c.queue) == 0 {
		c.running++
		c.backlog += cost
		c.mu.Unlock()
		return &Ticket{c: c, key: key, cost: cost}, nil
	}
	if len(c.queue) >= c.cfg.MaxQueue ||
		(c.cfg.MaxBacklogSeconds > 0 && c.backlog+cost > c.cfg.MaxBacklogSeconds) {
		shed := &ShedError{
			RetryAfter:     c.retryAfterLocked(),
			Queued:         len(c.queue),
			BacklogSeconds: c.backlog,
		}
		c.mu.Unlock()
		return nil, shed
	}
	w := &waiter{grant: make(chan struct{}), cost: cost}
	c.queue = append(c.queue, w)
	c.backlog += cost
	c.mu.Unlock()

	enqueued := c.cfg.Now()
	select {
	case <-w.grant:
		return &Ticket{c: c, key: key, cost: cost,
			WaitSeconds: c.cfg.Now().Sub(enqueued).Seconds()}, nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// Lost the race: a Release transferred the slot to us after
			// ctx fired. Hand the slot onward as if we released instantly,
			// with no observation (we never ran).
			c.releaseLocked(w.cost)
			c.mu.Unlock()
			return nil, ctx.Err()
		}
		for i, q := range c.queue {
			if q == w {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				break
			}
		}
		c.backlog -= w.cost
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// retryAfterLocked estimates when shedding stops: the time the configured
// concurrency needs to drain the current predicted backlog, rounded UP to
// whole seconds (the granularity HTTP Retry-After speaks) with a 1s
// floor. Rounding down would invite clients back before the backlog
// drains — a 1.9s estimate must say 2, never 1.
func (c *Controller) retryAfterLocked() time.Duration {
	seconds := c.backlog / float64(c.cfg.MaxConcurrent)
	d := time.Duration(math.Ceil(seconds)) * time.Second
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Release returns the ticket's slot and feeds the observed wall seconds
// back into the template's cost EWMA. Exactly one call per ticket;
// observedSeconds ≤ 0 skips the model update (cancelled or failed
// queries don't teach costs).
func (t *Ticket) Release(observedSeconds float64) {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if observedSeconds > 0 {
		if prev, ok := c.ewma[t.key]; ok {
			c.ewma[t.key] = (1-ewmaAlpha)*prev + ewmaAlpha*observedSeconds
		} else if len(c.ewma) < maxKeys {
			c.ewma[t.key] = observedSeconds
		}
	}
	c.releaseLocked(t.cost)
}

// releaseLocked frees one slot's backlog and transfers the slot to the
// queue head if someone is waiting (FIFO). Caller holds c.mu.
func (c *Controller) releaseLocked(cost float64) {
	c.backlog -= cost
	if c.backlog < 0 {
		c.backlog = 0
	}
	if len(c.queue) > 0 {
		w := c.queue[0]
		c.queue = c.queue[1:]
		w.granted = true
		close(w.grant)
		// running is unchanged: the slot moved from the releaser to w.
		return
	}
	c.running--
}

// ExportEWMA returns a copy of the per-template cost model (template key
// → EWMA of observed wall seconds). The warmup snapshot persists it so a
// restarted server prices admissions from learned costs immediately,
// instead of trusting caller predictions until each template is
// re-observed.
func (c *Controller) ExportEWMA() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.ewma))
	for k, v := range c.ewma {
		out[k] = v
	}
	return out
}

// ImportEWMA seeds the cost model with previously learned costs. Keys
// already observed in THIS process win (live observations are newer than
// any snapshot); non-positive costs are ignored; the maxKeys bound is
// respected. Intended for boot-time warmup restore.
func (c *Controller) ImportEWMA(m map[string]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range m {
		if v <= 0 {
			continue
		}
		if _, ok := c.ewma[k]; ok {
			continue
		}
		if len(c.ewma) >= maxKeys {
			break
		}
		c.ewma[k] = v
	}
}

// Snapshot reports the controller's instantaneous state (for /stats).
type Snapshot struct {
	Running        int
	Queued         int
	BacklogSeconds float64
}

// Snapshot returns the current running/queued/backlog state.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{Running: c.running, Queued: len(c.queue), BacklogSeconds: c.backlog}
}
