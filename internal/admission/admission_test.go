package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmitImmediateWhenIdle pins the fast path: an idle controller
// grants without queuing and reports zero wait.
func TestAdmitImmediateWhenIdle(t *testing.T) {
	c := New(Config{MaxConcurrent: 1})
	tk, err := c.Admit(context.Background(), "q1", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tk.WaitSeconds != 0 {
		t.Fatalf("immediate admission must not report queue wait, got %v", tk.WaitSeconds)
	}
	if s := c.Snapshot(); s.Running != 1 || s.Queued != 0 {
		t.Fatalf("snapshot after grant: %+v", s)
	}
	tk.Release(0.1)
	if s := c.Snapshot(); s.Running != 0 || s.BacklogSeconds != 0 {
		t.Fatalf("snapshot after release: %+v", s)
	}
}

// TestQueueBoundSheds pins count-based shedding: with the single slot
// taken and the queue full, the next arrival gets a ShedError carrying a
// Retry-After of at least a second, and is never blocked.
func TestQueueBoundSheds(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 1, MaxBacklogSeconds: -1})
	running, err := c.Admit(context.Background(), "hold", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	queuedDone := make(chan error, 1)
	go func() {
		tk, err := c.Admit(context.Background(), "queued", 0.2)
		if tk != nil {
			tk.Release(0)
		}
		queuedDone <- err
	}()
	// Wait until the goroutine is actually queued.
	for i := 0; ; i++ {
		if c.Snapshot().Queued == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = c.Admit(context.Background(), "shed-me", 0.2)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("full queue must shed, got err=%v", err)
	}
	if shed.RetryAfter < time.Second {
		t.Fatalf("RetryAfter must be at least 1s, got %v", shed.RetryAfter)
	}
	running.Release(0.1)
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued waiter should have been granted on release: %v", err)
	}
}

// TestBacklogBoundSheds pins seconds-based shedding: predicted backlog
// above MaxBacklogSeconds sheds even though the count bound has room.
func TestBacklogBoundSheds(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 100, MaxBacklogSeconds: 5})
	if _, err := c.Admit(context.Background(), "big", 4.0); err != nil {
		t.Fatal(err)
	}
	// 4.0 running + 2.0 candidate > 5.0 cap → shed, with queue empty.
	_, err := c.Admit(context.Background(), "next", 2.0)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("backlog overflow must shed, got err=%v", err)
	}
	if shed.BacklogSeconds != 4.0 {
		t.Fatalf("shed error should report the 4s backlog, got %v", shed.BacklogSeconds)
	}
	// A cheaper query still fits under the cap → queued, not shed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		tk, err := c.Admit(ctx, "small", 0.5)
		if tk != nil {
			tk.Release(0)
		}
		done <- err
	}()
	for i := 0; ; i++ {
		if c.Snapshot().Queued == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("cheap query should queue, not shed")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter must return ctx.Err, got %v", err)
	}
	// The cancelled waiter's cost must leave the backlog.
	if s := c.Snapshot(); s.Queued != 0 || s.BacklogSeconds != 4.0 {
		t.Fatalf("cancel must remove waiter and its backlog: %+v", s)
	}
}

// TestEWMAOverridesPrediction pins the cost model: after a template has
// observed releases, the EWMA prices admission, not the caller's
// prediction.
func TestEWMAOverridesPrediction(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxBacklogSeconds: 5})
	tk, err := c.Admit(context.Background(), "q", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	tk.Release(10.0) // observed: 10s — the template is expensive
	// Re-admitting the same template must now price at ~10s and blow the
	// 5s backlog cap even though the caller predicts 1ms.
	tk2, err := c.Admit(context.Background(), "q", 0.001)
	if err != nil {
		t.Fatal(err) // first slot is free, so it runs — backlog 10s
	}
	_, err = c.Admit(context.Background(), "q", 0.001)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("EWMA-priced backlog must shed, got %v", err)
	}
	tk2.Release(10.0)
}

// TestFIFOOrder pins grant ordering: waiters are granted in arrival
// order when slots free up.
func TestFIFOOrder(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 8, MaxBacklogSeconds: -1})
	first, err := c.Admit(context.Background(), "hold", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		// Serialize enqueue so arrival order is deterministic.
		ready := make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			go func() {
				for c.Snapshot().Queued <= i {
					time.Sleep(time.Millisecond)
				}
				close(ready)
			}()
			tk, err := c.Admit(context.Background(), "w", 0.1)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			tk.Release(0.01)
		}(i)
		<-ready
	}
	first.Release(0.01)
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grants out of FIFO order: %v", order)
		}
	}
}

// TestEWMAExportImport: the learned cost model round-trips through the
// warmup snapshot, live observations beat imported ones, and junk
// (non-positive costs) is dropped.
func TestEWMAExportImport(t *testing.T) {
	c := New(Config{MaxConcurrent: 2})
	for i, obs := range []float64{1.0, 3.0} {
		tk, err := c.Admit(context.Background(), "t"+string(rune('A'+i)), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		tk.Release(obs)
	}
	exported := c.ExportEWMA()
	if len(exported) != 2 || exported["tA"] != 1.0 || exported["tB"] != 3.0 {
		t.Fatalf("exported %v, want tA:1 tB:3", exported)
	}
	// Mutating the export must not reach the controller.
	exported["tA"] = 99

	c2 := New(Config{MaxConcurrent: 2})
	tk, err := c2.Admit(context.Background(), "tB", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tk.Release(7.0) // live observation, present before import
	c2.ImportEWMA(map[string]float64{"tA": 1.0, "tB": 3.0, "bad": -1})
	got := c2.ExportEWMA()
	if got["tA"] != 1.0 {
		t.Errorf("tA = %v, want imported 1.0", got["tA"])
	}
	if got["tB"] != 7.0 {
		t.Errorf("tB = %v, want live 7.0 to beat imported 3.0", got["tB"])
	}
	if _, ok := got["bad"]; ok {
		t.Errorf("non-positive imported cost was kept")
	}
}

// TestRetryAfterRoundsUp pins the shed backoff estimate: fractional
// backlogs must round UP to whole seconds (1.4s of backlog → "retry in
// 2"), never down — a truncated hint invites clients back before the
// backlog can have drained.
func TestRetryAfterRoundsUp(t *testing.T) {
	cases := []struct {
		backlog float64
		want    time.Duration
	}{
		{0.2, time.Second},     // sub-second floors at the Retry-After granularity
		{1.0, time.Second},     // exact seconds stay exact
		{1.4, 2 * time.Second}, // pre-fix Round() said 1s here
		{1.9, 2 * time.Second},
		{2.0, 2 * time.Second},
	}
	for _, tc := range cases {
		c := New(Config{MaxConcurrent: 1, MaxQueue: 100, MaxBacklogSeconds: 0.01})
		if _, err := c.Admit(context.Background(), "running", tc.backlog); err != nil {
			t.Fatal(err)
		}
		_, err := c.Admit(context.Background(), "next", 1.0)
		var shed *ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("backlog %v: expected shed, got %v", tc.backlog, err)
		}
		if shed.RetryAfter != tc.want {
			t.Errorf("backlog %vs: RetryAfter = %v, want %v", tc.backlog, shed.RetryAfter, tc.want)
		}
	}
}
