package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"blinkdb/internal/storage"
)

// streamParts builds the per-range partials for one query, the input for
// the streaming-merge tests.
func streamParts(t testing.TB, tab *storage.Table, src string) (*Plan, []*Partial) {
	t.Helper()
	in := FromTable(tab)
	p := compile(t, src, tab.Schema)
	ranges := storage.PartitionBlocks(len(tab.Blocks), maxPartials)
	parts := make([]*Partial, len(ranges))
	for i, r := range ranges {
		parts[i] = RunPartial(p, in, r.Lo, r.Hi)
	}
	return p, parts
}

// TestMergerArrivalOrderEquivalence is the streaming-merge acceptance
// test: delivering partials in ANY arrival order must reproduce the
// in-order fold bit for bit, because the Merger buffers out-of-order
// deliveries and folds strictly by partition index.
func TestMergerArrivalOrderEquivalence(t *testing.T) {
	tab := randomWeightedTable(t, 21, 6000, 64)
	for _, src := range equivalenceQueries {
		p, parts := streamParts(t, tab, src)
		want := MergePartials(p, parts, 0.95)

		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 5; trial++ {
			order := rng.Perm(len(parts))
			m := NewMerger(p, len(parts))
			for _, i := range order {
				m.Add(i, parts[i])
			}
			got := m.Finish(0.95)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("query %q: arrival order %v diverged from in-order fold", src, order)
			}
		}

		// Nil (empty-range) deliveries and partials withheld until Finish
		// must also fold in index order.
		m := NewMerger(p, len(parts)+2)
		m.Add(len(parts), nil) // trailing empty range, delivered early
		for i := len(parts) - 1; i >= 1; i-- {
			m.Add(i, parts[i])
		}
		m.Add(0, parts[0])
		// index len(parts)+1 never delivered: Finish skips it.
		if got := m.Finish(0.95); !reflect.DeepEqual(want, got) {
			t.Fatalf("query %q: nil/withheld deliveries diverged", src)
		}
	}
}

// TestMergerReleasesFoldedPartials pins the memory property that
// motivates streaming: once the contiguous prefix is folded, the merger
// must not retain those partials.
func TestMergerReleasesFoldedPartials(t *testing.T) {
	tab := randomWeightedTable(t, 22, 3000, 64)
	p, parts := streamParts(t, tab, `SELECT COUNT(*), AVG(sessiontime) FROM sessions GROUP BY city`)
	if len(parts) < 3 {
		t.Skip("need ≥3 ranges")
	}
	m := NewMerger(p, len(parts))
	// Out-of-order delivery: index 1 waits for index 0.
	m.Add(1, parts[1])
	if m.wait[1] == nil {
		t.Fatal("out-of-order partial must be buffered")
	}
	m.Add(0, parts[0])
	if m.wait[0] != nil || m.wait[1] != nil {
		t.Fatal("folded partials must be released from the buffer")
	}
	if m.next != 2 {
		t.Fatalf("next = %d, want 2", m.next)
	}
	for i := 2; i < len(parts); i++ {
		m.Add(i, parts[i])
		if m.wait[i] != nil {
			t.Fatalf("in-order partial %d retained after fold", i)
		}
	}
}

// TestMergerAllocations pins that streaming does not cost allocations
// over the old materialize-then-fold shape: folding partials one at a
// time through a Merger allocates no more than folding the prebuilt
// slice (both go through identical group cloning; streaming adds only
// the fixed-size buffers).
func TestMergerAllocations(t *testing.T) {
	tab := randomWeightedTable(t, 23, 4000, 64)
	p, parts := streamParts(t, tab, `SELECT COUNT(*), SUM(sessiontime), AVG(sessiontime) FROM sessions GROUP BY city`)

	materialized := testing.AllocsPerRun(20, func() {
		// Reference shape: collect the full slice, then fold it.
		buf := make([]*Partial, len(parts))
		copy(buf, parts)
		MergePartials(p, buf, 0.95)
	})
	streaming := testing.AllocsPerRun(20, func() {
		m := NewMerger(p, len(parts))
		for i, pt := range parts {
			m.Add(i, pt)
		}
		m.Finish(0.95)
	})
	if streaming > materialized+2 {
		t.Errorf("streaming merge allocates more than materialized fold: %.0f vs %.0f allocs",
			streaming, materialized)
	}
}
