package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// reorderByNode rebuilds a table's block list grouped by node — a skewed,
// non-round-robin placement that makes node shards span multiple
// contiguous ranges (the interesting case for the affine scheduler).
func reorderByNode(t testing.TB, tab *storage.Table) *storage.Table {
	t.Helper()
	out := storage.NewTable(tab.Name, tab.Schema)
	maxNode := 0
	for _, b := range tab.Blocks {
		if b.Node > maxNode {
			maxNode = b.Node
		}
	}
	for n := 0; n <= maxNode; n++ {
		for _, b := range tab.Blocks {
			if b.Node == n {
				cp := *b
				out.AddBlock(&cp)
			}
		}
	}
	return out
}

// TestAffinityEquivalence is the tentpole's executor acceptance check:
// the node-affine schedule returns bit-identical Results to the
// node-blind schedule for worker counts 1, 2 and 8 (and more workers
// than shards), across query shapes, block layouts and placements.
func TestAffinityEquivalence(t *testing.T) {
	for _, rowsPerBlock := range []int{64, 509} {
		base := randomWeightedTable(t, 4, 6000, rowsPerBlock)
		for _, tab := range []*storage.Table{base, reorderByNode(t, base), columnarClone(t, base, rowsPerBlock, 4)} {
			for _, src := range equivalenceQueries {
				p := compile(t, src, tab.Schema)
				in := FromTable(tab)
				want := RunParallelSched(p, in, 0.95, 1, SchedBlind)
				for _, w := range []int{1, 2, 8, 1 << 10} {
					got := RunParallelSched(p, in, 0.95, w, SchedNodeAffine)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("rpb=%d workers=%d query=%q: affine result diverged from blind\nwant %+v\ngot  %+v",
							rowsPerBlock, w, src, want, got)
					}
					blind := RunParallelSched(p, in, 0.95, w, SchedBlind)
					if !reflect.DeepEqual(want, blind) {
						t.Fatalf("rpb=%d workers=%d query=%q: blind result diverged across workers",
							rowsPerBlock, w, src)
					}
				}
			}
		}
	}
}

// TestAffinityJoinEquivalence covers the join path: affine and blind
// schedules agree bit-for-bit while dimension rows are hash-joined in.
func TestAffinityJoinEquivalence(t *testing.T) {
	fact := randomWeightedTable(t, 11, 4000, 97)
	dimSchema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "region", Kind: types.KindString},
	)
	dim := storage.NewTable("regions", dimSchema)
	db := storage.NewBuilder(dim, 16, 2, storage.InMemory)
	for _, c := range []struct{ city, region string }{
		{"NY", "east"}, {"SF", "west"}, {"LA", "west"}, {"Austin", "south"},
	} {
		db.AppendRow(types.Row{types.Str(c.city), types.Str(c.region)})
	}
	db.Finish()

	combined, _, err := JoinedSchema(fact.Schema, []*storage.Table{dim})
	if err != nil {
		t.Fatal(err)
	}
	ci := fact.Schema.Index("city")
	ri := dim.Schema.Index("city")
	spec := JoinSpec{Dim: dim, LeftCol: ci, RightCol: ri}
	p := compile(t, `SELECT COUNT(*), AVG(sessiontime) FROM sessions WHERE code < 700 GROUP BY region`, combined)
	in := FromTable(fact)

	want := RunJoinParallelSched(p, in, []JoinSpec{spec}, 0.95, 1, SchedBlind)
	for _, w := range []int{1, 2, 8} {
		got := RunJoinParallelSched(p, in, []JoinSpec{spec}, 0.95, w, SchedNodeAffine)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: affine join result diverged", w)
		}
	}
}

// TestScanShardsMatchesPartition pins that the schedule ScanShards
// reports (used by ELP's latency attribution) is the executor's own
// partition.
func TestScanShardsMatchesPartition(t *testing.T) {
	tab := randomWeightedTable(t, 4, 6000, 64)
	ranges, shards := ScanShards(tab.Blocks)
	wantRanges := storage.PartitionBlocks(len(tab.Blocks), maxPartials)
	if !reflect.DeepEqual(ranges, wantRanges) {
		t.Fatal("ScanShards ranges differ from the executor partition")
	}
	covered := 0
	for _, s := range shards {
		covered += len(s.Ranges)
	}
	if covered != len(ranges) {
		t.Fatalf("shards cover %d of %d ranges", covered, len(ranges))
	}
}

// randomPlacementTable builds a columnar table with blocks assigned to
// random nodes — worst-case shard imbalance for the affine pool.
func randomPlacementTable(t testing.TB, seed int64, rows int) *storage.Table {
	t.Helper()
	tab := randomWeightedTable(t, seed, rows, 64)
	rng := rand.New(rand.NewSource(seed))
	for _, b := range tab.Blocks {
		b.Node = rng.Intn(5)
	}
	return tab
}

// TestAffinityRandomPlacement: equivalence must hold for arbitrary
// (non-round-robin) node assignments too.
func TestAffinityRandomPlacement(t *testing.T) {
	tab := randomPlacementTable(t, 21, 5000)
	p := compile(t, `SELECT SUM(sessiontime), MEDIAN(sessiontime) FROM sessions WHERE code < 800 GROUP BY city`, tab.Schema)
	in := FromBlocks(tab.Schema, tab.Blocks, 400)
	want := RunParallelSched(p, in, 0.95, 1, SchedBlind)
	for _, w := range []int{2, 3, 8} {
		if got := RunParallelSched(p, in, 0.95, w, SchedNodeAffine); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: affine result diverged under random placement", w)
		}
	}
}

func BenchmarkRunParallelAffine(b *testing.B) {
	row := randomWeightedTable(b, 9, 200000, 2048)
	col := columnarClone(b, row, 2048, 4)
	p := compile(b, `SELECT COUNT(*), SUM(sessiontime), AVG(sessiontime) FROM sessions WHERE code < 900 GROUP BY city`, row.Schema)
	in := FromTable(col)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				RunParallelSched(p, in, 0.95, w, SchedNodeAffine)
			}
			b.SetBytes(int64(col.Bytes()))
		})
	}
}

func BenchmarkRunParallelBlind(b *testing.B) {
	row := randomWeightedTable(b, 9, 200000, 2048)
	col := columnarClone(b, row, 2048, 4)
	p := compile(b, `SELECT COUNT(*), SUM(sessiontime), AVG(sessiontime) FROM sessions WHERE code < 900 GROUP BY city`, row.Schema)
	in := FromTable(col)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				RunParallelSched(p, in, 0.95, w, SchedBlind)
			}
			b.SetBytes(int64(col.Bytes()))
		})
	}
}
