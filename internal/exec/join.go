package exec

import (
	"fmt"
	"strings"

	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// JoinSpec is one compiled equi-join against an in-memory dimension table
// (§2.1's common case: a large fact table joined with dimension tables
// small enough to broadcast to every node).
type JoinSpec struct {
	// Dim is the dimension table (broadcast, unsampled).
	Dim *storage.Table
	// LeftCol indexes the accumulated left-side schema.
	LeftCol int
	// RightCol indexes the dimension table's schema.
	RightCol int
}

// JoinedSchema builds the output schema of fact ⋈ dims: fact columns keep
// their names; dimension columns that collide with an existing name are
// qualified as "table.col". Returns the combined schema and, per join, the
// offset where that dimension's columns start.
func JoinedSchema(fact *types.Schema, dims []*storage.Table) (*types.Schema, []int, error) {
	cols := append([]types.Column{}, fact.Columns...)
	used := map[string]bool{}
	for _, c := range fact.Columns {
		used[strings.ToLower(c.Name)] = true
	}
	offsets := make([]int, len(dims))
	for di, d := range dims {
		offsets[di] = len(cols)
		for _, c := range d.Schema.Columns {
			name := c.Name
			if used[strings.ToLower(name)] {
				name = strings.ToLower(d.Name) + "." + c.Name
				if used[strings.ToLower(name)] {
					return nil, nil, fmt.Errorf("exec: column %q ambiguous even qualified", name)
				}
			}
			used[strings.ToLower(name)] = true
			cols = append(cols, types.Column{Name: name, Kind: c.Kind})
		}
	}
	return types.NewSchema(cols...), offsets, nil
}

// CompileJoins resolves a query's JOIN clauses against the fact schema and
// a dimension lookup function, returning the combined schema and compiled
// join specs. Join columns may be qualified ("dim.col").
func CompileJoins(q *sqlparser.Query, fact *types.Schema,
	lookup func(table string) (*storage.Table, error)) (*types.Schema, []JoinSpec, error) {

	dims := make([]*storage.Table, len(q.Joins))
	for i, j := range q.Joins {
		d, err := lookup(j.Table)
		if err != nil {
			return nil, nil, err
		}
		dims[i] = d
	}
	combined, offsets, err := JoinedSchema(fact, dims)
	if err != nil {
		return nil, nil, err
	}
	specs := make([]JoinSpec, len(q.Joins))
	for i, j := range q.Joins {
		// The left column resolves against the combined schema (it may
		// reference the fact table or an earlier join's output).
		li := combined.Index(j.LeftCol)
		if li < 0 {
			return nil, nil, fmt.Errorf("exec: join column %q not found", j.LeftCol)
		}
		// The right column resolves within the joined dimension; accept
		// both bare and "table.col" qualified forms.
		rname := j.RightCol
		if k := strings.IndexByte(rname, '.'); k >= 0 {
			if !strings.EqualFold(rname[:k], j.Table) {
				return nil, nil, fmt.Errorf("exec: join column %q does not reference %s", rname, j.Table)
			}
			rname = rname[k+1:]
		}
		ri := dims[i].Schema.Index(rname)
		if ri < 0 {
			return nil, nil, fmt.Errorf("exec: join column %q not in %s", j.RightCol, j.Table)
		}
		specs[i] = JoinSpec{Dim: dims[i], LeftCol: li, RightCol: ri}
	}
	_ = offsets
	return combined, specs, nil
}

// joinIndex is a hash index over one dimension table.
type joinIndex struct {
	rows map[string][]types.Row
	spec JoinSpec
}

func buildJoinIndex(spec JoinSpec) *joinIndex {
	idx := &joinIndex{rows: map[string][]types.Row{}, spec: spec}
	spec.Dim.Scan(func(r types.Row, _ storage.RowMeta) bool {
		key := r[spec.RightCol].Key()
		idx.rows[key] = append(idx.rows[key], r)
		return true
	})
	return idx
}

// RunJoin executes the plan over fact ⋈ dims with a single worker. It is
// exactly RunJoinParallel(p, in, joins, confidence, 1).
func RunJoin(p *Plan, in Input, joins []JoinSpec, confidence float64) *Result {
	return RunJoinParallel(p, in, joins, confidence, 1)
}

// RunJoinParallel executes the plan over fact ⋈ dims: the fact side
// streams from `in` (a base table or a sample view — rates carry through
// unchanged, since dimensions are unsampled, §2.1); dimension rows are
// hash-joined in memory. plan must be compiled against the combined
// schema. The join indexes are built once up front and then shared
// read-only across the scan workers; like RunParallel, the Result is
// bit-identical for every workers value and either schedule. The default
// schedule is node-affine (dimension tables are broadcast, so only the
// fact side has locality to exploit).
func RunJoinParallel(p *Plan, in Input, joins []JoinSpec, confidence float64, workers int) *Result {
	return RunJoinParallelSched(p, in, joins, confidence, workers, SchedNodeAffine)
}

// RunJoinParallelSched is RunJoinParallel with an explicit scheduling
// mode.
func RunJoinParallelSched(p *Plan, in Input, joins []JoinSpec, confidence float64, workers int, sched Sched) *Result {
	idxs := make([]*joinIndex, len(joins))
	for i, j := range joins {
		idxs[i] = buildJoinIndex(j)
	}
	joined := Input{
		Schema: p.Schema,
		Blocks: in.Blocks,
		Rate:   in.Rate,
	}
	// Expand each fact row through the join chain inside the scan.
	return runRanges(p, p.runtime(), joined, confidence, workers, sched,
		func(fact types.Row, emit func(types.Row)) {
			expandJoins(fact, idxs, 0, emit)
		})
}

func expandJoins(left types.Row, idxs []*joinIndex, depth int, emit func(types.Row)) {
	if depth == len(idxs) {
		emit(left)
		return
	}
	idx := idxs[depth]
	matches := idx.rows[left[idx.spec.LeftCol].Key()]
	for _, dimRow := range matches {
		combined := make(types.Row, 0, len(left)+len(dimRow))
		combined = append(combined, left...)
		combined = append(combined, dimRow...)
		expandJoins(combined, idxs, depth+1, emit)
	}
}
