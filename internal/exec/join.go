package exec

import (
	"context"
	"fmt"
	"math"
	"strings"

	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/telemetry"
	"blinkdb/internal/types"
)

// JoinSpec is one compiled equi-join against an in-memory dimension table
// (§2.1's common case: a large fact table joined with dimension tables
// small enough to broadcast to every node).
type JoinSpec struct {
	// Dim is the dimension table (broadcast, unsampled).
	Dim *storage.Table
	// LeftCol indexes the accumulated left-side schema.
	LeftCol int
	// RightCol indexes the dimension table's schema.
	RightCol int
}

// JoinedSchema builds the output schema of fact ⋈ dims: fact columns keep
// their names; dimension columns that collide with an existing name are
// qualified as "table.col". Returns the combined schema and, per join, the
// offset where that dimension's columns start.
func JoinedSchema(fact *types.Schema, dims []*storage.Table) (*types.Schema, []int, error) {
	cols := append([]types.Column{}, fact.Columns...)
	used := map[string]bool{}
	for _, c := range fact.Columns {
		used[strings.ToLower(c.Name)] = true
	}
	offsets := make([]int, len(dims))
	for di, d := range dims {
		offsets[di] = len(cols)
		for _, c := range d.Schema.Columns {
			name := c.Name
			if used[strings.ToLower(name)] {
				name = strings.ToLower(d.Name) + "." + c.Name
				if used[strings.ToLower(name)] {
					return nil, nil, fmt.Errorf("exec: column %q ambiguous even qualified", name)
				}
			}
			used[strings.ToLower(name)] = true
			cols = append(cols, types.Column{Name: name, Kind: c.Kind})
		}
	}
	return types.NewSchema(cols...), offsets, nil
}

// CompileJoins resolves a query's JOIN clauses against the fact schema and
// a dimension lookup function, returning the combined schema and compiled
// join specs. Join columns may be qualified ("dim.col").
func CompileJoins(q *sqlparser.Query, fact *types.Schema,
	lookup func(table string) (*storage.Table, error)) (*types.Schema, []JoinSpec, error) {

	dims := make([]*storage.Table, len(q.Joins))
	for i, j := range q.Joins {
		d, err := lookup(j.Table)
		if err != nil {
			return nil, nil, err
		}
		dims[i] = d
	}
	combined, offsets, err := JoinedSchema(fact, dims)
	if err != nil {
		return nil, nil, err
	}
	specs := make([]JoinSpec, len(q.Joins))
	for i, j := range q.Joins {
		// The left column resolves against the combined schema (it may
		// reference the fact table or an earlier join's output).
		li := combined.Index(j.LeftCol)
		if li < 0 {
			return nil, nil, fmt.Errorf("exec: join column %q not found", j.LeftCol)
		}
		// The right column resolves within the joined dimension; accept
		// both bare and "table.col" qualified forms.
		rname := j.RightCol
		if k := strings.IndexByte(rname, '.'); k >= 0 {
			if !strings.EqualFold(rname[:k], j.Table) {
				return nil, nil, fmt.Errorf("exec: join column %q does not reference %s", rname, j.Table)
			}
			rname = rname[k+1:]
		}
		ri := dims[i].Schema.Index(rname)
		if ri < 0 {
			return nil, nil, fmt.Errorf("exec: join column %q not in %s", j.RightCol, j.Table)
		}
		specs[i] = JoinSpec{Dim: dims[i], LeftCol: li, RightCol: ri}
	}
	_ = offsets
	return combined, specs, nil
}

// joinIndex is a hash index over one dimension table, bucketed by kind so
// probes never render a string key. The bucketing preserves Value.Key()'s
// equivalence classes exactly: ints and bools share the integer buckets
// (Key folds Bool(true) into Int(1)), floats bucket by payload bits with
// NaN canonicalised (every NaN renders the same Key), strings by value,
// NULLs together. Per-bucket row order is the dimension scan order, which
// fixes the expansion order downstream.
type joinIndex struct {
	intRows   map[int64][]types.Row
	floatRows map[uint64][]types.Row
	strRows   map[string][]types.Row
	nullRows  []types.Row
	spec      JoinSpec
}

// canonNaN is the shared bucket for every NaN payload (Value.Key renders
// all NaNs identically, so they must join with each other).
var canonNaN = math.Float64bits(math.NaN())

func floatBucket(f float64) uint64 {
	if f != f {
		return canonNaN
	}
	return math.Float64bits(f)
}

func buildJoinIndex(spec JoinSpec) *joinIndex {
	idx := &joinIndex{
		intRows:   map[int64][]types.Row{},
		floatRows: map[uint64][]types.Row{},
		strRows:   map[string][]types.Row{},
		spec:      spec,
	}
	spec.Dim.Scan(func(r types.Row, _ storage.RowMeta) bool {
		switch v := r[spec.RightCol]; v.Kind {
		case types.KindInt, types.KindBool:
			idx.intRows[v.I] = append(idx.intRows[v.I], r)
		case types.KindFloat:
			b := floatBucket(v.F)
			idx.floatRows[b] = append(idx.floatRows[b], r)
		case types.KindString:
			idx.strRows[v.S] = append(idx.strRows[v.S], r)
		default:
			idx.nullRows = append(idx.nullRows, r)
		}
		return true
	})
	return idx
}

// lookup returns the dimension rows matching the probe value, allocation-
// free.
func (idx *joinIndex) lookup(v types.Value) []types.Row {
	switch v.Kind {
	case types.KindInt, types.KindBool:
		return idx.intRows[v.I]
	case types.KindFloat:
		return idx.floatRows[floatBucket(v.F)]
	case types.KindString:
		return idx.strRows[v.S]
	default:
		return idx.nullRows
	}
}

// joinRuntime is the precompiled state for one join execution: the
// dimension indexes, the combined-row geometry, and the predicate split
// into the fact-only conjuncts (evaluated columnar, before expansion) and
// the remainder (evaluated on combined rows).
type joinRuntime struct {
	idxs []*joinIndex
	// width is the combined schema's column count — the pooled buffer
	// size, fixed at plan time.
	width int
	// factW is the fact schema's column count; combined rows hold the
	// fact columns at [0, factW) and each dimension after the previous.
	factW int
	// factPred is the conjunction of predicate conjuncts that reference
	// only fact columns (nil: no fact-side filtering).
	factPred types.Predicate
	// restPred is the compiled remainder (nil: always true). factPred AND
	// restPred ≡ the plan predicate.
	restPred func(types.Row) bool
}

// newJoinRuntime builds the runtime for plan p (compiled against the
// combined schema) joining fact input in with the given specs.
func newJoinRuntime(p *Plan, joins []JoinSpec) *joinRuntime {
	jr := &joinRuntime{width: p.Schema.Len()}
	factW := jr.width
	for _, j := range joins {
		factW -= j.Dim.Schema.Len()
	}
	jr.factW = factW
	for _, j := range joins {
		jr.idxs = append(jr.idxs, buildJoinIndex(j))
	}
	factPred, restPred := splitJoinPred(p.Pred, factW)
	jr.factPred = factPred
	if restPred != nil {
		jr.restPred = types.CompilePredicate(restPred)
	}
	return jr
}

// splitJoinPred partitions the predicate's top-level conjuncts by whether
// they reference only fact columns. Conjuncts straddling the sides — or a
// predicate whose top level is not a conjunction — stay whole on the rest
// side (conservative: factPred may under-filter, never over-filter).
func splitJoinPred(pred types.Predicate, factW int) (fact, rest types.Predicate) {
	var factKids, restKids []types.Predicate
	var walk func(p types.Predicate)
	walk = func(p types.Predicate) {
		if t, ok := p.(*types.AndPred); ok {
			for _, k := range t.Kids {
				walk(k)
			}
			return
		}
		if _, ok := p.(types.TruePred); ok {
			return // contributes nothing to either side
		}
		if maxPredCol(p) < factW {
			factKids = append(factKids, p)
		} else {
			restKids = append(restKids, p)
		}
	}
	if pred != nil {
		walk(pred)
	}
	return joinConjuncts(factKids), joinConjuncts(restKids)
}

func joinConjuncts(kids []types.Predicate) types.Predicate {
	switch len(kids) {
	case 0:
		return nil
	case 1:
		return kids[0]
	default:
		return &types.AndPred{Kids: kids}
	}
}

// maxPredCol returns the largest column index the predicate can read
// (-1 for none). Unknown predicate implementations report the maximum, so
// they are never treated as fact-only.
func maxPredCol(p types.Predicate) int {
	max := -1
	grow := func(c int) {
		if c > max {
			max = c
		}
	}
	switch t := p.(type) {
	case types.TruePred:
	case *types.CmpPred:
		grow(t.ColIdx)
	case *types.AndPred:
		for _, k := range t.Kids {
			grow(maxPredCol(k))
		}
	case *types.OrPred:
		for _, k := range t.Kids {
			grow(maxPredCol(k))
		}
	case *types.NotPred:
		grow(maxPredCol(t.Kid))
	default:
		return int(^uint(0) >> 1)
	}
	return max
}

// expandInto enumerates the join chain from depth onward into buf, whose
// first n columns hold the accumulated left side, invoking emit with the
// full combined row for every complete expansion. buf is reused across
// emissions — callers must not retain the emitted row (addMatched
// copies everything it keeps).
func (jr *joinRuntime) expandInto(buf types.Row, n, depth int, emit func(types.Row)) {
	if depth == len(jr.idxs) {
		emit(buf[:n])
		return
	}
	ix := jr.idxs[depth]
	for _, dimRow := range ix.lookup(buf[ix.spec.LeftCol]) {
		copy(buf[n:n+len(dimRow)], dimRow)
		jr.expandInto(buf, n+len(dimRow), depth+1, emit)
	}
}

// RunJoin executes the plan over fact ⋈ dims with a single worker. It is
// exactly RunJoinParallel(p, in, joins, confidence, 1).
func RunJoin(p *Plan, in Input, joins []JoinSpec, confidence float64) *Result {
	return RunJoinParallel(p, in, joins, confidence, 1)
}

// RunJoinParallel executes the plan over fact ⋈ dims: the fact side
// streams from `in` (a base table or a sample view — rates carry through
// unchanged, since dimensions are unsampled, §2.1); dimension rows are
// hash-joined in memory. plan must be compiled against the combined
// schema. The join indexes are built once up front and then shared
// read-only across the scan workers; like RunParallel, the Result is
// bit-identical for every workers value and either schedule. The default
// schedule is node-affine (dimension tables are broadcast, so only the
// fact side has locality to exploit).
func RunJoinParallel(p *Plan, in Input, joins []JoinSpec, confidence float64, workers int) *Result {
	return RunJoinParallelSched(p, in, joins, confidence, workers, SchedNodeAffine)
}

// RunJoinParallelSched is RunJoinParallel with an explicit scheduling
// mode.
func RunJoinParallelSched(p *Plan, in Input, joins []JoinSpec, confidence float64, workers int, sched Sched) *Result {
	return RunJoinParallelSchedTraced(p, in, joins, confidence, workers, sched, nil)
}

// RunJoinParallelSchedTraced is RunJoinParallelSched with a telemetry
// span covering the join-index build and the fact-side scan. sp may be
// nil (identical to RunJoinParallelSched).
func RunJoinParallelSchedTraced(p *Plan, in Input, joins []JoinSpec, confidence float64, workers int, sched Sched, sp *telemetry.Span) *Result {
	res, _ := RunJoinParallelSchedCtx(context.Background(), p, in, joins, confidence, workers, sched, sp)
	return res
}

// RunJoinParallelSchedCtx is RunJoinParallelSchedTraced with a
// cancellation context, under the same contract as RunParallelSchedCtx:
// workers re-check ctx between claim units, a pre-cancelled context scans
// nothing, and a nil error guarantees the bit-identical Result.
func RunJoinParallelSchedCtx(ctx context.Context, p *Plan, in Input, joins []JoinSpec, confidence float64, workers int, sched Sched, sp *telemetry.Span) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var buildSp *telemetry.Span
	if sp != nil {
		buildSp = sp.Child("join-index build")
	}
	jr := newJoinRuntime(p, joins)
	buildSp.End()
	joined := Input{
		Schema: p.Schema,
		Blocks: in.Blocks,
		Rate:   in.Rate,
	}
	// The scan drives expansion through jr: columnar fact blocks take the
	// late-materialization path (fact predicate first, probe keys straight
	// from the columns, materialise only matched rows), row blocks expand
	// into the pooled buffer.
	return runRanges(ctx, p, p.runtime(), joined, confidence, workers, sched, jr, sp)
}
