package exec

import (
	"math/bits"

	"blinkdb/internal/colstore"
	"blinkdb/internal/stats"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// This file implements the vectorized scan path over columnar blocks
// (internal/colstore): predicates are evaluated column-at-a-time into a
// selection bitmap, then grouping and aggregation run over the selected
// rows using contiguous typed slices — no types.Row is materialised and
// no per-row interface dispatch happens.
//
// BIT-IDENTITY CONTRACT: for any block, the columnar scan must produce
// exactly the state the row scan would: the same rows selected, the same
// groups created, and — because floating-point addition is not
// associative — every per-group accumulator fed the same (x, rate) pairs
// in the same row order, and WeightedMatched summed in row order. The
// kernels below therefore reorder work only in ways invisible to IEEE
// arithmetic (hoisting loop-invariant weight math, batching per-group
// accumulation without changing each group's row order).

// colScratch holds buffers reused across the columnar blocks of one
// RunPartial call, so steady-state scanning allocates nothing.
type colScratch struct {
	sel     []uint64   // selection bitmap
	free    [][]uint64 // temp bitmaps for AND/OR subtrees
	idxs    []int32    // selected row indices, ascending
	passTab []bool     // per-dictionary-code predicate outcomes
	xs      []float64  // gathered aggregate inputs
	rs      []float64  // gathered per-row rates
	keybuf  []types.Value
	rowbuf  types.Row
	codeGS  []*groupState // per-dictionary-code group cache
	touched []*groupState // groups staged during the current block

	// rowPool/ratePool recycle the per-group staging buffers across
	// blocks and partials (group states die with their partial; their
	// buffers shouldn't).
	rowPool  [][]int32
	ratePool [][]float64
}

func (sc *colScratch) getBatchBufs() ([]int32, []float64) {
	var rows []int32
	var rates []float64
	if k := len(sc.rowPool); k > 0 {
		rows = sc.rowPool[k-1]
		sc.rowPool = sc.rowPool[:k-1]
	} else {
		rows = make([]int32, 0, 64)
	}
	if k := len(sc.ratePool); k > 0 {
		rates = sc.ratePool[k-1]
		sc.ratePool = sc.ratePool[:k-1]
	} else {
		rates = make([]float64, 0, 64)
	}
	return rows, rates
}

func (sc *colScratch) putBatchBufs(rows []int32, rates []float64) {
	sc.rowPool = append(sc.rowPool, rows[:0])
	sc.ratePool = append(sc.ratePool, rates[:0])
}

func (sc *colScratch) bitmap(n int) []uint64 {
	words := (n + 63) / 64
	if cap(sc.sel) < words {
		sc.sel = make([]uint64, words)
	}
	return sc.sel[:words]
}

func (sc *colScratch) acquireTemp(words int) []uint64 {
	if k := len(sc.free); k > 0 {
		t := sc.free[k-1]
		sc.free = sc.free[:k-1]
		if cap(t) >= words {
			return t[:words]
		}
	}
	return make([]uint64, words)
}

func (sc *colScratch) releaseTemp(t []uint64) { sc.free = append(sc.free, t) }

func (sc *colScratch) rowBuf(w int) types.Row {
	if cap(sc.rowbuf) < w {
		sc.rowbuf = make(types.Row, w)
	}
	return sc.rowbuf[:w]
}

// ---- bitmap primitives ----

func bitmapFill(dst []uint64, n int, b bool) {
	if !b {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i := range dst {
		dst[i] = ^uint64(0)
	}
	maskTail(dst, n)
}

// maskTail clears bits ≥ n in the last word.
func maskTail(dst []uint64, n int) {
	if rem := n & 63; rem != 0 && len(dst) > 0 {
		dst[len(dst)-1] &= (1 << uint(rem)) - 1
	}
}

func bitmapAnd(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

func bitmapOr(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

func bitmapNot(dst []uint64, n int) {
	for i := range dst {
		dst[i] = ^dst[i]
	}
	maskTail(dst, n)
}

// patchNulls forces the selection outcome of every NULL row to b. Null
// bitmaps never set bits past the row count, so no tail masking is needed.
func patchNulls(dst, nulls []uint64, b bool) {
	if nulls == nil {
		return
	}
	if b {
		bitmapOr(dst, nulls)
		return
	}
	for i := range dst {
		dst[i] &^= nulls[i]
	}
}

// cmpPass mirrors types.signOK: whether a comparison outcome c passes an
// operator decomposed into (lt, eq, gt) acceptance flags.
func cmpPass(c int, lt, eq, gt bool) bool {
	if c < 0 {
		return lt
	}
	if c > 0 {
		return gt
	}
	return eq
}

func opFlags(op types.CmpOp) (lt, eq, gt bool) {
	switch op {
	case types.CmpEq:
		eq = true
	case types.CmpNe:
		lt, gt = true, true
	case types.CmpLt:
		lt = true
	case types.CmpLe:
		lt, eq = true, true
	case types.CmpGt:
		gt = true
	case types.CmpGe:
		eq, gt = true, true
	}
	return
}

// ---- predicate → selection bitmap ----

// evalPred fills dst with pred's selection over the block; bits ≥ n stay
// clear. Boolean combination over bitmaps is exact boolean algebra, so the
// result equals per-row Predicate.Eval for every row.
func evalPred(pred types.Predicate, d *colstore.Data, dst []uint64, n int, sc *colScratch) {
	switch t := pred.(type) {
	case types.TruePred:
		bitmapFill(dst, n, true)
	case *types.CmpPred:
		evalCmp(t, d, dst, n, sc)
	case *types.AndPred:
		if len(t.Kids) == 0 {
			bitmapFill(dst, n, true) // empty AND is true, as in Eval
			return
		}
		evalPred(t.Kids[0], d, dst, n, sc)
		for _, k := range t.Kids[1:] {
			tmp := sc.acquireTemp(len(dst))
			evalPred(k, d, tmp, n, sc)
			bitmapAnd(dst, tmp)
			sc.releaseTemp(tmp)
		}
	case *types.OrPred:
		if len(t.Kids) == 0 {
			bitmapFill(dst, n, false) // empty OR is false, as in Eval
			return
		}
		evalPred(t.Kids[0], d, dst, n, sc)
		for _, k := range t.Kids[1:] {
			tmp := sc.acquireTemp(len(dst))
			evalPred(k, d, tmp, n, sc)
			bitmapOr(dst, tmp)
			sc.releaseTemp(tmp)
		}
	case *types.NotPred:
		evalPred(t.Kid, d, dst, n, sc)
		bitmapNot(dst, n)
	default:
		// Unknown predicate implementation: materialise rows and defer to
		// Eval (the row path's own fallback).
		buf := sc.rowBuf(len(d.Cols))
		bitmapFill(dst, n, false)
		for i := 0; i < n; i++ {
			if pred.Eval(d.RowInto(buf, i)) {
				dst[i>>6] |= 1 << uint(i&63)
			}
		}
	}
}

// evalCmp evaluates one comparison leaf. Fast paths cover typed columns
// against same-class constants; every mixed case falls back to
// types.Compare, which is exactly what the row path's compiled closures
// do for kind mismatches.
func evalCmp(t *types.CmpPred, d *colstore.Data, dst []uint64, n int, sc *colScratch) {
	lt, eq, gt := opFlags(t.Op)
	col := &d.Cols[t.ColIdx]
	val := t.Val

	numericConst := val.Kind == types.KindInt || val.Kind == types.KindFloat || val.Kind == types.KindBool
	switch col.Enc {
	case colstore.EncFloat:
		switch {
		case numericConst:
			c := val.AsFloat()
			cmpFloats(col.Floats[:n], c, dst, lt, eq, gt)
			patchNulls(dst, col.Nulls, lt) // NULL sorts before numerics
		case val.Kind == types.KindString:
			bitmapFill(dst, n, lt) // numerics and NULL sort before strings
		default: // NULL constant
			bitmapFill(dst, n, gt)
			patchNulls(dst, col.Nulls, eq)
		}
	case colstore.EncInt:
		switch {
		case val.Kind == types.KindInt:
			cmpInts(col.Ints[:n], val.I, dst, lt, eq, gt)
			patchNulls(dst, col.Nulls, lt)
		case numericConst:
			c := val.AsFloat()
			cmpIntsAsFloat(col.Ints[:n], c, dst, lt, eq, gt)
			patchNulls(dst, col.Nulls, lt)
		case val.Kind == types.KindString:
			bitmapFill(dst, n, lt)
		default:
			bitmapFill(dst, n, gt)
			patchNulls(dst, col.Nulls, eq)
		}
	case colstore.EncBool:
		switch {
		case numericConst:
			// Bool vs Int/Float/Bool constants compare as floats under
			// types.Compare (only the Int–Int pair compares integrally).
			c := val.AsFloat()
			cmpIntsAsFloat(col.Ints[:n], c, dst, lt, eq, gt)
			patchNulls(dst, col.Nulls, lt)
		case val.Kind == types.KindString:
			bitmapFill(dst, n, lt)
		default:
			bitmapFill(dst, n, gt)
			patchNulls(dst, col.Nulls, eq)
		}
	case colstore.EncDict:
		switch {
		case val.Kind == types.KindString:
			// One comparison per distinct value, then a table lookup per
			// row.
			if cap(sc.passTab) < len(col.Dict) {
				sc.passTab = make([]bool, len(col.Dict))
			}
			tab := sc.passTab[:len(col.Dict)]
			c := val.S
			for j, s := range col.Dict {
				b := eq
				if s < c {
					b = lt
				} else if s > c {
					b = gt
				}
				tab[j] = b
			}
			codes := col.Codes[:n]
			for base := 0; base < n; base += 64 {
				var w uint64
				m := n - base
				if m > 64 {
					m = 64
				}
				for k := 0; k < m; k++ {
					if tab[codes[base+k]] {
						w |= 1 << uint(k)
					}
				}
				dst[base>>6] = w
			}
			patchNulls(dst, col.Nulls, lt) // NULL sorts before strings
		case numericConst:
			bitmapFill(dst, n, gt) // strings sort after numerics
			patchNulls(dst, col.Nulls, lt)
		default: // NULL constant
			bitmapFill(dst, n, gt)
			patchNulls(dst, col.Nulls, eq)
		}
	default: // EncValue: mixed kinds, generic comparison per row
		vals := col.Values[:n]
		for base := 0; base < n; base += 64 {
			var w uint64
			m := n - base
			if m > 64 {
				m = 64
			}
			for k := 0; k < m; k++ {
				if cmpPass(types.Compare(vals[base+k], val), lt, eq, gt) {
					w |= 1 << uint(k)
				}
			}
			dst[base>>6] = w
		}
	}
}

// cmpFloats compares a float column against c. The (lt,eq,gt) selection
// matches the row path's compiled closure exactly, including NaN (no
// ordered comparison holds, so the eq flag decides).
func cmpFloats(xs []float64, c float64, dst []uint64, lt, eq, gt bool) {
	n := len(xs)
	for base := 0; base < n; base += 64 {
		var w uint64
		m := n - base
		if m > 64 {
			m = 64
		}
		for k := 0; k < m; k++ {
			v := xs[base+k]
			b := eq
			if v < c {
				b = lt
			} else if v > c {
				b = gt
			}
			if b {
				w |= 1 << uint(k)
			}
		}
		dst[base>>6] = w
	}
}

func cmpInts(xs []int64, c int64, dst []uint64, lt, eq, gt bool) {
	n := len(xs)
	for base := 0; base < n; base += 64 {
		var w uint64
		m := n - base
		if m > 64 {
			m = 64
		}
		for k := 0; k < m; k++ {
			v := xs[base+k]
			b := eq
			if v < c {
				b = lt
			} else if v > c {
				b = gt
			}
			if b {
				w |= 1 << uint(k)
			}
		}
		dst[base>>6] = w
	}
}

func cmpIntsAsFloat(xs []int64, c float64, dst []uint64, lt, eq, gt bool) {
	n := len(xs)
	for base := 0; base < n; base += 64 {
		var w uint64
		m := n - base
		if m > 64 {
			m = 64
		}
		for k := 0; k < m; k++ {
			v := float64(xs[base+k])
			b := eq
			if v < c {
				b = lt
			} else if v > c {
				b = gt
			}
			if b {
				w |= 1 << uint(k)
			}
		}
		dst[base>>6] = w
	}
}

// ---- grouping + aggregation over selected rows ----

// findGroupVals mirrors Partial.findGroup for keys extracted directly
// from columns (vals is the projection onto the GROUP BY columns; h its
// HashRowKey-compatible hash).
func (pt *Partial) findGroupVals(p *Plan, vals []types.Value, h uint64) *groupState {
	bucket := pt.groups[h]
	for _, gs := range bucket {
		ok := true
		for ki := range vals {
			if !types.GroupEqual(gs.key[ki], vals[ki]) {
				ok = false
				break
			}
		}
		if ok {
			return gs
		}
	}
	gs := &groupState{accs: make([]*stats.Acc, len(p.Aggs))}
	for ai, a := range p.Aggs {
		gs.accs[ai] = stats.NewAcc(a.Kind, a.P)
	}
	if len(vals) > 0 {
		gs.key = make([]types.Value, len(vals))
		copy(gs.key, vals)
	}
	pt.groups[h] = append(bucket, gs)
	return gs
}

// scanColumnar scans one columnar block into the partial: selection
// bitmap, then a row-order pass that maintains the scan counters and
// stages each selected row on its group, then per-group batched
// aggregation. See the bit-identity contract at the top of the file.
func (pt *Partial) scanColumnar(p *Plan, rt *planRuntime, in Input, d *colstore.Data, sc *colScratch) {
	n := d.N
	pt.RowsScanned += int64(n)
	if n == 0 {
		return
	}

	// 1. Selection.
	var sel []uint64
	if rt.pred != nil {
		sel = sc.bitmap(n)
		evalPred(p.Pred, d, sel, n, sc)
	}
	if cap(sc.idxs) < n {
		sc.idxs = make([]int32, 0, n)
	}
	idxs := sc.idxs[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			idxs = append(idxs, int32(i))
		}
	} else {
		for wi, w := range sel {
			base := int32(wi << 6)
			for w != 0 {
				idxs = append(idxs, base+int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	}
	if len(idxs) == 0 {
		return
	}

	// 2. Per-row pass in row order: sampling rate, scan counters, group
	// staging. With uniform block metadata the rate (and its reciprocal)
	// is computed once — the same value the row path derives per row.
	uniform := d.Uniform()
	var urate, uinv float64
	if uniform {
		urate = 1.0
		if in.Rate != nil {
			urate = in.Rate(storage.RowMeta{Rate: d.UniformRate, StratumFreq: d.UniformFreq})
		}
		if urate > 0 {
			uinv = 1 / urate
		}
		if d.UniformFreq > pt.MaxMatchedStratumFreq {
			pt.MaxMatchedStratumFreq = d.UniformFreq
		}
	}

	// Group resolution mode for this block.
	var dictCol *colstore.Column
	var codeGS []*groupState
	if len(p.GroupBy) == 1 {
		if c := &d.Cols[p.GroupBy[0]]; c.Enc == colstore.EncDict && c.Nulls == nil {
			dictCol = c
			if cap(sc.codeGS) < len(c.Dict) {
				sc.codeGS = make([]*groupState, len(c.Dict))
			}
			codeGS = sc.codeGS[:len(c.Dict)]
			for i := range codeGS {
				codeGS[i] = nil
			}
		}
	}
	if cap(sc.keybuf) < len(p.GroupBy) {
		sc.keybuf = make([]types.Value, len(p.GroupBy))
	}
	keybuf := sc.keybuf[:len(p.GroupBy)]
	var globalGS *groupState

	pt.RowsMatched += int64(len(idxs))
	// Even when block metadata varies, the derived rates often don't
	// (e.g. a base table whose stratum frequencies differ but whose rates
	// are all 1). Track that: constant rates let aggregation hoist the
	// weight math exactly as in the metadata-uniform case.
	ratesEqual := true
	firstRate := 0.0
	for ii, i32 := range idxs {
		i := int(i32)
		rate := urate
		if uniform {
			if rate > 0 {
				pt.WeightedMatched += uinv
			}
		} else {
			rate = 1.0
			if in.Rate != nil {
				rate = in.Rate(storage.RowMeta{Rate: d.RateAt(i), StratumFreq: d.FreqAt(i)})
			}
			if rate > 0 {
				pt.WeightedMatched += 1 / rate
			}
			if f := d.FreqAt(i); f > pt.MaxMatchedStratumFreq {
				pt.MaxMatchedStratumFreq = f
			}
			if ii == 0 {
				firstRate = rate
			} else if rate != firstRate {
				ratesEqual = false
			}
		}

		var gs *groupState
		switch {
		case dictCol != nil:
			code := dictCol.Codes[i]
			gs = codeGS[code]
			if gs == nil {
				v := types.Str(dictCol.Dict[code])
				keybuf[0] = v
				gs = pt.findGroupVals(p, keybuf, v.HashInto(types.HashSeed))
				codeGS[code] = gs
			}
		case len(p.GroupBy) == 0:
			if globalGS == nil {
				globalGS = pt.findGroupVals(p, nil, types.HashSeed)
			}
			gs = globalGS
		default:
			h := types.HashSeed
			for ki, ci := range p.GroupBy {
				v := d.Cols[ci].Value(i)
				keybuf[ki] = v
				h = v.HashInto(h)
			}
			gs = pt.findGroupVals(p, keybuf, h)
		}
		if gs.batchRows == nil {
			gs.batchRows, gs.batchRates = sc.getBatchBufs()
			sc.touched = append(sc.touched, gs)
		}
		gs.batchRows = append(gs.batchRows, i32)
		if !uniform {
			gs.batchRates = append(gs.batchRates, rate)
		}
	}

	// 3. Batched per-group aggregation. Each group's rows are fed to its
	// accumulators in row order, so every Acc sees exactly the sequence
	// the row path would produce. A block whose derived rates turned out
	// constant uses the hoisted-weight path with that shared rate — the
	// per-row weights are the same values either way.
	if !uniform && ratesEqual {
		uniform, urate = true, firstRate
	}
	for _, gs := range sc.touched {
		pt.accumulateBatch(p, d, gs, uniform, urate, sc)
		sc.putBatchBufs(gs.batchRows, gs.batchRates)
		gs.batchRows, gs.batchRates = nil, nil
	}
	sc.touched = sc.touched[:0]
	sc.idxs = idxs[:0]
}

// accumulateBatch feeds one group's staged rows through every aggregate.
func (pt *Partial) accumulateBatch(p *Plan, d *colstore.Data, gs *groupState, uniform bool, urate float64, sc *colScratch) {
	rows := gs.batchRows
	for ai := range p.Aggs {
		a := &p.Aggs[ai]
		acc := gs.accs[ai]
		if a.Col < 0 {
			// COUNT(*): every staged row contributes x = 1.
			if uniform {
				acc.AddBatch(nil, nil, len(rows), urate)
			} else {
				acc.AddBatch(nil, gs.batchRates, len(rows), 0)
			}
			continue
		}
		col := &d.Cols[a.Col]
		isCount := a.Kind == stats.AggCount

		// Fast path: no NULLs and rates already aligned with the batch.
		if col.Nulls == nil && col.Enc != colstore.EncValue {
			rates, ur := gs.batchRates, urate
			if uniform {
				rates = nil
			}
			if isCount {
				acc.AddBatch(nil, rates, len(rows), ur)
				continue
			}
			xs := growFloats(&sc.xs, len(rows))
			switch col.Enc {
			case colstore.EncFloat:
				src := col.Floats
				for j, ri := range rows {
					xs[j] = src[ri]
				}
			case colstore.EncInt, colstore.EncBool:
				src := col.Ints
				for j, ri := range rows {
					xs[j] = float64(src[ri])
				}
			default: // EncDict: strings aggregate as 0 (Value.AsFloat)
				for j := range rows {
					xs[j] = 0
				}
			}
			acc.AddBatch(xs, rates, len(rows), ur)
			continue
		}

		// NULL-skipping gather (SQL semantics: NULLs are ignored, and the
		// row drops out of this aggregate only).
		xs := growFloats(&sc.xs, len(rows))[:0]
		var rs []float64
		if !uniform {
			rs = growFloats(&sc.rs, len(rows))[:0]
		}
		for j, ri := range rows {
			i := int(ri)
			var x float64
			if col.Enc == colstore.EncValue {
				v := col.Values[i]
				if v.IsNull() {
					continue
				}
				x = v.AsFloat()
			} else {
				if col.IsNull(i) {
					continue
				}
				switch col.Enc {
				case colstore.EncFloat:
					x = col.Floats[i]
				case colstore.EncInt, colstore.EncBool:
					x = float64(col.Ints[i])
				default: // EncDict
					x = 0
				}
			}
			if isCount {
				x = 1
			}
			xs = append(xs, x)
			if !uniform {
				rs = append(rs, gs.batchRates[j])
			}
		}
		if isCount {
			acc.AddBatch(nil, rs, len(xs), urate)
		} else {
			acc.AddBatch(xs, rs, len(xs), urate)
		}
	}
}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// scanColumnarExpand is the join path over a columnar block: rows are
// materialised into a reused buffer and expanded exactly like the row
// scan (the expansion output, not the fact row, is what downstream code
// retains).
func (pt *Partial) scanColumnarExpand(p *Plan, rt *planRuntime, in Input, d *colstore.Data,
	sc *colScratch, expand func(r types.Row, emit func(types.Row))) {

	pred := rt.pred
	buf := sc.rowBuf(len(d.Cols))
	for i := 0; i < d.N; i++ {
		pt.RowsScanned++
		rate := 1.0
		if in.Rate != nil {
			rate = in.Rate(storage.RowMeta{Rate: d.RateAt(i), StratumFreq: d.FreqAt(i)})
		}
		freq := d.FreqAt(i)
		row := d.RowInto(buf, i)
		expand(row, func(r types.Row) {
			if pred != nil && !pred(r) {
				return
			}
			pt.addMatched(p, r, rate, freq)
		})
	}
}
