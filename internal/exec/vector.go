package exec

import (
	"math"
	"math/bits"

	"blinkdb/internal/colstore"
	"blinkdb/internal/stats"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// This file implements the vectorized scan path over columnar blocks
// (internal/colstore): predicates are evaluated column-at-a-time into a
// selection bitmap, then grouping and aggregation run over the selected
// rows using contiguous typed slices — no types.Row is materialised and
// no per-row interface dispatch happens.
//
// BIT-IDENTITY CONTRACT: for any block, the columnar scan must produce
// exactly the state the row scan would: the same rows selected, the same
// groups created, and — because floating-point addition is not
// associative — every per-group accumulator fed the same (x, rate) pairs
// in the same row order, and WeightedMatched summed in row order. The
// kernels below therefore reorder work only in ways invisible to IEEE
// arithmetic (hoisting loop-invariant weight math, batching per-group
// accumulation without changing each group's row order).

// colScratch holds buffers reused across the columnar blocks of one
// RunPartial call, so steady-state scanning allocates nothing.
type colScratch struct {
	sel     []uint64   // selection bitmap
	free    [][]uint64 // temp bitmaps for AND/OR subtrees
	idxs    []int32    // selected row indices, ascending
	passTab []bool     // per-dictionary-code predicate outcomes
	xs      []float64  // gathered aggregate inputs
	rs      []float64  // gathered per-row rates
	keybuf  []types.Value
	rowbuf  types.Row
	codeGS  []*groupState // per-dictionary-code group cache
	touched []*groupState // groups staged during the current block

	// rowPool/ratePool recycle the per-group staging buffers across
	// blocks and partials (group states die with their partial; their
	// buffers shouldn't).
	rowPool  [][]int32
	ratePool [][]float64
}

func (sc *colScratch) getBatchBufs() ([]int32, []float64) {
	var rows []int32
	var rates []float64
	if k := len(sc.rowPool); k > 0 {
		rows = sc.rowPool[k-1]
		sc.rowPool = sc.rowPool[:k-1]
	} else {
		rows = make([]int32, 0, 64)
	}
	if k := len(sc.ratePool); k > 0 {
		rates = sc.ratePool[k-1]
		sc.ratePool = sc.ratePool[:k-1]
	} else {
		rates = make([]float64, 0, 64)
	}
	return rows, rates
}

func (sc *colScratch) putBatchBufs(rows []int32, rates []float64) {
	sc.rowPool = append(sc.rowPool, rows[:0])
	sc.ratePool = append(sc.ratePool, rates[:0])
}

func (sc *colScratch) bitmap(n int) []uint64 {
	words := (n + 63) / 64
	if cap(sc.sel) < words {
		sc.sel = make([]uint64, words)
	}
	return sc.sel[:words]
}

func (sc *colScratch) acquireTemp(words int) []uint64 {
	if k := len(sc.free); k > 0 {
		t := sc.free[k-1]
		sc.free = sc.free[:k-1]
		if cap(t) >= words {
			return t[:words]
		}
	}
	return make([]uint64, words)
}

func (sc *colScratch) releaseTemp(t []uint64) { sc.free = append(sc.free, t) }

func (sc *colScratch) rowBuf(w int) types.Row {
	if cap(sc.rowbuf) < w {
		sc.rowbuf = make(types.Row, w)
	}
	return sc.rowbuf[:w]
}

// ---- bitmap primitives ----

func bitmapFill(dst []uint64, n int, b bool) {
	if !b {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i := range dst {
		dst[i] = ^uint64(0)
	}
	maskTail(dst, n)
}

// maskTail clears bits ≥ n in the last word.
func maskTail(dst []uint64, n int) {
	if rem := n & 63; rem != 0 && len(dst) > 0 {
		dst[len(dst)-1] &= (1 << uint(rem)) - 1
	}
}

func bitmapAnd(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

func bitmapOr(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

func bitmapNot(dst []uint64, n int) {
	for i := range dst {
		dst[i] = ^dst[i]
	}
	maskTail(dst, n)
}

// bitmapSetRange sets bits [lo, hi) word-at-a-time.
func bitmapSetRange(dst []uint64, lo, hi int) {
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if loW == hiW {
		dst[loW] |= loMask & hiMask
		return
	}
	dst[loW] |= loMask
	for w := loW + 1; w < hiW; w++ {
		dst[w] = ^uint64(0)
	}
	dst[hiW] |= hiMask
}

// patchNulls forces the selection outcome of every NULL row to b. Null
// bitmaps never set bits past the row count, so no tail masking is needed.
func patchNulls(dst, nulls []uint64, b bool) {
	if nulls == nil {
		return
	}
	if b {
		bitmapOr(dst, nulls)
		return
	}
	for i := range dst {
		dst[i] &^= nulls[i]
	}
}

// cmpPass mirrors types.signOK: whether a comparison outcome c passes an
// operator decomposed into (lt, eq, gt) acceptance flags.
func cmpPass(c int, lt, eq, gt bool) bool {
	if c < 0 {
		return lt
	}
	if c > 0 {
		return gt
	}
	return eq
}

func opFlags(op types.CmpOp) (lt, eq, gt bool) {
	switch op {
	case types.CmpEq:
		eq = true
	case types.CmpNe:
		lt, gt = true, true
	case types.CmpLt:
		lt = true
	case types.CmpLe:
		lt, eq = true, true
	case types.CmpGt:
		gt = true
	case types.CmpGe:
		eq, gt = true, true
	}
	return
}

// ---- predicate → selection bitmap ----

// evalPred fills dst with pred's selection over the block; bits ≥ n stay
// clear. Boolean combination over bitmaps is exact boolean algebra, so the
// result equals per-row Predicate.Eval for every row.
func evalPred(pred types.Predicate, d *colstore.Data, dst []uint64, n int, sc *colScratch) {
	switch t := pred.(type) {
	case types.TruePred:
		bitmapFill(dst, n, true)
	case *types.CmpPred:
		evalCmp(t, d, dst, n, sc)
	case *types.AndPred:
		if len(t.Kids) == 0 {
			bitmapFill(dst, n, true) // empty AND is true, as in Eval
			return
		}
		evalPred(t.Kids[0], d, dst, n, sc)
		for _, k := range t.Kids[1:] {
			tmp := sc.acquireTemp(len(dst))
			evalPred(k, d, tmp, n, sc)
			bitmapAnd(dst, tmp)
			sc.releaseTemp(tmp)
		}
	case *types.OrPred:
		if len(t.Kids) == 0 {
			bitmapFill(dst, n, false) // empty OR is false, as in Eval
			return
		}
		evalPred(t.Kids[0], d, dst, n, sc)
		for _, k := range t.Kids[1:] {
			tmp := sc.acquireTemp(len(dst))
			evalPred(k, d, tmp, n, sc)
			bitmapOr(dst, tmp)
			sc.releaseTemp(tmp)
		}
	case *types.NotPred:
		evalPred(t.Kid, d, dst, n, sc)
		bitmapNot(dst, n)
	default:
		// Unknown predicate implementation: materialise rows and defer to
		// Eval (the row path's own fallback).
		buf := sc.rowBuf(len(d.Cols))
		bitmapFill(dst, n, false)
		for i := 0; i < n; i++ {
			if pred.Eval(d.RowInto(buf, i)) {
				dst[i>>6] |= 1 << uint(i&63)
			}
		}
	}
}

// evalCmp evaluates one comparison leaf. Fast paths cover typed columns
// against same-class constants; every mixed case falls back to
// types.Compare, which is exactly what the row path's compiled closures
// do for kind mismatches.
func evalCmp(t *types.CmpPred, d *colstore.Data, dst []uint64, n int, sc *colScratch) {
	lt, eq, gt := opFlags(t.Op)
	col := &d.Cols[t.ColIdx]
	val := t.Val

	numericConst := val.Kind == types.KindInt || val.Kind == types.KindFloat || val.Kind == types.KindBool
	switch col.Enc {
	case colstore.EncFloat:
		switch {
		case numericConst:
			c := val.AsFloat()
			cmpFloats(col.Floats[:n], c, dst, lt, eq, gt)
			patchNulls(dst, col.Nulls, lt) // NULL sorts before numerics
		case val.Kind == types.KindString:
			bitmapFill(dst, n, lt) // numerics and NULL sort before strings
		default: // NULL constant
			bitmapFill(dst, n, gt)
			patchNulls(dst, col.Nulls, eq)
		}
	case colstore.EncInt:
		switch {
		case val.Kind == types.KindInt:
			cmpInts(col.Ints[:n], val.I, dst, lt, eq, gt)
			patchNulls(dst, col.Nulls, lt)
		case numericConst:
			c := val.AsFloat()
			cmpIntsAsFloat(col.Ints[:n], c, dst, lt, eq, gt)
			patchNulls(dst, col.Nulls, lt)
		case val.Kind == types.KindString:
			bitmapFill(dst, n, lt)
		default:
			bitmapFill(dst, n, gt)
			patchNulls(dst, col.Nulls, eq)
		}
	case colstore.EncBool:
		switch {
		case numericConst:
			// Bool vs Int/Float/Bool constants compare as floats under
			// types.Compare (only the Int–Int pair compares integrally).
			c := val.AsFloat()
			cmpIntsAsFloat(col.Ints[:n], c, dst, lt, eq, gt)
			patchNulls(dst, col.Nulls, lt)
		case val.Kind == types.KindString:
			bitmapFill(dst, n, lt)
		default:
			bitmapFill(dst, n, gt)
			patchNulls(dst, col.Nulls, eq)
		}
	case colstore.EncDict:
		switch {
		case val.Kind == types.KindString:
			// One comparison per distinct value, then a table lookup per
			// row.
			if cap(sc.passTab) < len(col.Dict) {
				sc.passTab = make([]bool, len(col.Dict))
			}
			tab := sc.passTab[:len(col.Dict)]
			c := val.S
			for j, s := range col.Dict {
				b := eq
				if s < c {
					b = lt
				} else if s > c {
					b = gt
				}
				tab[j] = b
			}
			codes := col.Codes[:n]
			for base := 0; base < n; base += 64 {
				var w uint64
				m := n - base
				if m > 64 {
					m = 64
				}
				for k := 0; k < m; k++ {
					if tab[codes[base+k]] {
						w |= 1 << uint(k)
					}
				}
				dst[base>>6] = w
			}
			patchNulls(dst, col.Nulls, lt) // NULL sorts before strings
		case numericConst:
			bitmapFill(dst, n, gt) // strings sort after numerics
			patchNulls(dst, col.Nulls, lt)
		default: // NULL constant
			bitmapFill(dst, n, gt)
			patchNulls(dst, col.Nulls, eq)
		}
	case colstore.EncRLE:
		// One verdict per RUN, painted over the run's bit range. The
		// generic Compare decides each run exactly as the row path's
		// closures decide each row (NULL runs and cross-kind constants
		// included), so this is the typed kernels' semantics at run
		// granularity.
		bitmapFill(dst, n, false)
		prev := 0
		for r, rv := range col.RunVals {
			end := int(col.RunEnds[r])
			if cmpPass(types.Compare(rv, val), lt, eq, gt) {
				bitmapSetRange(dst, prev, end)
			}
			prev = end
		}
	default: // EncValue: mixed kinds, generic comparison per row
		vals := col.Values[:n]
		for base := 0; base < n; base += 64 {
			var w uint64
			m := n - base
			if m > 64 {
				m = 64
			}
			for k := 0; k < m; k++ {
				if cmpPass(types.Compare(vals[base+k], val), lt, eq, gt) {
					w |= 1 << uint(k)
				}
			}
			dst[base>>6] = w
		}
	}
}

// The compare kernels below are SIMD-shaped: the constant is hoisted, the
// per-element verdict is a branch-free table lookup indexed by
// 1 + (v>c) - (v<c) (both comparisons compile to SETcc, no branches), and
// the loops are 4-wide unrolled so the compiler can keep the verdicts in
// independent registers. NaN yields (v>c)=(v<c)=false → the eq slot, which
// is exactly how the row path's closures treat it.

// b2u converts a bool to 0/1 (inlines to SETcc — no branch).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// verdictTab builds the 3-entry pass table for (lt, eq, gt).
func verdictTab(lt, eq, gt bool) [3]uint64 {
	return [3]uint64{b2u(lt), b2u(eq), b2u(gt)}
}

// cmpFloats compares a float column against c. The (lt,eq,gt) selection
// matches the row path's compiled closure exactly, including NaN (no
// ordered comparison holds, so the eq flag decides).
func cmpFloats(xs []float64, c float64, dst []uint64, lt, eq, gt bool) {
	tab := verdictTab(lt, eq, gt)
	n := len(xs)
	for base := 0; base < n; base += 64 {
		m := n - base
		if m > 64 {
			m = 64
		}
		blk := xs[base : base+m]
		var w uint64
		k := 0
		for ; k+4 <= m; k += 4 {
			v0, v1, v2, v3 := blk[k], blk[k+1], blk[k+2], blk[k+3]
			w |= tab[1+b2u(v0 > c)-b2u(v0 < c)] << uint(k)
			w |= tab[1+b2u(v1 > c)-b2u(v1 < c)] << uint(k+1)
			w |= tab[1+b2u(v2 > c)-b2u(v2 < c)] << uint(k+2)
			w |= tab[1+b2u(v3 > c)-b2u(v3 < c)] << uint(k+3)
		}
		for ; k < m; k++ {
			v := blk[k]
			w |= tab[1+b2u(v > c)-b2u(v < c)] << uint(k)
		}
		dst[base>>6] = w
	}
}

func cmpInts(xs []int64, c int64, dst []uint64, lt, eq, gt bool) {
	tab := verdictTab(lt, eq, gt)
	n := len(xs)
	for base := 0; base < n; base += 64 {
		m := n - base
		if m > 64 {
			m = 64
		}
		blk := xs[base : base+m]
		var w uint64
		k := 0
		for ; k+4 <= m; k += 4 {
			v0, v1, v2, v3 := blk[k], blk[k+1], blk[k+2], blk[k+3]
			w |= tab[1+b2u(v0 > c)-b2u(v0 < c)] << uint(k)
			w |= tab[1+b2u(v1 > c)-b2u(v1 < c)] << uint(k+1)
			w |= tab[1+b2u(v2 > c)-b2u(v2 < c)] << uint(k+2)
			w |= tab[1+b2u(v3 > c)-b2u(v3 < c)] << uint(k+3)
		}
		for ; k < m; k++ {
			v := blk[k]
			w |= tab[1+b2u(v > c)-b2u(v < c)] << uint(k)
		}
		dst[base>>6] = w
	}
}

// intCmpMode says how a float-constant comparison over an int column was
// normalized by normIntCmp.
type intCmpMode uint8

const (
	// normInt: compare against an int64 constant with remapped flags.
	normInt intCmpMode = iota
	// normFill: every element gets the same verdict.
	normFill
	// normFloat: no exact mapping; keep the per-element float conversion.
	normFloat
)

// intCmpPlan is normIntCmp's result.
type intCmpPlan struct {
	mode       intCmpMode
	c          int64 // normInt: the integer threshold
	lt, eq, gt bool  // normInt: remapped acceptance flags
	fill       bool  // normFill: the shared verdict
}

// normIntCmp maps "float64(v) versus float constant c" (the row closure's
// semantics for an int column against a float/bool constant) onto an
// equivalent pure-int64 comparison, so the inner loop never converts.
//
//	x > 2.5   becomes  x >= 3   (fractional c: floor, eq joins the lt side)
//	x > 3.0   becomes  x > 3    (integral c below 2^53: exact as int64)
//	x < NaN   fills with the eq flag (no ordered comparison holds)
//	x < 1e300 fills with lt (c beyond every int64)
//
// Integral constants with 2^53 ≤ |c| ≤ 2^63 keep the float loop: there
// float64(v) rounds, so distinct ints can collide with c and no single
// int64 threshold reproduces the verdicts.
func normIntCmp(c float64, lt, eq, gt bool) intCmpPlan {
	const maxExact = float64(1 << 53)
	const maxInt64 = float64(1 << 63)
	switch {
	case c != c: // NaN
		return intCmpPlan{mode: normFill, fill: eq}
	case c > maxInt64:
		return intCmpPlan{mode: normFill, fill: lt}
	case c < -maxInt64:
		return intCmpPlan{mode: normFill, fill: gt}
	case c >= maxExact || c <= -maxExact:
		// ±2^63 endpoints included: float64(MaxInt64) rounds to 2^63
		// exactly, so even the boundary can produce an eq verdict.
		return intCmpPlan{mode: normFloat}
	case c == math.Trunc(c):
		// Exact integral constant: float64(v) vs c and v vs int64(c) agree
		// for every int64 v (rounding of |v| ≥ 2^53 cannot cross c).
		return intCmpPlan{mode: normInt, c: int64(c), lt: lt, eq: eq, gt: gt}
	default:
		// Fractional constant: no element equals c; v < c ⟺ v ≤ floor(c),
		// so comparing against floor(c) with eq folded into the lt side
		// reproduces every verdict.
		return intCmpPlan{mode: normInt, c: int64(math.Floor(c)), lt: lt, eq: lt, gt: gt}
	}
}

// cmpIntsAsFloat compares an int column against a float/bool constant with
// the row closure's float semantics, normalized so the common case runs
// the pure-int kernel (no per-element conversion).
func cmpIntsAsFloat(xs []int64, c float64, dst []uint64, lt, eq, gt bool) {
	switch plan := normIntCmp(c, lt, eq, gt); plan.mode {
	case normFill:
		bitmapFill(dst, len(xs), plan.fill)
	case normInt:
		cmpInts(xs, plan.c, dst, plan.lt, plan.eq, plan.gt)
	default:
		cmpIntsAsFloatSlow(xs, c, dst, lt, eq, gt)
	}
}

// cmpIntsAsFloatSlow is the per-element conversion fallback for constants
// in the 2^53..2^63 magnitude band.
func cmpIntsAsFloatSlow(xs []int64, c float64, dst []uint64, lt, eq, gt bool) {
	tab := verdictTab(lt, eq, gt)
	n := len(xs)
	for base := 0; base < n; base += 64 {
		m := n - base
		if m > 64 {
			m = 64
		}
		blk := xs[base : base+m]
		var w uint64
		for k := 0; k < m; k++ {
			v := float64(blk[k])
			w |= tab[1+b2u(v > c)-b2u(v < c)] << uint(k)
		}
		dst[base>>6] = w
	}
}

// ---- selection-vector kernels ----
//
// For a single-comparison predicate over a null-free typed column, writing
// selected row indices directly skips the bitmap materialization AND the
// bit-extraction pass. The write is unconditional (idxs[k] always stores
// the candidate, k advances by the 0/1 verdict), so the loop has no
// mispredictable branch at any selectivity. Dispatch (selVecLeaf) prefers
// the bitmap kernels when the running selectivity estimate is very low —
// there the extraction pass skips whole empty words and wins.

// selFloats appends the indices of elements passing the comparison.
// idxs must have length len(xs); the match count is returned.
func selFloats(xs []float64, c float64, idxs []int32, lt, eq, gt bool) int {
	tab := verdictTab(lt, eq, gt)
	n := len(xs)
	k := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		v0, v1, v2, v3 := xs[i], xs[i+1], xs[i+2], xs[i+3]
		idxs[k] = int32(i)
		k += int(tab[1+b2u(v0 > c)-b2u(v0 < c)])
		idxs[k] = int32(i + 1)
		k += int(tab[1+b2u(v1 > c)-b2u(v1 < c)])
		idxs[k] = int32(i + 2)
		k += int(tab[1+b2u(v2 > c)-b2u(v2 < c)])
		idxs[k] = int32(i + 3)
		k += int(tab[1+b2u(v3 > c)-b2u(v3 < c)])
	}
	for ; i < n; i++ {
		v := xs[i]
		idxs[k] = int32(i)
		k += int(tab[1+b2u(v > c)-b2u(v < c)])
	}
	return k
}

// selInts is selFloats for int64 columns.
func selInts(xs []int64, c int64, idxs []int32, lt, eq, gt bool) int {
	tab := verdictTab(lt, eq, gt)
	n := len(xs)
	k := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		v0, v1, v2, v3 := xs[i], xs[i+1], xs[i+2], xs[i+3]
		idxs[k] = int32(i)
		k += int(tab[1+b2u(v0 > c)-b2u(v0 < c)])
		idxs[k] = int32(i + 1)
		k += int(tab[1+b2u(v1 > c)-b2u(v1 < c)])
		idxs[k] = int32(i + 2)
		k += int(tab[1+b2u(v2 > c)-b2u(v2 < c)])
		idxs[k] = int32(i + 3)
		k += int(tab[1+b2u(v3 > c)-b2u(v3 < c)])
	}
	for ; i < n; i++ {
		v := xs[i]
		idxs[k] = int32(i)
		k += int(tab[1+b2u(v > c)-b2u(v < c)])
	}
	return k
}

// selFill writes 0..n-1 (every row selected) or nothing.
func selFill(idxs []int32, n int, pass bool) int {
	if !pass {
		return 0
	}
	for i := 0; i < n; i++ {
		idxs[i] = int32(i)
	}
	return n
}

// selVecLeaf evaluates a single comparison leaf directly into the scratch
// selection vector when a branch-free kernel applies and the selectivity
// estimate favors it. Returns ok=false to fall back to the bitmap path.
// The estimate is the partial's running matched/scanned ratio — a
// deterministic function of the (fixed) partial boundaries, so kernel
// choice, like everything physical here, cannot vary with worker count
// (and either kernel selects the same rows anyway).
func selVecLeaf(t *types.CmpPred, d *colstore.Data, idxs []int32, n int, priorScanned, priorMatched int64) (int, bool) {
	if priorScanned > 0 && priorMatched*16 < priorScanned {
		return 0, false // sparse: bitmap extraction skips empty words
	}
	col := &d.Cols[t.ColIdx]
	if col.Nulls != nil {
		return 0, false
	}
	lt, eq, gt := opFlags(t.Op)
	val := t.Val
	numericConst := val.Kind == types.KindInt || val.Kind == types.KindFloat || val.Kind == types.KindBool
	switch col.Enc {
	case colstore.EncFloat:
		if !numericConst {
			return 0, false
		}
		return selFloats(col.Floats[:n], val.AsFloat(), idxs, lt, eq, gt), true
	case colstore.EncInt:
		if val.Kind == types.KindInt {
			return selInts(col.Ints[:n], val.I, idxs, lt, eq, gt), true
		}
		fallthrough
	case colstore.EncBool:
		if !numericConst {
			return 0, false
		}
		switch plan := normIntCmp(val.AsFloat(), lt, eq, gt); plan.mode {
		case normInt:
			return selInts(col.Ints[:n], plan.c, idxs, plan.lt, plan.eq, plan.gt), true
		case normFill:
			return selFill(idxs, n, plan.fill), true
		}
	}
	return 0, false
}

// ---- grouping + aggregation over selected rows ----

// findGroupVals mirrors Partial.findGroup for keys extracted directly
// from columns (vals is the projection onto the GROUP BY columns; h its
// HashRowKey-compatible hash).
func (pt *Partial) findGroupVals(p *Plan, vals []types.Value, h uint64) *groupState {
	bucket := pt.groups[h]
	for _, gs := range bucket {
		ok := true
		for ki := range vals {
			if !types.GroupEqual(gs.key[ki], vals[ki]) {
				ok = false
				break
			}
		}
		if ok {
			return gs
		}
	}
	gs := &groupState{accs: make([]*stats.Acc, len(p.Aggs))}
	for ai, a := range p.Aggs {
		gs.accs[ai] = stats.NewAcc(a.Kind, a.P)
	}
	if len(vals) > 0 {
		gs.key = make([]types.Value, len(vals))
		copy(gs.key, vals)
	}
	pt.groups[h] = append(bucket, gs)
	return gs
}

// scanColumnar scans one columnar block into the partial: selection
// (bitmap or selection-vector kernels, or skipped entirely when the
// block's zones already proved the predicate — allTrue), then a row-order
// pass that maintains the scan counters and stages each selected row on
// its group, then per-group batched aggregation. See the bit-identity
// contract at the top of the file.
func (pt *Partial) scanColumnar(p *Plan, rt *planRuntime, in Input, d *colstore.Data, sc *colScratch, allTrue bool) {
	n := d.N
	if n == 0 {
		return
	}
	if (rt.pred == nil || allTrue) && !p.Tuning.NoTristateZones &&
		pt.scanColumnarAllRows(p, in, d, sc) {
		return
	}
	priorScanned, priorMatched := pt.RowsScanned, pt.RowsMatched
	pt.RowsScanned += int64(n)

	// 1. Selection.
	if cap(sc.idxs) < n {
		sc.idxs = make([]int32, 0, n)
	}
	idxs := sc.idxs[:0]
	var sel []uint64
	selDone := false
	if rt.pred != nil && !allTrue {
		if rt.soleLeaf != nil && !p.Tuning.NoSelVectors {
			if k, ok := selVecLeaf(rt.soleLeaf, d, sc.idxs[:n], n, priorScanned, priorMatched); ok {
				idxs, selDone = sc.idxs[:k], true
			}
		}
		if !selDone {
			sel = sc.bitmap(n)
			evalPred(p.Pred, d, sel, n, sc)
		}
	}
	if !selDone {
		if sel == nil {
			for i := 0; i < n; i++ {
				idxs = append(idxs, int32(i))
			}
		} else {
			for wi, w := range sel {
				base := int32(wi << 6)
				for w != 0 {
					idxs = append(idxs, base+int32(bits.TrailingZeros64(w)))
					w &= w - 1
				}
			}
		}
	}
	if len(idxs) == 0 {
		return
	}

	// 2. Per-row pass in row order: sampling rate, scan counters, group
	// staging. With uniform block metadata the rate (and its reciprocal)
	// is computed once — the same value the row path derives per row.
	uniform := d.Uniform()
	var urate, uinv float64
	if uniform {
		urate = 1.0
		if in.Rate != nil {
			urate = in.Rate(storage.RowMeta{Rate: d.UniformRate, StratumFreq: d.UniformFreq})
		}
		if urate > 0 {
			uinv = 1 / urate
		}
		if d.UniformFreq > pt.MaxMatchedStratumFreq {
			pt.MaxMatchedStratumFreq = d.UniformFreq
		}
	}

	// Group resolution mode for this block.
	var dictCol *colstore.Column
	var codeGS []*groupState
	var rleCol *colstore.Column
	rleRun := 0
	var rleGS *groupState
	if len(p.GroupBy) == 1 {
		switch c := &d.Cols[p.GroupBy[0]]; {
		case c.Enc == colstore.EncDict && c.Nulls == nil:
			dictCol = c
			if cap(sc.codeGS) < len(c.Dict) {
				sc.codeGS = make([]*groupState, len(c.Dict))
			}
			codeGS = sc.codeGS[:len(c.Dict)]
			for i := range codeGS {
				codeGS[i] = nil
			}
		case c.Enc == colstore.EncRLE:
			// Selected indices are ascending, so an advancing run cursor
			// resolves the group once per RUN instead of once per row —
			// the RLE payoff for GROUP BY stratification columns.
			rleCol = c
		}
	}
	if cap(sc.keybuf) < len(p.GroupBy) {
		sc.keybuf = make([]types.Value, len(p.GroupBy))
	}
	keybuf := sc.keybuf[:len(p.GroupBy)]
	var globalGS *groupState

	pt.RowsMatched += int64(len(idxs))
	// Even when block metadata varies, the derived rates often don't
	// (e.g. a base table whose stratum frequencies differ but whose rates
	// are all 1). Track that: constant rates let aggregation hoist the
	// weight math exactly as in the metadata-uniform case.
	ratesEqual := true
	firstRate := 0.0
	for ii, i32 := range idxs {
		i := int(i32)
		rate := urate
		if uniform {
			if rate > 0 {
				pt.WeightedMatched += uinv
			}
		} else {
			rate = 1.0
			if in.Rate != nil {
				rate = in.Rate(storage.RowMeta{Rate: d.RateAt(i), StratumFreq: d.FreqAt(i)})
			}
			if rate > 0 {
				pt.WeightedMatched += 1 / rate
			}
			if f := d.FreqAt(i); f > pt.MaxMatchedStratumFreq {
				pt.MaxMatchedStratumFreq = f
			}
			if ii == 0 {
				firstRate = rate
			} else if rate != firstRate {
				ratesEqual = false
			}
		}

		var gs *groupState
		switch {
		case rleCol != nil:
			for i32 >= rleCol.RunEnds[rleRun] {
				rleRun++
				rleGS = nil
			}
			if rleGS == nil {
				v := rleCol.RunVals[rleRun]
				keybuf[0] = v
				rleGS = pt.findGroupVals(p, keybuf, v.HashInto(types.HashSeed))
			}
			gs = rleGS
		case dictCol != nil:
			code := dictCol.Codes[i]
			gs = codeGS[code]
			if gs == nil {
				v := types.Str(dictCol.Dict[code])
				keybuf[0] = v
				gs = pt.findGroupVals(p, keybuf, v.HashInto(types.HashSeed))
				codeGS[code] = gs
			}
		case len(p.GroupBy) == 0:
			if globalGS == nil {
				globalGS = pt.findGroupVals(p, nil, types.HashSeed)
			}
			gs = globalGS
		default:
			h := types.HashSeed
			for ki, ci := range p.GroupBy {
				v := d.Cols[ci].Value(i)
				keybuf[ki] = v
				h = v.HashInto(h)
			}
			gs = pt.findGroupVals(p, keybuf, h)
		}
		if gs.batchRows == nil {
			gs.batchRows, gs.batchRates = sc.getBatchBufs()
			sc.touched = append(sc.touched, gs)
		}
		gs.batchRows = append(gs.batchRows, i32)
		if !uniform {
			gs.batchRates = append(gs.batchRates, rate)
		}
	}

	// 3. Batched per-group aggregation. Each group's rows are fed to its
	// accumulators in row order, so every Acc sees exactly the sequence
	// the row path would produce. A block whose derived rates turned out
	// constant uses the hoisted-weight path with that shared rate — the
	// per-row weights are the same values either way.
	if !uniform && ratesEqual {
		uniform, urate = true, firstRate
	}
	for _, gs := range sc.touched {
		pt.accumulateBatch(p, d, gs, uniform, urate, sc)
		sc.putBatchBufs(gs.batchRows, gs.batchRates)
		gs.batchRows, gs.batchRates = nil, nil
	}
	sc.touched = sc.touched[:0]
	sc.idxs = idxs[:0]
}

// scanColumnarAllRows is the whole-block lane of the all-true zone state:
// every row is known to match (no predicate, or the zones imply it), so
// the block aggregates as contiguous group ranges without materializing a
// selection or staging per-row indices. It handles uniform-metadata blocks
// whose GROUP BY is empty or a single RLE column (group resolved once per
// run) and whose aggregated columns are null-free typed slices or RLE;
// anything else returns false and takes the generic path. Bit-identity
// holds because AddBatch is a sequential fold — splitting one group's rows
// into consecutive in-order AddBatch calls reproduces the exact operation
// stream the staged path (and the row path) performs.
func (pt *Partial) scanColumnarAllRows(p *Plan, in Input, d *colstore.Data, sc *colScratch) bool {
	n := d.N
	if !d.Uniform() {
		return false
	}
	var rleCol *colstore.Column
	if len(p.GroupBy) == 1 {
		c := &d.Cols[p.GroupBy[0]]
		if c.Enc != colstore.EncRLE {
			return false
		}
		rleCol = c
	} else if len(p.GroupBy) != 0 {
		return false
	}
	for ai := range p.Aggs {
		a := &p.Aggs[ai]
		if a.Col < 0 {
			continue
		}
		if c := &d.Cols[a.Col]; c.Enc == colstore.EncValue || c.Nulls != nil {
			return false
		}
	}

	pt.RowsScanned += int64(n)
	pt.RowsMatched += int64(n)
	urate := 1.0
	if in.Rate != nil {
		urate = in.Rate(storage.RowMeta{Rate: d.UniformRate, StratumFreq: d.UniformFreq})
	}
	if d.UniformFreq > pt.MaxMatchedStratumFreq {
		pt.MaxMatchedStratumFreq = d.UniformFreq
	}
	if urate > 0 {
		// Same add chain as the per-row path: n sequential additions of the
		// shared reciprocal.
		uinv := 1 / urate
		wm := pt.WeightedMatched
		for j := 0; j < n; j++ {
			wm += uinv
		}
		pt.WeightedMatched = wm
	}

	emitRange := func(gs *groupState, lo, hi int) {
		m := hi - lo
		for ai := range p.Aggs {
			a := &p.Aggs[ai]
			acc := gs.accs[ai]
			if a.Col < 0 {
				acc.AddBatch(nil, nil, m, urate)
				continue
			}
			col := &d.Cols[a.Col]
			isCount := a.Kind == stats.AggCount
			switch col.Enc {
			case colstore.EncRLE:
				// Per-run: NULL runs drop out of this aggregate only, and a
				// non-null run contributes its constant value m2 times.
				run := col.RunOf(lo)
				for i := lo; i < hi; run++ {
					end := int(col.RunEnds[run])
					if end > hi {
						end = hi
					}
					if v := col.RunVals[run]; !v.IsNull() {
						m2 := end - i
						if isCount {
							acc.AddBatch(nil, nil, m2, urate)
						} else {
							xs := growFloats(&sc.xs, m2)
							x := v.AsFloat()
							for j := range xs {
								xs[j] = x
							}
							acc.AddBatch(xs, nil, m2, urate)
						}
					}
					i = end
				}
			case colstore.EncFloat:
				if isCount {
					acc.AddBatch(nil, nil, m, urate)
				} else {
					acc.AddBatch(col.Floats[lo:hi], nil, m, urate)
				}
			case colstore.EncInt, colstore.EncBool:
				if isCount {
					acc.AddBatch(nil, nil, m, urate)
				} else {
					xs := growFloats(&sc.xs, m)
					for j, v := range col.Ints[lo:hi] {
						xs[j] = float64(v)
					}
					acc.AddBatch(xs, nil, m, urate)
				}
			default: // EncDict: strings aggregate as 0 (Value.AsFloat)
				if isCount {
					acc.AddBatch(nil, nil, m, urate)
				} else {
					xs := growFloats(&sc.xs, m)
					for j := range xs {
						xs[j] = 0
					}
					acc.AddBatch(xs, nil, m, urate)
				}
			}
		}
	}

	if rleCol == nil {
		emitRange(pt.findGroupVals(p, nil, types.HashSeed), 0, n)
		return true
	}
	if cap(sc.keybuf) < 1 {
		sc.keybuf = make([]types.Value, 1)
	}
	keybuf := sc.keybuf[:1]
	for lo, run := 0, 0; lo < n; run++ {
		hi := int(rleCol.RunEnds[run])
		if hi > n {
			hi = n
		}
		v := rleCol.RunVals[run]
		keybuf[0] = v
		emitRange(pt.findGroupVals(p, keybuf, v.HashInto(types.HashSeed)), lo, hi)
		lo = hi
	}
	return true
}

// accumulateBatch feeds one group's staged rows through every aggregate.
func (pt *Partial) accumulateBatch(p *Plan, d *colstore.Data, gs *groupState, uniform bool, urate float64, sc *colScratch) {
	rows := gs.batchRows
	for ai := range p.Aggs {
		a := &p.Aggs[ai]
		acc := gs.accs[ai]
		if a.Col < 0 {
			// COUNT(*): every staged row contributes x = 1.
			if uniform {
				acc.AddBatch(nil, nil, len(rows), urate)
			} else {
				acc.AddBatch(nil, gs.batchRates, len(rows), 0)
			}
			continue
		}
		col := &d.Cols[a.Col]
		isCount := a.Kind == stats.AggCount

		if col.Enc == colstore.EncRLE {
			// Run-cursor gather: batch rows are ascending, so each run's
			// value (and NULL-ness) is resolved once. A NULL run drops its
			// rows from this aggregate only, as in the row path.
			xs := growFloats(&sc.xs, len(rows))[:0]
			var rs []float64
			if !uniform {
				rs = growFloats(&sc.rs, len(rows))[:0]
			}
			run := 0
			runNull := col.RunVals[0].IsNull()
			x := col.RunVals[0].AsFloat()
			for j, ri := range rows {
				for ri >= col.RunEnds[run] {
					run++
					runNull = col.RunVals[run].IsNull()
					x = col.RunVals[run].AsFloat()
				}
				if runNull {
					continue
				}
				xs = append(xs, x)
				if !uniform {
					rs = append(rs, gs.batchRates[j])
				}
			}
			if isCount {
				acc.AddBatch(nil, rs, len(xs), urate)
			} else {
				acc.AddBatch(xs, rs, len(xs), urate)
			}
			continue
		}

		// Fast path: no NULLs and rates already aligned with the batch.
		if col.Nulls == nil && col.Enc != colstore.EncValue {
			rates, ur := gs.batchRates, urate
			if uniform {
				rates = nil
			}
			if isCount {
				acc.AddBatch(nil, rates, len(rows), ur)
				continue
			}
			xs := growFloats(&sc.xs, len(rows))
			switch col.Enc {
			case colstore.EncFloat:
				src := col.Floats
				for j, ri := range rows {
					xs[j] = src[ri]
				}
			case colstore.EncInt, colstore.EncBool:
				src := col.Ints
				for j, ri := range rows {
					xs[j] = float64(src[ri])
				}
			default: // EncDict: strings aggregate as 0 (Value.AsFloat)
				for j := range rows {
					xs[j] = 0
				}
			}
			acc.AddBatch(xs, rates, len(rows), ur)
			continue
		}

		// NULL-skipping gather (SQL semantics: NULLs are ignored, and the
		// row drops out of this aggregate only).
		xs := growFloats(&sc.xs, len(rows))[:0]
		var rs []float64
		if !uniform {
			rs = growFloats(&sc.rs, len(rows))[:0]
		}
		for j, ri := range rows {
			i := int(ri)
			var x float64
			if col.Enc == colstore.EncValue {
				v := col.Values[i]
				if v.IsNull() {
					continue
				}
				x = v.AsFloat()
			} else {
				if col.IsNull(i) {
					continue
				}
				switch col.Enc {
				case colstore.EncFloat:
					x = col.Floats[i]
				case colstore.EncInt, colstore.EncBool:
					x = float64(col.Ints[i])
				default: // EncDict
					x = 0
				}
			}
			if isCount {
				x = 1
			}
			xs = append(xs, x)
			if !uniform {
				rs = append(rs, gs.batchRates[j])
			}
		}
		if isCount {
			acc.AddBatch(nil, rs, len(xs), urate)
		} else {
			acc.AddBatch(xs, rs, len(xs), urate)
		}
	}
}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// scanColumnarExpand is the early-materialization join path over a
// columnar block (the Tuning.NoLateMaterialization fallback): every fact
// row is materialised into the pooled combined-row buffer, expanded
// through the join chain, and only then filtered. Buffer sizing happened
// once at plan time (joinRuntime.width); nothing downstream retains the
// buffer (addMatched copies what it keeps).
func (pt *Partial) scanColumnarExpand(p *Plan, rt *planRuntime, in Input, d *colstore.Data,
	sc *colScratch, jr *joinRuntime) {

	pred := rt.pred
	buf := sc.rowBuf(jr.width)
	var rate float64
	var freq int64
	emit := func(r types.Row) {
		if pred != nil && !pred(r) {
			return
		}
		pt.addMatched(p, r, rate, freq)
	}
	factW := len(d.Cols)
	for i := 0; i < d.N; i++ {
		pt.RowsScanned++
		rate = 1.0
		if in.Rate != nil {
			rate = in.Rate(storage.RowMeta{Rate: d.RateAt(i), StratumFreq: d.FreqAt(i)})
		}
		freq = d.FreqAt(i)
		d.RowInto(buf[:factW], i)
		jr.expandInto(buf, factW, 0, emit)
	}
}

// scanColumnarJoin is the late-materialization join path: the fact-side
// predicate conjuncts are evaluated FIRST over the columnar block, join
// keys of surviving rows are probed straight out of the key columns, and
// only fact rows with at least one dimension match are materialised into
// the pooled buffer. Expansion order, filter semantics and aggregation
// order are exactly scanColumnarExpand's — rows that path would discard
// after materialising (predicate miss or empty join) are skipped before
// paying for materialisation, which changes no emitted value.
func (pt *Partial) scanColumnarJoin(p *Plan, rt *planRuntime, in Input, d *colstore.Data,
	sc *colScratch, jr *joinRuntime) {

	n := d.N
	pt.RowsScanned += int64(n)
	if n == 0 {
		return
	}

	// Fact-side selection: only the conjuncts that reference fact columns.
	// (Rows they reject can never produce a passing combined row, so
	// filtering before expansion is exact.)
	var sel []uint64
	if jr.factPred != nil {
		sel = sc.bitmap(n)
		evalPred(jr.factPred, d, sel, n, sc)
	}

	buf := sc.rowBuf(jr.width)
	factW := len(d.Cols)
	ix0 := jr.idxs[0]
	keyCol := &d.Cols[ix0.spec.LeftCol]
	var rate float64
	var freq int64
	emit := func(r types.Row) {
		if jr.restPred != nil && !jr.restPred(r) {
			return
		}
		pt.addMatched(p, r, rate, freq)
	}
	probe := func(i int) {
		// Probe the first join from the key column directly — no
		// materialisation until a match exists.
		matches := ix0.lookup(keyCol.Value(i))
		if len(matches) == 0 {
			return
		}
		rate = 1.0
		if in.Rate != nil {
			rate = in.Rate(storage.RowMeta{Rate: d.RateAt(i), StratumFreq: d.FreqAt(i)})
		}
		freq = d.FreqAt(i)
		d.RowInto(buf[:factW], i)
		for _, dimRow := range matches {
			copy(buf[factW:factW+len(dimRow)], dimRow)
			jr.expandInto(buf, factW+len(dimRow), 1, emit)
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			probe(i)
		}
		return
	}
	for wi, w := range sel {
		base := wi << 6
		for w != 0 {
			probe(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
