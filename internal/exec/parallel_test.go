package exec

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// randomWeightedTable builds a table whose rows carry stratum frequencies,
// so FromBlocks inputs exercise non-uniform weights (the Horvitz–Thompson
// path) as well as the exact rate-1 path.
func randomWeightedTable(t testing.TB, seed int64, rows, rowsPerBlock int) *storage.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "os", Kind: types.KindString},
		types.Column{Name: "code", Kind: types.KindInt},
		types.Column{Name: "sessiontime", Kind: types.KindFloat},
	)
	tab := storage.NewTable("sessions", schema)
	b := storage.NewBuilder(tab, rowsPerBlock, 4, storage.InMemory)
	rng := rand.New(rand.NewSource(seed))
	cities := []string{"NY", "NY", "NY", "SF", "SF", "LA", "Austin", "Boise"}
	oses := []string{"Win7", "OSX", "Linux"}
	freqs := []int64{0, 0, 50, 500, 5000}
	for i := 0; i < rows; i++ {
		st := types.Float(rng.ExpFloat64() * 100)
		if rng.Intn(40) == 0 {
			st = types.Null() // exercise NULL handling under merge
		}
		b.Append(types.Row{
			types.Str(cities[rng.Intn(len(cities))]),
			types.Str(oses[rng.Intn(len(oses))]),
			types.Int(int64(rng.Intn(1000))),
			st,
		}, storage.RowMeta{Rate: 1, StratumFreq: freqs[rng.Intn(len(freqs))]})
	}
	return b.Finish()
}

var equivalenceQueries = []string{
	`SELECT COUNT(*) FROM sessions`,
	`SELECT COUNT(*), SUM(sessiontime), AVG(sessiontime) FROM sessions GROUP BY city`,
	`SELECT AVG(sessiontime), MEDIAN(sessiontime) FROM sessions GROUP BY city, os`,
	`SELECT SUM(sessiontime) FROM sessions WHERE city = 'NY' AND code < 300`,
	`SELECT COUNT(*) FROM sessions WHERE city = 'NY' OR os = 'Linux' GROUP BY os`,
	`SELECT QUANTILE(sessiontime, 0.9) FROM sessions WHERE code >= 250 GROUP BY city`,
	`SELECT COUNT(*) FROM sessions WHERE city = 'Nowhere'`,                  // zero matches, global
	`SELECT AVG(sessiontime) FROM sessions WHERE code > 2000 GROUP BY city`, // zero matches, grouped
}

// TestParallelEquivalence asserts the acceptance criterion of the
// partitioned executor: for every seed, query shape and worker count —
// including more workers than blocks — RunParallel returns a Result that
// is bit-for-bit identical (reflect.DeepEqual over all float fields) to
// the Workers=1 run.
func TestParallelEquivalence(t *testing.T) {
	workerCounts := []int{2, 3, 5, 8, 17, 1 << 10}
	for _, seed := range []int64{1, 2, 3} {
		for _, rowsPerBlock := range []int{64, 509} { // many blocks / few blocks
			tab := randomWeightedTable(t, seed, 6000, rowsPerBlock)
			for _, src := range equivalenceQueries {
				p := compile(t, src, tab.Schema)
				for _, in := range []Input{
					FromTable(tab),
					FromBlocks(tab.Schema, tab.Blocks, 400), // weighted rates
				} {
					want := RunParallel(p, in, 0.95, 1)
					for _, w := range workerCounts {
						got := RunParallel(p, in, 0.95, w)
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("seed=%d rpb=%d workers=%d query=%q: parallel result diverged\nwant %+v\ngot  %+v",
								seed, rowsPerBlock, w, src, want, got)
						}
					}
				}
			}
		}
	}
}

// approxResultEqual compares two results semantically: integer counters
// and group keys exactly, float accumulations within relative tolerance.
// Used where two executions legitimately differ in float summation order
// (arbitrary partial splits), unlike RunParallel whose canonical partition
// makes results bit-identical.
func approxResultEqual(t *testing.T, want, got *Result) bool {
	t.Helper()
	feq := func(a, b float64) bool {
		d := math.Abs(a - b)
		return d <= 1e-9*(1+math.Abs(a)+math.Abs(b))
	}
	if want.RowsScanned != got.RowsScanned || want.RowsMatched != got.RowsMatched ||
		want.BytesScanned != got.BytesScanned ||
		want.MaxMatchedStratumFreq != got.MaxMatchedStratumFreq ||
		!feq(want.WeightedMatched, got.WeightedMatched) ||
		len(want.Groups) != len(got.Groups) {
		return false
	}
	for i := range want.Groups {
		wg, gg := want.Groups[i], got.Groups[i]
		if !groupKeysEqual(wg.Key, gg.Key) || len(wg.Estimates) != len(gg.Estimates) {
			return false
		}
		for j := range wg.Estimates {
			we, ge := wg.Estimates[j], gg.Estimates[j]
			if we.Rows != ge.Rows || we.Exact != ge.Exact ||
				!feq(we.Point, ge.Point) || !feq(we.StdErr, ge.StdErr) ||
				!feq(we.EffRows, ge.EffRows) {
				return false
			}
		}
	}
	return true
}

// TestRunPartialMergeMatchesRun exercises the exported partial API
// directly: scanning arbitrary block splits and merging them in order must
// reproduce Run up to float summation order.
func TestRunPartialMergeMatchesRun(t *testing.T) {
	tab := randomWeightedTable(t, 7, 4000, 128)
	in := FromTable(tab)
	for _, src := range equivalenceQueries {
		p := compile(t, src, tab.Schema)
		want := Run(p, in, 0.95)
		for _, split := range [][]int{
			{0, len(tab.Blocks)},                      // one partial
			{0, 1, 2, len(tab.Blocks)},                // uneven
			{0, len(tab.Blocks) / 2, len(tab.Blocks)}, // halves
			{0, 1, 1, len(tab.Blocks)},                // empty range
		} {
			var parts []*Partial
			for i := 0; i+1 < len(split); i++ {
				parts = append(parts, RunPartial(p, in, split[i], split[i+1]))
			}
			got := MergePartials(p, parts, 0.95)
			if !approxResultEqual(t, want, got) {
				t.Fatalf("query %q split %v: merged partials diverge from Run\nwant %+v\ngot  %+v",
					src, split, want, got)
			}
		}
	}
}

// TestMergePartialsNonDestructive pins that MergePartials leaves its
// inputs reusable: merging the same partials twice (e.g. at two
// confidence levels) must not double-count.
func TestMergePartialsNonDestructive(t *testing.T) {
	tab := randomWeightedTable(t, 13, 2000, 128)
	in := FromTable(tab)
	p := compile(t, `SELECT COUNT(*), AVG(sessiontime), MEDIAN(sessiontime) FROM sessions GROUP BY city`, tab.Schema)
	mid := len(tab.Blocks) / 2
	parts := []*Partial{
		RunPartial(p, in, 0, mid),
		RunPartial(p, in, mid, len(tab.Blocks)),
	}
	groupsBefore := []int{parts[0].NumGroups(), parts[1].NumGroups()}
	first := MergePartials(p, parts, 0.95)
	second := MergePartials(p, parts, 0.95)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("re-merging the same partials changed the result:\nfirst  %+v\nsecond %+v", first, second)
	}
	if parts[0].NumGroups() != groupsBefore[0] || parts[1].NumGroups() != groupsBefore[1] {
		t.Fatalf("MergePartials mutated its input partials: groups %v -> %d/%d",
			groupsBefore, parts[0].NumGroups(), parts[1].NumGroups())
	}
	at90 := MergePartials(p, parts, 0.90)
	if len(at90.Groups) != len(first.Groups) {
		t.Fatalf("confidence re-merge lost groups")
	}
	for i := range at90.Groups {
		if at90.Groups[i].Estimates[0].Point != first.Groups[i].Estimates[0].Point {
			t.Fatalf("points must not depend on confidence: %g vs %g",
				at90.Groups[i].Estimates[0].Point, first.Groups[i].Estimates[0].Point)
		}
	}
}

// TestParallelJoinEquivalence checks the join path under the same
// bit-identity contract.
func TestParallelJoinEquivalence(t *testing.T) {
	tab := randomWeightedTable(t, 11, 3000, 101)
	dimSchema := types.NewSchema(
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "region", Kind: types.KindString},
	)
	dim := storage.NewTable("cities", dimSchema)
	db := storage.NewBuilder(dim, 16, 1, storage.InMemory)
	for _, r := range [][2]string{
		{"NY", "east"}, {"SF", "west"}, {"LA", "west"}, {"Austin", "south"},
	} { // Boise intentionally missing: inner-join drops it
		db.AppendRow(types.Row{types.Str(r[0]), types.Str(r[1])})
	}
	db.Finish()

	combined, offsets, err := JoinedSchema(tab.Schema, []*storage.Table{dim})
	if err != nil {
		t.Fatal(err)
	}
	_ = offsets
	p := compile(t, `SELECT COUNT(*), AVG(sessiontime) FROM sessions GROUP BY region`, combined)
	spec := JoinSpec{Dim: dim, LeftCol: 0, RightCol: 0}
	in := FromTable(tab)
	want := RunJoinParallel(p, in, []JoinSpec{spec}, 0.95, 1)
	if len(want.Groups) != 3 {
		t.Fatalf("join groups = %d, want 3 (east/south/west)", len(want.Groups))
	}
	for _, w := range []int{2, 4, 8, 1 << 10} {
		got := RunJoinParallel(p, in, []JoinSpec{spec}, 0.95, w)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: join result diverged", w)
		}
	}
}

// TestScanPruningSkipsBlocks verifies that zone-map pruning folded into
// the scan keeps pruned blocks out of the scan counters on every path —
// and that pruning never changes the answer.
func TestScanPruningSkipsBlocks(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "day", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindFloat},
	)
	tab := storage.NewTable("clustered", schema)
	b := storage.NewBuilder(tab, 100, 1, storage.InMemory)
	// Clustered layout: block i holds days [100i, 100(i+1)).
	for i := 0; i < 1000; i++ {
		b.AppendRow(types.Row{types.Int(int64(i)), types.Float(float64(i % 7))})
	}
	b.Finish()
	if len(tab.Blocks) != 10 {
		t.Fatalf("blocks = %d", len(tab.Blocks))
	}
	p := compile(t, `SELECT COUNT(*), SUM(v) FROM clustered WHERE day >= 450 AND day < 550`, schema)
	for _, w := range []int{1, 4} {
		res := RunParallel(p, FromTable(tab), 0.95, w)
		// Only blocks 4 and 5 can overlap [450, 550).
		if res.RowsScanned != 200 {
			t.Errorf("workers=%d: RowsScanned = %d, want 200 (pruned blocks must not be read)", w, res.RowsScanned)
		}
		if res.RowsMatched != 100 {
			t.Errorf("workers=%d: RowsMatched = %d, want 100", w, res.RowsMatched)
		}
		if got := res.Groups[0].Estimates[0].Point; got != 100 {
			t.Errorf("workers=%d: COUNT = %g, want 100", w, got)
		}
		var total int64
		for _, blk := range tab.Blocks {
			total += blk.Bytes
		}
		if res.BytesScanned >= total {
			t.Errorf("workers=%d: BytesScanned %d not reduced by pruning (total %d)", w, res.BytesScanned, total)
		}
	}
}

// TestCompiledPredicateMatchesEval cross-checks the compiled predicate
// closures against the interpreted tree on random rows.
func TestCompiledPredicateMatchesEval(t *testing.T) {
	tab := randomWeightedTable(t, 5, 500, 64)
	preds := []string{
		`SELECT COUNT(*) FROM sessions WHERE city = 'NY'`,
		`SELECT COUNT(*) FROM sessions WHERE city <> 'NY' AND code >= 500`,
		`SELECT COUNT(*) FROM sessions WHERE sessiontime > 50.5 OR code < 10`,
		`SELECT COUNT(*) FROM sessions WHERE NOT (city = 'SF' OR city = 'LA')`,
		`SELECT COUNT(*) FROM sessions WHERE sessiontime <= 20 AND os = 'OSX'`,
	}
	// Degenerate trees the parser never emits must still match Eval.
	for _, pred := range []types.Predicate{
		&types.OrPred{},  // empty OR is false
		&types.AndPred{}, // empty AND is true
		types.TruePred{},
	} {
		f := types.CompilePredicate(pred)
		got := true
		if f != nil {
			got = f(types.Row{})
		}
		if want := pred.Eval(types.Row{}); got != want {
			t.Errorf("compiled %T = %v, Eval = %v", pred, got, want)
		}
	}
	for _, src := range preds {
		p := compile(t, src, tab.Schema)
		compiled := types.CompilePredicate(p.Pred)
		for _, blk := range tab.Blocks {
			for _, row := range blk.Rows {
				want := p.Pred.Eval(row)
				got := want
				if compiled != nil {
					got = compiled(row)
				}
				if got != want {
					t.Fatalf("%q on %v: compiled=%v interpreted=%v", src, row, got, want)
				}
			}
		}
	}
}

// TestPartitionBlocksDeterminism pins the property the executor's
// bit-identity rests on: the partition depends only on the block count.
func TestPartitionBlocksDeterminism(t *testing.T) {
	for _, n := range []int{0, 1, 2, 255, 256, 257, 1000} {
		a := storage.PartitionBlocks(n, 256)
		b := storage.PartitionBlocks(n, 256)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("n=%d: partition not deterministic", n)
		}
		covered := 0
		prev := 0
		for _, r := range a {
			if r.Lo != prev || r.Hi < r.Lo {
				t.Fatalf("n=%d: ranges not contiguous: %+v", n, a)
			}
			covered += r.Len()
			prev = r.Hi
		}
		if covered != n {
			t.Fatalf("n=%d: partition covers %d blocks", n, covered)
		}
	}
}

func BenchmarkRunParallel(b *testing.B) {
	tab := randomWeightedTable(b, 9, 200000, 2048)
	p := compile(b, `SELECT COUNT(*), SUM(sessiontime), AVG(sessiontime) FROM sessions WHERE code < 900 GROUP BY city`, tab.Schema)
	in := FromTable(tab)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				RunParallel(p, in, 0.95, w)
			}
			b.SetBytes(int64(tab.Bytes()))
		})
	}
}
