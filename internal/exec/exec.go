// Package exec implements BlinkDB-Go's query executor: scan → filter →
// group-by → weighted aggregate over block-oriented row sources. Every
// matching row contributes with weight 1/rate (its effective sampling
// rate), producing the unbiased estimates of §4.3; base tables have rate 1
// everywhere so exact execution is the same code path.
package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/stats"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// Input is a scannable row source with per-row sampling rates.
type Input struct {
	// Schema describes the rows.
	Schema *types.Schema
	// Blocks is the physical block set (used by the cost model).
	Blocks []*storage.Block
	// Rate derives a row's effective sampling rate from its metadata.
	Rate func(m storage.RowMeta) float64
}

// FromTable wraps a base table (or uniform-rate sample table) as an Input.
func FromTable(t *storage.Table) Input {
	return Input{
		Schema: t.Schema,
		Blocks: t.Blocks,
		Rate:   func(m storage.RowMeta) float64 { return m.Rate },
	}
}

// FromView wraps a sample-family resolution as an Input; rates are derived
// per row from the view's cap and the row's stratum frequency.
func FromView(v sample.View) Input {
	cap := v.Cap()
	return Input{
		Schema: v.Family.Schema(),
		Blocks: v.Blocks(),
		Rate:   func(m storage.RowMeta) float64 { return sample.RateForCap(m, cap) },
	}
}

// FromBlocks wraps an explicit block list (the §4.4 delta-reuse path).
func FromBlocks(schema *types.Schema, blocks []*storage.Block, cap int64) Input {
	return Input{
		Schema: schema,
		Blocks: blocks,
		Rate:   func(m storage.RowMeta) float64 { return sample.RateForCap(m, cap) },
	}
}

// AggPlan is a compiled aggregate.
type AggPlan struct {
	Kind  stats.AggKind
	Col   int // schema index; -1 for COUNT(*)
	P     float64
	Alias string
}

// Plan is a compiled query ready to run against inputs sharing a schema.
type Plan struct {
	Schema     *types.Schema
	Pred       types.Predicate
	GroupBy    []int
	GroupNames []string
	Aggs       []AggPlan
	Limit      int
}

// Compile resolves a parsed query against a schema.
func Compile(q *sqlparser.Query, schema *types.Schema) (*Plan, error) {
	p := &Plan{Schema: schema, Pred: types.TruePred{}, Limit: q.Limit}
	if q.Where != nil {
		pred, err := q.Where.Resolve(schema)
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		p.Pred = pred
	}
	for _, g := range q.GroupBy {
		i, err := schema.MustIndex(g)
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		p.GroupBy = append(p.GroupBy, i)
		p.GroupNames = append(p.GroupNames, strings.ToLower(g))
	}
	for _, a := range q.Aggs {
		ap := AggPlan{Kind: a.Kind, Col: -1, P: a.P, Alias: a.Alias}
		if a.Col != "" {
			i, err := schema.MustIndex(a.Col)
			if err != nil {
				return nil, fmt.Errorf("exec: %w", err)
			}
			ap.Col = i
		} else if a.Kind != stats.AggCount {
			return nil, fmt.Errorf("exec: %s requires a column", a.Kind)
		}
		p.Aggs = append(p.Aggs, ap)
	}
	if len(p.Aggs) == 0 {
		return nil, fmt.Errorf("exec: no aggregates")
	}
	return p, nil
}

// WithPred returns a copy of the plan with the predicate replaced. Used by
// the §4.1.2 disjunction rewrite, which runs one sub-query per disjunct.
func (p *Plan) WithPred(pred types.Predicate) *Plan {
	cp := *p
	cp.Pred = pred
	return &cp
}

// Group is one output row.
type Group struct {
	// Key holds the GROUP BY values (empty for global aggregates).
	Key []types.Value
	// Estimates has one entry per aggregate, in plan order.
	Estimates []stats.Estimate
}

// KeyString renders the group key for display ("NY" or "NY/Win7").
func (g Group) KeyString() string {
	if len(g.Key) == 0 {
		return "(all)"
	}
	parts := make([]string, len(g.Key))
	for i, v := range g.Key {
		parts[i] = v.String()
	}
	return strings.Join(parts, "/")
}

// Result is the output of running a plan over one input.
type Result struct {
	// Groups are the output rows, sorted by key.
	Groups []Group
	// RowsScanned counts every row read from the input.
	RowsScanned int64
	// RowsMatched counts rows passing the predicate.
	RowsMatched int64
	// WeightedMatched is Σ 1/rate over matching rows — the
	// Horvitz–Thompson estimate of how many base-table rows match.
	WeightedMatched float64
	// MaxMatchedStratumFreq is the largest base-table stratum frequency
	// among matching rows (0 when rows carry no stratum metadata). A
	// sample resolution whose cap is ≥ this value contains EVERY
	// matching row — a census, hence an exact answer (§3.1).
	MaxMatchedStratumFreq int64
	// BytesScanned is the physical bytes behind the scanned blocks.
	BytesScanned int64
	// Confidence used for the estimates.
	Confidence float64
}

// Selectivity returns matched/scanned (the s_q of §4.2).
func (r *Result) Selectivity() float64 {
	if r.RowsScanned == 0 {
		return 0
	}
	return float64(r.RowsMatched) / float64(r.RowsScanned)
}

// MaxRelErr returns the worst relative error across all groups and
// aggregates; +Inf when a group estimate has zero point and nonzero bound.
func (r *Result) MaxRelErr() float64 {
	worst := 0.0
	for _, g := range r.Groups {
		for _, e := range g.Estimates {
			if re := e.RelErr(); re > worst {
				worst = re
			}
		}
	}
	return worst
}

// MaxAbsErr returns the worst CI half-width across groups and aggregates.
func (r *Result) MaxAbsErr() float64 {
	worst := 0.0
	for _, g := range r.Groups {
		for _, e := range g.Estimates {
			if e.Bound > worst {
				worst = e.Bound
			}
		}
	}
	return worst
}

// MinGroupRows returns the smallest per-group matched row count, a
// convergence indicator for rare subgroups.
func (r *Result) MinGroupRows() int64 {
	if len(r.Groups) == 0 {
		return 0
	}
	min := int64(1<<62 - 1)
	for _, g := range r.Groups {
		for _, e := range g.Estimates {
			if e.Rows < min {
				min = e.Rows
			}
		}
	}
	return min
}

// groupState accumulates one group during execution.
type groupState struct {
	key  []types.Value
	accs []*stats.Acc
}

// newGroupState initialises a group for the given (possibly nil) first row.
func newGroupState(p *Plan, row types.Row) *groupState {
	gs := &groupState{accs: make([]*stats.Acc, len(p.Aggs))}
	for ai, a := range p.Aggs {
		gs.accs[ai] = stats.NewAcc(a.Kind, a.P)
	}
	if len(p.GroupBy) > 0 && row != nil {
		gs.key = make([]types.Value, len(p.GroupBy))
		for ki, ci := range p.GroupBy {
			gs.key[ki] = row[ci]
		}
	}
	return gs
}

// addRow feeds one matching row into a group's accumulators.
func addRow(p *Plan, gs *groupState, row types.Row, rate float64) {
	for ai, a := range p.Aggs {
		x := 1.0 // COUNT(*)
		if a.Col >= 0 {
			v := row[a.Col]
			if v.IsNull() {
				continue // SQL semantics: NULLs ignored
			}
			x = v.AsFloat()
			if a.Kind == stats.AggCount {
				x = 1
			}
		}
		gs.accs[ai].Add(x, rate)
	}
}

// finalize converts group states into sorted result groups.
func finalize(p *Plan, res *Result, groups map[string]*groupState) {
	for _, gs := range groups {
		g := Group{Key: gs.key, Estimates: make([]stats.Estimate, len(gs.accs))}
		for i, acc := range gs.accs {
			g.Estimates[i] = acc.Estimate(res.Confidence)
		}
		res.Groups = append(res.Groups, g)
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		return compareKeys(res.Groups[i].Key, res.Groups[j].Key) < 0
	})
	if p.Limit > 0 && len(res.Groups) > p.Limit {
		res.Groups = res.Groups[:p.Limit]
	}
}

// Run executes the plan over the input at the given confidence level.
func Run(p *Plan, in Input, confidence float64) *Result {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	res := &Result{Confidence: confidence}
	groups := make(map[string]*groupState)

	for _, b := range in.Blocks {
		res.BytesScanned += b.Bytes
		for i, row := range b.Rows {
			res.RowsScanned++
			if !p.Pred.Eval(row) {
				continue
			}
			res.RowsMatched++
			rate := 1.0
			if in.Rate != nil {
				rate = in.Rate(b.Meta[i])
			}
			if rate > 0 {
				res.WeightedMatched += 1 / rate
			}
			if f := b.Meta[i].StratumFreq; f > res.MaxMatchedStratumFreq {
				res.MaxMatchedStratumFreq = f
			}
			key := ""
			if len(p.GroupBy) > 0 {
				key = types.RowKey(row, p.GroupBy)
			}
			gs, ok := groups[key]
			if !ok {
				gs = newGroupState(p, row)
				groups[key] = gs
			}
			addRow(p, gs, row, rate)
		}
	}

	// A global aggregate with zero matches still yields one empty group.
	if len(p.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = newGroupState(p, nil)
	}
	finalize(p, res, groups)
	return res
}

func compareKeys(a, b []types.Value) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := types.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// MergeResults combines partial results from disjunct sub-queries
// (§4.1.2): groups with equal keys have their estimates summed for
// COUNT/SUM and combined conservatively for AVG/QUANTILE (point estimates
// weighted by effective rows; variances added for sums).
//
// Disjuncts produced by SplitDisjuncts may overlap (a OR b is not a
// disjoint union); BlinkDB's rewrite assigns per-subquery constraints and
// aggregates assuming near-disjoint predicates, which holds for the
// template workloads evaluated in the paper. We follow that design.
func MergeResults(p *Plan, parts []*Result) *Result {
	if len(parts) == 1 {
		return parts[0]
	}
	out := &Result{Confidence: parts[0].Confidence}
	type slot struct {
		key []types.Value
		est []stats.Estimate
	}
	merged := map[string]*slot{}
	var order []string
	for _, part := range parts {
		out.RowsScanned += part.RowsScanned
		out.RowsMatched += part.RowsMatched
		out.WeightedMatched += part.WeightedMatched
		out.BytesScanned += part.BytesScanned
		for _, g := range part.Groups {
			key := ""
			for _, v := range g.Key {
				key += v.Key() + "\x1f"
			}
			s, ok := merged[key]
			if !ok {
				s = &slot{key: g.Key, est: make([]stats.Estimate, len(g.Estimates))}
				copy(s.est, g.Estimates)
				merged[key] = s
				order = append(order, key)
				continue
			}
			for i := range s.est {
				s.est[i] = mergeEstimate(p.Aggs[i].Kind, s.est[i], g.Estimates[i])
			}
		}
	}
	sort.Strings(order)
	for _, key := range order {
		s := merged[key]
		out.Groups = append(out.Groups, Group{Key: s.key, Estimates: s.est})
	}
	return out
}

func mergeEstimate(kind stats.AggKind, a, b stats.Estimate) stats.Estimate {
	out := a
	out.Rows = a.Rows + b.Rows
	out.EffRows = a.EffRows + b.EffRows
	out.Exact = a.Exact && b.Exact
	switch kind {
	case stats.AggCount, stats.AggSum:
		out.Point = a.Point + b.Point
		out.StdErr = sqrtSumSq(a.StdErr, b.StdErr)
	case stats.AggAvg, stats.AggQuantile:
		// Weighted combination by effective rows.
		wa, wb := a.EffRows, b.EffRows
		if wa+wb == 0 {
			wa, wb = 1, 1
		}
		out.Point = (a.Point*wa + b.Point*wb) / (wa + wb)
		out.StdErr = sqrtSumSq(a.StdErr*wa/(wa+wb), b.StdErr*wb/(wa+wb))
	}
	z := stats.ZForConfidence(a.Confidence)
	out.Bound = z * out.StdErr
	return out
}

func sqrtSumSq(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}
