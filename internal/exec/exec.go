// Package exec implements BlinkDB-Go's query executor: scan → filter →
// group-by → weighted aggregate over block-oriented row sources. Every
// matching row contributes with weight 1/rate (its effective sampling
// rate), producing the unbiased estimates of §4.3; base tables have rate 1
// everywhere so exact execution is the same code path.
//
// Execution is block-partitioned: the block list is split into contiguous
// ranges (storage.PartitionBlocks), each range is scanned into a mergeable
// Partial (one group map per range, zone-map pruning applied before any
// row is touched), and MergePartials folds the partials in block-index
// order. Because the partition depends only on the block count, the fold
// order — and hence every floating-point accumulation — is identical for
// any worker count: RunParallel(…, 8) returns bit-for-bit the same Result
// as RunParallel(…, 1).
package exec

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/stats"
	"blinkdb/internal/storage"
	"blinkdb/internal/telemetry"
	"blinkdb/internal/types"
)

// maxPartials caps how many block ranges a scan is split into. It is a
// fixed constant — NOT derived from the worker count — so that partial
// boundaries, and therefore float summation order, never depend on
// parallelism. 256 ranges keep 64 workers busy with 4× load-balancing
// slack while bounding per-range group-map overhead.
const maxPartials = 256

// Input is a scannable row source with per-row sampling rates.
type Input struct {
	// Schema describes the rows.
	Schema *types.Schema
	// Blocks is the physical block set (used by the cost model).
	Blocks []*storage.Block
	// Rate derives a row's effective sampling rate from its metadata.
	Rate func(m storage.RowMeta) float64
}

// FromTable wraps a base table (or uniform-rate sample table) as an Input.
func FromTable(t *storage.Table) Input {
	return Input{
		Schema: t.Schema,
		Blocks: t.Blocks,
		Rate:   func(m storage.RowMeta) float64 { return m.Rate },
	}
}

// FromView wraps a sample-family resolution as an Input; rates are derived
// per row from the view's cap and the row's stratum frequency.
func FromView(v sample.View) Input {
	cap := v.Cap()
	return Input{
		Schema: v.Family.Schema(),
		Blocks: v.Blocks(),
		Rate:   func(m storage.RowMeta) float64 { return sample.RateForCap(m, cap) },
	}
}

// FromBlocks wraps an explicit block list (the §4.4 delta-reuse path).
func FromBlocks(schema *types.Schema, blocks []*storage.Block, cap int64) Input {
	return Input{
		Schema: schema,
		Blocks: blocks,
		Rate:   func(m storage.RowMeta) float64 { return sample.RateForCap(m, cap) },
	}
}

// AggPlan is a compiled aggregate.
type AggPlan struct {
	Kind  stats.AggKind
	Col   int // schema index; -1 for COUNT(*)
	P     float64
	Alias string
}

// Plan is a compiled query ready to run against inputs sharing a schema.
type Plan struct {
	Schema     *types.Schema
	Pred       types.Predicate
	GroupBy    []int
	GroupNames []string
	Aggs       []AggPlan
	Limit      int

	// Tuning toggles the scan path's physical optimizations.
	Tuning Tuning

	// rt caches the compiled predicate closure and zone-pruning bounds.
	// It is populated by Compile/WithPred; hand-assembled Plans fall back
	// to compiling on entry (without mutating the Plan, so sharing a Plan
	// across goroutines stays race-free).
	rt *planRuntime
}

// Tuning disables individual physical optimizations of the scan path —
// the A/B benchmarks and the equivalence suite use it to pin the old and
// new paths against each other. The zero value enables everything. Every
// combination is purely physical: the Result is bit-identical across all
// of them (and across worker counts), only the speed differs.
type Tuning struct {
	// NoTristateZones keeps zone maps prune-only: blocks whose zones prove
	// the predicate true for every row are still evaluated row by row.
	NoTristateZones bool
	// NoSelVectors disables the selection-vector compare kernels; single-
	// leaf predicates always evaluate through the bitmap kernels.
	NoSelVectors bool
	// NoLateMaterialization makes joins materialize every fact row and
	// expand it before filtering, as the pre-overhaul path did.
	NoLateMaterialization bool
}

// planRuntime is the precompiled hot-path state derived from Plan.Pred.
type planRuntime struct {
	// pred is the compiled predicate closure; nil means "always true".
	pred func(types.Row) bool
	// bounds are the conjunctive per-column intervals used for zone-map
	// pruning inside the scan.
	bounds map[int]*Bounds
	// leaves are the predicate's comparison leaves when it is a pure
	// conjunction of them (nil otherwise) — the precondition for the
	// all-true zone shortcut (see zoneImpliesPred).
	leaves []*types.CmpPred
	// soleLeaf is set when the whole predicate is a single comparison —
	// the shape eligible for selection-vector kernels.
	soleLeaf *types.CmpPred
}

func newPlanRuntime(pred types.Predicate) *planRuntime {
	if pred == nil {
		pred = types.TruePred{}
	}
	rt := &planRuntime{pred: types.CompilePredicate(pred), bounds: ColumnBounds(pred)}
	rt.leaves = conjunctiveLeaves(pred)
	if len(rt.leaves) == 1 {
		rt.soleLeaf = rt.leaves[0]
	}
	return rt
}

// runtime returns the plan's compiled state, compiling a transient copy
// for plans built without Compile (never mutates p).
func (p *Plan) runtime() *planRuntime {
	if p.rt != nil {
		return p.rt
	}
	return newPlanRuntime(p.Pred)
}

// Compile resolves a parsed query against a schema.
func Compile(q *sqlparser.Query, schema *types.Schema) (*Plan, error) {
	p := &Plan{Schema: schema, Pred: types.TruePred{}, Limit: q.Limit}
	if q.Where != nil {
		pred, err := q.Where.Resolve(schema)
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		p.Pred = pred
	}
	for _, g := range q.GroupBy {
		i, err := schema.MustIndex(g)
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		p.GroupBy = append(p.GroupBy, i)
		p.GroupNames = append(p.GroupNames, strings.ToLower(g))
	}
	for _, a := range q.Aggs {
		ap := AggPlan{Kind: a.Kind, Col: -1, P: a.P, Alias: a.Alias}
		if a.Col != "" {
			i, err := schema.MustIndex(a.Col)
			if err != nil {
				return nil, fmt.Errorf("exec: %w", err)
			}
			ap.Col = i
		} else if a.Kind != stats.AggCount {
			return nil, fmt.Errorf("exec: %s requires a column", a.Kind)
		}
		p.Aggs = append(p.Aggs, ap)
	}
	if len(p.Aggs) == 0 {
		return nil, fmt.Errorf("exec: no aggregates")
	}
	p.rt = newPlanRuntime(p.Pred)
	return p, nil
}

// WithPred returns a copy of the plan with the predicate replaced (and the
// compiled closure/bounds rebuilt). Used by the §4.1.2 disjunction
// rewrite, which runs one sub-query per disjunct.
func (p *Plan) WithPred(pred types.Predicate) *Plan {
	cp := *p
	cp.Pred = pred
	cp.rt = newPlanRuntime(pred)
	return &cp
}

// Group is one output row.
type Group struct {
	// Key holds the GROUP BY values (empty for global aggregates).
	Key []types.Value
	// Estimates has one entry per aggregate, in plan order.
	Estimates []stats.Estimate
}

// KeyString renders the group key for display ("NY" or "NY/Win7").
func (g Group) KeyString() string {
	if len(g.Key) == 0 {
		return "(all)"
	}
	parts := make([]string, len(g.Key))
	for i, v := range g.Key {
		parts[i] = v.String()
	}
	return strings.Join(parts, "/")
}

// Result is the output of running a plan over one input.
type Result struct {
	// Groups are the output rows, sorted by key.
	Groups []Group
	// RowsScanned counts every row read from the input. Blocks eliminated
	// by zone-map pruning are never read and contribute nothing.
	RowsScanned int64
	// RowsMatched counts rows passing the predicate.
	RowsMatched int64
	// WeightedMatched is Σ 1/rate over matching rows — the
	// Horvitz–Thompson estimate of how many base-table rows match.
	WeightedMatched float64
	// MaxMatchedStratumFreq is the largest base-table stratum frequency
	// among matching rows (0 when rows carry no stratum metadata). A
	// sample resolution whose cap is ≥ this value contains EVERY
	// matching row — a census, hence an exact answer (§3.1).
	MaxMatchedStratumFreq int64
	// BytesScanned is the physical bytes behind the scanned (unpruned)
	// blocks.
	BytesScanned int64
	// Confidence used for the estimates.
	Confidence float64
}

// Clone returns a deep copy of the result: the Groups slice and every
// group's Key/Estimates slices are fresh, so mutating the clone (or the
// original) cannot affect the other. Nil-ness is preserved everywhere so
// a clone is DeepEqual to its source — the result cache's copy-on-return
// depends on both properties.
func (r *Result) Clone() *Result {
	cp := *r
	if r.Groups != nil {
		cp.Groups = make([]Group, len(r.Groups))
		for i, g := range r.Groups {
			cp.Groups[i] = Group{
				Key:       append([]types.Value(nil), g.Key...),
				Estimates: append([]stats.Estimate(nil), g.Estimates...),
			}
		}
	}
	return &cp
}

// Selectivity returns matched/scanned (the s_q of §4.2).
func (r *Result) Selectivity() float64 {
	if r.RowsScanned == 0 {
		return 0
	}
	return float64(r.RowsMatched) / float64(r.RowsScanned)
}

// MaxRelErr returns the worst relative error across all groups and
// aggregates; +Inf when a group estimate has zero point and nonzero bound.
func (r *Result) MaxRelErr() float64 {
	worst := 0.0
	for _, g := range r.Groups {
		for _, e := range g.Estimates {
			if re := e.RelErr(); re > worst {
				worst = re
			}
		}
	}
	return worst
}

// MaxAbsErr returns the worst CI half-width across groups and aggregates.
func (r *Result) MaxAbsErr() float64 {
	worst := 0.0
	for _, g := range r.Groups {
		for _, e := range g.Estimates {
			if e.Bound > worst {
				worst = e.Bound
			}
		}
	}
	return worst
}

// MinGroupRows returns the smallest per-group matched row count, a
// convergence indicator for rare subgroups.
func (r *Result) MinGroupRows() int64 {
	if len(r.Groups) == 0 {
		return 0
	}
	min := int64(1<<62 - 1)
	for _, g := range r.Groups {
		for _, e := range g.Estimates {
			if e.Rows < min {
				min = e.Rows
			}
		}
	}
	return min
}

// groupState accumulates one group during execution.
type groupState struct {
	key  []types.Value
	accs []*stats.Acc

	// batchRows/batchRates stage this group's selected rows while one
	// columnar block is scanned (vector.go); they are drained and reset
	// before the scan moves to the next block.
	batchRows  []int32
	batchRates []float64
}

// newGroupState initialises a group for the given (possibly nil) first row.
func newGroupState(p *Plan, row types.Row) *groupState {
	gs := &groupState{accs: make([]*stats.Acc, len(p.Aggs))}
	for ai, a := range p.Aggs {
		gs.accs[ai] = stats.NewAcc(a.Kind, a.P)
	}
	if len(p.GroupBy) > 0 && row != nil {
		gs.key = make([]types.Value, len(p.GroupBy))
		for ki, ci := range p.GroupBy {
			gs.key[ki] = row[ci]
		}
	}
	return gs
}

// keyMatches reports whether the group's key equals the projection of row
// onto the GROUP BY columns (hash-collision resolution).
func (gs *groupState) keyMatches(row types.Row, groupBy []int) bool {
	for ki, ci := range groupBy {
		if !types.GroupEqual(gs.key[ki], row[ci]) {
			return false
		}
	}
	return true
}

// Partial is the mergeable result of scanning one contiguous block range:
// per-group aggregate states plus the scan counters. Partials from
// disjoint ranges combine associatively via MergePartials.
type Partial struct {
	// RowsScanned, RowsMatched, WeightedMatched, MaxMatchedStratumFreq
	// and BytesScanned mirror the same fields on Result, restricted to
	// this partial's block range.
	RowsScanned           int64
	RowsMatched           int64
	WeightedMatched       float64
	MaxMatchedStratumFreq int64
	BytesScanned          int64

	// groups buckets group states by hashed GROUP BY key; each bucket
	// holds the (rare) hash-colliding groups.
	groups map[uint64][]*groupState
}

// NumGroups returns the number of distinct groups seen in this partial.
func (pt *Partial) NumGroups() int {
	n := 0
	for _, b := range pt.groups {
		n += len(b)
	}
	return n
}

// findGroup returns (creating if needed) the group state for row.
func (pt *Partial) findGroup(p *Plan, row types.Row) *groupState {
	h := types.HashSeed
	if len(p.GroupBy) > 0 {
		h = types.HashRowKey(row, p.GroupBy)
	}
	bucket := pt.groups[h]
	for _, gs := range bucket {
		if gs.keyMatches(row, p.GroupBy) {
			return gs
		}
	}
	gs := newGroupState(p, row)
	pt.groups[h] = append(bucket, gs)
	return gs
}

// addMatched feeds one row that already passed the predicate through
// group → aggregate.
func (pt *Partial) addMatched(p *Plan, row types.Row, rate float64, stratumFreq int64) {
	pt.RowsMatched++
	if rate > 0 {
		pt.WeightedMatched += 1 / rate
	}
	if stratumFreq > pt.MaxMatchedStratumFreq {
		pt.MaxMatchedStratumFreq = stratumFreq
	}
	gs := pt.findGroup(p, row)
	for ai, a := range p.Aggs {
		x := 1.0 // COUNT(*)
		if a.Col >= 0 {
			v := row[a.Col]
			if v.IsNull() {
				continue // SQL semantics: NULLs ignored
			}
			x = v.AsFloat()
			if a.Kind == stats.AggCount {
				x = 1
			}
		}
		gs.accs[ai].Add(x, rate)
	}
}

// zoneMayMatch reports whether a block's zone maps can intersect the
// plan's conjunctive bounds. Blocks without zones are conservatively kept.
func zoneMayMatch(b *storage.Block, bounds map[int]*Bounds) bool {
	for col, bd := range bounds {
		if col >= len(b.Zones) || !b.Zones[col].Valid {
			continue
		}
		z := b.Zones[col]
		if !bd.overlapsZone(z.Min, z.Max) {
			return false
		}
	}
	return true
}

// RunPartial scans blocks [lo, hi) of the input into a mergeable Partial.
// Zone-map pruning is folded into the scan: blocks whose zones cannot
// satisfy the predicate's bounds are skipped before any row is read, so
// they contribute to neither RowsScanned nor BytesScanned.
func RunPartial(p *Plan, in Input, lo, hi int) *Partial {
	return runPartial(p, p.runtime(), in, lo, hi, nil, nil)
}

// runPartial is RunPartial with precompiled plan state, an optional join
// runtime (joins expand each fact row through the dimension indexes; nil
// means a plain scan) and an optional columnar-scan scratch to reuse
// across the ranges one worker processes (nil allocates on demand).
func runPartial(p *Plan, rt *planRuntime, in Input, lo, hi int,
	jr *joinRuntime, sc *colScratch) *Partial {

	pt := &Partial{groups: make(map[uint64][]*groupState)}
	if lo < 0 {
		lo = 0
	}
	if hi > len(in.Blocks) {
		hi = len(in.Blocks)
	}
	pred := rt.pred
	if sc == nil {
		sc = &colScratch{} // direct RunPartial calls
	}
	for bi := lo; bi < hi; bi++ {
		b := in.Blocks[bi]
		if len(rt.bounds) > 0 && !zoneMayMatch(b, rt.bounds) {
			continue // pruned: never read, never counted
		}
		pt.BytesScanned += b.Bytes
		if d := b.Col; d != nil {
			// Columnar block: vectorized kernels (bit-identical to the
			// row loops below — see vector.go's contract).
			if jr == nil {
				// Three-state zone classification: zoneMayMatch above
				// handled all-false; a zone bracket that PROVES the
				// predicate lets the scan skip evaluation and
				// batch-aggregate every row.
				allTrue := false
				if pred != nil && rt.leaves != nil && !p.Tuning.NoTristateZones {
					allTrue = zoneImpliesPred(b, d, rt.leaves)
				}
				pt.scanColumnar(p, rt, in, d, sc, allTrue)
			} else if p.Tuning.NoLateMaterialization {
				pt.scanColumnarExpand(p, rt, in, d, sc, jr)
			} else {
				pt.scanColumnarJoin(p, rt, in, d, sc, jr)
			}
			continue
		}
		if jr == nil {
			for i, row := range b.Rows {
				pt.RowsScanned++
				if pred != nil && !pred(row) {
					continue
				}
				rate := 1.0
				if in.Rate != nil {
					rate = in.Rate(b.Meta[i]) // only matched rows pay this
				}
				pt.addMatched(p, row, rate, b.Meta[i].StratumFreq)
			}
			continue
		}
		// Row-layout join scan: expand every fact row through the join
		// chain into the pooled combined-row buffer, filter, aggregate.
		// (addMatched never retains the row, so buffer reuse is safe.)
		buf := sc.rowBuf(jr.width)
		var rate float64
		var freq int64
		emit := func(r types.Row) {
			if pred != nil && !pred(r) {
				return
			}
			pt.addMatched(p, r, rate, freq)
		}
		for i, row := range b.Rows {
			pt.RowsScanned++
			rate = 1.0
			if in.Rate != nil {
				rate = in.Rate(b.Meta[i])
			}
			freq = b.Meta[i].StratumFreq
			n := copy(buf, row)
			jr.expandInto(buf, n, 0, emit)
		}
	}
	return pt
}

// Merger folds partials into the merged group map incrementally, as each
// arrives at its partition index, instead of materializing the full
// partial list first. The fold order is ALWAYS block-index order: a
// partial delivered out of order is buffered until every lower index has
// been folded, then drained — so float accumulation, and hence the
// Result, is bit-identical to a sequential fold for any arrival order and
// worker count. Folded partials are released immediately, which caps the
// merger's live memory at the merged group map plus the out-of-order
// window, rather than one group map per block range — the difference
// that matters at very high group cardinalities.
//
// Partials are not mutated (group states are cloned on first occurrence),
// so the same partials may be folded again by another Merger, e.g. at a
// different confidence level.
type Merger struct {
	p    *Plan
	next int        // lowest index not yet folded
	wait []*Partial // out-of-order buffer, indexed by partition index
	got  []bool     // which indices have arrived (nil partials are legal)

	merged                map[uint64][]*groupState
	rowsScanned           int64
	rowsMatched           int64
	weightedMatched       float64
	maxMatchedStratumFreq int64
	bytesScanned          int64
}

// NewMerger creates a merger expecting partials at indices [0, n).
func NewMerger(p *Plan, n int) *Merger {
	return &Merger{p: p, wait: make([]*Partial, n), got: make([]bool, n), merged: make(map[uint64][]*groupState)}
}

// Add delivers the partial for one partition index (nil for an empty
// range) and folds every contiguous ready prefix. Add is NOT
// goroutine-safe; concurrent producers serialize Add calls (the merge
// work is tiny next to the scans that produced the partials).
func (m *Merger) Add(idx int, pt *Partial) {
	if m.got[idx] {
		return // duplicate delivery: first one wins
	}
	m.got[idx] = true
	m.wait[idx] = pt
	for m.next < len(m.wait) && m.got[m.next] {
		m.fold(m.wait[m.next])
		m.wait[m.next] = nil // release: folded partials don't accumulate
		m.next++
	}
}

// fold merges one partial (nil = empty range) into the running state.
func (m *Merger) fold(pt *Partial) {
	if pt == nil {
		return
	}
	m.rowsScanned += pt.RowsScanned
	m.rowsMatched += pt.RowsMatched
	m.weightedMatched += pt.WeightedMatched
	m.bytesScanned += pt.BytesScanned
	if pt.MaxMatchedStratumFreq > m.maxMatchedStratumFreq {
		m.maxMatchedStratumFreq = pt.MaxMatchedStratumFreq
	}
	for h, bucket := range pt.groups {
		for _, gs := range bucket {
			dst, fresh := findMerged(m.merged, h, gs)
			if fresh {
				continue // first occurrence: cloned into the fold
			}
			for ai, acc := range dst.accs {
				acc.Merge(gs.accs[ai])
			}
		}
	}
}

// Finish folds any remaining delivered partials (still in index order)
// and finalizes the Result at the given confidence.
func (m *Merger) Finish(confidence float64) *Result {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	for ; m.next < len(m.wait); m.next++ {
		if m.got[m.next] {
			m.fold(m.wait[m.next])
			m.wait[m.next] = nil
		}
	}
	res := &Result{
		Confidence:            confidence,
		RowsScanned:           m.rowsScanned,
		RowsMatched:           m.rowsMatched,
		WeightedMatched:       m.weightedMatched,
		MaxMatchedStratumFreq: m.maxMatchedStratumFreq,
		BytesScanned:          m.bytesScanned,
	}
	// A global aggregate with zero matches still yields one empty group.
	if len(m.p.GroupBy) == 0 && len(m.merged) == 0 {
		m.merged[types.HashSeed] = []*groupState{newGroupState(m.p, nil)}
	}
	finalize(m.p, res, m.merged)
	return res
}

// MergePartials folds partials — which MUST be ordered by block index —
// into a Result. Per-group aggregate states merge associatively
// (stats.Acc.Merge); because the fold order is the partial order, float
// accumulation is deterministic and independent of how many workers
// produced the partials. Nil entries (empty ranges) are skipped. The
// partials themselves are not mutated (group states are cloned before
// merging), so the same partials may be merged again, e.g. at another
// confidence level. It is the materialized-list form of Merger.
func MergePartials(p *Plan, parts []*Partial, confidence float64) *Result {
	m := NewMerger(p, len(parts))
	for i, pt := range parts {
		m.Add(i, pt)
	}
	return m.Finish(confidence)
}

// findMerged locates the merged group matching gs's key; on first sight
// it inserts a clone of gs (fresh=true) so the source partial stays
// untouched.
func findMerged(merged map[uint64][]*groupState, h uint64, gs *groupState) (dst *groupState, fresh bool) {
	for _, have := range merged[h] {
		if groupKeysEqual(have.key, gs.key) {
			return have, false
		}
	}
	cp := &groupState{key: gs.key, accs: make([]*stats.Acc, len(gs.accs))}
	for i, acc := range gs.accs {
		cp.accs[i] = acc.Clone()
	}
	merged[h] = append(merged[h], cp)
	return cp, true
}

func groupKeysEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !types.GroupEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// finalize converts merged group states into sorted result groups.
func finalize(p *Plan, res *Result, merged map[uint64][]*groupState) {
	for _, bucket := range merged {
		for _, gs := range bucket {
			g := Group{Key: gs.key, Estimates: make([]stats.Estimate, len(gs.accs))}
			for i, acc := range gs.accs {
				g.Estimates[i] = acc.Estimate(res.Confidence)
			}
			res.Groups = append(res.Groups, g)
		}
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		if c := compareKeys(res.Groups[i].Key, res.Groups[j].Key); c != 0 {
			return c < 0
		}
		// Distinct keys can still compare equal across kinds (Int(1) vs
		// Float(1)); break the tie on the encoded key so ordering never
		// depends on map iteration.
		return encodeKey(res.Groups[i].Key) < encodeKey(res.Groups[j].Key)
	})
	if p.Limit > 0 && len(res.Groups) > p.Limit {
		res.Groups = res.Groups[:p.Limit]
	}
}

func encodeKey(key []types.Value) string {
	var b strings.Builder
	for _, v := range key {
		b.WriteString(v.Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// Sched selects how the executor assigns scan ranges to workers. Both
// modes consume the SAME deterministic block partition and merge partials
// in block-index order, so results are bit-identical across modes and
// worker counts; only the assignment of ranges to workers differs.
type Sched uint8

const (
	// SchedNodeAffine — the default — groups the partition's ranges into
	// per-node shards (storage.PartitionBlocksByNode) and hands each
	// worker whole shards, so one worker owns one simulated node's blocks
	// (the paper's §2.2.1 layout: samples striped as many small blocks
	// across the cluster, scanned by node-local tasks). When the data
	// occupies fewer shards than there are workers, scheduling falls back
	// to per-range claiming rather than idling cores.
	SchedNodeAffine Sched = iota
	// SchedBlind restores the node-blind schedule: workers claim ranges
	// round-robin regardless of block placement.
	SchedBlind
)

// String renders the scheduling mode.
func (s Sched) String() string {
	if s == SchedBlind {
		return "blind"
	}
	return "node-affine"
}

// ScanShards exposes the executor's node-affine schedule for a block
// list: the contiguous partial ranges (identical to the node-blind
// partition) and the per-node shards that consume them. The ELP runtime
// uses it to attribute scan locality in the cluster model, and
// blinkdb-bench reports its locality hit rate.
func ScanShards(blocks []*storage.Block) ([]storage.BlockRange, []storage.NodeShard) {
	return storage.PartitionBlocksByNode(blocks, maxPartials)
}

// Run executes the plan over the input at the given confidence level with
// a single worker. It is exactly RunParallel(p, in, confidence, 1).
func Run(p *Plan, in Input, confidence float64) *Result {
	return RunParallel(p, in, confidence, 1)
}

// RunParallelSchedCtx is RunParallelSchedTraced with a cancellation
// context: workers re-check ctx between claim units (one scan range, or
// one node shard's range under the affine schedule), so a cancelled
// context stops the scan within one range's worth of work. A context
// cancelled before the call scans nothing. On cancellation the partial
// merge is abandoned and ctx.Err() is returned; a nil error guarantees
// the Result is the same bit-identical answer the uncancellable
// entry points produce.
func RunParallelSchedCtx(ctx context.Context, p *Plan, in Input, confidence float64, workers int, sched Sched, sp *telemetry.Span) (*Result, error) {
	return runRanges(ctx, p, p.runtime(), in, confidence, workers, sched, nil, sp)
}

// RunParallel executes the plan over the input using up to workers
// goroutines under the default node-affine schedule. The block list is
// split into contiguous ranges whose boundaries depend only on the block
// count; each range produces one Partial, and MergePartials folds them in
// block order — so the Result is bit-identical for every workers value
// (1, 8, or more workers than blocks) and for either schedule.
func RunParallel(p *Plan, in Input, confidence float64, workers int) *Result {
	return RunParallelSched(p, in, confidence, workers, SchedNodeAffine)
}

// RunParallelSched is RunParallel with an explicit scheduling mode.
func RunParallelSched(p *Plan, in Input, confidence float64, workers int, sched Sched) *Result {
	res, _ := runRanges(context.Background(), p, p.runtime(), in, confidence, workers, sched, nil, nil)
	return res
}

// RunParallelSchedTraced is RunParallelSched with a telemetry span under
// which the scan records per-unit (shard or range) child spans and the
// merge phase. sp may be nil (identical to RunParallelSched).
func RunParallelSchedTraced(p *Plan, in Input, confidence float64, workers int, sched Sched, sp *telemetry.Span) *Result {
	res, _ := runRanges(context.Background(), p, p.runtime(), in, confidence, workers, sched, nil, sp)
	return res
}

// runRanges is the shared scan driver for plain and join execution. The
// claim unit is one range under the blind schedule and one node shard
// (that node's whole range list) under the affine schedule; either way a
// range's Partial lands at its partition index and MergePartials folds in
// range order, so every float accumulation — and hence the Result — is
// identical across schedules and worker counts.
// Span bookkeeping (sp non-nil) adds one child span per claim unit plus a
// merge span; with sp nil the scan performs no telemetry work at all.
// Cancellation is checked per claim unit and per range within a shard;
// once ctx is cancelled no further range is scanned and ctx.Err() is
// returned with a nil Result. The background-context entry points above
// can therefore never observe an error.
func runRanges(ctx context.Context, p *Plan, rt *planRuntime, in Input, confidence float64, workers int,
	sched Sched, jr *joinRuntime, sp *telemetry.Span) (*Result, error) {

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Affine scheduling only pays off while every worker can own a
	// shard; with fewer shards (simulated nodes) than workers it would
	// idle cores that per-range claiming keeps busy, so fall back. Either
	// partitioner yields the same ranges, so the partition is computed
	// exactly once.
	var ranges []storage.BlockRange
	var shards []storage.NodeShard
	if sched == SchedNodeAffine && workers > 1 {
		var byNode []storage.NodeShard
		ranges, byNode = storage.PartitionBlocksByNode(in.Blocks, maxPartials)
		if len(byNode) >= workers {
			shards = byNode
		}
	} else {
		ranges = storage.PartitionBlocks(len(in.Blocks), maxPartials)
	}
	units := len(ranges)
	if shards != nil {
		units = len(shards)
	}
	if workers > units {
		workers = units
	}
	// Partials stream into the merger at their partition index as each
	// range completes; the fold order is index order regardless of which
	// worker finishes first, so the Result stays bit-identical while no
	// more than the out-of-order window of partials is ever retained.
	merger := NewMerger(p, len(ranges))
	if workers <= 1 {
		var scanSp *telemetry.Span
		if sp != nil {
			scanSp = sp.Child(fmt.Sprintf("partials ranges=%d", len(ranges)))
		}
		sc := &colScratch{}
		for i, r := range ranges {
			if err := ctx.Err(); err != nil {
				scanSp.End()
				return nil, err
			}
			merger.Add(i, runPartial(p, rt, in, r.Lo, r.Hi, jr, sc))
		}
		scanSp.End()
		var mergeSp *telemetry.Span
		if sp != nil {
			mergeSp = sp.Child("merge")
		}
		res := merger.Finish(confidence)
		mergeSp.End()
		return res, nil
	}
	var mu sync.Mutex // serializes merger.Add across workers
	var next atomic.Int64
	var wg sync.WaitGroup
	deliver := func(i int, pt *Partial) {
		mu.Lock()
		merger.Add(i, pt)
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &colScratch{} // per-worker: buffers are not shared
			for {
				if ctx.Err() != nil {
					return
				}
				u := int(next.Add(1)) - 1
				if u >= units {
					return
				}
				if shards == nil {
					var unitSp *telemetry.Span
					if sp != nil {
						unitSp = sp.Child(fmt.Sprintf("range %d blocks=%d", u, ranges[u].Hi-ranges[u].Lo))
					}
					deliver(u, runPartial(p, rt, in, ranges[u].Lo, ranges[u].Hi, jr, sc))
					unitSp.End()
					continue
				}
				var unitSp *telemetry.Span
				if sp != nil {
					unitSp = sp.Child(fmt.Sprintf("shard node=%d ranges=%d", shards[u].Node, len(shards[u].Ranges)))
				}
				// A shard's ranges are disjoint from every other shard's,
				// so each index is delivered exactly once. Cancellation is
				// re-checked between ranges so a large shard doesn't pin a
				// worker past the client's disconnect.
				for _, ri := range shards[u].Ranges {
					if ctx.Err() != nil {
						unitSp.End()
						return
					}
					deliver(ri, runPartial(p, rt, in, ranges[ri].Lo, ranges[ri].Hi, jr, sc))
				}
				unitSp.End()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// Workers stopped early; the partial set is incomplete and folding
		// it would silently yield a wrong (under-scanned) answer.
		return nil, err
	}
	var mergeSp *telemetry.Span
	if sp != nil {
		mergeSp = sp.Child("merge")
	}
	res := merger.Finish(confidence)
	mergeSp.End()
	return res, nil
}

func compareKeys(a, b []types.Value) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := types.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// MergeResults combines partial results from disjunct sub-queries
// (§4.1.2): groups with equal keys have their estimates summed for
// COUNT/SUM and combined conservatively for AVG/QUANTILE (point estimates
// weighted by effective rows; variances added for sums).
//
// Disjuncts produced by SplitDisjuncts may overlap (a OR b is not a
// disjoint union); BlinkDB's rewrite assigns per-subquery constraints and
// aggregates assuming near-disjoint predicates, which holds for the
// template workloads evaluated in the paper. We follow that design.
func MergeResults(p *Plan, parts []*Result) *Result {
	if len(parts) == 1 {
		return parts[0]
	}
	out := &Result{Confidence: parts[0].Confidence}
	type slot struct {
		key []types.Value
		est []stats.Estimate
	}
	merged := map[string]*slot{}
	var order []string
	for _, part := range parts {
		out.RowsScanned += part.RowsScanned
		out.RowsMatched += part.RowsMatched
		out.WeightedMatched += part.WeightedMatched
		out.BytesScanned += part.BytesScanned
		for _, g := range part.Groups {
			key := ""
			for _, v := range g.Key {
				key += v.Key() + "\x1f"
			}
			s, ok := merged[key]
			if !ok {
				s = &slot{key: g.Key, est: make([]stats.Estimate, len(g.Estimates))}
				copy(s.est, g.Estimates)
				merged[key] = s
				order = append(order, key)
				continue
			}
			for i := range s.est {
				s.est[i] = mergeEstimate(p.Aggs[i].Kind, s.est[i], g.Estimates[i])
			}
		}
	}
	sort.Strings(order)
	for _, key := range order {
		s := merged[key]
		out.Groups = append(out.Groups, Group{Key: s.key, Estimates: s.est})
	}
	return out
}

func mergeEstimate(kind stats.AggKind, a, b stats.Estimate) stats.Estimate {
	out := a
	out.Rows = a.Rows + b.Rows
	out.EffRows = a.EffRows + b.EffRows
	out.Exact = a.Exact && b.Exact
	switch kind {
	case stats.AggCount, stats.AggSum:
		out.Point = a.Point + b.Point
		out.StdErr = sqrtSumSq(a.StdErr, b.StdErr)
	case stats.AggAvg, stats.AggQuantile:
		// Weighted combination by effective rows.
		wa, wb := a.EffRows, b.EffRows
		if wa+wb == 0 {
			wa, wb = 1, 1
		}
		out.Point = (a.Point*wa + b.Point*wb) / (wa + wb)
		out.StdErr = sqrtSumSq(a.StdErr*wa/(wa+wb), b.StdErr*wb/(wa+wb))
	}
	z := stats.ZForConfidence(a.Confidence)
	out.Bound = z * out.StdErr
	return out
}

func sqrtSumSq(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}
