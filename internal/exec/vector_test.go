package exec

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"blinkdb/internal/stats"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

func newAccForTest(name string) *stats.Acc {
	switch name {
	case "count":
		return stats.NewAcc(stats.AggCount, 0)
	case "sum":
		return stats.NewAcc(stats.AggSum, 0)
	case "avg":
		return stats.NewAcc(stats.AggAvg, 0)
	default:
		return stats.NewAcc(stats.AggQuantile, 0.5)
	}
}

// columnarClone rebuilds a table in the columnar layout with identical
// block boundaries, striping and placement, so the two tables are the
// same physical design in two representations.
func columnarClone(t testing.TB, tab *storage.Table, rowsPerBlock, nodes int) *storage.Table {
	t.Helper()
	out := storage.NewTable(tab.Name, tab.Schema)
	b := storage.NewBuilderLayout(out, rowsPerBlock, nodes, storage.InMemory, storage.ColumnarLayout)
	tab.Scan(func(r types.Row, m storage.RowMeta) bool { b.Append(r, m); return true })
	b.Finish()
	if len(out.Blocks) != len(tab.Blocks) || out.Bytes() != tab.Bytes() {
		t.Fatalf("columnar clone shape mismatch: %d/%d blocks, %d/%d bytes",
			len(out.Blocks), len(tab.Blocks), out.Bytes(), tab.Bytes())
	}
	for _, blk := range out.Blocks {
		if !blk.IsColumnar() {
			t.Fatalf("clone produced a non-columnar block")
		}
	}
	return out
}

// TestColumnarEquivalence is the acceptance criterion of the columnar
// subsystem: for every seed, query shape, input kind and worker count,
// the vectorized scan over columnar blocks returns a Result that is
// bit-for-bit identical to the row scan.
func TestColumnarEquivalence(t *testing.T) {
	workerCounts := []int{1, 3, 8, 1 << 10}
	for _, seed := range []int64{1, 2, 3} {
		for _, rowsPerBlock := range []int{64, 509} {
			row := randomWeightedTable(t, seed, 6000, rowsPerBlock)
			col := columnarClone(t, row, rowsPerBlock, 4)
			for _, src := range equivalenceQueries {
				p := compile(t, src, row.Schema)
				for ii, inputs := range [][2]Input{
					{FromTable(row), FromTable(col)},
					{FromBlocks(row.Schema, row.Blocks, 400), FromBlocks(col.Schema, col.Blocks, 400)},
				} {
					want := RunParallel(p, inputs[0], 0.95, 1)
					for _, w := range workerCounts {
						got := RunParallel(p, inputs[1], 0.95, w)
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("seed=%d rpb=%d input=%d workers=%d query=%q: columnar result diverged\nwant %+v\ngot  %+v",
								seed, rowsPerBlock, ii, w, src, want, got)
						}
					}
				}
			}
		}
	}
}

// mixedKindTable builds a table that defeats every typed fast path:
// NULLs in the GROUP BY string column (dict null fallback), a column
// mixing Int and Float values (EncValue fallback), bool and all-null
// columns.
func mixedKindTable(t testing.TB, layout storage.Layout) *storage.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "mixed", Kind: types.KindFloat},
		types.Column{Name: "flag", Kind: types.KindBool},
		types.Column{Name: "dead", Kind: types.KindFloat},
		types.Column{Name: "v", Kind: types.KindFloat},
	)
	tab := storage.NewTable("mixed", schema)
	b := storage.NewBuilderLayout(tab, 32, 3, storage.InMemory, layout)
	rng := rand.New(rand.NewSource(42))
	cities := []string{"NY", "SF", "LA"}
	freqs := []int64{0, 40, 900}
	for i := 0; i < 1200; i++ {
		city := types.Str(cities[rng.Intn(3)])
		if rng.Intn(9) == 0 {
			city = types.Null()
		}
		var mixed types.Value
		switch rng.Intn(3) {
		case 0:
			mixed = types.Int(int64(rng.Intn(100)))
		case 1:
			mixed = types.Float(rng.NormFloat64() * 10)
		default:
			mixed = types.Null()
		}
		b.Append(types.Row{
			city,
			mixed,
			types.Bool(rng.Intn(2) == 0),
			types.Null(),
			types.Float(rng.ExpFloat64() * 50),
		}, storage.RowMeta{Rate: 1, StratumFreq: freqs[rng.Intn(3)]})
	}
	return b.Finish()
}

// TestColumnarEquivalenceMixedKinds drives the EncValue and null-group
// fallbacks through the same bit-identity contract.
func TestColumnarEquivalenceMixedKinds(t *testing.T) {
	row := mixedKindTable(t, storage.RowLayout)
	col := mixedKindTable(t, storage.ColumnarLayout)
	queries := []string{
		`SELECT COUNT(*), SUM(v) FROM mixed GROUP BY city`,
		`SELECT COUNT(*) FROM mixed WHERE mixed > 5 GROUP BY city`,
		`SELECT AVG(mixed), MEDIAN(mixed) FROM mixed WHERE city = 'NY' OR flag = 1`,
		`SELECT SUM(mixed) FROM mixed WHERE NOT (mixed <= 5)`,
		`SELECT COUNT(dead), SUM(dead) FROM mixed GROUP BY flag`,
		`SELECT AVG(v) FROM mixed WHERE city > 'K' GROUP BY city, flag`,
		`SELECT COUNT(city) FROM mixed WHERE v < 30`,
	}
	for _, src := range queries {
		p := compile(t, src, row.Schema)
		want := RunParallel(p, FromTable(row), 0.95, 1)
		for _, w := range []int{1, 4, 64} {
			got := RunParallel(p, FromTable(col), 0.95, w)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d query=%q: mixed-kind columnar diverged\nwant %+v\ngot  %+v", w, src, want, got)
			}
		}
		// Weighted-input variant exercises per-row rate staging.
		wantW := RunParallel(p, FromBlocks(row.Schema, row.Blocks, 100), 0.95, 1)
		gotW := RunParallel(p, FromBlocks(col.Schema, col.Blocks, 100), 0.95, 2)
		if !reflect.DeepEqual(wantW, gotW) {
			t.Fatalf("weighted query=%q: diverged", src)
		}
	}
}

// TestEvalPredMatchesRowEval cross-checks the bitmap kernels against the
// interpreted predicate row by row, including hand-built predicates with
// cross-kind and NULL constants that the parser never emits.
func TestEvalPredMatchesRowEval(t *testing.T) {
	tab := mixedKindTable(t, storage.ColumnarLayout)
	var preds []types.Predicate
	for _, src := range []string{
		`SELECT COUNT(*) FROM mixed WHERE city = 'NY'`,
		`SELECT COUNT(*) FROM mixed WHERE city <> 'SF' AND v >= 20`,
		`SELECT COUNT(*) FROM mixed WHERE mixed > 5 OR v < 10`,
		`SELECT COUNT(*) FROM mixed WHERE NOT (city = 'LA' OR mixed < 50)`,
		`SELECT COUNT(*) FROM mixed WHERE city < 'SF' AND flag = 1`,
	} {
		preds = append(preds, compile(t, src, tab.Schema).Pred)
	}
	// Cross-kind and NULL-constant leaves on every encoding.
	for col := 0; col < tab.Schema.Len(); col++ {
		name := tab.Schema.Columns[col].Name
		for _, val := range []types.Value{
			types.Int(3), types.Float(2.5), types.Str("NY"), types.Bool(true), types.Null(),
		} {
			for _, op := range []types.CmpOp{types.CmpLt, types.CmpEq, types.CmpGe, types.CmpNe} {
				preds = append(preds, &types.CmpPred{Col: name, ColIdx: col, Op: op, Val: val})
			}
		}
	}
	sc := &colScratch{}
	for pi, pred := range preds {
		for _, blk := range tab.Blocks {
			d := blk.Col
			dst := sc.bitmap(d.N)
			evalPred(pred, d, dst, d.N, sc)
			for i := 0; i < d.N; i++ {
				got := dst[i>>6]&(1<<uint(i&63)) != 0
				want := pred.Eval(blk.RowAt(i))
				if got != want {
					t.Fatalf("pred %d (%s) block %d row %d: bitmap=%v eval=%v (row %v)",
						pi, pred, blk.ID, i, got, want, blk.RowAt(i))
				}
			}
		}
	}
}

// TestColumnarJoinEquivalence pins the join path over columnar fact
// blocks against the row layout for every worker count.
func TestColumnarJoinEquivalence(t *testing.T) {
	row := randomWeightedTable(t, 11, 3000, 101)
	col := columnarClone(t, row, 101, 4)
	dimSchema := types.NewSchema(
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "region", Kind: types.KindString},
	)
	for _, dimLayout := range []storage.Layout{storage.RowLayout, storage.ColumnarLayout} {
		dim := storage.NewTable("cities", dimSchema)
		db := storage.NewBuilderLayout(dim, 16, 1, storage.InMemory, dimLayout)
		for _, r := range [][2]string{
			{"NY", "east"}, {"SF", "west"}, {"LA", "west"}, {"Austin", "south"},
		} {
			db.AppendRow(types.Row{types.Str(r[0]), types.Str(r[1])})
		}
		db.Finish()

		combined, _, err := JoinedSchema(row.Schema, []*storage.Table{dim})
		if err != nil {
			t.Fatal(err)
		}
		p := compile(t, `SELECT COUNT(*), AVG(sessiontime) FROM sessions WHERE code < 700 GROUP BY region`, combined)
		spec := JoinSpec{Dim: dim, LeftCol: 0, RightCol: 0}
		want := RunJoinParallel(p, FromTable(row), []JoinSpec{spec}, 0.95, 1)
		for _, w := range []int{1, 2, 8} {
			got := RunJoinParallel(p, FromTable(col), []JoinSpec{spec}, 0.95, w)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("dim=%s workers=%d: columnar join diverged", dimLayout, w)
			}
		}
	}
}

// TestColumnarZonePruning checks that pruning works identically on
// columnar blocks (zones are built the same way in both layouts).
func TestColumnarZonePruning(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "day", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindFloat},
	)
	tab := storage.NewTable("clustered", schema)
	b := storage.NewBuilderLayout(tab, 100, 1, storage.InMemory, storage.ColumnarLayout)
	for i := 0; i < 1000; i++ {
		b.AppendRow(types.Row{types.Int(int64(i)), types.Float(float64(i % 7))})
	}
	b.Finish()
	p := compile(t, `SELECT COUNT(*), SUM(v) FROM clustered WHERE day >= 450 AND day < 550`, schema)
	res := RunParallel(p, FromTable(tab), 0.95, 2)
	if res.RowsScanned != 200 {
		t.Errorf("RowsScanned = %d, want 200 (pruned columnar blocks must not be read)", res.RowsScanned)
	}
	if res.RowsMatched != 100 {
		t.Errorf("RowsMatched = %d, want 100", res.RowsMatched)
	}
	if got := res.Groups[0].Estimates[0].Point; got != 100 {
		t.Errorf("COUNT = %g, want 100", got)
	}
}

// TestAddBatchMatchesAdd pins the stats contract the batched kernels rely
// on: AddBatch must leave the accumulator bit-identical to per-row Add.
func TestAddBatchMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 257
	xs := make([]float64, n)
	rates := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
		rates[i] = 1 / float64(1+rng.Intn(5))
	}
	for _, kindName := range []string{"count", "sum", "avg", "quantile"} {
		for _, mode := range []string{"varying", "uniform", "count-uniform", "count-varying"} {
			a := newAccForTest(kindName)
			b := newAccForTest(kindName)
			switch mode {
			case "varying":
				for i := range xs {
					a.Add(xs[i], rates[i])
				}
				b.AddBatch(xs, rates, n, 0)
			case "uniform":
				for i := range xs {
					a.Add(xs[i], 0.25)
				}
				b.AddBatch(xs, nil, n, 0.25)
			case "count-uniform":
				for range xs {
					a.Add(1, 0.5)
				}
				b.AddBatch(nil, nil, n, 0.5)
			case "count-varying":
				for i := range xs {
					a.Add(1, rates[i])
				}
				b.AddBatch(nil, rates, n, 0)
			}
			ea, eb := a.Estimate(0.95), b.Estimate(0.95)
			if !reflect.DeepEqual(ea, eb) {
				t.Fatalf("%s/%s: AddBatch diverged from Add: %+v vs %+v", kindName, mode, ea, eb)
			}
			if math.IsNaN(ea.Point) {
				t.Fatalf("%s/%s: NaN point", kindName, mode)
			}
		}
	}
}

func BenchmarkRunParallelColumnar(b *testing.B) {
	row := randomWeightedTable(b, 9, 200000, 2048)
	col := columnarClone(b, row, 2048, 4)
	p := compile(b, `SELECT COUNT(*), SUM(sessiontime), AVG(sessiontime) FROM sessions WHERE code < 900 GROUP BY city`, row.Schema)
	in := FromTable(col)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				RunParallel(p, in, 0.95, w)
			}
			b.SetBytes(int64(col.Bytes()))
		})
	}
}
