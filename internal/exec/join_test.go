package exec

import (
	"math"
	"math/rand"
	"testing"

	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// dimTable builds a small media dimension table: objectid → genre, title.
func dimTable(t testing.TB, n int) *storage.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "objectid", Kind: types.KindInt},
		types.Column{Name: "genre", Kind: types.KindString},
		types.Column{Name: "minutes", Kind: types.KindFloat},
	)
	tab := storage.NewTable("media", schema)
	b := storage.NewBuilder(tab, 64, 1, storage.InMemory)
	genres := []string{"western", "drama", "comedy"}
	for i := 0; i < n; i++ {
		b.AppendRow(types.Row{
			types.Int(int64(i)),
			types.Str(genres[i%3]),
			types.Float(float64(60 + i%90)),
		})
	}
	return b.Finish()
}

// factTable builds a viewing-log fact table referencing media objects.
func factTable(t testing.TB, rows, objects int, seed int64) *storage.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "objectid", Kind: types.KindInt},
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "watchtime", Kind: types.KindFloat},
	)
	tab := storage.NewTable("views", schema)
	b := storage.NewBuilder(tab, 128, 4, storage.InMemory)
	rng := rand.New(rand.NewSource(seed))
	cities := []string{"NY", "NY", "SF", "LA"}
	for i := 0; i < rows; i++ {
		b.AppendRow(types.Row{
			types.Int(int64(rng.Intn(objects))),
			types.Str(cities[rng.Intn(len(cities))]),
			types.Float(rng.ExpFloat64() * 30),
		})
	}
	return b.Finish()
}

func compileJoinQuery(t testing.TB, src string, fact *storage.Table,
	dims map[string]*storage.Table) (*Plan, []JoinSpec) {
	t.Helper()
	q, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	combined, specs, err := CompileJoins(q, fact.Schema, func(name string) (*storage.Table, error) {
		return dims[name], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(q, combined)
	if err != nil {
		t.Fatal(err)
	}
	return plan, specs
}

func TestJoinedSchemaCollisionsQualified(t *testing.T) {
	fact := factTable(t, 10, 5, 1)
	dim := dimTable(t, 5)
	combined, offsets, err := JoinedSchema(fact.Schema, []*storage.Table{dim})
	if err != nil {
		t.Fatal(err)
	}
	// fact has objectid; dim's objectid collides → "media.objectid".
	if combined.Index("media.objectid") < 0 {
		t.Errorf("colliding column not qualified: %v", combined.Names())
	}
	if combined.Index("genre") < 0 {
		t.Error("non-colliding dim column should keep its name")
	}
	if offsets[0] != fact.Schema.Len() {
		t.Errorf("offset = %d", offsets[0])
	}
}

func TestJoinExactMatchesNestedLoop(t *testing.T) {
	fact := factTable(t, 5000, 30, 2)
	dim := dimTable(t, 30)
	plan, specs := compileJoinQuery(t,
		`SELECT COUNT(*), SUM(watchtime) FROM views JOIN media ON objectid = objectid WHERE genre = 'western' GROUP BY city`,
		fact, map[string]*storage.Table{"media": dim})

	got := RunJoin(plan, FromTable(fact), specs, 0.95)

	// Nested-loop reference.
	genreOf := map[int64]string{}
	dim.Scan(func(r types.Row, _ storage.RowMeta) bool {
		genreOf[r[0].I] = r[1].S
		return true
	})
	wantCount := map[string]float64{}
	wantSum := map[string]float64{}
	fact.Scan(func(r types.Row, _ storage.RowMeta) bool {
		if genreOf[r[0].I] == "western" {
			wantCount[r[1].S]++
			wantSum[r[1].S] += r[2].F
		}
		return true
	})
	if len(got.Groups) != len(wantCount) {
		t.Fatalf("groups = %d, want %d", len(got.Groups), len(wantCount))
	}
	for _, g := range got.Groups {
		city := g.KeyString()
		if math.Abs(g.Estimates[0].Point-wantCount[city]) > 1e-9 {
			t.Errorf("%s count = %g, want %g", city, g.Estimates[0].Point, wantCount[city])
		}
		if math.Abs(g.Estimates[1].Point-wantSum[city]) > 1e-6 {
			t.Errorf("%s sum = %g, want %g", city, g.Estimates[1].Point, wantSum[city])
		}
		if !g.Estimates[0].Exact {
			t.Errorf("%s: base-table join should be exact", city)
		}
	}
}

func TestJoinOnSampledFactUnbiased(t *testing.T) {
	fact := factTable(t, 40000, 20, 3)
	dim := dimTable(t, 20)
	plan, specs := compileJoinQuery(t,
		`SELECT COUNT(*) FROM views JOIN media ON objectid = objectid WHERE genre = 'drama'`,
		fact, map[string]*storage.Table{"media": dim})

	exact := RunJoin(plan, FromTable(fact), specs, 0.95)
	truth := exact.Groups[0].Estimates[0].Point

	// Stratified sample on the join key (§2.1 case (i)).
	fam, err := sample.Build(fact, types.NewColumnSet("objectid"), []int64{500}, sample.BuildConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	approx := RunJoin(plan, FromView(fam.View(0)), specs, 0.95)
	e := approx.Groups[0].Estimates[0]
	if math.Abs(e.Point-truth) > math.Max(3*e.StdErr, truth*0.1) {
		t.Errorf("sampled join count %g vs truth %g (stderr %g)", e.Point, truth, e.StdErr)
	}
}

func TestMultiWayJoin(t *testing.T) {
	fact := factTable(t, 2000, 10, 5)
	media := dimTable(t, 10)
	// Second dimension: genre → family-friendly flag.
	schema := types.NewSchema(
		types.Column{Name: "genre", Kind: types.KindString},
		types.Column{Name: "kids", Kind: types.KindBool},
	)
	ratings := storage.NewTable("ratings", schema)
	rb := storage.NewBuilder(ratings, 8, 1, storage.InMemory)
	rb.AppendRow(types.Row{types.Str("western"), types.Bool(false)})
	rb.AppendRow(types.Row{types.Str("drama"), types.Bool(false)})
	rb.AppendRow(types.Row{types.Str("comedy"), types.Bool(true)})
	rb.Finish()

	plan, specs := compileJoinQuery(t,
		`SELECT COUNT(*) FROM views JOIN media ON objectid = objectid JOIN ratings ON genre = genre WHERE kids = TRUE`,
		fact, map[string]*storage.Table{"media": media, "ratings": ratings})
	got := RunJoin(plan, FromTable(fact), specs, 0.95)

	// comedy objects are ids ≡ 2 mod 3.
	want := 0.0
	fact.Scan(func(r types.Row, _ storage.RowMeta) bool {
		if r[0].I%3 == 2 {
			want++
		}
		return true
	})
	if got.Groups[0].Estimates[0].Point != want {
		t.Errorf("2-way join count = %g, want %g", got.Groups[0].Estimates[0].Point, want)
	}
}

func TestJoinDropsUnmatchedRows(t *testing.T) {
	fact := factTable(t, 1000, 30, 6)
	dim := dimTable(t, 10) // objects 10..29 have no dimension row
	plan, specs := compileJoinQuery(t,
		`SELECT COUNT(*) FROM views JOIN media ON objectid = objectid`,
		fact, map[string]*storage.Table{"media": dim})
	got := RunJoin(plan, FromTable(fact), specs, 0.95)
	want := 0.0
	fact.Scan(func(r types.Row, _ storage.RowMeta) bool {
		if r[0].I < 10 {
			want++
		}
		return true
	})
	if got.Groups[0].Estimates[0].Point != want {
		t.Errorf("inner join count = %g, want %g", got.Groups[0].Estimates[0].Point, want)
	}
}

func TestCompileJoinsErrors(t *testing.T) {
	fact := factTable(t, 10, 5, 7)
	dim := dimTable(t, 5)
	dims := map[string]*storage.Table{"media": dim}
	bad := []string{
		`SELECT COUNT(*) FROM views JOIN media ON bogus = objectid`,
		`SELECT COUNT(*) FROM views JOIN media ON objectid = bogus`,
		`SELECT COUNT(*) FROM views JOIN media ON objectid = other.objectid`,
	}
	for _, src := range bad {
		q, err := sqlparser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := CompileJoins(q, fact.Schema, func(name string) (*storage.Table, error) {
			return dims[name], nil
		}); err == nil {
			t.Errorf("CompileJoins(%q) should fail", src)
		}
	}
}

func BenchmarkJoin(b *testing.B) {
	fact := factTable(b, 50000, 100, 8)
	dim := dimTable(b, 100)
	plan, specs := compileJoinQuery(b,
		`SELECT SUM(watchtime) FROM views JOIN media ON objectid = objectid WHERE genre = 'western' GROUP BY city`,
		fact, map[string]*storage.Table{"media": dim})
	in := FromTable(fact)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunJoin(plan, in, specs, 0.95)
	}
}
