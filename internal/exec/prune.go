package exec

import (
	"math"

	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// Bounds is a per-column value interval implied by a predicate's
// conjunctive comparisons. Nil endpoints mean unbounded.
type Bounds struct {
	// Lo is the lower bound (nil = −∞); LoOpen excludes Lo itself.
	Lo *types.Value
	// Hi is the upper bound (nil = +∞); HiOpen excludes Hi itself.
	Hi     *types.Value
	LoOpen bool
	HiOpen bool
}

// ColumnBounds extracts per-column bounds from the conjunctive parts of a
// predicate. OR and NOT subtrees contribute no constraints (conservative:
// pruning stays correct, it just prunes less). The result maps schema
// column index → interval.
func ColumnBounds(p types.Predicate) map[int]*Bounds {
	out := map[int]*Bounds{}
	collectBounds(p, out)
	return out
}

func collectBounds(p types.Predicate, out map[int]*Bounds) {
	switch t := p.(type) {
	case *types.AndPred:
		for _, k := range t.Kids {
			collectBounds(k, out)
		}
	case *types.CmpPred:
		b := out[t.ColIdx]
		if b == nil {
			b = &Bounds{}
			out[t.ColIdx] = b
		}
		v := t.Val
		switch t.Op {
		case types.CmpEq:
			b.tightenLo(v, false)
			b.tightenHi(v, false)
		case types.CmpLt:
			b.tightenHi(v, true)
		case types.CmpLe:
			b.tightenHi(v, false)
		case types.CmpGt:
			b.tightenLo(v, true)
		case types.CmpGe:
			b.tightenLo(v, false)
		}
		// CmpNe carries no interval information.
	}
}

func (b *Bounds) tightenLo(v types.Value, open bool) {
	if b.Lo == nil || types.Compare(v, *b.Lo) > 0 {
		b.Lo, b.LoOpen = &v, open
	} else if types.Compare(v, *b.Lo) == 0 && open {
		b.LoOpen = true
	}
}

func (b *Bounds) tightenHi(v types.Value, open bool) {
	if b.Hi == nil || types.Compare(v, *b.Hi) < 0 {
		b.Hi, b.HiOpen = &v, open
	} else if types.Compare(v, *b.Hi) == 0 && open {
		b.HiOpen = true
	}
}

// overlapsZone reports whether the interval can intersect [zMin, zMax].
func (b *Bounds) overlapsZone(zMin, zMax types.Value) bool {
	if b.Hi != nil {
		c := types.Compare(zMin, *b.Hi)
		if c > 0 || (c == 0 && b.HiOpen) {
			return false
		}
	}
	if b.Lo != nil {
		c := types.Compare(zMax, *b.Lo)
		if c < 0 || (c == 0 && b.LoOpen) {
			return false
		}
	}
	return true
}

// PruneBlocks returns the blocks whose zone maps may contain rows
// satisfying the bounds. Blocks without zone maps are kept (correctness
// over savings). The second return value is the fraction of bytes pruned.
func PruneBlocks(blocks []*storage.Block, bounds map[int]*Bounds) ([]*storage.Block, float64) {
	if len(bounds) == 0 {
		return blocks, 0
	}
	kept := make([]*storage.Block, 0, len(blocks))
	var total, keptBytes int64
	for _, blk := range blocks {
		total += blk.Bytes
		if zoneMayMatch(blk, bounds) {
			kept = append(kept, blk)
			keptBytes += blk.Bytes
		}
	}
	if total == 0 {
		return kept, 0
	}
	frac := 1 - float64(keptBytes)/float64(total)
	return kept, math.Max(0, frac)
}
