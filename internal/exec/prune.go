package exec

import (
	"math"

	"blinkdb/internal/colstore"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// Bounds is a per-column value interval implied by a predicate's
// conjunctive comparisons. Nil endpoints mean unbounded.
type Bounds struct {
	// Lo is the lower bound (nil = −∞); LoOpen excludes Lo itself.
	Lo *types.Value
	// Hi is the upper bound (nil = +∞); HiOpen excludes Hi itself.
	Hi     *types.Value
	LoOpen bool
	HiOpen bool
}

// ColumnBounds extracts per-column bounds from the conjunctive parts of a
// predicate. OR and NOT subtrees contribute no constraints (conservative:
// pruning stays correct, it just prunes less). The result maps schema
// column index → interval.
func ColumnBounds(p types.Predicate) map[int]*Bounds {
	out := map[int]*Bounds{}
	collectBounds(p, out)
	return out
}

func collectBounds(p types.Predicate, out map[int]*Bounds) {
	switch t := p.(type) {
	case *types.AndPred:
		for _, k := range t.Kids {
			collectBounds(k, out)
		}
	case *types.CmpPred:
		b := out[t.ColIdx]
		if b == nil {
			b = &Bounds{}
			out[t.ColIdx] = b
		}
		v := t.Val
		switch t.Op {
		case types.CmpEq:
			b.tightenLo(v, false)
			b.tightenHi(v, false)
		case types.CmpLt:
			b.tightenHi(v, true)
		case types.CmpLe:
			b.tightenHi(v, false)
		case types.CmpGt:
			b.tightenLo(v, true)
		case types.CmpGe:
			b.tightenLo(v, false)
		}
		// CmpNe carries no interval information.
	}
}

func (b *Bounds) tightenLo(v types.Value, open bool) {
	if b.Lo == nil || types.Compare(v, *b.Lo) > 0 {
		b.Lo, b.LoOpen = &v, open
	} else if types.Compare(v, *b.Lo) == 0 && open {
		b.LoOpen = true
	}
}

func (b *Bounds) tightenHi(v types.Value, open bool) {
	if b.Hi == nil || types.Compare(v, *b.Hi) < 0 {
		b.Hi, b.HiOpen = &v, open
	} else if types.Compare(v, *b.Hi) == 0 && open {
		b.HiOpen = true
	}
}

// overlapsZone reports whether the interval can intersect [zMin, zMax].
func (b *Bounds) overlapsZone(zMin, zMax types.Value) bool {
	if b.Hi != nil {
		c := types.Compare(zMin, *b.Hi)
		if c > 0 || (c == 0 && b.HiOpen) {
			return false
		}
	}
	if b.Lo != nil {
		c := types.Compare(zMax, *b.Lo)
		if c < 0 || (c == 0 && b.LoOpen) {
			return false
		}
	}
	return true
}

// conjunctiveLeaves returns the predicate's comparison leaves when the
// predicate is a PURE conjunction of them (Cmp leaves under And nodes,
// TruePred allowed), and nil otherwise. Only a pure conjunction lets the
// all-true zone shortcut equate "every leaf holds for every row" with
// "the predicate holds for every row"; OR/NOT/unknown subtrees disable it.
func conjunctiveLeaves(p types.Predicate) []*types.CmpPred {
	out := []*types.CmpPred{}
	if !collectLeaves(p, &out) {
		return nil
	}
	return out
}

func collectLeaves(p types.Predicate, out *[]*types.CmpPred) bool {
	switch t := p.(type) {
	case types.TruePred:
		return true
	case *types.CmpPred:
		*out = append(*out, t)
		return true
	case *types.AndPred:
		for _, k := range t.Kids {
			if !collectLeaves(k, out) {
				return false
			}
		}
		return true
	}
	return false
}

// zoneOrderSafe reports whether v may participate in interval implication:
// types.Compare must behave as a transitive total order between v and
// every value a zone could bracket. Numeric magnitudes ≥ 2^53 break that
// (int→float rounding makes distinct values compare equal), and NaN
// compares unordered — both bail out. Strings, bools and NULL are safe.
func zoneOrderSafe(v types.Value) bool {
	const maxExact = int64(1) << 53
	switch v.Kind {
	case types.KindInt:
		return v.I < maxExact && v.I > -maxExact
	case types.KindFloat:
		return math.Abs(v.F) < float64(maxExact) // NaN fails too
	}
	return true
}

// leafImplied reports whether EVERY value v with zmin ≤ v ≤ zmax (under
// types.Compare — NULLs included, since zones extend through them as the
// minimum) satisfies the comparison leaf. Sound because, after the
// zoneOrderSafe guards, Compare is a transitive total order over the
// zone's bracket and the constant, and every scan kernel (row closures and
// columnar kernels alike) decides each row exactly by
// cmpPass(Compare(rowVal, val), opFlags).
func leafImplied(zmin, zmax, val types.Value, op types.CmpOp) bool {
	if !zoneOrderSafe(zmin) || !zoneOrderSafe(zmax) || !zoneOrderSafe(val) {
		return false
	}
	cmin, cmax := types.Compare(zmin, val), types.Compare(zmax, val)
	switch op {
	case types.CmpLt:
		return cmax < 0
	case types.CmpLe:
		return cmax <= 0
	case types.CmpGt:
		return cmin > 0
	case types.CmpGe:
		return cmin >= 0
	case types.CmpEq:
		return cmin == 0 && cmax == 0
	case types.CmpNe:
		return cmax < 0 || cmin > 0
	}
	return false
}

// zoneImpliesPred is the all-true third state of zone classification: it
// reports whether the block's zones prove the (purely conjunctive)
// predicate holds for EVERY row, letting the scan skip predicate
// evaluation entirely and batch-aggregate the whole block. Requires each
// leaf's column to be NaN-free (a hidden NaN fails ordered comparisons
// without moving the zone) with a valid zone whose bracket implies the
// leaf. Purely an evaluation shortcut: a false return only means "evaluate
// normally", so results are bit-identical either way.
func zoneImpliesPred(b *storage.Block, d *colstore.Data, leaves []*types.CmpPred) bool {
	for _, t := range leaves {
		ci := t.ColIdx
		if ci >= len(b.Zones) || !b.Zones[ci].Valid {
			return false
		}
		if ci >= len(d.Cols) || !d.Cols[ci].NaNFree {
			return false
		}
		z := b.Zones[ci]
		if !leafImplied(z.Min, z.Max, t.Val, t.Op) {
			return false
		}
	}
	return true
}

// PruneBlocks returns the blocks whose zone maps may contain rows
// satisfying the bounds. Blocks without zone maps are kept (correctness
// over savings). The second return value is the fraction of bytes pruned.
func PruneBlocks(blocks []*storage.Block, bounds map[int]*Bounds) ([]*storage.Block, float64) {
	if len(bounds) == 0 {
		return blocks, 0
	}
	kept := make([]*storage.Block, 0, len(blocks))
	var total, keptBytes int64
	for _, blk := range blocks {
		total += blk.Bytes
		if zoneMayMatch(blk, bounds) {
			kept = append(kept, blk)
			keptBytes += blk.Bytes
		}
	}
	if total == 0 {
		return kept, 0
	}
	frac := 1 - float64(keptBytes)/float64(total)
	return kept, math.Max(0, frac)
}
