package exec

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"blinkdb/internal/colstore"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// stratSortedTable builds a table shaped like a stratified sample's
// physical layout: rows sorted by the stratification column (long runs),
// a block-monotonic int column (tight zones → all-true/all-false blocks),
// NULL runs, and a mixed-kind column whose values also arrive in runs.
// layout picks row vs columnar; rle toggles run-length encoding (with the
// stratification columns hinted sorted) vs the plain typed encodings.
func stratSortedTable(t testing.TB, layout storage.Layout, rle bool) *storage.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "strat", Kind: types.KindString},
		types.Column{Name: "tier", Kind: types.KindInt},
		types.Column{Name: "score", Kind: types.KindFloat},
		types.Column{Name: "v", Kind: types.KindFloat},
		types.Column{Name: "blob", Kind: types.KindFloat},
	)
	tab := storage.NewTable("strat", schema)
	b := storage.NewBuilderLayout(tab, 128, 4, storage.InMemory, layout)
	if !rle {
		b.DisableRLE()
	} else {
		b.HintSortedColumns(0, 1)
	}
	rng := rand.New(rand.NewSource(7))
	row := 0
	for s := 0; s < 30; s++ {
		strat := types.Str(fmt.Sprintf("stratum-%02d", s))
		runLen := 120 + rng.Intn(160)
		for j := 0; j < runLen; j++ {
			// score: NULL runs for some strata, constant-ish runs elsewhere,
			// with a handful of kinds mixed in run-shaped stretches.
			var score types.Value
			switch s % 4 {
			case 0:
				score = types.Null()
			case 1:
				score = types.Float(float64(s))
			case 2:
				score = types.Int(int64(s * 10))
			default:
				score = types.Str("grade-" + string(rune('A'+s%5)))
			}
			b.Append(types.Row{
				strat,
				types.Int(int64(row / 128)), // monotonic per block → tight zones
				score,
				types.Float(rng.ExpFloat64() * 50),
				types.Float(rng.NormFloat64()),
			}, storage.RowMeta{Rate: 1, StratumFreq: int64(100 + s)})
			row++
		}
	}
	return b.Finish()
}

func hasRLEColumn(tab *storage.Table) bool {
	for _, blk := range tab.Blocks {
		if blk.Col == nil {
			continue
		}
		for _, c := range blk.Col.Cols {
			if c.Enc == colstore.EncRLE {
				return true
			}
		}
	}
	return false
}

// TestThreeWayEquivalence is the overhaul's acceptance gate: row layout,
// plain-columnar (RLE disabled) and RLE-columnar must return bit-identical
// Results for every query shape, worker count and Tuning combination —
// including all-true/all-false zone blocks, NULL runs, mixed-kind run
// columns, and selection-vector vs bitmap kernel dispatch.
func TestThreeWayEquivalence(t *testing.T) {
	row := stratSortedTable(t, storage.RowLayout, false)
	plain := stratSortedTable(t, storage.ColumnarLayout, false)
	rle := stratSortedTable(t, storage.ColumnarLayout, true)
	if hasRLEColumn(plain) {
		t.Fatal("DisableRLE leg still produced an RLE column")
	}
	if !hasRLEColumn(rle) {
		t.Fatal("RLE leg produced no RLE columns — the suite would be vacuous")
	}
	queries := []string{
		// tier is block-monotonic: these ranges make some blocks all-false
		// (pruned), some all-true (zone-implied), some mixed.
		`SELECT COUNT(*), SUM(v) FROM strat WHERE tier >= 10 AND tier < 25 GROUP BY strat`,
		`SELECT COUNT(*) FROM strat WHERE tier < 999`,                             // every block all-true
		`SELECT COUNT(*) FROM strat WHERE tier > 999`,                             // every block all-false
		`SELECT AVG(v) FROM strat WHERE strat = 'stratum-07'`,                     // RLE leaf, single-run strata
		`SELECT SUM(v), COUNT(score) FROM strat WHERE v < 40 GROUP BY strat`,      // mid-selectivity single leaf → selvec
		`SELECT COUNT(*) FROM strat WHERE v < 0.5 GROUP BY strat`,                 // sparse single leaf → bitmap
		`SELECT AVG(score), MEDIAN(v) FROM strat WHERE score >= 5 GROUP BY strat`, // mixed-kind RLE column in pred+agg
		`SELECT SUM(score) FROM strat WHERE strat <> 'stratum-00' AND NOT (v <= 5)`,
		`SELECT COUNT(*), AVG(v) FROM strat WHERE score = 70 OR strat < 'stratum-03' GROUP BY tier`,
	}
	tunings := []Tuning{
		{},
		{NoTristateZones: true},
		{NoSelVectors: true},
		{NoTristateZones: true, NoSelVectors: true},
	}
	for _, src := range queries {
		p := compile(t, src, row.Schema)
		want := RunParallel(p, FromTable(row), 0.95, 1)
		for li, leg := range []*storage.Table{plain, rle} {
			for _, tn := range tunings {
				pt := *p
				pt.Tuning = tn
				for _, w := range []int{1, 2, 8} {
					got := RunParallel(&pt, FromTable(leg), 0.95, w)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("leg=%d tuning=%+v workers=%d query=%q: diverged\nwant %+v\ngot  %+v",
							li, tn, w, src, want, got)
					}
				}
			}
		}
		// Weighted-rate variant (per-row rates through FromBlocks).
		wantW := RunParallel(p, FromBlocks(row.Schema, row.Blocks, 150), 0.95, 1)
		gotW := RunParallel(p, FromBlocks(rle.Schema, rle.Blocks, 150), 0.95, 4)
		if !reflect.DeepEqual(wantW, gotW) {
			t.Fatalf("weighted query=%q: diverged", src)
		}
	}
}

// TestThreeWayJoinEquivalence pins late-materialized joins against the
// row path and the early-materialization fallback across fact layouts.
func TestThreeWayJoinEquivalence(t *testing.T) {
	row := stratSortedTable(t, storage.RowLayout, false)
	plain := stratSortedTable(t, storage.ColumnarLayout, false)
	rle := stratSortedTable(t, storage.ColumnarLayout, true)

	dimSchema := types.NewSchema(
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "bucket", Kind: types.KindString},
	)
	dim := storage.NewTable("strata", dimSchema)
	db := storage.NewBuilder(dim, 16, 1, storage.InMemory)
	for s := 0; s < 30; s += 2 { // odd strata deliberately unmatched
		db.AppendRow(types.Row{
			types.Str(fmt.Sprintf("stratum-%02d", s)),
			types.Str([]string{"low", "mid", "high"}[s/10]),
		})
	}
	db.Finish()

	combined, _, err := JoinedSchema(row.Schema, []*storage.Table{dim})
	if err != nil {
		t.Fatal(err)
	}
	spec := JoinSpec{Dim: dim, LeftCol: 0, RightCol: 0}
	queries := []string{
		// Fact-side conjunct + dim-side conjunct: exercises the split.
		`SELECT COUNT(*), SUM(v) FROM strat WHERE v < 40 AND bucket <> 'mid' GROUP BY bucket`,
		`SELECT AVG(v) FROM strat WHERE bucket = 'high' GROUP BY strat`,            // rest-only pred
		`SELECT COUNT(*) FROM strat WHERE tier >= 5 AND tier < 20 GROUP BY bucket`, // fact-only pred
		`SELECT SUM(v) FROM strat GROUP BY bucket`,                                 // no pred at all
	}
	for _, src := range queries {
		p := compile(t, src, combined)
		want := RunJoinParallel(p, FromTable(row), []JoinSpec{spec}, 0.95, 1)
		for li, leg := range []*storage.Table{plain, rle} {
			for _, tn := range []Tuning{{}, {NoLateMaterialization: true}} {
				pt := *p
				pt.Tuning = tn
				for _, w := range []int{1, 2, 8} {
					got := RunJoinParallel(&pt, FromTable(leg), []JoinSpec{spec}, 0.95, w)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("leg=%d tuning=%+v workers=%d query=%q: join diverged\nwant %+v\ngot  %+v",
							li, tn, w, src, want, got)
					}
				}
			}
		}
	}
}

// TestEvalPredMatchesRowEvalRLE runs the kernel-vs-interpreter cross-check
// over a table with genuine RLE columns (NULL runs, mixed-kind runs).
func TestEvalPredMatchesRowEvalRLE(t *testing.T) {
	tab := stratSortedTable(t, storage.ColumnarLayout, true)
	var preds []types.Predicate
	for col := 0; col < tab.Schema.Len(); col++ {
		name := tab.Schema.Columns[col].Name
		for _, val := range []types.Value{
			types.Int(70), types.Float(7), types.Str("stratum-07"),
			types.Str("grade-B"), types.Bool(true), types.Null(),
		} {
			for _, op := range []types.CmpOp{types.CmpLt, types.CmpLe, types.CmpEq, types.CmpGe, types.CmpGt, types.CmpNe} {
				preds = append(preds, &types.CmpPred{Col: name, ColIdx: col, Op: op, Val: val})
			}
		}
	}
	sc := &colScratch{}
	for pi, pred := range preds {
		for _, blk := range tab.Blocks {
			d := blk.Col
			dst := sc.bitmap(d.N)
			evalPred(pred, d, dst, d.N, sc)
			for i := 0; i < d.N; i++ {
				got := dst[i>>6]&(1<<uint(i&63)) != 0
				want := pred.Eval(blk.RowAt(i))
				if got != want {
					t.Fatalf("pred %d (%s) block %d row %d: bitmap=%v eval=%v (row %v)",
						pi, pred, blk.ID, i, got, want, blk.RowAt(i))
				}
			}
		}
	}
}

// TestSelVecMatchesBitmap pins the selection-vector kernels against the
// bitmap kernels element-for-element across operators and NaN.
func TestSelVecMatchesBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 517
	fs := make([]float64, n)
	is := make([]int64, n)
	for i := range fs {
		fs[i] = math.Floor(rng.NormFloat64() * 10)
		is[i] = int64(rng.Intn(40) - 20)
	}
	fs[5], fs[100] = math.NaN(), math.Inf(1)
	dst := make([]uint64, (n+63)/64)
	idxs := make([]int32, n)
	for _, op := range []types.CmpOp{types.CmpLt, types.CmpLe, types.CmpEq, types.CmpGe, types.CmpGt, types.CmpNe} {
		lt, eq, gt := opFlags(op)
		cmpFloats(fs, 3, dst, lt, eq, gt)
		k := selFloats(fs, 3, idxs, lt, eq, gt)
		checkSelAgainstBitmap(t, "floats", op, dst, n, idxs[:k])
		cmpInts(is, -2, dst, lt, eq, gt)
		k = selInts(is, -2, idxs, lt, eq, gt)
		checkSelAgainstBitmap(t, "ints", op, dst, n, idxs[:k])
	}
}

func checkSelAgainstBitmap(t *testing.T, kind string, op types.CmpOp, dst []uint64, n int, idxs []int32) {
	t.Helper()
	j := 0
	for i := 0; i < n; i++ {
		inBitmap := dst[i>>6]&(1<<uint(i&63)) != 0
		inSel := j < len(idxs) && idxs[j] == int32(i)
		if inSel {
			j++
		}
		if inBitmap != inSel {
			t.Fatalf("%s %v row %d: bitmap=%v selvec=%v", kind, op, i, inBitmap, inSel)
		}
	}
	if j != len(idxs) {
		t.Fatalf("%s %v: selection vector has %d extra entries", kind, op, len(idxs)-j)
	}
}

// TestCmpIntsAsFloatNormalization checks the int-threshold rewrite against
// the per-element float-conversion reference on every tricky constant:
// fractional, integral, NaN, ±Inf, and the 2^53/2^63 rounding bands.
func TestCmpIntsAsFloatNormalization(t *testing.T) {
	xs := []int64{
		math.MinInt64, math.MinInt64 + 1, -(1 << 62), -(1 << 53) - 1, -(1 << 53), -(1 << 53) + 1,
		-4, -3, -2, -1, 0, 1, 2, 3, 4, 255,
		(1 << 53) - 1, 1 << 53, (1 << 53) + 1, (1 << 53) + 2, 1 << 62, math.MaxInt64 - 1, math.MaxInt64,
	}
	consts := []float64{
		2.5, -2.5, 3, -3, 0, 0.5, -0.5, math.NaN(), math.Inf(1), math.Inf(-1),
		float64(1<<53) - 1, float64(1 << 53), float64(1<<53) + 2, -float64(1 << 53),
		float64(1 << 62), float64(math.MaxInt64), -float64(1 << 63), 1e19, -1e19, 1e300,
	}
	dst := make([]uint64, (len(xs)+63)/64)
	for _, c := range consts {
		for _, op := range []types.CmpOp{types.CmpLt, types.CmpLe, types.CmpEq, types.CmpGe, types.CmpGt, types.CmpNe} {
			lt, eq, gt := opFlags(op)
			cmpIntsAsFloat(xs, c, dst, lt, eq, gt)
			for i, v := range xs {
				f := float64(v)
				want := eq
				if f < c {
					want = lt
				} else if f > c {
					want = gt
				}
				got := dst[i>>6]&(1<<uint(i&63)) != 0
				if got != want {
					t.Fatalf("c=%g op=%v v=%d: got %v want %v", c, op, v, got, want)
				}
			}
		}
	}
}

// TestScanColumnarSteadyStateZeroAlloc pins the per-block scan loop at
// zero allocations once scratch and group states are warm — the property
// the whole pooling design exists for.
func TestScanColumnarSteadyStateZeroAlloc(t *testing.T) {
	for _, rle := range []bool{false, true} {
		tab := stratSortedTable(t, storage.ColumnarLayout, rle)
		// COUNT/SUM only: quantile accumulators buffer samples and so
		// allocate by design.
		p := compile(t, `SELECT COUNT(*), SUM(v) FROM strat WHERE v < 40 GROUP BY strat`, tab.Schema)
		rt := p.runtime()
		in := FromTable(tab)
		sc := &colScratch{}
		pt := &Partial{groups: make(map[uint64][]*groupState)}
		scan := func() {
			for _, blk := range tab.Blocks {
				pt.scanColumnar(p, rt, in, blk.Col, sc, false)
			}
		}
		scan() // warm: group states, scratch buffers, batch pools
		if a := testing.AllocsPerRun(20, scan); a != 0 {
			t.Errorf("rle=%v: steady-state scan allocates %.1f allocs/run, want 0", rle, a)
		}
	}
}

// TestScanColumnarJoinSteadyStateZeroAlloc pins the late- and
// early-materialization join scan loops at zero allocations per pass once
// the pooled combined-row buffer (sized at plan time, reused via
// colScratch) and group states are warm — the regression the buffer hoist
// exists to prevent.
func TestScanColumnarJoinSteadyStateZeroAlloc(t *testing.T) {
	tab := stratSortedTable(t, storage.ColumnarLayout, true)
	dimSchema := types.NewSchema(
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "bucket", Kind: types.KindString},
	)
	dim := storage.NewTable("strata", dimSchema)
	db := storage.NewBuilder(dim, 16, 1, storage.InMemory)
	for s := 0; s < 30; s++ {
		db.AppendRow(types.Row{
			types.Str(fmt.Sprintf("stratum-%02d", s)),
			types.Str([]string{"low", "mid", "high"}[s/10]),
		})
	}
	db.Finish()
	combined, _, err := JoinedSchema(tab.Schema, []*storage.Table{dim})
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, `SELECT COUNT(*), SUM(v) FROM strat WHERE v < 40 AND bucket <> 'mid' GROUP BY bucket`, combined)
	rt := p.runtime()
	jr := newJoinRuntime(p, []JoinSpec{{Dim: dim, LeftCol: 0, RightCol: 0}})
	in := FromTable(tab)
	for name, late := range map[string]bool{"late": true, "early": false} {
		sc := &colScratch{}
		pt := &Partial{groups: make(map[uint64][]*groupState)}
		scan := func() {
			for _, blk := range tab.Blocks {
				if late {
					pt.scanColumnarJoin(p, rt, in, blk.Col, sc, jr)
				} else {
					pt.scanColumnarExpand(p, rt, in, blk.Col, sc, jr)
				}
			}
		}
		scan() // warm: row buffer, bitmap scratch, group states
		if a := testing.AllocsPerRun(20, scan); a != 0 {
			t.Errorf("%s: steady-state join scan allocates %.1f allocs/run, want 0", name, a)
		}
	}
}

// TestTristateZoneSkipsEval asserts the all-true classification actually
// fires: a predicate its zones prove must aggregate every row without the
// per-row selection pass (observable via the selectivity counters staying
// exact AND zoneImpliesPred returning true for at least one block).
func TestTristateZoneSkipsEval(t *testing.T) {
	tab := stratSortedTable(t, storage.ColumnarLayout, true)
	p := compile(t, `SELECT COUNT(*) FROM strat WHERE tier >= 2 AND tier < 20`, tab.Schema)
	rt := p.runtime()
	if rt.leaves == nil {
		t.Fatal("conjunctive predicate yielded no leaves")
	}
	implied := 0
	for _, blk := range tab.Blocks {
		if blk.Col == nil {
			continue
		}
		if zoneImpliesPred(blk, blk.Col, rt.leaves) {
			implied++
		}
	}
	if implied == 0 {
		t.Fatal("no block classified all-true — the shortcut never fires on its target workload")
	}
	// And the shortcut must not change results (belt over the equivalence
	// suite's braces, on this exact plan).
	want := RunParallel(p, FromTable(tab), 0.95, 1)
	pNo := *p
	pNo.Tuning.NoTristateZones = true
	got := RunParallel(&pNo, FromTable(tab), 0.95, 1)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("three-state zones changed the result")
	}
}

// TestZoneImpliesPredGuards pins the soundness guards: NaN-bearing
// columns and ≥2^53 magnitudes must never be classified all-true.
func TestZoneImpliesPredGuards(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "f", Kind: types.KindFloat},
		types.Column{Name: "big", Kind: types.KindInt},
	)
	tab := storage.NewTable("guards", schema)
	b := storage.NewBuilderLayout(tab, 64, 1, storage.InMemory, storage.ColumnarLayout)
	for i := 0; i < 64; i++ {
		f := types.Float(float64(i))
		if i == 10 {
			f = types.Float(math.NaN()) // hides inside the zone bracket
		}
		b.Append(types.Row{f, types.Int(int64(1<<53) + int64(i))}, storage.RowMeta{Rate: 1})
	}
	b.Finish()
	blk := tab.Blocks[0]

	// NaN guard: zones say f ∈ [0, 63] (Compare treats NaN as equal to
	// everything, so it never widens the bracket), which would imply
	// "f < 100" — yet the NaN row fails it (eq is not lt). Without the
	// NaNFree check the block would be batch-aggregated with one row too
	// many.
	nanLeaf := []*types.CmpPred{{Col: "f", ColIdx: 0, Op: types.CmpLt, Val: types.Float(100)}}
	if zoneImpliesPred(blk, blk.Col, nanLeaf) {
		t.Error("all-true claimed over a NaN-bearing column")
	}
	p := compile(t, `SELECT COUNT(*) FROM guards WHERE f < 100`, schema)
	res := Run(p, FromTable(tab), 0.95)
	if res.RowsMatched != 63 { // NaN row fails f < 100
		t.Errorf("RowsMatched = %d, want 63", res.RowsMatched)
	}

	// Magnitude guard: int values ≥ 2^53 round when compared as floats,
	// so interval implication must refuse them.
	bigLeaf := []*types.CmpPred{{Col: "big", ColIdx: 1, Op: types.CmpGe, Val: types.Float(9007199254740993)}}
	if zoneImpliesPred(blk, blk.Col, bigLeaf) {
		t.Error("all-true claimed over ≥2^53 magnitudes")
	}
}

// ---- kernel micro-benchmarks ----

func benchFloatCol(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	return xs
}

// BenchmarkCmpFloats compares the bitmap and selection-vector float
// kernels at the mid selectivity the dispatcher targets.
func BenchmarkCmpFloats(b *testing.B) {
	n := 1 << 16
	xs := benchFloatCol(n)
	dst := make([]uint64, (n+63)/64)
	idxs := make([]int32, n)
	b.Run("bitmap", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			cmpFloats(xs, 0, dst, true, false, false)
		}
	})
	b.Run("selvec", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			selFloats(xs, 0, idxs, true, false, false)
		}
	})
	b.Run("bitmap+extract", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			cmpFloats(xs, 0, dst, true, false, false)
			k := 0
			for _, w := range dst {
				for w != 0 {
					idxs[k] = int32(0) // representative store
					k++
					w &= w - 1
				}
			}
		}
	})
}

// BenchmarkCmpRLE compares predicate evaluation over an RLE stratification
// column (one verdict per run) against the dictionary kernel on identical
// logical data.
func BenchmarkCmpRLE(b *testing.B) {
	rle := stratSortedTable(b, storage.ColumnarLayout, true)
	plain := stratSortedTable(b, storage.ColumnarLayout, false)
	pred := &types.CmpPred{Col: "strat", ColIdx: 0, Op: types.CmpLe, Val: types.Str("stratum-14")}
	for _, leg := range []struct {
		name string
		tab  *storage.Table
	}{{"rle", rle}, {"dict", plain}} {
		b.Run(leg.name, func(b *testing.B) {
			sc := &colScratch{}
			rows := int64(0)
			for _, blk := range leg.tab.Blocks {
				rows += int64(blk.Col.N)
			}
			b.SetBytes(rows)
			for i := 0; i < b.N; i++ {
				for _, blk := range leg.tab.Blocks {
					d := blk.Col
					evalPred(pred, d, sc.bitmap(d.N), d.N, sc)
				}
			}
		})
	}
}

// BenchmarkJoinLateMat measures the late-materialization join against the
// early-materialization fallback on the same plan and data.
func BenchmarkJoinLateMat(b *testing.B) {
	row := randomWeightedTable(b, 17, 120000, 2048)
	col := columnarClone(b, row, 2048, 4)
	dimSchema := types.NewSchema(
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "region", Kind: types.KindString},
	)
	dim := storage.NewTable("cities", dimSchema)
	db := storage.NewBuilder(dim, 16, 1, storage.InMemory)
	for _, r := range [][2]string{{"NY", "east"}, {"SF", "west"}, {"Austin", "south"}} {
		db.AppendRow(types.Row{types.Str(r[0]), types.Str(r[1])})
	}
	db.Finish()
	combined, _, err := JoinedSchema(row.Schema, []*storage.Table{dim})
	if err != nil {
		b.Fatal(err)
	}
	spec := JoinSpec{Dim: dim, LeftCol: 0, RightCol: 0}
	p := compile(b, `SELECT COUNT(*), SUM(sessiontime) FROM sessions WHERE code < 500 AND region <> 'south' GROUP BY region`, combined)
	for _, tn := range []struct {
		name string
		t    Tuning
	}{{"late", Tuning{}}, {"early", Tuning{NoLateMaterialization: true}}} {
		b.Run(tn.name, func(b *testing.B) {
			pt := *p
			pt.Tuning = tn.t
			b.ReportAllocs()
			b.SetBytes(int64(col.Bytes()))
			for i := 0; i < b.N; i++ {
				RunJoinParallel(&pt, FromTable(col), []JoinSpec{spec}, 0.95, 1)
			}
		})
	}
}
