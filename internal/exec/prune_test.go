package exec

import (
	"testing"

	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

func predOf(t *testing.T, where string) types.Predicate {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindString},
		types.Column{Name: "c", Kind: types.KindFloat},
	)
	q, err := sqlparser.Parse("SELECT COUNT(*) FROM t WHERE " + where)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Where.Resolve(schema)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestColumnBoundsEquality(t *testing.T) {
	b := ColumnBounds(predOf(t, "a = 5"))
	if len(b) != 1 {
		t.Fatalf("bounds = %v", b)
	}
	ab := b[0]
	if ab.Lo == nil || ab.Hi == nil || ab.Lo.I != 5 || ab.Hi.I != 5 {
		t.Errorf("equality bounds = %+v", ab)
	}
	if ab.LoOpen || ab.HiOpen {
		t.Error("equality bounds must be closed")
	}
}

func TestColumnBoundsRangeConjunction(t *testing.T) {
	b := ColumnBounds(predOf(t, "a > 3 AND a <= 10 AND a >= 4"))
	ab := b[0]
	if ab.Lo.I != 4 || ab.LoOpen {
		t.Errorf("lo = %v open=%v, want closed 4", ab.Lo, ab.LoOpen)
	}
	if ab.Hi.I != 10 || ab.HiOpen {
		t.Errorf("hi = %v open=%v, want closed 10", ab.Hi, ab.HiOpen)
	}
	// Tightening with equal value but open.
	b2 := ColumnBounds(predOf(t, "a >= 4 AND a > 4"))
	if !b2[0].LoOpen {
		t.Error("a > 4 after a >= 4 should leave an open bound")
	}
}

func TestColumnBoundsORContributesNothing(t *testing.T) {
	b := ColumnBounds(predOf(t, "a = 1 OR a = 2"))
	if len(b) != 0 {
		t.Errorf("OR should give no bounds, got %v", b)
	}
	// Mixed: conjunct next to an OR keeps its own bounds.
	b = ColumnBounds(predOf(t, "b = 'x' AND (a = 1 OR a = 2)"))
	if len(b) != 1 {
		t.Fatalf("bounds = %v", b)
	}
}

func TestColumnBoundsNeIgnored(t *testing.T) {
	if b := ColumnBounds(predOf(t, "a <> 5")); len(b) != 1 || b[0].Lo != nil || b[0].Hi != nil {
		t.Errorf("<> should yield unbounded interval, got %+v", b)
	}
}

func mkBlock(aMin, aMax int64) *storage.Block {
	b := &storage.Block{Bytes: 100}
	var za, zb storage.Zone
	za.Extend(types.Int(aMin))
	za.Extend(types.Int(aMax))
	zb.Extend(types.Str("m"))
	b.Zones = []storage.Zone{za, zb}
	return b
}

func TestPruneBlocks(t *testing.T) {
	blocks := []*storage.Block{
		mkBlock(0, 9), mkBlock(10, 19), mkBlock(20, 29),
	}
	bounds := ColumnBounds(predOf(t, "a = 15"))
	kept, frac := PruneBlocks(blocks, bounds)
	if len(kept) != 1 || kept[0] != blocks[1] {
		t.Fatalf("kept = %d blocks", len(kept))
	}
	if frac < 0.6 || frac > 0.7 {
		t.Errorf("pruned fraction = %g, want 2/3", frac)
	}
	// Range crossing two blocks.
	bounds = ColumnBounds(predOf(t, "a >= 8 AND a < 12"))
	kept, _ = PruneBlocks(blocks, bounds)
	if len(kept) != 2 {
		t.Errorf("range kept %d blocks, want 2", len(kept))
	}
	// Open bound excluding a block boundary: a > 9 excludes block 0... its
	// zone max is 9, and the bound is open at 9 → pruned.
	bounds = ColumnBounds(predOf(t, "a > 9"))
	kept, _ = PruneBlocks(blocks, bounds)
	if len(kept) != 2 {
		t.Errorf("open bound kept %d blocks, want 2", len(kept))
	}
}

func TestPruneBlocksKeepsUnzoned(t *testing.T) {
	noZones := &storage.Block{Bytes: 50} // e.g. legacy block
	blocks := []*storage.Block{noZones, mkBlock(0, 9)}
	bounds := ColumnBounds(predOf(t, "a = 100"))
	kept, _ := PruneBlocks(blocks, bounds)
	if len(kept) != 1 || kept[0] != noZones {
		t.Error("blocks without zone maps must be kept (correctness over savings)")
	}
}

func TestPruneBlocksNoBoundsNoPruning(t *testing.T) {
	blocks := []*storage.Block{mkBlock(0, 9), mkBlock(10, 19)}
	kept, frac := PruneBlocks(blocks, nil)
	if len(kept) != 2 || frac != 0 {
		t.Error("no bounds should keep everything")
	}
	// Empty block list.
	kept, frac = PruneBlocks(nil, ColumnBounds(predOf(t, "a = 1")))
	if len(kept) != 0 || frac != 0 {
		t.Error("empty input should be a no-op")
	}
}

// TestPruningNeverChangesResults property-checks safety: running a plan
// over pruned blocks gives identical results to running over all blocks.
func TestPruningNeverChangesResults(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindString},
		types.Column{Name: "c", Kind: types.KindFloat},
	)
	tab := storage.NewTable("t", schema)
	bld := storage.NewBuilder(tab, 16, 2, storage.InMemory)
	for i := 0; i < 1000; i++ {
		bld.AppendRow(types.Row{
			types.Int(int64(i % 50)),
			types.Str(string(rune('a' + i%7))),
			types.Float(float64(i)),
		})
	}
	bld.Finish()
	for _, where := range []string{
		"a = 25", "a > 40", "a >= 10 AND a < 20", "b = 'c'",
		"a = 5 AND b = 'b'", "a = 5 OR a = 45", "NOT a = 3",
	} {
		q, err := sqlparser.Parse("SELECT COUNT(*), SUM(c) FROM t WHERE " + where)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Compile(q, schema)
		if err != nil {
			t.Fatal(err)
		}
		full := Run(plan, FromTable(tab), 0.95)
		kept, _ := PruneBlocks(tab.Blocks, ColumnBounds(plan.Pred))
		pruned := Run(plan, Input{Schema: schema, Blocks: kept,
			Rate: func(m storage.RowMeta) float64 { return m.Rate }}, 0.95)
		if full.Groups[0].Estimates[0].Point != pruned.Groups[0].Estimates[0].Point ||
			full.Groups[0].Estimates[1].Point != pruned.Groups[0].Estimates[1].Point {
			t.Errorf("WHERE %s: pruning changed the answer", where)
		}
	}
}
