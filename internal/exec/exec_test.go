package exec

import (
	"math"
	"math/rand"
	"testing"

	"blinkdb/internal/sample"
	"blinkdb/internal/sqlparser"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

func sessionsSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "url", Kind: types.KindString},
		types.Column{Name: "city", Kind: types.KindString},
		types.Column{Name: "browser", Kind: types.KindString},
		types.Column{Name: "sessiontime", Kind: types.KindFloat},
	)
}

// paperTable builds Table 3 from §4.3 verbatim.
func paperTable(t testing.TB) *storage.Table {
	t.Helper()
	tab := storage.NewTable("sessions", sessionsSchema())
	b := storage.NewBuilder(tab, 16, 1, storage.InMemory)
	rows := []struct {
		url, city, browser string
		time               float64
	}{
		{"cnn.com", "New York", "Firefox", 15},
		{"yahoo.com", "New York", "Firefox", 20},
		{"google.com", "Berkeley", "Firefox", 85},
		{"google.com", "New York", "Safari", 82},
		{"bing.com", "Cambridge", "IE", 22},
	}
	for _, r := range rows {
		b.AppendRow(types.Row{
			types.Str(r.url), types.Str(r.city), types.Str(r.browser), types.Float(r.time),
		})
	}
	return b.Finish()
}

func compile(t testing.TB, src string, schema *types.Schema) *Plan {
	t.Helper()
	q, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q, schema)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExactSumGroupByOnBaseTable(t *testing.T) {
	tab := paperTable(t)
	p := compile(t, `SELECT SUM(sessiontime) FROM sessions GROUP BY city`, tab.Schema)
	res := Run(p, FromTable(tab), 0.95)
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	want := map[string]float64{"Berkeley": 85, "Cambridge": 22, "New York": 117}
	for _, g := range res.Groups {
		e := g.Estimates[0]
		if math.Abs(e.Point-want[g.KeyString()]) > 1e-9 {
			t.Errorf("%s = %g, want %g", g.KeyString(), e.Point, want[g.KeyString()])
		}
		if !e.Exact || e.Bound != 0 {
			t.Errorf("%s should be exact", g.KeyString())
		}
	}
	if res.RowsScanned != 5 || res.RowsMatched != 5 {
		t.Errorf("scanned/matched = %d/%d", res.RowsScanned, res.RowsMatched)
	}
}

// TestPaperStratifiedExample reproduces §4.3's Table 4 exactly: the sample
// stratified on Browser with K=1 keeps the yahoo/Firefox row at rate 1/3
// and the Safari and IE rows at rate 1. SUM(SessionTime) GROUP BY City
// must estimate 3·20+82 = 142 for New York and 22 for Cambridge, with no
// Berkeley row (subset error on stratified-on-wrong-column samples).
func TestPaperStratifiedExample(t *testing.T) {
	schema := sessionsSchema()
	samp := storage.NewTable("sessions_browser_k1", schema)
	b := storage.NewBuilder(samp, 16, 1, storage.InMemory)
	add := func(url, city, browser string, time float64, rate float64) {
		// Encode the rate via StratumFreq = round(1/rate) with cap 1.
		b.Append(types.Row{types.Str(url), types.Str(city), types.Str(browser), types.Float(time)},
			storage.RowMeta{Rate: 1, StratumFreq: int64(math.Round(1 / rate))})
	}
	add("yahoo.com", "New York", "Firefox", 20, 1.0/3.0)
	add("google.com", "New York", "Safari", 82, 1.0)
	add("bing.com", "Cambridge", "IE", 22, 1.0)
	b.Finish()

	p := compile(t, `SELECT SUM(sessiontime) FROM sessions GROUP BY city`, schema)
	res := Run(p, FromBlocks(schema, samp.Blocks, 1), 0.95)
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d (Berkeley must be missing)", len(res.Groups))
	}
	got := map[string]float64{}
	for _, g := range res.Groups {
		got[g.KeyString()] = g.Estimates[0].Point
	}
	if math.Abs(got["New York"]-142) > 1e-9 {
		t.Errorf("New York = %g, want 142 (= 3·20 + 82)", got["New York"])
	}
	if math.Abs(got["Cambridge"]-22) > 1e-9 {
		t.Errorf("Cambridge = %g, want 22", got["Cambridge"])
	}
}

func TestWhereFilterAndSelectivity(t *testing.T) {
	tab := paperTable(t)
	p := compile(t, `SELECT COUNT(*) FROM sessions WHERE city = 'New York'`, tab.Schema)
	res := Run(p, FromTable(tab), 0.95)
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	if got := res.Groups[0].Estimates[0].Point; got != 3 {
		t.Errorf("count = %g", got)
	}
	if s := res.Selectivity(); math.Abs(s-0.6) > 1e-9 {
		t.Errorf("selectivity = %g", s)
	}
}

func TestMultipleAggregates(t *testing.T) {
	tab := paperTable(t)
	p := compile(t, `SELECT COUNT(*), SUM(sessiontime), AVG(sessiontime), MEDIAN(sessiontime) FROM sessions`, tab.Schema)
	res := Run(p, FromTable(tab), 0.95)
	e := res.Groups[0].Estimates
	if e[0].Point != 5 {
		t.Errorf("count = %g", e[0].Point)
	}
	if e[1].Point != 224 {
		t.Errorf("sum = %g", e[1].Point)
	}
	if math.Abs(e[2].Point-44.8) > 1e-9 {
		t.Errorf("avg = %g", e[2].Point)
	}
	if e[3].Point != 22 { // median of {15,20,22,82,85}
		t.Errorf("median = %g", e[3].Point)
	}
}

func TestCountColumnIgnoresNulls(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "x", Kind: types.KindFloat},
	)
	tab := storage.NewTable("t", schema)
	b := storage.NewBuilder(tab, 8, 1, storage.InMemory)
	b.AppendRow(types.Row{types.Float(1)})
	b.AppendRow(types.Row{types.Null()})
	b.AppendRow(types.Row{types.Float(3)})
	b.Finish()
	p := compile(t, `SELECT COUNT(x), COUNT(*), SUM(x), AVG(x) FROM t`, schema)
	res := Run(p, FromTable(tab), 0.95)
	e := res.Groups[0].Estimates
	if e[0].Point != 2 {
		t.Errorf("COUNT(x) = %g, want 2", e[0].Point)
	}
	if e[1].Point != 3 {
		t.Errorf("COUNT(*) = %g, want 3", e[1].Point)
	}
	if e[2].Point != 4 {
		t.Errorf("SUM(x) = %g", e[2].Point)
	}
	if e[3].Point != 2 {
		t.Errorf("AVG(x) = %g (NULLs must be excluded)", e[3].Point)
	}
}

func TestEmptyResultGlobalAggregate(t *testing.T) {
	tab := paperTable(t)
	p := compile(t, `SELECT COUNT(*) FROM sessions WHERE city = 'Nowhere'`, tab.Schema)
	res := Run(p, FromTable(tab), 0.95)
	if len(res.Groups) != 1 || res.Groups[0].Estimates[0].Point != 0 {
		t.Errorf("empty global aggregate should yield a zero row: %+v", res.Groups)
	}
	// Grouped query with no matches yields no groups.
	p2 := compile(t, `SELECT COUNT(*) FROM sessions WHERE city = 'Nowhere' GROUP BY city`, tab.Schema)
	res2 := Run(p2, FromTable(tab), 0.95)
	if len(res2.Groups) != 0 {
		t.Errorf("grouped empty result should have no groups")
	}
}

func TestLimit(t *testing.T) {
	tab := paperTable(t)
	p := compile(t, `SELECT COUNT(*) FROM sessions GROUP BY city LIMIT 2`, tab.Schema)
	res := Run(p, FromTable(tab), 0.95)
	if len(res.Groups) != 2 {
		t.Errorf("limit ignored: %d groups", len(res.Groups))
	}
}

func TestGroupOrderingDeterministic(t *testing.T) {
	tab := paperTable(t)
	p := compile(t, `SELECT COUNT(*) FROM sessions GROUP BY city`, tab.Schema)
	res := Run(p, FromTable(tab), 0.95)
	want := []string{"Berkeley", "Cambridge", "New York"}
	for i, g := range res.Groups {
		if g.KeyString() != want[i] {
			t.Errorf("group %d = %s, want %s", i, g.KeyString(), want[i])
		}
	}
}

func TestMultiColumnGroupBy(t *testing.T) {
	tab := paperTable(t)
	p := compile(t, `SELECT COUNT(*) FROM sessions GROUP BY city, browser`, tab.Schema)
	res := Run(p, FromTable(tab), 0.95)
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Groups))
	}
	found := false
	for _, g := range res.Groups {
		if g.KeyString() == "New York/Firefox" && g.Estimates[0].Point == 2 {
			found = true
		}
	}
	if !found {
		t.Error("New York/Firefox = 2 not found")
	}
}

func TestCompileErrors(t *testing.T) {
	schema := sessionsSchema()
	bad := []string{
		`SELECT COUNT(*) FROM s WHERE bogus = 1`,
		`SELECT SUM(bogus) FROM s`,
		`SELECT COUNT(*) FROM s GROUP BY bogus`,
	}
	for _, src := range bad {
		q, err := sqlparser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Compile(q, schema); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestRunOnStratifiedViewAccuracy(t *testing.T) {
	// Large skewed table; AVG via a stratified sample must approximate
	// the truth within its own error bound most of the time.
	schema := sessionsSchema()
	tab := storage.NewTable("big", schema)
	bld := storage.NewBuilder(tab, 512, 4, storage.OnDisk)
	rng := rand.New(rand.NewSource(21))
	cities := []string{"NY", "SF", "LA", "Austin", "Boise"}
	counts := []int{50000, 10000, 2000, 400, 80}
	truth := map[string]float64{}
	for ci, city := range cities {
		sum := 0.0
		for i := 0; i < counts[ci]; i++ {
			v := rng.ExpFloat64() * 50
			sum += v
			bld.AppendRow(types.Row{
				types.Str("u"), types.Str(city), types.Str("FF"), types.Float(v),
			})
		}
		truth[city] = sum / float64(counts[ci])
	}
	bld.Finish()

	fam, err := sample.Build(tab, types.NewColumnSet("city"), []int64{500}, sample.BuildConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, `SELECT AVG(sessiontime) FROM big GROUP BY city`, schema)
	res := Run(p, FromView(fam.View(0)), 0.95)
	if len(res.Groups) != 5 {
		t.Fatalf("missing groups: %d", len(res.Groups))
	}
	for _, g := range res.Groups {
		e := g.Estimates[0]
		tr := truth[g.KeyString()]
		// 3σ margin: generous but catches systematic bias.
		margin := 3 * e.StdErr
		if e.Exact {
			margin = 1e-9
		}
		if math.Abs(e.Point-tr) > math.Max(margin, 1e-9) {
			t.Errorf("%s: est %.3f vs truth %.3f (stderr %.3f)", g.KeyString(), e.Point, tr, e.StdErr)
		}
	}
	// Small cities fit under cap 500 → exact.
	for _, g := range res.Groups {
		if g.KeyString() == "Boise" || g.KeyString() == "Austin" {
			if !g.Estimates[0].Exact {
				t.Errorf("%s should be exact under cap", g.KeyString())
			}
		}
	}
}

func TestResultHelpers(t *testing.T) {
	tab := paperTable(t)
	p := compile(t, `SELECT COUNT(*) FROM sessions GROUP BY city`, tab.Schema)
	res := Run(p, FromTable(tab), 0.95)
	if res.MaxRelErr() != 0 {
		t.Error("exact result has zero max rel err")
	}
	if res.MaxAbsErr() != 0 {
		t.Error("exact result has zero max abs err")
	}
	if res.MinGroupRows() != 1 {
		t.Errorf("min group rows = %d", res.MinGroupRows())
	}
	empty := &Result{}
	if empty.Selectivity() != 0 || empty.MinGroupRows() != 0 {
		t.Error("empty result helpers wrong")
	}
}

func TestMergeResultsDisjuncts(t *testing.T) {
	tab := paperTable(t)
	schema := tab.Schema
	q, err := sqlparser.Parse(`SELECT COUNT(*) FROM sessions WHERE city = 'New York' OR city = 'Berkeley' GROUP BY browser`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q, schema)
	if err != nil {
		t.Fatal(err)
	}
	disjuncts := types.SplitDisjuncts(p.Pred)
	if len(disjuncts) != 2 {
		t.Fatalf("disjuncts = %d", len(disjuncts))
	}
	var parts []*Result
	for _, d := range disjuncts {
		parts = append(parts, Run(p.WithPred(d), FromTable(tab), 0.95))
	}
	merged := MergeResults(p, parts)
	// Truth: Firefox appears 3 times in NY+Berkeley, Safari once.
	got := map[string]float64{}
	for _, g := range merged.Groups {
		got[g.KeyString()] = g.Estimates[0].Point
	}
	if got["Firefox"] != 3 || got["Safari"] != 1 {
		t.Errorf("merged = %v", got)
	}
	// Single-part merge returns the part itself.
	if MergeResults(p, parts[:1]) != parts[0] {
		t.Error("single-part merge should be identity")
	}
}

func TestMergeResultsAvg(t *testing.T) {
	tab := paperTable(t)
	q, _ := sqlparser.Parse(`SELECT AVG(sessiontime) FROM sessions WHERE city = 'New York' OR city = 'Cambridge'`)
	p, _ := Compile(q, tab.Schema)
	var parts []*Result
	for _, d := range types.SplitDisjuncts(p.Pred) {
		parts = append(parts, Run(p.WithPred(d), FromTable(tab), 0.95))
	}
	merged := MergeResults(p, parts)
	// Weighted avg of NY (39, n=3) and Cambridge (22, n=1) = (117+22)/4.
	want := (117.0 + 22.0) / 4.0
	if got := merged.Groups[0].Estimates[0].Point; math.Abs(got-want) > 1e-9 {
		t.Errorf("merged avg = %g, want %g", got, want)
	}
}

func BenchmarkRunFiltered(b *testing.B) {
	schema := sessionsSchema()
	tab := storage.NewTable("bench", schema)
	bld := storage.NewBuilder(tab, 4096, 4, storage.InMemory)
	rng := rand.New(rand.NewSource(7))
	cities := []string{"NY", "SF", "LA"}
	for i := 0; i < 100000; i++ {
		bld.AppendRow(types.Row{
			types.Str("u"), types.Str(cities[rng.Intn(3)]), types.Str("FF"),
			types.Float(rng.Float64() * 100),
		})
	}
	bld.Finish()
	p := compile(b, `SELECT AVG(sessiontime) FROM bench WHERE city = 'NY' GROUP BY city`, schema)
	in := FromTable(tab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(p, in, 0.95)
	}
}
