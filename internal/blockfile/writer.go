// Package blockfile implements BlinkDB-Go's on-disk columnar segment
// format — the persistence layer under cross-restart warmup.
//
// A segment file holds one or more storage.Tables (typically the deltas
// of one stratified sample family) plus named metadata blobs, laid out
// for mmap loading:
//
//	header   16 B   magic "BKF1", format version, flags
//	sections ...    8-byte-aligned raw payloads (one per column payload,
//	                null bitmap, dictionary, rate/freq array, …)
//	footer   ...    index: section table (offset, length, CRC32C per
//	                section) + logical structure (tables → blocks →
//	                columns with their encodings and section refs)
//	tail     24 B   footer offset/length, footer CRC32C, magic
//
// All fixed-width fields are little-endian. Numeric column payloads
// (float64/int64 values, uint64 null-bitmap words, uint32 dictionary
// codes, int32 run ends) are stored as raw machine-width arrays, so on a
// little-endian host a loaded column's slices are views over the mapping
// — zero per-value decode, zero per-value allocation. Strings
// (dictionaries, mixed-kind value streams) are length-prefixed and
// decoded on load.
//
// Every section and the footer carry a CRC32C; loaders verify the CRC of
// each section they materialize, so a flipped byte surfaces as an error
// (never a wrong answer, never a panic). Readers treat every count and
// offset as untrusted: a truncated or forged file fails with
// errTruncated-wrapped errors.
package blockfile

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"unsafe"

	"blinkdb/internal/colstore"
	"blinkdb/internal/storage"
)

const (
	// magicV1 spells "BKF1" when the u32 is laid out little-endian.
	magicV1 = uint32('B') | uint32('K')<<8 | uint32('F')<<16 | uint32('1')<<24
	// FormatVersion is the current segment format version. Readers
	// reject any other version (a newer engine may understand older
	// versions later; for now the contract is exact-match).
	FormatVersion = 1

	headerSize = 16
	tailSize   = 24
)

// noSection marks an absent optional section reference (e.g. a column
// with no null bitmap).
const noSection = ^uint32(0)

// crcTable is CRC32-Castagnoli, hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

type sectionInfo struct {
	off uint64
	len uint64
	crc uint32
}

// Writer serializes tables and metadata blobs into the segment format.
// Sections stream to the underlying writer as tables are added; Finish
// writes the footer and tail. Errors are sticky: the first failure
// poisons the writer and Finish reports it.
type Writer struct {
	w        io.Writer
	off      uint64
	sections []sectionInfo
	metas    []byte // enc-encoded (name, section) pairs
	nmetas   uint32
	tables   []byte // enc-encoded table descriptors
	ntables  uint32
	err      error
	started  bool
	finished bool
}

// NewWriter starts a segment on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

func (w *Writer) writeAll(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return
	}
	w.off += uint64(len(b))
}

func (w *Writer) start() {
	if w.started || w.err != nil {
		return
	}
	w.started = true
	var e enc
	e.u32(magicV1)
	e.u32(FormatVersion)
	e.u32(0) // flags
	e.u32(0) // reserved
	w.writeAll(e.buf)
}

var zeroPad [8]byte

// section writes one 8-aligned section and returns its index.
func (w *Writer) section(data []byte) uint32 {
	w.start()
	if pad := int(w.off % 8); pad != 0 {
		w.writeAll(zeroPad[:8-pad])
	}
	idx := uint32(len(w.sections))
	w.sections = append(w.sections, sectionInfo{
		off: w.off,
		len: uint64(len(data)),
		crc: crc32.Checksum(data, crcTable),
	})
	w.writeAll(data)
	return idx
}

// PutMeta stores a named metadata blob (retrievable via Segment.Meta).
func (w *Writer) PutMeta(name string, blob []byte) {
	sec := w.section(blob)
	var e enc
	e.str(name)
	e.u32(sec)
	w.metas = append(w.metas, e.buf...)
	w.nmetas++
}

// AddTable serializes t (any mix of row and columnar blocks) into the
// segment. Blocks are written in order, so IDs round-trip through
// Table.AddBlock on load.
func (w *Writer) AddTable(t *storage.Table) error {
	var e enc
	e.str(t.Name)
	e.u32(uint32(t.Schema.Len()))
	for _, c := range t.Schema.Columns {
		e.str(c.Name)
		e.u8(uint8(c.Kind))
	}
	e.u32(uint32(len(t.Blocks)))
	for _, b := range t.Blocks {
		if err := w.addBlock(&e, t, b); err != nil {
			if w.err == nil {
				w.err = err
			}
			return err
		}
	}
	w.tables = append(w.tables, e.buf...)
	w.ntables++
	return w.err
}

func (w *Writer) addBlock(e *enc, t *storage.Table, b *storage.Block) error {
	e.u32(uint32(b.Node))
	e.u8(uint8(b.Place))
	e.i64(b.Bytes)
	e.u32(uint32(b.NumRows()))
	e.u32(uint32(len(b.Zones)))
	for _, z := range b.Zones {
		if z.Valid {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.val(z.Min)
		e.val(z.Max)
	}
	if d := b.Col; d != nil {
		e.u8(1) // columnar
		e.f64(d.UniformRate)
		e.i64(d.UniformFreq)
		e.u32(w.optSection(f64Bytes(d.Rates), d.Rates != nil))
		e.u32(w.optSection(i64Bytes(d.Freqs), d.Freqs != nil))
		if len(d.Cols) != t.Schema.Len() {
			return fmt.Errorf("blockfile: block %d of %q has %d columns, schema %d",
				b.ID, t.Name, len(d.Cols), t.Schema.Len())
		}
		for i := range d.Cols {
			w.addColumn(e, &d.Cols[i])
		}
		return nil
	}
	e.u8(0) // row layout
	var rows enc
	rows.u32(uint32(len(b.Rows) * t.Schema.Len()))
	rates := make([]float64, len(b.Rows))
	freqs := make([]int64, len(b.Rows))
	for i, r := range b.Rows {
		if len(r) != t.Schema.Len() {
			return fmt.Errorf("blockfile: row %d of block %d in %q has %d values, schema %d",
				i, b.ID, t.Name, len(r), t.Schema.Len())
		}
		for _, v := range r {
			rows.val(v)
		}
		rates[i] = b.Meta[i].Rate
		freqs[i] = b.Meta[i].StratumFreq
	}
	e.u32(w.section(rows.buf))
	e.u32(w.section(f64Bytes(rates)))
	e.u32(w.section(i64Bytes(freqs)))
	return nil
}

func (w *Writer) addColumn(e *enc, c *colstore.Column) {
	e.u8(uint8(c.Enc))
	if c.NaNFree {
		e.u8(1)
	} else {
		e.u8(0)
	}
	switch c.Enc {
	case colstore.EncFloat:
		e.u32(w.section(f64Bytes(c.Floats)))
		e.u32(w.optSection(u64Bytes(c.Nulls), c.Nulls != nil))
	case colstore.EncInt, colstore.EncBool:
		e.u32(w.section(i64Bytes(c.Ints)))
		e.u32(w.optSection(u64Bytes(c.Nulls), c.Nulls != nil))
	case colstore.EncDict:
		e.u32(w.section(u32Bytes(c.Codes)))
		e.u32(w.optSection(u64Bytes(c.Nulls), c.Nulls != nil))
		var dict enc
		dict.u32(uint32(len(c.Dict)))
		for _, s := range c.Dict {
			dict.str(s)
		}
		e.u32(w.section(dict.buf))
	case colstore.EncValue:
		var vals enc
		vals.encVals(c.Values)
		e.u32(w.section(vals.buf))
	case colstore.EncRLE:
		var runs enc
		runs.encVals(c.RunVals)
		e.u32(w.section(runs.buf))
		e.u32(w.section(i32Bytes(c.RunEnds)))
	default:
		if w.err == nil {
			w.err = fmt.Errorf("blockfile: unknown encoding %d", c.Enc)
		}
	}
}

func (w *Writer) optSection(data []byte, present bool) uint32 {
	if !present {
		return noSection
	}
	return w.section(data)
}

// Finish writes the footer and tail. The writer is unusable afterwards.
func (w *Writer) Finish() error {
	if w.finished {
		return w.err
	}
	w.finished = true
	w.start()
	var f enc
	f.u32(uint32(len(w.sections)))
	for _, s := range w.sections {
		f.u64(s.off)
		f.u64(s.len)
		f.u32(s.crc)
	}
	f.u32(w.nmetas)
	f.buf = append(f.buf, w.metas...)
	f.u32(w.ntables)
	f.buf = append(f.buf, w.tables...)

	footerOff := w.off
	w.writeAll(f.buf)
	var tail enc
	tail.u64(footerOff)
	tail.u64(uint64(len(f.buf)))
	tail.u32(crc32.Checksum(f.buf, crcTable))
	tail.u32(magicV1)
	w.writeAll(tail.buf)
	return w.err
}

// WriteSegment builds a segment at path atomically: the build callback
// populates a Writer backed by a temp file in the same directory, which
// is fsynced and renamed over path only on success. A crashed or failed
// write can therefore never leave a half-written segment under the
// final name.
func WriteSegment(path string, build func(w *Writer) error) (err error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := NewWriter(tmp)
	if err = build(w); err != nil {
		return err
	}
	if err = w.Finish(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Raw little-endian byte views of numeric slices. On a little-endian
// host these alias the slice memory (no copy); on big-endian they
// re-encode element-wise so files stay portable.

func f64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	var e enc
	for _, x := range v {
		e.f64(x)
	}
	return e.buf
}

func i64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	var e enc
	for _, x := range v {
		e.i64(x)
	}
	return e.buf
}

func u64Bytes(v []uint64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	var e enc
	for _, x := range v {
		e.u64(x)
	}
	return e.buf
}

func u32Bytes(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
	}
	var e enc
	for _, x := range v {
		e.u32(x)
	}
	return e.buf
}

func i32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
	}
	var e enc
	for _, x := range v {
		e.u32(uint32(x))
	}
	return e.buf
}
