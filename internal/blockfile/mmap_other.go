//go:build !linux && !darwin

package blockfile

import "errors"

// mmapFile is unavailable on this platform; Open always uses the
// aligned ReadFile fallback.
func mmapFile(string) ([]byte, func() error, error) {
	return nil, nil, errors.New("blockfile: mmap unavailable on this platform")
}
