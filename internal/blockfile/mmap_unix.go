//go:build linux || darwin

package blockfile

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the file at path read-only. The returned closer unmaps;
// the mapping is private, so even a bug that wrote through a view could
// never reach the file. An empty or unmappable file returns an error and
// the caller falls back to the aligned in-memory read.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("blockfile: cannot map %d-byte file", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
