package blockfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"blinkdb/internal/types"
)

// hostLittleEndian reports whether the running machine stores multi-byte
// integers least-significant byte first. Segment payload sections are
// always little-endian on disk; on the (rare) big-endian host the
// zero-copy slice views are disabled and payloads decode element-wise.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// enc is an append-only little-endian encoder for footer and small
// metadata payloads. Bulk numeric sections bypass it (see writer.go).
type enc struct {
	buf []byte
}

func (e *enc) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// val encodes one types.Value: kind byte then the kind's payload. Exact
// bit patterns round-trip (floats by bits, so NaN payloads and -0 are
// preserved — the losslessness contract the in-memory colstore keeps).
func (e *enc) val(v types.Value) {
	e.u8(uint8(v.Kind))
	switch v.Kind {
	case types.KindInt, types.KindBool:
		e.i64(v.I)
	case types.KindFloat:
		e.f64(v.F)
	case types.KindString:
		e.str(v.S)
	}
}

// errTruncated is the uniform decode-overrun error; callers wrap it with
// context. Every dec accessor is bounds-checked so corrupt or truncated
// footers surface as errors, never as slice panics.
var errTruncated = fmt.Errorf("blockfile: truncated or corrupt data")

// dec is the bounds-checked little-endian decoder matching enc. After
// any accessor returns the zero value, check err.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errTruncated
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) u8() uint8 {
	if d.err != nil || d.remaining() < 1 {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.remaining() < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.remaining() < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.remaining() < n {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) val() types.Value {
	k := types.Kind(d.u8())
	switch k {
	case types.KindNull:
		return types.Value{}
	case types.KindInt, types.KindBool:
		return types.Value{Kind: k, I: d.i64()}
	case types.KindFloat:
		return types.Value{Kind: k, F: d.f64()}
	case types.KindString:
		return types.Value{Kind: k, S: d.str()}
	default:
		d.fail()
		return types.Value{}
	}
}

// count reads an element count and validates it against the bytes that
// could possibly back it (minBytes per element), so a forged count can
// never drive an allocation unrelated to the file's actual size.
func (d *dec) count(minBytes int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || (minBytes > 0 && n > d.remaining()/minBytes) {
		d.fail()
		return 0
	}
	return n
}

// vals decodes a value stream: count then that many values.
func (d *dec) vals() []types.Value {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]types.Value, n)
	for i := range out {
		out[i] = d.val()
		if d.err != nil {
			return nil
		}
	}
	return out
}

// encVals encodes a value stream (count-prefixed).
func (e *enc) encVals(vs []types.Value) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.val(v)
	}
}

// Enc is the exported encoder for callers building metadata blobs in
// the segment codec (fixed-width little-endian, bit-exact values) —
// sample-family descriptors, warmup sets. It shares the wire format
// with the footer codec, including the NaN-and-±0-exact value
// encoding that encoding/json cannot provide.
type Enc struct{ e enc }

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.e.buf }

// U8 appends an unsigned byte.
func (e *Enc) U8(v uint8) { e.e.u8(v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.e.u32(v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.e.u64(v) }

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.e.i64(v) }

// F64 appends a float64 by bit pattern.
func (e *Enc) F64(v float64) { e.e.f64(v) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) { e.e.str(s) }

// Val appends one types.Value (kind byte + exact payload).
func (e *Enc) Val(v types.Value) { e.e.val(v) }

// Raw appends b verbatim (no length prefix — pair with your own Count).
func (e *Enc) Raw(b []byte) { e.e.buf = append(e.e.buf, b...) }

// Dec is the exported bounds-checked decoder matching Enc. Accessors
// return zero values once an error is latched; check Err at the end
// (or whenever a zero value would be ambiguous).
type Dec struct{ d dec }

// NewDec decodes b.
func NewDec(b []byte) *Dec { return &Dec{d: dec{b: b}} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.d.err }

// Remaining returns how many bytes are left.
func (d *Dec) Remaining() int { return d.d.remaining() }

// U8 reads an unsigned byte.
func (d *Dec) U8() uint8 { return d.d.u8() }

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 { return d.d.u32() }

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 { return d.d.u64() }

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return d.d.i64() }

// F64 reads a float64 by bit pattern.
func (d *Dec) F64() float64 { return d.d.f64() }

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return d.d.str() }

// Val reads one types.Value.
func (d *Dec) Val() types.Value { return d.d.val() }

// Count reads an element count, validated against the bytes remaining
// (at least minBytes each), so corrupt counts cannot drive huge
// allocations.
func (d *Dec) Count(minBytes int) int { return d.d.count(minBytes) }

// Raw reads the next n bytes verbatim (a view into the input, not a
// copy). Returns nil with the error latched when fewer remain.
func (d *Dec) Raw(n int) []byte {
	if d.d.err != nil || n < 0 || d.d.remaining() < n {
		d.d.fail()
		return nil
	}
	b := d.d.b[d.d.off : d.d.off+n]
	d.d.off += n
	return b
}
