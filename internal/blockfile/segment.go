package blockfile

import (
	"fmt"
	"hash/crc32"
	"os"
	"unsafe"

	"blinkdb/internal/colstore"
	"blinkdb/internal/storage"
	"blinkdb/internal/types"
)

// Segment is a loaded segment file. The backing bytes are either an
// mmap'd read-only view of the file or an 8-aligned in-memory copy
// (the portable ReadFile fallback); Mapped reports which. Tables
// materialized from a mapped segment alias the mapping — they stay
// valid only until Close, and their payload slices must never be
// written to.
type Segment struct {
	data   []byte
	mapped bool
	unmap  func() error

	sections []sectionInfo
	metas    map[string][]byte
	tables   []tableDesc
}

type tableDesc struct {
	name   string
	schema *types.Schema
	blocks []blockDesc
}

type blockDesc struct {
	node  int
	place storage.Placement
	bytes int64
	nrows int
	zones []storage.Zone

	columnar    bool
	uniformRate float64
	uniformFreq int64
	ratesSec    uint32
	freqsSec    uint32
	cols        []colDesc

	rowsSec uint32 // row layout: value stream + rate/freq arrays
}

type colDesc struct {
	enc     colstore.Encoding
	nanFree bool
	// Section refs by role: payload, nulls, dict (meaning depends on enc).
	payload, nulls, dict uint32
}

// Open loads the segment at path, preferring mmap and falling back to an
// aligned in-memory read where mapping is unavailable. The footer CRC
// and structure are verified here; per-section CRCs are verified when a
// section is first materialized (Table, Meta).
func Open(path string) (*Segment, error) {
	return open(path, false)
}

// OpenReadFile loads the segment without mmap (always the in-memory
// fallback). Benchmarks use it to compare load paths; behavior is
// otherwise identical to Open.
func OpenReadFile(path string) (*Segment, error) {
	return open(path, true)
}

func open(path string, forceRead bool) (*Segment, error) {
	s := &Segment{}
	if !forceRead {
		if data, unmap, err := mmapFile(path); err == nil {
			s.data, s.mapped, s.unmap = data, true, unmap
		}
	}
	if s.data == nil {
		data, err := readFileAligned(path)
		if err != nil {
			return nil, err
		}
		s.data = data
	}
	if err := s.parse(); err != nil {
		s.Close()
		return nil, fmt.Errorf("blockfile: %s: %w", path, err)
	}
	return s, nil
}

// Close releases the mapping. Tables materialized from a mapped segment
// must not be used afterwards.
func (s *Segment) Close() error {
	if s.unmap != nil {
		u := s.unmap
		s.unmap = nil
		s.data = nil
		return u()
	}
	s.data = nil
	return nil
}

// Mapped reports whether the segment is backed by an mmap view.
func (s *Segment) Mapped() bool { return s.mapped }

// SizeBytes is the on-disk segment size.
func (s *Segment) SizeBytes() int64 { return int64(len(s.data)) }

// readFileAligned reads the whole file into a buffer whose base address
// is 8-aligned, so the same zero-copy slice views work on the fallback
// path as on the mmap path.
func readFileAligned(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, nil
	}
	words := make([]uint64, (len(raw)+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(raw))
	copy(buf, raw)
	return buf, nil
}

func (s *Segment) parse() error {
	data := s.data
	if len(data) < headerSize+tailSize {
		return fmt.Errorf("file too small (%d bytes): %w", len(data), errTruncated)
	}
	hd := dec{b: data[:headerSize]}
	if m := hd.u32(); m != magicV1 {
		return fmt.Errorf("bad magic %#x", m)
	}
	if v := hd.u32(); v != FormatVersion {
		return fmt.Errorf("unsupported format version %d (want %d)", v, FormatVersion)
	}
	td := dec{b: data[len(data)-tailSize:]}
	footOff := td.u64()
	footLen := td.u64()
	footCRC := td.u32()
	if m := td.u32(); m != magicV1 {
		return fmt.Errorf("bad tail magic %#x", m)
	}
	if footOff < headerSize || footOff+footLen < footOff ||
		footOff+footLen > uint64(len(data)-tailSize) {
		return fmt.Errorf("footer out of bounds: %w", errTruncated)
	}
	foot := data[footOff : footOff+footLen]
	if crc := crc32.Checksum(foot, crcTable); crc != footCRC {
		return fmt.Errorf("footer CRC mismatch (%#x != %#x)", crc, footCRC)
	}
	d := dec{b: foot}
	nsec := d.count(20)
	s.sections = make([]sectionInfo, nsec)
	for i := range s.sections {
		s.sections[i] = sectionInfo{off: d.u64(), len: d.u64(), crc: d.u32()}
		si := &s.sections[i]
		if si.off < headerSize || si.off+si.len < si.off || si.off+si.len > footOff {
			return fmt.Errorf("section %d out of bounds: %w", i, errTruncated)
		}
	}
	nmeta := d.count(8)
	s.metas = make(map[string][]byte, nmeta)
	for i := 0; i < nmeta; i++ {
		name := d.str()
		sec := d.u32()
		if d.err != nil {
			return d.err
		}
		blob, err := s.section(sec)
		if err != nil {
			return fmt.Errorf("meta %q: %w", name, err)
		}
		s.metas[name] = blob
	}
	ntab := d.count(8)
	s.tables = make([]tableDesc, 0, ntab)
	for i := 0; i < ntab; i++ {
		t, err := s.parseTable(&d)
		if err != nil {
			return fmt.Errorf("table %d: %w", i, err)
		}
		s.tables = append(s.tables, t)
	}
	if d.err != nil {
		return d.err
	}
	return nil
}

func (s *Segment) parseTable(d *dec) (tableDesc, error) {
	var t tableDesc
	t.name = d.str()
	ncols := d.count(5)
	cols := make([]types.Column, ncols)
	seen := make(map[string]bool, ncols)
	for i := range cols {
		cols[i].Name = d.str()
		cols[i].Kind = types.Kind(d.u8())
		if d.err != nil {
			return t, d.err
		}
		if cols[i].Kind > types.KindBool {
			return t, fmt.Errorf("column %q: invalid kind %d", cols[i].Name, cols[i].Kind)
		}
		lower := lowerASCII(cols[i].Name)
		if seen[lower] {
			return t, fmt.Errorf("duplicate column %q", cols[i].Name)
		}
		seen[lower] = true
	}
	if d.err != nil {
		return t, d.err
	}
	t.schema = types.NewSchema(cols...)
	nblocks := d.count(14)
	t.blocks = make([]blockDesc, 0, nblocks)
	for i := 0; i < nblocks; i++ {
		b, err := s.parseBlock(d, ncols)
		if err != nil {
			return t, fmt.Errorf("block %d: %w", i, err)
		}
		t.blocks = append(t.blocks, b)
	}
	return t, d.err
}

func (s *Segment) parseBlock(d *dec, ncols int) (blockDesc, error) {
	var b blockDesc
	b.node = int(d.u32())
	b.place = storage.Placement(d.u8())
	b.bytes = d.i64()
	b.nrows = int(d.u32())
	nz := d.count(3)
	if d.err == nil && nz != ncols {
		return b, fmt.Errorf("zone count %d != %d columns", nz, ncols)
	}
	b.zones = make([]storage.Zone, nz)
	for i := range b.zones {
		b.zones[i].Valid = d.u8() != 0
		b.zones[i].Min = d.val()
		b.zones[i].Max = d.val()
	}
	if d.err != nil {
		return b, d.err
	}
	switch layout := d.u8(); layout {
	case 1:
		b.columnar = true
		b.uniformRate = d.f64()
		b.uniformFreq = d.i64()
		b.ratesSec = d.u32()
		b.freqsSec = d.u32()
		b.cols = make([]colDesc, ncols)
		for i := range b.cols {
			c := &b.cols[i]
			c.enc = colstore.Encoding(d.u8())
			c.nanFree = d.u8() != 0
			c.payload, c.nulls, c.dict = noSection, noSection, noSection
			switch c.enc {
			case colstore.EncFloat, colstore.EncInt, colstore.EncBool:
				c.payload = d.u32()
				c.nulls = d.u32()
			case colstore.EncDict:
				c.payload = d.u32()
				c.nulls = d.u32()
				c.dict = d.u32()
			case colstore.EncValue:
				c.payload = d.u32()
			case colstore.EncRLE:
				c.payload = d.u32() // run values
				c.dict = d.u32()    // run ends
			default:
				return b, fmt.Errorf("column %d: invalid encoding %d", i, c.enc)
			}
		}
	case 0:
		b.rowsSec = d.u32()
		b.ratesSec = d.u32()
		b.freqsSec = d.u32()
	default:
		if d.err == nil {
			return b, fmt.Errorf("invalid block layout %d", layout)
		}
	}
	return b, d.err
}

// section returns the verified bytes of section idx. The CRC is checked
// on every call — cheap relative to a load, and it keeps the contract
// simple: bytes handed out are always the bytes that were written.
func (s *Segment) section(idx uint32) ([]byte, error) {
	if int(idx) >= len(s.sections) {
		return nil, fmt.Errorf("section ref %d out of range (%d sections)", idx, len(s.sections))
	}
	si := s.sections[idx]
	data := s.data[si.off : si.off+si.len]
	if crc := crc32.Checksum(data, crcTable); crc != si.crc {
		return nil, fmt.Errorf("section %d CRC mismatch (%#x != %#x)", idx, crc, si.crc)
	}
	return data, nil
}

// Meta returns the named metadata blob.
func (s *Segment) Meta(name string) ([]byte, bool) {
	b, ok := s.metas[name]
	return b, ok
}

// NumTables returns how many tables the segment holds.
func (s *Segment) NumTables() int { return len(s.tables) }

// TableName returns the name of table i.
func (s *Segment) TableName(i int) string { return s.tables[i].name }

// Table materializes table i. Columnar int/float payloads, null
// bitmaps, dictionary codes and run ends are slice views over the
// segment's backing bytes (zero per-value decode); strings and
// mixed-kind value streams are decoded. Each referenced section's CRC
// is verified, and all structural invariants the executor relies on
// (payload lengths, run-end monotonicity, dictionary code bounds) are
// validated — a corrupt segment returns an error, never a broken table.
func (s *Segment) Table(i int) (*storage.Table, error) {
	if i < 0 || i >= len(s.tables) {
		return nil, fmt.Errorf("blockfile: table index %d out of range", i)
	}
	td := &s.tables[i]
	t := storage.NewTable(td.name, td.schema)
	for bi := range td.blocks {
		blk, err := s.loadBlock(&td.blocks[bi], td.schema)
		if err != nil {
			return nil, fmt.Errorf("blockfile: table %q block %d: %w", td.name, bi, err)
		}
		t.AddBlock(blk)
	}
	return t, nil
}

func (s *Segment) loadBlock(bd *blockDesc, schema *types.Schema) (*storage.Block, error) {
	b := &storage.Block{
		Node:  bd.node,
		Place: bd.place,
		Bytes: bd.bytes,
		Zones: append([]storage.Zone(nil), bd.zones...),
	}
	if !bd.columnar {
		return s.loadRowBlock(b, bd, schema)
	}
	d := &colstore.Data{N: bd.nrows, UniformRate: bd.uniformRate, UniformFreq: bd.uniformFreq}
	var err error
	if bd.ratesSec != noSection {
		if d.Rates, err = s.f64View(bd.ratesSec, bd.nrows); err != nil {
			return nil, fmt.Errorf("rates: %w", err)
		}
	}
	if bd.freqsSec != noSection {
		if d.Freqs, err = s.i64View(bd.freqsSec, bd.nrows); err != nil {
			return nil, fmt.Errorf("freqs: %w", err)
		}
	}
	d.Cols = make([]colstore.Column, len(bd.cols))
	for ci := range bd.cols {
		if err := s.loadColumn(&d.Cols[ci], &bd.cols[ci], bd.nrows); err != nil {
			return nil, fmt.Errorf("column %q: %w", schema.Columns[ci].Name, err)
		}
	}
	b.Col = d
	return b, nil
}

func (s *Segment) loadRowBlock(b *storage.Block, bd *blockDesc, schema *types.Schema) (*storage.Block, error) {
	raw, err := s.section(bd.rowsSec)
	if err != nil {
		return nil, fmt.Errorf("rows: %w", err)
	}
	d := dec{b: raw}
	vals := d.vals()
	if d.err != nil {
		return nil, d.err
	}
	ncols := schema.Len()
	if len(vals) != bd.nrows*ncols {
		return nil, fmt.Errorf("row stream has %d values, want %d", len(vals), bd.nrows*ncols)
	}
	rates, err := s.f64View(bd.ratesSec, bd.nrows)
	if err != nil {
		return nil, fmt.Errorf("rates: %w", err)
	}
	freqs, err := s.i64View(bd.freqsSec, bd.nrows)
	if err != nil {
		return nil, fmt.Errorf("freqs: %w", err)
	}
	b.Rows = make([]types.Row, bd.nrows)
	b.Meta = make([]storage.RowMeta, bd.nrows)
	for i := 0; i < bd.nrows; i++ {
		b.Rows[i] = types.Row(vals[i*ncols : (i+1)*ncols : (i+1)*ncols])
		b.Meta[i] = storage.RowMeta{Rate: rates[i], StratumFreq: freqs[i]}
	}
	return b, nil
}

func (s *Segment) loadColumn(c *colstore.Column, cd *colDesc, nrows int) error {
	c.Enc = cd.enc
	c.NaNFree = cd.nanFree
	var err error
	switch cd.enc {
	case colstore.EncFloat:
		if c.Floats, err = s.f64View(cd.payload, nrows); err != nil {
			return err
		}
		return s.loadNulls(c, cd, nrows)
	case colstore.EncInt, colstore.EncBool:
		if c.Ints, err = s.i64View(cd.payload, nrows); err != nil {
			return err
		}
		return s.loadNulls(c, cd, nrows)
	case colstore.EncDict:
		if c.Codes, err = s.u32View(cd.payload, nrows); err != nil {
			return err
		}
		if err = s.loadNulls(c, cd, nrows); err != nil {
			return err
		}
		raw, err := s.section(cd.dict)
		if err != nil {
			return fmt.Errorf("dict: %w", err)
		}
		d := dec{b: raw}
		n := d.count(1)
		c.Dict = make([]string, n)
		for i := range c.Dict {
			c.Dict[i] = d.str()
		}
		if d.err != nil {
			return d.err
		}
		for _, code := range c.Codes {
			if int(code) >= len(c.Dict) {
				return fmt.Errorf("dict code %d out of range (%d entries)", code, len(c.Dict))
			}
		}
		return nil
	case colstore.EncValue:
		raw, err := s.section(cd.payload)
		if err != nil {
			return err
		}
		d := dec{b: raw}
		c.Values = d.vals()
		if d.err != nil {
			return d.err
		}
		if len(c.Values) != nrows {
			return fmt.Errorf("value stream has %d values, want %d", len(c.Values), nrows)
		}
		return nil
	case colstore.EncRLE:
		raw, err := s.section(cd.payload)
		if err != nil {
			return err
		}
		d := dec{b: raw}
		c.RunVals = d.vals()
		if d.err != nil {
			return d.err
		}
		if c.RunEnds, err = s.i32View(cd.dict, len(c.RunVals)); err != nil {
			return fmt.Errorf("run ends: %w", err)
		}
		prev := int32(0)
		for _, end := range c.RunEnds {
			if end <= prev {
				return fmt.Errorf("run ends not ascending (%d after %d)", end, prev)
			}
			prev = end
		}
		if int(prev) != nrows && !(nrows == 0 && len(c.RunEnds) == 0) {
			return fmt.Errorf("runs cover %d rows, want %d", prev, nrows)
		}
		return nil
	default:
		return fmt.Errorf("invalid encoding %d", cd.enc)
	}
}

func (s *Segment) loadNulls(c *colstore.Column, cd *colDesc, nrows int) error {
	if cd.nulls == noSection {
		return nil
	}
	words := (nrows + 63) / 64
	var err error
	if c.Nulls, err = s.u64View(cd.nulls, words); err != nil {
		return fmt.Errorf("nulls: %w", err)
	}
	return nil
}

// The typed slice views. On a little-endian host with an aligned base
// (always true: sections are 8-aligned in the file, the mapping is
// page-aligned, and the fallback buffer is word-aligned) these alias
// the backing bytes with zero decode and zero per-value allocation.
// Otherwise they decode element-wise into a fresh slice.

func (s *Segment) numericSection(idx uint32, n, width int) ([]byte, error) {
	raw, err := s.section(idx)
	if err != nil {
		return nil, err
	}
	if len(raw) != n*width {
		return nil, fmt.Errorf("section %d holds %d bytes, want %d×%d", idx, len(raw), n, width)
	}
	return raw, nil
}

func viewOK(b []byte, align int) bool {
	return hostLittleEndian && (len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%uintptr(align) == 0)
}

func (s *Segment) f64View(idx uint32, n int) ([]float64, error) {
	raw, err := s.numericSection(idx, n, 8)
	if err != nil || n == 0 {
		return nil, err
	}
	if viewOK(raw, 8) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]float64, n)
	d := dec{b: raw}
	for i := range out {
		out[i] = d.f64()
	}
	return out, d.err
}

func (s *Segment) i64View(idx uint32, n int) ([]int64, error) {
	raw, err := s.numericSection(idx, n, 8)
	if err != nil || n == 0 {
		return nil, err
	}
	if viewOK(raw, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]int64, n)
	d := dec{b: raw}
	for i := range out {
		out[i] = d.i64()
	}
	return out, d.err
}

func (s *Segment) u64View(idx uint32, n int) ([]uint64, error) {
	raw, err := s.numericSection(idx, n, 8)
	if err != nil || n == 0 {
		return nil, err
	}
	if viewOK(raw, 8) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]uint64, n)
	d := dec{b: raw}
	for i := range out {
		out[i] = d.u64()
	}
	return out, d.err
}

func (s *Segment) u32View(idx uint32, n int) ([]uint32, error) {
	raw, err := s.numericSection(idx, n, 4)
	if err != nil || n == 0 {
		return nil, err
	}
	if viewOK(raw, 4) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]uint32, n)
	d := dec{b: raw}
	for i := range out {
		out[i] = d.u32()
	}
	return out, d.err
}

func (s *Segment) i32View(idx uint32, n int) ([]int32, error) {
	raw, err := s.numericSection(idx, n, 4)
	if err != nil || n == 0 {
		return nil, err
	}
	if viewOK(raw, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]int32, n)
	d := dec{b: raw}
	for i := range out {
		out[i] = int32(d.u32())
	}
	return out, d.err
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
